// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VI). Each benchmark runs its experiment through the
// harness in internal/bench (results are memoized, so repeated b.N
// iterations are cheap), prints the reproduced table once, and reports
// the headline quantity as a custom metric.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// or a single experiment:
//
//	go test -bench=BenchmarkFigure5 -benchtime=1x
package graphz_test

import (
	"fmt"
	"sync"
	"testing"

	"graphz/internal/bench"
	"graphz/internal/storage"
)

// printOnce prints an experiment's table a single time per process, no
// matter how many b.N iterations the benchmark runs.
var printOnce sync.Map

func report(b *testing.B, id, table string) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(id, true); !done {
		fmt.Println(table)
	}
}

func BenchmarkTable1_LOC(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Table1()
	}
	report(b, "t1", t)
}

func BenchmarkTable2_PageRankPlainVsFrameworks(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Table2()
	}
	report(b, "t2", t)
	gz := bench.Run(bench.RunConfig{Scale: bench.Large, Algo: bench.PR,
		Engine: bench.GraphZ, Kind: storage.SSD, Budget: bench.Mem4})
	naive := bench.NaivePageRank(bench.Large, storage.SSD, bench.Mem4)
	if !gz.Failed() && gz.Runtime > 0 {
		b.ReportMetric(float64(naive.Runtime)/float64(gz.Runtime), "naive/GraphZ")
	}
}

func BenchmarkTable8_UniqueDegrees(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Table8()
	}
	report(b, "t8", t)
}

func BenchmarkTable9_LOC(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Table9()
	}
	report(b, "t9", t)
}

func BenchmarkTable10_GraphProperties(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Table10()
	}
	report(b, "t10", t)
}

func BenchmarkTable11_IndexSize(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Table11()
	}
	report(b, "t11", t)
}

func BenchmarkTable12_Preprocessing(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Table12()
	}
	report(b, "t12", t)
}

func BenchmarkFigure2_InPartitionCDF(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Figure2()
	}
	report(b, "f2", t)
}

func BenchmarkFigure5_XLarge(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Figure5()
	}
	report(b, "f5", t)
	var xs, gz []bench.Outcome
	for _, a := range bench.Algos {
		xs = append(xs, bench.Run(bench.RunConfig{Scale: bench.XLarge, Algo: a,
			Engine: bench.XStream, Kind: storage.HDD, Budget: bench.Mem8}))
		gz = append(gz, bench.Run(bench.RunConfig{Scale: bench.XLarge, Algo: a,
			Engine: bench.GraphZ, Kind: storage.HDD, Budget: bench.Mem8}))
	}
	b.ReportMetric(bench.HarmonicMeanSpeedup(xs, gz), "hm-speedup-vs-XStream")
}

func BenchmarkFigure6_Large(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Figure6(bench.Large)
	}
	report(b, "f6l", t)
}

func BenchmarkFigure6_Medium(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Figure6(bench.Medium)
	}
	report(b, "f6m", t)
}

func BenchmarkFigure6_Small(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Figure6(bench.Small)
	}
	report(b, "f6s", t)
}

func BenchmarkFigure7_Breakdown(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Figure7()
	}
	report(b, "f7", t)
	var noDOS, full []bench.Outcome
	for _, a := range bench.Algos {
		noDOS = append(noDOS, bench.Run(bench.RunConfig{Scale: bench.Large, Algo: a,
			Engine: bench.GraphZNoDOS, Kind: storage.SSD, Budget: bench.Mem8}))
		full = append(full, bench.Run(bench.RunConfig{Scale: bench.Large, Algo: a,
			Engine: bench.GraphZ, Kind: storage.SSD, Budget: bench.Mem8}))
	}
	b.ReportMetric(bench.HarmonicMeanSpeedup(noDOS, full), "hm-speedup-DOS")
}

func BenchmarkFigure8_PowerEnergy(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Figure8()
	}
	report(b, "f8", t)
}

func BenchmarkTable13_RelativeEnergy(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Table13()
	}
	report(b, "t13", t)
}

func BenchmarkTable14_Iterations(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Table14()
	}
	report(b, "t14", t)
}

func BenchmarkPageCacheSensitivity(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.PageCacheSensitivity()
	}
	report(b, "pc", t)
}

func BenchmarkFigure9_IOStats(b *testing.B) {
	var t string
	for i := 0; i < b.N; i++ {
		t = bench.Figure9()
	}
	report(b, "f9", t)
	gz := bench.Run(bench.RunConfig{Scale: bench.Large, Algo: bench.PR,
		Engine: bench.GraphZ, Kind: storage.SSD, Budget: bench.Mem8})
	chi := bench.Run(bench.RunConfig{Scale: bench.Large, Algo: bench.PR,
		Engine: bench.GraphChi, Kind: storage.SSD, Budget: bench.Mem8})
	if !gz.Failed() && !chi.Failed() && gz.Stats.ReadBytes > 0 {
		b.ReportMetric(float64(chi.Stats.ReadBytes)/float64(gz.Stats.ReadBytes), "chi/gz-read-ratio")
	}
}
