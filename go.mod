module graphz

go 1.22
