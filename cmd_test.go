package graphz_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools builds the CLIs and chains them end to end:
// generate a graph, convert it to degree-ordered storage, and run two
// engines on it.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI binaries")
	}
	dir := t.TempDir()

	build := func(name string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	gen := build("graphz-gen")
	convert := build("graphz-convert")
	run := build("graphz-run")

	graphFile := filepath.Join(dir, "g.bin")
	out, err := exec.Command(gen, "-kind", "rmat", "-scale", "10", "-edges", "20000",
		"-seed", "3", "-out", graphFile).CombinedOutput()
	if err != nil {
		t.Fatalf("graphz-gen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "unique degrees") {
		t.Errorf("gen output missing summary: %s", out)
	}

	out, err = exec.Command(convert, "-in", graphFile).CombinedOutput()
	if err != nil {
		t.Fatalf("graphz-convert: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "vertex index") {
		t.Errorf("convert output missing index stats: %s", out)
	}
	for _, suffix := range []string{".edges", ".meta", ".new2old", ".old2new"} {
		if _, err := os.Stat(filepath.Join(dir, "g.dos"+suffix)); err != nil {
			t.Errorf("converted file missing: %v", err)
		}
	}

	for _, engine := range []string{"graphz", "xstream", "graphchi"} {
		out, err = exec.Command(run, "-in", graphFile, "-algo", "pr",
			"-engine", engine, "-iters", "5", "-budget", "4194304").CombinedOutput()
		if err != nil {
			t.Fatalf("graphz-run %s: %v\n%s", engine, err, out)
		}
		if !strings.Contains(string(out), "top 5 vertices") {
			t.Errorf("%s run output missing results: %s", engine, out)
		}
	}

	// Observability flags: a live metrics endpoint plus a JSONL trace.
	traceFile := filepath.Join(dir, "run.jsonl")
	out, err = exec.Command(run, "-in", graphFile, "-algo", "pr",
		"-engine", "graphz", "-iters", "5", "-budget", "4194304",
		"-sem", "off", // the partitioned path is the one with drain spans
		"-metrics-addr", "127.0.0.1:0", "-trace", traceFile).CombinedOutput()
	if err != nil {
		t.Fatalf("graphz-run with obs flags: %v\n%s", err, out)
	}
	for _, want := range []string{
		"metrics: serving /metrics and /debug/pprof/",
		"per-iteration:",
		"device:",
		"top 5 vertices",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("obs run output missing %q: %s", want, out)
		}
	}
	spans, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("reading trace file: %v", err)
	}
	for _, stage := range []string{"sio", "dispatch", "worker", "drain"} {
		if !strings.Contains(string(spans), `"stage":"`+stage+`"`) {
			t.Errorf("trace file missing %s spans", stage)
		}
	}

	// BFS through the run tool with an explicit source.
	out, err = exec.Command(run, "-in", graphFile, "-algo", "bfs",
		"-engine", "graphz", "-source", "0").CombinedOutput()
	if err != nil {
		t.Fatalf("graphz-run bfs: %v\n%s", err, out)
	}

	// Reuse the pre-converted DOS files instead of reconverting.
	out, err = exec.Command(run, "-in", graphFile, "-dos", filepath.Join(dir, "g.dos"),
		"-algo", "pr", "-iters", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("graphz-run -dos: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "top 5 vertices") {
		t.Errorf("-dos run output missing results: %s", out)
	}

	// Unknown engine errors out.
	if _, err := exec.Command(run, "-in", graphFile, "-engine", "bogus").CombinedOutput(); err == nil {
		t.Error("bogus engine should fail")
	}
}
