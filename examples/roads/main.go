// Roads: single-source shortest paths on a road-network-like grid, the
// regular (non-power-law) contrast workload. Grid graphs have almost no
// degree diversity, so the degree-ordered index is tiny here too — a
// handful of buckets for hundreds of thousands of intersections.
//
//	go run ./examples/roads
package main

import (
	"fmt"
	"log"
	"math"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

const (
	rows = 400
	cols = 400
)

func main() {
	edges := gen.Grid(rows, cols)
	clock := sim.NewClock()
	dev := storage.NewDevice(storage.HDD, storage.Options{Clock: clock})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		log.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev, Clock: clock}, "raw", "roads")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road grid: %d intersections, %d road segments, %d unique degrees (index %d B)\n",
		g.NumVertices, g.NumEdges, g.UniqueDegrees(), g.IndexBytes())

	// Start from the north-west corner (original ID 0).
	o2n, err := g.OldToNew()
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{MemoryBudget: 4 << 20, Clock: clock, DynamicMessages: true}
	res, dists, err := graphzalgo.SSSP(g, opts, o2n[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSSP converged in %d iterations\n", res.Iterations)

	// Report distances to a few landmarks.
	n2o := make([]graph.VertexID, g.NumVertices)
	m, err := g.NewToOld()
	if err != nil {
		log.Fatal(err)
	}
	copy(n2o, m)
	byOld := make(map[graph.VertexID]float32, len(dists))
	for newID, d := range dists {
		byOld[n2o[newID]] = d
	}
	landmark := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for _, lm := range []struct {
		name string
		id   graph.VertexID
	}{
		{"north-east corner", landmark(0, cols-1)},
		{"city center", landmark(rows/2, cols/2)},
		{"south-east corner", landmark(rows-1, cols-1)},
	} {
		d := byOld[lm.id]
		if math.IsInf(float64(d), 1) {
			fmt.Printf("  %-18s unreachable\n", lm.name)
			continue
		}
		fmt.Printf("  %-18s weighted distance %.2f\n", lm.name, d)
	}
	fmt.Printf("modeled time %v, device traffic: %v\n", clock.Total(), dev.Stats())
}
