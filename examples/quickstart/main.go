// Quickstart: convert a small graph to degree-ordered storage and run
// PageRank on the GraphZ engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

func main() {
	// A toy citation graph with sparse, gappy IDs (as real dumps have).
	edges := []graph.Edge{
		{Src: 10, Dst: 20}, {Src: 10, Dst: 30}, {Src: 10, Dst: 40},
		{Src: 20, Dst: 30}, {Src: 30, Dst: 10}, {Src: 40, Dst: 30},
		{Src: 55, Dst: 10}, {Src: 55, Dst: 30},
	}

	// Everything out-of-core runs against a simulated device that
	// meters IO; SSD here.
	clock := sim.NewClock()
	dev := storage.NewDevice(storage.SSD, storage.Options{Clock: clock})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		log.Fatal(err)
	}

	// Convert to degree-ordered storage: vertices are relabeled by
	// descending out-degree and the vertex index collapses to one
	// entry per unique degree.
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev, Clock: clock}, "raw", "toy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted: %d vertices, %d edges, %d unique degrees, %d-byte index\n",
		g.NumVertices, g.NumEdges, g.UniqueDegrees(), g.IndexBytes())

	// Run 20 iterations of PageRank with ordered dynamic messages.
	opts := core.Options{MemoryBudget: 8 << 20, Clock: clock, DynamicMessages: true}
	_, ranks, err := graphzalgo.PageRank(g, opts, 20, 0.85)
	if err != nil {
		log.Fatal(err)
	}

	// Results come back in the degree-ordered ID space; map them to
	// the original IDs.
	n2o, err := g.NewToOld()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PageRank (original IDs):")
	for newID, r := range ranks {
		fmt.Printf("  vertex %2d: %.4f\n", n2o[newID], r)
	}
	fmt.Printf("modeled time %v, device traffic: %v\n", clock.Total(), dev.Stats())
}
