// Webrank: rank the pages of a synthetic power-law web crawl that is
// four times larger than the memory budget, comparing the GraphZ engine
// against the X-Stream-style baseline on the same simulated HDD — the
// workload class the paper's introduction motivates.
//
//	go run ./examples/webrank
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/algo/xsalgo"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/energy"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
	"graphz/internal/xstream"
)

const (
	budget     = 4 << 20 // 4 MB-analog RAM
	iterations = 10
	damping    = 0.85
)

func main() {
	// A web-like crawl: 2M edges over a 2^18 ID space (~16 MB of edge
	// data against a 4 MB budget).
	fmt.Println("generating crawl...")
	edges := gen.RMAT(18, 2_000_000, gen.NaturalRMAT, 2024)

	gzPrep, gzTime, gzEnergy, top := runGraphZ(edges)
	xsPrep, xsTime, xsEnergy := runXStream(edges)

	fmt.Println("\ntop pages by rank (original IDs):")
	for _, p := range top {
		fmt.Printf("  page %-8d rank %.1f\n", p.id, p.rank)
	}
	fmt.Printf("\nGraphZ:   prep %v + run %v, %.1f J\n", gzPrep, gzTime, gzEnergy)
	fmt.Printf("X-Stream: prep %v + run %v, %.1f J\n", xsPrep, xsTime, xsEnergy)
	fmt.Printf("run speedup: %.1fx, run energy ratio %.2f\n",
		float64(xsTime)/float64(gzTime), gzEnergy/xsEnergy)
	fmt.Println("(preprocessing amortizes across the many analyses of one crawl)")
}

type page struct {
	id   graph.VertexID
	rank float32
}

func runGraphZ(edges []graph.Edge) (prep, total time.Duration, joules float64, top []page) {
	prepClock := sim.NewClock()
	dev := storage.NewDevice(storage.HDD, storage.Options{Clock: prepClock})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		log.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev, Clock: prepClock, MemoryBudget: budget / 4}, "raw", "web")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphZ: %d vertices, index %d B\n", g.NumVertices, g.IndexBytes())

	clock := sim.NewClock()
	dev.SetClock(clock)
	opts := core.Options{MemoryBudget: budget, Clock: clock, DynamicMessages: true}
	_, ranks, err := graphzalgo.PageRank(g, opts, iterations, damping)
	if err != nil {
		log.Fatal(err)
	}
	n2o, err := g.NewToOld()
	if err != nil {
		log.Fatal(err)
	}
	for newID, r := range ranks {
		top = append(top, page{id: n2o[newID], rank: r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	if len(top) > 5 {
		top = top[:5]
	}
	rep := energy.Measure(clock, storage.HDD)
	return prepClock.Total(), clock.Total(), rep.Energy, top
}

func runXStream(edges []graph.Edge) (prep, total time.Duration, joules float64) {
	prepClock := sim.NewClock()
	dev := storage.NewDevice(storage.HDD, storage.Options{Clock: prepClock})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		log.Fatal(err)
	}
	pt, err := xstream.Partition(xstream.PartitionConfig{Dev: dev, Clock: prepClock, MemoryBudget: budget}, "raw", "web")
	if err != nil {
		log.Fatal(err)
	}
	clock := sim.NewClock()
	dev.SetClock(clock)
	opts := xstream.Options{MemoryBudget: budget, Clock: clock}
	if _, _, err := xsalgo.PageRank(pt, opts, iterations, damping); err != nil {
		log.Fatal(err)
	}
	rep := energy.Measure(clock, storage.HDD)
	return prepClock.Total(), clock.Total(), rep.Energy
}
