// Emulation: run an unmodified GraphChi-style program on the GraphZ
// engine through the paper's Section IV-E construction — the executable
// form of the claim that GraphZ is at least as expressive as GraphChi.
// The program below communicates through mutable edge values (GraphChi's
// model); the adapter turns every edge value into an ordered dynamic
// message that appends to the destination's in-edge list.
//
//	go run ./examples/emulation
package main

import (
	"fmt"
	"log"

	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/graphchi"
	"graphz/internal/storage"
)

// chiDegreeSum is written against the GraphChi API: each vertex publishes
// its own out-degree on its out-edges, and after one exchange every
// vertex sums its in-neighbors' degrees — a "how connected are my
// followers" metric that reads in-edges and writes out-edges.
type chiDegreeSum struct{}

func (chiDegreeSum) Init(id graph.VertexID, inDeg, outDeg uint32) uint32 { return outDeg }

func (chiDegreeSum) InitEdge(src, dst graph.VertexID) uint32 { return 0 }

func (chiDegreeSum) Update(ctx *graphchi.Context, id graph.VertexID, v *uint32,
	in, out []graphchi.EdgeRef[uint32]) {
	if ctx.Iteration() == 1 {
		var sum uint32
		for _, e := range in {
			sum += *e.Val
		}
		*v = sum
	}
	if ctx.Iteration() == 0 {
		for _, e := range out {
			*e.Val = *v // publish my out-degree
		}
		ctx.MarkActive()
	}
}

func main() {
	edges := gen.Zipf(5_000, 40_000, 0.9, 11)
	dev := storage.NewDevice(storage.SSD, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		log.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "emu")
	if err != nil {
		log.Fatal(err)
	}
	layout := core.DOSLayout(g)
	inDeg, err := core.InDegrees(layout)
	if err != nil {
		log.Fatal(err)
	}

	res, vals, err := core.EmulateGraphChi[uint32, uint32](layout, chiDegreeSum{},
		graph.Uint32Codec{}, graph.Uint32Codec{}, inDeg,
		core.Options{MemoryBudget: 64 << 20, DynamicMessages: true, MaxIterations: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran a GraphChi program on the GraphZ engine: %d iterations, %d messages\n",
		res.Iterations, res.MessagesSent)

	// Show the best-connected followings (degree-ordered ID space puts
	// hubs first).
	fmt.Println("follower-connectivity of the top hubs:")
	for v := 0; v < 5 && v < len(vals); v++ {
		fmt.Printf("  hub %d: followers' degrees sum to %d\n", v, vals[v])
	}
}
