// Social: community detection and friend-distance on a synthetic social
// network — connected components finds the communities, then BFS measures
// hop distances from the best-connected member, all out-of-core on the
// GraphZ engine.
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"
	"sort"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

func main() {
	// Three disjoint towns of very different sizes, each a power-law
	// friendship network; friendships are mutual, so symmetrize.
	var edges []graph.Edge
	towns := []struct {
		people int
		links  int
		seed   uint64
	}{
		{40_000, 350_000, 7},
		{15_000, 120_000, 8},
		{5_000, 30_000, 9},
	}
	offset := graph.VertexID(0)
	for _, town := range towns {
		base := gen.Zipf(town.people, town.links, 0.8, town.seed)
		for _, e := range base {
			if e.Src == e.Dst {
				continue
			}
			s, d := e.Src+offset, e.Dst+offset
			edges = append(edges, graph.Edge{Src: s, Dst: d}, graph.Edge{Src: d, Dst: s})
		}
		offset += graph.VertexID(town.people)
	}

	clock := sim.NewClock()
	dev := storage.NewDevice(storage.SSD, storage.Options{Clock: clock})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		log.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev, Clock: clock}, "raw", "social")
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{MemoryBudget: 4 << 20, Clock: clock, DynamicMessages: true}

	// Communities: weakly-connected components.
	ccRes, labels, err := graphzalgo.ConnectedComponents(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[uint32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	type comm struct {
		label uint32
		size  int
	}
	var comms []comm
	for l, n := range sizes {
		comms = append(comms, comm{l, n})
	}
	sort.Slice(comms, func(i, j int) bool { return comms[i].size > comms[j].size })
	fmt.Printf("%d communities found in %d iterations; largest:\n", len(comms), ccRes.Iterations)
	for i, c := range comms {
		if i == 3 {
			break
		}
		fmt.Printf("  community %d: %d members (%.1f%%)\n",
			c.label, c.size, 100*float64(c.size)/float64(g.NumVertices))
	}

	// Degrees of separation from the best-connected member (new ID 0
	// under degree ordering).
	bfsRes, levels, err := graphzalgo.BFS(g, opts, 0)
	if err != nil {
		log.Fatal(err)
	}
	hist := map[uint32]int{}
	for _, l := range levels {
		hist[l]++
	}
	fmt.Printf("\ndegrees of separation from the hub (converged in %d iterations):\n", bfsRes.Iterations)
	for hop := uint32(0); hop < 10; hop++ {
		if n := hist[hop]; n > 0 {
			fmt.Printf("  %d hops: %d people\n", hop, n)
		}
	}
	if n := hist[graphzalgo.Unreached]; n > 0 {
		fmt.Printf("  unreachable: %d people\n", n)
	}
	fmt.Printf("\nmodeled time %v, device traffic: %v\n", clock.Total(), dev.Stats())
}
