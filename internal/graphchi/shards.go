// Package graphchi implements a GraphChi-class baseline: the
// vertex-centric, asynchronous, out-of-core model of Kyrola et al. that
// the paper compares against. The graph is split into P intervals of the
// natural (unrelabeled) vertex ID space; shard p holds every edge whose
// destination is in interval p, sorted by source, together with a
// per-edge value. One iteration processes intervals in order: interval
// p's shard is loaded whole (the in-edges), a sliding window over every
// other shard supplies the out-edges, vertices are updated in ID order,
// and modified edge values are written back — the Parallel Sliding
// Windows algorithm. Communication happens through edge values (the
// static-message design GraphZ's dynamic messages replace), and the
// vertex degree index costs 8 bytes per vertex, which is why this model
// cannot run the paper's xlarge graph.
package graphchi

import (
	"encoding/binary"
	"fmt"
	"io"

	"graphz/internal/extsort"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// DegreeEntryBytes is the per-vertex index cost: in-degree and out-degree.
const DegreeEntryBytes = 8

// Shards is a sharded graph on a device.
type Shards struct {
	dev    *storage.Device
	prefix string

	NumVertices int // natural dense ID space: maxID+1
	NumEdges    int64
	EdgeValSize int
	// IntervalStart[p] is the first vertex of interval p;
	// IntervalStart[P] == NumVertices.
	IntervalStart []graph.VertexID
	// ShardEntries[p] is the edge count of shard p.
	ShardEntries []int64
}

// NumShards returns the shard count P.
func (s *Shards) NumShards() int { return len(s.ShardEntries) }

// Device returns the device the shards live on.
func (s *Shards) Device() *storage.Device { return s.dev }

// ShardFile names shard p's file.
func (s *Shards) ShardFile(p int) string { return fmt.Sprintf("%s.chi.shard%d", s.prefix, p) }

// DegreeFile names the per-vertex degree index file.
func (s *Shards) DegreeFile() string { return s.prefix + ".chi.deg" }

func (s *Shards) metaFile() string { return s.prefix + ".chi.meta" }

// IndexBytes is the resident size of the vertex degree index.
func (s *Shards) IndexBytes() int64 { return int64(s.NumVertices) * DegreeEntryBytes }

// recBytes is the on-disk size of one shard record.
func (s *Shards) recBytes() int { return 8 + s.EdgeValSize }

// ShardConfig parameterizes sharding.
type ShardConfig struct {
	Dev   *storage.Device
	Clock *sim.Clock
	// MemoryBudget bounds both the external sorts and the automatic
	// shard sizing.
	MemoryBudget int64
	// EdgeValSize is the per-edge value size the program will use.
	EdgeValSize int
	// NumShards overrides automatic shard-count selection when > 0.
	NumShards int
}

// Shard converts a raw edge file into GraphChi shards. The pipeline is
// the model's standard preprocessing: compute degrees, sort by
// destination, split into intervals balancing edge counts, and sort each
// shard by source.
func Shard(cfg ShardConfig, edgeFile, prefix string) (*Shards, error) {
	if cfg.EdgeValSize < 0 {
		return nil, fmt.Errorf("graphchi: negative edge value size")
	}
	if cfg.MemoryBudget < extsort.MinMemoryBudget {
		cfg.MemoryBudget = extsort.MinMemoryBudget
	}
	dev := cfg.Dev
	s := &Shards{dev: dev, prefix: prefix, EdgeValSize: cfg.EdgeValSize}

	srcKey := func(rec []byte) uint64 {
		return uint64(binary.LittleEndian.Uint32(rec))
	}
	dstKey := func(rec []byte) uint64 {
		return uint64(binary.LittleEndian.Uint32(rec[4:]))
	}
	sortCfg := func(tag string) extsort.Config {
		return extsort.Config{
			Dev:          dev,
			Clock:        cfg.Clock,
			RecordSize:   graph.EdgeBytes,
			MemoryBudget: cfg.MemoryBudget,
			TempPrefix:   prefix + ".chi.tmp." + tag + ".run",
		}
	}

	// Pass 1: sort by destination; scan for max ID, edge count, and
	// in-degrees; pick interval boundaries balancing edge counts.
	byDst := prefix + ".chi.tmp.bydst"
	c := sortCfg("bydst")
	c.Key = dstKey
	if err := extsort.Sort(c, edgeFile, byDst); err != nil {
		return nil, fmt.Errorf("graphchi: sorting by dst: %w", err)
	}
	defer dev.Remove(byDst)

	maxID, numEdges, err := scanMax(dev, byDst)
	if err != nil {
		return nil, err
	}
	s.NumEdges = numEdges
	if numEdges > 0 || maxID > 0 {
		s.NumVertices = int(maxID) + 1
	}

	nShards := cfg.NumShards
	if nShards <= 0 {
		nShards = autoShards(s, cfg.MemoryBudget)
	}

	// Pass 2: split the dst-sorted edges into nShards interval files
	// at destination boundaries.
	parts, starts, err := splitByDst(dev, byDst, prefix, numEdges, nShards, graph.VertexID(s.NumVertices))
	if err != nil {
		return nil, err
	}
	s.IntervalStart = starts

	// Pass 3: sort each part by source and emit the shard with zeroed
	// edge values.
	for p, part := range parts {
		sorted := fmt.Sprintf("%s.chi.tmp.sorted%d", prefix, p)
		c := sortCfg(fmt.Sprintf("shard%d", p))
		c.Key = srcKey
		if err := extsort.Sort(c, part, sorted); err != nil {
			return nil, fmt.Errorf("graphchi: sorting shard %d: %w", p, err)
		}
		dev.Remove(part)
		n, err := emitShard(dev, sorted, s.ShardFile(p), s.EdgeValSize)
		if err != nil {
			return nil, err
		}
		dev.Remove(sorted)
		s.ShardEntries = append(s.ShardEntries, n)
	}

	// Pass 4: degrees. In-degrees from the dst-sorted order would need
	// another pass; instead sort by src for out-degrees and rescan the
	// shards (already grouped by interval) for in-degrees.
	if err := writeDegrees(dev, cfg, s, edgeFile); err != nil {
		return nil, err
	}
	if cfg.Clock != nil {
		cfg.Clock.ComputeBytes(3 * numEdges * graph.EdgeBytes)
	}
	if err := s.writeMeta(); err != nil {
		return nil, err
	}
	return s, nil
}

// autoShards sizes shards so one shard plus its interval's vertex states
// (assumed 8 B each) fits in roughly half the budget.
func autoShards(s *Shards, budget int64) int {
	per := budget / 2
	if per <= 0 {
		per = budget
	}
	total := s.NumEdges*int64(s.recBytes()) + int64(s.NumVertices)*8
	n := int((total + per - 1) / per)
	if n < 1 {
		n = 1
	}
	return n
}

func scanMax(dev *storage.Device, name string) (graph.VertexID, int64, error) {
	f, err := dev.Open(name)
	if err != nil {
		return 0, 0, err
	}
	r := storage.NewReader(f)
	var maxID graph.VertexID
	var n int64
	var buf [graph.EdgeBytes]byte
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			return maxID, n, nil
		}
		if err != nil {
			return 0, 0, err
		}
		e := graph.GetEdge(buf[:])
		n++
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
}

// splitByDst cuts the dst-sorted edge stream into nShards parts of
// roughly equal edge count, never splitting a destination across parts.
// It returns the part files and the interval start IDs.
func splitByDst(dev *storage.Device, byDst, prefix string, numEdges int64, nShards int, numVertices graph.VertexID) ([]string, []graph.VertexID, error) {
	f, err := dev.Open(byDst)
	if err != nil {
		return nil, nil, err
	}
	r := storage.NewReader(f)
	target := numEdges / int64(nShards)
	if target < 1 {
		target = 1
	}

	var parts []string
	var starts []graph.VertexID
	starts = append(starts, 0)

	newPart := func() (*storage.Writer, error) {
		name := fmt.Sprintf("%s.chi.tmp.part%d", prefix, len(parts))
		pf, err := dev.Create(name)
		if err != nil {
			return nil, err
		}
		parts = append(parts, name)
		return storage.NewWriter(pf), nil
	}
	w, err := newPart()
	if err != nil {
		return nil, nil, err
	}
	var inPart int64
	var lastDst graph.VertexID
	havePrev := false
	var buf [graph.EdgeBytes]byte
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		e := graph.GetEdge(buf[:])
		// Cut at a destination boundary once the part is full, as
		// long as more shards are allowed.
		if havePrev && e.Dst != lastDst && inPart >= target && len(parts) < nShards {
			if err := w.Flush(); err != nil {
				return nil, nil, err
			}
			starts = append(starts, e.Dst)
			w, err = newPart()
			if err != nil {
				return nil, nil, err
			}
			inPart = 0
		}
		if _, err := w.Write(buf[:]); err != nil {
			return nil, nil, err
		}
		inPart++
		lastDst = e.Dst
		havePrev = true
	}
	if err := w.Flush(); err != nil {
		return nil, nil, err
	}
	// Pad out empty trailing shards so the count is always nShards.
	for len(parts) < nShards {
		w, err := newPart()
		if err != nil {
			return nil, nil, err
		}
		if err := w.Flush(); err != nil {
			return nil, nil, err
		}
		starts = append(starts, numVertices)
	}
	starts = append(starts, numVertices)
	return parts, starts, nil
}

// emitShard rewrites src-sorted raw edges as shard records with zeroed
// edge values, returning the entry count.
func emitShard(dev *storage.Device, in, out string, evalSize int) (int64, error) {
	inF, err := dev.Open(in)
	if err != nil {
		return 0, err
	}
	outF, err := dev.Create(out)
	if err != nil {
		return 0, err
	}
	r := storage.NewReader(inF)
	w := storage.NewWriter(outF)
	rec := make([]byte, 8+evalSize)
	var ebuf [graph.EdgeBytes]byte
	var n int64
	for {
		err := r.ReadFull(ebuf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		copy(rec[:8], ebuf[:])
		for i := 8; i < len(rec); i++ {
			rec[i] = 0
		}
		if _, err := w.Write(rec); err != nil {
			return 0, err
		}
		n++
	}
	return n, w.Flush()
}

// writeDegrees computes per-vertex (in, out) degrees with one src-sort
// pass and one scan over the shards, and writes the degree index file.
// The degree arrays are built densely on the host during preprocessing
// (as GraphChi's sharder does); at *run* time the index must fit the
// engine's memory budget or the run fails.
func writeDegrees(dev *storage.Device, cfg ShardConfig, s *Shards, edgeFile string) error {
	inDeg := make([]uint32, s.NumVertices)
	outDeg := make([]uint32, s.NumVertices)
	f, err := dev.Open(edgeFile)
	if err != nil {
		return err
	}
	r := storage.NewReader(f)
	var buf [graph.EdgeBytes]byte
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		e := graph.GetEdge(buf[:])
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	df, err := dev.Create(s.DegreeFile())
	if err != nil {
		return err
	}
	w := storage.NewWriter(df)
	var rec [DegreeEntryBytes]byte
	for v := 0; v < s.NumVertices; v++ {
		binary.LittleEndian.PutUint32(rec[:4], inDeg[v])
		binary.LittleEndian.PutUint32(rec[4:], outDeg[v])
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return w.Flush()
}

const metaMagic = 0x494843_47534f44

func (s *Shards) writeMeta() error {
	n := len(s.ShardEntries)
	buf := make([]byte, 40+(n+1)*4+n*8)
	binary.LittleEndian.PutUint64(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.NumVertices))
	binary.LittleEndian.PutUint64(buf[16:], uint64(s.NumEdges))
	binary.LittleEndian.PutUint64(buf[24:], uint64(s.EdgeValSize))
	binary.LittleEndian.PutUint64(buf[32:], uint64(n))
	o := 40
	for _, st := range s.IntervalStart {
		binary.LittleEndian.PutUint32(buf[o:], uint32(st))
		o += 4
	}
	for _, c := range s.ShardEntries {
		binary.LittleEndian.PutUint64(buf[o:], uint64(c))
		o += 8
	}
	return storage.WriteAll(s.dev, s.metaFile(), buf)
}

// LoadShards opens previously built shards by prefix.
func LoadShards(dev *storage.Device, prefix string) (*Shards, error) {
	buf, err := storage.ReadAllFile(dev, prefix+".chi.meta")
	if err != nil {
		return nil, fmt.Errorf("graphchi: loading meta: %w", err)
	}
	if len(buf) < 40 || binary.LittleEndian.Uint64(buf) != metaMagic {
		return nil, fmt.Errorf("graphchi: %q is not a shards meta file", prefix)
	}
	s := &Shards{
		dev:         dev,
		prefix:      prefix,
		NumVertices: int(binary.LittleEndian.Uint64(buf[8:])),
		NumEdges:    int64(binary.LittleEndian.Uint64(buf[16:])),
		EdgeValSize: int(binary.LittleEndian.Uint64(buf[24:])),
	}
	n := int(binary.LittleEndian.Uint64(buf[32:]))
	if len(buf) != 40+(n+1)*4+n*8 {
		return nil, fmt.Errorf("graphchi: meta file truncated")
	}
	o := 40
	s.IntervalStart = make([]graph.VertexID, n+1)
	for i := range s.IntervalStart {
		s.IntervalStart[i] = graph.VertexID(binary.LittleEndian.Uint32(buf[o:]))
		o += 4
	}
	s.ShardEntries = make([]int64, n)
	for i := range s.ShardEntries {
		s.ShardEntries[i] = int64(binary.LittleEndian.Uint64(buf[o:]))
		o += 8
	}
	return s, nil
}
