package graphchi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// engineName labels this engine's spans and metrics.
const engineName = "graphchi"

// engineObs bundles the engine's resolved instruments; all are nil-safe,
// and `on` gates the time.Now calls on the hot path.
type engineObs struct {
	on  bool
	reg *obs.Registry
	tr  *obs.Tracer

	stageNS map[string]*obs.Counter
}

func newEngineObs(reg *obs.Registry, tr *obs.Tracer) engineObs {
	eo := engineObs{
		on:      reg != nil || tr != nil,
		reg:     reg,
		tr:      tr,
		stageNS: make(map[string]*obs.Counter, 4),
	}
	for _, st := range []string{obs.StageSio, obs.StageDispatch, obs.StageWorker, obs.StageDrain} {
		eo.stageNS[st] = reg.Counter(engineName + "_stage_" + st + "_ns_total")
	}
	return eo
}

// recordStage closes out one stage of interval p: emits its span, adds
// the stage counters, and returns the current time as the next stage's
// start.
func (e *Engine[V, E]) recordStage(stage string, iter, p int, start time.Time, row *obs.IterStats) time.Time {
	now := time.Now()
	d := now.Sub(start)
	e.eo.tr.Emit(engineName, stage, iter, p, start, d)
	e.eo.stageNS[stage].Add(int64(d))
	e.stages.AddStage(stage, d)
	if row != nil {
		row.Stages.AddStage(stage, d)
	}
	return now
}

// EdgeRef exposes one edge of the in-memory subgraph to an update
// function: the neighbor on the other end and a pointer to the mutable
// edge value. Writing through Val communicates with the neighbor — the
// static-message model.
type EdgeRef[E any] struct {
	Neighbor graph.VertexID
	Val      *E
}

// Program is a GraphChi-style vertex program: state lives in vertex
// values and edge values; update() reads in-edges and writes out-edges.
type Program[V, E any] interface {
	// Init produces a vertex's initial state.
	Init(id graph.VertexID, inDeg, outDeg uint32) V
	// InitEdge produces an edge's initial value (written during the
	// engine's initialization pass over all shards).
	InitEdge(src, dst graph.VertexID) E
	// Update is called on every vertex every iteration with its
	// in-edges and out-edges.
	Update(ctx *Context, id graph.VertexID, v *V, in, out []EdgeRef[E])
}

// Context carries per-update runtime state.
type Context struct {
	iteration int
	active    *bool
}

// NewContext builds a context for driving a Program outside the engine
// (the GraphZ emulation of Section IV-E and unit tests use it). The
// engine itself constructs contexts internally.
func NewContext(iteration int, active *bool) *Context {
	return &Context{iteration: iteration, active: active}
}

// Iteration returns the current iteration (0-based).
func (c *Context) Iteration() int { return c.iteration }

// MarkActive keeps the computation running another iteration.
func (c *Context) MarkActive() { *c.active = true }

// Options configures a run.
type Options struct {
	MemoryBudget  int64
	MaxIterations int // 0 = run until no vertex marks active
	Clock         *sim.Clock
	Name          string // runtime file prefix; defaults to "chi"
	// Obs receives per-stage timings and one IterStats row per
	// iteration; nil disables collection — the no-op fast path.
	Obs *obs.Registry
	// Trace receives one JSONL span per (iteration, interval, stage);
	// nil disables tracing.
	Trace *obs.Tracer
}

// ErrMemoryBudget reports that the per-vertex degree index cannot be
// resident — GraphChi's failure mode on the paper's xlarge graph.
var ErrMemoryBudget = errors.New("graphchi: vertex index does not fit in memory budget")

// Result summarizes a run.
type Result struct {
	Iterations     int
	Shards         int
	UpdatesRun     int64
	EdgesTraversed int64
	// Stages is wall-clock time per pipeline stage, summed over the
	// run; populated only when Options.Obs or Options.Trace is set.
	Stages obs.StageTimes
}

// Engine executes a Program over Shards with the PSW algorithm.
type Engine[V, E any] struct {
	sh     *Shards
	prog   Program[V, E]
	vcodec graph.Codec[V]
	ecodec graph.Codec[E]
	opts   Options
	dev    *storage.Device

	inDeg, outDeg []uint32
	verts         []V
	updates       int64
	traversed     int64
	finished      bool

	eo     engineObs
	stages obs.StageTimes
}

// New validates the budget (the degree index plus one interval's working
// set must fit) and prepares a run.
func New[V, E any](sh *Shards, prog Program[V, E], vcodec graph.Codec[V], ecodec graph.Codec[E], opts Options) (*Engine[V, E], error) {
	if opts.Name == "" {
		opts.Name = "chi"
	}
	if ecodec.Size() != sh.EdgeValSize {
		return nil, fmt.Errorf("graphchi: edge codec size %d does not match shard edge value size %d",
			ecodec.Size(), sh.EdgeValSize)
	}
	if opts.MemoryBudget <= 0 {
		return nil, fmt.Errorf("graphchi: memory budget must be positive")
	}
	if sh.IndexBytes() >= opts.MemoryBudget {
		return nil, fmt.Errorf("%w: index %d B, budget %d B", ErrMemoryBudget,
			sh.IndexBytes(), opts.MemoryBudget)
	}
	return &Engine[V, E]{
		sh: sh, prog: prog, vcodec: vcodec, ecodec: ecodec, opts: opts,
		dev: sh.Device(),
		eo:  newEngineObs(opts.Obs, opts.Trace),
	}, nil
}

func (e *Engine[V, E]) vstateFile() string { return e.opts.Name + ".vstate" }

func (e *Engine[V, E]) charge(n int64, cost time.Duration) {
	if e.opts.Clock != nil {
		e.opts.Clock.ComputeUnits(n, cost)
	}
}

func (e *Engine[V, E]) chargeBytes(n int64) {
	if e.opts.Clock != nil {
		e.opts.Clock.ComputeBytes(n)
	}
}

// Run executes the program.
func (e *Engine[V, E]) Run() (Result, error) {
	if e.finished {
		return Result{}, fmt.Errorf("graphchi: engine already ran")
	}
	if err := e.loadDegrees(); err != nil {
		return Result{}, err
	}
	if err := e.initPass(); err != nil {
		return Result{}, err
	}
	iters := 0
	for {
		if e.opts.Clock != nil {
			e.opts.Clock.BeginPhase(fmt.Sprintf("iter%d", iters))
		}
		active := false
		var row *obs.IterStats
		var devBefore storage.Stats
		if e.eo.on {
			row = &obs.IterStats{Iteration: iters}
			devBefore = e.dev.Stats()
		}
		if err := e.runIteration(iters, &active, row); err != nil {
			return Result{}, err
		}
		if row != nil {
			devNow := e.dev.Stats()
			row.DeviceReadBytes = devNow.ReadBytes - devBefore.ReadBytes
			row.DeviceWriteBytes = devNow.WriteBytes - devBefore.WriteBytes
			row.DeviceSeeks = devNow.Seeks - devBefore.Seeks
			e.eo.reg.RecordIter(*row)
		}
		iters++
		if e.opts.MaxIterations > 0 && iters >= e.opts.MaxIterations {
			break
		}
		if !active {
			break
		}
	}
	e.finished = true
	if e.eo.on {
		foldDeviceStats(e.eo.reg, e.dev.Stats())
	}
	return Result{
		Iterations:     iters,
		Shards:         e.sh.NumShards(),
		UpdatesRun:     e.updates,
		EdgesTraversed: e.traversed,
		Stages:         e.stages,
	}, nil
}

// foldDeviceStats mirrors the device's cumulative counters into the
// registry as gauges.
func foldDeviceStats(reg *obs.Registry, st storage.Stats) {
	reg.Gauge("device_read_ops").Set(st.ReadOps)
	reg.Gauge("device_write_ops").Set(st.WriteOps)
	reg.Gauge("device_read_bytes").Set(st.ReadBytes)
	reg.Gauge("device_write_bytes").Set(st.WriteBytes)
	reg.Gauge("device_seeks").Set(st.Seeks)
	reg.Gauge("device_pagecache_hits").Set(st.CacheHits)
}

// loadDegrees makes the per-vertex degree index resident (this is the
// big index the paper's Table XI measures).
func (e *Engine[V, E]) loadDegrees() error {
	data, err := storage.ReadAllFile(e.dev, e.sh.DegreeFile())
	if err != nil {
		return fmt.Errorf("graphchi: loading degree index: %w", err)
	}
	n := e.sh.NumVertices
	if len(data) != n*DegreeEntryBytes {
		return fmt.Errorf("graphchi: degree file has %d bytes, want %d", len(data), n*DegreeEntryBytes)
	}
	e.inDeg = make([]uint32, n)
	e.outDeg = make([]uint32, n)
	for v := 0; v < n; v++ {
		e.inDeg[v] = binary.LittleEndian.Uint32(data[v*DegreeEntryBytes:])
		e.outDeg[v] = binary.LittleEndian.Uint32(data[v*DegreeEntryBytes+4:])
	}
	return nil
}

// initPass writes initial vertex states and rewrites every shard with the
// program's initial edge values (GraphChi's data initialization IO).
func (e *Engine[V, E]) initPass() error {
	if e.opts.Clock != nil {
		e.opts.Clock.BeginPhase("init")
	}
	vf, err := e.dev.Create(e.vstateFile())
	if err != nil {
		return err
	}
	w := storage.NewWriter(vf)
	vbuf := make([]byte, e.vcodec.Size())
	for v := 0; v < e.sh.NumVertices; v++ {
		e.vcodec.Encode(vbuf, e.prog.Init(graph.VertexID(v), e.inDeg[v], e.outDeg[v]))
		if _, err := w.Write(vbuf); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	e.chargeBytes(int64(e.sh.NumVertices) * int64(e.vcodec.Size()))

	rec := e.sh.recBytes()
	for p := 0; p < e.sh.NumShards(); p++ {
		f, err := e.dev.Open(e.sh.ShardFile(p))
		if err != nil {
			return err
		}
		r := storage.NewReader(f)
		out := storage.NewWriterAt(f, 0)
		buf := make([]byte, rec)
		for {
			err := r.ReadFull(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			src := graph.VertexID(binary.LittleEndian.Uint32(buf))
			dst := graph.VertexID(binary.LittleEndian.Uint32(buf[4:]))
			e.ecodec.Encode(buf[8:], e.prog.InitEdge(src, dst))
			if _, err := out.Write(buf); err != nil {
				return err
			}
		}
		if err := out.Flush(); err != nil {
			return err
		}
		e.chargeBytes(e.sh.ShardEntries[p] * int64(rec))
	}
	return nil
}

// shardCursor is one shard's sliding window position: the next entry to
// consume, a persistent buffered reader (so consecutive windows continue
// within already-fetched blocks instead of re-reading them), and at most
// one record read past the current window boundary.
type shardCursor struct {
	entry int64
	r     *storage.Reader
	pend  []byte
}

// invalidate drops the reader (e.g. after the cursor was advanced without
// consuming from it); the next window re-opens at the entry offset.
func (c *shardCursor) invalidate() {
	c.r = nil
	c.pend = nil
}

// runIteration performs one PSW pass over all intervals.
func (e *Engine[V, E]) runIteration(iter int, active *bool, row *obs.IterStats) error {
	nShards := e.sh.NumShards()
	// Per-shard sliding-window cursors, reset each iteration.
	cursors := make([]shardCursor, nShards)
	for p := 0; p < nShards; p++ {
		if err := e.runInterval(p, iter, cursors, active, row); err != nil {
			return err
		}
	}
	return nil
}

// memShard is shard p fully decoded.
type memShard[E any] struct {
	src, dst []graph.VertexID
	vals     []E
}

// runInterval executes updates for interval p.
func (e *Engine[V, E]) runInterval(p, iter int, cursors []shardCursor, active *bool, row *obs.IterStats) error {
	lo, hi := e.sh.IntervalStart[p], e.sh.IntervalStart[p+1]
	count := int(hi - lo)
	if count == 0 {
		return nil
	}
	var t time.Time
	if e.eo.on {
		t = time.Now()
	}
	// Load vertex states.
	if err := e.loadVertices(lo, hi); err != nil {
		return err
	}
	// Load the memory shard (in-edges of the interval).
	ms, err := e.loadShard(p)
	if err != nil {
		return err
	}
	// Gather the sliding windows (out-edges of the interval) from
	// every shard. The window of shard p aliases the loaded memory
	// shard so in/out views of intra-interval edges share one value.
	type window struct {
		shard      int
		startEntry int64
		src, dst   []graph.VertexID
		vals       []E
		aliased    bool
	}
	windows := make([]window, 0, e.sh.NumShards())
	for j := 0; j < e.sh.NumShards(); j++ {
		if j == p {
			s, n := windowBounds(ms.src, lo, hi)
			windows = append(windows, window{
				shard: j, startEntry: int64(s),
				src: ms.src[s : s+n], dst: ms.dst[s : s+n], vals: ms.vals[s : s+n],
				aliased: true,
			})
			// The memory shard consumed these entries; move the
			// cursor past them without touching the device.
			cursors[j].entry = int64(s + n)
			cursors[j].invalidate()
			continue
		}
		w, err := e.loadWindow(j, hi, &cursors[j])
		if err != nil {
			return err
		}
		windows = append(windows, window{
			shard: j, startEntry: w.startEntry,
			src: w.src, dst: w.dst, vals: w.vals,
		})
	}
	if e.eo.on {
		t = e.recordStage(obs.StageSio, iter, p, t, row)
	}

	// Build the subgraph: per-vertex in-edge and out-edge reference
	// lists.
	in := make([][]EdgeRef[E], count)
	for i := range ms.dst {
		d := ms.dst[i]
		in[d-lo] = append(in[d-lo], EdgeRef[E]{Neighbor: ms.src[i], Val: &ms.vals[i]})
	}
	out := make([][]EdgeRef[E], count)
	for wi := range windows {
		w := &windows[wi]
		for i := range w.src {
			s := w.src[i]
			out[s-lo] = append(out[s-lo], EdgeRef[E]{Neighbor: w.dst[i], Val: &w.vals[i]})
		}
	}
	if e.eo.on {
		t = e.recordStage(obs.StageDispatch, iter, p, t, row)
	}

	// Update vertices in ID order.
	ctx := &Context{iteration: iter, active: active}
	for i := 0; i < count; i++ {
		id := lo + graph.VertexID(i)
		e.prog.Update(ctx, id, &e.verts[i], in[i], out[i])
		e.updates++
		ne := int64(len(in[i]) + len(out[i]))
		e.traversed += ne
		e.charge(1, sim.CostVertexUpdate)
		e.charge(ne, sim.CostEdgeScan)
	}
	if e.eo.on {
		t = e.recordStage(obs.StageWorker, iter, p, t, row)
	}

	// Write back: vertex states, the memory shard, and the windows.
	if err := e.storeVertices(lo, hi); err != nil {
		return err
	}
	if err := e.storeShardRange(p, 0, ms.src, ms.dst, ms.vals); err != nil {
		return err
	}
	for _, w := range windows {
		if w.aliased || len(w.src) == 0 {
			continue // already persisted with the memory shard
		}
		if err := e.storeShardRange(w.shard, w.startEntry, w.src, w.dst, w.vals); err != nil {
			return err
		}
	}
	if e.eo.on {
		e.recordStage(obs.StageDrain, iter, p, t, row)
	}
	return nil
}

// windowBounds finds the [start, start+n) run of entries with src in
// [lo, hi) in a src-sorted entry list.
func windowBounds(src []graph.VertexID, lo, hi graph.VertexID) (int, int) {
	start := 0
	for start < len(src) && src[start] < lo {
		start++
	}
	end := start
	for end < len(src) && src[end] < hi {
		end++
	}
	return start, end - start
}

// loadShard reads shard p entirely.
func (e *Engine[V, E]) loadShard(p int) (*memShard[E], error) {
	rec := e.sh.recBytes()
	n := e.sh.ShardEntries[p]
	f, err := e.dev.Open(e.sh.ShardFile(p))
	if err != nil {
		return nil, err
	}
	data := make([]byte, n*int64(rec))
	r := storage.NewReader(f)
	if len(data) > 0 {
		if err := r.ReadFull(data); err != nil {
			return nil, fmt.Errorf("graphchi: reading shard %d: %w", p, err)
		}
	}
	ms := &memShard[E]{
		src:  make([]graph.VertexID, n),
		dst:  make([]graph.VertexID, n),
		vals: make([]E, n),
	}
	for i := int64(0); i < n; i++ {
		o := i * int64(rec)
		ms.src[i] = graph.VertexID(binary.LittleEndian.Uint32(data[o:]))
		ms.dst[i] = graph.VertexID(binary.LittleEndian.Uint32(data[o+4:]))
		ms.vals[i] = e.ecodec.Decode(data[o+8:])
	}
	e.chargeBytes(int64(len(data)))
	return ms, nil
}

// winData is a decoded sliding window.
type winData[E any] struct {
	startEntry int64
	src, dst   []graph.VertexID
	vals       []E
}

// loadWindow advances shard j's sliding cursor through entries with
// src < hi, returning them as the interval's window. The cursor's
// buffered reader persists across intervals, so the scan is one
// sequential pass over each shard per iteration; the one record read
// past the boundary is kept pending for the next window.
func (e *Engine[V, E]) loadWindow(j int, hi graph.VertexID, cur *shardCursor) (*winData[E], error) {
	rec := int64(e.sh.recBytes())
	total := e.sh.ShardEntries[j]
	if cur.r == nil {
		f, err := e.dev.Open(e.sh.ShardFile(j))
		if err != nil {
			return nil, err
		}
		cur.r = storage.NewRangeReader(f, cur.entry*rec, total*rec)
	}
	startEntry := cur.entry
	w := &winData[E]{startEntry: startEntry}
	consume := func(buf []byte) bool {
		src := graph.VertexID(binary.LittleEndian.Uint32(buf))
		if src >= hi {
			return false
		}
		w.src = append(w.src, src)
		w.dst = append(w.dst, graph.VertexID(binary.LittleEndian.Uint32(buf[4:])))
		w.vals = append(w.vals, e.ecodec.Decode(buf[8:]))
		cur.entry++
		return true
	}
	if cur.pend != nil {
		if !consume(cur.pend) {
			return w, nil
		}
		cur.pend = nil
	}
	buf := make([]byte, rec)
	for cur.entry < total {
		if err := cur.r.ReadFull(buf); err != nil {
			return nil, fmt.Errorf("graphchi: window scan shard %d: %w", j, err)
		}
		if !consume(buf) {
			cur.pend = append([]byte(nil), buf...)
			break
		}
	}
	e.chargeBytes(int64(len(w.src)) * rec)
	return w, nil
}

// storeShardRange re-encodes entries and writes them back at the given
// entry offset of shard p.
func (e *Engine[V, E]) storeShardRange(p int, startEntry int64, src, dst []graph.VertexID, vals []E) error {
	if len(src) == 0 {
		return nil
	}
	rec := e.sh.recBytes()
	data := make([]byte, len(src)*rec)
	for i := range src {
		o := i * rec
		binary.LittleEndian.PutUint32(data[o:], uint32(src[i]))
		binary.LittleEndian.PutUint32(data[o+4:], uint32(dst[i]))
		e.ecodec.Encode(data[o+8:], vals[i])
	}
	f, err := e.dev.Open(e.sh.ShardFile(p))
	if err != nil {
		return err
	}
	w := storage.NewWriterAt(f, startEntry*int64(rec))
	if _, err := w.Write(data); err != nil {
		return err
	}
	e.chargeBytes(int64(len(data)))
	return w.Flush()
}

// loadVertices reads the interval's vertex states into e.verts.
func (e *Engine[V, E]) loadVertices(lo, hi graph.VertexID) error {
	count := int(hi - lo)
	if cap(e.verts) < count {
		e.verts = make([]V, count)
	}
	e.verts = e.verts[:count]
	f, err := e.dev.Open(e.vstateFile())
	if err != nil {
		return err
	}
	vs := int64(e.vcodec.Size())
	buf := make([]byte, int64(count)*vs)
	r := storage.NewRangeReader(f, int64(lo)*vs, int64(hi)*vs)
	if err := r.ReadFull(buf); err != nil {
		return fmt.Errorf("graphchi: loading vertices [%d,%d): %w", lo, hi, err)
	}
	for i := 0; i < count; i++ {
		e.verts[i] = e.vcodec.Decode(buf[int64(i)*vs:])
	}
	e.chargeBytes(int64(len(buf)))
	return nil
}

// storeVertices writes the interval's vertex states back.
func (e *Engine[V, E]) storeVertices(lo, hi graph.VertexID) error {
	count := int(hi - lo)
	vs := e.vcodec.Size()
	buf := make([]byte, count*vs)
	for i := 0; i < count; i++ {
		e.vcodec.Encode(buf[i*vs:], e.verts[i])
	}
	f, err := e.dev.Open(e.vstateFile())
	if err != nil {
		return err
	}
	w := storage.NewWriterAt(f, int64(lo)*int64(vs))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	e.chargeBytes(int64(len(buf)))
	return w.Flush()
}

// Values reads the final vertex states after Run.
func (e *Engine[V, E]) Values() ([]V, error) {
	if !e.finished {
		return nil, fmt.Errorf("graphchi: Values before Run")
	}
	data, err := storage.ReadAllFile(e.dev, e.vstateFile())
	if err != nil {
		return nil, err
	}
	vs := e.vcodec.Size()
	n := e.sh.NumVertices
	if len(data) != n*vs {
		return nil, fmt.Errorf("graphchi: vertex state file has %d bytes, want %d", len(data), n*vs)
	}
	out := make([]V, n)
	for i := range out {
		out[i] = e.vcodec.Decode(data[i*vs:])
	}
	return out, nil
}

// Cleanup removes the engine's runtime files.
func (e *Engine[V, E]) Cleanup() {
	e.dev.Remove(e.vstateFile())
}
