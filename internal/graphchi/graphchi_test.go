package graphchi

import (
	"errors"
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

func shardEdges(t *testing.T, edges []graph.Edge, evalSize, nShards int) *Shards {
	t.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	sh, err := Shard(ShardConfig{Dev: dev, EdgeValSize: evalSize, NumShards: nShards}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestShardStructure(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 41)
	sh := shardEdges(t, edges, 4, 4)
	if sh.NumShards() != 4 {
		t.Fatalf("NumShards = %d", sh.NumShards())
	}
	if sh.NumEdges != 2000 {
		t.Errorf("NumEdges = %d", sh.NumEdges)
	}
	// Intervals cover [0, V) in order.
	if sh.IntervalStart[0] != 0 || int(sh.IntervalStart[4]) != sh.NumVertices {
		t.Errorf("interval bounds: %v", sh.IntervalStart)
	}
	for i := 0; i < 4; i++ {
		if sh.IntervalStart[i] > sh.IntervalStart[i+1] {
			t.Errorf("intervals not monotone: %v", sh.IntervalStart)
		}
	}
	// Shard entries sum to edge count.
	var sum int64
	for _, n := range sh.ShardEntries {
		sum += n
	}
	if sum != 2000 {
		t.Errorf("shard entries sum to %d", sum)
	}
}

func TestShardLoadRoundTrip(t *testing.T) {
	edges := gen.RMAT(7, 500, gen.NaturalRMAT, 42)
	sh := shardEdges(t, edges, 4, 3)
	sh2, err := LoadShards(sh.Device(), "g")
	if err != nil {
		t.Fatal(err)
	}
	if sh2.NumVertices != sh.NumVertices || sh2.NumEdges != sh.NumEdges ||
		sh2.EdgeValSize != sh.EdgeValSize || sh2.NumShards() != sh.NumShards() {
		t.Errorf("round trip mismatch: %+v vs %+v", sh2, sh)
	}
}

func TestIndexBudgetFailure(t *testing.T) {
	// The paper's Figure 5 effect: the 8 B/vertex degree index must
	// fit the budget or the engine refuses to run.
	edges := []graph.Edge{{Src: 0, Dst: 50000}}
	sh := shardEdges(t, edges, 4, 1)
	if sh.IndexBytes() != 50001*DegreeEntryBytes {
		t.Fatalf("IndexBytes = %d", sh.IndexBytes())
	}
	_, err := New[uint32, uint32](sh, dummyProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 100_000})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("tight budget error = %v, want ErrMemoryBudget", err)
	}
	if _, err := New[uint32, uint32](sh, dummyProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 10_000_000}); err != nil {
		t.Errorf("roomy budget should construct: %v", err)
	}
}

func TestEdgeCodecSizeValidated(t *testing.T) {
	sh := shardEdges(t, []graph.Edge{{Src: 0, Dst: 1}}, 8, 1)
	_, err := New[uint32, uint32](sh, dummyProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 1 << 20})
	if err == nil {
		t.Error("mismatched edge codec size should fail")
	}
}

// dummyProg does nothing; used for construction-time validation tests.
type dummyProg struct{}

func (dummyProg) Init(id graph.VertexID, inDeg, outDeg uint32) uint32 { return 0 }

func (dummyProg) InitEdge(src, dst graph.VertexID) uint32 { return 0 }

func (dummyProg) Update(ctx *Context, id graph.VertexID, v *uint32, in, out []EdgeRef[uint32]) {
}

// propProg relays values: each vertex takes the min of its in-edge
// values and writes min+0 to out-edges; used to validate PSW plumbing
// (windows, write-back, async visibility).
type propProg struct{}

func (propProg) Init(id graph.VertexID, inDeg, outDeg uint32) uint32 { return uint32(id) }

func (propProg) InitEdge(src, dst graph.VertexID) uint32 { return 0xFFFFFFFF }

func (propProg) Update(ctx *Context, id graph.VertexID, v *uint32, in, out []EdgeRef[uint32]) {
	newV := *v
	for _, e := range in {
		if *e.Val < newV {
			newV = *e.Val
		}
	}
	changed := newV < *v
	*v = newV
	if changed || ctx.Iteration() == 0 {
		if changed {
			ctx.MarkActive()
		}
		for _, e := range out {
			*e.Val = *v
		}
	}
}

func referenceMin(n int, edges []graph.Edge) []uint32 {
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if labels[e.Src] < labels[e.Dst] {
				labels[e.Dst] = labels[e.Src]
				changed = true
			}
		}
	}
	return labels
}

func TestPSWMinPropagation(t *testing.T) {
	for _, nShards := range []int{1, 3, 7} {
		edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 43)
		sh := shardEdges(t, edges, 4, nShards)
		eng, err := New[uint32, uint32](sh, propProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
			Options{MemoryBudget: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		vals, err := eng.Values()
		if err != nil {
			t.Fatal(err)
		}
		eng.Cleanup()
		want := referenceMin(sh.NumVertices, edges)
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("nShards=%d: vals[%d] = %d, want %d", nShards, i, vals[i], want[i])
			}
		}
		if res.Iterations == 0 {
			t.Error("no iterations ran")
		}
	}
}

func TestPSWDeterminism(t *testing.T) {
	edges := gen.RMAT(8, 1000, gen.NaturalRMAT, 44)
	run := func() []uint32 {
		sh := shardEdges(t, edges, 4, 4)
		eng, err := New[uint32, uint32](sh, propProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
			Options{MemoryBudget: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		vals, err := eng.Values()
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PSW not deterministic")
		}
	}
}

func TestRunTwiceFails(t *testing.T) {
	sh := shardEdges(t, []graph.Edge{{Src: 0, Dst: 1}}, 4, 1)
	eng, err := New[uint32, uint32](sh, propProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 1 << 20, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestValuesBeforeRun(t *testing.T) {
	sh := shardEdges(t, []graph.Edge{{Src: 0, Dst: 1}}, 4, 1)
	eng, err := New[uint32, uint32](sh, propProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Values(); err == nil {
		t.Error("Values before Run should fail")
	}
}

func TestShardEmptyGraph(t *testing.T) {
	sh := shardEdges(t, nil, 4, 2)
	if sh.NumVertices != 0 || sh.NumEdges != 0 {
		t.Fatalf("V=%d E=%d", sh.NumVertices, sh.NumEdges)
	}
	eng, err := New[uint32, uint32](sh, dummyProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 1 << 20, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShardSingleEdge(t *testing.T) {
	sh := shardEdges(t, []graph.Edge{{Src: 0, Dst: 1}}, 4, 3)
	eng, err := New[uint32, uint32](sh, propProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 || vals[1] != 0 {
		t.Errorf("min propagation over one edge: %v", vals)
	}
}
