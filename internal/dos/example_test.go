package dos_test

import (
	"fmt"
	"log"

	"graphz/internal/dos"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// ExampleConvert converts the paper's style of worked example (Section
// III-B): sparse original IDs, a zero-out-degree vertex, and degree ties,
// then reads a vertex's adjacency through the computed index.
func ExampleConvert() {
	edges := []graph.Edge{
		{Src: 5, Dst: 2}, {Src: 5, Dst: 9}, {Src: 5, Dst: 12},
		{Src: 2, Dst: 5}, {Src: 2, Dst: 9},
		{Src: 9, Dst: 5},
		{Src: 14, Dst: 9},
	}
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		log.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "ex")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vertices=%d edges=%d uniqueDegrees=%d indexBytes=%d\n",
		g.NumVertices, g.NumEdges, g.UniqueDegrees(), g.IndexBytes())
	for _, b := range g.Buckets {
		fmt.Printf("degree %d starts at id %d, edge offset %d\n",
			b.Degree, b.FirstID, b.FirstOff)
	}
	// Vertex 3 (original ID 14): offset = 5 + (3-2)*1 = 6.
	off, _ := g.EdgeOffset(3)
	adj, _ := g.Adjacency(3, nil)
	fmt.Printf("vertex 3: offset=%d adjacency=%v\n", off, adj)
	// Output:
	// vertices=5 edges=7 uniqueDegrees=4 indexBytes=64
	// degree 3 starts at id 0, edge offset 0
	// degree 2 starts at id 1, edge offset 3
	// degree 1 starts at id 2, edge offset 5
	// degree 0 starts at id 4, edge offset 7
	// vertex 3: offset=6 adjacency=[2]
}
