package dos

import (
	"fmt"
	"io"

	"encoding/binary"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

// Violation is the typed error Verify returns for every invariant
// failure. It pins the failure to a device file, a byte offset within
// it, and — when one is implicated — the bucket index, so a corrupted
// graph can be repaired (or its corruption diagnosed) without re-deriving
// the layout arithmetic by hand.
type Violation struct {
	File   string // device file name the violation was observed in
	Offset int64  // byte offset within File
	Bucket int    // implicated bucket index, or -1 when none is
	Detail string
	Err    error // underlying error (e.g. a *storage.CodecError), may be nil
}

func (v *Violation) Error() string {
	where := fmt.Sprintf("%s@%d", v.File, v.Offset)
	if v.Bucket >= 0 {
		where += fmt.Sprintf(" (bucket %d)", v.Bucket)
	}
	return fmt.Sprintf("dos: verify %s: %s", where, v.Detail)
}

func (v *Violation) Unwrap() error { return v.Err }

// metaHeaderBytes returns the size of the graph's meta file header, i.e.
// the byte offset of bucket 0 within the meta file.
func (g *Graph) metaHeaderBytes() int64 {
	if g.Version() == 2 {
		return metaHeaderV2
	}
	return metaHeaderV1
}

// bucketByte returns the byte offset of bucket i in the meta file.
func (g *Graph) bucketByte(i int) int64 {
	return g.metaHeaderBytes() + int64(i)*BucketBytes
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// violate builds a *Violation against one of g's files.
func violate(file string, off int64, bucket int, format string, args ...any) error {
	return &Violation{File: file, Offset: off, Bucket: bucket, Detail: fmt.Sprintf(format, args...)}
}

// Verify checks a converted graph's structural invariants, streaming the
// on-device files once. It validates what the offset arithmetic silently
// assumes, so a corrupted or hand-edited graph fails loudly instead of
// returning wrong adjacencies. Every failure is reported as a *Violation
// carrying the file, byte offset, and implicated bucket index:
//
//   - buckets are ordered: FirstID strictly increasing, Degree strictly
//     decreasing, FirstOff consistent with the degree arithmetic;
//   - the edge file holds exactly NumEdges in-range destination entries
//     (decoding every block on a v2 graph, whose offset table must also
//     be monotone and end at the file size);
//   - the new→old map has NumVertices entries and the old→new map inverts
//     it, with every non-vertex old ID marked NoVertex;
//   - the summed bucket degrees equal NumEdges.
func Verify(g *Graph) error {
	if err := verifyBuckets(g); err != nil {
		return err
	}
	if err := verifyEdges(g); err != nil {
		return err
	}
	return verifyMaps(g)
}

func verifyBuckets(g *Graph) error {
	meta := g.MetaFile()
	if g.NumVertices == 0 {
		if len(g.Buckets) != 0 || g.NumEdges != 0 {
			return violate(meta, 8, -1, "empty graph with %d buckets, %d edges", len(g.Buckets), g.NumEdges)
		}
		return nil
	}
	if len(g.Buckets) == 0 {
		return violate(meta, 28, -1, "%d vertices but no buckets", g.NumVertices)
	}
	if g.Buckets[0].FirstID != 0 || g.Buckets[0].FirstOff != 0 {
		return violate(meta, g.bucketByte(0), 0, "first bucket starts at id %d, offset %d",
			g.Buckets[0].FirstID, g.Buckets[0].FirstOff)
	}
	var total int64
	for i, b := range g.Buckets {
		end := graph.VertexID(g.NumVertices)
		if i+1 < len(g.Buckets) {
			next := g.Buckets[i+1]
			if next.FirstID <= b.FirstID {
				return violate(meta, g.bucketByte(i+1), i+1, "FirstID %d not increasing", next.FirstID)
			}
			if next.Degree >= b.Degree {
				return violate(meta, g.bucketByte(i+1), i+1, "degree %d not decreasing", next.Degree)
			}
			end = next.FirstID
			wantOff := b.FirstOff + int64(end-b.FirstID)*int64(b.Degree)
			if next.FirstOff != wantOff {
				return violate(meta, g.bucketByte(i+1), i+1, "FirstOff %d, arithmetic says %d",
					next.FirstOff, wantOff)
			}
		}
		total += int64(end-b.FirstID) * int64(b.Degree)
	}
	if total != g.NumEdges {
		// Offset 16 is the meta NumEdges field the sum is checked against.
		return violate(meta, 16, len(g.Buckets)-1, "bucket degrees sum to %d, NumEdges is %d", total, g.NumEdges)
	}
	return nil
}

// bucketCursor resolves ascending edge-entry offsets to bucket indexes in
// amortized O(1) — verifyEdges streams entries in order, so the implicated
// bucket only ever moves forward.
type bucketCursor struct {
	g *Graph
	i int
}

func (c *bucketCursor) at(entry int64) int {
	if len(c.g.Buckets) == 0 {
		return -1
	}
	for c.i+1 < len(c.g.Buckets) && c.g.Buckets[c.i+1].FirstOff <= entry {
		c.i++
	}
	return c.i
}

func verifyEdges(g *Graph) error {
	edges := g.EdgesFile()
	f, err := g.dev.Open(edges)
	if err != nil {
		return err
	}
	if g.Version() == 2 {
		offs := g.blockOffs
		if offs[0] != 0 {
			return violate(g.MetaFile(), g.blockTableByte(0), -1, "block offset table starts at %d, want 0", offs[0])
		}
		for i := 1; i < len(offs); i++ {
			if offs[i] < offs[i-1] {
				return violate(g.MetaFile(), g.blockTableByte(i), -1,
					"block offset table not monotone: %d after %d", offs[i], offs[i-1])
			}
		}
		if last := offs[len(offs)-1]; f.Size() != last {
			return violate(edges, min64(f.Size(), last), -1,
				"edge file has %d bytes, block offset table ends at %d", f.Size(), last)
		}
	} else if f.Size() != g.NumEdges*EntryBytes {
		return violate(edges, min64(f.Size(), g.NumEdges*EntryBytes), -1,
			"edge file has %d bytes, want %d", f.Size(), g.NumEdges*EntryBytes)
	}
	r, err := g.Entries(0, g.NumEdges)
	if err != nil {
		return err
	}
	cur := &bucketCursor{g: g}
	for i := int64(0); i < g.NumEdges; i++ {
		byteOff := r.ByteOffset()
		dst, err := r.Next()
		if err != nil {
			return &Violation{File: edges, Offset: byteOff, Bucket: cur.at(i),
				Detail: fmt.Sprintf("edge file truncated or undecodable at entry %d: %v", i, err), Err: err}
		}
		if int(dst) >= g.NumVertices {
			return violate(edges, byteOff, cur.at(i), "entry %d destination %d out of range [0,%d)",
				i, dst, g.NumVertices)
		}
	}
	return nil
}

// blockTableByte returns the byte offset of block-offset-table entry i in
// the v2 meta file.
func (g *Graph) blockTableByte(i int) int64 {
	return g.bucketByte(len(g.Buckets)) + int64(i)*8
}

func verifyMaps(g *Graph) error {
	n2oName := g.prefix + suffixNew2Old
	o2nName := g.prefix + suffixOld2New
	n2oF, err := g.dev.Open(n2oName)
	if err != nil {
		return err
	}
	if n2oF.Size() != int64(g.NumVertices)*4 {
		return violate(n2oName, min64(n2oF.Size(), int64(g.NumVertices)*4), -1,
			"new2old has %d bytes, want %d", n2oF.Size(), g.NumVertices*4)
	}
	o2nF, err := g.dev.Open(o2nName)
	if err != nil {
		return err
	}
	wantOld := int64(g.MaxOldID) + 1
	if g.NumVertices == 0 {
		wantOld = o2nF.Size() / 4 // empty graphs have a degenerate map
	}
	if o2nF.Size() != wantOld*4 {
		return violate(o2nName, min64(o2nF.Size(), wantOld*4), -1,
			"old2new has %d bytes, want %d", o2nF.Size(), wantOld*4)
	}

	// Stream old2new, counting vertices and checking ranges; then
	// stream new2old verifying the inverse through point reads of
	// old2new (block reads keep this O(V) with buffered IO).
	r := storage.NewReader(o2nF)
	var buf [4]byte
	count := 0
	var old int64
	for ; ; old++ {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		newID := graph.VertexID(binary.LittleEndian.Uint32(buf[:]))
		if newID == graph.NoVertex {
			continue
		}
		if int(newID) >= g.NumVertices {
			return violate(o2nName, old*4, -1, "old2new[%d] maps to %d, out of range [0,%d)",
				old, newID, g.NumVertices)
		}
		count++
	}
	if count != g.NumVertices {
		return violate(o2nName, 0, -1, "old2new names %d vertices, want %d", count, g.NumVertices)
	}
	rn := storage.NewReader(n2oF)
	for newID := 0; newID < g.NumVertices; newID++ {
		if err := rn.ReadFull(buf[:]); err != nil {
			return err
		}
		bkt, _ := g.bucketOf(graph.VertexID(newID))
		old := int64(binary.LittleEndian.Uint32(buf[:]))
		if old > int64(g.MaxOldID) {
			return violate(n2oName, int64(newID)*4, bkt,
				"new2old[%d] = %d exceeds MaxOldID %d", newID, old, g.MaxOldID)
		}
		var inv [4]byte
		if _, err := o2nF.ReadAt(inv[:], old*4); err != nil {
			return err
		}
		if got := binary.LittleEndian.Uint32(inv[:]); got != uint32(newID) {
			return violate(n2oName, int64(newID)*4, bkt,
				"maps disagree: new2old[%d]=%d but old2new[%d]=%d", newID, old, old, got)
		}
	}
	return nil
}
