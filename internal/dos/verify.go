package dos

import (
	"encoding/binary"
	"fmt"
	"io"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

// Verify checks a converted graph's structural invariants, streaming the
// on-device files once. It validates what the offset arithmetic silently
// assumes, so a corrupted or hand-edited graph fails loudly instead of
// returning wrong adjacencies:
//
//   - buckets are ordered: FirstID strictly increasing, Degree strictly
//     decreasing, FirstOff consistent with the degree arithmetic;
//   - the edge file holds exactly NumEdges in-range destination entries;
//   - the new→old map has NumVertices entries and the old→new map inverts
//     it, with every non-vertex old ID marked NoVertex;
//   - the summed bucket degrees equal NumEdges.
func Verify(g *Graph) error {
	if err := verifyBuckets(g); err != nil {
		return err
	}
	if err := verifyEdges(g); err != nil {
		return err
	}
	return verifyMaps(g)
}

func verifyBuckets(g *Graph) error {
	if g.NumVertices == 0 {
		if len(g.Buckets) != 0 || g.NumEdges != 0 {
			return fmt.Errorf("dos: empty graph with %d buckets, %d edges", len(g.Buckets), g.NumEdges)
		}
		return nil
	}
	if len(g.Buckets) == 0 {
		return fmt.Errorf("dos: %d vertices but no buckets", g.NumVertices)
	}
	if g.Buckets[0].FirstID != 0 || g.Buckets[0].FirstOff != 0 {
		return fmt.Errorf("dos: first bucket starts at id %d, offset %d",
			g.Buckets[0].FirstID, g.Buckets[0].FirstOff)
	}
	var total int64
	for i, b := range g.Buckets {
		end := graph.VertexID(g.NumVertices)
		if i+1 < len(g.Buckets) {
			next := g.Buckets[i+1]
			if next.FirstID <= b.FirstID {
				return fmt.Errorf("dos: bucket %d FirstID %d not increasing", i+1, next.FirstID)
			}
			if next.Degree >= b.Degree {
				return fmt.Errorf("dos: bucket %d degree %d not decreasing", i+1, next.Degree)
			}
			end = next.FirstID
			wantOff := b.FirstOff + int64(end-b.FirstID)*int64(b.Degree)
			if next.FirstOff != wantOff {
				return fmt.Errorf("dos: bucket %d FirstOff %d, arithmetic says %d",
					i+1, next.FirstOff, wantOff)
			}
		}
		total += int64(end-b.FirstID) * int64(b.Degree)
	}
	if total != g.NumEdges {
		return fmt.Errorf("dos: bucket degrees sum to %d, NumEdges is %d", total, g.NumEdges)
	}
	return nil
}

func verifyEdges(g *Graph) error {
	f, err := g.dev.Open(g.EdgesFile())
	if err != nil {
		return err
	}
	if f.Size() != g.NumEdges*EntryBytes {
		return fmt.Errorf("dos: edge file has %d bytes, want %d", f.Size(), g.NumEdges*EntryBytes)
	}
	r := storage.NewReader(f)
	var buf [EntryBytes]byte
	for i := int64(0); i < g.NumEdges; i++ {
		if err := r.ReadFull(buf[:]); err != nil {
			return fmt.Errorf("dos: edge file truncated at entry %d: %w", i, err)
		}
		dst := binary.LittleEndian.Uint32(buf[:])
		if int(dst) >= g.NumVertices {
			return fmt.Errorf("dos: entry %d destination %d out of range [0,%d)", i, dst, g.NumVertices)
		}
	}
	return nil
}

func verifyMaps(g *Graph) error {
	n2oF, err := g.dev.Open(g.prefix + suffixNew2Old)
	if err != nil {
		return err
	}
	if n2oF.Size() != int64(g.NumVertices)*4 {
		return fmt.Errorf("dos: new2old has %d bytes, want %d", n2oF.Size(), g.NumVertices*4)
	}
	o2nF, err := g.dev.Open(g.prefix + suffixOld2New)
	if err != nil {
		return err
	}
	wantOld := int64(g.MaxOldID) + 1
	if g.NumVertices == 0 {
		wantOld = o2nF.Size() / 4 // empty graphs have a degenerate map
	}
	if o2nF.Size() != wantOld*4 {
		return fmt.Errorf("dos: old2new has %d bytes, want %d", o2nF.Size(), wantOld*4)
	}

	// Stream old2new, counting vertices and checking ranges; then
	// stream new2old verifying the inverse through point reads of
	// old2new (block reads keep this O(V) with buffered IO).
	r := storage.NewReader(o2nF)
	var buf [4]byte
	count := 0
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		newID := graph.VertexID(binary.LittleEndian.Uint32(buf[:]))
		if newID == graph.NoVertex {
			continue
		}
		if int(newID) >= g.NumVertices {
			return fmt.Errorf("dos: old2new maps to %d, out of range", newID)
		}
		count++
	}
	if count != g.NumVertices {
		return fmt.Errorf("dos: old2new names %d vertices, want %d", count, g.NumVertices)
	}
	rn := storage.NewReader(n2oF)
	for newID := 0; newID < g.NumVertices; newID++ {
		if err := rn.ReadFull(buf[:]); err != nil {
			return err
		}
		old := int64(binary.LittleEndian.Uint32(buf[:]))
		if old > int64(g.MaxOldID) {
			return fmt.Errorf("dos: new2old[%d] = %d exceeds MaxOldID %d", newID, old, g.MaxOldID)
		}
		var inv [4]byte
		if _, err := o2nF.ReadAt(inv[:], old*4); err != nil {
			return err
		}
		if got := binary.LittleEndian.Uint32(inv[:]); got != uint32(newID) {
			return fmt.Errorf("dos: maps disagree: new2old[%d]=%d but old2new[%d]=%d",
				newID, old, old, got)
		}
	}
	return nil
}
