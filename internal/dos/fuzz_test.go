package dos

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

// Fuzz targets for the DOS v1+v2 on-device parsers. The contract under
// test is uniform: arbitrary file bytes may produce errors, never panics,
// runaway allocations, or silently wrong reads. Run the short CI budget
// with `make fuzz-short`; seed corpora live under testdata/fuzz (regenerate
// with GRAPHZ_WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus).

// seedFiles converts the paper graph (codec nil = v1) and returns the raw
// bytes of its meta, edges, new2old, and old2new files.
func seedFiles(tb testing.TB, codec storage.Codec) (meta, edges, n2o, o2n []byte) {
	tb.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "g.raw", paperEdges); err != nil {
		tb.Fatal(err)
	}
	g, err := Convert(ConvertConfig{Dev: dev, Codec: codec, BlockEntries: 2}, "g.raw", "g")
	if err != nil {
		tb.Fatal(err)
	}
	read := func(name string) []byte {
		b, err := storage.ReadAllFile(dev, name)
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	return read(g.MetaFile()), read(g.EdgesFile()),
		read(g.Prefix() + suffixNew2Old), read(g.Prefix() + suffixOld2New)
}

// FuzzMetaParse throws arbitrary bytes at Load and, when Load accepts
// them, at the in-memory accessors that trust the bucket table.
func FuzzMetaParse(f *testing.F) {
	m1, _, _, _ := seedFiles(f, nil)
	m2, _, _, _ := seedFiles(f, storage.CodecVarint)
	f.Add(m1)
	f.Add(m2)
	f.Add(m1[:20])
	f.Add(m2[:40])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dev := storage.NewDevice(storage.NullDevice, storage.Options{})
		if err := storage.WriteAll(dev, "g.meta", data); err != nil {
			t.Fatal(err)
		}
		g, err := Load(dev, "g")
		if err != nil {
			return
		}
		// Accepted metas must support the accessors without panicking,
		// even when the bucket table is semantically nonsense.
		_ = g.Version()
		_ = g.Codec()
		_ = g.IndexBytes()
		_ = g.BlockTableBytes()
		_ = g.BlockLayout()
		if g.NumVertices > 0 {
			_, _ = g.Degree(0)
			_, _ = g.EdgeOffset(graph.VertexID(g.NumVertices - 1))
		}
	})
}

// FuzzEdgesDecode replaces a valid graph's edges file with arbitrary bytes
// and drives every decode path: the sequential entry stream, per-vertex
// adjacency reads, the integrity checker, and the block codecs directly.
func FuzzEdgesDecode(f *testing.F) {
	_, e1, _, _ := seedFiles(f, nil)
	_, e2, _, _ := seedFiles(f, storage.CodecRaw)
	_, e3, _, _ := seedFiles(f, storage.CodecVarint)
	_, e4, _, _ := seedFiles(f, storage.CodecGroupVarint)
	f.Add(e1)
	f.Add(e2)
	f.Add(e3)
	f.Add(e4)
	f.Add(e3[:len(e3)-1])
	f.Add([]byte{0x80, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, codec := range []storage.Codec{nil, storage.CodecRaw, storage.CodecVarint, storage.CodecGroupVarint} {
			dev := storage.NewDevice(storage.NullDevice, storage.Options{})
			if err := graph.WriteEdges(dev, "g.raw", paperEdges); err != nil {
				t.Fatal(err)
			}
			g, err := Convert(ConvertConfig{Dev: dev, Codec: codec, BlockEntries: 2}, "g.raw", "g")
			if err != nil {
				t.Fatal(err)
			}
			if err := storage.WriteAll(dev, g.EdgesFile(), data); err != nil {
				t.Fatal(err)
			}
			if r, err := g.Entries(0, g.NumEdges); err == nil {
				for {
					if _, err := r.Next(); err != nil {
						break
					}
				}
			}
			for v := 0; v < g.NumVertices; v++ {
				_, _ = g.Adjacency(graph.VertexID(v), nil)
			}
			_ = Verify(g)
		}
		_, _ = storage.CodecRaw.DecodeBlock(nil, data)
		_, _ = storage.CodecVarint.DecodeBlock(nil, data)
		_, _ = storage.CodecGroupVarint.DecodeBlock(nil, data)
	})
}

// FuzzVerify feeds a whole fuzzed file set through Load+Verify: whatever
// Load accepts, Verify must walk to a verdict without panicking.
func FuzzVerify(f *testing.F) {
	for _, codec := range []storage.Codec{nil, storage.CodecVarint, storage.CodecGroupVarint} {
		meta, edges, n2o, o2n := seedFiles(f, codec)
		f.Add(meta, edges, n2o, o2n)
		f.Add(meta, edges[:len(edges)-2], n2o, o2n)
		f.Add(meta, edges, o2n, n2o) // maps swapped
	}
	f.Fuzz(func(t *testing.T, meta, edges, n2o, o2n []byte) {
		dev := storage.NewDevice(storage.NullDevice, storage.Options{})
		for name, data := range map[string][]byte{
			"g.meta": meta, "g.edges": edges,
			"g" + suffixNew2Old: n2o, "g" + suffixOld2New: o2n,
		} {
			if err := storage.WriteAll(dev, name, data); err != nil {
				t.Fatal(err)
			}
		}
		g, err := Load(dev, "g")
		if err != nil {
			return
		}
		_ = Verify(g)
	})
}

// corpusEntry renders values in the go fuzz v1 corpus file format.
func corpusEntry(vals ...[]byte) []byte {
	var b bytes.Buffer
	b.WriteString("go test fuzz v1\n")
	for _, v := range vals {
		fmt.Fprintf(&b, "[]byte(%q)\n", v)
	}
	return b.Bytes()
}

// TestWriteFuzzCorpus regenerates the committed seed corpora under
// testdata/fuzz. It is a no-op unless GRAPHZ_WRITE_FUZZ_CORPUS is set.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("GRAPHZ_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set GRAPHZ_WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	m1, e1, n1, o1 := seedFiles(t, nil)
	m2, e2, n2, o2 := seedFiles(t, storage.CodecRaw)
	m3, e3, n3, o3 := seedFiles(t, storage.CodecVarint)
	m4, e4, n4, o4 := seedFiles(t, storage.CodecGroupVarint)
	write := func(target, name string, vals ...[]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), corpusEntry(vals...), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("FuzzMetaParse", "meta-v1", m1)
	write("FuzzMetaParse", "meta-v2-raw", m2)
	write("FuzzMetaParse", "meta-v2-varint", m3)
	write("FuzzMetaParse", "meta-v2-truncated", m3[:40])
	write("FuzzMetaParse", "meta-v2-groupvarint", m4)
	write("FuzzEdgesDecode", "edges-v1", e1)
	write("FuzzEdgesDecode", "edges-v2-raw", e2)
	write("FuzzEdgesDecode", "edges-v2-varint", e3)
	write("FuzzEdgesDecode", "edges-v2-groupvarint", e4)
	write("FuzzEdgesDecode", "edges-continuation-tail", []byte{0x02, 0x02, 0x80})
	write("FuzzVerify", "set-v1", m1, e1, n1, o1)
	write("FuzzVerify", "set-v2-raw", m2, e2, n2, o2)
	write("FuzzVerify", "set-v2-varint", m3, e3, n3, o3)
	write("FuzzVerify", "set-v2-groupvarint", m4, e4, n4, o4)
	write("FuzzVerify", "set-v2-truncated-edges", m3, e3[:len(e3)-2], n3, o3)
}
