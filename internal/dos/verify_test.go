package dos

import (
	"strings"
	"testing"
	"testing/quick"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

func TestVerifyConvertedGraphs(t *testing.T) {
	cases := map[string][]graph.Edge{
		"paper":  paperEdges,
		"rmat":   gen.RMAT(9, 3000, gen.NaturalRMAT, 131),
		"zipf":   gen.Zipf(400, 3000, 0.9, 132),
		"er":     gen.ErdosRenyi(100, 600, 133),
		"grid":   gen.Grid(20, 20),
		"single": {{Src: 3, Dst: 9}},
		"empty":  nil,
	}
	for name, edges := range cases {
		dev := storage.NewDevice(storage.NullDevice, storage.Options{})
		g := convertEdges(t, dev, edges, "g")
		if err := Verify(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, paperEdges, "g")

	// Corrupt a bucket's offset.
	g.Buckets[1].FirstOff++
	if err := Verify(g); err == nil || !strings.Contains(err.Error(), "arithmetic") {
		t.Errorf("corrupted bucket offset not caught: %v", err)
	}
	g.Buckets[1].FirstOff--

	// Corrupt an edge entry to an out-of-range destination.
	f, err := dev.Open(g.EdgesFile())
	if err != nil {
		t.Fatal(err)
	}
	var orig [4]byte
	f.ReadAt(orig[:], 0)
	f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0x7F}, 0)
	if err := Verify(g); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("corrupted edge entry not caught: %v", err)
	}
	f.WriteAt(orig[:], 0)

	// Truncate the edge file.
	if err := f.Truncate(f.Size() - 4); err != nil {
		t.Fatal(err)
	}
	if err := Verify(g); err == nil {
		t.Error("truncated edge file not caught")
	}
}

func TestVerifyDetectsMapCorruption(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, paperEdges, "g")
	f, err := dev.Open("g.new2old")
	if err != nil {
		t.Fatal(err)
	}
	// Point new ID 0 at a different old ID than old2new claims.
	f.WriteAt([]byte{9, 0, 0, 0}, 0) // old 9 is a real vertex, but maps to new 2
	if err := Verify(g); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Errorf("map disagreement not caught: %v", err)
	}
}

func TestVerifyDetectsBucketSumMismatch(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, paperEdges, "g")
	g.NumEdges++
	if err := Verify(g); err == nil || !strings.Contains(err.Error(), "sum") {
		t.Errorf("edge-count mismatch not caught: %v", err)
	}
}

// TestQuickConvertThenVerify fuzzes the conversion pipeline against the
// integrity checker on arbitrary small graphs.
func TestQuickConvertThenVerify(t *testing.T) {
	check := func(seed uint64, n uint8, m uint16) bool {
		vertices := 2 + int(n)%120
		edges := gen.ErdosRenyi(vertices, 1+int(m)%500, seed)
		dev := storage.NewDevice(storage.NullDevice, storage.Options{})
		if err := graph.WriteEdges(dev, "raw", edges); err != nil {
			return false
		}
		g, err := Convert(ConvertConfig{Dev: dev, MemoryBudget: 1 + int64(m)}, "raw", "g")
		if err != nil {
			t.Logf("convert: %v", err)
			return false
		}
		if err := Verify(g); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		return true
	}
	if err := quickCheck20(check); err != nil {
		t.Error(err)
	}
}

// quickCheck20 runs testing/quick with a modest count (each case does a
// full external conversion).
func quickCheck20(f any) error {
	return quick.Check(f, &quick.Config{MaxCount: 20})
}
