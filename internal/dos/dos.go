// Package dos implements Degree-Ordered Storage, the paper's first
// contribution (Section III).
//
// Vertices are relabeled in descending out-degree order (ties broken by
// original ID). The vertex index then collapses to one entry per *unique
// degree*: the ids_table maps a degree to the smallest new ID having it,
// and the id_offset_table maps a degree to the edge-file offset of that
// first ID. Both tables are stored here as one slice of Buckets. A
// vertex's adjacency location is computed, never stored:
//
//	offset(x) = id_offset_table[d] + (x - ids_table[d]) * d
//
// Because natural graphs have very few unique degrees (paper Claim 1:
// |UD| <= 3*sqrt(E)), the index is typically kilobytes where CSR needs
// gigabytes, so it always resides in memory and vertex lookup never
// touches the disk.
package dos

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"graphz/internal/extsort"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// Bucket is one row of the combined ids/id-offset tables: the run of new
// IDs [FirstID, nextBucket.FirstID) all have out-degree Degree, and the
// adjacency list of FirstID starts at edge-entry offset FirstOff.
type Bucket struct {
	Degree   uint32
	FirstID  graph.VertexID
	FirstOff int64 // in 4-byte edge entries, not bytes
}

// BucketBytes is the in-memory (and on-disk meta) size of one Bucket.
const BucketBytes = 16

// EntryBytes is the size of one adjacency entry in the edges file (a
// destination VertexID).
const EntryBytes = 4

// Graph is a degree-ordered graph resident on a device. The Buckets slice
// is the entire vertex index; everything else stays on the device (the v2
// per-block offset table also resides in memory, one u64 per ~64Ki
// entries — still ~4 orders of magnitude smaller than a per-vertex
// index).
type Graph struct {
	dev    *storage.Device
	prefix string

	NumVertices int   // dense new-ID space (positive- plus zero-degree vertices)
	NumEdges    int64 // adjacency entries in the edges file
	MaxOldID    graph.VertexID
	Buckets     []Bucket // ascending FirstID, descending Degree

	// v2 block-codec state; all zero for a v1 graph.
	codec        storage.Codec // block codec (nil for v1 — raw fixed entries)
	blockEntries int64         // entries per encoded block
	blockOffs    []int64       // byte offset per block, plus the file size
}

// Version reports the on-device format version: 1 (raw fixed 4-byte
// entries) or 2 (block-encoded edges with a per-block offset table).
func (g *Graph) Version() int {
	if g.blockOffs == nil {
		return 1
	}
	return 2
}

// Codec returns the adjacency block codec (storage.CodecRaw for v1).
func (g *Graph) Codec() storage.Codec {
	if g.codec == nil {
		return storage.CodecRaw
	}
	return g.codec
}

// BlockLayout describes how the edges file is addressed on the device —
// the translation the engine's Sio/Dispatcher pipeline needs to keep its
// entry-offset arithmetic while the bytes underneath are compressed.
func (g *Graph) BlockLayout() storage.BlockLayout {
	if g.Version() == 1 {
		return storage.RawBlockLayout(g.NumEdges)
	}
	return storage.BlockLayout{
		Codec:        g.codec,
		BlockEntries: g.blockEntries,
		NumEntries:   g.NumEdges,
		BlockOffs:    g.blockOffs,
	}
}

// BlockTableBytes returns the resident size of the v2 per-block offset
// table (zero for v1). Reported separately from IndexBytes so the paper's
// Table XI index-size comparison stays codec-independent.
func (g *Graph) BlockTableBytes() int64 { return int64(len(g.blockOffs)) * 8 }

// File name suffixes under the graph's prefix.
const (
	suffixEdges   = ".edges"   // dst entries grouped by new src, ascending
	suffixMeta    = ".meta"    // counts + bucket table
	suffixNew2Old = ".new2old" // u32 old ID per new ID
	suffixOld2New = ".old2new" // u32 new ID per old ID (NoVertex for gaps)
)

// EdgesFile returns the device file name holding the adjacency entries.
func (g *Graph) EdgesFile() string { return g.prefix + suffixEdges }

// MetaFile returns the device file name holding the metadata.
func (g *Graph) MetaFile() string { return g.prefix + suffixMeta }

// Device returns the device the graph lives on.
func (g *Graph) Device() *storage.Device { return g.dev }

// Prefix returns the file-name prefix of the graph.
func (g *Graph) Prefix() string { return g.prefix }

// IndexBytes returns the resident size of the vertex index — the quantity
// the paper's Table XI compares against CSR.
func (g *Graph) IndexBytes() int64 { return int64(len(g.Buckets)) * BucketBytes }

// UniqueDegrees returns the number of distinct out-degrees.
func (g *Graph) UniqueDegrees() int { return len(g.Buckets) }

// bucketOf returns the index of the bucket containing new ID x: the last
// bucket with FirstID <= x.
func (g *Graph) bucketOf(x graph.VertexID) (int, error) {
	if int(x) >= g.NumVertices {
		return 0, fmt.Errorf("dos: vertex %d out of range [0,%d)", x, g.NumVertices)
	}
	// First bucket with FirstID > x, minus one.
	i := sort.Search(len(g.Buckets), func(i int) bool { return g.Buckets[i].FirstID > x })
	if i == 0 {
		// Only possible on a corrupt bucket table (bucket 0 must cover ID 0).
		return 0, fmt.Errorf("dos: vertex %d precedes the first bucket", x)
	}
	return i - 1, nil
}

// Degree returns the out-degree of new ID x.
func (g *Graph) Degree(x graph.VertexID) (uint32, error) {
	b, err := g.bucketOf(x)
	if err != nil {
		return 0, err
	}
	return g.Buckets[b].Degree, nil
}

// EdgeOffset returns the edge-entry offset of x's adjacency list, using
// the paper's arithmetic. The adjacency occupies entries
// [EdgeOffset(x), EdgeOffset(x)+Degree(x)).
func (g *Graph) EdgeOffset(x graph.VertexID) (int64, error) {
	b, err := g.bucketOf(x)
	if err != nil {
		return 0, err
	}
	bk := g.Buckets[b]
	return bk.FirstOff + int64(x-bk.FirstID)*int64(bk.Degree), nil
}

// Adjacency reads the out-neighbors of x (random access), appending to
// dst and returning it.
func (g *Graph) Adjacency(x graph.VertexID, dst []graph.VertexID) ([]graph.VertexID, error) {
	b, err := g.bucketOf(x)
	if err != nil {
		return nil, err
	}
	deg := int(g.Buckets[b].Degree)
	if deg == 0 {
		return dst, nil
	}
	off := g.Buckets[b].FirstOff + int64(x-g.Buckets[b].FirstID)*int64(g.Buckets[b].Degree)
	if g.Version() == 2 {
		r, err := g.Entries(off, off+int64(deg))
		if err != nil {
			return nil, err
		}
		for i := 0; i < deg; i++ {
			v, err := r.Next()
			if err != nil {
				return nil, fmt.Errorf("dos: adjacency of vertex %d: %w", x, err)
			}
			dst = append(dst, v)
		}
		return dst, nil
	}
	f, err := g.dev.Open(g.EdgesFile())
	if err != nil {
		return nil, err
	}
	buf := make([]byte, deg*EntryBytes)
	n, err := f.ReadAt(buf, off*EntryBytes)
	if err != nil {
		return nil, err
	}
	if n != len(buf) {
		return nil, fmt.Errorf("dos: short adjacency read for vertex %d: %d of %d bytes", x, n, len(buf))
	}
	for i := 0; i < deg; i++ {
		dst = append(dst, graph.VertexID(binary.LittleEndian.Uint32(buf[i*EntryBytes:])))
	}
	return dst, nil
}

// EntryReader streams decoded adjacency entries over an entry range,
// transparently handling both the v1 raw layout and v2 encoded blocks
// (each block is read and decoded once, in order). Next returns io.EOF
// when the range is exhausted.
type EntryReader struct {
	g    *Graph
	f    *storage.File
	blk  storage.BlockLayout
	next int64 // absolute entry offset of the next entry
	end  int64

	r *storage.Reader // v1: sequential range reader

	dec    []uint32 // v2: decoded entries of block cur
	cur    int64    // v2: decoded block index; -1 before the first
	curOff int64    // v2: byte offset of block cur (for error reporting)
}

// Entries returns a reader over the adjacency entries [start, end).
func (g *Graph) Entries(start, end int64) (*EntryReader, error) {
	if start < 0 || end < start || end > g.NumEdges {
		return nil, fmt.Errorf("dos: entry range [%d,%d) outside [0,%d)", start, end, g.NumEdges)
	}
	f, err := g.dev.Open(g.EdgesFile())
	if err != nil {
		return nil, err
	}
	r := &EntryReader{g: g, f: f, blk: g.BlockLayout(), next: start, end: end, cur: -1}
	if g.Version() == 1 {
		r.r = storage.NewRangeReader(f, start*EntryBytes, end*EntryBytes)
	}
	return r, nil
}

// ByteOffset returns the file byte offset associated with the entry Next
// will return: the entry's own offset for v1, or the start of its encoded
// block for v2 (individual entries have no addressable bytes there).
func (r *EntryReader) ByteOffset() int64 {
	if r.g.Version() == 1 {
		return r.next * EntryBytes
	}
	b := r.next / r.blk.BlockEntries
	if b >= r.blk.NumBlocks() {
		return r.blk.BlockOffs[len(r.blk.BlockOffs)-1]
	}
	lo, _ := r.blk.BlockRange(b)
	return lo
}

// Next returns the next entry, or io.EOF past the end of the range.
func (r *EntryReader) Next() (graph.VertexID, error) {
	if r.next >= r.end {
		return 0, io.EOF
	}
	if r.r != nil {
		var buf [EntryBytes]byte
		if err := r.r.ReadFull(buf[:]); err != nil {
			return 0, fmt.Errorf("dos: reading entry %d: %w", r.next, err)
		}
		r.next++
		return graph.VertexID(binary.LittleEndian.Uint32(buf[:])), nil
	}
	b := r.next / r.blk.BlockEntries
	if b != r.cur {
		if err := r.loadBlock(b); err != nil {
			return 0, err
		}
	}
	v := r.dec[r.next-b*r.blk.BlockEntries]
	r.next++
	return graph.VertexID(v), nil
}

// loadBlock reads and decodes encoded block b into r.dec.
func (r *EntryReader) loadBlock(b int64) error {
	lo, hi := r.blk.BlockRange(b)
	buf := make([]byte, hi-lo)
	if err := storage.NewRangeReader(r.f, lo, hi).ReadFull(buf); err != nil {
		return fmt.Errorf("dos: reading block %d at byte %d: %w", b, lo, err)
	}
	dec, err := r.blk.Codec.DecodeBlock(r.dec[:0], buf)
	if err != nil {
		return fmt.Errorf("dos: decoding block %d at byte %d: %w", b, lo, err)
	}
	if int64(len(dec)) != r.blk.EntriesIn(b) {
		return fmt.Errorf("dos: block %d at byte %d decodes to %d entries, want %d",
			b, lo, len(dec), r.blk.EntriesIn(b))
	}
	r.dec, r.cur, r.curOff = dec, b, lo
	return nil
}

// NewToOld loads the full new→old ID map (one u32 per new ID). Intended
// for result extraction, not the inner loop.
func (g *Graph) NewToOld() ([]graph.VertexID, error) {
	data, err := storage.ReadAllFile(g.dev, g.prefix+suffixNew2Old)
	if err != nil {
		return nil, err
	}
	out := make([]graph.VertexID, len(data)/4)
	for i := range out {
		out[i] = graph.VertexID(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return out, nil
}

// OldToNew loads the dense old→new ID map over [0, MaxOldID]. Old IDs
// that name no vertex map to graph.NoVertex.
func (g *Graph) OldToNew() ([]graph.VertexID, error) {
	data, err := storage.ReadAllFile(g.dev, g.prefix+suffixOld2New)
	if err != nil {
		return nil, err
	}
	out := make([]graph.VertexID, len(data)/4)
	for i := range out {
		out[i] = graph.VertexID(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return out, nil
}

// writeMeta persists counts and the bucket table; a v2 graph additionally
// writes the codec byte, the block cut, and the per-block offset table
// (see docs/FORMAT.md).
func (g *Graph) writeMeta() error {
	if g.Version() == 2 {
		return g.writeMetaV2()
	}
	buf := make([]byte, metaHeaderV1+len(g.Buckets)*BucketBytes)
	binary.LittleEndian.PutUint64(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(g.NumVertices))
	binary.LittleEndian.PutUint64(buf[16:], uint64(g.NumEdges))
	binary.LittleEndian.PutUint32(buf[24:], uint32(g.MaxOldID))
	binary.LittleEndian.PutUint32(buf[28:], uint32(len(g.Buckets)))
	for i, b := range g.Buckets {
		o := metaHeaderV1 + i*BucketBytes
		binary.LittleEndian.PutUint32(buf[o:], b.Degree)
		binary.LittleEndian.PutUint32(buf[o+4:], uint32(b.FirstID))
		binary.LittleEndian.PutUint64(buf[o+8:], uint64(b.FirstOff))
	}
	return storage.WriteAll(g.dev, g.MetaFile(), buf)
}

func (g *Graph) writeMetaV2() error {
	nb := int64(len(g.blockOffs)) - 1
	buf := make([]byte, metaHeaderV2+len(g.Buckets)*BucketBytes+len(g.blockOffs)*8)
	binary.LittleEndian.PutUint64(buf[0:], metaMagicV2)
	binary.LittleEndian.PutUint64(buf[8:], uint64(g.NumVertices))
	binary.LittleEndian.PutUint64(buf[16:], uint64(g.NumEdges))
	binary.LittleEndian.PutUint32(buf[24:], uint32(g.MaxOldID))
	binary.LittleEndian.PutUint32(buf[28:], uint32(len(g.Buckets)))
	binary.LittleEndian.PutUint32(buf[32:], uint32(g.codec.ID()))
	binary.LittleEndian.PutUint32(buf[36:], uint32(g.blockEntries))
	binary.LittleEndian.PutUint64(buf[40:], uint64(nb))
	for i, b := range g.Buckets {
		o := metaHeaderV2 + i*BucketBytes
		binary.LittleEndian.PutUint32(buf[o:], b.Degree)
		binary.LittleEndian.PutUint32(buf[o+4:], uint32(b.FirstID))
		binary.LittleEndian.PutUint64(buf[o+8:], uint64(b.FirstOff))
	}
	tab := metaHeaderV2 + len(g.Buckets)*BucketBytes
	for i, off := range g.blockOffs {
		binary.LittleEndian.PutUint64(buf[tab+i*8:], uint64(off))
	}
	return storage.WriteAll(g.dev, g.MetaFile(), buf)
}

const (
	metaMagic    = 0x5a6872_47534f44  // "DOSGhZ"-ish tag (v1)
	metaMagicV2  = 0x325a687247534f44 // v1 tag with '2' in the top byte
	metaHeaderV1 = 32
	metaHeaderV2 = 48
)

// maxMetaVertices bounds the vertex/edge counts a meta file may claim:
// IDs are u32, so a dense new-ID space cannot exceed 2^32 (guards int
// conversions on hostile inputs).
const maxMetaVertices = int64(1) << 32

// Load opens a previously converted graph by prefix. Both format
// versions are recognized; malformed meta files of either version return
// errors, never panic (the FuzzMetaParse target holds this).
func Load(dev *storage.Device, prefix string) (*Graph, error) {
	buf, err := storage.ReadAllFile(dev, prefix+suffixMeta)
	if err != nil {
		return nil, fmt.Errorf("dos: loading meta: %w", err)
	}
	if len(buf) < metaHeaderV1 {
		return nil, fmt.Errorf("dos: %q is not a DOS meta file", prefix+suffixMeta)
	}
	magic := binary.LittleEndian.Uint64(buf)
	if magic != metaMagic && magic != metaMagicV2 {
		return nil, fmt.Errorf("dos: %q is not a DOS meta file", prefix+suffixMeta)
	}
	g := &Graph{
		dev:         dev,
		prefix:      prefix,
		NumVertices: int(binary.LittleEndian.Uint64(buf[8:])),
		NumEdges:    int64(binary.LittleEndian.Uint64(buf[16:])),
		MaxOldID:    graph.VertexID(binary.LittleEndian.Uint32(buf[24:])),
	}
	if v, e := binary.LittleEndian.Uint64(buf[8:]), binary.LittleEndian.Uint64(buf[16:]); v > uint64(maxMetaVertices) || e > uint64(maxMetaVertices) {
		return nil, fmt.Errorf("dos: meta claims %d vertices, %d edges: out of the u32 ID space", v, e)
	}
	header := metaHeaderV1
	if magic == metaMagicV2 {
		header = metaHeaderV2
		if len(buf) < metaHeaderV2 {
			return nil, fmt.Errorf("dos: v2 meta file truncated: %d bytes", len(buf))
		}
	}
	n := int64(binary.LittleEndian.Uint32(buf[28:]))
	want := int64(header) + n*BucketBytes
	if magic == metaMagicV2 {
		be := int64(binary.LittleEndian.Uint32(buf[36:]))
		if be <= 0 {
			return nil, fmt.Errorf("dos: v2 meta block size %d", be)
		}
		wantBlocks := (g.NumEdges + be - 1) / be
		nb := binary.LittleEndian.Uint64(buf[40:])
		if nb != uint64(wantBlocks) {
			return nil, fmt.Errorf("dos: v2 meta claims %d blocks, %d edges at %d entries/block need %d",
				nb, g.NumEdges, be, wantBlocks)
		}
		codec, err := storage.CodecByID(byte(binary.LittleEndian.Uint32(buf[32:])))
		if err != nil {
			return nil, fmt.Errorf("dos: v2 meta: %w", err)
		}
		g.codec, g.blockEntries = codec, be
		want += (wantBlocks + 1) * 8
	}
	if int64(len(buf)) != want {
		return nil, fmt.Errorf("dos: meta file truncated: %d buckets claimed, %d bytes (want %d)", n, len(buf), want)
	}
	g.Buckets = make([]Bucket, n)
	for i := range g.Buckets {
		o := header + i*BucketBytes
		g.Buckets[i] = Bucket{
			Degree:   binary.LittleEndian.Uint32(buf[o:]),
			FirstID:  graph.VertexID(binary.LittleEndian.Uint32(buf[o+4:])),
			FirstOff: int64(binary.LittleEndian.Uint64(buf[o+8:])),
		}
	}
	if magic == metaMagicV2 {
		tab := int64(header) + n*BucketBytes
		nb := (g.NumEdges + g.blockEntries - 1) / g.blockEntries
		g.blockOffs = make([]int64, nb+1)
		for i := range g.blockOffs {
			off := int64(binary.LittleEndian.Uint64(buf[tab+int64(i)*8:]))
			if off < 0 {
				return nil, fmt.Errorf("dos: v2 block offset table negative at block %d (%d)", i, off)
			}
			if i > 0 && off < g.blockOffs[i-1] {
				return nil, fmt.Errorf("dos: v2 block offset table not monotone at block %d (%d after %d)",
					i, off, g.blockOffs[i-1])
			}
			g.blockOffs[i] = off
		}
		if g.blockOffs[0] != 0 {
			return nil, fmt.Errorf("dos: v2 block offset table starts at %d, want 0", g.blockOffs[0])
		}
	}
	return g, nil
}

// RangeEdgeReader returns a sequential reader over the adjacency entries
// of the vertex range [lo, hi) — the access pattern of the engine's Sio
// component — plus the entry offset the range starts at. It is a v1-only
// raw-byte view; block-encoded graphs must use Entries.
func (g *Graph) RangeEdgeReader(lo, hi graph.VertexID) (*storage.Reader, int64, error) {
	if g.Version() != 1 {
		return nil, 0, fmt.Errorf("dos: RangeEdgeReader reads raw v1 bytes; use Entries for a v%d graph", g.Version())
	}
	start, err := g.EdgeOffset(lo)
	if err != nil {
		return nil, 0, err
	}
	var end int64
	if int(hi) >= g.NumVertices {
		end = g.NumEdges
	} else {
		end, err = g.EdgeOffset(hi)
		if err != nil {
			return nil, 0, err
		}
	}
	f, err := g.dev.Open(g.EdgesFile())
	if err != nil {
		return nil, 0, err
	}
	return storage.NewRangeReader(f, start*EntryBytes, end*EntryBytes), start, nil
}

// ConvertConfig parameterizes the out-of-core conversion.
type ConvertConfig struct {
	Dev *storage.Device
	// Clock receives compute charges; nil disables them.
	Clock *sim.Clock
	// MemoryBudget bounds the external sorts' in-memory chunks.
	MemoryBudget int64
	// RemoveInput deletes the raw edge file once the conversion no
	// longer needs it, reducing the peak device footprint (useful on
	// capacity-limited devices).
	RemoveInput bool
	// Codec selects the DOS v2 block codec for the emitted edges file
	// (storage.CodecRaw or storage.CodecVarint). Nil emits the v1
	// format: raw fixed 4-byte entries and no offset table. A v2
	// conversion additionally orders each vertex's adjacency by
	// ascending new destination ID — the property the delta codec
	// exploits — where v1 preserves the legacy ascending-original-ID
	// order.
	Codec storage.Codec
	// BlockEntries overrides the v2 entries-per-block cut; 0 means
	// storage.DefaultBlockSize/4 (one raw device block), which keeps
	// codec blocks aligned 1:1 with selective scheduling's block-skip
	// granularity. Ignored for v1.
	BlockEntries int64
}

// Convert runs the paper's Section III-C pipeline: build ⟨src,dst,deg⟩
// triads, sort by (degree desc, src), relabel sources sequentially, sort
// the ⟨new,old⟩ map by old ID, sort edges by destination and relabel
// destinations by merge-join (assigning new IDs to zero-out-degree
// vertices on the fly), then sort by new source and emit the final
// adjacency file plus the ids/id-offset tables.
//
// Every pass is sequential over the device; only the bucket table (one
// entry per unique degree) and the sort chunks are held in memory.
func Convert(cfg ConvertConfig, edgeFile, prefix string) (*Graph, error) {
	if cfg.MemoryBudget < extsort.MinMemoryBudget {
		cfg.MemoryBudget = extsort.MinMemoryBudget
	}
	c := &converter{cfg: cfg, edgeFile: edgeFile, prefix: prefix}
	g, err := c.run()
	c.cleanup()
	if err != nil {
		return nil, err
	}
	return g, nil
}

type converter struct {
	cfg      ConvertConfig
	edgeFile string
	prefix   string
	temps    []string
}

func (c *converter) temp(name string) string {
	t := c.prefix + ".tmp." + name
	c.temps = append(c.temps, t)
	return t
}

func (c *converter) cleanup() {
	for _, t := range c.temps {
		c.cfg.Dev.Remove(t)
	}
}

// sort runs an external sort over converter-owned files; inputs are
// deleted as soon as their runs are formed to bound the device footprint.
func (c *converter) sort(recSz int, key func(rec []byte) uint64, in, out string) error {
	return c.sortOpt(recSz, key, in, out, true)
}

func (c *converter) sortOpt(recSz int, key func(rec []byte) uint64, in, out string, removeInput bool) error {
	return extsort.Sort(extsort.Config{
		Dev:          c.cfg.Dev,
		Clock:        c.cfg.Clock,
		RecordSize:   recSz,
		Key:          key,
		MemoryBudget: c.cfg.MemoryBudget,
		TempPrefix:   out + ".run",
		RemoveInput:  removeInput,
	}, in, out)
}

func (c *converter) charge(bytes int64) {
	if c.cfg.Clock != nil {
		c.cfg.Clock.ComputeBytes(bytes)
	}
}

const triadBytes = 12

// triadKeyDegSrc orders by degree descending (complemented into the high
// word), then source ascending: the paper's "deg as 1st key and src as
// 2nd key" with descending degree.
func triadKeyDegSrc(rec []byte) uint64 {
	deg := binary.LittleEndian.Uint32(rec[8:])
	src := binary.LittleEndian.Uint32(rec)
	return uint64(^deg)<<32 | uint64(src)
}

func edgeKeySrc(rec []byte) uint64 {
	return uint64(binary.LittleEndian.Uint32(rec))
}

// edgeKeySrcDst orders by (new src, new dst) — the v2 final sort, which
// guarantees ascending destinations within each adjacency list.
func edgeKeySrcDst(rec []byte) uint64 {
	return uint64(binary.LittleEndian.Uint32(rec))<<32 |
		uint64(binary.LittleEndian.Uint32(rec[4:]))
}

func edgeKeyDst(rec []byte) uint64 {
	return uint64(binary.LittleEndian.Uint32(rec[4:]))
}

func pairKeyFirst(rec []byte) uint64 {
	return uint64(binary.LittleEndian.Uint32(rec))
}

func (c *converter) run() (*Graph, error) {
	dev := c.cfg.Dev

	// Pass 1: annotate every edge with its source's out-degree,
	// producing the paper's ⟨src, dst, deg⟩ triad list. Degrees are
	// counted in a host-side array when the ID space is moderate (one
	// sequential scan), falling back to an external sort by source for
	// huge ID spaces.
	triads := c.temp("triads")
	maxOld, numEdges, err := c.buildTriads(c.edgeFile, triads)
	if err != nil {
		return nil, err
	}
	if c.cfg.RemoveInput {
		dev.Remove(c.edgeFile)
	}

	// Pass 2: sort triads by (degree desc, src asc) — the degree
	// order — and relabel sources sequentially.
	byDeg := c.temp("bydeg")
	if err := c.sort(triadBytes, triadKeyDegSrc, triads, byDeg); err != nil {
		return nil, fmt.Errorf("dos: sorting by degree: %w", err)
	}
	dev.Remove(triads)
	edges2 := c.temp("edges2")    // (newsrc, olddst)
	pairsIn := c.temp("pairs_in") // (old, new), unsorted
	g := &Graph{dev: dev, prefix: c.prefix, NumEdges: numEdges, MaxOldID: maxOld}
	numPositive, err := c.relabelSources(byDeg, edges2, pairsIn, g)
	if err != nil {
		return nil, err
	}
	dev.Remove(byDeg)

	// Pass 3: sort the map by old ID for the destination merge-join.
	pairsByOld := c.temp("pairs_byold")
	if err := c.sort(8, pairKeyFirst, pairsIn, pairsByOld); err != nil {
		return nil, fmt.Errorf("dos: sorting id map: %w", err)
	}
	dev.Remove(pairsIn)

	// Pass 4: sort edges by destination and relabel destinations,
	// assigning new IDs to zero-out-degree vertices as they appear.
	byDst := c.temp("bydst")
	if err := c.sort(graph.EdgeBytes, edgeKeyDst, edges2, byDst); err != nil {
		return nil, fmt.Errorf("dos: sorting by dst: %w", err)
	}
	dev.Remove(edges2)
	edges4 := c.temp("edges4")   // (newsrc, newdst)
	zeroPairs := c.temp("zeros") // (old, new) of zero-degree vertices, sorted by old
	numZero, err := c.relabelDestinations(byDst, pairsByOld, edges4, zeroPairs, numPositive)
	if err != nil {
		return nil, err
	}
	dev.Remove(byDst)
	g.NumVertices = numPositive + numZero
	if numZero > 0 {
		g.Buckets = append(g.Buckets, Bucket{
			Degree:   0,
			FirstID:  graph.VertexID(numPositive),
			FirstOff: numEdges,
		})
	}

	// Pass 5: merge the two (old, new) pair streams into the dense
	// old→new file, and append the zero-degree vertices' old IDs to
	// the new→old file.
	if err := c.emitMaps(pairsByOld, zeroPairs, g); err != nil {
		return nil, err
	}
	dev.Remove(pairsByOld)
	dev.Remove(zeroPairs)

	// Pass 6: sort relabeled edges by new source and strip sources;
	// what remains is the adjacency file, grouped by new ID. A v2
	// conversion sorts by (src, dst) so each adjacency list ascends —
	// consumers must not rely on within-list order (FORMAT.md), and the
	// delta codec feeds on the monotone runs.
	finalSorted := c.temp("final")
	key := edgeKeySrc
	if c.cfg.Codec != nil {
		key = edgeKeySrcDst
		g.codec = c.cfg.Codec
		g.blockEntries = c.cfg.BlockEntries
		if g.blockEntries <= 0 {
			g.blockEntries = int64(storage.DefaultBlockSize / EntryBytes)
		}
	}
	if err := c.sort(graph.EdgeBytes, key, edges4, finalSorted); err != nil {
		return nil, fmt.Errorf("dos: final sort: %w", err)
	}
	dev.Remove(edges4)
	if c.cfg.Codec != nil {
		err = c.emitEdgesV2(finalSorted, g)
	} else {
		err = c.emitEdges(finalSorted, g)
	}
	if err != nil {
		return nil, err
	}
	dev.Remove(finalSorted)

	if err := g.writeMeta(); err != nil {
		return nil, err
	}
	return g, nil
}

// hostDegreeCapIDs bounds the host-side degree array: ID spaces up to
// this size (1 GiB of uint32 counters) are counted in memory during
// preprocessing, exactly as GraphChi-class sharders do; larger spaces
// fall back to an external sort by source. A variable so tests can
// force the sorted path without a 2^28-ID graph.
var hostDegreeCapIDs = int64(1) << 28

// buildTriads emits the (src, dst, deg) triad list from the raw edges.
func (c *converter) buildTriads(in, out string) (maxOld graph.VertexID, numEdges int64, err error) {
	maxOld, numEdges, err = c.scanExtent(in)
	if err != nil {
		return 0, 0, err
	}
	if int64(maxOld)+1 <= hostDegreeCapIDs {
		err = c.buildTriadsCounted(in, out, maxOld, numEdges)
		return maxOld, numEdges, err
	}
	err = c.buildTriadsSorted(in, out, numEdges)
	return maxOld, numEdges, err
}

// scanExtent finds the maximum ID and edge count with one sequential
// pass.
func (c *converter) scanExtent(in string) (maxOld graph.VertexID, numEdges int64, err error) {
	inF, err := c.cfg.Dev.Open(in)
	if err != nil {
		return 0, 0, err
	}
	r := storage.NewReader(inF)
	var ebuf [graph.EdgeBytes]byte
	for {
		rerr := r.ReadFull(ebuf[:])
		if rerr == io.EOF {
			return maxOld, numEdges, nil
		}
		if rerr != nil {
			return 0, 0, fmt.Errorf("dos: scanning edges: %w", rerr)
		}
		e := graph.GetEdge(ebuf[:])
		numEdges++
		if e.Src > maxOld {
			maxOld = e.Src
		}
		if e.Dst > maxOld {
			maxOld = e.Dst
		}
	}
}

// buildTriadsCounted counts out-degrees into a host array with one scan,
// then annotates every edge with its source degree in a second scan.
func (c *converter) buildTriadsCounted(in, out string, maxOld graph.VertexID, numEdges int64) error {
	deg := make([]uint32, int64(maxOld)+1)
	inF, err := c.cfg.Dev.Open(in)
	if err != nil {
		return err
	}
	r := storage.NewReader(inF)
	var ebuf [graph.EdgeBytes]byte
	for {
		rerr := r.ReadFull(ebuf[:])
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("dos: counting degrees: %w", rerr)
		}
		deg[graph.GetEdge(ebuf[:]).Src]++
	}
	outF, err := c.cfg.Dev.Create(out)
	if err != nil {
		return err
	}
	w := storage.NewWriter(outF)
	r = storage.NewReader(inF)
	var buf [triadBytes]byte
	for {
		rerr := r.ReadFull(ebuf[:])
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("dos: emitting triads: %w", rerr)
		}
		e := graph.GetEdge(ebuf[:])
		binary.LittleEndian.PutUint32(buf[0:], uint32(e.Src))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.Dst))
		binary.LittleEndian.PutUint32(buf[8:], deg[e.Src])
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	c.charge(numEdges * (graph.EdgeBytes + triadBytes))
	return w.Flush()
}

// buildTriadsSorted is the fallback for huge ID spaces: sort edges by
// source so each source's run is contiguous, then annotate runs with
// their length.
func (c *converter) buildTriadsSorted(in, out string, numEdges int64) error {
	bySrc := c.temp("bysrc")
	if err := c.sortOpt(graph.EdgeBytes, edgeKeySrc, in, bySrc, c.cfg.RemoveInput); err != nil {
		return fmt.Errorf("dos: sorting by src: %w", err)
	}
	defer c.cfg.Dev.Remove(bySrc)
	inF, err := c.cfg.Dev.Open(bySrc)
	if err != nil {
		return err
	}
	outF, err := c.cfg.Dev.Create(out)
	if err != nil {
		return err
	}
	w := storage.NewWriter(outF)
	r := storage.NewReader(inF)

	var runSrc graph.VertexID
	var runDsts []graph.VertexID
	flush := func() error {
		var buf [triadBytes]byte
		deg := uint32(len(runDsts))
		for _, d := range runDsts {
			binary.LittleEndian.PutUint32(buf[0:], uint32(runSrc))
			binary.LittleEndian.PutUint32(buf[4:], uint32(d))
			binary.LittleEndian.PutUint32(buf[8:], deg)
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
		runDsts = runDsts[:0]
		return nil
	}

	var ebuf [graph.EdgeBytes]byte
	first := true
	for {
		rerr := r.ReadFull(ebuf[:])
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("dos: scanning sorted edges: %w", rerr)
		}
		e := graph.GetEdge(ebuf[:])
		if first || e.Src != runSrc {
			if !first {
				if err := flush(); err != nil {
					return err
				}
			}
			runSrc = e.Src
			first = false
		}
		runDsts = append(runDsts, e.Dst)
	}
	if !first {
		if err := flush(); err != nil {
			return err
		}
	}
	c.charge(numEdges * (graph.EdgeBytes + triadBytes))
	return w.Flush()
}

// relabelSources walks the degree-sorted triads assigning dense new IDs to
// sources (0, 1, 2, ... in degree order), emitting (newsrc, olddst) edges,
// (old, new) map records, the new→old file head, and the bucket table.
func (c *converter) relabelSources(in, edgesOut, pairsOut string, g *Graph) (int, error) {
	inF, err := c.cfg.Dev.Open(in)
	if err != nil {
		return 0, err
	}
	eF, err := c.cfg.Dev.Create(edgesOut)
	if err != nil {
		return 0, err
	}
	pF, err := c.cfg.Dev.Create(pairsOut)
	if err != nil {
		return 0, err
	}
	n2oF, err := c.cfg.Dev.Create(g.prefix + suffixNew2Old)
	if err != nil {
		return 0, err
	}
	r := storage.NewReader(inF)
	ew := storage.NewWriter(eF)
	pw := storage.NewWriter(pF)
	nw := storage.NewWriter(n2oF)

	var buf [triadBytes]byte
	var out [8]byte
	nextID := -1 // last assigned new ID
	var curSrc graph.VertexID
	var curDeg uint32
	var edgeOff int64
	var bytesScanned int64
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("dos: scanning triads: %w", err)
		}
		bytesScanned += triadBytes
		src := graph.VertexID(binary.LittleEndian.Uint32(buf[0:]))
		dst := binary.LittleEndian.Uint32(buf[4:])
		deg := binary.LittleEndian.Uint32(buf[8:])
		if nextID < 0 || src != curSrc {
			nextID++
			curSrc = src
			// New bucket whenever the degree changes. Triads
			// arrive in strictly descending degree order.
			if len(g.Buckets) == 0 || g.Buckets[len(g.Buckets)-1].Degree != deg {
				g.Buckets = append(g.Buckets, Bucket{
					Degree:   deg,
					FirstID:  graph.VertexID(nextID),
					FirstOff: edgeOff,
				})
			}
			curDeg = deg
			// Map records.
			binary.LittleEndian.PutUint32(out[0:], uint32(src))
			binary.LittleEndian.PutUint32(out[4:], uint32(nextID))
			if _, err := pw.Write(out[:]); err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint32(out[0:4], uint32(src))
			if _, err := nw.Write(out[0:4]); err != nil {
				return 0, err
			}
			edgeOff += int64(curDeg)
		}
		binary.LittleEndian.PutUint32(out[0:], uint32(nextID))
		binary.LittleEndian.PutUint32(out[4:], dst)
		if _, err := ew.Write(out[:]); err != nil {
			return 0, err
		}
	}
	c.charge(bytesScanned)
	if err := ew.Flush(); err != nil {
		return 0, err
	}
	if err := pw.Flush(); err != nil {
		return 0, err
	}
	if err := nw.Flush(); err != nil {
		return 0, err
	}
	return nextID + 1, nil
}

// pairStream iterates (a, b) u32 pair records.
type pairStream struct {
	r    *storage.Reader
	a, b uint32
	done bool
}

func newPairStream(dev *storage.Device, name string) (*pairStream, error) {
	f, err := dev.Open(name)
	if err != nil {
		return nil, err
	}
	s := &pairStream{r: storage.NewReader(f)}
	return s, s.advance()
}

func (s *pairStream) advance() error {
	var buf [8]byte
	err := s.r.ReadFull(buf[:])
	if err == io.EOF {
		s.done = true
		return nil
	}
	if err != nil {
		return err
	}
	s.a = binary.LittleEndian.Uint32(buf[0:])
	s.b = binary.LittleEndian.Uint32(buf[4:])
	return nil
}

// relabelDestinations merge-joins dst-sorted edges with the old-sorted ID
// map. Destinations absent from the map have no out-edges; they are
// assigned the next new IDs (after all positive-degree vertices) in
// ascending old-ID order, exactly once each, and recorded in zeroPairs.
func (c *converter) relabelDestinations(byDst, pairsByOld, edgesOut, zeroPairs string, numPositive int) (int, error) {
	dev := c.cfg.Dev
	inF, err := dev.Open(byDst)
	if err != nil {
		return 0, err
	}
	m, err := newPairStream(dev, pairsByOld)
	if err != nil {
		return 0, err
	}
	eF, err := dev.Create(edgesOut)
	if err != nil {
		return 0, err
	}
	zF, err := dev.Create(zeroPairs)
	if err != nil {
		return 0, err
	}
	r := storage.NewReader(inF)
	ew := storage.NewWriter(eF)
	zw := storage.NewWriter(zF)

	numZero := 0
	var lastDst uint32
	var lastNew uint32
	haveLast := false
	var ebuf [graph.EdgeBytes]byte
	var out [8]byte
	var bytesScanned int64
	for {
		err := r.ReadFull(ebuf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("dos: scanning dst-sorted edges: %w", err)
		}
		bytesScanned += graph.EdgeBytes
		newSrc := binary.LittleEndian.Uint32(ebuf[0:])
		dst := binary.LittleEndian.Uint32(ebuf[4:])
		if !haveLast || dst != lastDst {
			// Advance the map to dst.
			for !m.done && m.a < dst {
				if err := m.advance(); err != nil {
					return 0, err
				}
			}
			if !m.done && m.a == dst {
				lastNew = m.b
			} else {
				// Zero-out-degree vertex: assign the next ID.
				lastNew = uint32(numPositive + numZero)
				numZero++
				binary.LittleEndian.PutUint32(out[0:], dst)
				binary.LittleEndian.PutUint32(out[4:], lastNew)
				if _, err := zw.Write(out[:]); err != nil {
					return 0, err
				}
			}
			lastDst = dst
			haveLast = true
		}
		binary.LittleEndian.PutUint32(out[0:], newSrc)
		binary.LittleEndian.PutUint32(out[4:], lastNew)
		if _, err := ew.Write(out[:]); err != nil {
			return 0, err
		}
	}
	c.charge(bytesScanned)
	if err := ew.Flush(); err != nil {
		return 0, err
	}
	return numZero, zw.Flush()
}

// emitMaps merges the positive-degree and zero-degree (old, new) streams
// (both sorted by old ID) into the dense old→new file, and appends the
// zero-degree old IDs to the new→old file (their new IDs are assigned in
// ascending old-ID order, so appending preserves new-ID order).
func (c *converter) emitMaps(pairsByOld, zeroPairs string, g *Graph) error {
	dev := c.cfg.Dev
	a, err := newPairStream(dev, pairsByOld)
	if err != nil {
		return err
	}
	b, err := newPairStream(dev, zeroPairs)
	if err != nil {
		return err
	}
	oF, err := dev.Create(g.prefix + suffixOld2New)
	if err != nil {
		return err
	}
	n2oF, err := dev.Open(g.prefix + suffixNew2Old)
	if err != nil {
		return err
	}
	ow := storage.NewWriter(oF)
	nw := storage.NewWriterAt(n2oF, n2oF.Size())

	var out [4]byte
	next := uint32(0) // next old ID to emit
	emitGapsTo := func(old uint32) error {
		for ; next < old; next++ {
			binary.LittleEndian.PutUint32(out[:], uint32(graph.NoVertex))
			if _, err := ow.Write(out[:]); err != nil {
				return err
			}
		}
		return nil
	}
	emit := func(old, newID uint32, zero bool) error {
		if err := emitGapsTo(old); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(out[:], newID)
		if _, err := ow.Write(out[:]); err != nil {
			return err
		}
		next = old + 1
		if zero {
			binary.LittleEndian.PutUint32(out[:], old)
			if _, err := nw.Write(out[:]); err != nil {
				return err
			}
		}
		return nil
	}
	for !a.done || !b.done {
		switch {
		case b.done || (!a.done && a.a < b.a):
			if err := emit(a.a, a.b, false); err != nil {
				return err
			}
			if err := a.advance(); err != nil {
				return err
			}
		default:
			if err := emit(b.a, b.b, true); err != nil {
				return err
			}
			if err := b.advance(); err != nil {
				return err
			}
		}
	}
	if err := emitGapsTo(uint32(g.MaxOldID) + 1); err != nil {
		return err
	}
	if err := ow.Flush(); err != nil {
		return err
	}
	return nw.Flush()
}

// emitEdges strips sources from the final src-sorted edge file, leaving
// the packed adjacency entries, and validates per-vertex counts against
// the bucket table.
func (c *converter) emitEdges(finalSorted string, g *Graph) error {
	dev := c.cfg.Dev
	inF, err := dev.Open(finalSorted)
	if err != nil {
		return err
	}
	outF, err := dev.Create(g.EdgesFile())
	if err != nil {
		return err
	}
	r := storage.NewReader(inF)
	w := storage.NewWriter(outF)
	var ebuf [graph.EdgeBytes]byte
	var entries int64
	var prevSrc uint32
	for {
		err := r.ReadFull(ebuf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("dos: emitting edges: %w", err)
		}
		src := binary.LittleEndian.Uint32(ebuf[0:])
		if src < prevSrc {
			return fmt.Errorf("dos: final edges not sorted: src %d after %d", src, prevSrc)
		}
		prevSrc = src
		if _, err := w.Write(ebuf[4:8]); err != nil {
			return err
		}
		entries++
	}
	if entries != g.NumEdges {
		return fmt.Errorf("dos: emitted %d entries, expected %d", entries, g.NumEdges)
	}
	c.charge(entries * graph.EdgeBytes)
	return w.Flush()
}

// emitEdgesV2 is emitEdges for the block-codec format: destinations are
// accumulated into fixed-entry blocks, each block is encoded
// independently and appended, and the byte offset of every block is
// recorded for the meta file's offset table.
func (c *converter) emitEdgesV2(finalSorted string, g *Graph) error {
	dev := c.cfg.Dev
	inF, err := dev.Open(finalSorted)
	if err != nil {
		return err
	}
	outF, err := dev.Create(g.EdgesFile())
	if err != nil {
		return err
	}
	r := storage.NewReader(inF)
	w := storage.NewWriter(outF)

	block := make([]uint32, 0, g.blockEntries)
	enc := make([]byte, 0, storage.MaxEncodedLen(int(g.blockEntries)))
	g.blockOffs = []int64{0}
	var fileOff int64
	flush := func() error {
		if len(block) == 0 {
			return nil
		}
		enc = g.codec.EncodeBlock(enc[:0], block)
		if _, err := w.Write(enc); err != nil {
			return err
		}
		fileOff += int64(len(enc))
		g.blockOffs = append(g.blockOffs, fileOff)
		block = block[:0]
		return nil
	}

	var ebuf [graph.EdgeBytes]byte
	var entries int64
	var prevSrc, prevDst uint32
	for {
		err := r.ReadFull(ebuf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("dos: emitting edges: %w", err)
		}
		src := binary.LittleEndian.Uint32(ebuf[0:])
		dst := binary.LittleEndian.Uint32(ebuf[4:])
		if src < prevSrc || (src == prevSrc && entries > 0 && dst < prevDst) {
			return fmt.Errorf("dos: final edges not sorted: (%d,%d) after (%d,%d)", src, dst, prevSrc, prevDst)
		}
		prevSrc, prevDst = src, dst
		block = append(block, dst)
		if int64(len(block)) == g.blockEntries {
			if err := flush(); err != nil {
				return err
			}
		}
		entries++
	}
	if err := flush(); err != nil {
		return err
	}
	if entries != g.NumEdges {
		return fmt.Errorf("dos: emitted %d entries, expected %d", entries, g.NumEdges)
	}
	// Encoding is a compute pass over every entry on top of the scan.
	c.charge(entries * (graph.EdgeBytes + EntryBytes))
	return w.Flush()
}
