package dos

import (
	"io"
	"sort"
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// convertEdgesV2 converts edges with the given block codec (and an
// optionally tiny block cut, to exercise multi-block graphs on small
// inputs).
func convertEdgesV2(t *testing.T, dev *storage.Device, edges []graph.Edge, prefix string, codec storage.Codec, blockEntries int64) *Graph {
	t.Helper()
	if err := graph.WriteEdges(dev, prefix+".raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := Convert(ConvertConfig{Dev: dev, Codec: codec, BlockEntries: blockEntries}, prefix+".raw", prefix)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConvertV2MatchesV1(t *testing.T) {
	for _, codec := range []storage.Codec{storage.CodecRaw, storage.CodecVarint} {
		t.Run(codec.Name(), func(t *testing.T) {
			dev := storage.NewDevice(storage.NullDevice, storage.Options{})
			g1 := convertEdges(t, dev, paperEdges, "v1")
			g2 := convertEdgesV2(t, dev, paperEdges, "v2", codec, 2) // 2 entries/block: 4 blocks
			if g2.Version() != 2 || g1.Version() != 1 {
				t.Fatalf("versions %d/%d, want 1/2", g1.Version(), g2.Version())
			}
			if g2.NumVertices != g1.NumVertices || g2.NumEdges != g1.NumEdges || g2.MaxOldID != g1.MaxOldID {
				t.Fatalf("shape mismatch: %+v vs %+v", g2, g1)
			}
			if len(g2.Buckets) != len(g1.Buckets) {
				t.Fatalf("bucket tables differ: %v vs %v", g2.Buckets, g1.Buckets)
			}
			for i := range g1.Buckets {
				if g2.Buckets[i] != g1.Buckets[i] {
					t.Errorf("bucket %d: %+v vs %+v", i, g2.Buckets[i], g1.Buckets[i])
				}
			}
			// Per-vertex adjacency must agree as a multiset; v2 orders
			// each list by ascending new destination.
			for v := 0; v < g1.NumVertices; v++ {
				a1, err := g1.Adjacency(graph.VertexID(v), nil)
				if err != nil {
					t.Fatal(err)
				}
				a2, err := g2.Adjacency(graph.VertexID(v), nil)
				if err != nil {
					t.Fatal(err)
				}
				if !sort.SliceIsSorted(a2, func(i, j int) bool { return a2[i] < a2[j] }) {
					t.Errorf("v2 adjacency of %d not ascending: %v", v, a2)
				}
				sort.Slice(a1, func(i, j int) bool { return a1[i] < a1[j] })
				if len(a1) != len(a2) {
					t.Fatalf("adjacency of %d: %v vs %v", v, a2, a1)
				}
				for i := range a1 {
					if a1[i] != a2[i] {
						t.Fatalf("adjacency of %d: %v vs %v", v, a2, a1)
					}
				}
			}
		})
	}
}

func TestV2LoadRoundTrip(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecVarint, 3)
	g2, err := Load(dev, "g")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version() != 2 || g2.Codec().Name() != "varint" {
		t.Fatalf("loaded version %d codec %s", g2.Version(), g2.Codec().Name())
	}
	if g2.blockEntries != 3 {
		t.Errorf("blockEntries = %d, want 3", g2.blockEntries)
	}
	if len(g2.blockOffs) != len(g.blockOffs) {
		t.Fatalf("offset tables differ: %v vs %v", g2.blockOffs, g.blockOffs)
	}
	for i := range g.blockOffs {
		if g2.blockOffs[i] != g.blockOffs[i] {
			t.Errorf("blockOffs[%d] = %d, want %d", i, g2.blockOffs[i], g.blockOffs[i])
		}
	}
	if g2.BlockTableBytes() != int64(len(g.blockOffs))*8 {
		t.Errorf("BlockTableBytes = %d", g2.BlockTableBytes())
	}
	// The final table entry is the edges file size.
	f, err := dev.Open(g.EdgesFile())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.blockOffs[len(g.blockOffs)-1]; got != f.Size() {
		t.Errorf("last block offset %d, file size %d", got, f.Size())
	}
	bl := g2.BlockLayout()
	if bl.FixedEntries() {
		t.Error("v2 BlockLayout claims fixed entries")
	}
	if bl.NumBlocks() != int64(len(g.blockOffs))-1 {
		t.Errorf("NumBlocks = %d", bl.NumBlocks())
	}
}

func TestV2Entries(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecVarint, 2)

	// Full scan equals the concatenation of per-vertex adjacencies.
	var want []graph.VertexID
	for v := 0; v < g.NumVertices; v++ {
		var err error
		want, err = g.Adjacency(graph.VertexID(v), want)
		if err != nil {
			t.Fatal(err)
		}
	}
	for start := int64(0); start <= g.NumEdges; start++ {
		for end := start; end <= g.NumEdges; end++ {
			r, err := g.Entries(start, end)
			if err != nil {
				t.Fatal(err)
			}
			for i := start; i < end; i++ {
				v, err := r.Next()
				if err != nil {
					t.Fatalf("Entries(%d,%d) at %d: %v", start, end, i, err)
				}
				if v != want[i] {
					t.Fatalf("entry %d = %d, want %d", i, v, want[i])
				}
			}
			if _, err := r.Next(); err != io.EOF {
				t.Fatalf("Entries(%d,%d): want io.EOF after the range, got %v", start, end, err)
			}
		}
	}
	if _, err := g.Entries(-1, 2); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := g.Entries(0, g.NumEdges+1); err == nil {
		t.Error("end past NumEdges accepted")
	}
	if _, err := g.Entries(3, 2); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestV2RangeEdgeReaderRejected(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecRaw, 0)
	if _, _, err := g.RangeEdgeReader(0, 2); err == nil {
		t.Error("RangeEdgeReader on a v2 graph should fail")
	}
}

func TestV2EmptyGraph(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdgesV2(t, dev, nil, "g", storage.CodecVarint, 0)
	if g.NumVertices != 0 || g.NumEdges != 0 {
		t.Fatalf("empty graph: V=%d E=%d", g.NumVertices, g.NumEdges)
	}
	g2, err := Load(dev, "g")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version() != 2 || g2.BlockLayout().NumBlocks() != 0 {
		t.Errorf("empty v2 graph: version %d, %d blocks", g2.Version(), g2.BlockLayout().NumBlocks())
	}
}

func TestV2VarintSmallerOnPowerLaw(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	edges := gen.Zipf(5000, 60000, 0.9, 7)
	raw := convertEdgesV2(t, dev, edges, "raw", storage.CodecRaw, 0)
	vv := convertEdgesV2(t, dev, edges, "vv", storage.CodecVarint, 0)
	rawBytes := raw.blockOffs[len(raw.blockOffs)-1]
	vvBytes := vv.blockOffs[len(vv.blockOffs)-1]
	if rawBytes != raw.NumEdges*EntryBytes {
		t.Fatalf("raw codec emitted %d bytes for %d entries", rawBytes, raw.NumEdges)
	}
	if vvBytes*2 > rawBytes {
		t.Errorf("varint %d bytes vs raw %d: expected at least 2x on a power-law graph", vvBytes, rawBytes)
	}
}

// A conversion with a modeled clock charges compute, and the loaded
// graph exposes its backing device.
func TestConvertChargesClockAndExposesDevice(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	edges := gen.Zipf(200, 1500, 0.9, 9)
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock()
	g, err := Convert(ConvertConfig{Dev: dev, Clock: clock, Codec: storage.CodecVarint}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	if g.Device() != dev {
		t.Fatal("Device() does not return the conversion device")
	}
	if clock.TotalCompute() <= 0 {
		t.Fatalf("conversion charged %v compute, want > 0", clock.TotalCompute())
	}
}

// The external-sort triad path (huge original-ID spaces) must produce
// the same graph as the in-memory degree-counting path.
func TestBuildTriadsSortedMatchesCounted(t *testing.T) {
	edges := gen.Zipf(300, 2500, 0.9, 17)

	devA := storage.NewDevice(storage.NullDevice, storage.Options{})
	gA := convertEdgesV2(t, devA, edges, "a", storage.CodecVarint, 7)

	old := hostDegreeCapIDs
	hostDegreeCapIDs = 4 // force the sort-by-source fallback
	defer func() { hostDegreeCapIDs = old }()
	devB := storage.NewDevice(storage.NullDevice, storage.Options{})
	gB := convertEdgesV2(t, devB, edges, "b", storage.CodecVarint, 7)

	if gA.NumVertices != gB.NumVertices || gA.NumEdges != gB.NumEdges {
		t.Fatalf("sorted path: %d vertices / %d edges, counted: %d / %d",
			gB.NumVertices, gB.NumEdges, gA.NumVertices, gA.NumEdges)
	}
	readAll := func(g *Graph) []graph.VertexID {
		r, err := g.Entries(0, g.NumEdges)
		if err != nil {
			t.Fatal(err)
		}
		var out []graph.VertexID
		for {
			d, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, d)
		}
		return out
	}
	a, b := readAll(gA), readAll(gB)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: sorted path %d, counted %d", i, b[i], a[i])
		}
	}
	n2oA, err := gA.NewToOld()
	if err != nil {
		t.Fatal(err)
	}
	n2oB, err := gB.NewToOld()
	if err != nil {
		t.Fatal(err)
	}
	for i := range n2oA {
		if n2oA[i] != n2oB[i] {
			t.Fatalf("new2old[%d]: sorted path %d, counted %d", i, n2oB[i], n2oA[i])
		}
	}
}
