package dos

import (
	"sort"
	"testing"
	"testing/quick"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// convertEdges is a test helper: writes edges to a device and converts.
func convertEdges(t *testing.T, dev *storage.Device, edges []graph.Edge, prefix string) *Graph {
	t.Helper()
	if err := graph.WriteEdges(dev, prefix+".raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := Convert(ConvertConfig{Dev: dev}, prefix+".raw", prefix)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// paperEdges is a worked example in the style of the paper's Section III-B
// (Fig. 1, Tables III-VII): sparse old IDs with a gap-filled range, a
// zero-out-degree vertex, and degree ties. All expected values below are
// hand-computed.
//
//	old 5  -> 2, 9, 12   (degree 3)
//	old 2  -> 5, 9       (degree 2)
//	old 9  -> 5          (degree 1)
//	old 14 -> 9          (degree 1)
//	old 12 ->            (degree 0; appears only as a destination)
var paperEdges = []graph.Edge{
	{Src: 5, Dst: 2}, {Src: 5, Dst: 9}, {Src: 5, Dst: 12},
	{Src: 2, Dst: 5}, {Src: 2, Dst: 9},
	{Src: 9, Dst: 5},
	{Src: 14, Dst: 9},
}

func TestPaperExampleRelabeling(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, paperEdges, "g")

	if g.NumVertices != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices)
	}
	if g.NumEdges != 7 {
		t.Errorf("NumEdges = %d, want 7", g.NumEdges)
	}
	if g.MaxOldID != 14 {
		t.Errorf("MaxOldID = %d, want 14", g.MaxOldID)
	}

	// Relabeling: sort by (degree desc, old asc):
	// new 0 = old 5 (deg 3), new 1 = old 2 (deg 2),
	// new 2 = old 9 (deg 1), new 3 = old 14 (deg 1),
	// new 4 = old 12 (deg 0).
	n2o, err := g.NewToOld()
	if err != nil {
		t.Fatal(err)
	}
	wantN2O := []graph.VertexID{5, 2, 9, 14, 12}
	for i, w := range wantN2O {
		if n2o[i] != w {
			t.Errorf("new2old[%d] = %d, want %d", i, n2o[i], w)
		}
	}

	o2n, err := g.OldToNew()
	if err != nil {
		t.Fatal(err)
	}
	if len(o2n) != 15 {
		t.Fatalf("old2new length = %d, want 15 (maxOld+1)", len(o2n))
	}
	wantO2N := map[graph.VertexID]graph.VertexID{5: 0, 2: 1, 9: 2, 14: 3, 12: 4}
	for old := graph.VertexID(0); old < 15; old++ {
		want, isVertex := wantO2N[old]
		if isVertex {
			if o2n[old] != want {
				t.Errorf("old2new[%d] = %d, want %d", old, o2n[old], want)
			}
		} else if o2n[old] != graph.NoVertex {
			t.Errorf("old2new[%d] = %d, want NoVertex (gap)", old, o2n[old])
		}
	}
}

func TestPaperExampleTables(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, paperEdges, "g")

	// The ids_table / id_offset_table of the example (paper Tables VI
	// and VII): degree -> first new ID and first edge offset.
	want := []Bucket{
		{Degree: 3, FirstID: 0, FirstOff: 0},
		{Degree: 2, FirstID: 1, FirstOff: 3},
		{Degree: 1, FirstID: 2, FirstOff: 5},
		{Degree: 0, FirstID: 4, FirstOff: 7},
	}
	if len(g.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", g.Buckets, want)
	}
	for i := range want {
		if g.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, g.Buckets[i], want[i])
		}
	}

	// The edge list stored on external storage (paper Table V), in new
	// IDs. Within a vertex, destinations appear in ascending old-ID
	// order (an artifact of the stable final sort; any order is
	// legal).
	wantAdj := map[graph.VertexID][]graph.VertexID{
		0: {1, 2, 4}, // old 5 -> old {2,9,12} -> new {1,2,4}
		1: {0, 2},    // old 2 -> old {5,9} -> new {0,2}
		2: {0},       // old 9 -> old 5 -> new 0
		3: {2},       // old 14 -> old 9 -> new 2
		4: {},        // old 12, zero degree
	}
	for v, want := range wantAdj {
		got, err := g.Adjacency(v, nil)
		if err != nil {
			t.Fatalf("Adjacency(%d): %v", v, err)
		}
		if len(got) != len(want) {
			t.Fatalf("Adjacency(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Adjacency(%d) = %v, want %v", v, got, want)
			}
		}
	}
}

func TestPaperExampleOffsetArithmetic(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, paperEdges, "g")

	// The paper's Section III-B walk-through: find vertex 3 by binary
	// search (degree 1, first ID 2, first offset 5):
	// offset = 5 + (3-2)*1 = 6.
	off, err := g.EdgeOffset(3)
	if err != nil {
		t.Fatal(err)
	}
	if off != 6 {
		t.Errorf("EdgeOffset(3) = %d, want 6", off)
	}
	deg, err := g.Degree(3)
	if err != nil {
		t.Fatal(err)
	}
	if deg != 1 {
		t.Errorf("Degree(3) = %d, want 1", deg)
	}

	// Out-of-range vertex.
	if _, err := g.EdgeOffset(5); err == nil {
		t.Error("EdgeOffset(5) should fail: only 5 vertices")
	}
	if _, err := g.Degree(99); err == nil {
		t.Error("Degree(99) should fail")
	}
}

func TestIndexBytes(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, paperEdges, "g")
	if g.IndexBytes() != 4*BucketBytes {
		t.Errorf("IndexBytes = %d, want %d", g.IndexBytes(), 4*BucketBytes)
	}
	if g.UniqueDegrees() != 4 {
		t.Errorf("UniqueDegrees = %d, want 4", g.UniqueDegrees())
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, paperEdges, "g")
	g2, err := Load(dev, "g")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices != g.NumVertices || g2.NumEdges != g.NumEdges || g2.MaxOldID != g.MaxOldID {
		t.Errorf("loaded %+v, want %+v", g2, g)
	}
	if len(g2.Buckets) != len(g.Buckets) {
		t.Fatalf("bucket count mismatch")
	}
	for i := range g.Buckets {
		if g2.Buckets[i] != g.Buckets[i] {
			t.Errorf("bucket %d: %+v vs %+v", i, g2.Buckets[i], g.Buckets[i])
		}
	}
}

func TestLoadErrors(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if _, err := Load(dev, "missing"); err == nil {
		t.Error("loading missing graph should fail")
	}
	storage.WriteAll(dev, "bad.meta", []byte("not a meta file at all..."))
	if _, err := Load(dev, "bad"); err == nil {
		t.Error("loading corrupt meta should fail")
	}
}

func TestConvertEmptyGraph(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, nil, "g")
	if g.NumVertices != 0 || g.NumEdges != 0 {
		t.Errorf("empty graph: V=%d E=%d", g.NumVertices, g.NumEdges)
	}
}

func TestConvertSelfLoopsAndDuplicates(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	edges := []graph.Edge{
		{Src: 1, Dst: 1}, {Src: 1, Dst: 1}, {Src: 1, Dst: 0}, {Src: 0, Dst: 1},
	}
	g := convertEdges(t, dev, edges, "g")
	if g.NumVertices != 2 || g.NumEdges != 4 {
		t.Fatalf("V=%d E=%d, want 2, 4", g.NumVertices, g.NumEdges)
	}
	// old 1 has degree 3 -> new 0; old 0 has degree 1 -> new 1.
	adj, err := g.Adjacency(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// old 1's dsts {1,1,0} -> sorted by old dst: {0,1,1} -> new {1,0,0}.
	want := []graph.VertexID{1, 0, 0}
	if len(adj) != 3 {
		t.Fatalf("adj = %v", adj)
	}
	for i := range want {
		if adj[i] != want[i] {
			t.Errorf("adj = %v, want %v", adj, want)
		}
	}
}

func TestRangeEdgeReader(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, paperEdges, "g")
	r, start, err := g.RangeEdgeReader(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if start != 3 {
		t.Errorf("start = %d, want 3", start)
	}
	// Vertices 1..2 have degrees 2 and 1: 3 entries * 4 bytes.
	if r.Remaining() != 12 {
		t.Errorf("Remaining = %d, want 12", r.Remaining())
	}
	// Range to the end.
	r2, _, err := g.RangeEdgeReader(0, graph.VertexID(g.NumVertices))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Remaining() != g.NumEdges*EntryBytes {
		t.Errorf("full range = %d bytes, want %d", r2.Remaining(), g.NumEdges*EntryBytes)
	}
}

// referenceRelabel computes the degree ordering in memory: vertices (IDs
// appearing as src or dst) sorted by (out-degree desc, old ID asc).
func referenceRelabel(edges []graph.Edge) (n2o []graph.VertexID, deg map[graph.VertexID]uint32) {
	deg = make(map[graph.VertexID]uint32)
	seen := make(map[graph.VertexID]bool)
	for _, e := range edges {
		deg[e.Src]++
		seen[e.Src] = true
		seen[e.Dst] = true
	}
	for v := range seen {
		n2o = append(n2o, v)
	}
	sort.Slice(n2o, func(i, j int) bool {
		di, dj := deg[n2o[i]], deg[n2o[j]]
		if di != dj {
			return di > dj
		}
		return n2o[i] < n2o[j]
	})
	return n2o, deg
}

// TestConvertMatchesReference cross-checks the full out-of-core pipeline
// against the in-memory reference on random power-law graphs.
func TestConvertMatchesReference(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		edges := gen.RMAT(9, 3000, gen.NaturalRMAT, seed)
		dev := storage.NewDevice(storage.NullDevice, storage.Options{})
		g := convertEdges(t, dev, edges, "g")

		wantN2O, deg := referenceRelabel(edges)
		if g.NumVertices != len(wantN2O) {
			t.Fatalf("seed %d: V=%d, want %d", seed, g.NumVertices, len(wantN2O))
		}
		n2o, err := g.NewToOld()
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantN2O {
			if n2o[i] != wantN2O[i] {
				t.Fatalf("seed %d: new2old[%d] = %d, want %d", seed, i, n2o[i], wantN2O[i])
			}
		}

		// Degrees and adjacency contents per vertex.
		o2n, err := g.OldToNew()
		if err != nil {
			t.Fatal(err)
		}
		wantAdj := make(map[graph.VertexID][]graph.VertexID)
		for _, e := range edges {
			ns, nd := o2n[e.Src], o2n[e.Dst]
			wantAdj[ns] = append(wantAdj[ns], nd)
		}
		var buf []graph.VertexID
		for newID := graph.VertexID(0); int(newID) < g.NumVertices; newID++ {
			d, err := g.Degree(newID)
			if err != nil {
				t.Fatal(err)
			}
			if want := deg[n2o[newID]]; d != want {
				t.Fatalf("seed %d: Degree(%d) = %d, want %d", seed, newID, d, want)
			}
			buf, err = g.Adjacency(newID, buf[:0])
			if err != nil {
				t.Fatal(err)
			}
			want := append([]graph.VertexID(nil), wantAdj[newID]...)
			got := append([]graph.VertexID(nil), buf...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				t.Fatalf("seed %d: vertex %d adjacency size %d, want %d", seed, newID, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: vertex %d adjacency mismatch", seed, newID)
				}
			}
		}
	}
}

// TestOffsetFormulaProperty: for every vertex, EdgeOffset(x+1) ==
// EdgeOffset(x) + Degree(x) — the invariant that makes the computed index
// equivalent to a stored CSR index.
func TestOffsetFormulaProperty(t *testing.T) {
	edges := gen.Zipf(300, 4000, 0.9, 5)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, edges, "g")
	var acc int64
	for v := graph.VertexID(0); int(v) < g.NumVertices; v++ {
		off, err := g.EdgeOffset(v)
		if err != nil {
			t.Fatal(err)
		}
		if off != acc {
			t.Fatalf("EdgeOffset(%d) = %d, want %d", v, off, acc)
		}
		d, err := g.Degree(v)
		if err != nil {
			t.Fatal(err)
		}
		acc += int64(d)
	}
	if acc != g.NumEdges {
		t.Errorf("degrees sum to %d, want %d", acc, g.NumEdges)
	}
}

// TestDegreesMonotone: new IDs are ordered by non-increasing degree.
func TestDegreesMonotone(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 9)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, edges, "g")
	prev := uint32(1 << 31)
	for v := graph.VertexID(0); int(v) < g.NumVertices; v++ {
		d, err := g.Degree(v)
		if err != nil {
			t.Fatal(err)
		}
		if d > prev {
			t.Fatalf("Degree(%d) = %d > Degree(%d) = %d", v, d, v-1, prev)
		}
		prev = d
	}
}

// TestRelabelBijectionProperty: old2new and new2old are mutually inverse
// bijections, for arbitrary random graphs.
func TestRelabelBijectionProperty(t *testing.T) {
	check := func(seed uint64, scaleSeed uint8) bool {
		n := 200 + int(seed%300)
		m := 100 + int(scaleSeed)*10
		edges := gen.ErdosRenyi(n, m, seed)
		dev := storage.NewDevice(storage.NullDevice, storage.Options{})
		if err := graph.WriteEdges(dev, "raw", edges); err != nil {
			return false
		}
		g, err := Convert(ConvertConfig{Dev: dev}, "raw", "g")
		if err != nil {
			return false
		}
		n2o, err := g.NewToOld()
		if err != nil || len(n2o) != g.NumVertices {
			return false
		}
		o2n, err := g.OldToNew()
		if err != nil {
			return false
		}
		for newID, old := range n2o {
			if o2n[old] != graph.VertexID(newID) {
				return false
			}
		}
		count := 0
		for _, nw := range o2n {
			if nw != graph.NoVertex {
				count++
			}
		}
		return count == g.NumVertices
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestConvertTinyBudget forces external sorting into many runs.
func TestConvertTinyBudget(t *testing.T) {
	edges := gen.RMAT(8, 5000, gen.NaturalRMAT, 3)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := Convert(ConvertConfig{Dev: dev, MemoryBudget: 1}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges != 5000 {
		t.Errorf("NumEdges = %d", g.NumEdges)
	}
	// No temp files left behind.
	for _, name := range dev.List() {
		switch name {
		case "raw", "g.edges", "g.meta", "g.new2old", "g.old2new":
		default:
			t.Errorf("leftover file %q", name)
		}
	}
}

// TestClaim1OnConvertedGraphs: unique degrees (buckets) obey the paper's
// bound on converted graphs.
func TestClaim1OnConvertedGraphs(t *testing.T) {
	edges := gen.RMAT(12, 30000, gen.NaturalRMAT, 17)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdges(t, dev, edges, "g")
	bound := 3.0 * sqrtFloat(float64(g.NumEdges))
	if float64(g.UniqueDegrees()) > bound {
		t.Errorf("unique degrees %d exceed 3*sqrt(E) = %.0f", g.UniqueDegrees(), bound)
	}
}

func sqrtFloat(x float64) float64 {
	// Newton iterations avoid importing math for one call.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
