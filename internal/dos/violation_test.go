package dos

import (
	"errors"
	"strings"
	"testing"

	"graphz/internal/storage"
)

// TestVerifyViolations drives Verify over one corrupt graph per invariant
// and asserts the typed *Violation pins the right file, byte offset, and
// bucket index. Paper-graph geometry used throughout: 4 buckets with
// FirstOff {0,3,5,7}; v1 meta header is 32 bytes, v2 is 48; a bucket row
// is 16 bytes.
func TestVerifyViolations(t *testing.T) {
	// writeAt corrupts a device file in place.
	writeAt := func(t *testing.T, dev *storage.Device, name string, off int64, b []byte) {
		t.Helper()
		f, err := dev.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(b, off); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name     string
		corrupt  func(t *testing.T, dev *storage.Device) *Graph
		file     func(g *Graph) string
		offset   int64
		offsetOf func(g *Graph) int64 // computed expectation; overrides offset
		bucket   int
		substr   string
	}{
		{
			name: "v1 bucket offset breaks arithmetic",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdges(t, dev, paperEdges, "g")
				g.Buckets[1].FirstOff++
				return g
			},
			file:   (*Graph).MetaFile,
			offset: 32 + 1*BucketBytes,
			bucket: 1,
			substr: "arithmetic",
		},
		{
			name: "v1 bucket degree not decreasing",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdges(t, dev, paperEdges, "g")
				g.Buckets[2].Degree = g.Buckets[1].Degree
				return g
			},
			file:   (*Graph).MetaFile,
			offset: 32 + 2*BucketBytes,
			bucket: 2,
			substr: "not decreasing",
		},
		{
			name: "v1 bucket sum disagrees with NumEdges",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdges(t, dev, paperEdges, "g")
				g.NumEdges++
				return g
			},
			file:   (*Graph).MetaFile,
			offset: 16, // the meta NumEdges field
			bucket: 3,
			substr: "sum",
		},
		{
			name: "v1 out-of-range destination in bucket 2",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdges(t, dev, paperEdges, "g")
				// Entry 5 lives in bucket 2 (FirstOff 5).
				writeAt(t, dev, g.EdgesFile(), 5*EntryBytes, []byte{0xFF, 0xFF, 0xFF, 0x7F})
				return g
			},
			file:   (*Graph).EdgesFile,
			offset: 5 * EntryBytes,
			bucket: 2,
			substr: "out of range",
		},
		{
			name: "v1 truncated edge file",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdges(t, dev, paperEdges, "g")
				f, err := dev.Open(g.EdgesFile())
				if err != nil {
					t.Fatal(err)
				}
				if err := f.Truncate(f.Size() - EntryBytes); err != nil {
					t.Fatal(err)
				}
				return g
			},
			file:   (*Graph).EdgesFile,
			offset: 6 * EntryBytes, // the shorter of actual and expected size
			bucket: -1,
			substr: "edge file has",
		},
		{
			name: "v1 maps disagree",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdges(t, dev, paperEdges, "g")
				// Point new ID 2 at old 5, which old2new says is new 0.
				writeAt(t, dev, "g"+suffixNew2Old, 2*4, []byte{5, 0, 0, 0})
				return g
			},
			file:   func(g *Graph) string { return g.Prefix() + suffixNew2Old },
			offset: 2 * 4,
			bucket: 2,
			substr: "disagree",
		},
		{
			name: "v2 undecodable block",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecVarint, 2)
				// A trailing continuation bit truncates block 0's last varint.
				writeAt(t, dev, g.EdgesFile(), g.blockOffs[1]-1, []byte{0x80})
				return g
			},
			file:   (*Graph).EdgesFile,
			offset: 0, // block 0 starts the file
			bucket: 0,
			substr: "undecodable",
		},
		{
			name: "v2 out-of-range destination in block 1",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecRaw, 2)
				// Raw blocks of 2 entries: entry 2 is block 1's first entry.
				writeAt(t, dev, g.EdgesFile(), g.blockOffs[1], []byte{0xFF, 0xFF, 0xFF, 0x7F})
				return g
			},
			file:   (*Graph).EdgesFile,
			offset: 2 * EntryBytes, // raw blocks: block 1 starts at byte 8
			bucket: 0,              // entry 2 still belongs to bucket 0 (FirstOff 0, degree 3)
			substr: "out of range",
		},
		{
			name: "v2 groupvarint truncated length table",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecGroupVarint, 2)
				// Block 1 holds 2 entries; its control byte directly
				// follows the count byte. 0xFF codes the two unused
				// lanes nonzero and claims 4-byte widths the block
				// does not have — a truncated/hostile length table.
				writeAt(t, dev, g.EdgesFile(), g.blockOffs[1]+1, []byte{0xFF})
				return g
			},
			file: (*Graph).EdgesFile,
			// The violation pins block 1's start; entry 2 is bucket 0.
			offsetOf: func(g *Graph) int64 { return g.blockOffs[1] },
			bucket:   0,
			substr:   "undecodable",
		},
		{
			name: "v2 groupvarint hostile block offset",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecGroupVarint, 2)
				// Shift an interior boundary: the table stays monotone
				// and still ends at the file size, but block 0 gains a
				// trailing byte (and block 1 loses its count header) —
				// only the per-block decode check can catch it.
				g.blockOffs[1]++
				return g
			},
			file:     (*Graph).EdgesFile,
			offsetOf: func(g *Graph) int64 { return 0 },
			bucket:   0,
			substr:   "undecodable",
		},
		{
			name: "v2 block table does not end at the file size",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecRaw, 2)
				f, err := dev.Open(g.EdgesFile())
				if err != nil {
					t.Fatal(err)
				}
				if err := f.Truncate(f.Size() - 1); err != nil {
					t.Fatal(err)
				}
				return g
			},
			file:   (*Graph).EdgesFile,
			offset: 7*EntryBytes - 1,
			bucket: -1,
			substr: "block offset table ends",
		},
		{
			name: "v2 block table not monotone",
			corrupt: func(t *testing.T, dev *storage.Device) *Graph {
				g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecRaw, 2)
				g.blockOffs[2] = g.blockOffs[1] - 1
				return g
			},
			file:   (*Graph).MetaFile,
			offset: 48 + 4*BucketBytes + 2*8, // v2 header, 4 buckets, table entry 2
			bucket: -1,
			substr: "not monotone",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := storage.NewDevice(storage.NullDevice, storage.Options{})
			g := tc.corrupt(t, dev)
			err := Verify(g)
			if err == nil {
				t.Fatal("Verify accepted the corrupt graph")
			}
			var v *Violation
			if !errors.As(err, &v) {
				t.Fatalf("error %T is not a *Violation: %v", err, err)
			}
			if v.File != tc.file(g) {
				t.Errorf("File = %q, want %q (%v)", v.File, tc.file(g), err)
			}
			wantOff := tc.offset
			if tc.offsetOf != nil {
				wantOff = tc.offsetOf(g)
			}
			if v.Offset != wantOff {
				t.Errorf("Offset = %d, want %d (%v)", v.Offset, wantOff, err)
			}
			if v.Bucket != tc.bucket {
				t.Errorf("Bucket = %d, want %d (%v)", v.Bucket, tc.bucket, err)
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
}

// TestVerifyViolationUnwrapsCodecError holds the typed-error chain: a
// decode failure inside Verify still matches storage.ErrCorruptBlock.
func TestVerifyViolationUnwrapsCodecError(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := convertEdgesV2(t, dev, paperEdges, "g", storage.CodecVarint, 2)
	f, err := dev.Open(g.EdgesFile())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0x80}, g.blockOffs[1]-1); err != nil {
		t.Fatal(err)
	}
	verr := Verify(g)
	if !errors.Is(verr, storage.ErrCorruptBlock) {
		t.Errorf("Verify error %v does not match storage.ErrCorruptBlock", verr)
	}
}

// TestVerifyV2Graphs runs the full checker over clean v2 conversions of
// the standard corpus under both codecs.
func TestVerifyV2Graphs(t *testing.T) {
	for _, codec := range []storage.Codec{storage.CodecRaw, storage.CodecVarint, storage.CodecGroupVarint} {
		dev := storage.NewDevice(storage.NullDevice, storage.Options{})
		g := convertEdgesV2(t, dev, paperEdges, "g", codec, 2)
		if err := Verify(g); err != nil {
			t.Errorf("%s: %v", codec.Name(), err)
		}
		g2 := convertEdgesV2(t, dev, nil, "empty", codec, 0)
		if err := Verify(g2); err != nil {
			t.Errorf("%s empty: %v", codec.Name(), err)
		}
	}
}
