package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// failWriter fails every write after the first okAfter bytes-writes, and
// optionally fails Close too.
type failWriter struct {
	okWrites int
	writes   int
	closeErr error
}

var errSink = errors.New("sink broken")

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.okWrites {
		return 0, errSink
	}
	return len(p), nil
}

func (w *failWriter) Close() error { return w.closeErr }

func TestTracerSurfacesWriteErrors(t *testing.T) {
	tr := NewTracer(&failWriter{})
	t0 := time.Unix(0, 0)
	// bufio absorbs small writes; force the flush to hit the sink.
	for i := 0; i < 10_000; i++ {
		tr.Emit("graphz", StageSio, 0, 0, t0, time.Nanosecond)
	}
	if err := tr.Err(); !errors.Is(err, errSink) {
		t.Fatalf("Err() = %v, want errSink", err)
	}
	if tr.Dropped() == 0 {
		t.Error("failed sink must count dropped spans")
	}
	dropped := tr.Dropped()
	// Further emits drop without touching the sink.
	tr.Emit("graphz", StageSio, 0, 0, t0, time.Nanosecond)
	if tr.Dropped() != dropped+1 {
		t.Errorf("Dropped() = %d, want %d", tr.Dropped(), dropped+1)
	}
	err := tr.Close()
	if !errors.Is(err, errSink) {
		t.Fatalf("Close() = %v, want errSink", err)
	}
	if !strings.Contains(err.Error(), "spans dropped") {
		t.Errorf("Close() = %q, want dropped-span count", err)
	}
}

func TestTracerCloseErrorWithoutDrops(t *testing.T) {
	closeErr := errors.New("close failed")
	tr := NewTracer(&failWriter{okWrites: 1 << 30, closeErr: closeErr})
	tr.Emit("graphz", StageSio, 0, 0, time.Unix(0, 0), time.Nanosecond)
	err := tr.Close()
	if !errors.Is(err, closeErr) {
		t.Fatalf("Close() = %v, want closeErr", err)
	}
	if strings.Contains(err.Error(), "spans dropped") {
		t.Errorf("Close() = %q: no spans were dropped", err)
	}
}

func TestCollectingTracerKeepsEventsOnFailedSink(t *testing.T) {
	tr := NewCollectingTracer(&failWriter{})
	t0 := time.Unix(0, 0)
	n := 10_000
	for i := 0; i < n; i++ {
		tr.Emit("graphz", StageWorker, i, 0, t0, time.Nanosecond)
	}
	if len(tr.Events()) != n {
		t.Fatalf("events = %d, want %d despite sink failure", len(tr.Events()), n)
	}
	if tr.Err() == nil || tr.Dropped() == 0 {
		t.Errorf("sink failure not surfaced: err=%v dropped=%d", tr.Err(), tr.Dropped())
	}
	// The report built from this tracer still sees every span.
	rep := BuildReport(ReportInfo{Engine: "graphz"}, nil, tr, nil)
	var spans int64
	for _, s := range rep.Stages {
		spans += s.Spans
	}
	if spans != int64(n) {
		t.Errorf("report spans = %d, want %d", spans, n)
	}
}
