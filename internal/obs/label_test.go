package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestLabelName(t *testing.T) {
	cases := []struct {
		base string
		kv   []string
		want string
	}{
		{"m", nil, "m"},
		{"m", []string{"job", "j-1"}, `m{job="j-1"}`},
		{"m", []string{"job", "j-1", "algo", "BFS"}, `m{job="j-1",algo="BFS"}`},
		{"m", []string{"v", `a"b\c` + "\n"}, `m{v="a\"b\\c\n"}`},
	}
	for _, c := range cases {
		if got := LabelName(c.base, c.kv...); got != c.want {
			t.Errorf("LabelName(%q, %v) = %q, want %q", c.base, c.kv, got, c.want)
		}
	}
}

// TestWritePrometheusLabelFamilies: labeled series must render under one
// # TYPE line per base name, even when an unrelated metric sorts between
// the unlabeled and labeled spellings.
func TestWritePrometheusLabelFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("graphz_jobs_total").Add(3)
	r.Counter(LabelName("graphz_jobs_total", "algo", "BFS")).Add(2)
	r.Counter(LabelName("graphz_jobs_total", "algo", "PR")).Add(1)
	r.Counter("graphz_jobs_total_errors").Inc() // sorts between the above
	r.Gauge(LabelName("graphz_budget_bytes", "kind", "used")).Set(42)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if got := strings.Count(out, "# TYPE graphz_jobs_total counter"); got != 1 {
		t.Errorf("TYPE lines for graphz_jobs_total = %d, want 1\n%s", got, out)
	}
	if got := strings.Count(out, "# TYPE graphz_budget_bytes gauge"); got != 1 {
		t.Errorf("TYPE lines for graphz_budget_bytes = %d, want 1\n%s", got, out)
	}
	// Each family's TYPE line immediately precedes its first sample, and
	// every series of the family follows before the next TYPE line.
	i := strings.Index(out, "# TYPE graphz_jobs_total counter\n")
	if i < 0 {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	rest := out[i+len("# TYPE graphz_jobs_total counter\n"):]
	block := rest
	if j := strings.Index(rest, "# TYPE"); j >= 0 {
		block = rest[:j]
	}
	for _, want := range []string{
		"graphz_jobs_total 3\n",
		`graphz_jobs_total{algo="BFS"} 2` + "\n",
		`graphz_jobs_total{algo="PR"} 1` + "\n",
	} {
		if !strings.Contains(block, want) {
			t.Errorf("family block missing %q:\n%s", want, block)
		}
	}
	if strings.Contains(block, "graphz_jobs_total_errors") {
		t.Errorf("foreign series inside the family block:\n%s", block)
	}
}

func TestMetricsServerShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	s, err := StartMetricsServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still serving after Shutdown")
	}
}

func TestDrainShutdown(t *testing.T) {
	reg := NewRegistry()
	s, err := StartMetricsServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := DrainShutdown(s, time.Second); err != nil {
		t.Fatalf("DrainShutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still serving after DrainShutdown")
	}
}
