package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := r.CounterValue("x_total"); got != 5 {
		t.Errorf("CounterValue = %d, want 5", got)
	}
	// Same name resolves to the same instrument.
	if r.Counter("x_total") != c {
		t.Error("counter identity lost across lookups")
	}
	g := r.Gauge("g")
	g.Set(42)
	if got := r.GaugeValue("g"); got != 42 {
		t.Errorf("gauge = %d, want 42", got)
	}
	if r.CounterValue("missing") != 0 {
		t.Error("missing counter should read 0")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != time.Millisecond+3*time.Microsecond {
		t.Errorf("sum = %v", h.Sum())
	}
	// The median upper bound must be far below the max observation's
	// bucket and the p100 at or above it.
	if q := h.Quantile(0.5); q > 100*time.Microsecond {
		t.Errorf("p50 bound = %v, want well under 100µs", q)
	}
	if q := h.Quantile(1); q < time.Millisecond {
		t.Errorf("p100 bound = %v, want >= 1ms", q)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(time.Second)
	r.RecordIter(IterStats{})
	if r.Iters() != nil || r.Snapshot() != nil {
		t.Error("nil registry should return nil views")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

// TestDisabledPathAllocatesZero proves the no-op fast path engines take
// when no sink is attached: resolving and driving nil instruments and
// nil-tracer spans must not allocate.
func TestDisabledPathAllocatesZero(t *testing.T) {
	var r *Registry
	var tr *Tracer
	c := r.Counter("hot_total")
	h := r.Histogram("hot_ns")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(time.Microsecond)
		s := tr.Start("graphz", StageWorker, 1, 2)
		s.End()
		tr.Emit("graphz", StageSio, 1, 2, time.Time{}, time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("disabled observability path allocates %v per op, want 0", allocs)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("used_bytes").Set(7)
	r.Histogram("stage_ns").Observe(3 * time.Microsecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter", "a_total 1",
		"b_total 2",
		"# TYPE used_bytes gauge", "used_bytes 7",
		"# TYPE stage_ns histogram", "stage_ns_count 1",
		`stage_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters render in sorted order.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Error("counters not sorted")
	}
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	s := tr.Start("graphz", StageDrain, 3, 1)
	s.End()
	start := time.Unix(0, 12345)
	tr.Emit("xstream", StageWorker, 0, 2, start, 67*time.Nanosecond)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Spans() != 2 {
		t.Errorf("spans = %d, want 2", tr.Spans())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	type ev struct {
		TS     int64  `json:"ts"`
		Engine string `json:"engine"`
		Stage  string `json:"stage"`
		Iter   int    `json:"iter"`
		Part   int    `json:"part"`
		DurNS  int64  `json:"dur_ns"`
	}
	var e ev
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if e.Engine != "graphz" || e.Stage != StageDrain || e.Iter != 3 || e.Part != 1 {
		t.Errorf("span 0 = %+v", e)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if e.TS != 12345 || e.DurNS != 67 || e.Stage != StageWorker {
		t.Errorf("span 1 = %+v", e)
	}
}

func TestIterTableAndStageTimes(t *testing.T) {
	var st StageTimes
	st.AddStage(StageSio, time.Millisecond)
	st.AddStage(StageDispatch, time.Millisecond)
	st.AddStage(StageWorker, 2*time.Millisecond)
	st.AddStage(StageDrain, time.Millisecond)
	st.AddStage("bogus", time.Hour) // dropped
	if st.Total() != 5*time.Millisecond {
		t.Errorf("total = %v", st.Total())
	}
	var sum StageTimes
	sum.Add(st)
	sum.Add(st)
	if sum.Worker != 4*time.Millisecond {
		t.Errorf("accumulated worker = %v", sum.Worker)
	}

	rows := []IterStats{
		{Iteration: 0, Stages: st, MessagesInline: 10, DeviceReadBytes: 4096},
		{Iteration: 1, MessagesBuffered: 3, PrefetchStalls: 2},
	}
	out := FormatIterTable(rows)
	for _, want := range []string{"iter", "worker", "2.0ms", "4096"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 3 {
		t.Errorf("table has %d lines, want header + 2 rows", len(lines))
	}
	if FormatIterTable(nil) != "" {
		t.Error("empty rows should render empty")
	}
}

func TestMetricsServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(9)
	srv, err := StartMetricsServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "hits_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%.200s", body)
	}
}
