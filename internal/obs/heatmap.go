package obs

import (
	"sort"
	"sync"
)

// BlockHeatmap attributes block-granular IO activity to (file, block)
// cells: reads and read bytes from the Sio prefetchers, skips from the
// selective scheduler, decode time from the block codec, and drain
// message fan-in from the MsgManager. Engines feed it from producer
// goroutines, so every Add is mutex-guarded; a nil *BlockHeatmap ignores
// all writes — the disabled fast path, matching the package's other
// instruments.
type BlockHeatmap struct {
	mu    sync.Mutex
	cells map[blockKey]*BlockHeat
}

type blockKey struct {
	file  string
	block int64
}

// BlockHeat is one (file, block) cell of the heatmap. Block indexes are
// in adjacency-entry blocks for edges files (BlockLayout.BlockEntries
// entries per block) and in DefaultBlockSize byte blocks for state files.
type BlockHeat struct {
	File      string `json:"file"`
	Block     int64  `json:"block"`
	Reads     int64  `json:"reads,omitempty"`      // prefetcher reads touching the block
	ReadBytes int64  `json:"read_bytes,omitempty"` // bytes those reads moved
	Skips     int64  `json:"skips,omitempty"`      // selective-scheduler skip decisions
	DecodeNS  int64  `json:"decode_ns,omitempty"`  // codec decode time spent on the block
	DrainMsgs int64  `json:"drain_msgs,omitempty"` // drained messages applied into the block
}

// NewBlockHeatmap returns an empty heatmap.
func NewBlockHeatmap() *BlockHeatmap {
	return &BlockHeatmap{cells: make(map[blockKey]*BlockHeat)}
}

func (h *BlockHeatmap) cell(file string, block int64) *BlockHeat {
	k := blockKey{file: file, block: block}
	c, ok := h.cells[k]
	if !ok {
		c = &BlockHeat{File: file, Block: block}
		h.cells[k] = c
	}
	return c
}

// AddRead records one read of n bytes touching the block.
func (h *BlockHeatmap) AddRead(file string, block, n int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	c := h.cell(file, block)
	c.Reads++
	c.ReadBytes += n
	h.mu.Unlock()
}

// AddSkip records one skip decision for the block.
func (h *BlockHeatmap) AddSkip(file string, block int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.cell(file, block).Skips++
	h.mu.Unlock()
}

// AddDecode records ns nanoseconds of codec decode time on the block.
func (h *BlockHeatmap) AddDecode(file string, block, ns int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.cell(file, block).DecodeNS += ns
	h.mu.Unlock()
}

// AddDrain records n drained messages applied to destinations in the
// block.
func (h *BlockHeatmap) AddDrain(file string, block, n int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.cell(file, block).DrainMsgs += n
	h.mu.Unlock()
}

// Cells returns a copy of all cells sorted by (file, block); nil when
// the heatmap is nil or empty.
func (h *BlockHeatmap) Cells() []BlockHeat {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	if len(h.cells) == 0 {
		h.mu.Unlock()
		return nil
	}
	out := make([]BlockHeat, 0, len(h.cells))
	for _, c := range h.cells {
		out = append(out, *c)
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Block < out[j].Block
	})
	return out
}
