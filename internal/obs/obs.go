// Package obs is the runtime observability layer shared by every engine
// in the repository: a dependency-free metrics registry (atomic counters,
// gauges, and lock-cheap duration histograms), a JSONL span tracer, and a
// /metrics + pprof HTTP surface.
//
// The design constraint is a no-op fast path: every instrument is
// nil-safe, so an engine resolves its counters once at construction and
// the hot path pays only a nil check when no registry is attached. The
// disabled path allocates nothing (proved by obs_test.go) and costs under
// 5% on the engine benchmarks (bench_test.go).
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LabelName embeds Prometheus-style labels in a series name:
// LabelName("graphz_job_iterations", "job", "j-3") returns
// `graphz_job_iterations{job="j-3"}`. The registry treats the result as an
// ordinary instrument name — there is no label-aware index — but
// WritePrometheus groups every series sharing a base name under a single
// # TYPE line, so labeled counters and gauges render as one metric family
// with many series, exactly what a scraper expects. kv alternates key,
// value; label values are escaped per the text exposition format.
// Histograms do not support labeled names (their rendered _bucket/_sum
// suffixes would land inside the braces); keep histogram names plain.
func LabelName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the text-format label escapes: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// baseName strips an embedded label set: `name{...}` → `name`.
func baseName(n string) string {
	if i := strings.IndexByte(n, '{'); i >= 0 {
		return n[:i]
	}
	return n
}

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// valid and ignores all writes — the disabled fast path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge ignores writes.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBucketCount covers durations from 1 ns to ~9 minutes in
// power-of-two buckets; longer observations land in the last bucket.
const histBucketCount = 40

// Histogram is a lock-free duration histogram with power-of-two
// nanosecond buckets: bucket i counts observations in [2^i, 2^(i+1)) ns.
// A nil *Histogram ignores observations.
type Histogram struct {
	buckets [histBucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// bucketOf maps a nanosecond duration to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBucketCount {
		b = histBucketCount - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) using
// the bucket upper edges; 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBucketCount; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(int64(1) << uint(i+1))
		}
	}
	return time.Duration(int64(1) << histBucketCount)
}

// Registry holds named instruments and the per-iteration rows engines
// record. A nil *Registry is valid: every lookup returns a nil instrument
// and every record is dropped, which is how the engines run with
// observability disabled.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	iters     []IterStats
	iterSnaps []map[string]int64 // cumulative snapshot taken with each row
	mems      []MemSample        // memory-budget timeline (RecordMem)
	heat      *BlockHeatmap
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		heat:     NewBlockHeatmap(),
	}
}

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter by name; 0 when absent or r is nil.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue reads a gauge by name; 0 when absent or r is nil.
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// RecordIter appends one per-iteration breakdown row, capturing the
// cumulative counter/gauge/histogram snapshot alongside it (histograms
// contribute `<name>_count` and `<name>_sum_ns` keys). Engines call it
// at the end of every iteration when a registry is attached.
func (r *Registry) RecordIter(row IterStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.iters = append(r.iters, row)
	r.iterSnaps = append(r.iterSnaps, r.snapshotLocked())
	r.mu.Unlock()
}

// snapshotLocked captures every instrument's cumulative value. Caller
// holds r.mu; instrument reads are atomic and don't retake it.
func (r *Registry) snapshotLocked() map[string]int64 {
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		out[n+"_count"] = h.Count()
		out[n+"_sum_ns"] = int64(h.Sum())
	}
	return out
}

// IterSnapshots returns the cumulative instrument snapshots captured
// with each iteration row, parallel to Iters().
func (r *Registry) IterSnapshots() []map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]map[string]int64, len(r.iterSnaps))
	copy(out, r.iterSnaps)
	return out
}

// RecordMem appends one memory-budget accounting sample. Engines call it
// at iteration boundaries when a registry is attached.
func (r *Registry) RecordMem(s MemSample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.mems = append(r.mems, s)
	r.mu.Unlock()
}

// MemSamples returns a copy of the recorded memory timeline.
func (r *Registry) MemSamples() []MemSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MemSample, len(r.mems))
	copy(out, r.mems)
	return out
}

// Heatmap returns the registry's block-level IO heatmap (nil on a nil
// registry — and a nil heatmap ignores writes, preserving the no-op
// fast path).
func (r *Registry) Heatmap() *BlockHeatmap {
	if r == nil {
		return nil
	}
	return r.heat
}

// Iters returns a copy of the recorded per-iteration rows.
func (r *Registry) Iters() []IterStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]IterStats, len(r.iters))
	copy(out, r.iters)
	return out
}

// Snapshot returns all counters and gauges by name (gauges prefixed with
// nothing — names are already distinct by convention).
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters as `<name>`, gauges as `<name>`, histograms as
// `<name>_bucket{le="..."}` / `<name>_sum` / `<name>_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	if err := writeFamilies(w, counters, "counter"); err != nil {
		return err
	}
	if err := writeFamilies(w, gauges, "gauge"); err != nil {
		return err
	}
	names := make([]string, 0, len(hists))
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hists[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i := 0; i < histBucketCount; i++ {
			c := h.buckets[i].Load()
			if c == 0 {
				continue
			}
			cum += c
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, int64(1)<<uint(i+1), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			n, h.count.Load(), n, h.sum.Load(), n, h.count.Load()); err != nil {
			return err
		}
	}
	return nil
}

// writeFamilies renders counters or gauges grouped into metric families:
// one # TYPE line per base name, then every series of that family (the
// unlabeled series plus any LabelName variants) in sorted order. Grouping
// matters because plain sorted order interleaves families — "job_x" sorts
// between "job" and `job{...}` — and the exposition format requires each
// family's TYPE line to appear exactly once, before its first sample.
func writeFamilies(w io.Writer, vals map[string]int64, typ string) error {
	families := make(map[string][]string)
	for n := range vals {
		b := baseName(n)
		families[b] = append(families[b], n)
	}
	bases := make([]string, 0, len(families))
	for b := range families {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, b := range bases {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", b, typ); err != nil {
			return err
		}
		series := families[b]
		sort.Strings(series)
		for _, n := range series {
			if _, err := fmt.Fprintf(w, "%s %d\n", n, vals[n]); err != nil {
				return err
			}
		}
	}
	return nil
}
