package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the registry in the Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// MetricsServer is a live observability endpoint: /metrics (Prometheus
// text) plus the standard /debug/pprof/ handlers, served while a run is
// in flight.
type MetricsServer struct {
	l   net.Listener
	srv *http.Server
}

// StartMetricsServer listens on addr (":0" picks a free port) and serves
// the registry and pprof until Close.
func StartMetricsServer(addr string, reg *Registry) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	s := &MetricsServer{l: l, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(l) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.l.Addr().String() }

// Close stops the server immediately, dropping in-flight requests. For a
// clean exit prefer Shutdown (or the DrainShutdown helper).
func (s *MetricsServer) Close() error { return s.srv.Close() }

// Shutdown stops accepting connections and waits for in-flight requests
// until ctx expires, mirroring http.Server.Shutdown.
func (s *MetricsServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
