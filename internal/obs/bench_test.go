package obs

import (
	"io"
	"testing"
	"time"
)

// The benchmarks quantify the issue's <5% disabled-overhead budget at the
// instrument level: the disabled variants are the exact operations the
// engine hot paths execute when no registry or tracer is attached.

func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("x_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("x_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Microsecond)
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("x_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Microsecond)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start("graphz", StageWorker, 0, 0)
		s.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start("graphz", StageWorker, 0, 0)
		s.End()
	}
}
