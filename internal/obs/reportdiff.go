package obs

import "sort"

// Report diffing: graphz-report's `diff` mode compares two RunReports of
// the same configuration — typically the same graph and algorithm at two
// budgets or two code revisions — and localizes regressions to stages,
// counters, and block ranges. It complements graphz-benchdiff, which
// only sees ns/op: a report diff says *where* the extra time and IO
// went.
//
// Direction convention: a "regression" is an increase from base to
// current that clears both the relative threshold and an absolute floor
// (MinNS for durations, MinCount for counts). The floors exist to
// de-flake timing noise on fast runs; semantics stay with the caller —
// e.g. a blocks-skipped increase is flagged too, and the reader decides
// whether that is good news.

// DiffOptions tunes the thresholds of DiffReports.
type DiffOptions struct {
	// Threshold is the relative growth ((cur-base)/base) at or above
	// which a change is a regression; 0 means the default 0.25.
	Threshold float64
	// MinNS is the absolute nanosecond floor a duration increase must
	// clear; 0 means the default 250µs. Negative disables the floor.
	MinNS int64
	// MinCount is the absolute floor a count increase must clear;
	// 0 means the default 16. Negative disables the floor.
	MinCount int64
	// TopBlocks caps the reported block-range regressions; 0 means the
	// default 16.
	TopBlocks int
}

func (o DiffOptions) threshold() float64 {
	if o.Threshold <= 0 {
		return 0.25
	}
	return o.Threshold
}

func (o DiffOptions) minNS() int64 {
	switch {
	case o.MinNS < 0:
		return 0
	case o.MinNS == 0:
		return 250_000
	default:
		return o.MinNS
	}
}

func (o DiffOptions) minCount() int64 {
	switch {
	case o.MinCount < 0:
		return 0
	case o.MinCount == 0:
		return 16
	default:
		return o.MinCount
	}
}

func (o DiffOptions) topBlocks() int {
	if o.TopBlocks <= 0 {
		return 16
	}
	return o.TopBlocks
}

// StageDelta compares one stage's span-aggregated wall time.
type StageDelta struct {
	Stage     string `json:"stage"`
	BaseNS    int64  `json:"base_ns"`
	CurNS     int64  `json:"cur_ns"`
	Regressed bool   `json:"regressed,omitempty"`
}

// CounterDelta compares one counter's final value. Only counters whose
// change clears the floors appear in the diff.
type CounterDelta struct {
	Name      string `json:"name"`
	Base      int64  `json:"base"`
	Cur       int64  `json:"cur"`
	Regressed bool   `json:"regressed,omitempty"`
}

// BlockRangeDelta is a run of adjacent blocks of one file whose metric
// regressed, merged into a single [FirstBlock, LastBlock] range with the
// summed base/current values.
type BlockRangeDelta struct {
	File       string `json:"file"`
	Metric     string `json:"metric"` // reads | read_bytes | skips | decode_ns | drain_msgs
	FirstBlock int64  `json:"first_block"`
	LastBlock  int64  `json:"last_block"`
	Base       int64  `json:"base"`
	Cur        int64  `json:"cur"`
}

// ReportDiff is the result of DiffReports.
type ReportDiff struct {
	Stages   []StageDelta      `json:"stages,omitempty"`
	Counters []CounterDelta    `json:"counters,omitempty"`
	Blocks   []BlockRangeDelta `json:"blocks,omitempty"`
	// Regressions counts the flagged stage, counter, and block-range
	// regressions; graphz-report diff exits non-zero when it is > 0.
	Regressions int `json:"regressions"`
}

// regressedBy reports whether cur regressed from base given a relative
// threshold and an absolute floor on the increase.
func regressedBy(base, cur, floor int64, threshold float64) bool {
	delta := cur - base
	if delta <= 0 || delta < floor {
		return false
	}
	if base == 0 {
		return true // new cost appearing from nothing
	}
	return float64(delta)/float64(base) >= threshold
}

// DiffReports compares two reports and localizes regressions. Stages are
// always all listed (they are few); counters only when their change
// clears the floors; blocks as merged ranges of adjacent regressed
// blocks, largest increases first, capped at TopBlocks.
func DiffReports(base, cur *RunReport, opts DiffOptions) *ReportDiff {
	d := &ReportDiff{}
	th := opts.threshold()

	// Stages: union of both reports' stage totals.
	bTot, cTot := base.StageTotals(), cur.StageTotals()
	for _, name := range unionKeys(bTot, cTot) {
		sd := StageDelta{Stage: name, BaseNS: bTot[name], CurNS: cTot[name]}
		if regressedBy(sd.BaseNS, sd.CurNS, opts.minNS(), th) {
			sd.Regressed = true
			d.Regressions++
		}
		d.Stages = append(d.Stages, sd)
	}
	sort.Slice(d.Stages, func(i, j int) bool {
		di := d.Stages[i].CurNS - d.Stages[i].BaseNS
		dj := d.Stages[j].CurNS - d.Stages[j].BaseNS
		if di != dj {
			return di > dj
		}
		return d.Stages[i].Stage < d.Stages[j].Stage
	})

	// Counters: union, floored to the notable changes in either
	// direction; increases that clear the threshold are regressions.
	for _, name := range unionKeys(base.Counters, cur.Counters) {
		b, c := base.Counters[name], cur.Counters[name]
		delta := c - b
		if delta < 0 {
			delta = -delta
		}
		if delta < opts.minCount() {
			continue
		}
		cd := CounterDelta{Name: name, Base: b, Cur: c}
		if regressedBy(b, c, opts.minCount(), th) {
			cd.Regressed = true
			d.Regressions++
		}
		d.Counters = append(d.Counters, cd)
	}
	sort.Slice(d.Counters, func(i, j int) bool {
		di := absDelta(d.Counters[i].Cur, d.Counters[i].Base)
		dj := absDelta(d.Counters[j].Cur, d.Counters[j].Base)
		if di != dj {
			return di > dj
		}
		return d.Counters[i].Name < d.Counters[j].Name
	})

	d.Blocks = diffBlocks(base.Blocks, cur.Blocks, opts)
	d.Regressions += len(d.Blocks)
	return d
}

func absDelta(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// blockMetrics enumerates the heatmap metrics and their floors.
var blockMetrics = []struct {
	name string
	get  func(BlockHeat) int64
	ns   bool // duration metric (MinNS floor) vs count metric (MinCount)
}{
	{"reads", func(c BlockHeat) int64 { return c.Reads }, false},
	{"read_bytes", func(c BlockHeat) int64 { return c.ReadBytes }, false},
	{"skips", func(c BlockHeat) int64 { return c.Skips }, false},
	{"decode_ns", func(c BlockHeat) int64 { return c.DecodeNS }, true},
	{"drain_msgs", func(c BlockHeat) int64 { return c.DrainMsgs }, false},
}

// diffBlocks flags per-(file, block, metric) regressions and merges
// adjacent regressed blocks of the same file and metric into ranges.
func diffBlocks(base, cur []BlockHeat, opts DiffOptions) []BlockRangeDelta {
	th := opts.threshold()
	idx := make(map[blockKey]BlockHeat, len(base))
	for _, c := range base {
		idx[blockKey{file: c.File, block: c.Block}] = c
	}
	// Walk the union of blocks in (file, block) order so adjacency
	// merging is a single pass.
	inCur := make(map[blockKey]bool, len(cur))
	for _, c := range cur {
		inCur[blockKey{file: c.File, block: c.Block}] = true
	}
	all := make([]BlockHeat, 0, len(cur)+len(base))
	all = append(all, cur...)
	for _, c := range base {
		if !inCur[blockKey{file: c.File, block: c.Block}] {
			// Base-only blocks join as zero-valued cells: they can only
			// improve, but keeping them makes the union walk uniform.
			all = append(all, BlockHeat{File: c.File, Block: c.Block})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		return all[i].Block < all[j].Block
	})

	var out []BlockRangeDelta
	for _, m := range blockMetrics {
		floor := opts.minCount()
		if m.ns {
			floor = opts.minNS()
		}
		var open *BlockRangeDelta
		for _, c := range all {
			b := m.get(idx[blockKey{file: c.File, block: c.Block}])
			v := m.get(c)
			if !regressedBy(b, v, floor, th) {
				open = nil
				continue
			}
			if open != nil && open.File == c.File && open.LastBlock+1 == c.Block {
				open.LastBlock = c.Block
				open.Base += b
				open.Cur += v
				continue
			}
			out = append(out, BlockRangeDelta{
				File: c.File, Metric: m.name,
				FirstBlock: c.Block, LastBlock: c.Block,
				Base: b, Cur: v,
			})
			open = &out[len(out)-1]
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Cur-out[i].Base, out[j].Cur-out[j].Base
		if di != dj {
			return di > dj
		}
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		return out[i].FirstBlock < out[j].FirstBlock
	})
	if len(out) > opts.topBlocks() {
		out = out[:opts.topBlocks()]
	}
	return out
}

// unionKeys returns the sorted union of both maps' keys.
func unionKeys(a, b map[string]int64) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		set[k] = struct{}{}
	}
	for k := range b {
		set[k] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
