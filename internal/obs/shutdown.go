package obs

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Graceful-shutdown plumbing shared by every long-running command
// (graphz-run's -metrics-addr endpoint, the graphz-serve daemon): a
// signal-bound context to stop accepting work, and a bounded drain for
// the HTTP servers still answering it.

// SignalContext returns a context cancelled on SIGINT or SIGTERM (and
// when parent is cancelled). The returned stop function releases the
// signal registration; after the first signal cancels the context, a
// second signal falls through to the default handler and kills the
// process — the escape hatch when a drain hangs.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Drainable is an HTTP server that can drain gracefully with a deadline
// or stop abruptly: *http.Server and *MetricsServer both qualify.
type Drainable interface {
	Shutdown(context.Context) error
	Close() error
}

// DrainShutdown shuts s down gracefully, waiting up to timeout for
// in-flight requests; if the drain deadline expires (or Shutdown fails)
// it forces Close so the caller never hangs on exit. It returns the
// Shutdown error, if any.
func DrainShutdown(s Drainable, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		s.Close() //nolint:errcheck // best-effort after a failed drain
		return err
	}
	return nil
}
