package obs

import (
	"fmt"
	"strings"
	"time"
)

// The pipeline stage names shared by every engine's spans and counters,
// mirroring the paper's runtime components: Sio (block reads off the
// device), Dispatcher (block parsing), Worker (vertex updates), and
// MsgManager (pending-message drain). The analog engines reuse the same
// names for their closest equivalents so comparisons stay
// apples-to-apples.
const (
	StageSio      = "sio"
	StageDispatch = "dispatch"
	StageWorker   = "worker"
	StageDrain    = "drain"
)

// Off-pipeline stages: durability snapshots (PR 3), their restore path,
// and the block codec's decode step (PR 5, a sub-span of dispatch).
// These carry part = -1 (checkpoint/restore span whole iterations) or
// the partition whose blocks were decoded.
const (
	StageCheckpoint = "checkpoint"
	StageRestore    = "restore"
	StageDecode     = "decode"
)

// StageTimes is wall-clock time attributed to each pipeline stage.
type StageTimes struct {
	Sio      time.Duration
	Dispatch time.Duration
	Worker   time.Duration
	Drain    time.Duration
}

// AddStage adds d to the named stage; unknown names are dropped.
func (s *StageTimes) AddStage(stage string, d time.Duration) {
	switch stage {
	case StageSio:
		s.Sio += d
	case StageDispatch:
		s.Dispatch += d
	case StageWorker:
		s.Worker += d
	case StageDrain:
		s.Drain += d
	}
}

// Add accumulates o into s.
func (s *StageTimes) Add(o StageTimes) {
	s.Sio += o.Sio
	s.Dispatch += o.Dispatch
	s.Worker += o.Worker
	s.Drain += o.Drain
}

// Total returns the summed stage time.
func (s StageTimes) Total() time.Duration {
	return s.Sio + s.Dispatch + s.Worker + s.Drain
}

// IterStats is one iteration's observability breakdown: stage wall times,
// message routing counts, pipeline stalls, and device traffic deltas.
// Engines record one row per iteration via Registry.RecordIter.
type IterStats struct {
	Iteration int
	Stages    StageTimes

	// Message routing (GraphZ engine; zero for the analogs).
	MessagesInline   int64 // applied immediately, destination resident
	MessagesBuffered int64 // queued for a non-resident destination
	MessagesSpilled  int64 // buffered messages that reached the device

	// Pipeline behavior.
	PrefetchStalls int64 // Worker waited on an empty Sio queue
	AdjCacheHits   int64 // partitions served from the resident adjacency cache

	// Chunked parallel Worker sub-stage (zero on the sequential path).
	WorkerChunks  int64 // chunks executed speculatively
	WorkerReexecs int64 // chunks invalidated by an earlier chunk's message and re-executed

	// Selective block scheduling (zero unless enabled).
	BlocksScanned  int64 // adjacency blocks the block scheduler read
	BlocksSkipped  int64 // adjacency blocks proved inactive and skipped
	ActiveVertices int64 // schedulable vertices at the iteration boundary

	// Device traffic during the iteration (delta of storage.Stats).
	DeviceReadBytes  int64
	DeviceWriteBytes int64
	DeviceSeeks      int64
}

// FormatIterTable renders per-iteration rows as an aligned text table for
// the post-run summary.
func FormatIterTable(rows []IterStats) string {
	if len(rows) == 0 {
		return ""
	}
	header := []string{"iter", "sio", "dispatch", "worker", "drain",
		"inline", "buffered", "spilled", "stalls", "reexec", "blkskip", "active", "readB", "writeB", "seeks"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Iteration),
			fmtShortDur(r.Stages.Sio),
			fmtShortDur(r.Stages.Dispatch),
			fmtShortDur(r.Stages.Worker),
			fmtShortDur(r.Stages.Drain),
			fmt.Sprintf("%d", r.MessagesInline),
			fmt.Sprintf("%d", r.MessagesBuffered),
			fmt.Sprintf("%d", r.MessagesSpilled),
			fmt.Sprintf("%d", r.PrefetchStalls),
			fmt.Sprintf("%d", r.WorkerReexecs),
			fmt.Sprintf("%d", r.BlocksSkipped),
			fmt.Sprintf("%d", r.ActiveVertices),
			fmt.Sprintf("%d", r.DeviceReadBytes),
			fmt.Sprintf("%d", r.DeviceWriteBytes),
			fmt.Sprintf("%d", r.DeviceSeeks),
		})
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// fmtShortDur prints a duration compactly with three significant figures
// at most.
func fmtShortDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
