package obs

import (
	"reflect"
	"testing"
)

func stageReport(stages ...StageAgg) *RunReport {
	return &RunReport{Schema: ReportSchemaVersion, Stages: stages}
}

func TestDiffStageRegression(t *testing.T) {
	base := stageReport(
		StageAgg{Engine: "graphz", Stage: StageSio, NS: 1_000_000},
		StageAgg{Engine: "graphz", Stage: StageDrain, NS: 2_000_000},
	)
	cur := stageReport(
		StageAgg{Engine: "graphz", Stage: StageSio, NS: 1_050_000},   // +5%: below threshold
		StageAgg{Engine: "graphz", Stage: StageDrain, NS: 9_000_000}, // +350%: regression
	)
	d := DiffReports(base, cur, DiffOptions{})
	if len(d.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(d.Stages))
	}
	// Sorted by delta descending: drain first.
	if d.Stages[0].Stage != StageDrain || !d.Stages[0].Regressed {
		t.Errorf("stage 0 = %+v, want regressed drain", d.Stages[0])
	}
	if d.Stages[1].Stage != StageSio || d.Stages[1].Regressed {
		t.Errorf("stage 1 = %+v, want non-regressed sio", d.Stages[1])
	}
	if d.Regressions != 1 {
		t.Errorf("regressions = %d, want 1", d.Regressions)
	}
}

func TestDiffStageAbsoluteFloor(t *testing.T) {
	// 10x relative growth but only 90µs absolute — under the 250µs floor.
	base := stageReport(StageAgg{Stage: StageWorker, NS: 10_000})
	cur := stageReport(StageAgg{Stage: StageWorker, NS: 100_000})
	if d := DiffReports(base, cur, DiffOptions{}); d.Regressions != 0 {
		t.Errorf("sub-floor growth flagged: %+v", d.Stages)
	}
	// A negative MinNS disables the floor.
	if d := DiffReports(base, cur, DiffOptions{MinNS: -1}); d.Regressions != 1 {
		t.Errorf("floor-disabled growth not flagged")
	}
	// Cost appearing from a zero base is always a regression once over
	// the floor.
	d := DiffReports(stageReport(), stageReport(StageAgg{Stage: StageDecode, NS: 300_000}), DiffOptions{})
	if d.Regressions != 1 || !d.Stages[0].Regressed {
		t.Errorf("new stage cost not flagged: %+v", d.Stages)
	}
}

func TestDiffCounters(t *testing.T) {
	base := &RunReport{Schema: 1, Counters: map[string]int64{
		"graphz_messages_spilled_total": 0,
		"graphz_blocks_skipped_total":   100,
		"graphz_noise_total":            5,
	}}
	cur := &RunReport{Schema: 1, Counters: map[string]int64{
		"graphz_messages_spilled_total": 5000,
		"graphz_blocks_skipped_total":   40, // improvement: listed, not regressed
		"graphz_noise_total":            9,  // |delta| 4 < MinCount 16: dropped
	}}
	d := DiffReports(base, cur, DiffOptions{})
	if len(d.Counters) != 2 {
		t.Fatalf("counters = %+v, want 2 entries", d.Counters)
	}
	if d.Counters[0].Name != "graphz_messages_spilled_total" || !d.Counters[0].Regressed {
		t.Errorf("counter 0 = %+v, want regressed spill", d.Counters[0])
	}
	if d.Counters[1].Name != "graphz_blocks_skipped_total" || d.Counters[1].Regressed {
		t.Errorf("counter 1 = %+v, want non-regressed skip decrease", d.Counters[1])
	}
	if d.Regressions != 1 {
		t.Errorf("regressions = %d, want 1", d.Regressions)
	}
}

func TestDiffBlocksMergesAdjacent(t *testing.T) {
	base := &RunReport{Schema: 1, Blocks: []BlockHeat{
		{File: "graphz.edges", Block: 0, Reads: 10},
		{File: "graphz.edges", Block: 1, Reads: 10},
		{File: "graphz.edges", Block: 2, Reads: 10},
		{File: "graphz.edges", Block: 4, Reads: 10},
	}}
	cur := &RunReport{Schema: 1, Blocks: []BlockHeat{
		{File: "graphz.edges", Block: 0, Reads: 100},
		{File: "graphz.edges", Block: 1, Reads: 100},
		{File: "graphz.edges", Block: 2, Reads: 10}, // unchanged: breaks the run
		{File: "graphz.edges", Block: 4, Reads: 100},
	}}
	d := DiffReports(base, cur, DiffOptions{})
	want := []BlockRangeDelta{
		{File: "graphz.edges", Metric: "reads", FirstBlock: 0, LastBlock: 1, Base: 20, Cur: 200},
		{File: "graphz.edges", Metric: "reads", FirstBlock: 4, LastBlock: 4, Base: 10, Cur: 100},
	}
	if !reflect.DeepEqual(d.Blocks, want) {
		t.Errorf("blocks =\n %+v\nwant\n %+v", d.Blocks, want)
	}
	if d.Regressions != 2 {
		t.Errorf("regressions = %d, want 2", d.Regressions)
	}
}

func TestDiffBlocksNewBlocksAndCap(t *testing.T) {
	// Blocks only in the current run (e.g. spill traffic appearing) have
	// a zero base; every other block drops out quietly.
	base := &RunReport{Schema: 1}
	cur := &RunReport{Schema: 1, Blocks: []BlockHeat{
		{File: "graphz.vstate", Block: 0, DrainMsgs: 500},
		{File: "graphz.vstate", Block: 2, DrainMsgs: 900},
		{File: "graphz.vstate", Block: 4, DrainMsgs: 700},
	}}
	d := DiffReports(base, cur, DiffOptions{TopBlocks: 2})
	if len(d.Blocks) != 2 {
		t.Fatalf("blocks = %+v, want capped at 2", d.Blocks)
	}
	// Largest increases first.
	if d.Blocks[0].FirstBlock != 2 || d.Blocks[1].FirstBlock != 4 {
		t.Errorf("cap kept wrong ranges: %+v", d.Blocks)
	}
	// Base-only blocks never produce a range (they can only improve).
	d = DiffReports(cur, base, DiffOptions{})
	if len(d.Blocks) != 0 {
		t.Errorf("improvement produced ranges: %+v", d.Blocks)
	}
}

func TestDiffNsMetricUsesNsFloor(t *testing.T) {
	base := &RunReport{Schema: 1, Blocks: []BlockHeat{{File: "graphz.edges", Block: 0, DecodeNS: 1000}}}
	cur := &RunReport{Schema: 1, Blocks: []BlockHeat{{File: "graphz.edges", Block: 0, DecodeNS: 200_000}}}
	// +199µs decode: huge relative growth, but under the 250µs MinNS floor
	// (while far over the MinCount floor a count metric would use).
	if d := DiffReports(base, cur, DiffOptions{}); len(d.Blocks) != 0 {
		t.Errorf("sub-floor decode growth flagged: %+v", d.Blocks)
	}
	cur.Blocks[0].DecodeNS = 2_000_000
	d := DiffReports(base, cur, DiffOptions{})
	if len(d.Blocks) != 1 || d.Blocks[0].Metric != "decode_ns" {
		t.Errorf("decode regression missed: %+v", d.Blocks)
	}
}

func TestDiffOptionDefaults(t *testing.T) {
	var o DiffOptions
	if o.threshold() != 0.25 || o.minNS() != 250_000 || o.minCount() != 16 || o.topBlocks() != 16 {
		t.Errorf("defaults = %v %v %v %v", o.threshold(), o.minNS(), o.minCount(), o.topBlocks())
	}
	o = DiffOptions{Threshold: 0.5, MinNS: 1, MinCount: 2, TopBlocks: 3}
	if o.threshold() != 0.5 || o.minNS() != 1 || o.minCount() != 2 || o.topBlocks() != 3 {
		t.Errorf("explicit values not honored")
	}
	o = DiffOptions{MinNS: -1, MinCount: -1}
	if o.minNS() != 0 || o.minCount() != 0 {
		t.Errorf("negative floors must disable")
	}
}
