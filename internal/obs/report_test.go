package obs

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// buildSampleReport assembles a report through the real instruments — the
// same path BuildReport takes after a run — so marshal round-trips exercise
// every section.
func buildSampleReport() *RunReport {
	reg := NewRegistry()
	reg.Counter("graphz_messages_inline_total").Add(100)
	reg.Counter("graphz_messages_spilled_total").Add(7)
	reg.Gauge("graphz_partitions").Set(4)
	reg.Histogram("graphz_iteration_seconds").Observe(3 * time.Millisecond)
	reg.Histogram("graphz_iteration_seconds").Observe(5 * time.Millisecond)
	reg.RecordIter(IterStats{Iteration: 0, MessagesInline: 60})
	reg.Counter("graphz_messages_inline_total").Add(50)
	reg.RecordIter(IterStats{Iteration: 1, MessagesInline: 40})
	reg.RecordMem(MemSample{Iteration: 0, BudgetBytes: 1 << 20, IndexBytes: 4096, VertexStateBytes: 2048})
	reg.RecordMem(MemSample{Iteration: 1, BudgetBytes: 1 << 20, IndexBytes: 4096, VertexStateBytes: 2048, SpillBytes: 512})
	reg.Heatmap().AddRead("graphz.edges", 0, 1024)
	reg.Heatmap().AddRead("graphz.edges", 1, 2048)
	reg.Heatmap().AddSkip("graphz.edges", 2)
	reg.Heatmap().AddDecode("graphz.edges", 0, 5000)
	reg.Heatmap().AddDrain("graphz.vstate", 0, 12)

	tr := NewCollectingTracer(nil)
	t0 := time.Unix(0, 1_000)
	tr.Emit("graphz", StageSio, 0, 0, t0, 100*time.Microsecond)
	tr.Emit("graphz", StageSio, 0, 1, t0, 150*time.Microsecond)
	tr.Emit("graphz", StageWorker, 0, 0, t0, 300*time.Microsecond)
	tr.Emit("graphz", StageWorker, 1, 0, t0, 200*time.Microsecond)
	tr.Emit("graphz", StageCheckpoint, 1, -1, t0, 50*time.Microsecond)

	return BuildReport(ReportInfo{
		Engine:      "graphz",
		Algo:        "pagerank",
		Device:      "ssd",
		BudgetBytes: 1 << 20,
		Config:      map[string]string{"scale": "small"},
	}, reg, tr, map[string]FileIO{
		"graphz.edges": {ReadOps: 9, ReadBytes: 3072, Seeks: 1},
	})
}

func TestBuildReportSections(t *testing.T) {
	rep := buildSampleReport()
	if rep.Schema != ReportSchemaVersion {
		t.Fatalf("schema = %d, want %d", rep.Schema, ReportSchemaVersion)
	}
	if rep.Counters["graphz_messages_inline_total"] != 150 {
		t.Errorf("inline counter = %d, want 150", rep.Counters["graphz_messages_inline_total"])
	}
	if rep.Gauges["graphz_partitions"] != 4 {
		t.Errorf("partitions gauge = %d, want 4", rep.Gauges["graphz_partitions"])
	}
	h := rep.Histograms["graphz_iteration_seconds"]
	if h.Count != 2 || h.SumNS != int64(8*time.Millisecond) {
		t.Errorf("histogram export = %+v, want count 2 sum 8ms", h)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		if b.Count <= 0 {
			t.Errorf("empty bucket exported: %+v", b)
		}
		bucketSum += b.Count
	}
	if bucketSum != h.Count {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, h.Count)
	}

	if len(rep.Iterations) != 2 {
		t.Fatalf("iterations = %d, want 2", len(rep.Iterations))
	}
	// Snapshots are cumulative at each iteration boundary.
	if got := rep.Iterations[0].Snapshot["graphz_messages_inline_total"]; got != 100 {
		t.Errorf("iter 0 snapshot inline = %d, want 100", got)
	}
	if got := rep.Iterations[1].Snapshot["graphz_messages_inline_total"]; got != 150 {
		t.Errorf("iter 1 snapshot inline = %d, want 150", got)
	}
	if got := rep.Iterations[0].Snapshot["graphz_iteration_seconds_count"]; got != 2 {
		t.Errorf("iter 0 snapshot hist count = %d, want 2", got)
	}

	if len(rep.Memory) != 2 {
		t.Fatalf("memory samples = %d, want 2", len(rep.Memory))
	}
	if got := rep.Memory[0].ResidentBytes(); got != 4096+2048 {
		t.Errorf("resident bytes = %d, want %d", got, 4096+2048)
	}
	if rep.Memory[1].SpillBytes != 512 {
		t.Errorf("spill bytes = %d, want 512", rep.Memory[1].SpillBytes)
	}

	// Heatmap cells arrive sorted by (file, block).
	if len(rep.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4: %+v", len(rep.Blocks), rep.Blocks)
	}
	for i := 1; i < len(rep.Blocks); i++ {
		a, b := rep.Blocks[i-1], rep.Blocks[i]
		if a.File > b.File || (a.File == b.File && a.Block >= b.Block) {
			t.Errorf("blocks out of order at %d: %+v then %+v", i, a, b)
		}
	}
	if c := rep.Blocks[0]; c.File != "graphz.edges" || c.Block != 0 || c.Reads != 1 || c.ReadBytes != 1024 || c.DecodeNS != 5000 {
		t.Errorf("block 0 cell = %+v", c)
	}

	if rep.Files["graphz.edges"].ReadBytes != 3072 {
		t.Errorf("file IO = %+v", rep.Files["graphz.edges"])
	}
}

func TestReportMarshalRoundTrip(t *testing.T) {
	rep := buildSampleReport()
	data, err := rep.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := ParseReport(data)
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rep)
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	rep := buildSampleReport()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatalf("ReadReportFile: %v", err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Errorf("file round trip mismatch")
	}
}

func TestParseReportRejectsBadSchema(t *testing.T) {
	if _, err := ParseReport([]byte(`{"engine":"graphz"}`)); err == nil || !strings.Contains(err.Error(), "not a run report") {
		t.Errorf("schema 0: err = %v, want not-a-run-report", err)
	}
	if _, err := ParseReport([]byte(`{"schema":99}`)); err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Errorf("schema 99: err = %v, want newer-than-supported", err)
	}
	if _, err := ParseReport([]byte(`not json`)); err == nil {
		t.Error("garbage input: want error")
	}
}

func TestBuildReportEmptySources(t *testing.T) {
	rep := BuildReport(ReportInfo{Engine: "graphz"}, nil, nil, nil)
	if rep.Schema != ReportSchemaVersion || rep.Engine != "graphz" {
		t.Fatalf("identity = %+v", rep)
	}
	if rep.Counters != nil || rep.Iterations != nil || rep.Memory != nil ||
		rep.Stages != nil || rep.Blocks != nil || rep.Files != nil {
		t.Errorf("empty sources must stay nil: %+v", rep)
	}
	// An empty registry and tracer likewise contribute nothing.
	rep = BuildReport(ReportInfo{}, NewRegistry(), NewCollectingTracer(nil), nil)
	if rep.Counters != nil || rep.Stages != nil || rep.Blocks != nil {
		t.Errorf("fresh registry/tracer must contribute nothing: %+v", rep)
	}
}

func TestAggregateSpans(t *testing.T) {
	events := []SpanEvent{
		{Engine: "graphz", Stage: StageWorker, Iter: 1, Part: 0, DurNS: 5},
		{Engine: "graphz", Stage: StageSio, Iter: 0, Part: 1, DurNS: 10},
		{Engine: "graphz", Stage: StageSio, Iter: 0, Part: 1, DurNS: 20},
		{Engine: "graphz", Stage: StageSio, Iter: 0, Part: 0, DurNS: 7},
	}
	got := AggregateSpans(events)
	want := []StageAgg{
		{Engine: "graphz", Stage: StageSio, Iter: 0, Part: 0, Spans: 1, NS: 7},
		{Engine: "graphz", Stage: StageSio, Iter: 0, Part: 1, Spans: 2, NS: 30},
		{Engine: "graphz", Stage: StageWorker, Iter: 1, Part: 0, Spans: 1, NS: 5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AggregateSpans =\n %+v\nwant\n %+v", got, want)
	}
	if AggregateSpans(nil) != nil {
		t.Error("AggregateSpans(nil) must be nil")
	}
}

func TestStageAndPartitionTotals(t *testing.T) {
	rep := buildSampleReport()
	tot := rep.StageTotals()
	if tot[StageSio] != int64(250*time.Microsecond) {
		t.Errorf("sio total = %d", tot[StageSio])
	}
	if tot[StageWorker] != int64(500*time.Microsecond) {
		t.Errorf("worker total = %d", tot[StageWorker])
	}
	if tot[StageCheckpoint] != int64(50*time.Microsecond) {
		t.Errorf("checkpoint total = %d", tot[StageCheckpoint])
	}
	parts := rep.PartitionTotals(StageSio)
	if parts[0] != int64(100*time.Microsecond) || parts[1] != int64(150*time.Microsecond) {
		t.Errorf("sio partition totals = %v", parts)
	}
}

func TestHeatmapNilSafety(t *testing.T) {
	var h *BlockHeatmap
	h.AddRead("f", 0, 1)
	h.AddSkip("f", 0)
	h.AddDecode("f", 0, 1)
	h.AddDrain("f", 0, 1)
	if h.Cells() != nil {
		t.Error("nil heatmap Cells() must be nil")
	}
	var reg *Registry
	if reg.Heatmap() != nil {
		t.Error("nil registry Heatmap() must be nil")
	}
}

func TestCollectingTracerEvents(t *testing.T) {
	tr := NewCollectingTracer(nil)
	t0 := time.Unix(10, 500)
	tr.Emit("graphz", StageDrain, 3, 2, t0, 42*time.Nanosecond)
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	want := SpanEvent{TS: t0.UnixNano(), Engine: "graphz", Stage: StageDrain, Iter: 3, Part: 2, DurNS: 42}
	if events[0] != want {
		t.Errorf("event = %+v, want %+v", events[0], want)
	}
	if tr.Spans() != 1 || tr.Dropped() != 0 {
		t.Errorf("spans=%d dropped=%d", tr.Spans(), tr.Dropped())
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("collect-only Flush: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("collect-only Close: %v", err)
	}
	// A plain tracer collects nothing.
	plain := NewTracer(&strings.Builder{})
	plain.Emit("graphz", StageSio, 0, 0, t0, time.Nanosecond)
	if plain.Events() != nil {
		t.Error("non-collecting tracer must not retain events")
	}
}
