package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ReportSchemaVersion is the current RunReport schema. Readers accept
// any version up to their own and reject newer artifacts, so an old
// graphz-report never silently misreads a new report.
const ReportSchemaVersion = 1

// RunReport is the versioned post-run profiling artifact: everything the
// live registry, tracer, heatmap, and device knew at the end of a run,
// folded into one JSON document that graphz-report can analyze and diff
// (docs/OBSERVABILITY.md, "Run reports").
type RunReport struct {
	Schema int `json:"schema"`

	// Run identity.
	Engine      string            `json:"engine,omitempty"`
	Algo        string            `json:"algo,omitempty"`
	Device      string            `json:"device,omitempty"`
	BudgetBytes int64             `json:"budget_bytes,omitempty"`
	Config      map[string]string `json:"config,omitempty"`

	// Final instrument values.
	Counters   map[string]int64           `json:"counters,omitempty"`
	Gauges     map[string]int64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramExport `json:"histograms,omitempty"`

	// Per-iteration rows, each with the counter/gauge snapshot taken at
	// its boundary.
	Iterations []IterReport `json:"iterations,omitempty"`

	// Memory-budget accounting timeline, one sample per iteration.
	Memory []MemSample `json:"memory,omitempty"`

	// Stage wall time aggregated from spans, per (engine, stage,
	// iteration, partition).
	Stages []StageAgg `json:"stages,omitempty"`

	// Block-level IO heatmap cells.
	Blocks []BlockHeat `json:"blocks,omitempty"`

	// Per-file physical device traffic.
	Files map[string]FileIO `json:"files,omitempty"`
}

// HistogramExport is a histogram's final state: observation count, summed
// nanoseconds, and the non-empty power-of-two buckets.
type HistogramExport struct {
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket: observations in
// [2^(i), 2^(i+1)) ns where UpperNS = 2^(i+1).
type HistBucket struct {
	UpperNS int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// IterReport is one iteration's row plus the cumulative counter/gauge
// snapshot captured when the row was recorded. Histograms contribute
// `<name>_count` and `<name>_sum_ns` keys.
type IterReport struct {
	IterStats
	Snapshot map[string]int64 `json:"snapshot,omitempty"`
}

// MemSample is one point of the memory-budget accounting timeline,
// sampled at an iteration boundary. ResidentBytes sums the accounted
// classes; BudgetBytes-ResidentBytes is the headroom the planner left.
type MemSample struct {
	Iteration        int   `json:"iteration"`
	BudgetBytes      int64 `json:"budget_bytes"`
	IndexBytes       int64 `json:"index_bytes"`        // vertex index
	TableBytes       int64 `json:"table_bytes"`        // codec per-block offset table
	PipelineBytes    int64 `json:"pipeline_bytes"`     // Sio prefetch + staging buffers
	VertexStateBytes int64 `json:"vertex_state_bytes"` // resident partition states (high-water)
	AdjCacheBytes    int64 `json:"adj_cache_bytes"`    // resident adjacency cache
	MsgBufferBytes   int64 `json:"msg_buffer_bytes"`   // in-memory message buffers (capacity)
	SpillBytes       int64 `json:"spill_bytes"`        // spilled messages on the device
	BitmapBytes      int64 `json:"bitmap_bytes"`       // selective-scheduling bitmap
}

// ResidentBytes sums the budget-accounted classes of the sample (spill
// lives on the device and is excluded, mirroring the planner).
func (m MemSample) ResidentBytes() int64 {
	return m.IndexBytes + m.TableBytes + m.PipelineBytes +
		m.VertexStateBytes + m.AdjCacheBytes + m.MsgBufferBytes + m.BitmapBytes
}

// StageAgg is the wall time of one (engine, stage, iteration, partition)
// cell, aggregated over its spans.
type StageAgg struct {
	Engine string `json:"engine"`
	Stage  string `json:"stage"`
	Iter   int    `json:"iter"`
	Part   int    `json:"part"`
	Spans  int64  `json:"spans"`
	NS     int64  `json:"ns"`
}

// FileIO is one file's physical device traffic. It mirrors
// storage.Stats but lives here so the report schema has no storage
// dependency.
type FileIO struct {
	ReadOps    int64 `json:"read_ops,omitempty"`
	ReadBytes  int64 `json:"read_bytes,omitempty"`
	WriteOps   int64 `json:"write_ops,omitempty"`
	WriteBytes int64 `json:"write_bytes,omitempty"`
	Seeks      int64 `json:"seeks,omitempty"`
	CacheHits  int64 `json:"cache_hits,omitempty"`
}

// ReportInfo carries the run identity BuildReport stamps into the
// report.
type ReportInfo struct {
	Engine      string
	Algo        string
	Device      string
	BudgetBytes int64
	Config      map[string]string
}

// BuildReport assembles a RunReport from a finished run's registry
// (counters, gauges, histograms, iteration rows, memory samples,
// heatmap), tracer (span aggregation — a collecting tracer keeps its
// events in memory), and per-file device traffic. Any of reg, tr, and
// files may be nil/empty; the corresponding sections are omitted.
func BuildReport(info ReportInfo, reg *Registry, tr *Tracer, files map[string]FileIO) *RunReport {
	rep := &RunReport{
		Schema:      ReportSchemaVersion,
		Engine:      info.Engine,
		Algo:        info.Algo,
		Device:      info.Device,
		BudgetBytes: info.BudgetBytes,
	}
	if len(info.Config) > 0 {
		rep.Config = info.Config
	}
	if reg != nil {
		reg.mu.Lock()
		if len(reg.counters) > 0 {
			rep.Counters = make(map[string]int64, len(reg.counters))
			for n, c := range reg.counters {
				rep.Counters[n] = c.Value()
			}
		}
		if len(reg.gauges) > 0 {
			rep.Gauges = make(map[string]int64, len(reg.gauges))
			for n, g := range reg.gauges {
				rep.Gauges[n] = g.Value()
			}
		}
		if len(reg.hists) > 0 {
			rep.Histograms = make(map[string]HistogramExport, len(reg.hists))
			for n, h := range reg.hists {
				rep.Histograms[n] = exportHistogram(h)
			}
		}
		if len(reg.iters) > 0 {
			rep.Iterations = make([]IterReport, len(reg.iters))
			for i, row := range reg.iters {
				ir := IterReport{IterStats: row}
				if i < len(reg.iterSnaps) {
					ir.Snapshot = reg.iterSnaps[i]
				}
				rep.Iterations[i] = ir
			}
		}
		if len(reg.mems) > 0 {
			rep.Memory = append([]MemSample(nil), reg.mems...)
		}
		heat := reg.heat
		reg.mu.Unlock()
		rep.Blocks = heat.Cells()
	}
	if tr != nil {
		rep.Stages = AggregateSpans(tr.Events())
	}
	if len(files) > 0 {
		rep.Files = make(map[string]FileIO, len(files))
		for n, io := range files {
			rep.Files[n] = io
		}
	}
	return rep
}

// exportHistogram snapshots one histogram's buckets.
func exportHistogram(h *Histogram) HistogramExport {
	out := HistogramExport{Count: h.Count(), SumNS: int64(h.Sum())}
	for i := 0; i < histBucketCount; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			out.Buckets = append(out.Buckets, HistBucket{UpperNS: int64(1) << uint(i+1), Count: c})
		}
	}
	return out
}

// AggregateSpans folds span events into per-(engine, stage, iteration,
// partition) cells, sorted by (engine, stage, iter, part).
func AggregateSpans(events []SpanEvent) []StageAgg {
	if len(events) == 0 {
		return nil
	}
	type key struct {
		engine, stage string
		iter, part    int
	}
	cells := make(map[key]*StageAgg)
	for _, ev := range events {
		k := key{engine: ev.Engine, stage: ev.Stage, iter: ev.Iter, part: ev.Part}
		c, ok := cells[k]
		if !ok {
			c = &StageAgg{Engine: ev.Engine, Stage: ev.Stage, Iter: ev.Iter, Part: ev.Part}
			cells[k] = c
		}
		c.Spans++
		c.NS += ev.DurNS
	}
	out := make([]StageAgg, 0, len(cells))
	for _, c := range cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Engine != b.Engine {
			return a.Engine < b.Engine
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Iter != b.Iter {
			return a.Iter < b.Iter
		}
		return a.Part < b.Part
	})
	return out
}

// StageTotals sums the report's span-aggregated wall time per stage.
func (r *RunReport) StageTotals() map[string]int64 {
	out := make(map[string]int64)
	for _, s := range r.Stages {
		out[s.Stage] += s.NS
	}
	return out
}

// PartitionTotals sums the report's span-aggregated wall time of one
// stage per partition.
func (r *RunReport) PartitionTotals(stage string) map[int]int64 {
	out := make(map[int]int64)
	for _, s := range r.Stages {
		if s.Stage == stage {
			out[s.Part] += s.NS
		}
	}
	return out
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r *RunReport) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report to path.
func (r *RunReport) WriteFile(path string) error {
	data, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ParseReport decodes one report, validating the schema version.
func ParseReport(data []byte) (*RunReport, error) {
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: parsing run report: %w", err)
	}
	if r.Schema < 1 {
		return nil, fmt.Errorf("obs: not a run report (schema %d)", r.Schema)
	}
	if r.Schema > ReportSchemaVersion {
		return nil, fmt.Errorf("obs: run report schema %d is newer than supported %d", r.Schema, ReportSchemaVersion)
	}
	return &r, nil
}

// ReadReportFile reads and parses the report at path.
func ReadReportFile(path string) (*RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := ParseReport(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
