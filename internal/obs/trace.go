package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer writes one JSONL event per span to its sink. A nil *Tracer is
// valid: Start returns an inert Span and Emit drops the event, so engines
// trace unconditionally and pay only a nil check when tracing is off.
//
// Span schema (one JSON object per line):
//
//	{"ts":<unix-nanos>,"engine":"graphz","stage":"sio","iter":0,"part":2,"dur_ns":12345}
//
// ts is the span's start time; stage is one of the Stage* constants (or
// an engine-specific name); iter and part identify the (iteration,
// partition) the span covers.
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	err   error
	spans atomic.Int64
}

// NewTracer wraps a sink. If w also implements io.Closer, Close closes it
// after flushing.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Span is one in-flight timed region. The zero Span (from a nil Tracer)
// is inert.
type Span struct {
	t      *Tracer
	engine string
	stage  string
	iter   int
	part   int
	start  time.Time
}

// Start opens a span; call End to emit it.
func (t *Tracer) Start(engine, stage string, iter, part int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, engine: engine, stage: stage, iter: iter, part: part, start: time.Now()}
}

// End emits the span with its measured duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Emit(s.engine, s.stage, s.iter, s.part, s.start, time.Since(s.start))
}

// Emit writes one span event with an explicit start and duration; engines
// use it for durations accumulated out-of-band (e.g. prefetch goroutine
// read time).
func (t *Tracer) Emit(engine, stage string, iter, part int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	_, err := fmt.Fprintf(t.w, "{\"ts\":%d,\"engine\":%q,\"stage\":%q,\"iter\":%d,\"part\":%d,\"dur_ns\":%d}\n",
		start.UnixNano(), engine, stage, iter, part, dur.Nanoseconds())
	if err != nil {
		t.err = err
		return
	}
	t.spans.Add(1)
}

// Spans returns the number of events emitted so far.
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// Flush writes buffered events to the sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes and closes the sink (when it is an io.Closer).
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
