package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer writes one JSONL event per span to its sink. A nil *Tracer is
// valid: Start returns an inert Span and Emit drops the event, so engines
// trace unconditionally and pay only a nil check when tracing is off.
//
// Span schema (one JSON object per line):
//
//	{"ts":<unix-nanos>,"engine":"graphz","stage":"sio","iter":0,"part":2,"dur_ns":12345}
//
// ts is the span's start time; stage is one of the Stage* constants (or
// an engine-specific name); iter and part identify the (iteration,
// partition) the span covers.
type Tracer struct {
	mu      sync.Mutex
	w       *bufio.Writer // nil on a collect-only tracer
	c       io.Closer
	err     error
	events  []SpanEvent // populated only on collecting tracers
	collect bool
	spans   atomic.Int64
	dropped atomic.Int64
}

// SpanEvent is one emitted span, as retained by a collecting tracer.
// Fields mirror the JSONL schema.
type SpanEvent struct {
	TS     int64  `json:"ts"`
	Engine string `json:"engine"`
	Stage  string `json:"stage"`
	Iter   int    `json:"iter"`
	Part   int    `json:"part"`
	DurNS  int64  `json:"dur_ns"`
}

// NewTracer wraps a sink. If w also implements io.Closer, Close closes it
// after flushing.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// NewCollectingTracer returns a tracer that retains every span event in
// memory (for post-run aggregation into a RunReport). With a non-nil w
// it also writes the usual JSONL stream; with nil it only collects.
func NewCollectingTracer(w io.Writer) *Tracer {
	t := &Tracer{collect: true}
	if w != nil {
		t.w = bufio.NewWriter(w)
		if c, ok := w.(io.Closer); ok {
			t.c = c
		}
	}
	return t
}

// Events returns a copy of the collected span events (nil unless the
// tracer was built with NewCollectingTracer).
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 {
		return nil
	}
	out := make([]SpanEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Span is one in-flight timed region. The zero Span (from a nil Tracer)
// is inert.
type Span struct {
	t      *Tracer
	engine string
	stage  string
	iter   int
	part   int
	start  time.Time
}

// Start opens a span; call End to emit it.
func (t *Tracer) Start(engine, stage string, iter, part int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, engine: engine, stage: stage, iter: iter, part: part, start: time.Now()}
}

// End emits the span with its measured duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Emit(s.engine, s.stage, s.iter, s.part, s.start, time.Since(s.start))
}

// Emit writes one span event with an explicit start and duration; engines
// use it for durations accumulated out-of-band (e.g. prefetch goroutine
// read time).
func (t *Tracer) Emit(engine, stage string, iter, part int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.collect {
		// In-memory collection never fails; a broken sink must not lose
		// the events a RunReport is built from.
		t.events = append(t.events, SpanEvent{
			TS: start.UnixNano(), Engine: engine, Stage: stage,
			Iter: iter, Part: part, DurNS: dur.Nanoseconds(),
		})
	}
	if t.w == nil {
		t.spans.Add(1)
		return
	}
	if t.err != nil {
		// The sink already failed; count what it is losing so the run
		// can report the damage instead of silently dropping spans.
		t.dropped.Add(1)
		return
	}
	_, err := fmt.Fprintf(t.w, "{\"ts\":%d,\"engine\":%q,\"stage\":%q,\"iter\":%d,\"part\":%d,\"dur_ns\":%d}\n",
		start.UnixNano(), engine, stage, iter, part, dur.Nanoseconds())
	if err != nil {
		t.err = err
		t.dropped.Add(1)
		return
	}
	t.spans.Add(1)
}

// Dropped returns how many span events were lost to a failed sink.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns the number of events emitted so far.
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// Flush writes buffered events to the sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if t.w == nil {
		return nil
	}
	return t.w.Flush()
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes and closes the sink (when it is an io.Closer). A failed
// sink is reported with the number of spans it lost, so callers can
// surface incomplete trace output instead of silently losing spans.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		if n := t.dropped.Load(); n > 0 {
			return fmt.Errorf("%w (%d spans dropped)", err, n)
		}
	}
	return err
}
