package chialgo

import (
	"encoding/binary"
	"math"

	"graphz/internal/graph"
	"graphz/internal/graphchi"
)

// Belief propagation in the GraphChi model: each directed edge carries
// the latest two-state log-message from its source; updates fold in-edge
// messages into a normalized belief and refresh every out-edge message.
// Priors and couplings are the shared hash-derived ones.

type bpMsg struct {
	M0, M1 float32
}

type bpMsgCodec struct{}

func (bpMsgCodec) Size() int { return 8 }

func (bpMsgCodec) Encode(b []byte, m bpMsg) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(m.M0))
	binary.LittleEndian.PutUint32(b[4:], math.Float32bits(m.M1))
}

func (bpMsgCodec) Decode(b []byte) bpMsg {
	return bpMsg{
		M0: math.Float32frombits(binary.LittleEndian.Uint32(b)),
		M1: math.Float32frombits(binary.LittleEndian.Uint32(b[4:])),
	}
}

type bpVal struct {
	B0, B1 float32
}

type bpValCodec struct{}

func (bpValCodec) Size() int { return 8 }

func (bpValCodec) Encode(b []byte, v bpVal) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v.B0))
	binary.LittleEndian.PutUint32(b[4:], math.Float32bits(v.B1))
}

func (bpValCodec) Decode(b []byte) bpVal {
	return bpVal{
		B0: math.Float32frombits(binary.LittleEndian.Uint32(b)),
		B1: math.Float32frombits(binary.LittleEndian.Uint32(b[4:])),
	}
}

func bpPrior(id graph.VertexID) (float32, float32) {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	p := 0.2 + 0.6*float64(x&0xFFFFFF)/float64(1<<24)
	return float32(math.Log(p)), float32(math.Log(1 - p))
}

func logAdd(a, b float32) float32 {
	if a < b {
		a, b = b, a
	}
	return a + float32(math.Log1p(math.Exp(float64(b-a))))
}

type bpProgram struct{}

func (bpProgram) Init(id graph.VertexID, inDeg, outDeg uint32) bpVal {
	p0, p1 := bpPrior(id)
	return bpVal{B0: p0, B1: p1}
}

func (bpProgram) InitEdge(src, dst graph.VertexID) bpMsg { return bpMsg{} }

func (bpProgram) Update(ctx *graphchi.Context, id graph.VertexID, v *bpVal, in, out []graphchi.EdgeRef[bpMsg]) {
	ctx.MarkActive() // fixed-iteration algorithm; MaxIterations stops it
	if ctx.Iteration() > 0 {
		p0, p1 := bpPrior(id)
		n0, n1 := p0, p1
		for _, e := range in {
			n0 += e.Val.M0
			n1 += e.Val.M1
		}
		// Damped update (lambda = 0.5), as in the other engines.
		z := logAdd(n0, n1)
		b0 := 0.5*(n0-z) + 0.5*v.B0
		b1 := 0.5*(n1-z) + 0.5*v.B1
		z = logAdd(b0, b1)
		v.B0, v.B1 = b0-z, b1-z
	}
	for _, e := range out {
		c := graph.EdgeCoupling(id, e.Neighbor)
		same := float32(math.Log(c))
		diff := float32(math.Log(1 - c))
		m0 := logAdd(v.B0+same, v.B1+diff)
		m1 := logAdd(v.B0+diff, v.B1+same)
		z := logAdd(m0, m1)
		e.Val.M0, e.Val.M1 = m0-z, m1-z
	}
}

// BeliefPropagation runs loopy BP for the given iterations, returning
// each vertex's marginal probability of state 1.
func BeliefPropagation(sh *graphchi.Shards, opts graphchi.Options, iterations int) (graphchi.Result, []float32, error) {
	opts.MaxIterations = iterations
	res, vals, err := run[bpVal, bpMsg](sh, bpProgram{}, bpValCodec{}, bpMsgCodec{}, opts)
	if err != nil {
		return graphchi.Result{}, nil, err
	}
	marg := make([]float32, len(vals))
	for i, v := range vals {
		m := v.B0
		if v.B1 > m {
			m = v.B1
		}
		e0 := math.Exp(float64(v.B0 - m))
		e1 := math.Exp(float64(v.B1 - m))
		marg[i] = float32(e1 / (e0 + e1))
	}
	return res, marg, nil
}
