package chialgo

import (
	"graphz/internal/graph"
	"graphz/internal/graphchi"
)

// prProgram carries votes on edge values: each update folds the in-edge
// votes into a damped rank and writes rank/outdeg onto every out-edge.
type prProgram struct {
	damping float32
}

func (prProgram) Init(id graph.VertexID, inDeg, outDeg uint32) float32 { return 1 }

func (prProgram) InitEdge(src, dst graph.VertexID) float32 { return 0 }

func (p prProgram) Update(ctx *graphchi.Context, id graph.VertexID, v *float32, in, out []graphchi.EdgeRef[float32]) {
	// PageRank runs for a fixed iteration count (MaxIterations); stay
	// active so the engine's quiescence check never fires early.
	ctx.MarkActive()
	if ctx.Iteration() > 0 {
		var votes float32
		for _, e := range in {
			votes += *e.Val
		}
		*v = (1 - p.damping) + p.damping*votes
	}
	if len(out) == 0 {
		return
	}
	share := *v / float32(len(out))
	for _, e := range out {
		*e.Val = share
	}
}

// PageRank runs damped PageRank for the given iterations, returning ranks
// by natural vertex ID.
func PageRank(sh *graphchi.Shards, opts graphchi.Options, iterations int, damping float32) (graphchi.Result, []float32, error) {
	opts.MaxIterations = iterations
	return run[float32, float32](sh, prProgram{damping: damping}, graph.Float32Codec{}, graph.Float32Codec{}, opts)
}
