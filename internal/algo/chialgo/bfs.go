package chialgo

import (
	"graphz/internal/graph"
	"graphz/internal/graphchi"
)

// Unreached marks a vertex BFS has not visited.
const Unreached = uint32(0xFFFFFFFF)

// bfsProgram proposes levels through edge values: an out-edge holds
// src.level+1 once src is reached, and each update takes the minimum of
// its in-edge proposals.
type bfsProgram struct {
	source graph.VertexID
}

func (p bfsProgram) Init(id graph.VertexID, inDeg, outDeg uint32) uint32 {
	if id == p.source {
		return 0
	}
	return Unreached
}

func (bfsProgram) InitEdge(src, dst graph.VertexID) uint32 { return Unreached }

func (p bfsProgram) Update(ctx *graphchi.Context, id graph.VertexID, v *uint32, in, out []graphchi.EdgeRef[uint32]) {
	newLevel := *v
	for _, e := range in {
		if *e.Val < newLevel {
			newLevel = *e.Val
		}
	}
	changed := newLevel < *v
	*v = newLevel
	if changed || (ctx.Iteration() == 0 && id == p.source) {
		ctx.MarkActive()
		for _, e := range out {
			*e.Val = *v + 1
		}
	}
}

// BFS computes hop counts from source along out-edges until quiescent.
func BFS(sh *graphchi.Shards, opts graphchi.Options, source graph.VertexID) (graphchi.Result, []uint32, error) {
	return run[uint32, uint32](sh, bfsProgram{source: source}, graph.Uint32Codec{}, graph.Uint32Codec{}, opts)
}
