package chialgo

import (
	"math"
	"testing"

	"graphz/internal/algo/plain"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/graphchi"
	"graphz/internal/storage"
)

// shard builds GraphChi shards for edges on a fresh null device.
func shard(t *testing.T, edges []graph.Edge, evalSize, nShards int) *graphchi.Shards {
	t.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	sh, err := graphchi.Shard(graphchi.ShardConfig{Dev: dev, EdgeValSize: evalSize, NumShards: nShards}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func opts() graphchi.Options { return graphchi.Options{MemoryBudget: 64 << 20} }

func TestPageRankMatchesPlainFixpoint(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 111)
	n := int(graph.MaxID(edges)) + 1
	want := plain.PageRank(plain.BuildAdjacency(n, edges), 100, 0.85)
	for _, shards := range []int{1, 4} {
		sh := shard(t, edges, 4, shards)
		_, ranks, err := PageRank(sh, opts(), 50, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if math.Abs(float64(ranks[v])-want[v]) > 1e-3*(1+want[v]) {
				t.Fatalf("shards=%d: rank[%d] = %v, want %v", shards, v, ranks[v], want[v])
			}
		}
	}
}

func TestBFSMatchesPlain(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 112)
	n := int(graph.MaxID(edges)) + 1
	adj := plain.BuildAdjacency(n, edges)
	src := graph.VertexID(0)
	want := plain.BFS(adj, src)
	for _, shards := range []int{1, 3} {
		sh := shard(t, edges, 4, shards)
		_, levels, err := BFS(sh, opts(), src)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if levels[v] != want[v] {
				t.Fatalf("shards=%d: level[%d] = %d, want %d", shards, v, levels[v], want[v])
			}
		}
	}
}

func TestCCMatchesPlain(t *testing.T) {
	base := gen.RMAT(7, 600, gen.NaturalRMAT, 113)
	var edges []graph.Edge
	for _, e := range base {
		edges = append(edges, e, graph.Edge{Src: e.Dst, Dst: e.Src})
	}
	n := int(graph.MaxID(edges)) + 1
	want := plain.ConnectedComponents(plain.BuildAdjacency(n, edges))
	sh := shard(t, edges, 4, 3)
	res, labels, err := ConnectedComponents(sh, opts())
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
	if res.Iterations == 0 {
		t.Error("no iterations")
	}
}

func TestSSSPMatchesPlain(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 114)
	n := int(graph.MaxID(edges)) + 1
	src := graph.VertexID(1)
	want := plain.SSSP(plain.BuildAdjacency(n, edges), src)
	sh := shard(t, edges, 4, 3)
	_, dists, err := SSSP(sh, opts(), src)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		wv, gv := float64(want[v]), float64(dists[v])
		if math.IsInf(wv, 1) != math.IsInf(gv, 1) || (!math.IsInf(wv, 1) && math.Abs(gv-wv) > 1e-4) {
			t.Fatalf("dist[%d] = %v, want %v", v, gv, wv)
		}
	}
}

func TestBPMarginalsSane(t *testing.T) {
	edges := gen.RMAT(7, 700, gen.NaturalRMAT, 115)
	sh := shard(t, edges, 8, 2)
	_, marg, err := BeliefPropagation(sh, opts(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range marg {
		if !(p >= 0 && p <= 1) || math.IsNaN(float64(p)) {
			t.Fatalf("marginal[%d] = %v", i, p)
		}
	}
}

func TestRWDeterministicAndBounded(t *testing.T) {
	edges := gen.RMAT(7, 700, gen.NaturalRMAT, 116)
	sh := shard(t, edges, 4, 2)
	_, v1, err := RandomWalk(sh, opts(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	sh2 := shard(t, edges, 4, 2)
	_, v2, err := RandomWalk(sh2, opts(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("random walk not deterministic")
		}
		sum += int64(v1[i])
	}
	n := int64(sh.NumVertices)
	if sum < n*2 || sum > n*2*5*2 {
		t.Errorf("total visits %d outside sane bounds", sum)
	}
}
