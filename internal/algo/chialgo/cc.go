package chialgo

import (
	"graphz/internal/graph"
	"graphz/internal/graphchi"
)

// ccProgram propagates minimum labels through edge values. Symmetrize the
// graph for weakly-connected components.
type ccProgram struct{}

func (ccProgram) Init(id graph.VertexID, inDeg, outDeg uint32) uint32 { return uint32(id) }

func (ccProgram) InitEdge(src, dst graph.VertexID) uint32 { return 0xFFFFFFFF }

func (ccProgram) Update(ctx *graphchi.Context, id graph.VertexID, v *uint32, in, out []graphchi.EdgeRef[uint32]) {
	newLabel := *v
	for _, e := range in {
		if *e.Val < newLabel {
			newLabel = *e.Val
		}
	}
	changed := newLabel < *v
	*v = newLabel
	if changed || ctx.Iteration() == 0 {
		if changed {
			ctx.MarkActive()
		}
		for _, e := range out {
			*e.Val = *v
		}
	}
}

// ConnectedComponents labels each vertex with the smallest ID that
// reaches it, running until quiescent.
func ConnectedComponents(sh *graphchi.Shards, opts graphchi.Options) (graphchi.Result, []uint32, error) {
	return run[uint32, uint32](sh, ccProgram{}, graph.Uint32Codec{}, graph.Uint32Codec{}, opts)
}
