package chialgo

import (
	"math"

	"graphz/internal/graph"
	"graphz/internal/graphchi"
)

// ssspProgram relaxes hash-weighted edges through edge values: an
// out-edge holds src.dist + w(src,dst) once src is settled.
type ssspProgram struct {
	source graph.VertexID
}

var inf32 = float32(math.Inf(1))

func (p ssspProgram) Init(id graph.VertexID, inDeg, outDeg uint32) float32 {
	if id == p.source {
		return 0
	}
	return inf32
}

func (ssspProgram) InitEdge(src, dst graph.VertexID) float32 { return inf32 }

func (p ssspProgram) Update(ctx *graphchi.Context, id graph.VertexID, v *float32, in, out []graphchi.EdgeRef[float32]) {
	newDist := *v
	for _, e := range in {
		if *e.Val < newDist {
			newDist = *e.Val
		}
	}
	changed := newDist < *v
	*v = newDist
	if changed || (ctx.Iteration() == 0 && id == p.source) {
		ctx.MarkActive()
		for _, e := range out {
			*e.Val = *v + graph.EdgeWeight(id, e.Neighbor)
		}
	}
}

// SSSP computes shortest-path distances from source with hash-derived
// weights, running until quiescent.
func SSSP(sh *graphchi.Shards, opts graphchi.Options, source graph.VertexID) (graphchi.Result, []float32, error) {
	return run[float32, float32](sh, ssspProgram{source: source}, graph.Float32Codec{}, graph.Float32Codec{}, opts)
}
