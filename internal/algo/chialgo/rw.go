package chialgo

import (
	"encoding/binary"

	"graphz/internal/graph"
	"graphz/internal/graphchi"
)

// Random walk in the GraphChi model: each out-edge value carries the
// walker count moving along it this step; updates gather arriving
// walkers from in-edges, count visits, and redistribute (even split,
// hash-rotated remainder, dead-end walkers rest in the vertex).

type rwVal struct {
	Resting uint32 // walkers stuck at a dead end
	Visits  uint32
	Started bool // initial walkers already injected
}

type rwValCodec struct{}

func (rwValCodec) Size() int { return 12 }

func (rwValCodec) Encode(b []byte, v rwVal) {
	binary.LittleEndian.PutUint32(b, v.Resting)
	binary.LittleEndian.PutUint32(b[4:], v.Visits)
	var s uint32
	if v.Started {
		s = 1
	}
	binary.LittleEndian.PutUint32(b[8:], s)
}

func (rwValCodec) Decode(b []byte) rwVal {
	return rwVal{
		Resting: binary.LittleEndian.Uint32(b),
		Visits:  binary.LittleEndian.Uint32(b[4:]),
		Started: binary.LittleEndian.Uint32(b[8:]) == 1,
	}
}

func rwHash(id graph.VertexID, iter int) uint64 {
	x := uint64(id)<<32 ^ uint64(uint32(iter))
	x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
	x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

type rwProgram struct {
	perVertex uint32
}

func (rwProgram) Init(id graph.VertexID, inDeg, outDeg uint32) rwVal { return rwVal{} }

func (rwProgram) InitEdge(src, dst graph.VertexID) uint32 { return 0 }

func (p rwProgram) Update(ctx *graphchi.Context, id graph.VertexID, v *rwVal, in, out []graphchi.EdgeRef[uint32]) {
	ctx.MarkActive() // fixed-iteration algorithm; MaxIterations stops it
	walkers := v.Resting
	v.Resting = 0
	for _, e := range in {
		walkers += *e.Val
	}
	if !v.Started {
		walkers += p.perVertex
		v.Started = true
	}
	if walkers == 0 {
		for _, e := range out {
			*e.Val = 0
		}
		return
	}
	v.Visits += walkers
	ndeg := uint32(len(out))
	if ndeg == 0 {
		v.Resting = walkers
		return
	}
	base := walkers / ndeg
	extra := walkers % ndeg
	start := uint32(rwHash(id, ctx.Iteration()) % uint64(ndeg))
	for i, e := range out {
		n := base
		if d := (uint32(i) + ndeg - start) % ndeg; d < extra {
			n++
		}
		*e.Val = n
	}
}

// RandomWalk runs the given number of steps with walkersPerVertex walkers
// starting everywhere, returning per-vertex visit counts.
func RandomWalk(sh *graphchi.Shards, opts graphchi.Options, iterations int, walkersPerVertex uint32) (graphchi.Result, []uint32, error) {
	opts.MaxIterations = iterations
	res, vals, err := run[rwVal, uint32](sh, rwProgram{perVertex: walkersPerVertex}, rwValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		return graphchi.Result{}, nil, err
	}
	visits := make([]uint32, len(vals))
	for i, v := range vals {
		visits[i] = v.Visits
	}
	return res, visits, nil
}
