// Package chialgo implements the six benchmark algorithms in the
// GraphChi-style model (vertex values plus mutable edge values; paper
// Section IV-E shows the correspondence to GraphZ programs). One file per
// algorithm for the LOC comparisons of Tables I and IX.
package chialgo

import (
	"graphz/internal/graph"
	"graphz/internal/graphchi"
)

// run wires a program into the GraphChi engine and executes it.
func run[V, E any](sh *graphchi.Shards, prog graphchi.Program[V, E], vc graph.Codec[V], ec graph.Codec[E], opts graphchi.Options) (graphchi.Result, []V, error) {
	eng, err := graphchi.New[V, E](sh, prog, vc, ec, opts)
	if err != nil {
		return graphchi.Result{}, nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return graphchi.Result{}, nil, err
	}
	vals, err := eng.Values()
	if err != nil {
		return graphchi.Result{}, nil, err
	}
	eng.Cleanup()
	return res, vals, nil
}
