package plain

import "graphz/internal/graph"

// UnreachedLevel marks vertices BFS never visits.
const UnreachedLevel = uint32(0xFFFFFFFF)

// BFS returns hop counts from source along out-edges.
func BFS(a *Adjacency, source graph.VertexID) []uint32 {
	levels := make([]uint32, a.N)
	for i := range levels {
		levels[i] = UnreachedLevel
	}
	if int(source) >= a.N {
		return levels
	}
	levels[source] = 0
	queue := []graph.VertexID{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		next := levels[u] + 1
		for _, v := range a.Out[u] {
			if next < levels[v] {
				levels[v] = next
				queue = append(queue, v)
			}
		}
	}
	return levels
}
