package plain

import (
	"math"

	"graphz/internal/graph"
)

// SSSP computes shortest-path distances from source with the shared
// hash-derived edge weights (graph.EdgeWeight), Bellman-Ford style.
func SSSP(a *Adjacency, source graph.VertexID) []float32 {
	inf := float32(math.Inf(1))
	dist := make([]float32, a.N)
	for i := range dist {
		dist[i] = inf
	}
	if int(source) >= a.N {
		return dist
	}
	dist[source] = 0
	for changed := true; changed; {
		changed = false
		for u, out := range a.Out {
			du := dist[u]
			if math.IsInf(float64(du), 1) {
				continue
			}
			for _, v := range out {
				if d := du + graph.EdgeWeight(graph.VertexID(u), v); d < dist[v] {
					dist[v] = d
					changed = true
				}
			}
		}
	}
	return dist
}
