package plain

import (
	"math"

	"graphz/internal/graph"
)

// BeliefPropagation runs synchronous loopy BP on the two-state pairwise
// MRF the engines use (hash-derived priors and couplings), returning each
// vertex's marginal probability of state 1.
func BeliefPropagation(a *Adjacency, iterations int) []float32 {
	prior0 := make([]float64, a.N)
	prior1 := make([]float64, a.N)
	for i := range prior0 {
		x := uint64(i) + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		p := 0.2 + 0.6*float64(x&0xFFFFFF)/float64(1<<24)
		prior0[i] = math.Log(p)
		prior1[i] = math.Log(1 - p)
	}
	logAdd := func(x, y float64) float64 {
		if x < y {
			x, y = y, x
		}
		return x + math.Log1p(math.Exp(y-x))
	}
	b0 := append([]float64(nil), prior0...)
	b1 := append([]float64(nil), prior1...)
	acc0 := make([]float64, a.N)
	acc1 := make([]float64, a.N)
	for it := 0; it < iterations; it++ {
		for i := range acc0 {
			acc0[i], acc1[i] = 0, 0
		}
		for u, out := range a.Out {
			for _, v := range out {
				c := graph.EdgeCoupling(graph.VertexID(u), v)
				same, diff := math.Log(c), math.Log(1-c)
				m0 := logAdd(b0[u]+same, b1[u]+diff)
				m1 := logAdd(b0[u]+diff, b1[u]+same)
				z := logAdd(m0, m1)
				acc0[v] += m0 - z
				acc1[v] += m1 - z
			}
		}
		for i := range b0 {
			// Damped update (lambda = 0.5): geometric mixing with
			// the previous belief prevents the period-2
			// oscillation parallel loopy BP is prone to, so every
			// schedule converges to the same fixpoint.
			n0 := prior0[i] + acc0[i]
			n1 := prior1[i] + acc1[i]
			z := logAdd(n0, n1)
			b0[i] = 0.5*(n0-z) + 0.5*b0[i]
			b1[i] = 0.5*(n1-z) + 0.5*b1[i]
			z = logAdd(b0[i], b1[i])
			b0[i] -= z
			b1[i] -= z
		}
	}
	out := make([]float32, a.N)
	for i := range out {
		out[i] = float32(math.Exp(b1[i]))
	}
	return out
}
