package plain

import (
	"math"
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
)

func lineGraph(n int) *Adjacency {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	return BuildAdjacency(n, edges)
}

func TestBFSLine(t *testing.T) {
	a := lineGraph(5)
	levels := BFS(a, 0)
	for i := 0; i < 5; i++ {
		if levels[i] != uint32(i) {
			t.Errorf("level[%d] = %d, want %d", i, levels[i], i)
		}
	}
	levels = BFS(a, 3)
	if levels[0] != UnreachedLevel || levels[4] != 1 {
		t.Errorf("BFS from middle: %v", levels)
	}
	// Out-of-range source returns all-unreached.
	levels = BFS(a, 99)
	for _, l := range levels {
		if l != UnreachedLevel {
			t.Error("out-of-range source should reach nothing")
		}
	}
}

func TestCCTwoComponents(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2}, {Src: 3, Dst: 4}, {Src: 4, Dst: 3},
	}
	labels := ConnectedComponents(BuildAdjacency(5, edges))
	if labels[0] != 0 || labels[1] != 0 {
		t.Errorf("component A labels: %v", labels)
	}
	if labels[2] != 2 || labels[3] != 2 || labels[4] != 2 {
		t.Errorf("component B labels: %v", labels)
	}
}

func TestPageRankLine(t *testing.T) {
	a := lineGraph(3)
	ranks := PageRank(a, 50, 0.85)
	// Vertex 0 has no in-edges: rank = 1-d = 0.15.
	if math.Abs(ranks[0]-0.15) > 1e-9 {
		t.Errorf("rank[0] = %v, want 0.15", ranks[0])
	}
	// rank[1] = 0.15 + 0.85*rank[0] (single in-edge from deg-1 vertex).
	if math.Abs(ranks[1]-(0.15+0.85*0.15)) > 1e-9 {
		t.Errorf("rank[1] = %v", ranks[1])
	}
	if ranks[2] <= ranks[1] || ranks[1] <= ranks[0] {
		t.Errorf("line graph ranks should increase: %v", ranks)
	}
}

func TestSSSPRelaxed(t *testing.T) {
	edges := gen.ErdosRenyi(60, 400, 5)
	a := BuildAdjacency(60, edges)
	dist := SSSP(a, 0)
	if dist[0] != 0 {
		t.Errorf("dist[source] = %v", dist[0])
	}
	for _, e := range edges {
		du, dv := float64(dist[e.Src]), float64(dist[e.Dst])
		if math.IsInf(du, 1) {
			continue
		}
		if dv > du+float64(graph.EdgeWeight(e.Src, e.Dst))+1e-6 {
			t.Fatalf("edge %v not relaxed", e)
		}
	}
}

func TestBPMarginalsInRange(t *testing.T) {
	edges := gen.RMAT(7, 600, gen.NaturalRMAT, 6)
	a := BuildAdjacency(128, edges)
	m := BeliefPropagation(a, 8)
	for i, p := range m {
		if !(p >= 0 && p <= 1) {
			t.Fatalf("marginal[%d] = %v", i, p)
		}
	}
}

func TestRandomWalkConservedSync(t *testing.T) {
	edges := gen.RMAT(7, 600, gen.NaturalRMAT, 8)
	a := BuildAdjacency(128, edges)
	// Synchronous semantics conserve walkers exactly each step; check
	// via visits of step counts: total visits per iteration == total
	// walkers.
	visits := RandomWalk(a, 6, 3)
	var sum int64
	for _, v := range visits {
		sum += int64(v)
	}
	if want := int64(128) * 3 * 6; sum != want {
		t.Errorf("total visits = %d, want %d", sum, want)
	}
}
