package plain

// ConnectedComponents propagates minimum labels along out-edges to a
// fixpoint. On a symmetrized graph the labels identify weakly-connected
// components.
func ConnectedComponents(a *Adjacency) []uint32 {
	labels := make([]uint32, a.N)
	for i := range labels {
		labels[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		for u, out := range a.Out {
			lu := labels[u]
			for _, v := range out {
				if lu < labels[v] {
					labels[v] = lu
					changed = true
				}
			}
		}
	}
	return labels
}
