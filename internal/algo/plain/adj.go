// Package plain contains direct in-memory implementations of the six
// benchmark algorithms with no framework support — the role the
// hand-written C programs play in the paper's Tables I and II, and the
// correctness references for the out-of-core engines. One file per
// algorithm, so LOC counts reflect what a programmer would write.
package plain

import "graphz/internal/graph"

// Adjacency is an in-memory out-adjacency list over a dense ID space.
type Adjacency struct {
	N   int
	Out [][]graph.VertexID
}

// BuildAdjacency assembles adjacency lists for n vertices.
func BuildAdjacency(n int, edges []graph.Edge) *Adjacency {
	out := make([][]graph.VertexID, n)
	for _, e := range edges {
		out[e.Src] = append(out[e.Src], e.Dst)
	}
	return &Adjacency{N: n, Out: out}
}
