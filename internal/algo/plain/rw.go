package plain

// RandomWalk spreads walkersPerVertex walkers from every vertex for the
// given number of steps (even split, hash-rotated remainder, dead-end
// walkers rest), returning per-vertex visit counts. It mirrors the
// engines' deterministic aggregation so totals are comparable.
func RandomWalk(a *Adjacency, iterations int, walkersPerVertex uint32) []uint32 {
	cur := make([]uint32, a.N)
	next := make([]uint32, a.N)
	visits := make([]uint32, a.N)
	for i := range cur {
		cur[i] = walkersPerVertex
	}
	hash := func(id uint32, iter int) uint64 {
		x := uint64(id)<<32 ^ uint64(uint32(iter))
		x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
		x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53
		return x ^ (x >> 33)
	}
	for it := 0; it < iterations; it++ {
		for i := range next {
			next[i] = 0
		}
		for u, w := range cur {
			if w == 0 {
				continue
			}
			visits[u] += w
			out := a.Out[u]
			ndeg := uint32(len(out))
			if ndeg == 0 {
				next[u] += w
				continue
			}
			base := w / ndeg
			extra := w % ndeg
			start := uint32(hash(uint32(u), it) % uint64(ndeg))
			for i, v := range out {
				n := base
				if d := (uint32(i) + ndeg - start) % ndeg; d < extra {
					n++
				}
				next[v] += n
			}
		}
		cur, next = next, cur
	}
	return visits
}
