package plain

// PageRank runs synchronous damped power iteration: rank'(v) = (1-d) +
// d * sum over in-edges (u,v) of rank(u)/outdeg(u). Ranks start at 1 and
// are unnormalized, matching the engines' formulation.
func PageRank(a *Adjacency, iterations int, damping float64) []float64 {
	rank := make([]float64, a.N)
	for i := range rank {
		rank[i] = 1
	}
	votes := make([]float64, a.N)
	for it := 0; it < iterations; it++ {
		for i := range votes {
			votes[i] = 0
		}
		for u, out := range a.Out {
			if len(out) == 0 {
				continue
			}
			share := rank[u] / float64(len(out))
			for _, v := range out {
				votes[v] += share
			}
		}
		for i := range rank {
			rank[i] = (1 - damping) + damping*votes[i]
		}
	}
	return rank
}
