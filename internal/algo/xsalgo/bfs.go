package xsalgo

import (
	"encoding/binary"

	"graphz/internal/graph"
	"graphz/internal/xstream"
)

// Unreached marks a vertex BFS has not visited.
const Unreached = uint32(0xFFFFFFFF)

// bfsVal carries the level and the iteration at which it should be
// scattered (BSP needs the stamp to ship each improvement exactly once).
type bfsVal struct {
	Level  uint32
	ShipAt int32
}

type bfsValCodec struct{}

func (bfsValCodec) Size() int { return 8 }

func (bfsValCodec) Encode(b []byte, v bfsVal) {
	binary.LittleEndian.PutUint32(b, v.Level)
	binary.LittleEndian.PutUint32(b[4:], uint32(v.ShipAt))
}

func (bfsValCodec) Decode(b []byte) bfsVal {
	return bfsVal{
		Level:  binary.LittleEndian.Uint32(b),
		ShipAt: int32(binary.LittleEndian.Uint32(b[4:])),
	}
}

type bfsProgram struct {
	source graph.VertexID
}

func (p bfsProgram) Init(id graph.VertexID, outDeg uint32) bfsVal {
	if id == p.source {
		return bfsVal{Level: 0, ShipAt: 0}
	}
	return bfsVal{Level: Unreached, ShipAt: -1}
}

func (bfsProgram) Scatter(iter int, src graph.VertexID, v *bfsVal, dst graph.VertexID) (uint32, bool) {
	if v.ShipAt != int32(iter) {
		return 0, false
	}
	return v.Level + 1, true
}

func (bfsProgram) Gather(iter int, dst graph.VertexID, v *bfsVal, u uint32) {
	if u < v.Level {
		v.Level = u
		v.ShipAt = int32(iter) + 1
	}
}

func (bfsProgram) PostGather(iter int, id graph.VertexID, v *bfsVal) bool {
	return v.ShipAt == int32(iter)+1
}

// BFS computes hop counts from source along out-edges until quiescent.
func BFS(pt *xstream.Partitioned, opts xstream.Options, source graph.VertexID) (xstream.Result, []uint32, error) {
	res, vals, err := run[bfsVal, uint32](pt, bfsProgram{source: source}, bfsValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		return xstream.Result{}, nil, err
	}
	levels := make([]uint32, len(vals))
	for i, v := range vals {
		levels[i] = v.Level
	}
	return res, levels, nil
}
