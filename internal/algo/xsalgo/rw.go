package xsalgo

import (
	"encoding/binary"

	"graphz/internal/graph"
	"graphz/internal/xstream"
)

// Random walk in the edge-centric model. Scatter has no edge ordinal, so
// the vertex state carries a cursor that counts this iteration's scatter
// calls for the source — partition edge files stream in a fixed order,
// making the cursor a stable per-edge ordinal. Walkers split evenly with
// a hash-rotated remainder; dead-end walkers rest in place. The BSP
// barrier means walkers are conserved exactly every iteration.

type rwVal struct {
	Walkers  uint32
	Incoming uint32
	Visits   uint32
	Cursor   uint32
	Deg      uint32
}

type rwValCodec struct{}

func (rwValCodec) Size() int { return 20 }

func (rwValCodec) Encode(b []byte, v rwVal) {
	binary.LittleEndian.PutUint32(b, v.Walkers)
	binary.LittleEndian.PutUint32(b[4:], v.Incoming)
	binary.LittleEndian.PutUint32(b[8:], v.Visits)
	binary.LittleEndian.PutUint32(b[12:], v.Cursor)
	binary.LittleEndian.PutUint32(b[16:], v.Deg)
}

func (rwValCodec) Decode(b []byte) rwVal {
	return rwVal{
		Walkers:  binary.LittleEndian.Uint32(b),
		Incoming: binary.LittleEndian.Uint32(b[4:]),
		Visits:   binary.LittleEndian.Uint32(b[8:]),
		Cursor:   binary.LittleEndian.Uint32(b[12:]),
		Deg:      binary.LittleEndian.Uint32(b[16:]),
	}
}

func rwHash(id graph.VertexID, iter int) uint64 {
	x := uint64(id)<<32 ^ uint64(uint32(iter))
	x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
	x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

type rwProgram struct {
	perVertex uint32
}

func (p rwProgram) Init(id graph.VertexID, outDeg uint32) rwVal {
	return rwVal{Walkers: p.perVertex, Deg: outDeg}
}

func (rwProgram) Scatter(iter int, src graph.VertexID, v *rwVal, dst graph.VertexID) (uint32, bool) {
	ordinal := v.Cursor
	v.Cursor++
	if v.Walkers == 0 {
		return 0, false
	}
	base := v.Walkers / v.Deg
	extra := v.Walkers % v.Deg
	start := uint32(rwHash(src, iter) % uint64(v.Deg))
	n := base
	if d := (ordinal + v.Deg - start) % v.Deg; d < extra {
		n++
	}
	if n == 0 {
		return 0, false
	}
	return n, true
}

func (rwProgram) Gather(iter int, dst graph.VertexID, v *rwVal, u uint32) {
	v.Incoming += u
}

func (rwProgram) PostGather(iter int, id graph.VertexID, v *rwVal) bool {
	if v.Walkers > 0 {
		v.Visits += v.Walkers
	}
	next := v.Incoming
	if v.Deg == 0 {
		// Dead end: resident walkers rest.
		next += v.Walkers
	}
	v.Walkers = next
	v.Incoming = 0
	v.Cursor = 0
	return v.Walkers > 0
}

// RandomWalk runs the given number of steps with walkersPerVertex walkers
// starting everywhere, returning per-vertex visit counts.
func RandomWalk(pt *xstream.Partitioned, opts xstream.Options, iterations int, walkersPerVertex uint32) (xstream.Result, []uint32, error) {
	opts.MaxIterations = iterations
	res, vals, err := run[rwVal, uint32](pt, rwProgram{perVertex: walkersPerVertex}, rwValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		return xstream.Result{}, nil, err
	}
	visits := make([]uint32, len(vals))
	for i, v := range vals {
		visits[i] = v.Visits
	}
	return res, visits, nil
}

// RandomWalkFinalWalkers returns where walkers sit after the last step,
// for conservation checks.
func RandomWalkFinalWalkers(pt *xstream.Partitioned, opts xstream.Options, iterations int, walkersPerVertex uint32) ([]uint32, error) {
	opts.MaxIterations = iterations
	_, vals, err := run[rwVal, uint32](pt, rwProgram{perVertex: walkersPerVertex}, rwValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, len(vals))
	for i, v := range vals {
		out[i] = v.Walkers
	}
	return out, nil
}
