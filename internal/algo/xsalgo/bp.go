package xsalgo

import (
	"encoding/binary"
	"math"

	"graphz/internal/graph"
	"graphz/internal/xstream"
)

// Belief propagation in the edge-centric model: scatter recomputes the
// outgoing two-state log-message per edge from the source's belief;
// gather accumulates; PostGather folds accumulators into normalized
// beliefs. Priors and couplings are the shared hash-derived ones.

type bpVal struct {
	B0, B1 float32
	A0, A1 float32
}

type bpValCodec struct{}

func (bpValCodec) Size() int { return 16 }

func (bpValCodec) Encode(b []byte, v bpVal) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v.B0))
	binary.LittleEndian.PutUint32(b[4:], math.Float32bits(v.B1))
	binary.LittleEndian.PutUint32(b[8:], math.Float32bits(v.A0))
	binary.LittleEndian.PutUint32(b[12:], math.Float32bits(v.A1))
}

func (bpValCodec) Decode(b []byte) bpVal {
	return bpVal{
		B0: math.Float32frombits(binary.LittleEndian.Uint32(b)),
		B1: math.Float32frombits(binary.LittleEndian.Uint32(b[4:])),
		A0: math.Float32frombits(binary.LittleEndian.Uint32(b[8:])),
		A1: math.Float32frombits(binary.LittleEndian.Uint32(b[12:])),
	}
}

type bpMsg struct {
	M0, M1 float32
}

type bpMsgCodec struct{}

func (bpMsgCodec) Size() int { return 8 }

func (bpMsgCodec) Encode(b []byte, m bpMsg) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(m.M0))
	binary.LittleEndian.PutUint32(b[4:], math.Float32bits(m.M1))
}

func (bpMsgCodec) Decode(b []byte) bpMsg {
	return bpMsg{
		M0: math.Float32frombits(binary.LittleEndian.Uint32(b)),
		M1: math.Float32frombits(binary.LittleEndian.Uint32(b[4:])),
	}
}

func bpPrior(id graph.VertexID) (float32, float32) {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	p := 0.2 + 0.6*float64(x&0xFFFFFF)/float64(1<<24)
	return float32(math.Log(p)), float32(math.Log(1 - p))
}

func logAdd(a, b float32) float32 {
	if a < b {
		a, b = b, a
	}
	return a + float32(math.Log1p(math.Exp(float64(b-a))))
}

type bpProgram struct{}

func (bpProgram) Init(id graph.VertexID, outDeg uint32) bpVal {
	p0, p1 := bpPrior(id)
	return bpVal{B0: p0, B1: p1}
}

func (bpProgram) Scatter(iter int, src graph.VertexID, v *bpVal, dst graph.VertexID) (bpMsg, bool) {
	c := graph.EdgeCoupling(src, dst)
	same := float32(math.Log(c))
	diff := float32(math.Log(1 - c))
	m := bpMsg{
		M0: logAdd(v.B0+same, v.B1+diff),
		M1: logAdd(v.B0+diff, v.B1+same),
	}
	z := logAdd(m.M0, m.M1)
	m.M0 -= z
	m.M1 -= z
	return m, true
}

func (bpProgram) Gather(iter int, dst graph.VertexID, v *bpVal, u bpMsg) {
	v.A0 += u.M0
	v.A1 += u.M1
}

func (bpProgram) PostGather(iter int, id graph.VertexID, v *bpVal) bool {
	p0, p1 := bpPrior(id)
	// Damped update (lambda = 0.5), as in the other engines.
	n0 := p0 + v.A0
	n1 := p1 + v.A1
	z := logAdd(n0, n1)
	v.B0 = 0.5*(n0-z) + 0.5*v.B0
	v.B1 = 0.5*(n1-z) + 0.5*v.B1
	z = logAdd(v.B0, v.B1)
	v.B0 -= z
	v.B1 -= z
	v.A0, v.A1 = 0, 0
	return true
}

// BeliefPropagation runs synchronous loopy BP for the given iterations,
// returning each vertex's marginal probability of state 1.
func BeliefPropagation(pt *xstream.Partitioned, opts xstream.Options, iterations int) (xstream.Result, []float32, error) {
	opts.MaxIterations = iterations
	res, vals, err := run[bpVal, bpMsg](pt, bpProgram{}, bpValCodec{}, bpMsgCodec{}, opts)
	if err != nil {
		return xstream.Result{}, nil, err
	}
	marg := make([]float32, len(vals))
	for i, v := range vals {
		m := v.B0
		if v.B1 > m {
			m = v.B1
		}
		e0 := math.Exp(float64(v.B0 - m))
		e1 := math.Exp(float64(v.B1 - m))
		marg[i] = float32(e1 / (e0 + e1))
	}
	return res, marg, nil
}
