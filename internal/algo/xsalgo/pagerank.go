package xsalgo

import (
	"encoding/binary"
	"math"

	"graphz/internal/graph"
	"graphz/internal/xstream"
)

// prVal carries the rank, the votes gathered this iteration, and the
// out-degree (scatter needs it and the model has no vertex index).
type prVal struct {
	Rank  float32
	Votes float32
	Deg   uint32
}

type prValCodec struct{}

func (prValCodec) Size() int { return 12 }

func (prValCodec) Encode(b []byte, v prVal) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v.Rank))
	binary.LittleEndian.PutUint32(b[4:], math.Float32bits(v.Votes))
	binary.LittleEndian.PutUint32(b[8:], v.Deg)
}

func (prValCodec) Decode(b []byte) prVal {
	return prVal{
		Rank:  math.Float32frombits(binary.LittleEndian.Uint32(b)),
		Votes: math.Float32frombits(binary.LittleEndian.Uint32(b[4:])),
		Deg:   binary.LittleEndian.Uint32(b[8:]),
	}
}

type prProgram struct {
	damping float32
}

func (prProgram) Init(id graph.VertexID, outDeg uint32) prVal {
	return prVal{Rank: 1, Deg: outDeg}
}

func (prProgram) Scatter(iter int, src graph.VertexID, v *prVal, dst graph.VertexID) (float32, bool) {
	return v.Rank / float32(v.Deg), true
}

func (prProgram) Gather(iter int, dst graph.VertexID, v *prVal, u float32) {
	v.Votes += u
}

func (p prProgram) PostGather(iter int, id graph.VertexID, v *prVal) bool {
	v.Rank = (1 - p.damping) + p.damping*v.Votes
	v.Votes = 0
	return true
}

// PageRank runs synchronous damped PageRank for the given iterations,
// returning ranks by natural vertex ID.
func PageRank(pt *xstream.Partitioned, opts xstream.Options, iterations int, damping float32) (xstream.Result, []float32, error) {
	opts.MaxIterations = iterations
	res, vals, err := run[prVal, float32](pt, prProgram{damping: damping}, prValCodec{}, graph.Float32Codec{}, opts)
	if err != nil {
		return xstream.Result{}, nil, err
	}
	ranks := make([]float32, len(vals))
	for i, v := range vals {
		ranks[i] = v.Rank
	}
	return res, ranks, nil
}
