package xsalgo

import (
	"encoding/binary"
	"math"

	"graphz/internal/graph"
	"graphz/internal/xstream"
)

// ssspVal carries the distance and its ship stamp.
type ssspVal struct {
	Dist   float32
	ShipAt int32
}

type ssspValCodec struct{}

func (ssspValCodec) Size() int { return 8 }

func (ssspValCodec) Encode(b []byte, v ssspVal) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v.Dist))
	binary.LittleEndian.PutUint32(b[4:], uint32(v.ShipAt))
}

func (ssspValCodec) Decode(b []byte) ssspVal {
	return ssspVal{
		Dist:   math.Float32frombits(binary.LittleEndian.Uint32(b)),
		ShipAt: int32(binary.LittleEndian.Uint32(b[4:])),
	}
}

var inf32 = float32(math.Inf(1))

type ssspProgram struct {
	source graph.VertexID
}

func (p ssspProgram) Init(id graph.VertexID, outDeg uint32) ssspVal {
	if id == p.source {
		return ssspVal{Dist: 0, ShipAt: 0}
	}
	return ssspVal{Dist: inf32, ShipAt: -1}
}

func (ssspProgram) Scatter(iter int, src graph.VertexID, v *ssspVal, dst graph.VertexID) (float32, bool) {
	if v.ShipAt != int32(iter) {
		return 0, false
	}
	return v.Dist + graph.EdgeWeight(src, dst), true
}

func (ssspProgram) Gather(iter int, dst graph.VertexID, v *ssspVal, u float32) {
	if u < v.Dist {
		v.Dist = u
		v.ShipAt = int32(iter) + 1
	}
}

func (ssspProgram) PostGather(iter int, id graph.VertexID, v *ssspVal) bool {
	return v.ShipAt == int32(iter)+1
}

// SSSP computes shortest-path distances from source with hash-derived
// weights, running until quiescent.
func SSSP(pt *xstream.Partitioned, opts xstream.Options, source graph.VertexID) (xstream.Result, []float32, error) {
	res, vals, err := run[ssspVal, float32](pt, ssspProgram{source: source}, ssspValCodec{}, graph.Float32Codec{}, opts)
	if err != nil {
		return xstream.Result{}, nil, err
	}
	dists := make([]float32, len(vals))
	for i, v := range vals {
		dists[i] = v.Dist
	}
	return res, dists, nil
}
