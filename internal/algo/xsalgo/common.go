// Package xsalgo implements the six benchmark algorithms in the
// X-Stream-style edge-centric model (scatter over edges, gather over
// updates, bulk-synchronous). One file per algorithm for the LOC
// comparisons of Tables I and IX; the extra state BSP programs must
// carry (iteration stamps, scatter cursors) is why these are longer than
// their GraphZ counterparts, as in the paper's Table IX.
package xsalgo

import (
	"graphz/internal/graph"
	"graphz/internal/xstream"
)

// run wires a program into the X-Stream engine and executes it.
func run[V, U any](pt *xstream.Partitioned, prog xstream.Program[V, U], vc graph.Codec[V], uc graph.Codec[U], opts xstream.Options) (xstream.Result, []V, error) {
	eng, err := xstream.New[V, U](pt, prog, vc, uc, opts)
	if err != nil {
		return xstream.Result{}, nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return xstream.Result{}, nil, err
	}
	vals, err := eng.Values()
	if err != nil {
		return xstream.Result{}, nil, err
	}
	eng.Cleanup()
	return res, vals, nil
}
