package xsalgo

import (
	"math"
	"testing"

	"graphz/internal/algo/plain"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
	"graphz/internal/xstream"
)

// partition bins edges for X-Stream on a fresh null device.
func partition(t *testing.T, edges []graph.Edge, k int) *xstream.Partitioned {
	t.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	pt, err := xstream.Partition(xstream.PartitionConfig{Dev: dev, NumPartitions: k}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func opts() xstream.Options { return xstream.Options{MemoryBudget: 64 << 20} }

// TestPageRankExactSync: the BSP engine's PageRank is exactly synchronous
// power iteration, so it must match the plain reference per-iteration
// (up to float32 rounding), not just at the fixpoint.
func TestPageRankExactSync(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 121)
	n := int(graph.MaxID(edges)) + 1
	for _, iters := range []int{1, 3, 10} {
		want := plain.PageRank(plain.BuildAdjacency(n, edges), iters, 0.85)
		pt := partition(t, edges, 3)
		_, ranks, err := PageRank(pt, opts(), iters, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if math.Abs(float64(ranks[v])-want[v]) > 1e-3*(1+want[v]) {
				t.Fatalf("iters=%d: rank[%d] = %v, want %v", iters, v, ranks[v], want[v])
			}
		}
	}
}

func TestBFSMatchesPlainAndCountsLevels(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 122)
	n := int(graph.MaxID(edges)) + 1
	src := graph.VertexID(0)
	want := plain.BFS(plain.BuildAdjacency(n, edges), src)
	pt := partition(t, edges, 3)
	res, levels, err := BFS(pt, opts(), src)
	if err != nil {
		t.Fatal(err)
	}
	maxLevel := uint32(0)
	for v := range want {
		if levels[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, levels[v], want[v])
		}
		if levels[v] != Unreached && levels[v] > maxLevel {
			maxLevel = levels[v]
		}
	}
	// BSP discovers exactly one frontier per iteration: iterations must
	// be at least the BFS depth.
	if res.Iterations < int(maxLevel) {
		t.Errorf("iterations %d < BFS depth %d under BSP", res.Iterations, maxLevel)
	}
}

func TestCCMatchesPlain(t *testing.T) {
	base := gen.RMAT(7, 600, gen.NaturalRMAT, 123)
	var edges []graph.Edge
	for _, e := range base {
		edges = append(edges, e, graph.Edge{Src: e.Dst, Dst: e.Src})
	}
	n := int(graph.MaxID(edges)) + 1
	want := plain.ConnectedComponents(plain.BuildAdjacency(n, edges))
	pt := partition(t, edges, 2)
	_, labels, err := ConnectedComponents(pt, opts())
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestSSSPMatchesPlain(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 124)
	n := int(graph.MaxID(edges)) + 1
	src := graph.VertexID(2)
	want := plain.SSSP(plain.BuildAdjacency(n, edges), src)
	pt := partition(t, edges, 3)
	_, dists, err := SSSP(pt, opts(), src)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		wv, gv := float64(want[v]), float64(dists[v])
		if math.IsInf(wv, 1) != math.IsInf(gv, 1) || (!math.IsInf(wv, 1) && math.Abs(gv-wv) > 1e-4) {
			t.Fatalf("dist[%d] = %v, want %v", v, gv, wv)
		}
	}
}

// TestBPMatchesPlainExactly: both are synchronous schedules over the
// same MRF, so marginals agree to float32 rounding.
func TestBPMatchesPlainExactly(t *testing.T) {
	edges := gen.RMAT(7, 700, gen.NaturalRMAT, 125)
	n := int(graph.MaxID(edges)) + 1
	want := plain.BeliefPropagation(plain.BuildAdjacency(n, edges), 6)
	pt := partition(t, edges, 2)
	_, marg, err := BeliefPropagation(pt, opts(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if math.Abs(float64(marg[v]-want[v])) > 1e-3 {
			t.Fatalf("marginal[%d] = %v, want %v", v, marg[v], want[v])
		}
	}
}

// TestRWConservationExact: BSP conserves walkers every iteration.
func TestRWConservationExact(t *testing.T) {
	edges := gen.RMAT(7, 700, gen.NaturalRMAT, 126)
	pt := partition(t, edges, 2)
	const perVertex = 3
	final, err := RandomWalkFinalWalkers(pt, opts(), 6, perVertex)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint32
	for _, w := range final {
		sum += w
	}
	if want := uint32(pt.NumVertices) * perVertex; sum != want {
		t.Fatalf("walkers = %d, want %d", sum, want)
	}
	// And visits equal walkers * iterations exactly (synchronous hops).
	_, visits, err := RandomWalk(pt, opts(), 6, perVertex)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range visits {
		total += int64(v)
	}
	if want := int64(pt.NumVertices) * perVertex * 6; total != want {
		t.Errorf("total visits = %d, want %d", total, want)
	}
}

// TestRWMatchesPlainExactly: the plain generator mirrors the BSP
// semantics and hash, so per-vertex visit counts agree exactly.
func TestRWMatchesPlainExactly(t *testing.T) {
	edges := gen.ErdosRenyi(60, 400, 127)
	n := int(graph.MaxID(edges)) + 1
	pt := partition(t, edges, 2)
	_, visits, err := RandomWalk(pt, opts(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := plain.RandomWalk(plain.BuildAdjacency(n, edges), 5, 2)
	for v := 0; v < n; v++ {
		if visits[v] != want[v] {
			t.Fatalf("visits[%d] = %d, want %d", v, visits[v], want[v])
		}
	}
}
