package xsalgo

import (
	"encoding/binary"

	"graphz/internal/graph"
	"graphz/internal/xstream"
)

// ccVal carries the component label and its ship stamp.
type ccVal struct {
	Label  uint32
	ShipAt int32
}

type ccValCodec struct{}

func (ccValCodec) Size() int { return 8 }

func (ccValCodec) Encode(b []byte, v ccVal) {
	binary.LittleEndian.PutUint32(b, v.Label)
	binary.LittleEndian.PutUint32(b[4:], uint32(v.ShipAt))
}

func (ccValCodec) Decode(b []byte) ccVal {
	return ccVal{
		Label:  binary.LittleEndian.Uint32(b),
		ShipAt: int32(binary.LittleEndian.Uint32(b[4:])),
	}
}

// ccProgram propagates minimum labels; every vertex ships its own label
// at iteration 0. Symmetrize the graph for weakly-connected components.
type ccProgram struct{}

func (ccProgram) Init(id graph.VertexID, outDeg uint32) ccVal {
	return ccVal{Label: uint32(id), ShipAt: 0}
}

func (ccProgram) Scatter(iter int, src graph.VertexID, v *ccVal, dst graph.VertexID) (uint32, bool) {
	if v.ShipAt != int32(iter) {
		return 0, false
	}
	return v.Label, true
}

func (ccProgram) Gather(iter int, dst graph.VertexID, v *ccVal, u uint32) {
	if u < v.Label {
		v.Label = u
		v.ShipAt = int32(iter) + 1
	}
}

func (ccProgram) PostGather(iter int, id graph.VertexID, v *ccVal) bool {
	return v.ShipAt == int32(iter)+1
}

// ConnectedComponents labels each vertex with the smallest ID that
// reaches it, running until quiescent.
func ConnectedComponents(pt *xstream.Partitioned, opts xstream.Options) (xstream.Result, []uint32, error) {
	res, vals, err := run[ccVal, uint32](pt, ccProgram{}, ccValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		return xstream.Result{}, nil, err
	}
	labels := make([]uint32, len(vals))
	for i, v := range vals {
		labels[i] = v.Label
	}
	return res, labels, nil
}
