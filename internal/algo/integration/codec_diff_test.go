package integration

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/checkpoint"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// The differential property behind the DOS v2 codec layer: the block
// codec is invisible to the algorithm. A graph converted with CodecRaw
// and one converted with CodecVarint share the vertex relabeling, the
// adjacency order, and the partitioning (their resident block tables are
// the same size), so every run over them must produce byte-identical
// vertex states AND identical message-routing counters — sequentially,
// with parallel workers, under selective scheduling, and across a
// checkpoint/resume cycle. The v1 format keeps a different adjacency
// order, so against it only the converged states are comparable.

// convertCodec prepares one graph under the given adjacency codec (nil
// keeps the v1 format) on its own in-memory device.
func convertCodec(t *testing.T, edges []graph.Edge, codec storage.Codec) *dos.Graph {
	t.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev, Codec: codec}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// tightCodecOpts forces several partitions and tiny message buffers so
// cross-partition spills are exercised, charging the v2 block table the
// way the engine does.
func tightCodecOpts(g *dos.Graph, vsize int) core.Options {
	vertexBytes := int64(g.NumVertices) * int64(vsize)
	return core.Options{
		MemoryBudget:    6*storage.DefaultBlockSize + g.IndexBytes() + g.BlockTableBytes() + vertexBytes/3 + 4*256,
		DynamicMessages: true,
		MsgBufferBytes:  256,
	}
}

// codecCounters projects a Result onto its schedule-determined counters —
// the fields that must not depend on the adjacency codec.
type codecCounters struct {
	iterations, partitions                            int
	sent, applied, inline, buffered, spilled, updates int64
	scanned, skipped                                  int64
}

func countersOf(r core.Result) codecCounters {
	return codecCounters{
		iterations: r.Iterations, partitions: r.Partitions,
		sent: r.MessagesSent, applied: r.MessagesApplied, inline: r.MessagesInline,
		buffered: r.MessagesBuffered, spilled: r.MessagesSpilled, updates: r.UpdatesRun,
		scanned: r.BlocksScanned, skipped: r.BlocksSkipped,
	}
}

// bits32 and bitsF32 reduce vertex states to comparable bit patterns, so
// float equality means byte equality, not approximate equality.
func bits32(xs []uint32) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}

func bitsF32(xs []float32) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(math.Float32bits(x))
	}
	return out
}

func sameBits(t *testing.T, label string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d states, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: state[%d] = %#x, want %#x", label, i, got[i], want[i])
		}
	}
}

func TestCodecDifferential(t *testing.T) {
	algos := []struct {
		name  string
		exact bool // v1 states must match bit-for-bit (order-independent Apply)
		run   func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error)
	}{
		{"cc", true, func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error) {
			res, labels, err := graphzalgo.ConnectedComponents(g, opts)
			return res, bits32(labels), err
		}},
		{"sssp", true, func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error) {
			res, dists, err := graphzalgo.SSSP(g, opts, 0)
			return res, bitsF32(dists), err
		}},
		// PageRank applies float additions in adjacency order, so v1
		// (legacy order) agrees only approximately; raw vs varint still
		// must agree exactly.
		{"pagerank", false, func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error) {
			res, ranks, err := graphzalgo.PageRank(g, opts, 20, 0.85)
			return res, bitsF32(ranks), err
		}},
	}
	configs := []struct {
		name string
		mod  func(o core.Options) core.Options
	}{
		{"sequential", func(o core.Options) core.Options { return o }},
		{"workers4", func(o core.Options) core.Options { o.WorkerParallelism = 4; return o }},
		{"selective", func(o core.Options) core.Options { o.SelectiveScheduling = true; return o }},
	}
	graphs := []struct {
		name  string
		edges []graph.Edge
	}{
		{"zipf", symmetrize(gen.Zipf(3000, 16000, 0.9, 71))},
		{"rmat", symmetrize(gen.RMAT(11, 9000, gen.NaturalRMAT, 72))},
	}

	for _, gr := range graphs {
		g1 := convertCodec(t, gr.edges, nil)
		graw := convertCodec(t, gr.edges, storage.CodecRaw)
		gvar := convertCodec(t, gr.edges, storage.CodecVarint)
		ggv := convertCodec(t, gr.edges, storage.CodecGroupVarint)
		for _, a := range algos {
			for _, cfg := range configs {
				name := gr.name + "/" + a.name + "/" + cfg.name
				res1, st1, err := a.run(g1, cfg.mod(tightCodecOpts(g1, 8)))
				if err != nil {
					t.Fatalf("%s v1: %v", name, err)
				}
				resR, stR, err := a.run(graw, cfg.mod(tightCodecOpts(graw, 8)))
				if err != nil {
					t.Fatalf("%s raw: %v", name, err)
				}
				resV, stV, err := a.run(gvar, cfg.mod(tightCodecOpts(gvar, 8)))
				if err != nil {
					t.Fatalf("%s varint: %v", name, err)
				}
				resG, stG, err := a.run(ggv, cfg.mod(tightCodecOpts(ggv, 8)))
				if err != nil {
					t.Fatalf("%s groupvarint: %v", name, err)
				}
				// The headline property: the three v2 codecs are
				// indistinguishable — states and counters.
				sameBits(t, name+" raw-vs-varint", stV, stR)
				if countersOf(resV) != countersOf(resR) {
					t.Fatalf("%s: varint counters %+v, raw %+v", name, countersOf(resV), countersOf(resR))
				}
				sameBits(t, name+" raw-vs-groupvarint", stG, stR)
				if countersOf(resG) != countersOf(resR) {
					t.Fatalf("%s: groupvarint counters %+v, raw %+v", name, countersOf(resG), countersOf(resR))
				}
				if resR.Partitions < 2 {
					t.Errorf("%s: %d partitions, want several (budget too loose to test spills)", name, resR.Partitions)
				}
				// v2 against v1: converged states agree (exactly for
				// order-independent programs).
				if a.exact {
					sameBits(t, name+" v2-vs-v1", stR, st1)
				} else {
					for i := range st1 {
						v1, v2 := float64(math.Float32frombits(uint32(st1[i]))), float64(math.Float32frombits(uint32(stR[i])))
						if math.Abs(v1-v2) > 1e-3*(1+math.Abs(v1)) {
							t.Fatalf("%s: state[%d] = %v, v1 has %v", name, i, v2, v1)
						}
					}
				}
				_ = res1
			}
		}
	}
}

// A checkpoint taken mid-run on one codec resumes to the same final
// state and cumulative counters as an uninterrupted run, and the two v2
// codecs stay indistinguishable across the crash/resume cycle.
func TestCodecCheckpointResumeDifferential(t *testing.T) {
	edges := symmetrize(gen.Zipf(2500, 14000, 0.9, 73))
	type outcome struct {
		res core.Result
		st  []uint64
	}
	results := map[string]outcome{}
	for _, c := range []struct {
		name  string
		codec storage.Codec
	}{{"raw", storage.CodecRaw}, {"varint", storage.CodecVarint}, {"groupvarint", storage.CodecGroupVarint}} {
		gRef := convertCodec(t, edges, c.codec)
		refRes, refLabels, err := graphzalgo.ConnectedComponents(gRef, tightCodecOpts(gRef, 8))
		if err != nil {
			t.Fatal(err)
		}
		if refRes.Iterations < 3 {
			t.Fatalf("CC converged in %d iterations; too few to test mid-run resume", refRes.Iterations)
		}

		// Crash: checkpoint every iteration, then throw away everything
		// after the halfway point — the on-host state of a run that died
		// mid-flight — and resume on a fresh engine over the same graph.
		dir := t.TempDir()
		g := convertCodec(t, edges, c.codec)
		opts := tightCodecOpts(g, 8)
		opts.Checkpoint = core.CheckpointOptions{Dir: dir, Every: 1, Keep: 1 << 20}
		if _, _, err := graphzalgo.ConnectedComponents(g, opts); err != nil {
			t.Fatal(err)
		}
		st, err := checkpoint.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		iters, err := st.Iterations()
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range iters {
			if it > refRes.Iterations/2 {
				os.RemoveAll(filepath.Join(dir, fmt.Sprintf("ckpt-%010d", it)))
			}
		}
		ropts := tightCodecOpts(g, 8)
		ropts.Checkpoint = core.CheckpointOptions{Dir: dir, Every: 1, Resume: true}
		res, labels, err := graphzalgo.ConnectedComponents(g, ropts)
		if err != nil {
			t.Fatalf("%s resume: %v", c.name, err)
		}
		sameBits(t, c.name+" resumed-vs-uninterrupted", bits32(labels), bits32(refLabels))
		if countersOf(res) != countersOf(refRes) {
			t.Fatalf("%s: resumed counters %+v, uninterrupted %+v", c.name, countersOf(res), countersOf(refRes))
		}
		results[c.name] = outcome{res: res, st: bits32(labels)}
	}
	for _, name := range []string{"varint", "groupvarint"} {
		sameBits(t, "raw-vs-"+name+" after resume", results[name].st, results["raw"].st)
		if countersOf(results[name].res) != countersOf(results["raw"].res) {
			t.Fatalf("resume counters differ: %s %+v, raw %+v", name, countersOf(results[name].res), countersOf(results["raw"].res))
		}
	}
}

// The acceptance bar from the issue: on a power-law graph with >= 1M
// edges, the varint edges file is at least 1.8x smaller than raw, and an
// end-to-end PageRank reads proportionally fewer device bytes — measured
// by the graphz_codec_bytes_{raw,encoded}_total counters — while the
// final states stay byte-identical.
func TestCodecCompressionAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("converts and ranks a 1M+ edge graph")
	}
	edges := gen.Zipf(200_000, 1_100_000, 0.9, 99)
	graw := convertCodec(t, edges, storage.CodecRaw)
	gvar := convertCodec(t, edges, storage.CodecVarint)
	ggv := convertCodec(t, edges, storage.CodecGroupVarint)
	if graw.NumEdges < 1_000_000 {
		t.Fatalf("generator produced %d edges, want >= 1M", graw.NumEdges)
	}

	sizeOf := func(g *dos.Graph) int64 {
		n, err := g.Device().Size(g.EdgesFile())
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	rawBytes, varBytes, gvBytes := sizeOf(graw), sizeOf(gvar), sizeOf(ggv)
	fileRatio := float64(rawBytes) / float64(varBytes)
	t.Logf("edges file: raw %d B, varint %d B (%.2fx)", rawBytes, varBytes, fileRatio)
	if fileRatio < 1.8 {
		t.Errorf("varint edges file only %.2fx smaller than raw, want >= 1.8x", fileRatio)
	}
	// The fast codec's acceptance bar: the ~2 control bits per entry it
	// spends on branch-free decode still leave at least a 1.9x ratio.
	gvRatio := float64(rawBytes) / float64(gvBytes)
	t.Logf("edges file: groupvarint %d B (%.2fx)", gvBytes, gvRatio)
	if gvRatio < 1.9 {
		t.Errorf("groupvarint edges file only %.2fx smaller than raw, want >= 1.9x", gvRatio)
	}

	run := func(g *dos.Graph) (core.Result, []uint64, storage.Stats) {
		g.Device().ResetStats()
		opts := core.Options{MemoryBudget: 64 << 20, DynamicMessages: true, Obs: obs.NewRegistry()}
		res, ranks, err := graphzalgo.PageRank(g, opts, 3, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		return res, bitsF32(ranks), g.Device().Stats()
	}
	resR, stR, ioR := run(graw)
	resV, stV, ioV := run(gvar)
	resG, stG, ioG := run(ggv)

	sameBits(t, "pagerank raw-vs-varint", stV, stR)
	if countersOf(resV) != countersOf(resR) {
		t.Fatalf("counters differ: varint %+v, raw %+v", countersOf(resV), countersOf(resR))
	}
	sameBits(t, "pagerank raw-vs-groupvarint", stG, stR)
	if countersOf(resG) != countersOf(resR) {
		t.Fatalf("counters differ: groupvarint %+v, raw %+v", countersOf(resG), countersOf(resR))
	}
	if resG.CodecBytesRaw != resR.CodecBytesRaw {
		t.Fatalf("decoded bytes: groupvarint %d, raw %d, want equal", resG.CodecBytesRaw, resR.CodecBytesRaw)
	}
	if ioG.ReadBytes >= ioR.ReadBytes {
		t.Errorf("groupvarint run read %d device bytes, raw read %d", ioG.ReadBytes, ioR.ReadBytes)
	}
	if resV.CodecBytesRaw == 0 || resV.CodecBytesRaw != resR.CodecBytesRaw {
		t.Fatalf("decoded bytes: varint %d, raw %d, want equal and nonzero", resV.CodecBytesRaw, resR.CodecBytesRaw)
	}
	// The device-byte saving matches the file-size saving: the run reads
	// the same index/state/message bytes on both codecs, fewer edge
	// bytes on varint.
	readRatio := float64(resR.CodecBytesEncoded) / float64(resV.CodecBytesEncoded)
	t.Logf("edge bytes read: raw %d, varint %d (%.2fx); device reads raw %d, varint %d",
		resR.CodecBytesEncoded, resV.CodecBytesEncoded, readRatio, ioR.ReadBytes, ioV.ReadBytes)
	if readRatio < fileRatio*0.95 {
		t.Errorf("varint run read only %.2fx fewer edge bytes; file is %.2fx smaller", readRatio, fileRatio)
	}
	if ioV.ReadBytes >= ioR.ReadBytes {
		t.Errorf("varint run read %d device bytes, raw read %d", ioV.ReadBytes, ioR.ReadBytes)
	}
}

// TestGroupVarintDifferentialMatrix pins the new fast codec against raw
// across the full engine-mode cross: {sequential, workers=4} ×
// {selective scheduling on/off} × {SEM on/off}. Every cell must produce
// byte-identical states and identical routing counters — the codec (and
// the batch Worker dispatch riding on its decode path) is invisible to
// every engine mode combination.
func TestGroupVarintDifferentialMatrix(t *testing.T) {
	edges := symmetrize(gen.Zipf(3000, 16000, 0.9, 83))
	graw := convertCodec(t, edges, storage.CodecRaw)
	ggv := convertCodec(t, edges, storage.CodecGroupVarint)
	for _, workers := range []int{1, 4} {
		for _, selective := range []bool{false, true} {
			for _, sem := range []bool{false, true} {
				name := fmt.Sprintf("workers%d/selective=%v/sem=%v", workers, selective, sem)
				optsFor := func(g *dos.Graph) core.Options {
					var o core.Options
					if sem {
						// SEM pins all states resident: one partition,
						// every apply inline.
						o = core.Options{MemoryBudget: 64 << 20, DynamicMessages: true, SemiExternal: core.SemOn}
					} else {
						o = tightCodecOpts(g, 8)
					}
					o.WorkerParallelism = workers
					o.SelectiveScheduling = selective
					return o
				}
				resR, labelsR, err := graphzalgo.ConnectedComponents(graw, optsFor(graw))
				if err != nil {
					t.Fatalf("%s raw: %v", name, err)
				}
				resG, labelsG, err := graphzalgo.ConnectedComponents(ggv, optsFor(ggv))
				if err != nil {
					t.Fatalf("%s groupvarint: %v", name, err)
				}
				sameBits(t, name+" raw-vs-groupvarint", bits32(labelsG), bits32(labelsR))
				if countersOf(resG) != countersOf(resR) {
					t.Fatalf("%s: groupvarint counters %+v, raw %+v", name, countersOf(resG), countersOf(resR))
				}
				if sem && !resG.SemiExternal {
					t.Fatalf("%s: run did not take the semi-external path", name)
				}
				if !sem && resR.Partitions < 2 {
					t.Errorf("%s: %d partitions, want several (budget too loose to test spills)", name, resR.Partitions)
				}
			}
		}
	}
}
