package integration

import (
	"testing"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// Run-report diffing end to end (ISSUE 6 acceptance): two runs of the
// same graph and algorithm at different memory budgets, and the diff
// must localize the regression — the tight budget forces multiple
// partitions, so messages that were inline start spilling through the
// vertex-state file, and the extra cost shows up as a drain-stage
// regression, a spilled-messages counter regression, and a drain_msgs
// block range on the vstate file.

// runCCReport runs ConnectedComponents on a fresh device at the budget
// budgetFn picks, with full instrumentation, and builds the run report.
func runCCReport(t *testing.T, edges []graph.Edge, budgetFn func(*dos.Graph) int64) (*obs.RunReport, core.Result) {
	t.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewCollectingTracer(nil)
	budget := budgetFn(g)
	res, _, err := graphzalgo.ConnectedComponents(g, core.Options{
		MemoryBudget:    budget,
		DynamicMessages: true,
		MsgBufferBytes:  64,
		Obs:             reg,
		Trace:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := obs.BuildReport(obs.ReportInfo{
		Engine: "graphz", Algo: "cc", BudgetBytes: budget,
	}, reg, tr, core.DeviceFileIO(dev))
	return rep, res
}

func TestReportDiffLocalizesBudgetRegression(t *testing.T) {
	edges := symmetrize(gen.RMAT(8, 1500, gen.NaturalRMAT, 77))

	// Base: a budget everything fits in — one partition, all messages
	// inline, nothing spilled.
	base, resBase := runCCReport(t, edges, func(*dos.Graph) int64 { return 64 << 20 })
	if resBase.Partitions != 1 || resBase.MessagesSpilled != 0 || resBase.MessagesBuffered != 0 {
		t.Fatalf("base run not all-inline: partitions=%d buffered=%d spilled=%d",
			resBase.Partitions, resBase.MessagesBuffered, resBase.MessagesSpilled)
	}

	// Current: a budget sized for roughly four partitions (mirroring the
	// core planner's accounting), with tiny message buffers so
	// cross-partition messages spill.
	cur, resCur := runCCReport(t, edges, func(g *dos.Graph) int64 {
		const pipelineOverhead = 6 * storage.DefaultBlockSize // core's fixed Sio buffers
		vertexBytes := int64(g.NumVertices) * 8               // ccVal is a U32Pair
		return pipelineOverhead + g.IndexBytes() + g.BlockTableBytes() + vertexBytes/4 + 4*64
	})
	if resCur.Partitions < 2 || resCur.MessagesSpilled < 16 {
		t.Fatalf("tight run not spilling: partitions=%d spilled=%d",
			resCur.Partitions, resCur.MessagesSpilled)
	}

	// MinNS -1: the drain cost appears from a zero base, and on the null
	// device its absolute size is machine-dependent — the localization,
	// not the magnitude, is under test. Count floors stay at defaults.
	d := obs.DiffReports(base, cur, obs.DiffOptions{MinNS: -1})
	if d.Regressions == 0 {
		t.Fatal("diff found no regressions")
	}

	var drainRegressed bool
	for _, s := range d.Stages {
		if s.Stage == obs.StageDrain {
			drainRegressed = s.Regressed
		}
	}
	if !drainRegressed {
		t.Errorf("drain stage not flagged: %+v", d.Stages)
	}

	var spillRegressed bool
	for _, c := range d.Counters {
		if c.Name == "graphz_messages_spilled_total" {
			spillRegressed = c.Regressed
			if c.Base != 0 || c.Cur != resCur.MessagesSpilled {
				t.Errorf("spill counter delta = %+v, want 0 -> %d", c, resCur.MessagesSpilled)
			}
		}
	}
	if !spillRegressed {
		t.Errorf("spilled counter not flagged: %+v", d.Counters)
	}

	// The new drain traffic is attributed to the vstate file, starting at
	// its first block (vertex states begin at offset zero).
	var drainRange *obs.BlockRangeDelta
	for i, b := range d.Blocks {
		if b.File == "graphz.vstate" && b.Metric == "drain_msgs" {
			drainRange = &d.Blocks[i]
		}
	}
	if drainRange == nil {
		t.Fatalf("no vstate drain_msgs range: %+v", d.Blocks)
	}
	if drainRange.FirstBlock != 0 || drainRange.Base != 0 || drainRange.Cur != resCur.MessagesBuffered {
		t.Errorf("drain range = %+v, want blocks from 0 covering all %d buffered messages",
			drainRange, resCur.MessagesBuffered)
	}
}
