// Package integration cross-checks the three engines (GraphZ, the
// GraphChi-class baseline, and the X-Stream-class baseline) against each
// other and against the plain in-memory references on shared inputs —
// the correctness foundation under every performance comparison the
// benchmark harness reports.
package integration

import (
	"math"
	"testing"

	"graphz/internal/algo/chialgo"
	"graphz/internal/algo/graphzalgo"
	"graphz/internal/algo/plain"
	"graphz/internal/algo/xsalgo"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/graphchi"
	"graphz/internal/storage"
	"graphz/internal/xstream"
)

// world holds one graph prepared for all three engines on separate
// devices, with the ID mappings needed to compare results.
type world struct {
	edges []graph.Edge
	gz    *dos.Graph
	chi   *graphchi.Shards
	xs    *xstream.Partitioned
	n2o   []graph.VertexID // GraphZ new -> original
	o2n   []graph.VertexID // original -> GraphZ new
	adj   *plain.Adjacency // natural-ID adjacency for references
	n     int              // natural dense vertex count (maxID+1)
}

func buildWorld(t *testing.T, edges []graph.Edge, evalSize int) *world {
	t.Helper()
	w := &world{edges: edges}

	dev1 := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev1, "raw", edges); err != nil {
		t.Fatal(err)
	}
	var err error
	w.gz, err = dos.Convert(dos.ConvertConfig{Dev: dev1}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	w.n2o, err = w.gz.NewToOld()
	if err != nil {
		t.Fatal(err)
	}
	w.o2n, err = w.gz.OldToNew()
	if err != nil {
		t.Fatal(err)
	}

	dev2 := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev2, "raw", edges); err != nil {
		t.Fatal(err)
	}
	w.chi, err = graphchi.Shard(graphchi.ShardConfig{Dev: dev2, EdgeValSize: evalSize, NumShards: 3}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}

	dev3 := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev3, "raw", edges); err != nil {
		t.Fatal(err)
	}
	w.xs, err = xstream.Partition(xstream.PartitionConfig{Dev: dev3, NumPartitions: 3}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}

	w.n = int(graph.MaxID(edges)) + 1
	w.adj = plain.BuildAdjacency(w.n, edges)
	return w
}

func gzOpts() core.Options {
	return core.Options{MemoryBudget: 64 << 20, DynamicMessages: true}
}

func chiOpts() graphchi.Options { return graphchi.Options{MemoryBudget: 64 << 20} }

func xsOpts() xstream.Options { return xstream.Options{MemoryBudget: 64 << 20} }

func symmetrize(edges []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, graph.Edge{Src: e.Dst, Dst: e.Src})
	}
	return out
}

func TestBFSAgreesAcrossEngines(t *testing.T) {
	edges := gen.RMAT(9, 3500, gen.NaturalRMAT, 61)
	w := buildWorld(t, edges, 4)

	// Source: the highest-degree vertex, named by its original ID.
	srcOld := w.n2o[0]
	want := plain.BFS(w.adj, srcOld)

	_, gzLevels, err := graphzalgo.BFS(w.gz, gzOpts(), w.o2n[srcOld])
	if err != nil {
		t.Fatal(err)
	}
	_, chiLevels, err := chialgo.BFS(w.chi, chiOpts(), srcOld)
	if err != nil {
		t.Fatal(err)
	}
	_, xsLevels, err := xsalgo.BFS(w.xs, xsOpts(), srcOld)
	if err != nil {
		t.Fatal(err)
	}

	for old := 0; old < w.n; old++ {
		if chiLevels[old] != want[old] {
			t.Fatalf("GraphChi level[%d] = %d, want %d", old, chiLevels[old], want[old])
		}
		if xsLevels[old] != want[old] {
			t.Fatalf("X-Stream level[%d] = %d, want %d", old, xsLevels[old], want[old])
		}
		if newID := w.o2n[old]; newID != graph.NoVertex {
			if gzLevels[newID] != want[old] {
				t.Fatalf("GraphZ level[old %d] = %d, want %d", old, gzLevels[newID], want[old])
			}
		}
	}
}

// canonicalComponents maps component labels to a canonical form (the
// partition of vertices), so label ID spaces do not matter.
func canonicalComponents(t *testing.T, members map[uint32][]graph.VertexID) map[graph.VertexID][]graph.VertexID {
	t.Helper()
	out := make(map[graph.VertexID][]graph.VertexID)
	for _, vs := range members {
		min := vs[0]
		for _, v := range vs {
			if v < min {
				min = v
			}
		}
		out[min] = vs
	}
	return out
}

func TestCCAgreesAcrossEngines(t *testing.T) {
	edges := symmetrize(gen.RMAT(8, 1200, gen.NaturalRMAT, 62))
	w := buildWorld(t, edges, 4)

	want := plain.ConnectedComponents(w.adj)

	_, gzLabels, err := graphzalgo.ConnectedComponents(w.gz, gzOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, chiLabels, err := chialgo.ConnectedComponents(w.chi, chiOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, xsLabels, err := xsalgo.ConnectedComponents(w.xs, xsOpts())
	if err != nil {
		t.Fatal(err)
	}

	// GraphChi and X-Stream share the natural ID space: labels must
	// match the reference exactly.
	for v := 0; v < w.n; v++ {
		if chiLabels[v] != want[v] {
			t.Fatalf("GraphChi label[%d] = %d, want %d", v, chiLabels[v], want[v])
		}
		if xsLabels[v] != want[v] {
			t.Fatalf("X-Stream label[%d] = %d, want %d", v, xsLabels[v], want[v])
		}
	}
	// GraphZ labels live in the relabeled space: two original vertices
	// are in the same component iff their GraphZ labels match.
	group := make(map[uint32][]graph.VertexID)
	groupWant := make(map[uint32][]graph.VertexID)
	for old := 0; old < w.n; old++ {
		newID := w.o2n[old]
		if newID == graph.NoVertex {
			continue
		}
		group[gzLabels[newID]] = append(group[gzLabels[newID]], graph.VertexID(old))
		groupWant[want[old]] = append(groupWant[want[old]], graph.VertexID(old))
	}
	a := canonicalComponents(t, group)
	b := canonicalComponents(t, groupWant)
	if len(a) != len(b) {
		t.Fatalf("GraphZ finds %d components, want %d", len(a), len(b))
	}
	for min, vs := range a {
		if len(b[min]) != len(vs) {
			t.Fatalf("component of %d has %d members, want %d", min, len(vs), len(b[min]))
		}
	}
}

func TestPageRankAgreesAcrossEngines(t *testing.T) {
	edges := gen.RMAT(9, 3500, gen.NaturalRMAT, 63)
	w := buildWorld(t, edges, 4)

	const iters = 50
	want := plain.PageRank(w.adj, 200, 0.85) // reference fixpoint

	_, gzRanks, err := graphzalgo.PageRank(w.gz, gzOpts(), iters, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	_, chiRanks, err := chialgo.PageRank(w.chi, chiOpts(), iters, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	_, xsRanks, err := xsalgo.PageRank(w.xs, xsOpts(), iters, 0.85)
	if err != nil {
		t.Fatal(err)
	}

	tol := func(x float64) float64 { return 2e-3 * (1 + x) }
	for old := 0; old < w.n; old++ {
		if d := math.Abs(float64(chiRanks[old]) - want[old]); d > tol(want[old]) {
			t.Fatalf("GraphChi rank[%d] = %v, want %v", old, chiRanks[old], want[old])
		}
		if d := math.Abs(float64(xsRanks[old]) - want[old]); d > tol(want[old]) {
			t.Fatalf("X-Stream rank[%d] = %v, want %v", old, xsRanks[old], want[old])
		}
		if newID := w.o2n[old]; newID != graph.NoVertex {
			if d := math.Abs(float64(gzRanks[newID]) - want[old]); d > tol(want[old]) {
				t.Fatalf("GraphZ rank[old %d] = %v, want %v", old, gzRanks[newID], want[old])
			}
		}
	}
}

func TestSSSPAgreesWithReferencePerEngine(t *testing.T) {
	// Weights derive from each engine's own ID space (see DESIGN.md),
	// so GraphChi/X-Stream are compared on natural IDs and GraphZ on
	// its relabeled space.
	edges := gen.RMAT(9, 3000, gen.NaturalRMAT, 64)
	w := buildWorld(t, edges, 4)

	srcOld := w.n2o[0]
	wantNat := plain.SSSP(w.adj, srcOld)

	_, chiDists, err := chialgo.SSSP(w.chi, chiOpts(), srcOld)
	if err != nil {
		t.Fatal(err)
	}
	_, xsDists, err := xsalgo.SSSP(w.xs, xsOpts(), srcOld)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < w.n; v++ {
		for name, got := range map[string]float32{"GraphChi": chiDists[v], "X-Stream": xsDists[v]} {
			wv, gv := float64(wantNat[v]), float64(got)
			if math.IsInf(wv, 1) != math.IsInf(gv, 1) || (!math.IsInf(wv, 1) && math.Abs(gv-wv) > 1e-3) {
				t.Fatalf("%s dist[%d] = %v, want %v", name, v, gv, wv)
			}
		}
	}

	// GraphZ against a reference on its own relabeled space.
	rel := make([]graph.Edge, len(edges))
	for i, e := range edges {
		rel[i] = graph.Edge{Src: w.o2n[e.Src], Dst: w.o2n[e.Dst]}
	}
	wantRel := plain.SSSP(plain.BuildAdjacency(w.gz.NumVertices, rel), 0)
	_, gzDists, err := graphzalgo.SSSP(w.gz, gzOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range wantRel {
		wv, gv := float64(wantRel[v]), float64(gzDists[v])
		if math.IsInf(wv, 1) != math.IsInf(gv, 1) || (!math.IsInf(wv, 1) && math.Abs(gv-wv) > 1e-3) {
			t.Fatalf("GraphZ dist[%d] = %v, want %v", v, gv, wv)
		}
	}
}

func TestAsyncConvergesNoSlowerThanBSP(t *testing.T) {
	// The paper's Table XIV: asynchronous engines (GraphZ, GraphChi)
	// need no more iterations than bulk-synchronous X-Stream.
	edges := symmetrize(gen.RMAT(9, 2500, gen.NaturalRMAT, 65))
	w := buildWorld(t, edges, 4)

	gzRes, _, err := graphzalgo.ConnectedComponents(w.gz, gzOpts())
	if err != nil {
		t.Fatal(err)
	}
	chiRes, _, err := chialgo.ConnectedComponents(w.chi, chiOpts())
	if err != nil {
		t.Fatal(err)
	}
	xsRes, _, err := xsalgo.ConnectedComponents(w.xs, xsOpts())
	if err != nil {
		t.Fatal(err)
	}
	if gzRes.Iterations > xsRes.Iterations {
		t.Errorf("GraphZ CC took %d iterations, X-Stream %d", gzRes.Iterations, xsRes.Iterations)
	}
	if chiRes.Iterations > xsRes.Iterations {
		t.Errorf("GraphChi CC took %d iterations, X-Stream %d", chiRes.Iterations, xsRes.Iterations)
	}
}

func TestBPMarginalsCloseAcrossEngines(t *testing.T) {
	// BP is approximate and schedule-dependent; after enough rounds on
	// the same MRF the engines' marginals should agree loosely.
	edges := gen.RMAT(8, 1200, gen.NaturalRMAT, 66)
	w := buildWorld(t, edges, 8)

	const iters = 15
	_, chiM, err := chialgo.BeliefPropagation(w.chi, chiOpts(), iters)
	if err != nil {
		t.Fatal(err)
	}
	_, xsM, err := xsalgo.BeliefPropagation(w.xs, xsOpts(), iters)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for v := 0; v < w.n; v++ {
		if d := math.Abs(float64(chiM[v] - xsM[v])); d > worst {
			worst = d
		}
	}
	if worst > 0.15 {
		t.Errorf("GraphChi and X-Stream BP marginals differ by up to %v", worst)
	}
}

func TestRandomWalkTotalsComparable(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 67)
	w := buildWorld(t, edges, 4)

	const iters, perVertex = 6, 3
	_, gzVisits, err := graphzalgo.RandomWalk(w.gz, gzOpts(), iters, perVertex)
	if err != nil {
		t.Fatal(err)
	}
	_, chiVisits, err := chialgo.RandomWalk(w.chi, chiOpts(), iters, perVertex)
	if err != nil {
		t.Fatal(err)
	}
	_, xsVisits, err := xsalgo.RandomWalk(w.xs, xsOpts(), iters, perVertex)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(v []uint32) (s int64) {
		for _, x := range v {
			s += int64(x)
		}
		return
	}
	// X-Stream walks are strictly synchronous: every walker makes one
	// hop per iteration — visits are exactly V*perVertex*iters. GraphZ
	// starts walkers only at real vertices (its dense space skips ID
	// gaps), so its BSP-equivalent total uses its own vertex count.
	// The async engines can double-hop (visiting more) but never
	// exceed one visit per walker per *update*, bounding totals by 2x.
	wantXS := int64(w.xs.NumVertices) * perVertex * iters
	if got := sum(xsVisits); got != wantXS {
		t.Errorf("X-Stream visits = %d, want %d", got, wantXS)
	}
	gzBase := int64(w.gz.NumVertices) * perVertex * iters
	if got := sum(gzVisits); got < gzBase || got > 2*gzBase {
		t.Errorf("GraphZ visits = %d, want within [%d, %d]", got, gzBase, 2*gzBase)
	}
	chiBase := int64(w.xs.NumVertices) * perVertex * iters
	if got := sum(chiVisits); got < chiBase || got > 2*chiBase {
		t.Errorf("GraphChi visits = %d, want within [%d, %d]", got, chiBase, 2*chiBase)
	}
}
