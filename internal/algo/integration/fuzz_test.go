package integration

import (
	"testing"
	"testing/quick"

	"graphz/internal/algo/chialgo"
	"graphz/internal/algo/graphzalgo"
	"graphz/internal/algo/plain"
	"graphz/internal/algo/xsalgo"
	"graphz/internal/gen"
	"graphz/internal/graph"
)

// TestQuickBFSAllEngines fuzzes BFS agreement across all three engines on
// random graph shapes (power-law, uniform, with self-loops and duplicate
// edges).
func TestQuickBFSAllEngines(t *testing.T) {
	check := func(seed uint64, shape uint8) bool {
		var edges []graph.Edge
		switch shape % 3 {
		case 0:
			edges = gen.RMAT(7, 400+int(seed%400), gen.NaturalRMAT, seed)
		case 1:
			edges = gen.ErdosRenyi(60+int(seed%100), 300, seed)
		default:
			edges = gen.Zipf(80+int(seed%80), 500, 0.8, seed)
		}
		if len(edges) == 0 {
			return true
		}
		w := buildWorld(t, edges, 4)
		srcOld := w.n2o[0]
		want := plain.BFS(w.adj, srcOld)

		_, gz, err := graphzalgo.BFS(w.gz, gzOpts(), w.o2n[srcOld])
		if err != nil {
			t.Logf("graphz: %v", err)
			return false
		}
		_, chi, err := chialgo.BFS(w.chi, chiOpts(), srcOld)
		if err != nil {
			t.Logf("graphchi: %v", err)
			return false
		}
		_, xs, err := xsalgo.BFS(w.xs, xsOpts(), srcOld)
		if err != nil {
			t.Logf("xstream: %v", err)
			return false
		}
		for old := 0; old < w.n; old++ {
			if chi[old] != want[old] || xs[old] != want[old] {
				return false
			}
			if newID := w.o2n[old]; newID != graph.NoVertex && gz[newID] != want[old] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestQuickCCPartitionsAgree fuzzes the component partition across
// engines on random symmetrized graphs.
func TestQuickCCPartitionsAgree(t *testing.T) {
	check := func(seed uint64) bool {
		base := gen.ErdosRenyi(50+int(seed%60), 60+int(seed%60), seed)
		w := buildWorld(t, symmetrize(base), 4)
		want := plain.ConnectedComponents(w.adj)
		_, chi, err := chialgo.ConnectedComponents(w.chi, chiOpts())
		if err != nil {
			return false
		}
		_, xs, err := xsalgo.ConnectedComponents(w.xs, xsOpts())
		if err != nil {
			return false
		}
		for v := 0; v < w.n; v++ {
			if chi[v] != want[v] || xs[v] != want[v] {
				return false
			}
		}
		// GraphZ: same-component relation must match.
		_, gz, err := graphzalgo.ConnectedComponents(w.gz, gzOpts())
		if err != nil {
			return false
		}
		for i := 0; i < w.n; i++ {
			ni := w.o2n[i]
			if ni == graph.NoVertex {
				continue
			}
			for j := i + 1; j < w.n; j += 7 { // sampled pairs
				nj := w.o2n[j]
				if nj == graph.NoVertex {
					continue
				}
				if (want[i] == want[j]) != (gz[ni] == gz[nj]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
