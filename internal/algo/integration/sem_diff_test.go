package integration

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/checkpoint"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/storage"
)

// The differential property behind the semi-external-memory fast path:
// SEM is invisible to the algorithm. Against the single-partition
// partitioned run — identical message routing, every send already
// inline — a SEM run must be byte-identical in states AND counters for
// every algorithm, adjacency codec, and worker count. Against the
// spilling multi-partition baseline the converged fixpoints (CC, SSSP)
// must still match bit-for-bit; PageRank's fixed-iteration ranks agree
// approximately, exactly as they do between partition counts (a
// cross-partition message waits an iteration, an inline one does not).
// The raw and varint codecs must stay indistinguishable under SEM, and
// a mid-run crash/resume cycle must reproduce the uninterrupted SEM run.

// semRunOpts forces the fast path with room to pin the states.
func semRunOpts() core.Options {
	return core.Options{
		MemoryBudget:    64 << 20,
		DynamicMessages: true,
		SemiExternal:    core.SemOn,
	}
}

// onePartOpts is the partitioned control with identical routing: same
// budget, fast path disabled.
func onePartOpts() core.Options {
	o := semRunOpts()
	o.SemiExternal = core.SemOff
	return o
}

func checkSemShape(t *testing.T, label string, r core.Result) {
	t.Helper()
	if !r.SemiExternal {
		t.Fatalf("%s: run did not take the semi-external path", label)
	}
	if r.MessagesBuffered != 0 || r.MessagesSpilled != 0 {
		t.Fatalf("%s: buffered %d spilled %d, want 0/0", label, r.MessagesBuffered, r.MessagesSpilled)
	}
}

func TestSemDifferential(t *testing.T) {
	algos := []struct {
		name  string
		exact bool // multi-partition states must match bit-for-bit
		run   func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error)
	}{
		{"cc", true, func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error) {
			res, labels, err := graphzalgo.ConnectedComponents(g, opts)
			return res, bits32(labels), err
		}},
		{"sssp", true, func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error) {
			res, dists, err := graphzalgo.SSSP(g, opts, 0)
			return res, bitsF32(dists), err
		}},
		// PageRank stops at a fixed iteration count, so the faster
		// cross-partition propagation under SEM shifts the float sums
		// the same way fewer partitions would: compare approximately.
		{"pagerank", false, func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error) {
			res, ranks, err := graphzalgo.PageRank(g, opts, 20, 0.85)
			return res, bitsF32(ranks), err
		}},
	}
	configs := []struct {
		name string
		mod  func(o core.Options) core.Options
	}{
		{"sequential", func(o core.Options) core.Options { return o }},
		{"workers4", func(o core.Options) core.Options { o.WorkerParallelism = 4; return o }},
	}
	codecs := []struct {
		name  string
		codec storage.Codec
	}{{"raw", storage.CodecRaw}, {"varint", storage.CodecVarint}, {"groupvarint", storage.CodecGroupVarint}}

	edges := symmetrize(gen.Zipf(3000, 16000, 0.9, 81))
	for _, a := range algos {
		for _, cfg := range configs {
			// One SEM outcome per codec, to cross-check raw vs varint.
			semStates := map[string][]uint64{}
			semCounters := map[string]codecCounters{}
			for _, c := range codecs {
				name := a.name + "/" + cfg.name + "/" + c.name
				g := convertCodec(t, edges, c.codec)

				semRes, semSt, err := a.run(g, cfg.mod(semRunOpts()))
				if err != nil {
					t.Fatalf("%s sem: %v", name, err)
				}
				checkSemShape(t, name, semRes)
				semStates[c.name], semCounters[c.name] = semSt, countersOf(semRes)

				// Byte identity vs the single-partition partitioned run.
				gOne := convertCodec(t, edges, c.codec)
				oneRes, oneSt, err := a.run(gOne, cfg.mod(onePartOpts()))
				if err != nil {
					t.Fatalf("%s one-partition: %v", name, err)
				}
				if oneRes.Partitions != 1 {
					t.Fatalf("%s: control split into %d partitions", name, oneRes.Partitions)
				}
				sameBits(t, name+" sem-vs-one-partition", semSt, oneSt)
				if countersOf(semRes) != countersOf(oneRes) {
					t.Fatalf("%s: sem counters %+v, one-partition %+v",
						name, countersOf(semRes), countersOf(oneRes))
				}

				// Fixpoint identity vs the spilling multi-partition run.
				gMulti := convertCodec(t, edges, c.codec)
				multiRes, multiSt, err := a.run(gMulti, cfg.mod(tightCodecOpts(gMulti, 8)))
				if err != nil {
					t.Fatalf("%s multi-partition: %v", name, err)
				}
				if multiRes.Partitions < 2 {
					t.Fatalf("%s: baseline has %d partitions, want several", name, multiRes.Partitions)
				}
				if a.exact {
					if multiRes.MessagesSpilled == 0 {
						t.Errorf("%s: baseline never spilled — differential proves little", name)
					}
					sameBits(t, name+" sem-vs-multi-partition", semSt, multiSt)
				} else {
					for i := range multiSt {
						vm := float64(math.Float32frombits(uint32(multiSt[i])))
						vs := float64(math.Float32frombits(uint32(semSt[i])))
						if math.Abs(vm-vs) > 1e-3*(1+math.Abs(vm)) {
							t.Fatalf("%s: state[%d] = %v, multi-partition has %v", name, i, vs, vm)
						}
					}
				}
			}
			// The codec must stay invisible under SEM too.
			for _, other := range []string{"varint", "groupvarint"} {
				sameBits(t, a.name+"/"+cfg.name+" sem raw-vs-"+other, semStates[other], semStates["raw"])
				if semCounters[other] != semCounters["raw"] {
					t.Fatalf("%s/%s: sem %s counters %+v, raw %+v",
						a.name, cfg.name, other, semCounters[other], semCounters["raw"])
				}
			}
		}
	}
}

// A SEM checkpoint taken mid-run resumes to the same final state and
// cumulative counters as the uninterrupted SEM run, on both v2 codecs.
func TestSemCheckpointResumeDifferential(t *testing.T) {
	edges := symmetrize(gen.Zipf(2500, 14000, 0.9, 82))
	type outcome struct {
		res core.Result
		st  []uint64
	}
	results := map[string]outcome{}
	for _, c := range []struct {
		name  string
		codec storage.Codec
	}{{"raw", storage.CodecRaw}, {"varint", storage.CodecVarint}, {"groupvarint", storage.CodecGroupVarint}} {
		gRef := convertCodec(t, edges, c.codec)
		refRes, refLabels, err := graphzalgo.ConnectedComponents(gRef, semRunOpts())
		if err != nil {
			t.Fatal(err)
		}
		checkSemShape(t, c.name+" reference", refRes)
		if refRes.Iterations < 3 {
			t.Fatalf("CC converged in %d iterations; too few to test mid-run resume", refRes.Iterations)
		}

		dir := t.TempDir()
		g := convertCodec(t, edges, c.codec)
		opts := semRunOpts()
		opts.Checkpoint = core.CheckpointOptions{Dir: dir, Every: 1, Keep: 1 << 20}
		if _, _, err := graphzalgo.ConnectedComponents(g, opts); err != nil {
			t.Fatal(err)
		}
		st, err := checkpoint.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		iters, err := st.Iterations()
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range iters {
			if it > refRes.Iterations/2 {
				os.RemoveAll(filepath.Join(dir, fmt.Sprintf("ckpt-%010d", it)))
			}
		}
		ropts := semRunOpts()
		ropts.Checkpoint = core.CheckpointOptions{Dir: dir, Every: 1, Resume: true}
		res, labels, err := graphzalgo.ConnectedComponents(g, ropts)
		if err != nil {
			t.Fatalf("%s resume: %v", c.name, err)
		}
		checkSemShape(t, c.name+" resumed", res)
		sameBits(t, c.name+" resumed-vs-uninterrupted", bits32(labels), bits32(refLabels))
		if countersOf(res) != countersOf(refRes) {
			t.Fatalf("%s: resumed counters %+v, uninterrupted %+v", c.name, countersOf(res), countersOf(refRes))
		}
		results[c.name] = outcome{res: res, st: bits32(labels)}
	}
	for _, name := range []string{"varint", "groupvarint"} {
		sameBits(t, "sem raw-vs-"+name+" after resume", results[name].st, results["raw"].st)
		if countersOf(results[name].res) != countersOf(results["raw"].res) {
			t.Fatalf("resume counters differ: %s %+v, raw %+v",
				name, countersOf(results[name].res), countersOf(results["raw"].res))
		}
	}
}
