package integration

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/checkpoint"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// dropCheckpointsAfter deletes every checkpoint past iteration k — the
// on-host state of a run that died during iteration k+1.
func dropCheckpointsAfter(t *testing.T, dir string, k int) {
	t.Helper()
	st, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	iters, err := st.Iterations()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range iters {
		if it > k {
			os.RemoveAll(filepath.Join(dir, fmt.Sprintf("ckpt-%010d", it)))
		}
	}
}

// The differential property behind the sort-reduce spill path: sorting
// spilled messages by destination is invisible to the algorithm. The
// sort and merge are stable, so per-destination arrival order — the only
// order Apply can observe — is preserved, and every run must produce
// byte-identical vertex states and identical counters against the
// arrival-order path. With Options.Combine the fold changes only HOW
// messages reach Apply: exact folds (CC's and SSSP's min) stay
// byte-identical; PageRank's float sums agree to tolerance, with the
// applied + combined counter invariant holding exactly everywhere.

// sortedCounters projects a Result onto the counters the sorted path may
// not change even when Combine folds applies away.
type sendSideCounters struct {
	iterations, partitions          int
	sent, inline, buffered, spilled int64
}

func sendSideOf(r core.Result) sendSideCounters {
	return sendSideCounters{
		iterations: r.Iterations, partitions: r.Partitions,
		sent: r.MessagesSent, inline: r.MessagesInline,
		buffered: r.MessagesBuffered, spilled: r.MessagesSpilled,
	}
}

func TestSortedSpillDifferential(t *testing.T) {
	algos := []struct {
		name         string
		exactCombine bool // Combine is a min fold: selects an operand bit-for-bit
		run          func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error)
	}{
		{"cc", true, func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error) {
			res, labels, err := graphzalgo.ConnectedComponents(g, opts)
			return res, bits32(labels), err
		}},
		{"sssp", true, func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error) {
			res, dists, err := graphzalgo.SSSP(g, opts, 0)
			return res, bitsF32(dists), err
		}},
		// PageRank's Combine sums floats: grouping changes rounding, so
		// combined states agree only to tolerance. Sorted WITHOUT Combine
		// must still be byte-identical — the order argument does not care
		// that Apply is order-sensitive arithmetic.
		{"pagerank", false, func(g *dos.Graph, opts core.Options) (core.Result, []uint64, error) {
			res, ranks, err := graphzalgo.PageRank(g, opts, 20, 0.85)
			return res, bitsF32(ranks), err
		}},
	}
	configs := []struct {
		name string
		mod  func(o core.Options) core.Options
	}{
		{"sequential", func(o core.Options) core.Options { return o }},
		{"workers4", func(o core.Options) core.Options { o.WorkerParallelism = 4; return o }},
		{"selective", func(o core.Options) core.Options { o.SelectiveScheduling = true; return o }},
	}
	graphs := []struct {
		name  string
		edges []graph.Edge
	}{
		{"zipf", symmetrize(gen.Zipf(3000, 16000, 0.9, 81))},
		{"rmat", symmetrize(gen.RMAT(11, 9000, gen.NaturalRMAT, 82))},
	}

	for _, gr := range graphs {
		g := convertCodec(t, gr.edges, nil)
		for _, a := range algos {
			for _, cfg := range configs {
				name := gr.name + "/" + a.name + "/" + cfg.name
				baseRes, baseSt, err := a.run(g, cfg.mod(tightCodecOpts(g, 8)))
				if err != nil {
					t.Fatalf("%s base: %v", name, err)
				}
				if baseRes.Partitions < 2 || baseRes.MessagesSpilled == 0 {
					t.Fatalf("%s: %d partitions, %d spills — budget too loose to test the spill path",
						name, baseRes.Partitions, baseRes.MessagesSpilled)
				}

				sopts := cfg.mod(tightCodecOpts(g, 8))
				sopts.SortedSpill = true
				sortRes, sortSt, err := a.run(g, sopts)
				if err != nil {
					t.Fatalf("%s sorted: %v", name, err)
				}
				// The headline property: sorted-without-Combine is
				// indistinguishable for EVERY program.
				sameBits(t, name+" sorted-vs-unsorted", sortSt, baseSt)
				if countersOf(sortRes) != countersOf(baseRes) {
					t.Fatalf("%s: sorted counters %+v, unsorted %+v", name, countersOf(sortRes), countersOf(baseRes))
				}
				if sortRes.MessagesCombined != 0 {
					t.Fatalf("%s: combined %d messages without the option", name, sortRes.MessagesCombined)
				}

				copts := cfg.mod(tightCodecOpts(g, 8))
				copts.Combine = true
				combRes, combSt, err := a.run(g, copts)
				if err != nil {
					t.Fatalf("%s combine: %v", name, err)
				}
				if sendSideOf(combRes) != sendSideOf(baseRes) {
					t.Fatalf("%s: combine moved send-side counters %+v, base %+v",
						name, sendSideOf(combRes), sendSideOf(baseRes))
				}
				// The counter invariant is exact for converging runs (CC,
				// SSSP: the run ends with no pending messages). PageRank
				// stops at MaxIterations with its last iteration's sends
				// spilled but never drained, and folds among those leftovers
				// count as combined without removing a base apply — so there
				// the balance only bounds.
				got := combRes.MessagesApplied + combRes.MessagesCombined
				if a.exactCombine {
					if got != baseRes.MessagesApplied {
						t.Fatalf("%s: applied %d + combined %d != base applied %d",
							name, combRes.MessagesApplied, combRes.MessagesCombined, baseRes.MessagesApplied)
					}
				} else {
					if combRes.MessagesApplied > baseRes.MessagesApplied || got < baseRes.MessagesApplied {
						t.Fatalf("%s: applied %d, combined %d out of bounds vs base applied %d",
							name, combRes.MessagesApplied, combRes.MessagesCombined, baseRes.MessagesApplied)
					}
				}
				if a.exactCombine {
					sameBits(t, name+" combine-vs-unsorted", combSt, baseSt)
				} else {
					for i := range baseSt {
						b := float64(math.Float32frombits(uint32(baseSt[i])))
						c := float64(math.Float32frombits(uint32(combSt[i])))
						if math.Abs(b-c) > 1e-3*(1+math.Abs(b)) {
							t.Fatalf("%s: state[%d] = %v combined, %v base", name, i, c, b)
						}
					}
				}
			}
		}
	}
}

// A sorted+combined run crash/resumed mid-flight must reproduce its own
// uninterrupted outcome exactly — runs.<p> checkpoint sections restore
// the sorted run boundaries — and the min-fold algorithms must still
// match the plain unsorted reference bit-for-bit.
func TestSortedCheckpointResumeDifferential(t *testing.T) {
	edges := symmetrize(gen.Zipf(2500, 14000, 0.9, 83))
	gPlain := convertCodec(t, edges, nil)
	_, plainLabels, err := graphzalgo.ConnectedComponents(gPlain, tightCodecOpts(gPlain, 8))
	if err != nil {
		t.Fatal(err)
	}

	gRef := convertCodec(t, edges, nil)
	refOpts := tightCodecOpts(gRef, 8)
	refOpts.Combine = true
	refRes, refLabels, err := graphzalgo.ConnectedComponents(gRef, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Iterations < 3 {
		t.Fatalf("CC converged in %d iterations; too few to test mid-run resume", refRes.Iterations)
	}
	sameBits(t, "combined-vs-plain", bits32(refLabels), bits32(plainLabels))

	dir := t.TempDir()
	g := convertCodec(t, edges, nil)
	opts := tightCodecOpts(g, 8)
	opts.Combine = true
	opts.Checkpoint = core.CheckpointOptions{Dir: dir, Every: 1, Keep: 1 << 20}
	if _, _, err := graphzalgo.ConnectedComponents(g, opts); err != nil {
		t.Fatal(err)
	}
	dropCheckpointsAfter(t, dir, refRes.Iterations/2)

	ropts := tightCodecOpts(g, 8)
	ropts.Combine = true
	ropts.Checkpoint = core.CheckpointOptions{Dir: dir, Every: 1, Resume: true}
	res, labels, err := graphzalgo.ConnectedComponents(g, ropts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	sameBits(t, "resumed-vs-uninterrupted", bits32(labels), bits32(refLabels))
	if countersOf(res) != countersOf(refRes) {
		t.Fatalf("resumed counters %+v, uninterrupted %+v", countersOf(res), countersOf(refRes))
	}
	if res.MessagesCombined != refRes.MessagesCombined {
		t.Fatalf("resumed combined %d, uninterrupted %d", res.MessagesCombined, refRes.MessagesCombined)
	}
}

// The acceptance bar from the issue: on a high-fan-in Zipf graph, the
// Combine fold measurably shrinks the drain — fewer applies, fewer
// device bytes written — while the min-fold states stay byte-identical.
func TestSortReduceAcceptance(t *testing.T) {
	// A skewed exponent funnels most edges into a few hot destinations.
	edges := gen.Zipf(4000, 60_000, 1.1, 84)
	g := convertCodec(t, edges, nil)

	// Spill buffers large enough that runs stay under the drain fan-in:
	// the IO comparison should measure the spill-time fold, not the
	// scratch traffic of intermediate merge passes that tiny buffers
	// would force on both sides of the ledger.
	acceptOpts := func() core.Options {
		vertexBytes := int64(g.NumVertices) * 8
		return core.Options{
			MemoryBudget:    6*storage.DefaultBlockSize + g.IndexBytes() + g.BlockTableBytes() + vertexBytes/3 + 4*4096,
			DynamicMessages: true,
			MsgBufferBytes:  4096,
		}
	}

	run := func(mod func(*core.Options)) (core.Result, []uint64, storage.Stats) {
		g.Device().ResetStats()
		opts := acceptOpts()
		mod(&opts)
		res, labels, err := graphzalgo.ConnectedComponents(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, bits32(labels), g.Device().Stats()
	}

	baseRes, baseSt, baseIO := run(func(*core.Options) {})
	if baseRes.MessagesSpilled == 0 {
		t.Fatal("no spills; the acceptance graph must cross partitions")
	}
	combRes, combSt, combIO := run(func(o *core.Options) { o.Combine = true })

	sameBits(t, "combine-vs-base", combSt, baseSt)
	if combRes.MessagesCombined == 0 {
		t.Fatal("hot-spot run combined nothing")
	}
	if combRes.MessagesApplied >= baseRes.MessagesApplied {
		t.Errorf("combine applied %d messages, base applied %d — no drain reduction",
			combRes.MessagesApplied, baseRes.MessagesApplied)
	}
	if combRes.SpillBytesSaved <= 0 {
		t.Errorf("SpillBytesSaved = %d, want > 0", combRes.SpillBytesSaved)
	}
	t.Logf("applies %d -> %d (combined %d), device writes %d -> %d B, saved %d B",
		baseRes.MessagesApplied, combRes.MessagesApplied, combRes.MessagesCombined,
		baseIO.WriteBytes, combIO.WriteBytes, combRes.SpillBytesSaved)
	if combIO.WriteBytes >= baseIO.WriteBytes {
		t.Errorf("combine wrote %d device bytes, base wrote %d — no IO reduction",
			combIO.WriteBytes, baseIO.WriteBytes)
	}
}
