package graphzalgo

import (
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/graph"
)

// prVal is the paper's PageRank VertexDataType (Algorithm 3): the current
// rank (A) and the votes accumulated from inbound messages (B).
type prVal = graph.F32Pair

// prProgram is the paper's Algorithm 4 with the damping of Equation 2:
// each update folds the accumulated votes into a new rank and scatters
// rank/degree votes to the out-neighbors; apply_message accumulates.
type prProgram struct {
	damping float32
}

func (prProgram) Init(id graph.VertexID, deg uint32) prVal {
	return prVal{A: 1}
}

func (p prProgram) Update(ctx *core.Context[float32], id graph.VertexID, v *prVal, adj []graph.VertexID) {
	if ctx.Iteration() > 0 {
		v.A = (1 - p.damping) + p.damping*v.B
		v.B = 0
	}
	if len(adj) == 0 {
		return
	}
	msg := v.A / float32(len(adj))
	for _, a := range adj {
		ctx.Send(a, msg)
	}
}

func (prProgram) Apply(v *prVal, m float32) {
	v.B += m
}

// Combine pre-sums rank mass headed to the same destination (the
// core.Combiner hook for Options.Combine). Float addition is only
// associative up to rounding, so combined runs match uncombined ones to
// float tolerance, not bit-for-bit.
func (prProgram) Combine(a, b float32) float32 { return a + b }

// PageRank runs the given number of damped PageRank iterations and
// returns the ranks by the graph's (degree-ordered) vertex ID. Ranks are
// unnormalized: they sum to roughly the vertex count, as in the paper's
// formulation.
func PageRank(g *dos.Graph, opts core.Options, iterations int, damping float32) (core.Result, []float32, error) {
	return pageRankLayout(core.DOSLayout(g), opts, iterations, damping)
}

// PageRankLayout is PageRank over an explicit layout; the Figure 7
// ablations use it to swap storage formats.
func PageRankLayout(l core.Layout, opts core.Options, iterations int, damping float32) (core.Result, []float32, error) {
	return pageRankLayout(l, opts, iterations, damping)
}

func pageRankLayout(l core.Layout, opts core.Options, iterations int, damping float32) (core.Result, []float32, error) {
	opts.MaxIterations = iterations
	res, vals, err := runLayout[prVal, float32](l, prProgram{damping: damping}, graph.F32PairCodec, graph.Float32Codec{}, opts)
	if err != nil {
		return core.Result{}, nil, err
	}
	// The rank folded during the final update is the result; votes
	// still in the accumulator are a partial round (only senders
	// ordered after the vertex have contributed) and must not be
	// folded.
	ranks := make([]float32, len(vals))
	for i, v := range vals {
		ranks[i] = v.A
	}
	return res, ranks, nil
}
