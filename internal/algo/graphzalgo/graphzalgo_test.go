package graphzalgo

import (
	"math"
	"testing"

	"graphz/internal/algo/plain"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// fixture converts a generated graph and returns it with its relabeled
// edges (new-ID space) for the plain references.
type fixture struct {
	g     *dos.Graph
	adj   *plain.Adjacency
	edges []graph.Edge // relabeled
}

func newFixture(t *testing.T, edges []graph.Edge) *fixture {
	t.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	o2n, err := g.OldToNew()
	if err != nil {
		t.Fatal(err)
	}
	rel := make([]graph.Edge, len(edges))
	for i, e := range edges {
		rel[i] = graph.Edge{Src: o2n[e.Src], Dst: o2n[e.Dst]}
	}
	return &fixture{g: g, adj: plain.BuildAdjacency(g.NumVertices, rel), edges: rel}
}

func bigOpts() core.Options {
	return core.Options{MemoryBudget: 64 << 20, DynamicMessages: true}
}

// tightOpts forces several partitions so cross-partition messaging is
// exercised.
func tightOpts(g *dos.Graph, vsize int) core.Options {
	vertexBytes := int64(g.NumVertices) * int64(vsize)
	return core.Options{
		// pipeline overhead (6 blocks) + index + a third of the
		// vertex state + message buffers
		MemoryBudget:    6*storage.DefaultBlockSize + g.IndexBytes() + vertexBytes/3 + 4*256,
		DynamicMessages: true,
		MsgBufferBytes:  256,
	}
}

func TestPageRankConvergesToPlainFixpoint(t *testing.T) {
	f := newFixture(t, gen.RMAT(9, 4000, gen.NaturalRMAT, 31))
	// The plain fixpoint after many synchronous iterations.
	want := plain.PageRank(f.adj, 100, 0.85)
	for _, opts := range []core.Options{bigOpts(), tightOpts(f.g, 8)} {
		res, ranks, err := PageRank(f.g, opts, 60, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != 60 {
			t.Errorf("iterations = %d, want 60", res.Iterations)
		}
		for i := range want {
			got := float64(ranks[i])
			if math.Abs(got-want[i]) > 1e-3*(1+want[i]) {
				t.Fatalf("partitions=%d: rank[%d] = %v, want %v", res.Partitions, i, got, want[i])
			}
		}
	}
}

func TestPageRankMassSane(t *testing.T) {
	f := newFixture(t, gen.Zipf(500, 5000, 0.8, 32))
	_, ranks, err := PageRank(f.g, bigOpts(), 30, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range ranks {
		if r < 0.1499 {
			t.Fatalf("rank %v below the (1-d) floor", r)
		}
		sum += float64(r)
	}
	// Unnormalized PR sums to at most N (dangling mass leaks).
	if sum <= 0 || sum > float64(f.g.NumVertices)+1 {
		t.Errorf("total rank mass = %v for %d vertices", sum, f.g.NumVertices)
	}
}

func TestBFSMatchesPlain(t *testing.T) {
	f := newFixture(t, gen.RMAT(9, 3000, gen.NaturalRMAT, 33))
	source := graph.VertexID(0) // highest-degree vertex in new-ID space
	want := plain.BFS(f.adj, source)
	for _, opts := range []core.Options{bigOpts(), tightOpts(f.g, 8)} {
		res, levels, err := BFS(f.g, opts, source)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if levels[i] != want[i] {
				t.Fatalf("partitions=%d: level[%d] = %d, want %d", res.Partitions, i, levels[i], want[i])
			}
		}
	}
}

func TestBFSUnreachedStaysUnreached(t *testing.T) {
	// Two disjoint edges; source reaches only one side.
	f := newFixture(t, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	_, levels, err := BFS(f.g, bigOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	reached := 0
	for _, l := range levels {
		if l != Unreached {
			reached++
		}
	}
	if reached != 2 {
		t.Errorf("reached %d vertices, want 2 (source + one neighbor)", reached)
	}
}

func TestConnectedComponentsMatchesPlain(t *testing.T) {
	// Symmetrize for weakly-connected components, as the harness does.
	base := gen.RMAT(8, 1200, gen.NaturalRMAT, 34)
	var edges []graph.Edge
	for _, e := range base {
		edges = append(edges, e, graph.Edge{Src: e.Dst, Dst: e.Src})
	}
	f := newFixture(t, edges)
	want := plain.ConnectedComponents(f.adj)
	for _, opts := range []core.Options{bigOpts(), tightOpts(f.g, 8)} {
		res, labels, err := ConnectedComponents(f.g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if labels[i] != want[i] {
				t.Fatalf("partitions=%d: label[%d] = %d, want %d", res.Partitions, i, labels[i], want[i])
			}
		}
	}
}

func TestSSSPMatchesPlain(t *testing.T) {
	f := newFixture(t, gen.RMAT(9, 3000, gen.NaturalRMAT, 35))
	source := graph.VertexID(0)
	want := plain.SSSP(f.adj, source)
	for _, opts := range []core.Options{bigOpts(), tightOpts(f.g, 8)} {
		res, dists, err := SSSP(f.g, opts, source)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			wi, gi := float64(want[i]), float64(dists[i])
			if math.IsInf(wi, 1) != math.IsInf(gi, 1) {
				t.Fatalf("partitions=%d: dist[%d] = %v, want %v", res.Partitions, i, gi, wi)
			}
			if !math.IsInf(wi, 1) && math.Abs(gi-wi) > 1e-4 {
				t.Fatalf("partitions=%d: dist[%d] = %v, want %v", res.Partitions, i, gi, wi)
			}
		}
	}
}

func TestSSSPTriangleInequalitySpot(t *testing.T) {
	// dist(source->v) <= dist(source->u) + w(u,v) for every edge.
	f := newFixture(t, gen.Zipf(200, 2000, 0.7, 36))
	_, dists, err := SSSP(f.g, bigOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range f.edges {
		du, dv := float64(dists[e.Src]), float64(dists[e.Dst])
		if math.IsInf(du, 1) {
			continue
		}
		if dv > du+float64(graph.EdgeWeight(e.Src, e.Dst))+1e-4 {
			t.Fatalf("relaxation missed on edge %v: %v > %v + w", e, dv, du)
		}
	}
}

func TestBeliefPropagationSanity(t *testing.T) {
	f := newFixture(t, gen.RMAT(8, 1500, gen.NaturalRMAT, 37))
	res, marg, err := BeliefPropagation(f.g, bigOpts(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 10 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	for i, p := range marg {
		if !(p >= 0 && p <= 1) || math.IsNaN(float64(p)) {
			t.Fatalf("marginal[%d] = %v outside [0,1]", i, p)
		}
	}
	// Deterministic.
	_, marg2, err := BeliefPropagation(f.g, bigOpts(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range marg {
		if marg[i] != marg2[i] {
			t.Fatal("BP not deterministic")
		}
	}
	// Messages must actually move beliefs away from the prior-only
	// marginals for connected vertices.
	moved := false
	prior := plain.BeliefPropagation(plain.BuildAdjacency(f.g.NumVertices, nil), 1)
	for i := range marg {
		if math.Abs(float64(marg[i]-prior[i])) > 1e-3 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("BP marginals identical to priors; messages had no effect")
	}
}

func TestRandomWalkConservation(t *testing.T) {
	f := newFixture(t, gen.RMAT(8, 1500, gen.NaturalRMAT, 38))
	const perVertex = 4
	total := uint32(f.g.NumVertices) * perVertex

	// Single partition, dynamic messages: every send applies
	// immediately, so conservation is exact.
	final, err := RandomWalkFinalWalkers(f.g, bigOpts(), 5, perVertex)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint32
	for _, w := range final {
		sum += w
	}
	if sum != total {
		t.Fatalf("walkers not conserved: %d, want %d", sum, total)
	}

	// Multi-partition: a MaxIterations stop can leave messages (and
	// their walkers) in flight in the spilled message store, so the
	// landed count is a lower bound that must never exceed the total.
	final, err = RandomWalkFinalWalkers(f.g, tightOpts(f.g, 12), 5, perVertex)
	if err != nil {
		t.Fatal(err)
	}
	sum = 0
	for _, w := range final {
		sum += w
	}
	if sum > total {
		t.Fatalf("walkers multiplied: %d > %d", sum, total)
	}
	if sum < total/2 {
		t.Fatalf("too many walkers in flight: %d of %d landed", sum, total)
	}
}

func TestRandomWalkVisits(t *testing.T) {
	f := newFixture(t, gen.RMAT(8, 1500, gen.NaturalRMAT, 39))
	res, visits, err := RandomWalk(f.g, bigOpts(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	var sum int64
	for _, v := range visits {
		sum += int64(v)
	}
	// Every walker contributes at least one visit per iteration it is
	// somewhere with walkers>0; at minimum the first iteration counts
	// everyone once.
	if sum < int64(f.g.NumVertices)*2 {
		t.Errorf("total visits = %d, want >= %d", sum, f.g.NumVertices*2)
	}
	// Determinism.
	_, visits2, err := RandomWalk(f.g, bigOpts(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range visits {
		if visits[i] != visits2[i] {
			t.Fatal("random walk not deterministic")
		}
	}
}

func TestAblationLayoutsAgree(t *testing.T) {
	// The same program over DOS and CSR layouts must compute the same
	// answer (IDs differ; compare by original ID).
	edges := gen.RMAT(8, 1200, gen.NaturalRMAT, 40)
	f := newFixture(t, edges)

	dev2 := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev2, "raw", edges); err != nil {
		t.Fatal(err)
	}
	cg, err := buildCSR(dev2, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}

	source := graph.VertexID(0)
	_, dosLevels, err := BFS(f.g, bigOpts(), source)
	if err != nil {
		t.Fatal(err)
	}
	n2o, err := f.g.NewToOld()
	if err != nil {
		t.Fatal(err)
	}
	// CSR keeps original IDs; the DOS source's original ID is n2o[0].
	_, csrLevels, err := BFSLayout(cg, bigOpts(), n2o[source])
	if err != nil {
		t.Fatal(err)
	}
	for newID, old := range n2o {
		if dosLevels[newID] != csrLevels[old] {
			t.Fatalf("vertex old=%d: DOS level %d, CSR level %d", old, dosLevels[newID], csrLevels[old])
		}
	}
}
