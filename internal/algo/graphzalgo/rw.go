package graphzalgo

import (
	"encoding/binary"

	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/graph"
)

// Random walk: every vertex launches a fixed number of walkers; each
// iteration, a vertex forwards its resident walkers to out-neighbors
// (spread evenly, with the remainder rotated by a deterministic hash so
// runs are reproducible), while dead-end walkers rest in place. The
// per-vertex visit counts approximate stationary popularity. Walkers are
// aggregated into per-neighbor counts, so messages carry multiplicity
// rather than one record per walker.

// rwVal tracks the walkers resident this iteration, the walkers arriving
// for the next one, and the total visits.
type rwVal struct {
	Walkers  uint32
	Incoming uint32
	Visits   uint32
}

type rwValCodec struct{}

func (rwValCodec) Size() int { return 12 }

func (rwValCodec) Encode(b []byte, v rwVal) {
	binary.LittleEndian.PutUint32(b, v.Walkers)
	binary.LittleEndian.PutUint32(b[4:], v.Incoming)
	binary.LittleEndian.PutUint32(b[8:], v.Visits)
}

func (rwValCodec) Decode(b []byte) rwVal {
	return rwVal{
		Walkers:  binary.LittleEndian.Uint32(b),
		Incoming: binary.LittleEndian.Uint32(b[4:]),
		Visits:   binary.LittleEndian.Uint32(b[8:]),
	}
}

// rwHash mixes (vertex, iteration) into a rotation offset.
func rwHash(id graph.VertexID, iter int) uint64 {
	x := uint64(id)<<32 ^ uint64(uint32(iter))
	x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
	x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

type rwProgram struct {
	walkersPerVertex uint32
}

func (p rwProgram) Init(id graph.VertexID, deg uint32) rwVal {
	return rwVal{Walkers: p.walkersPerVertex}
}

func (p rwProgram) Update(ctx *core.Context[uint32], id graph.VertexID, v *rwVal, adj []graph.VertexID) {
	if ctx.Iteration() > 0 {
		v.Walkers = v.Incoming
		v.Incoming = 0
	}
	if v.Walkers == 0 {
		return
	}
	v.Visits += v.Walkers
	ndeg := uint32(len(adj))
	if ndeg == 0 {
		// Dead end: walkers rest in place until the run ends.
		v.Incoming += v.Walkers
		return
	}
	base := v.Walkers / ndeg
	extra := v.Walkers % ndeg
	start := uint32(rwHash(id, ctx.Iteration()) % uint64(ndeg))
	for i, a := range adj {
		n := base
		// The `extra` neighbors starting at the rotated offset
		// receive one additional walker.
		if d := (uint32(i) + ndeg - start) % ndeg; d < extra {
			n++
		}
		if n > 0 {
			ctx.Send(a, n)
		}
	}
}

func (rwProgram) Apply(v *rwVal, m uint32) {
	v.Incoming += m
}

// RandomWalk runs the given number of steps with walkersPerVertex walkers
// starting at every vertex, returning per-vertex visit counts.
func RandomWalk(g *dos.Graph, opts core.Options, iterations int, walkersPerVertex uint32) (core.Result, []uint32, error) {
	return randomWalkLayout(core.DOSLayout(g), opts, iterations, walkersPerVertex)
}

// RandomWalkLayout is RandomWalk over an explicit layout (for the
// ablations).
func RandomWalkLayout(l core.Layout, opts core.Options, iterations int, walkersPerVertex uint32) (core.Result, []uint32, error) {
	return randomWalkLayout(l, opts, iterations, walkersPerVertex)
}

func randomWalkLayout(l core.Layout, opts core.Options, iterations int, walkersPerVertex uint32) (core.Result, []uint32, error) {
	opts.MaxIterations = iterations
	res, vals, err := runLayout[rwVal, uint32](l, rwProgram{walkersPerVertex: walkersPerVertex}, rwValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		return core.Result{}, nil, err
	}
	visits := make([]uint32, len(vals))
	for i, v := range vals {
		visits[i] = v.Visits
	}
	return res, visits, nil
}

// RandomWalkFinalWalkers exposes where the walkers sit after the last
// step (the Incoming field), for conservation checks and examples.
func RandomWalkFinalWalkers(g *dos.Graph, opts core.Options, iterations int, walkersPerVertex uint32) ([]uint32, error) {
	opts.MaxIterations = iterations
	_, vals, err := run[rwVal, uint32](g, rwProgram{walkersPerVertex: walkersPerVertex}, rwValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, len(vals))
	for i, v := range vals {
		out[i] = v.Incoming
	}
	return out, nil
}
