package graphzalgo

import (
	"encoding/binary"
	"math"

	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/graph"
)

// Belief propagation on a pairwise two-state Markov random field in the
// log domain. Node priors derive from a vertex-ID hash and pairwise
// potentials from graph.EdgeCoupling, standing in for the paper's
// per-edge input data (DESIGN.md substitutions). Messages carry the
// per-state log-likelihood a sender contributes to its out-neighbor.

// bpVal is the vertex's normalized log-belief plus the accumulator for
// inbound messages.
type bpVal struct {
	B0, B1 float32 // log-belief per state
	A0, A1 float32 // accumulated inbound log-messages
}

type bpValCodec struct{}

func (bpValCodec) Size() int { return 16 }

func (bpValCodec) Encode(b []byte, v bpVal) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v.B0))
	binary.LittleEndian.PutUint32(b[4:], math.Float32bits(v.B1))
	binary.LittleEndian.PutUint32(b[8:], math.Float32bits(v.A0))
	binary.LittleEndian.PutUint32(b[12:], math.Float32bits(v.A1))
}

func (bpValCodec) Decode(b []byte) bpVal {
	return bpVal{
		B0: math.Float32frombits(binary.LittleEndian.Uint32(b)),
		B1: math.Float32frombits(binary.LittleEndian.Uint32(b[4:])),
		A0: math.Float32frombits(binary.LittleEndian.Uint32(b[8:])),
		A1: math.Float32frombits(binary.LittleEndian.Uint32(b[12:])),
	}
}

// bpMsg is a two-state log-message.
type bpMsg struct {
	M0, M1 float32
}

type bpMsgCodec struct{}

func (bpMsgCodec) Size() int { return 8 }

func (bpMsgCodec) Encode(b []byte, m bpMsg) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(m.M0))
	binary.LittleEndian.PutUint32(b[4:], math.Float32bits(m.M1))
}

func (bpMsgCodec) Decode(b []byte) bpMsg {
	return bpMsg{
		M0: math.Float32frombits(binary.LittleEndian.Uint32(b)),
		M1: math.Float32frombits(binary.LittleEndian.Uint32(b[4:])),
	}
}

// bpPrior derives a deterministic log-prior for a vertex.
func bpPrior(id graph.VertexID) (float32, float32) {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	p := 0.2 + 0.6*float64(x&0xFFFFFF)/float64(1<<24)
	return float32(math.Log(p)), float32(math.Log(1 - p))
}

// logAdd returns log(exp(a)+exp(b)) stably.
func logAdd(a, b float32) float32 {
	if a < b {
		a, b = b, a
	}
	return a + float32(math.Log1p(math.Exp(float64(b-a))))
}

type bpProgram struct{}

func (bpProgram) Init(id graph.VertexID, deg uint32) bpVal {
	p0, p1 := bpPrior(id)
	return bpVal{B0: p0, B1: p1}
}

func (bpProgram) Update(ctx *core.Context[bpMsg], id graph.VertexID, v *bpVal, adj []graph.VertexID) {
	if ctx.Iteration() > 0 {
		p0, p1 := bpPrior(id)
		// Damped update (lambda = 0.5): geometric mixing with the
		// previous belief prevents parallel loopy BP's period-2
		// oscillation, so all engines converge to one fixpoint.
		n0 := p0 + v.A0
		n1 := p1 + v.A1
		z := logAdd(n0, n1)
		v.B0 = 0.5*(n0-z) + 0.5*v.B0
		v.B1 = 0.5*(n1-z) + 0.5*v.B1
		z = logAdd(v.B0, v.B1)
		v.B0 -= z
		v.B1 -= z
		v.A0, v.A1 = 0, 0
	}
	for _, a := range adj {
		c := graph.EdgeCoupling(id, a) // P(same state)
		same := float32(math.Log(c))
		diff := float32(math.Log(1 - c))
		m := bpMsg{
			M0: logAdd(v.B0+same, v.B1+diff),
			M1: logAdd(v.B0+diff, v.B1+same),
		}
		z := logAdd(m.M0, m.M1)
		m.M0 -= z
		m.M1 -= z
		ctx.Send(a, m)
	}
}

func (bpProgram) Apply(v *bpVal, m bpMsg) {
	v.A0 += m.M0
	v.A1 += m.M1
}

// BeliefPropagation runs the given number of loopy BP iterations and
// returns each vertex's marginal probability of state 1.
func BeliefPropagation(g *dos.Graph, opts core.Options, iterations int) (core.Result, []float32, error) {
	return bpLayout(core.DOSLayout(g), opts, iterations)
}

// BeliefPropagationLayout is BP over an explicit layout (for the
// ablations).
func BeliefPropagationLayout(l core.Layout, opts core.Options, iterations int) (core.Result, []float32, error) {
	return bpLayout(l, opts, iterations)
}

func bpLayout(l core.Layout, opts core.Options, iterations int) (core.Result, []float32, error) {
	opts.MaxIterations = iterations
	res, vals, err := runLayout[bpVal, bpMsg](l, bpProgram{}, bpValCodec{}, bpMsgCodec{}, opts)
	if err != nil {
		return core.Result{}, nil, err
	}
	marginals := make([]float32, len(vals))
	for i, v := range vals {
		// The belief folded during the final update is the result;
		// accumulator contents are a partial round.
		m := v.B0
		if v.B1 > m {
			m = v.B1
		}
		e0 := math.Exp(float64(v.B0 - m))
		e1 := math.Exp(float64(v.B1 - m))
		marginals[i] = float32(e1 / (e0 + e1))
	}
	return res, marginals, nil
}
