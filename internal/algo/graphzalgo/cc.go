package graphzalgo

import (
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/graph"
)

// ccVal holds a vertex's component label (A) and the smallest label its
// inbound messages have proposed (B).
type ccVal = graph.U32Pair

// ccProgram propagates the minimum vertex ID along out-edges until
// fixpoint. On a symmetrized graph (each edge stored in both directions,
// which is how the harness prepares CC inputs) the fixpoint labels are
// the weakly-connected components.
type ccProgram struct{}

func (ccProgram) Init(id graph.VertexID, deg uint32) ccVal {
	return ccVal{A: uint32(id), B: uint32(id)}
}

func (ccProgram) Update(ctx *core.Context[uint32], id graph.VertexID, v *ccVal, adj []graph.VertexID) {
	if ctx.Iteration() == 0 {
		for _, a := range adj {
			ctx.Send(a, v.A)
		}
		return
	}
	if v.B < v.A {
		v.A = v.B
		ctx.MarkActive()
		for _, a := range adj {
			ctx.Send(a, v.A)
		}
	}
}

func (ccProgram) Apply(v *ccVal, m uint32) {
	if m < v.B {
		v.B = m
	}
}

// Combine folds same-destination label proposals into their minimum (the
// core.Combiner hook for Options.Combine). Min is an exact fold, so
// combined runs stay byte-identical.
func (ccProgram) Combine(a, b uint32) uint32 {
	if b < a {
		return b
	}
	return a
}

// ConnectedComponents labels every vertex with the smallest vertex ID
// that reaches it, running until quiescent. Symmetrize the graph first
// for weakly-connected components.
func ConnectedComponents(g *dos.Graph, opts core.Options) (core.Result, []uint32, error) {
	return ccLayout(core.DOSLayout(g), opts)
}

// ConnectedComponentsLayout is CC over an explicit layout (for the
// ablations).
func ConnectedComponentsLayout(l core.Layout, opts core.Options) (core.Result, []uint32, error) {
	return ccLayout(l, opts)
}

func ccLayout(l core.Layout, opts core.Options) (core.Result, []uint32, error) {
	res, vals, err := runLayout[ccVal, uint32](l, ccProgram{}, graph.U32PairCodec, graph.Uint32Codec{}, opts)
	if err != nil {
		return core.Result{}, nil, err
	}
	labels := make([]uint32, len(vals))
	for i, v := range vals {
		labels[i] = v.A
	}
	return res, labels, nil
}
