// Package graphzalgo implements the paper's six benchmark algorithms —
// PageRank, BFS, Connected Components, SSSP, Belief Propagation, and
// Random Walk — in GraphZ's programming model (a VertexDataType, a
// MessageDataType, update(), and apply_message(); paper Section IV).
//
// Each algorithm lives in its own file so the repository's LOC
// comparisons (paper Tables I and IX) can count exactly the code a user
// would write.
package graphzalgo

import (
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/graph"
)

// run wires a program into the engine over a degree-ordered graph and
// executes it.
func run[V, M any](g *dos.Graph, prog core.Program[V, M], vc graph.Codec[V], mc graph.Codec[M], opts core.Options) (core.Result, []V, error) {
	eng, err := core.New[V, M](core.DOSLayout(g), prog, vc, mc, opts)
	if err != nil {
		return core.Result{}, nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return core.Result{}, nil, err
	}
	vals, err := eng.Values()
	if err != nil {
		return core.Result{}, nil, err
	}
	eng.Cleanup()
	return res, vals, nil
}

// runLayout is run for a caller-chosen layout (used by the Figure 7
// ablations, which swap degree-ordered storage for CSR).
func runLayout[V, M any](l core.Layout, prog core.Program[V, M], vc graph.Codec[V], mc graph.Codec[M], opts core.Options) (core.Result, []V, error) {
	eng, err := core.New[V, M](l, prog, vc, mc, opts)
	if err != nil {
		return core.Result{}, nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return core.Result{}, nil, err
	}
	vals, err := eng.Values()
	if err != nil {
		return core.Result{}, nil, err
	}
	eng.Cleanup()
	return res, vals, nil
}
