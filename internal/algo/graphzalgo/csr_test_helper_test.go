package graphzalgo

import (
	"graphz/internal/core"
	"graphz/internal/csr"
	"graphz/internal/storage"
)

// buildCSR builds a CSR layout for ablation tests.
func buildCSR(dev *storage.Device, edgeFile, prefix string) (core.Layout, error) {
	g, err := csr.Build(csr.BuildConfig{Dev: dev}, edgeFile, prefix)
	if err != nil {
		return nil, err
	}
	return core.CSRLayout(g), nil
}
