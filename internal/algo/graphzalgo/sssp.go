package graphzalgo

import (
	"math"

	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/graph"
)

// Inf32 marks an unreached SSSP vertex.
var Inf32 = float32(math.Inf(1))

// ssspVal holds the settled distance (A) and the best relaxation proposed
// by inbound messages (B).
type ssspVal = graph.F32Pair

// ssspProgram relaxes edges Bellman-Ford style; edge weights come from
// the deterministic per-edge hash (see graph.EdgeWeight and DESIGN.md's
// substitution note).
type ssspProgram struct {
	source graph.VertexID
}

func (p ssspProgram) Init(id graph.VertexID, deg uint32) ssspVal {
	if id == p.source {
		return ssspVal{A: Inf32, B: 0}
	}
	return ssspVal{A: Inf32, B: Inf32}
}

func (p ssspProgram) Update(ctx *core.Context[float32], id graph.VertexID, v *ssspVal, adj []graph.VertexID) {
	if v.B < v.A {
		v.A = v.B
		ctx.MarkActive()
		for _, a := range adj {
			ctx.Send(a, v.A+graph.EdgeWeight(id, a))
		}
	}
}

func (ssspProgram) Apply(v *ssspVal, m float32) {
	if m < v.B {
		v.B = m
	}
}

// Combine folds same-destination distance proposals into their minimum
// (the core.Combiner hook for Options.Combine). Min selects one operand
// bit-for-bit — no arithmetic — so even float distances stay
// byte-identical under combining.
func (ssspProgram) Combine(a, b float32) float32 {
	if b < a {
		return b
	}
	return a
}

// SSSP computes single-source shortest path distances from source (in
// the graph's ID space) with hash-derived positive edge weights, running
// until quiescent. Unreached vertices report +Inf.
func SSSP(g *dos.Graph, opts core.Options, source graph.VertexID) (core.Result, []float32, error) {
	return ssspLayout(core.DOSLayout(g), opts, source)
}

// SSSPLayout is SSSP over an explicit layout (for the ablations).
func SSSPLayout(l core.Layout, opts core.Options, source graph.VertexID) (core.Result, []float32, error) {
	return ssspLayout(l, opts, source)
}

func ssspLayout(l core.Layout, opts core.Options, source graph.VertexID) (core.Result, []float32, error) {
	res, vals, err := runLayout[ssspVal, float32](l, ssspProgram{source: source}, graph.F32PairCodec, graph.Float32Codec{}, opts)
	if err != nil {
		return core.Result{}, nil, err
	}
	dists := make([]float32, len(vals))
	for i, v := range vals {
		dists[i] = v.A
	}
	return res, dists, nil
}
