package graphzalgo

import (
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/graph"
)

// Unreached marks a vertex BFS has not visited.
const Unreached = uint32(0xFFFFFFFF)

// bfsVal follows the paper's BFS description (Section IV-A): the current
// level (A) and a possible value change delivered by messages (B).
type bfsVal = graph.U32Pair

type bfsProgram struct {
	source graph.VertexID
}

func (p bfsProgram) Init(id graph.VertexID, deg uint32) bfsVal {
	if id == p.source {
		return bfsVal{A: Unreached, B: 0}
	}
	return bfsVal{A: Unreached, B: Unreached}
}

func (p bfsProgram) Update(ctx *core.Context[uint32], id graph.VertexID, v *bfsVal, adj []graph.VertexID) {
	if v.B < v.A {
		v.A = v.B
		ctx.MarkActive()
		next := v.A + 1
		for _, a := range adj {
			ctx.Send(a, next)
		}
	}
}

func (bfsProgram) Apply(v *bfsVal, m uint32) {
	if m < v.B {
		v.B = m
	}
}

// Combine folds same-destination hop counts into their minimum (the
// core.Combiner hook for Options.Combine); exact, so combined runs stay
// byte-identical.
func (bfsProgram) Combine(a, b uint32) uint32 {
	if b < a {
		return b
	}
	return a
}

// BFS computes hop counts from source (in the graph's ID space) along
// out-edges, running until quiescent. Unreached vertices report
// Unreached.
func BFS(g *dos.Graph, opts core.Options, source graph.VertexID) (core.Result, []uint32, error) {
	return bfsLayout(core.DOSLayout(g), opts, source)
}

// BFSLayout is BFS over an explicit layout (for the ablations).
func BFSLayout(l core.Layout, opts core.Options, source graph.VertexID) (core.Result, []uint32, error) {
	return bfsLayout(l, opts, source)
}

func bfsLayout(l core.Layout, opts core.Options, source graph.VertexID) (core.Result, []uint32, error) {
	res, vals, err := runLayout[bfsVal, uint32](l, bfsProgram{source: source}, graph.U32PairCodec, graph.Uint32Codec{}, opts)
	if err != nil {
		return core.Result{}, nil, err
	}
	levels := make([]uint32, len(vals))
	for i, v := range vals {
		levels[i] = v.A
	}
	return res, levels, nil
}
