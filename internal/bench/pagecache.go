package bench

import (
	"fmt"
	"time"

	"graphz/internal/csr"
	"graphz/internal/dos"
	"graphz/internal/graph"
	"graphz/internal/graphchi"
	"graphz/internal/obs"
	"graphz/internal/sim"
	"graphz/internal/storage"
	"graphz/internal/xstream"
)

// PhysicalRAMAnalog is the page-cache size of the sensitivity experiment:
// the testbed's 16 GB of physical RAM, scaled like the budgets.
const PhysicalRAMAnalog = Mem16

// PageCacheSensitivity quantifies how much of the engine gaps the OS page
// cache explains: the paper's machine cached most of a graph's pages in
// its physical RAM, which the mainline experiments (cache off,
// conservative) deny to every engine. GraphChi's PSW re-reads shards
// within and across iterations, so it recovers the most.
func PageCacheSensitivity() string {
	var rows [][]string
	for _, a := range []Algo{PR, BFS} {
		for _, e := range []Engine{GraphChi, XStream, GraphZ} {
			plain := Run(RunConfig{Scale: Large, Algo: a, Engine: e, Kind: storage.SSD, Budget: Mem8})
			cached, hits := runWithPageCache(Large, a, e, storage.SSD, Mem8)
			if plain.Failed() || cached == 0 {
				rows = append(rows, []string{string(a), string(e), "FAIL", "FAIL", "-", "-"})
				continue
			}
			rows = append(rows, []string{
				string(a), string(e),
				fmtDur(plain.Runtime), fmtDur(cached),
				fmt.Sprintf("%.2fx", float64(plain.Runtime)/float64(cached)),
				fmt.Sprint(hits),
			})
		}
	}
	return FormatTable(
		fmt.Sprintf("Page-cache sensitivity: large graph, SSD, %s budget, %s OS cache",
			MemLabel(Mem8), MemLabel(PhysicalRAMAnalog)),
		[]string{"benchmark", "engine", "no cache", "with cache", "speedup", "page hits"}, rows)
}

// runWithPageCache preps and runs one cell on a fresh cache-enabled
// device (not memoized; the cache state is run-specific).
func runWithPageCache(s Scale, a Algo, e Engine, kind storage.Kind, budget int64) (time.Duration, int64) {
	clock := sim.NewClock()
	dev := storage.NewDevice(kind, storage.Options{
		PageCacheBytes: PhysicalRAMAnalog,
	})
	edges := EdgesFor(s, a == CC)
	if err := graph.WriteEdges(dev, RawEdgeFile, edges); err != nil {
		return 0, 0
	}
	var err error
	switch formatFor(e) {
	case FormatDOS:
		_, err = dos.Convert(dos.ConvertConfig{Dev: dev, MemoryBudget: budget / 4, RemoveInput: true}, RawEdgeFile, Prefix)
	case FormatCSR:
		_, err = csr.Build(csr.BuildConfig{Dev: dev, MemoryBudget: budget / 4}, RawEdgeFile, Prefix)
	case FormatChi:
		_, err = graphchi.Shard(graphchi.ShardConfig{Dev: dev, MemoryBudget: budget, EdgeValSize: evalSizeFor(a)}, RawEdgeFile, Prefix)
	case FormatXS:
		_, err = xstream.Partition(xstream.PartitionConfig{Dev: dev, MemoryBudget: budget}, RawEdgeFile, Prefix)
	}
	if err != nil {
		return 0, 0
	}
	dev.ResetStats()
	dev.SetClock(clock)
	out := Outcome{Config: RunConfig{Scale: s, Algo: a, Engine: e, Kind: kind, Budget: budget}}
	reg := obs.NewRegistry()
	tr := obs.NewCollectingTracer(nil)
	switch e {
	case GraphChi:
		err = runGraphChi(out.Config, dev, clock, reg, tr, &out)
	case XStream:
		err = runXStream(out.Config, dev, clock, reg, tr, &out)
	default:
		err = runGraphZ(out.Config, dev, clock, reg, tr, &out)
	}
	if err != nil {
		return 0, 0
	}
	return clock.Total(), dev.Stats().CacheHits
}
