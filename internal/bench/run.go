package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"graphz/internal/algo/chialgo"
	"graphz/internal/algo/xsalgo"
	"graphz/internal/core"
	"graphz/internal/csr"
	"graphz/internal/dos"
	"graphz/internal/energy"
	"graphz/internal/graph"
	"graphz/internal/graphchi"
	"graphz/internal/obs"
	"graphz/internal/sim"
	"graphz/internal/storage"
	"graphz/internal/xstream"
)

// Algo names one of the paper's six benchmark algorithms.
type Algo string

// The six benchmarks of Section VI-A.
const (
	PR   Algo = "PR"
	BFS  Algo = "BFS"
	CC   Algo = "CC"
	SSSP Algo = "SSSP"
	BP   Algo = "BP"
	RW   Algo = "RW"
)

// Algos orders the benchmarks as the paper's figures do.
var Algos = []Algo{BFS, CC, PR, RW, SSSP, BP}

// Engine names a system under test.
type Engine string

// The systems of the evaluation, including the Figure 7 ablations.
const (
	GraphZ          Engine = "GraphZ"
	GraphZNoDOS     Engine = "GraphZ-noDOS"      // CSR layout, dynamic messages
	GraphZNoDOSNoDM Engine = "GraphZ-noDOS-noDM" // CSR layout, static messages
	GraphChi        Engine = "GraphChi"
	XStream         Engine = "X-Stream"
)

// Fixed algorithm parameters shared by every engine.
const (
	prIterations = 10
	prDamping    = 0.85
	bpIterations = 8
	rwIterations = 8
	rwWalkers    = 1
	// convergence caps keep pathological BSP runs bounded
	maxConvergeIters = 200
)

// RunConfig selects one cell of the evaluation matrix.
type RunConfig struct {
	Scale  Scale
	Algo   Algo
	Engine Engine
	Kind   storage.Kind
	Budget int64
	// Workers sets the GraphZ engines' Worker-stage parallelism
	// (core.Options.WorkerParallelism); 0 or 1 keeps the sequential
	// Worker. Results are bit-identical across settings, so it is a
	// pure performance knob — and part of the memo key.
	Workers int
	// CheckpointEvery enables GraphZ iteration-boundary checkpointing
	// to a throwaway host directory every N iterations (0 disables).
	// Results are identical with or without it — checkpoints only read
	// engine state — so it isolates the durability overhead the
	// checkpoint table reports. Part of the memo key.
	CheckpointEvery int
	// Selective enables GraphZ selective block scheduling
	// (core.Options.SelectiveScheduling): adjacency blocks with no
	// active vertex and no pending message are skipped. Final states are
	// byte-identical for the frontier-safe benchmarks; the saved IO
	// shows up in Runtime/IO and the BlocksSkipped column. Part of the
	// memo key.
	Selective bool
	// Sem selects the GraphZ engines' semi-external-memory mode
	// (core.Options.SemiExternal): core.SemAuto (zero value) detects,
	// core.SemOn forces states-resident inline apply, core.SemOff keeps
	// the partitioned path. Final states are identical for converged
	// runs; what changes is the message routing (zero buffered/spilled
	// under SEM) and the runtime. Part of the memo key.
	Sem core.SemMode
	// Codec selects the DOS adjacency block codec for the GraphZ engine:
	// "raw" or "varint" preps the v2 block-encoded format, "" keeps v1.
	// Final states are byte-identical across codecs (the two v2 codecs
	// even share the adjacency order); what changes is the device bytes
	// read, reported in the CodecBytes columns. Ignored by the CSR/
	// GraphChi/X-Stream engines. Part of the memo key.
	Codec string
}

// Outcome is everything the tables and figures report about one run.
type Outcome struct {
	Config     RunConfig
	Err        error
	Runtime    time.Duration
	Compute    time.Duration
	IO         time.Duration
	PrepTime   time.Duration
	Stats      storage.Stats
	Energy     energy.Report
	Iterations int
	IndexBytes int64
	Spilled    int64 // GraphZ engines: messages spilled to the device
	Inline     int64 // GraphZ engines: messages applied inline (ordered dynamic)
	// SemiExternal reports the GraphZ run took the semi-external-memory
	// fast path (states resident, zero spill).
	SemiExternal bool
	// SpillErrors counts spill failures the engine observed (GraphZ
	// engines; the first failure aborts the run).
	SpillErrors int64
	// Stages is the per-pipeline-stage wall-clock breakdown reported by
	// the engine's observability layer.
	Stages obs.StageTimes
	// Checkpoint accounting (GraphZ engines with CheckpointEvery > 0).
	Checkpoints     int64
	CheckpointBytes int64
	CheckpointTime  time.Duration
	// Selective-scheduling accounting (GraphZ engines with Selective).
	BlocksScanned int64
	BlocksSkipped int64
	// Adjacency-codec accounting (GraphZ engine with Codec set): decoded
	// bytes produced vs encoded bytes read, and the decode wall clock.
	CodecBytesRaw     int64
	CodecBytesEncoded int64
	DecodeTime        time.Duration
	// Report is the run's full profiling artifact — stage spans, per-
	// iteration snapshots, memory timeline, block heatmap, per-file IO —
	// built from the same registry the scalar fields above summarize.
	// Nil on failed runs.
	Report *obs.RunReport
}

// Failed reports whether the run could not execute (index too large,
// device out of space, ...). A failed outcome carries no measurements.
func (o Outcome) Failed() bool { return o.Err != nil }

var (
	srcMu   sync.Mutex
	srcMemo = map[string]graph.VertexID{}
)

// sourceFor memoizes the shared BFS/SSSP source (the max-out-degree
// vertex, which degree-ordered storage relabels to new ID 0).
func sourceFor(s Scale) graph.VertexID {
	srcMu.Lock()
	defer srcMu.Unlock()
	if v, ok := srcMemo[s.Name]; ok {
		return v
	}
	v := MaxDegreeVertex(EdgesFor(s, false))
	srcMemo[s.Name] = v
	return v
}

// evalSizeFor returns the GraphChi edge-value size an algorithm needs.
func evalSizeFor(a Algo) int {
	if a == BP {
		return 8
	}
	return 4
}

// formatFor maps an engine to its storage format.
func formatFor(e Engine) Format {
	switch e {
	case GraphZ:
		return FormatDOS
	case GraphZNoDOS, GraphZNoDOSNoDM:
		return FormatCSR
	case GraphChi:
		return FormatChi
	case XStream:
		return FormatXS
	}
	return ""
}

var (
	runMu   sync.Mutex
	runMemo = map[RunConfig]Outcome{}
)

// Run executes one configuration and reports the outcome, memoizing it —
// the experiments share many cells (Figure 8 reuses Figure 6's runs, and
// so on), and every run is deterministic. Preprocessing is memoized
// separately and its cost reported on its own (as the paper's Table XII
// does); Runtime covers only the algorithm execution.
func Run(cfg RunConfig) Outcome {
	// Devices and their clocks are stateful; serialize runs.
	runMu.Lock()
	defer runMu.Unlock()
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	if o, ok := runMemo[cfg]; ok {
		return o
	}
	o := runLocked(cfg)
	runMemo[cfg] = o
	return o
}

func runLocked(cfg RunConfig) Outcome {
	out := Outcome{Config: cfg}
	sym := cfg.Algo == CC
	// GraphChi's per-vertex degree index must be resident; when it
	// cannot fit, the run is doomed regardless of preprocessing, so
	// fail fast without sharding (the engine would reject it anyway).
	if cfg.Engine == GraphChi {
		indexBytes := (int64(StatsFor(cfg.Scale).MaxID) + 1) * 8
		if indexBytes >= cfg.Budget {
			out.IndexBytes = indexBytes
			out.Err = fmt.Errorf("%w: index %d B, budget %d B",
				graphchi.ErrMemoryBudget, indexBytes, cfg.Budget)
			return out
		}
	}
	codec := ""
	if formatFor(cfg.Engine) == FormatDOS {
		codec = cfg.Codec
	}
	prep := Prep(cfg.Scale, formatFor(cfg.Engine), cfg.Kind, evalSizeFor(cfg.Algo), sym, codec)
	out.PrepTime = prep.Time
	if prep.Err != nil {
		out.Err = fmt.Errorf("preprocessing: %w", prep.Err)
		return out
	}

	clock := sim.NewClock()
	dev := prep.Dev
	dev.ResetStats()
	dev.SetClock(clock)
	defer dev.SetClock(nil)

	reg := obs.NewRegistry()
	tr := obs.NewCollectingTracer(nil) // in-memory spans for the run report
	var err error
	switch cfg.Engine {
	case GraphZ, GraphZNoDOS, GraphZNoDOSNoDM:
		err = runGraphZ(cfg, dev, clock, reg, tr, &out)
	case GraphChi:
		err = runGraphChi(cfg, dev, clock, reg, tr, &out)
	case XStream:
		err = runXStream(cfg, dev, clock, reg, tr, &out)
	default:
		err = fmt.Errorf("bench: unknown engine %q", cfg.Engine)
	}
	if err != nil {
		out.Err = err
		return out
	}
	out.Runtime = clock.Total()
	out.Compute = clock.TotalCompute()
	out.IO = clock.TotalIO()
	out.Stats = dev.Stats()
	out.Energy = energy.Measure(clock, cfg.Kind)
	out.Report = obs.BuildReport(obs.ReportInfo{
		Engine:      string(cfg.Engine),
		Algo:        string(cfg.Algo),
		Device:      cfg.Kind.String(),
		BudgetBytes: cfg.Budget,
		Config: map[string]string{
			"scale":     cfg.Scale.Name,
			"workers":   fmt.Sprint(cfg.Workers),
			"selective": fmt.Sprint(cfg.Selective),
			"sem":       cfg.Sem.String(),
			"codec":     cfg.Codec,
		},
	}, reg, tr, core.DeviceFileIO(dev))
	return out
}

// runGraphZ dispatches the six algorithms on the core engine over the
// configured layout and message mode.
func runGraphZ(cfg RunConfig, dev *storage.Device, clock *sim.Clock, reg *obs.Registry, tr *obs.Tracer, out *Outcome) error {
	var layout core.Layout
	switch cfg.Engine {
	case GraphZ:
		g, err := dos.Load(dev, Prefix)
		if err != nil {
			return err
		}
		layout = core.DOSLayout(g)
	default:
		g, err := csr.Load(dev, Prefix)
		if err != nil {
			return err
		}
		layout = core.CSRLayout(g)
	}
	out.IndexBytes = layout.IndexBytes()
	opts := core.Options{
		MemoryBudget:        cfg.Budget,
		Clock:               clock,
		DynamicMessages:     cfg.Engine != GraphZNoDOSNoDM,
		SemiExternal:        cfg.Sem,
		WorkerParallelism:   cfg.Workers,
		SelectiveScheduling: cfg.Selective,
		Obs:                 reg,
		Trace:               tr,
	}
	if cfg.CheckpointEvery > 0 {
		ckdir, err := os.MkdirTemp("", "graphz-bench-ckpt-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(ckdir)
		opts.Checkpoint = core.CheckpointOptions{Dir: ckdir, Every: cfg.CheckpointEvery}
	}

	source := graph.VertexID(0) // DOS relabels the max-degree vertex to 0
	if cfg.Engine != GraphZ {
		source = sourceFor(cfg.Scale) // CSR keeps natural IDs
	}

	res, _, err := ExecAlgo(cfg.Algo, layout, opts, AlgoParams{Source: source})
	if err != nil {
		return err
	}
	out.Iterations = res.Iterations
	out.Spilled = res.MessagesSpilled
	out.Inline = res.MessagesInline
	out.SemiExternal = res.SemiExternal
	out.SpillErrors = res.SpillErrors
	out.Stages = res.Stages
	out.Checkpoints = res.Checkpoints
	out.CheckpointBytes = res.CheckpointBytes
	out.CheckpointTime = res.CheckpointTime
	out.BlocksScanned = res.BlocksScanned
	out.BlocksSkipped = res.BlocksSkipped
	out.CodecBytesRaw = res.CodecBytesRaw
	out.CodecBytesEncoded = res.CodecBytesEncoded
	out.DecodeTime = res.DecodeTime
	return nil
}

// runGraphChi dispatches the six algorithms on the PSW baseline.
func runGraphChi(cfg RunConfig, dev *storage.Device, clock *sim.Clock, reg *obs.Registry, tr *obs.Tracer, out *Outcome) error {
	sh, err := graphchi.LoadShards(dev, Prefix)
	if err != nil {
		return err
	}
	out.IndexBytes = sh.IndexBytes()
	opts := graphchi.Options{MemoryBudget: cfg.Budget, Clock: clock, Obs: reg, Trace: tr}
	source := sourceFor(cfg.Scale)

	var res graphchi.Result
	switch cfg.Algo {
	case PR:
		res, _, err = chialgo.PageRank(sh, opts, prIterations, prDamping)
	case BFS:
		opts.MaxIterations = maxConvergeIters
		res, _, err = chialgo.BFS(sh, opts, source)
	case CC:
		opts.MaxIterations = maxConvergeIters
		res, _, err = chialgo.ConnectedComponents(sh, opts)
	case SSSP:
		opts.MaxIterations = maxConvergeIters
		res, _, err = chialgo.SSSP(sh, opts, source)
	case BP:
		res, _, err = chialgo.BeliefPropagation(sh, opts, bpIterations)
	case RW:
		res, _, err = chialgo.RandomWalk(sh, opts, rwIterations, rwWalkers)
	default:
		err = fmt.Errorf("bench: unknown algorithm %q", cfg.Algo)
	}
	if err != nil {
		return err
	}
	out.Iterations = res.Iterations
	out.Stages = res.Stages
	return nil
}

// runXStream dispatches the six algorithms on the edge-centric baseline.
func runXStream(cfg RunConfig, dev *storage.Device, clock *sim.Clock, reg *obs.Registry, tr *obs.Tracer, out *Outcome) error {
	pt, err := xstream.LoadPartitioned(dev, Prefix)
	if err != nil {
		return err
	}
	out.IndexBytes = 0 // the model's selling point: no vertex index
	opts := xstream.Options{MemoryBudget: cfg.Budget, Clock: clock, Obs: reg, Trace: tr}
	source := sourceFor(cfg.Scale)

	var res xstream.Result
	switch cfg.Algo {
	case PR:
		res, _, err = xsalgo.PageRank(pt, opts, prIterations, prDamping)
	case BFS:
		opts.MaxIterations = maxConvergeIters
		res, _, err = xsalgo.BFS(pt, opts, source)
	case CC:
		opts.MaxIterations = maxConvergeIters
		res, _, err = xsalgo.ConnectedComponents(pt, opts)
	case SSSP:
		opts.MaxIterations = maxConvergeIters
		res, _, err = xsalgo.SSSP(pt, opts, source)
	case BP:
		res, _, err = xsalgo.BeliefPropagation(pt, opts, bpIterations)
	case RW:
		res, _, err = xsalgo.RandomWalk(pt, opts, rwIterations, rwWalkers)
	default:
		err = fmt.Errorf("bench: unknown algorithm %q", cfg.Algo)
	}
	if err != nil {
		return err
	}
	out.Iterations = res.Iterations
	out.Stages = res.Stages
	return nil
}
