package bench

import (
	"fmt"
	"strings"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/core"
	"graphz/internal/graph"
)

// One shared dispatch from an algorithm name to a core-engine run, used
// by the benchmark harness and the graphz-serve job runner: both hand an
// (algo, layout, options) triple here, so a served job executes exactly
// the code path the CLI and the evaluation tables measure.

// AlgoParams carries the per-algorithm knobs. Zero values mean the
// benchmark defaults (Section VI-A: 10 PR iterations at 0.85 damping,
// 8 BP and RW iterations, 1 walker, a 200-iteration convergence cap).
type AlgoParams struct {
	// Source is the BFS/SSSP root, in the layout's vertex-ID space.
	Source graph.VertexID
	// Iterations bounds PR/BP/RW runs.
	Iterations int
	// Damping is PageRank's damping factor.
	Damping float32
	// Walkers is RW's walkers seeded per vertex.
	Walkers int
	// MaxIterations caps the convergence-driven algorithms (BFS, CC,
	// SSSP); it is only applied when the caller left
	// Options.MaxIterations unset.
	MaxIterations int
}

// withDefaults fills unset knobs with the benchmark constants.
func (p AlgoParams) withDefaults(a Algo) AlgoParams {
	if p.Iterations <= 0 {
		switch a {
		case PR:
			p.Iterations = prIterations
		case BP:
			p.Iterations = bpIterations
		case RW:
			p.Iterations = rwIterations
		}
	}
	if p.Damping <= 0 {
		p.Damping = prDamping
	}
	if p.Walkers <= 0 {
		p.Walkers = rwWalkers
	}
	if p.MaxIterations <= 0 {
		p.MaxIterations = maxConvergeIters
	}
	return p
}

// ParseAlgo resolves a case-insensitive algorithm name, accepting the
// paper's short codes and the obvious long spellings.
func ParseAlgo(s string) (Algo, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "PR", "PAGERANK":
		return PR, nil
	case "BFS":
		return BFS, nil
	case "CC", "COMPONENTS", "CONNECTEDCOMPONENTS":
		return CC, nil
	case "SSSP":
		return SSSP, nil
	case "BP", "BELIEFPROPAGATION":
		return BP, nil
	case "RW", "RANDOMWALK":
		return RW, nil
	}
	return "", fmt.Errorf("bench: unknown algorithm %q (want one of %v)", s, Algos)
}

// ExecAlgo runs algorithm a on the core engine over layout with opts,
// returning the engine result and the per-vertex values widened to
// float64 (distances/labels/visit counts for the integer-valued
// algorithms, ranks/beliefs for the float-valued ones). The values are in
// the layout's (degree-ordered) vertex-ID space.
func ExecAlgo(a Algo, layout core.Layout, opts core.Options, p AlgoParams) (core.Result, []float64, error) {
	p = p.withDefaults(a)
	switch a {
	case BFS, CC, SSSP:
		if opts.MaxIterations == 0 {
			opts.MaxIterations = p.MaxIterations
		}
	}
	switch a {
	case PR:
		res, vals, err := graphzalgo.PageRankLayout(layout, opts, p.Iterations, p.Damping)
		return res, f32to64(vals), err
	case BFS:
		res, vals, err := graphzalgo.BFSLayout(layout, opts, p.Source)
		return res, u32to64(vals), err
	case CC:
		res, vals, err := graphzalgo.ConnectedComponentsLayout(layout, opts)
		return res, u32to64(vals), err
	case SSSP:
		res, vals, err := graphzalgo.SSSPLayout(layout, opts, p.Source)
		return res, f32to64(vals), err
	case BP:
		res, vals, err := graphzalgo.BeliefPropagationLayout(layout, opts, p.Iterations)
		return res, f32to64(vals), err
	case RW:
		res, vals, err := graphzalgo.RandomWalkLayout(layout, opts, p.Iterations, uint32(p.Walkers))
		return res, u32to64(vals), err
	}
	return core.Result{}, nil, fmt.Errorf("bench: unknown algorithm %q", a)
}

// AlgoVertexSize returns the encoded vertex-state size in bytes of the
// core-engine program ExecAlgo dispatches for a — the per-vertex cost a
// semi-external run pins resident (core.SemBudgetBytes), which admission
// control must reserve for the whole run.
func AlgoVertexSize(a Algo) int {
	switch a {
	case BP:
		return 16 // belief pair of float64
	case RW:
		return 12 // visit count + two RNG words
	default:
		return 8 // PR/BFS/CC/SSSP: pair-of-32-bit states
	}
}

func f32to64(in []float32) []float64 {
	if in == nil {
		return nil
	}
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

func u32to64(in []uint32) []float64 {
	if in == nil {
		return nil
	}
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}
