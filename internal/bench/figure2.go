package bench

import (
	"fmt"

	"graphz/internal/dos"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// InPartitionCDF reproduces the paper's Figure 2: for each cutoff
// fraction p of the (degree-ordered) vertex space, the fraction of edges
// whose source AND destination both fall inside the top-p% of vertices —
// the messages that stay in the first partition and never touch the
// disk. Degree ordering packs the power-law head into the prefix, which
// is why the curve rises steeply.
func InPartitionCDF(g *dos.Graph, points int) ([]float64, error) {
	if points < 1 {
		return nil, fmt.Errorf("bench: need at least one CDF point")
	}
	n := g.NumVertices
	if n == 0 {
		return make([]float64, points), nil
	}
	// histogram[k] counts edges whose max(src,dst) lands in the k-th
	// of `points` equal slices of the vertex space.
	histogram := make([]int64, points)
	var total int64

	// Stream the adjacency entries sequentially (decoding blocks on a v2
	// graph), tracking the current source via the bucket table.
	r, err := g.Entries(0, g.NumEdges)
	if err != nil {
		return nil, err
	}
	for b := 0; b < len(g.Buckets); b++ {
		bk := g.Buckets[b]
		end := graph.VertexID(n)
		if b+1 < len(g.Buckets) {
			end = g.Buckets[b+1].FirstID
		}
		for v := bk.FirstID; v < end; v++ {
			for i := uint32(0); i < bk.Degree; i++ {
				dst, err := r.Next()
				if err != nil {
					return nil, fmt.Errorf("bench: streaming edges for CDF: %w", err)
				}
				m := v
				if dst > m {
					m = dst
				}
				slot := int(int64(m) * int64(points) / int64(n))
				if slot >= points {
					slot = points - 1
				}
				histogram[slot]++
				total++
			}
		}
	}
	cdf := make([]float64, points)
	var acc int64
	for k := 0; k < points; k++ {
		acc += histogram[k]
		if total > 0 {
			cdf[k] = float64(acc) / float64(total)
		}
	}
	return cdf, nil
}

// InPartitionCDFFor builds (or reuses) the DOS conversion of a scale and
// computes its CDF.
func InPartitionCDFFor(s Scale, points int) ([]float64, error) {
	prep := Prep(s, FormatDOS, storageKindForAnalysis, 4, false, "")
	if prep.Err != nil {
		return nil, prep.Err
	}
	g, err := dos.Load(prep.Dev, Prefix)
	if err != nil {
		return nil, err
	}
	prep.Dev.ResetStats()
	return InPartitionCDF(g, points)
}

// storageKindForAnalysis: structural analyses (Figure 2, Table XI) do
// not depend on the cost model, so they reuse the HDD-prepared graphs.
const storageKindForAnalysis = storage.HDD
