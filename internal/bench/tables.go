package bench

import (
	"fmt"
	"strings"
	"time"

	"graphz/internal/dos"
	"graphz/internal/storage"
)

// FormatTable renders a fixed-width text table.
func FormatTable(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// fmtDur renders a modeled duration compactly.
func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtBytes renders a byte count with units.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// outcomeCell renders one run's runtime, or its failure.
func outcomeCell(o Outcome) string {
	if o.Failed() {
		return "FAIL"
	}
	return fmtDur(o.Runtime)
}

// HarmonicMeanSpeedup computes the harmonic mean of per-pair speedups
// base/target over the pairs where both succeeded (matching the paper's
// aggregate statistic, which skips missing entries).
func HarmonicMeanSpeedup(base, target []Outcome) float64 {
	var sum float64
	n := 0
	for i := range base {
		if i >= len(target) || base[i].Failed() || target[i].Failed() {
			continue
		}
		if target[i].Runtime <= 0 || base[i].Runtime <= 0 {
			continue
		}
		speedup := float64(base[i].Runtime) / float64(target[i].Runtime)
		sum += 1 / speedup
		n++
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(n) / sum
}

// Table1 reproduces "Lines of Code to Implement PageRank": the plain
// in-memory version, the naive out-of-core version (the role of the
// paper's 500-line C program), and the framework versions.
func Table1() string {
	rows := [][]string{
		{"in-memory",
			fmt.Sprint(MustLOC(PlainAlgoFile(PR))),
			fmt.Sprint(MustLOC(AlgoFile(GraphChi, PR))),
			fmt.Sprint(MustLOC(AlgoFile(GraphZ, PR)))},
		{"out-of-core",
			fmt.Sprint(MustLOC("internal/bench/naivepr.go")),
			fmt.Sprint(MustLOC(AlgoFile(GraphChi, PR))),
			fmt.Sprint(MustLOC(AlgoFile(GraphZ, PR)))},
	}
	return FormatTable("Table I: LOC to implement PageRank",
		[]string{"graph size", "no-framework", "GraphChi", "GraphZ"}, rows)
}

// Table2 reproduces "Time to Execute PageRank": a hand-rolled
// implementation versus the frameworks, in-memory (small graph) and
// out-of-core (large graph, 4GB-analog budget so vertex state exceeds
// memory).
func Table2() string {
	kind := storage.SSD
	inMem := NaivePageRank(Small, kind, Mem8)
	outOfCore := NaivePageRank(Large, kind, Mem4)

	chiSmall := Run(RunConfig{Scale: Small, Algo: PR, Engine: GraphChi, Kind: kind, Budget: Mem8})
	gzSmall := Run(RunConfig{Scale: Small, Algo: PR, Engine: GraphZ, Kind: kind, Budget: Mem8})
	chiLarge := Run(RunConfig{Scale: Large, Algo: PR, Engine: GraphChi, Kind: kind, Budget: Mem4})
	gzLarge := Run(RunConfig{Scale: Large, Algo: PR, Engine: GraphZ, Kind: kind, Budget: Mem4})

	rows := [][]string{
		{"in-memory (small)", fmtDur(inMem.Runtime), outcomeCell(chiSmall), outcomeCell(gzSmall)},
		{"out-of-core (large)", fmtDur(outOfCore.Runtime), outcomeCell(chiLarge), outcomeCell(gzLarge)},
	}
	return FormatTable("Table II: time to execute PageRank (10 iterations, SSD)",
		[]string{"graph size", "no-framework", "GraphChi", "GraphZ"}, rows)
}

// snapAnalog describes one Table VIII stand-in graph.
type snapAnalog struct {
	name     string
	analogOf string
	vertices int
	edges    int
	zipfS    float64
	seed     uint64
}

var snapAnalogs = []snapAnalog{
	{"pl-skitter", "as-skitter", 170_000, 1_100_000, 0.85, 21},
	{"pl-patents", "cit-patents", 370_000, 1_650_000, 0.60, 22},
	{"pl-orkut", "com-orkut", 300_000, 2_100_000, 0.75, 23},
	{"pl-twitter", "higgs-twitter", 45_000, 1_400_000, 0.95, 24},
	{"pl-wiki", "wiki-talk", 230_000, 500_000, 1.05, 25},
}

// Table8 reproduces the SNAP unique-degree survey with Zipf analogs:
// unique degrees stay orders of magnitude below vertex counts.
func Table8() string {
	var rows [][]string
	for _, a := range snapAnalogs {
		edges := zipfAnalogEdges(a)
		st := analogStats(a.name, edges)
		rows = append(rows, []string{
			a.name + " (" + a.analogOf + ")",
			fmt.Sprint(st.NumVertices),
			fmt.Sprint(st.NumEdges),
			fmt.Sprint(st.UniqueDegrees),
			fmt.Sprintf("%.4f", float64(st.UniqueDegrees)/float64(st.NumVertices)),
		})
	}
	return FormatTable("Table VIII: unique degrees of natural-graph analogs",
		[]string{"graph", "vertices", "edges", "unique degrees", "UD/V"}, rows)
}

// Table9 reproduces the per-engine LOC comparison for all six
// benchmarks.
func Table9() string {
	var rows [][]string
	for _, a := range Algos {
		rows = append(rows, []string{
			string(a),
			fmt.Sprint(MustLOC(AlgoFile(GraphChi, a))),
			fmt.Sprint(MustLOC(AlgoFile(XStream, a))),
			fmt.Sprint(MustLOC(AlgoFile(GraphZ, a))),
		})
	}
	return FormatTable("Table IX: LOC comparison of graph engines",
		[]string{"benchmark", "GraphChi", "X-Stream", "GraphZ"}, rows)
}

// Table10 reproduces the graph-properties table for the four scales.
func Table10() string {
	var rows [][]string
	for _, s := range Scales {
		st := StatsFor(s)
		rows = append(rows, []string{
			s.Name + " (" + s.AnalogOf + ")",
			fmt.Sprint(st.NumVertices),
			fmt.Sprint(st.NumEdges),
			fmtBytes(st.Bytes),
			fmt.Sprint(st.UniqueDegrees),
		})
	}
	return FormatTable("Table X: graph properties",
		[]string{"graph", "vertices", "edges", "size", "unique degrees"}, rows)
}

// Table11 reproduces the vertex index size comparison: GraphChi's
// per-vertex index versus GraphZ's per-unique-degree bucket table.
func Table11() string {
	var rows [][]string
	for _, s := range Scales {
		prep := Prep(s, FormatDOS, storageKindForAnalysis, 4, false, "")
		if prep.Err != nil {
			rows = append(rows, []string{s.Name, "?", "FAIL"})
			continue
		}
		g, err := dos.Load(prep.Dev, Prefix)
		if err != nil {
			rows = append(rows, []string{s.Name, "?", "FAIL"})
			continue
		}
		st := StatsFor(s)
		chiIndex := (int64(st.MaxID) + 1) * 8
		rows = append(rows, []string{
			s.Name,
			fmtBytes(chiIndex),
			fmtBytes(g.IndexBytes()),
			fmt.Sprintf("%.0fx", float64(chiIndex)/float64(g.IndexBytes())),
		})
	}
	return FormatTable("Table XI: vertex index size (PageRank)",
		[]string{"graph", "GraphChi", "GraphZ", "reduction"}, rows)
}

// Table12 reproduces the preprocessing-time comparison across devices.
func Table12() string {
	var rows [][]string
	for _, s := range Scales {
		for _, kind := range []storage.Kind{storage.HDD, storage.SSD} {
			chi := Prep(s, FormatChi, kind, 4, false, "")
			gz := Prep(s, FormatDOS, kind, 4, false, "")
			xs := Prep(s, FormatXS, kind, 4, false, "")
			cell := func(p *PrepResult) string {
				if p.Err != nil {
					return "FAIL"
				}
				return fmtDur(p.Time)
			}
			rows = append(rows, []string{
				s.Name, kind.String(), cell(chi), cell(gz), cell(xs),
			})
		}
	}
	return FormatTable("Table XII: preprocessing time",
		[]string{"graph", "device", "GraphChi", "GraphZ", "X-Stream"}, rows)
}

// Figure2 reproduces the in-partition message CDF for the three natural
// scales at selected top-n% cutoffs.
func Figure2() string {
	cutoffs := []int{1, 2, 5, 10, 20, 30, 50, 75, 100}
	header := []string{"top n% vertices"}
	for _, s := range []Scale{Small, Medium, Large} {
		header = append(header, s.Name)
	}
	cdfs := make([][]float64, 0, 3)
	for _, s := range []Scale{Small, Medium, Large} {
		cdf, err := InPartitionCDFFor(s, 100)
		if err != nil {
			cdf = nil
		}
		cdfs = append(cdfs, cdf)
	}
	var rows [][]string
	for _, c := range cutoffs {
		row := []string{fmt.Sprintf("%d%%", c)}
		for _, cdf := range cdfs {
			if cdf == nil {
				row = append(row, "FAIL")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", cdf[c-1]))
		}
		rows = append(rows, row)
	}
	return FormatTable("Figure 2: CDF of in-partition messages vs top-n% vertices (degree order)",
		header, rows)
}

// runtimeGrid runs all six algorithms for the given engines and renders
// a runtime table; it also reports harmonic-mean speedups of GraphZ over
// each baseline when GraphZ is among the engines.
func runtimeGrid(title string, s Scale, kind storage.Kind, budget int64, engines []Engine) string {
	header := []string{"benchmark"}
	for _, e := range engines {
		header = append(header, string(e))
	}
	outs := make(map[Engine][]Outcome)
	var rows [][]string
	for _, a := range Algos {
		row := []string{string(a)}
		for _, e := range engines {
			o := Run(RunConfig{Scale: s, Algo: a, Engine: e, Kind: kind, Budget: budget})
			outs[e] = append(outs[e], o)
			cell := outcomeCell(o)
			if !o.Failed() {
				cell += fmt.Sprintf(" (%d it)", o.Iterations)
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	table := FormatTable(title, header, rows)
	if gz, ok := outs[GraphZ]; ok {
		var b strings.Builder
		b.WriteString(table)
		for _, e := range engines {
			if e == GraphZ {
				continue
			}
			hm := HarmonicMeanSpeedup(outs[e], gz)
			if hm > 0 {
				fmt.Fprintf(&b, "harmonic-mean speedup of GraphZ over %s: %.2fx\n", e, hm)
			}
		}
		return b.String()
	}
	return table
}

// Figure5 reproduces the xlarge-graph comparison on the HDD: GraphChi
// must fail (vertex index exceeds memory) while GraphZ beats X-Stream.
func Figure5() string {
	return runtimeGrid(
		"Figure 5: run time on the xlarge graph (HDD, 8GB-analog budget)",
		XLarge, storage.HDD, Mem8,
		[]Engine{GraphChi, XStream, GraphZ})
}

// Figure6 reproduces the memory-sweep runtime grids for one scale: both
// devices, all budgets, all algorithms, all engines.
func Figure6(s Scale) string {
	var b strings.Builder
	for _, kind := range []storage.Kind{storage.HDD, storage.SSD} {
		for _, budget := range MemPresets {
			title := fmt.Sprintf("Figure 6 (%s): run times, %s, %s RAM analog",
				s.Name, kind, MemLabel(budget))
			b.WriteString(runtimeGrid(title, s, kind, budget,
				[]Engine{GraphChi, XStream, GraphZ}))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Figure7 reproduces the contribution breakdown on the large graph with
// the SSD: GraphChi vs GraphZ without DOS and DM vs GraphZ without DOS
// vs full GraphZ.
func Figure7() string {
	return runtimeGrid(
		"Figure 7: performance breakdown, large graph (SSD, 8GB-analog budget)",
		Large, storage.SSD, Mem8,
		[]Engine{GraphChi, GraphZNoDOSNoDM, GraphZNoDOS, GraphZ})
}

// Figure8 reproduces the power/energy comparison on the large graph with
// the SSD.
func Figure8() string {
	engines := []Engine{GraphChi, XStream, GraphZ}
	header := []string{"benchmark"}
	for _, e := range engines {
		header = append(header, string(e)+" W", string(e)+" J")
	}
	var rows [][]string
	for _, a := range Algos {
		row := []string{string(a)}
		for _, e := range engines {
			o := Run(RunConfig{Scale: Large, Algo: a, Engine: e, Kind: storage.SSD, Budget: Mem8})
			if o.Failed() {
				row = append(row, "FAIL", "FAIL")
				continue
			}
			row = append(row,
				fmt.Sprintf("%.1f", o.Energy.AvgPower),
				fmt.Sprintf("%.2f", o.Energy.Energy))
		}
		rows = append(rows, row)
	}
	return FormatTable("Figure 8: power (W) and energy (J), large graph (SSD, 8GB analog)",
		header, rows)
}

// Table13 reproduces the relative-energy summary: harmonic-mean ratios
// of GraphZ's energy to each baseline's across all six algorithms.
func Table13() string {
	var rows [][]string
	for _, s := range []Scale{Large, Medium, Small} {
		row := []string{s.Name}
		for _, kind := range []storage.Kind{storage.HDD, storage.SSD} {
			for _, base := range []Engine{GraphChi, XStream} {
				var sum float64
				n := 0
				for _, a := range Algos {
					gz := Run(RunConfig{Scale: s, Algo: a, Engine: GraphZ, Kind: kind, Budget: Mem8})
					b := Run(RunConfig{Scale: s, Algo: a, Engine: base, Kind: kind, Budget: Mem8})
					if gz.Failed() || b.Failed() || gz.Energy.Energy <= 0 || b.Energy.Energy <= 0 {
						continue
					}
					// Harmonic mean of energy ratios r_i =
					// gz/base: n / sum(1/r_i).
					sum += b.Energy.Energy / gz.Energy.Energy
					n++
				}
				if n == 0 {
					row = append(row, "n/a")
				} else {
					row = append(row, fmt.Sprintf("%.2f", float64(n)/sum))
				}
			}
		}
		rows = append(rows, row)
	}
	return FormatTable("Table XIII: relative energy of GraphZ (harmonic mean across benchmarks)",
		[]string{"graph", "vs GraphChi HDD", "vs X-Stream HDD", "vs GraphChi SSD", "vs X-Stream SSD"}, rows)
}

// Table14 reproduces the iterations-to-convergence comparison: the
// asynchronous engines against bulk-synchronous X-Stream.
func Table14() string {
	var rows [][]string
	for _, s := range []Scale{Small, Medium} {
		for _, a := range []Algo{SSSP, CC, BFS} {
			row := []string{s.Name, string(a)}
			for _, e := range []Engine{GraphChi, XStream, GraphZ} {
				o := Run(RunConfig{Scale: s, Algo: a, Engine: e, Kind: storage.SSD, Budget: Mem8})
				if o.Failed() {
					row = append(row, "FAIL")
				} else {
					row = append(row, fmt.Sprint(o.Iterations))
				}
			}
			rows = append(rows, row)
		}
	}
	return FormatTable("Table XIV: iterations for convergence",
		[]string{"graph", "benchmark", "GraphChi", "X-Stream", "GraphZ"}, rows)
}

// Figure9 reproduces the IO statistics for PageRank and BFS on the large
// graph.
func Figure9() string {
	var rows [][]string
	for _, a := range []Algo{PR, BFS} {
		for _, e := range []Engine{GraphChi, XStream, GraphZ} {
			o := Run(RunConfig{Scale: Large, Algo: a, Engine: e, Kind: storage.SSD, Budget: Mem8})
			if o.Failed() {
				rows = append(rows, []string{string(a), string(e), "FAIL", "FAIL", "FAIL"})
				continue
			}
			rows = append(rows, []string{
				string(a), string(e),
				fmtBytes(o.Stats.ReadBytes),
				fmtBytes(o.Stats.WriteBytes),
				fmt.Sprint(o.Stats.Seeks),
			})
		}
	}
	return FormatTable("Figure 9: external IO, large graph (SSD, 8GB analog)",
		[]string{"benchmark", "engine", "read", "written", "seeks"}, rows)
}

// TableCheckpointOverhead quantifies the durability tax: every benchmark
// on the GraphZ engine with checkpointing off versus checkpointing every
// iteration, the modeled-runtime overhead that induces, and the
// checkpoint volume written. Not a paper table — it documents what the
// checkpoint/restore subsystem (docs/DURABILITY.md) costs.
func TableCheckpointOverhead(s Scale, kind storage.Kind, budget int64) string {
	header := []string{"benchmark", "no ckpt", "ckpt every it", "overhead", "ckpts", "ckpt bytes"}
	var rows [][]string
	for _, a := range Algos {
		base := Run(RunConfig{Scale: s, Algo: a, Engine: GraphZ, Kind: kind, Budget: budget})
		ck := Run(RunConfig{Scale: s, Algo: a, Engine: GraphZ, Kind: kind, Budget: budget, CheckpointEvery: 1})
		row := []string{string(a), outcomeCell(base), outcomeCell(ck)}
		if base.Failed() || ck.Failed() || base.Runtime <= 0 {
			row = append(row, "-", "-", "-")
		} else {
			row = append(row,
				fmt.Sprintf("%+.1f%%", 100*(float64(ck.Runtime)/float64(base.Runtime)-1)),
				fmt.Sprint(ck.Checkpoints),
				fmtBytes(ck.CheckpointBytes))
		}
		rows = append(rows, row)
	}
	return FormatTable(
		fmt.Sprintf("Checkpoint overhead: %s graph (%s, checkpoint every iteration)", s.Name, kind),
		header, rows)
}

// TableSelectiveScheduling quantifies selective block scheduling: every
// benchmark on the GraphZ engine full-streaming versus selective, the
// modeled-runtime change, and the block-level skip counts. Not a paper
// table — it documents the GraphMP-style optimization of DESIGN.md §9.
// Converging frontier algorithms (BFS, SSSP, CC) skip heavily in their
// tails; always-active benchmarks (PR, BP, RW) never skip and should
// show ~0 overhead.
func TableSelectiveScheduling(s Scale, kind storage.Kind, budget int64) string {
	header := []string{"benchmark", "full", "selective", "speedup", "scanned", "skipped"}
	var rows [][]string
	for _, a := range Algos {
		base := Run(RunConfig{Scale: s, Algo: a, Engine: GraphZ, Kind: kind, Budget: budget})
		sel := Run(RunConfig{Scale: s, Algo: a, Engine: GraphZ, Kind: kind, Budget: budget, Selective: true})
		row := []string{string(a), outcomeCell(base), outcomeCell(sel)}
		if base.Failed() || sel.Failed() || sel.Runtime <= 0 {
			row = append(row, "-", "-", "-")
		} else {
			row = append(row,
				fmt.Sprintf("%.2fx", float64(base.Runtime)/float64(sel.Runtime)),
				fmt.Sprint(sel.BlocksScanned),
				fmt.Sprint(sel.BlocksSkipped))
		}
		rows = append(rows, row)
	}
	return FormatTable(
		fmt.Sprintf("Selective block scheduling: %s graph (%s)", s.Name, kind),
		header, rows)
}

// TableCodec quantifies the DOS v2 adjacency codecs: every benchmark on
// the GraphZ engine over the v1 format versus v2-raw versus v2-varint,
// with the device bytes each run read and the varint run's decode
// accounting. Not a paper table — it documents the compressed adjacency
// codec of docs/FORMAT.md §Version 2. Final states are byte-identical
// across the three columns; varint trades decode compute for edge IO.
func TableCodec(s Scale, kind storage.Kind, budget int64) string {
	header := []string{"benchmark", "v1", "v2 raw", "v2 varint", "read v1", "read varint", "decoded", "decode t"}
	var rows [][]string
	for _, a := range Algos {
		v1 := Run(RunConfig{Scale: s, Algo: a, Engine: GraphZ, Kind: kind, Budget: budget})
		raw := Run(RunConfig{Scale: s, Algo: a, Engine: GraphZ, Kind: kind, Budget: budget, Codec: "raw"})
		vi := Run(RunConfig{Scale: s, Algo: a, Engine: GraphZ, Kind: kind, Budget: budget, Codec: "varint"})
		row := []string{string(a), outcomeCell(v1), outcomeCell(raw), outcomeCell(vi)}
		if v1.Failed() || vi.Failed() {
			row = append(row, "-", "-", "-", "-")
		} else {
			row = append(row,
				fmtBytes(v1.Stats.ReadBytes),
				fmtBytes(vi.Stats.ReadBytes),
				fmtBytes(vi.CodecBytesRaw),
				fmtDur(vi.DecodeTime))
		}
		rows = append(rows, row)
	}
	return FormatTable(
		fmt.Sprintf("Adjacency codecs: %s graph (%s)", s.Name, kind),
		header, rows)
}
