package bench

import (
	"strings"
	"testing"
	"time"

	"graphz/internal/obs"
	"graphz/internal/storage"
)

func TestFormatTable(t *testing.T) {
	out := FormatTable("T", []string{"a", "bb"}, [][]string{{"x", "y"}, {"long", "z"}})
	if !strings.Contains(out, "=== T ===") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	// Columns align: header and separator have the same byte width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("separator width %d != header width %d", len(lines[2]), len(lines[1]))
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := map[time.Duration]string{
		0:                      "0",
		500 * time.Microsecond: "500µs",
		25 * time.Millisecond:  "25.0ms",
		3 * time.Second:        "3.00s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
	if got := fmtBytes(2048); got != "2.0KB" {
		t.Errorf("fmtBytes(2048) = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.00MB" {
		t.Errorf("fmtBytes = %q", got)
	}
	if got := fmtBytes(5); got != "5B" {
		t.Errorf("fmtBytes = %q", got)
	}
}

func TestHarmonicMeanSpeedup(t *testing.T) {
	base := []Outcome{{Runtime: 4 * time.Second}, {Runtime: 9 * time.Second}}
	target := []Outcome{{Runtime: 2 * time.Second}, {Runtime: 3 * time.Second}}
	// Speedups 2 and 3 -> harmonic mean 2/(1/2+1/3) = 2.4.
	got := HarmonicMeanSpeedup(base, target)
	if got < 2.39 || got > 2.41 {
		t.Errorf("harmonic mean = %v, want 2.4", got)
	}
	// Failed runs are skipped.
	base[1].Err = storage.ErrNoSpace
	got = HarmonicMeanSpeedup(base, target)
	if got != 2 {
		t.Errorf("with failure skipped = %v, want 2", got)
	}
	if HarmonicMeanSpeedup(nil, nil) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestCountLOC(t *testing.T) {
	n, err := CountLOC("internal/bench/loc.go")
	if err != nil {
		t.Fatal(err)
	}
	if n < 20 {
		t.Errorf("loc.go counted at %d lines; counter is dropping code", n)
	}
	if _, err := CountLOC("no/such/file.go"); err == nil {
		t.Error("missing file should error")
	}
	// Every algorithm file referenced by the LOC tables must exist.
	for _, e := range []Engine{GraphZ, GraphChi, XStream} {
		for _, a := range Algos {
			if _, err := CountLOC(AlgoFile(e, a)); err != nil {
				t.Errorf("AlgoFile(%s, %s): %v", e, a, err)
			}
		}
	}
	for _, a := range Algos {
		if _, err := CountLOC(PlainAlgoFile(a)); err != nil {
			t.Errorf("PlainAlgoFile(%s): %v", a, err)
		}
	}
}

func TestScalesMonotone(t *testing.T) {
	prev := 0
	for _, s := range Scales {
		if s.Edges <= prev {
			t.Errorf("scale %s has %d edges, not larger than previous %d", s.Name, s.Edges, prev)
		}
		prev = s.Edges
	}
	// The paper's ratios: small fits the default budget; the rest
	// exceed it in increasing multiples.
	smallBytes := StatsFor(Small).Bytes
	if smallBytes > Mem4 {
		t.Errorf("small graph (%d B) should fit the 4GB-analog budget", smallBytes)
	}
	if StatsFor(Medium).Bytes <= DefaultBudget {
		t.Error("medium graph should exceed the default budget")
	}
	if StatsFor(XLarge).Bytes <= 10*DefaultBudget {
		t.Error("xlarge graph should be an order of magnitude over budget")
	}
}

func TestMaxDegreeVertexIsDOSZero(t *testing.T) {
	// The harness relies on DOS relabeling the max-degree vertex
	// (smallest-ID tie break) to new ID 0.
	edges := EdgesFor(Small, false)
	src := MaxDegreeVertex(edges)
	prep := Prep(Small, FormatDOS, storage.HDD, 4, false, "")
	if prep.Err != nil {
		t.Fatal(prep.Err)
	}
	g, err := loadDOSForTest(prep)
	if err != nil {
		t.Fatal(err)
	}
	n2o, err := g.NewToOld()
	if err != nil {
		t.Fatal(err)
	}
	if n2o[0] != src {
		t.Errorf("DOS new ID 0 is original %d, MaxDegreeVertex says %d", n2o[0], src)
	}
}

func TestInPartitionCDFProperties(t *testing.T) {
	cdf, err := InPartitionCDFFor(Small, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdf) != 100 {
		t.Fatalf("got %d points", len(cdf))
	}
	// Monotone non-decreasing, ends at 1.
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if cdf[99] < 0.999 {
		t.Errorf("CDF(100%%) = %v, want 1", cdf[99])
	}
	// The power-law head effect the paper shows: the top 5% of
	// degree-ordered vertices already hold a large share of edges.
	if cdf[4] < 0.15 {
		t.Errorf("CDF(5%%) = %v; degree ordering should concentrate edges", cdf[4])
	}
	// And far more than a random ordering would (5%^2 = 0.25%).
	if cdf[4] < 10*0.0025 {
		t.Errorf("CDF(5%%) = %v, not above the random-order baseline", cdf[4])
	}
}

func TestNaivePageRankModel(t *testing.T) {
	inMem := NaivePageRank(Small, storage.SSD, Mem8)
	if inMem.PageMiss != 0 {
		t.Errorf("small graph fits memory; misses = %d", inMem.PageMiss)
	}
	outOfCore := NaivePageRank(Large, storage.SSD, Mem4)
	if outOfCore.PageMiss == 0 {
		t.Error("large graph under 4GB-analog budget should page")
	}
	if outOfCore.Runtime <= inMem.Runtime {
		t.Error("paging run should be slower")
	}
}

func TestRunSmokeAllEnginesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the harness end to end")
	}
	for _, e := range []Engine{GraphZ, GraphZNoDOS, GraphZNoDOSNoDM, GraphChi, XStream} {
		o := Run(RunConfig{Scale: Small, Algo: BFS, Engine: e, Kind: storage.SSD, Budget: Mem8})
		if o.Failed() {
			t.Fatalf("%s failed: %v", e, o.Err)
		}
		if o.Runtime <= 0 || o.Stats.ReadBytes == 0 {
			t.Errorf("%s: empty measurements %+v", e, o)
		}
	}
	// Memoization returns identical outcomes.
	a := Run(RunConfig{Scale: Small, Algo: BFS, Engine: GraphZ, Kind: storage.SSD, Budget: Mem8})
	b := Run(RunConfig{Scale: Small, Algo: BFS, Engine: GraphZ, Kind: storage.SSD, Budget: Mem8})
	if a.Runtime != b.Runtime || a.Stats != b.Stats {
		t.Error("memoized runs differ")
	}
}

func TestGraphChiFastFail(t *testing.T) {
	// xlarge + default budget: the index precheck must fail without
	// preprocessing (instantly).
	o := Run(RunConfig{Scale: XLarge, Algo: PR, Engine: GraphChi, Kind: storage.SSD, Budget: Mem8})
	if !o.Failed() {
		t.Fatal("GraphChi on xlarge should fail")
	}
	if o.IndexBytes == 0 {
		t.Error("failure should report the index size")
	}
}

func TestRunCheckpointedMatchesPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the harness end to end")
	}
	base := Run(RunConfig{Scale: Small, Algo: CC, Engine: GraphZ, Kind: storage.SSD, Budget: Mem8})
	ck := Run(RunConfig{Scale: Small, Algo: CC, Engine: GraphZ, Kind: storage.SSD, Budget: Mem8, CheckpointEvery: 1})
	if base.Failed() || ck.Failed() {
		t.Fatalf("runs failed: %v / %v", base.Err, ck.Err)
	}
	if ck.Checkpoints == 0 || ck.CheckpointBytes == 0 || ck.CheckpointTime <= 0 {
		t.Fatalf("checkpointed run reported no checkpoint work: %+v", ck)
	}
	if base.Checkpoints != 0 {
		t.Fatalf("plain run reported %d checkpoints", base.Checkpoints)
	}
	// Checkpoints only read state: the algorithm outcome is unchanged,
	// and the modeled runtime grows by the charged checkpoint IO.
	if ck.Iterations != base.Iterations || ck.Spilled != base.Spilled || ck.Inline != base.Inline {
		t.Fatalf("checkpointing changed the run: base %+v, ckpt %+v", base, ck)
	}
	if ck.Runtime <= base.Runtime {
		t.Errorf("checkpoint IO should cost modeled time: base %v, ckpt %v", base.Runtime, ck.Runtime)
	}
	table := TableCheckpointOverhead(Small, storage.SSD, Mem8)
	if !strings.Contains(table, "Checkpoint overhead") || !strings.Contains(table, "PR") {
		t.Fatalf("overhead table malformed:\n%s", table)
	}
}

func TestRunSelectiveScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the harness end to end")
	}
	base := Run(RunConfig{Scale: Small, Algo: BFS, Engine: GraphZ, Kind: storage.SSD, Budget: Mem8})
	sel := Run(RunConfig{Scale: Small, Algo: BFS, Engine: GraphZ, Kind: storage.SSD, Budget: Mem8, Selective: true})
	if base.Failed() || sel.Failed() {
		t.Fatalf("runs failed: %v / %v", base.Err, sel.Err)
	}
	if base.BlocksScanned != 0 || base.BlocksSkipped != 0 {
		t.Fatalf("full-streaming run reported block scheduling: %+v", base)
	}
	if sel.BlocksScanned == 0 {
		t.Fatalf("selective run reported no scanned blocks: %+v", sel)
	}
	table := TableSelectiveScheduling(Small, storage.SSD, Mem8)
	if !strings.Contains(table, "Selective block scheduling") || !strings.Contains(table, "BFS") {
		t.Fatalf("selective table malformed:\n%s", table)
	}
}

func TestRunCodec(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the harness end to end")
	}
	v1 := Run(RunConfig{Scale: Small, Algo: PR, Engine: GraphZ, Kind: storage.SSD, Budget: Mem8})
	vi := Run(RunConfig{Scale: Small, Algo: PR, Engine: GraphZ, Kind: storage.SSD, Budget: Mem8, Codec: "varint"})
	if v1.Failed() || vi.Failed() {
		t.Fatalf("runs failed: %v / %v", v1.Err, vi.Err)
	}
	if v1.CodecBytesRaw != 0 || v1.CodecBytesEncoded != 0 {
		t.Fatalf("v1 run reported codec activity: %+v", v1)
	}
	if vi.CodecBytesRaw == 0 || vi.CodecBytesEncoded == 0 || vi.DecodeTime <= 0 {
		t.Fatalf("varint run reported no codec work: %+v", vi)
	}
	if vi.CodecBytesEncoded >= vi.CodecBytesRaw {
		t.Errorf("varint read %d encoded bytes for %d raw, no saving", vi.CodecBytesEncoded, vi.CodecBytesRaw)
	}
	// Compression must show up as fewer device bytes read end to end.
	if vi.Stats.ReadBytes >= v1.Stats.ReadBytes {
		t.Errorf("varint run read %d device bytes, v1 read %d", vi.Stats.ReadBytes, v1.Stats.ReadBytes)
	}
	// The algorithm outcome is codec-independent.
	if vi.Iterations != v1.Iterations || vi.Spilled != v1.Spilled || vi.Inline != v1.Inline {
		t.Fatalf("codec changed the run: v1 %+v, varint %+v", v1, vi)
	}
	table := TableCodec(Small, storage.SSD, Mem8)
	if !strings.Contains(table, "Adjacency codecs") || !strings.Contains(table, "v2 varint") {
		t.Fatalf("codec table malformed:\n%s", table)
	}
}

func TestRunEmitsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the harness end to end")
	}
	for _, e := range []Engine{GraphZ, GraphChi, XStream} {
		o := Run(RunConfig{Scale: Small, Algo: BFS, Engine: e, Kind: storage.SSD, Budget: Mem8})
		if o.Failed() {
			t.Fatalf("%s failed: %v", e, o.Err)
		}
		if o.Report == nil {
			t.Fatalf("%s: successful run carries no report", e)
		}
		if o.Report.Schema != obs.ReportSchemaVersion {
			t.Errorf("%s: report schema = %d", e, o.Report.Schema)
		}
		if len(o.Report.Stages) == 0 || len(o.Report.Files) == 0 {
			t.Errorf("%s: report missing spans or file IO: %d stages, %d files",
				e, len(o.Report.Stages), len(o.Report.Files))
		}
		// The report round-trips through its wire format.
		data, err := o.Report.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := obs.ParseReport(data); err != nil {
			t.Errorf("%s: report does not round-trip: %v", e, err)
		}
	}
	// GraphZ reports carry the memory-accounting timeline and block heat.
	o := Run(RunConfig{Scale: Small, Algo: BFS, Engine: GraphZ, Kind: storage.SSD, Budget: Mem8})
	if len(o.Report.Memory) != o.Iterations || len(o.Report.Blocks) == 0 {
		t.Errorf("graphz report sections: %d memory samples (want %d), %d blocks",
			len(o.Report.Memory), o.Iterations, len(o.Report.Blocks))
	}
	// Failed runs carry none.
	if f := Run(RunConfig{Scale: XLarge, Algo: PR, Engine: GraphChi, Kind: storage.SSD, Budget: Mem8}); f.Report != nil {
		t.Error("failed run carries a report")
	}
}
