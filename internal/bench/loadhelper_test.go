package bench

import "graphz/internal/dos"

// loadDOSForTest opens the DOS graph on a prepared device.
func loadDOSForTest(p *PrepResult) (*dos.Graph, error) {
	return dos.Load(p.Dev, Prefix)
}
