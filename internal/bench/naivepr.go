package bench

import (
	"container/list"
	"sync"
	"time"

	"graphz/internal/energy"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// NaivePageRank models the paper's "C implementation" baseline (Tables I
// and II): a straightforward PageRank with no out-of-core framework.
// Vertex state lives in a flat array; when it fits the memory budget the
// program is purely in-memory apart from streaming the edge list, and
// when it does not, vertex accesses go through an OS-page-cache model
// (4 KiB pages, LRU over the budget) so every miss costs a random device
// read — the cost a no-framework program pays for ignoring locality.
type NaiveResult struct {
	Runtime   time.Duration
	Compute   time.Duration
	IO        time.Duration
	Energy    energy.Report
	PageMiss  int64
	PageLooks int64
}

const naivePageBytes = 4096

var (
	naiveMu   sync.Mutex
	naiveMemo = map[string]NaiveResult{}
)

// NaivePageRank runs the model for a scale on a device kind under a
// memory budget and returns its modeled cost (memoized).
func NaivePageRank(s Scale, kind storage.Kind, budget int64) NaiveResult {
	key := s.Name + kind.String() + MemLabel(budget)
	naiveMu.Lock()
	defer naiveMu.Unlock()
	if r, ok := naiveMemo[key]; ok {
		return r
	}
	r := naivePageRank(s, kind, budget)
	naiveMemo[key] = r
	return r
}

func naivePageRank(s Scale, kind storage.Kind, budget int64) NaiveResult {
	edges := EdgesFor(s, false)
	n := int64(graph.MaxID(edges)) + 1
	clock := sim.NewClock()
	profile := storage.ProfileFor(kind)

	// Vertex state: two C-style double arrays (rank + votes) = 16 B
	// per vertex.
	stateBytes := n * 16
	// The edge list is streamed once per iteration regardless.
	edgeBytes := int64(len(edges)) * graph.EdgeBytes

	inMemory := stateBytes <= budget
	var cache *pageLRU
	if !inMemory {
		cachePages := int(budget / naivePageBytes)
		if cachePages < 1 {
			cachePages = 1
		}
		cache = newPageLRU(cachePages)
	}

	var misses, looks int64
	for it := 0; it < prIterations; it++ {
		// Sequential edge stream.
		clock.IO(profile.SeekLatency + time.Duration(float64(edgeBytes)/profile.ReadBandwidth*float64(time.Second)))
		clock.ComputeUnits(int64(len(edges)), sim.CostEdgeScan)
		clock.ComputeUnits(n, sim.CostVertexUpdate)
		if inMemory {
			continue
		}
		// Each edge touches the source's rank page and the
		// destination's vote page.
		for _, e := range edges {
			for _, v := range [2]graph.VertexID{e.Src, e.Dst} {
				looks++
				page := int64(v) * 16 / naivePageBytes
				if !cache.touch(page) {
					misses++
					clock.IO(profile.SeekLatency +
						time.Duration(float64(naivePageBytes)/profile.ReadBandwidth*float64(time.Second)))
				}
			}
		}
	}
	return NaiveResult{
		Runtime:   clock.Total(),
		Compute:   clock.TotalCompute(),
		IO:        clock.TotalIO(),
		Energy:    energy.Measure(clock, kind),
		PageMiss:  misses,
		PageLooks: looks,
	}
}

// pageLRU is a tiny LRU set of page numbers.
type pageLRU struct {
	capacity int
	order    *list.List
	index    map[int64]*list.Element
}

func newPageLRU(capacity int) *pageLRU {
	return &pageLRU{capacity: capacity, order: list.New(), index: make(map[int64]*list.Element)}
}

// touch marks a page used, returning true on a hit.
func (c *pageLRU) touch(page int64) bool {
	if el, ok := c.index[page]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		delete(c.index, back.Value.(int64))
		c.order.Remove(back)
	}
	c.index[page] = c.order.PushFront(page)
	return false
}
