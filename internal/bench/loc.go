package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// CountLOC counts the non-blank, non-comment lines of a repository file
// (path relative to the module root) — the metric behind the paper's
// Tables I and IX. Block comments are stripped naively, which matches
// this repository's style (no code after */ on a line).
func CountLOC(relPath string) (int, error) {
	f, err := os.Open(filepath.Join(repoRoot(), relPath))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n, sc.Err()
}

// repoRoot locates the module root from this source file's path, so LOC
// counting works regardless of the test working directory.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	// file = <root>/internal/bench/loc.go
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// AlgoFile returns the repository path of one algorithm's implementation
// for one engine ("plain" counts as the no-framework baseline).
func AlgoFile(engine Engine, a Algo) string {
	name := map[Algo]string{
		PR: "pagerank.go", BFS: "bfs.go", CC: "cc.go",
		SSSP: "sssp.go", BP: "bp.go", RW: "rw.go",
	}[a]
	switch engine {
	case GraphZ, GraphZNoDOS, GraphZNoDOSNoDM:
		return filepath.Join("internal", "algo", "graphzalgo", name)
	case GraphChi:
		return filepath.Join("internal", "algo", "chialgo", name)
	case XStream:
		return filepath.Join("internal", "algo", "xsalgo", name)
	}
	return ""
}

// PlainAlgoFile returns the repository path of the no-framework
// implementation of an algorithm.
func PlainAlgoFile(a Algo) string {
	name := map[Algo]string{
		PR: "pagerank.go", BFS: "bfs.go", CC: "cc.go",
		SSSP: "sssp.go", BP: "bp.go", RW: "rw.go",
	}[a]
	return filepath.Join("internal", "algo", "plain", name)
}

// MustLOC counts LOC, panicking on missing files (harness misconfig).
func MustLOC(relPath string) int {
	n, err := CountLOC(relPath)
	if err != nil {
		panic(fmt.Sprintf("bench: counting LOC of %s: %v", relPath, err))
	}
	return n
}
