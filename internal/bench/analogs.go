package bench

import (
	"sync"

	"graphz/internal/gen"
	"graphz/internal/graph"
)

var (
	analogMu        sync.Mutex
	analogEdgeMemo  = map[string][]graph.Edge{}
	analogStatsMemo = map[string]gen.Stats{}
)

// zipfAnalogEdges generates (memoized) the Table VIII stand-in for one
// SNAP graph.
func zipfAnalogEdges(a snapAnalog) []graph.Edge {
	analogMu.Lock()
	defer analogMu.Unlock()
	if e, ok := analogEdgeMemo[a.name]; ok {
		return e
	}
	e := gen.Zipf(a.vertices, a.edges, a.zipfS, a.seed)
	analogEdgeMemo[a.name] = e
	return e
}

// analogStats summarizes an analog graph (memoized).
func analogStats(name string, edges []graph.Edge) gen.Stats {
	analogMu.Lock()
	defer analogMu.Unlock()
	if st, ok := analogStatsMemo[name]; ok {
		return st
	}
	st := gen.Summarize(edges)
	analogStatsMemo[name] = st
	return st
}
