package bench

import (
	"fmt"
	"sync"
	"time"

	"graphz/internal/csr"
	"graphz/internal/dos"
	"graphz/internal/graph"
	"graphz/internal/graphchi"
	"graphz/internal/sim"
	"graphz/internal/storage"
	"graphz/internal/xstream"
)

// Format names an on-device graph representation.
type Format string

// The four preprocessed formats.
const (
	FormatDOS Format = "dos" // degree-ordered storage (GraphZ)
	FormatCSR Format = "csr" // CSR (the no-DOS ablations)
	FormatChi Format = "chi" // GraphChi shards
	FormatXS  Format = "xs"  // X-Stream streaming partitions
)

// Prefix is the on-device name prefix every preprocessed graph uses.
const Prefix = "g"

// RawEdgeFile is the on-device name of the raw input edge list.
const RawEdgeFile = "raw"

// PrepResult is a memoized preprocessed graph on a device, with the cost
// of producing it.
type PrepResult struct {
	Dev     *storage.Device
	Err     error // e.g. the device ran out of capacity
	Time    time.Duration
	Compute time.Duration
	IO      time.Duration
	Stats   storage.Stats
}

type prepKey struct {
	scale    string
	format   Format
	kind     storage.Kind
	evalSize int
	sym      bool
	codec    string
}

var (
	prepMu   sync.Mutex
	prepMemo = map[prepKey]*PrepResult{}
)

// Prep preprocesses a scale into the given format on a fresh device of
// the given kind, memoizing the result. codec names the DOS adjacency
// block codec ("raw" or "varint" selects the v2 format; "" keeps v1) and
// is ignored by the other formats. Callers that run algorithms on the
// returned device must ResetStats/SetClock first and clean their runtime
// files after.
func Prep(s Scale, format Format, kind storage.Kind, evalSize int, sym bool, codec string) *PrepResult {
	if format != FormatDOS {
		codec = ""
	}
	key := prepKey{s.Name, format, kind, evalSize, sym, codec}
	prepMu.Lock()
	defer prepMu.Unlock()
	if r, ok := prepMemo[key]; ok {
		return r
	}
	r := doPrep(s, format, kind, evalSize, sym, codec)
	prepMemo[key] = r
	return r
}

func doPrep(s Scale, format Format, kind storage.Kind, evalSize int, sym bool, codec string) *PrepResult {
	clock := sim.NewClock()
	dev := NewDevice(kind, nil) // raw ingest is not charged
	edges := EdgesFor(s, sym)
	if err := graph.WriteEdges(dev, RawEdgeFile, edges); err != nil {
		return &PrepResult{Dev: dev, Err: fmt.Errorf("bench: ingesting %s: %w", s.Name, err)}
	}
	dev.SetClock(clock)
	clock.BeginPhase("preprocess")

	var err error
	switch format {
	case FormatDOS:
		var blockCodec storage.Codec
		if codec != "" {
			if blockCodec, err = storage.CodecByName(codec); err != nil {
				break
			}
		}
		_, err = dos.Convert(dos.ConvertConfig{Dev: dev, Clock: clock, MemoryBudget: DefaultBudget / 4, RemoveInput: true, Codec: blockCodec}, RawEdgeFile, Prefix)
	case FormatCSR:
		_, err = csr.Build(csr.BuildConfig{Dev: dev, Clock: clock, MemoryBudget: DefaultBudget / 4}, RawEdgeFile, Prefix)
	case FormatChi:
		// Shards are sized against the RUN-time budget (one shard
		// plus its interval's vertices must fit in memory during
		// PSW), not the sort-chunk budget.
		_, err = graphchi.Shard(graphchi.ShardConfig{
			Dev: dev, Clock: clock, MemoryBudget: DefaultBudget, EdgeValSize: evalSize,
		}, RawEdgeFile, Prefix)
	case FormatXS:
		_, err = xstream.Partition(xstream.PartitionConfig{
			Dev: dev, Clock: clock, MemoryBudget: DefaultBudget,
		}, RawEdgeFile, Prefix)
	default:
		err = fmt.Errorf("bench: unknown format %q", format)
	}
	res := &PrepResult{
		Dev:     dev,
		Err:     err,
		Time:    clock.Total(),
		Compute: clock.TotalCompute(),
		IO:      clock.TotalIO(),
		Stats:   dev.Stats(),
	}
	dev.SetClock(nil)
	return res
}
