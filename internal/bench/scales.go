// Package bench is the experiment harness: it reproduces every table and
// figure of the paper's evaluation (Section VI) over the synthetic graph
// scales, the simulated HDD/SSD devices, and the three engines. Each
// experiment has a Benchmark entry point in the repository root's
// bench_test.go (see DESIGN.md's experiment index).
package bench

import (
	"sync"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// Scale describes one synthetic stand-in for a paper dataset. The edge
// counts are laptop-sized, but each scale preserves the paper's
// graph-size : memory-budget ratio and its edge : vertex sparsity, which
// are what the evaluation's effects depend on (DESIGN.md, substitutions).
type Scale struct {
	Name     string
	AnalogOf string
	RMATLog2 int // vertex ID space is 2^RMATLog2
	Edges    int
	Seed     uint64
}

// The four scales, mirroring the paper's Table X.
var (
	Small  = Scale{Name: "small", AnalogOf: "LiveJournal", RMATLog2: 14, Edges: 250_000, Seed: 1001}
	Medium = Scale{Name: "medium", AnalogOf: "Friendster", RMATLog2: 17, Edges: 1_200_000, Seed: 1002}
	Large  = Scale{Name: "large", AnalogOf: "YahooWeb", RMATLog2: 19, Edges: 4_000_000, Seed: 1003}
	XLarge = Scale{Name: "xlarge", AnalogOf: "Sim", RMATLog2: 21, Edges: 16_000_000, Seed: 1004}
)

// Scales lists all four in size order.
var Scales = []Scale{Small, Medium, Large, XLarge}

// Memory budgets standing in for the paper's 4, 8, and 16 GB RAM
// configurations (scaled 1000x down with the graphs).
const (
	Mem4  = int64(4 << 20)
	Mem8  = int64(8 << 20)
	Mem16 = int64(16 << 20)
)

// MemPresets orders the budget sweep of the Figure 6 experiments.
var MemPresets = []int64{Mem4, Mem8, Mem16}

// MemLabel names a budget preset like the paper's x axes ("4GB RAM").
func MemLabel(budget int64) string {
	switch budget {
	case Mem4:
		return "4GB"
	case Mem8:
		return "8GB"
	case Mem16:
		return "16GB"
	}
	return "custom"
}

// DefaultBudget is the budget used where the paper fixes memory.
const DefaultBudget = Mem8

// SSDCapacity reproduces "the SSD cannot hold this graph" for the xlarge
// scale: the raw graph plus any engine's preprocessing working set
// exceeds it, while small/medium/large fit comfortably.
const SSDCapacity = int64(240 << 20)

// NewHDD returns a fresh simulated magnetic disk (effectively unbounded,
// like the paper's 2 TB external drive).
func NewHDD(clock *sim.Clock) *storage.Device {
	return storage.NewDevice(storage.HDD, storage.Options{Clock: clock})
}

// NewSSD returns a fresh simulated SSD with the capacity limit.
func NewSSD(clock *sim.Clock) *storage.Device {
	return storage.NewDevice(storage.SSD, storage.Options{Clock: clock, Capacity: SSDCapacity})
}

// NewDevice returns a fresh device of the given kind with the harness's
// standard capacity configuration.
func NewDevice(kind storage.Kind, clock *sim.Clock) *storage.Device {
	switch kind {
	case storage.SSD:
		return NewSSD(clock)
	default:
		return NewHDD(clock)
	}
}

var (
	edgeMu    sync.Mutex
	edgeMemo  = map[string][]graph.Edge{}
	statsMemo = map[string]gen.Stats{}
)

// EdgesFor generates (and memoizes) a scale's edge list; symmetric
// doubles every edge, which is how connected-components inputs are
// prepared for all engines.
func EdgesFor(s Scale, symmetric bool) []graph.Edge {
	key := s.Name
	if symmetric {
		key += "+sym"
	}
	edgeMu.Lock()
	defer edgeMu.Unlock()
	if e, ok := edgeMemo[key]; ok {
		return e
	}
	edges := gen.RMAT(s.RMATLog2, s.Edges, gen.NaturalRMAT, s.Seed)
	if symmetric {
		sym := make([]graph.Edge, 0, 2*len(edges))
		for _, e := range edges {
			sym = append(sym, e, graph.Edge{Src: e.Dst, Dst: e.Src})
		}
		edges = sym
	}
	edgeMemo[key] = edges
	return edges
}

// StatsFor summarizes a scale (memoized); feeds Table X.
func StatsFor(s Scale) gen.Stats {
	edgeMu.Lock()
	if st, ok := statsMemo[s.Name]; ok {
		edgeMu.Unlock()
		return st
	}
	edgeMu.Unlock()
	st := gen.Summarize(EdgesFor(s, false))
	edgeMu.Lock()
	statsMemo[s.Name] = st
	edgeMu.Unlock()
	return st
}

// MaxDegreeVertex returns the vertex with the largest out-degree (ties to
// the smallest ID) — the BFS/SSSP source every engine shares. Under
// degree-ordered storage this is exactly new ID 0.
func MaxDegreeVertex(edges []graph.Edge) graph.VertexID {
	n := int(graph.MaxID(edges)) + 1
	deg := make([]uint32, n)
	for _, e := range edges {
		deg[e.Src]++
	}
	best := 0
	for v := 1; v < n; v++ {
		if deg[v] > deg[best] {
			best = v
		}
	}
	return graph.VertexID(best)
}
