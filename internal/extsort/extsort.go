// Package extsort implements external k-way merge sort of fixed-size
// records stored on the simulated device. It is the preprocessing
// substrate the paper relies on: degree-ordered conversion performs four
// external sorts, and the GraphChi-style baseline shards with two.
//
// The algorithm is the classic one: the input is read in memory-budget
// sized chunks, each chunk is sorted in memory and spilled as a sorted
// run, and runs are merged with a loser-tree style heap. When the number
// of runs exceeds the merge fan-in, merging proceeds in multiple passes.
package extsort

import (
	"fmt"
	"io"
	"math"
	"sort"

	"graphz/internal/obs"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// DefaultFanIn is the maximum number of runs merged in one pass.
const DefaultFanIn = 16

// MinMemoryBudget is the floor applied to Config.MemoryBudget so a sort
// can always hold at least a few records per merge input.
const MinMemoryBudget = 64 * 1024

// Config describes one external sort.
type Config struct {
	// Dev is the device holding input, output, and temporary runs.
	Dev *storage.Device
	// Clock receives compute charges for comparisons and moves; nil
	// disables compute accounting.
	Clock *sim.Clock
	// RecordSize is the fixed record length in bytes; the input file
	// size must be a multiple of it.
	RecordSize int
	// Less compares two records. Ignored when Key is set.
	Less func(a, b []byte) bool
	// Key, when non-nil, maps a record to a uint64 sort key (ascending
	// order). The key path avoids per-comparison decoding and is
	// several times faster; all the preprocessing pipelines use it.
	Key func(rec []byte) uint64
	// MemoryBudget bounds the bytes of records held in memory at once
	// (run formation buffer; merge buffers are carved from it too).
	MemoryBudget int64
	// TempPrefix names temporary run files; defaults to output+".run".
	TempPrefix string
	// FanIn bounds runs merged per pass; defaults to DefaultFanIn.
	FanIn int
	// RemoveInput deletes the input file once its sorted runs are
	// formed, halving the peak device footprint. Use only when the
	// caller owns the input.
	RemoveInput bool
	// Combine, when non-nil, folds the later of two equal-comparing
	// records into the earlier one in place, during run formation and at
	// every merge pass. The fold must be commutative and associative:
	// records may be grouped arbitrarily across passes. The output then
	// holds one record per distinct key.
	Combine func(dst, src []byte)
	// Stats, when non-nil, receives the sort's run/merge/combine totals
	// and any temp-file removal failures.
	Stats *Stats
	// Obs, when non-nil, counts removal failures on
	// RemoveErrorsCounter; nil disables metric collection.
	Obs *obs.Registry
}

// RemoveErrorsCounter is the registry counter incremented when a
// temporary- or input-file removal fails. It shares its name with the
// engine's runtime-file cleanup accounting, so one counter tracks every
// leaked file.
const RemoveErrorsCounter = "graphz_remove_errors_total"

// Stats reports what one Sort did.
type Stats struct {
	// Runs is the number of sorted runs formed from the input.
	Runs int
	// MergePasses counts merge passes over the run set (0 when the
	// input formed at most one run).
	MergePasses int
	// RecordsIn/RecordsOut are the record counts read from the input and
	// written to the output; they differ only when Combine folded some.
	RecordsIn  int64
	RecordsOut int64
	// Combined is the number of records Combine folded away.
	Combined int64
	// RemoveErrors counts input/temp removals that failed. The files
	// leak on the device (its Stats.RemoveErrors counts them too), but
	// the sorted output is unaffected, so Sort does not fail.
	RemoveErrors int64
}

// removeTemp deletes a file Sort no longer needs, surfacing failures in
// the stats and the metrics registry instead of dropping them: a leaked
// run is an audit concern, not a sort failure.
func removeTemp(cfg Config, st *Stats, name string) {
	if err := cfg.Dev.Remove(name); err != nil {
		st.RemoveErrors++
		cfg.Obs.Counter(RemoveErrorsCounter).Inc()
	}
}

// Sort sorts the records of the input file into the output file (which is
// created or truncated). Input and output may not be the same file.
func Sort(cfg Config, input, output string) error {
	if cfg.RecordSize <= 0 {
		return fmt.Errorf("extsort: record size %d must be positive", cfg.RecordSize)
	}
	if cfg.Less == nil && cfg.Key == nil {
		return fmt.Errorf("extsort: a Less or Key function is required")
	}
	if input == output {
		return fmt.Errorf("extsort: input and output are both %q", input)
	}
	if cfg.MemoryBudget < MinMemoryBudget {
		cfg.MemoryBudget = MinMemoryBudget
	}
	if cfg.FanIn <= 1 {
		cfg.FanIn = DefaultFanIn
	}
	if cfg.TempPrefix == "" {
		cfg.TempPrefix = output + ".run"
	}

	st := &Stats{}
	if cfg.Stats != nil {
		// Registered before the cleanup defers, so it runs after them and
		// captures their RemoveErrors.
		defer func() { *cfg.Stats = *st }()
	}

	in, err := cfg.Dev.Open(input)
	if err != nil {
		return fmt.Errorf("extsort: %w", err)
	}
	size := in.Size()
	if size%int64(cfg.RecordSize) != 0 {
		return fmt.Errorf("extsort: %q size %d is not a multiple of record size %d",
			input, size, cfg.RecordSize)
	}
	nRecords := size / int64(cfg.RecordSize)
	st.RecordsIn = nRecords

	// Charge the comparison work up front: ~N log2 N record moves
	// across run formation plus all merge passes.
	if cfg.Clock != nil && nRecords > 1 {
		levels := int64(math.Ceil(math.Log2(float64(nRecords))))
		cfg.Clock.ComputeUnits(nRecords*levels, sim.CostRecordSort)
	}

	runs, err := formRuns(cfg, st, in)
	if err != nil {
		return err
	}
	st.Runs = len(runs)
	if cfg.RemoveInput {
		removeTemp(cfg, st, input)
	}
	defer func() {
		for _, r := range runs {
			removeTemp(cfg, st, r)
		}
	}()
	return mergeRuns(cfg, st, runs, output)
}

// formRuns splits the input into sorted runs and returns their file names.
func formRuns(cfg Config, st *Stats, in *storage.File) ([]string, error) {
	recSz := cfg.RecordSize
	perRun := int(cfg.MemoryBudget) / recSz
	if perRun < 1 {
		perRun = 1
	}
	buf := make([]byte, perRun*recSz)
	r := storage.NewReader(in)
	var runs []string
	for {
		// Read up to a full buffer of whole records.
		n, err := readUpTo(r, buf)
		if err != nil {
			return runs, fmt.Errorf("extsort: reading input: %w", err)
		}
		if n == 0 {
			break
		}
		if n%recSz != 0 {
			return runs, fmt.Errorf("extsort: torn record: read %d bytes", n)
		}
		chunk := buf[:n]
		if cfg.Key != nil {
			sortChunkByKey(chunk, recSz, cfg.Key)
		} else {
			sortChunk(chunk, recSz, cfg.Less)
		}
		if cfg.Combine != nil {
			var folded int64
			chunk, folded = combineChunk(cfg, chunk)
			st.Combined += folded
		}
		name := fmt.Sprintf("%s%d", cfg.TempPrefix, len(runs))
		if err := storage.WriteAll(cfg.Dev, name, chunk); err != nil {
			return runs, fmt.Errorf("extsort: spilling run: %w", err)
		}
		runs = append(runs, name)
	}
	return runs, nil
}

// readUpTo fills buf as far as the stream allows, returning the byte count
// (0 at clean EOF).
func readUpTo(r *storage.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// sortChunk sorts the records inside chunk in place. It sorts an index
// permutation first and then applies it with one scratch buffer, so
// sort.Slice never swaps large byte ranges.
func sortChunk(chunk []byte, recSz int, less func(a, b []byte) bool) {
	n := len(chunk) / recSz
	if n < 2 {
		return
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rec := func(i int) []byte { return chunk[i*recSz : (i+1)*recSz] }
	sort.SliceStable(idx, func(a, b int) bool { return less(rec(idx[a]), rec(idx[b])) })
	out := make([]byte, len(chunk))
	for i, j := range idx {
		copy(out[i*recSz:(i+1)*recSz], rec(j))
	}
	copy(chunk, out)
}

// mergeRuns merges the runs into output, in as many passes as the fan-in
// requires. A single run is renamed by copy (the device has no rename).
func mergeRuns(cfg Config, st *Stats, runs []string, output string) error {
	if len(runs) == 0 {
		_, err := cfg.Dev.Create(output)
		return err
	}
	pass := 0
	for len(runs) > 1 {
		var next []string
		for lo := 0; lo < len(runs); lo += cfg.FanIn {
			hi := lo + cfg.FanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			group := runs[lo:hi]
			var dst string
			if len(runs) <= cfg.FanIn {
				dst = output
			} else {
				dst = fmt.Sprintf("%s.m%d_%d", cfg.TempPrefix, pass, len(next))
			}
			written, err := mergeGroup(cfg, st, group, dst)
			if err != nil {
				return err
			}
			if dst == output {
				st.RecordsOut = written
			}
			for _, r := range group {
				removeTemp(cfg, st, r)
			}
			next = append(next, dst)
		}
		runs = next
		pass++
	}
	st.MergePasses = pass
	if runs[0] != output {
		data, err := storage.ReadAllFile(cfg.Dev, runs[0])
		if err != nil {
			return err
		}
		if err := storage.WriteAll(cfg.Dev, output, data); err != nil {
			return err
		}
		st.RecordsOut = int64(len(data) / cfg.RecordSize)
		removeTemp(cfg, st, runs[0])
	}
	return nil
}

// combineChunk collapses a sorted chunk's equal-comparing neighbors with
// cfg.Combine, dispatching on the comparison mode.
func combineChunk(cfg Config, chunk []byte) ([]byte, int64) {
	if cfg.Key != nil {
		return CombineSorted(chunk, cfg.RecordSize, cfg.Key, cfg.Combine)
	}
	recSz := cfg.RecordSize
	n := len(chunk) / recSz
	if n < 2 {
		return chunk, 0
	}
	w := 0
	var folded int64
	for i := 1; i < n; i++ {
		cur := chunk[i*recSz : (i+1)*recSz]
		kept := chunk[w*recSz : (w+1)*recSz]
		if !cfg.Less(kept, cur) && !cfg.Less(cur, kept) {
			cfg.Combine(kept, cur)
			folded++
			continue
		}
		w++
		if w != i {
			copy(chunk[w*recSz:(w+1)*recSz], cur)
		}
	}
	return chunk[:(w+1)*recSz], folded
}

// sortChunkByKey sorts records by their uint64 keys, stably.
func sortChunkByKey(chunk []byte, recSz int, key func([]byte) uint64) {
	n := len(chunk) / recSz
	if n < 2 {
		return
	}
	type keyed struct {
		k   uint64
		idx int32
	}
	ks := make([]keyed, n)
	for i := range ks {
		ks[i] = keyed{k: key(chunk[i*recSz : (i+1)*recSz]), idx: int32(i)}
	}
	sort.Slice(ks, func(a, b int) bool {
		if ks[a].k != ks[b].k {
			return ks[a].k < ks[b].k
		}
		return ks[a].idx < ks[b].idx
	})
	out := make([]byte, len(chunk))
	for i, kv := range ks {
		copy(out[i*recSz:(i+1)*recSz], chunk[int(kv.idx)*recSz:int(kv.idx+1)*recSz])
	}
	copy(chunk, out)
}

// mergeSource is one run feeding the merge heap.
type mergeSource struct {
	src Source
	cur []byte
	key uint64 // cached sort key when key-based sorting is active
	ord int    // tie-break by run order for stability
}

// mergeHeap orders sources by their current record.
type mergeHeap struct {
	src   []*mergeSource
	less  func(a, b []byte) bool
	keyFn func([]byte) uint64
}

func (h *mergeHeap) Len() int { return len(h.src) }

func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.src[i], h.src[j]
	if h.keyFn != nil {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.ord < b.ord
	}
	if h.less(a.cur, b.cur) {
		return true
	}
	if h.less(b.cur, a.cur) {
		return false
	}
	return a.ord < b.ord
}

func (h *mergeHeap) Swap(i, j int) { h.src[i], h.src[j] = h.src[j], h.src[i] }

func (h *mergeHeap) Push(x any) { h.src = append(h.src, x.(*mergeSource)) }

func (h *mergeHeap) Pop() any {
	old := h.src
	n := len(old)
	x := old[n-1]
	h.src = old[:n-1]
	return x
}

// mergeGroup merges a group of sorted runs into dst through a streaming
// Merger, folding equal keys when a Combine hook is configured. It
// returns the number of records written.
func mergeGroup(cfg Config, st *Stats, group []string, dst string) (int64, error) {
	srcs := make([]Source, 0, len(group))
	for _, name := range group {
		f, err := cfg.Dev.Open(name)
		if err != nil {
			return 0, fmt.Errorf("extsort: opening run %q: %w", name, err)
		}
		srcs = append(srcs, NewReaderSource(storage.NewReader(f)))
	}
	m, err := NewMerger(MergeConfig{
		RecordSize: cfg.RecordSize,
		Less:       cfg.Less,
		Key:        cfg.Key,
		Combine:    cfg.Combine,
	}, srcs)
	if err != nil {
		return 0, err
	}

	out, err := cfg.Dev.Create(dst)
	if err != nil {
		return 0, err
	}
	w := storage.NewWriter(out)
	var written int64
	for {
		rec, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return written, err
		}
		if _, err := w.Write(rec); err != nil {
			return written, fmt.Errorf("extsort: writing %q: %w", dst, err)
		}
		written++
	}
	st.Combined += m.Combined()
	return written, w.Flush()
}
