package extsort

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"graphz/internal/sim"
	"graphz/internal/storage"
)

func u32Less(a, b []byte) bool {
	return binary.LittleEndian.Uint32(a) < binary.LittleEndian.Uint32(b)
}

func writeU32s(t *testing.T, dev *storage.Device, name string, vals []uint32) {
	t.Helper()
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	if err := storage.WriteAll(dev, name, buf); err != nil {
		t.Fatal(err)
	}
}

func readU32s(t *testing.T, dev *storage.Device, name string) []uint32 {
	t.Helper()
	data, err := storage.ReadAllFile(dev, name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, len(data)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[4*i:])
	}
	return out
}

func sortU32File(t *testing.T, dev *storage.Device, budget int64, in, out string) {
	t.Helper()
	err := Sort(Config{
		Dev:          dev,
		RecordSize:   4,
		Less:         u32Less,
		MemoryBudget: budget,
	}, in, out)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortSmall(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	writeU32s(t, dev, "in", []uint32{5, 3, 9, 1, 1, 7})
	sortU32File(t, dev, 0, "in", "out")
	got := readU32s(t, dev, "out")
	want := []uint32{1, 1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSortEmpty(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	writeU32s(t, dev, "in", nil)
	sortU32File(t, dev, 0, "in", "out")
	if got := readU32s(t, dev, "out"); len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestSortSingleRecord(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	writeU32s(t, dev, "in", []uint32{42})
	sortU32File(t, dev, 0, "in", "out")
	got := readU32s(t, dev, "out")
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("got %v", got)
	}
}

// TestSortManyRuns forces a tiny memory budget so run formation, multi-run
// merging, and (with tiny fan-in) multi-pass merging are all exercised.
func TestSortManyRunsMultiPass(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	rng := rand.New(rand.NewSource(7))
	n := 50_000
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	writeU32s(t, dev, "in", vals)
	err := Sort(Config{
		Dev:          dev,
		RecordSize:   4,
		Less:         u32Less,
		MemoryBudget: MinMemoryBudget, // 64KB -> 16k records per run -> 4 runs
		FanIn:        2,               // force multiple merge passes
	}, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	got := readU32s(t, dev, "out")
	want := append([]uint32(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: got %d, want %d", i, got[i], want[i])
		}
	}
	// Temp runs must be cleaned up.
	for _, name := range dev.List() {
		if name != "in" && name != "out" {
			t.Errorf("leftover temp file %q", name)
		}
	}
}

// TestSortProperty: output is sorted and is a permutation of the input,
// for arbitrary inputs and budgets.
func TestSortProperty(t *testing.T) {
	check := func(vals []uint32, budgetSeed uint8) bool {
		dev := storage.NewDevice(storage.NullDevice, storage.Options{})
		buf := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(buf[4*i:], v)
		}
		if err := storage.WriteAll(dev, "in", buf); err != nil {
			return false
		}
		err := Sort(Config{
			Dev:          dev,
			RecordSize:   4,
			Less:         u32Less,
			MemoryBudget: int64(budgetSeed),
			FanIn:        2 + int(budgetSeed)%5,
		}, "in", "out")
		if err != nil {
			return false
		}
		data, err := storage.ReadAllFile(dev, "out")
		if err != nil || len(data) != len(buf) {
			return false
		}
		got := make([]uint32, len(vals))
		for i := range got {
			got[i] = binary.LittleEndian.Uint32(data[4*i:])
		}
		want := append([]uint32(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSortStability(t *testing.T) {
	// Records are (key, payload); sort by key only and verify payloads
	// of equal keys preserve input order.
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	type rec struct{ k, p uint32 }
	recs := []rec{{2, 0}, {1, 1}, {2, 2}, {1, 3}, {2, 4}, {1, 5}}
	buf := make([]byte, 8*len(recs))
	for i, r := range recs {
		binary.LittleEndian.PutUint32(buf[8*i:], r.k)
		binary.LittleEndian.PutUint32(buf[8*i+4:], r.p)
	}
	if err := storage.WriteAll(dev, "in", buf); err != nil {
		t.Fatal(err)
	}
	err := Sort(Config{
		Dev:        dev,
		RecordSize: 8,
		Less:       u32Less, // compares first 4 bytes (the key)
		// Force one record per run so stability depends on the
		// merge tie-break.
		MemoryBudget: 1,
		FanIn:        2,
	}, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := storage.ReadAllFile(dev, "out")
	var got []rec
	for i := 0; i < len(data); i += 8 {
		got = append(got, rec{
			binary.LittleEndian.Uint32(data[i:]),
			binary.LittleEndian.Uint32(data[i+4:]),
		})
	}
	want := []rec{{1, 1}, {1, 3}, {1, 5}, {2, 0}, {2, 2}, {2, 4}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stability violated: got %v, want %v", got, want)
		}
	}
}

func TestSortErrors(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	writeU32s(t, dev, "in", []uint32{1})
	base := Config{Dev: dev, RecordSize: 4, Less: u32Less}

	cfg := base
	cfg.RecordSize = 0
	if err := Sort(cfg, "in", "out"); err == nil {
		t.Error("zero record size should fail")
	}
	cfg = base
	cfg.Less = nil
	if err := Sort(cfg, "in", "out"); err == nil {
		t.Error("nil Less should fail")
	}
	if err := Sort(base, "in", "in"); err == nil {
		t.Error("in-place sort should fail")
	}
	if err := Sort(base, "missing", "out"); err == nil {
		t.Error("missing input should fail")
	}
	// Torn input: size not a multiple of record size.
	if err := storage.WriteAll(dev, "torn", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := Sort(base, "torn", "out"); err == nil {
		t.Error("torn input should fail")
	}
}

func TestSortChargesCompute(t *testing.T) {
	clock := sim.NewClock()
	dev := storage.NewDevice(storage.SSD, storage.Options{Clock: clock})
	vals := make([]uint32, 10_000)
	for i := range vals {
		vals[i] = uint32(len(vals) - i)
	}
	writeU32s(t, dev, "in", vals)
	err := Sort(Config{
		Dev: dev, Clock: clock, RecordSize: 4, Less: u32Less,
	}, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if clock.TotalCompute() == 0 {
		t.Error("sort charged no compute time")
	}
	if clock.TotalIO() == 0 {
		t.Error("sort charged no IO time")
	}
}

func TestBytesCompare(t *testing.T) {
	// Guard the assumption u32Less makes about little-endian compare:
	// a mis-ordered comparator would silently corrupt every pipeline
	// above. Compare against bytes.Compare on big-endian keys.
	a := make([]byte, 4)
	b := make([]byte, 4)
	f := func(x, y uint32) bool {
		binary.LittleEndian.PutUint32(a, x)
		binary.LittleEndian.PutUint32(b, y)
		ltLE := u32Less(a, b)
		binary.BigEndian.PutUint32(a, x)
		binary.BigEndian.PutUint32(b, y)
		ltBE := bytes.Compare(a, b) < 0
		return ltLE == ltBE
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRemoveInput(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	writeU32s(t, dev, "in", []uint32{3, 1, 2})
	err := Sort(Config{
		Dev: dev, RecordSize: 4, Less: u32Less, RemoveInput: true,
	}, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Exists("in") {
		t.Error("input should be removed after run formation")
	}
	if got := readU32s(t, dev, "out"); len(got) != 3 || got[0] != 1 {
		t.Errorf("output wrong: %v", got)
	}
}

func TestKeyAndLessAgree(t *testing.T) {
	// Sorting by Key must produce the same order as the equivalent
	// Less for a random input.
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	rng := rand.New(rand.NewSource(99))
	vals := make([]uint32, 5000)
	for i := range vals {
		vals[i] = rng.Uint32() % 500 // plenty of duplicates
	}
	writeU32s(t, dev, "in", vals)
	if err := Sort(Config{Dev: dev, RecordSize: 4, Less: u32Less, MemoryBudget: 1}, "in", "less"); err != nil {
		t.Fatal(err)
	}
	if err := Sort(Config{
		Dev: dev, RecordSize: 4, MemoryBudget: 1,
		Key: func(rec []byte) uint64 { return uint64(binary.LittleEndian.Uint32(rec)) },
	}, "in", "key"); err != nil {
		t.Fatal(err)
	}
	a := readU32s(t, dev, "less")
	b := readU32s(t, dev, "key")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Key and Less orders diverge at %d", i)
		}
	}
}
