package extsort

// Streaming k-way merge over already-sorted record sources, exported so
// other subsystems can reuse the merge heap without routing their data
// through Sort's file protocol. The engine's sorted spill drain merges
// its on-device runs and in-memory buffer tail through a Merger, and the
// optional Combine hook is the sort-reduce primitive: equal-key records
// are folded together while they stream through the heap, so k messages
// to one destination leave the merge as one.

import (
	"container/heap"
	"fmt"
	"io"

	"graphz/internal/storage"
)

// Source yields the records of one sorted run. ReadRecord fills rec with
// the next record, returning io.EOF (and only io.EOF) once the run is
// exhausted.
type Source interface {
	ReadRecord(rec []byte) error
}

// readerSource adapts a storage stream (whole-file or range) to a Source.
type readerSource struct{ r *storage.Reader }

func (s readerSource) ReadRecord(rec []byte) error { return s.r.ReadFull(rec) }

// NewReaderSource wraps a storage.Reader as a merge Source. The reader's
// range must hold a whole number of records.
func NewReaderSource(r *storage.Reader) Source { return readerSource{r} }

// sliceSource serves records from an in-memory sorted chunk.
type sliceSource struct{ data []byte }

// NewSliceSource wraps an in-memory sorted chunk as a merge Source. The
// slice is consumed in place; it must hold a whole number of records.
func NewSliceSource(data []byte) Source { return &sliceSource{data: data} }

func (s *sliceSource) ReadRecord(rec []byte) error {
	if len(s.data) == 0 {
		return io.EOF
	}
	if len(s.data) < len(rec) {
		return fmt.Errorf("extsort: torn record: %d bytes left, record is %d", len(s.data), len(rec))
	}
	copy(rec, s.data[:len(rec)])
	s.data = s.data[len(rec):]
	return nil
}

// MergeConfig configures a streaming Merger.
type MergeConfig struct {
	// RecordSize is the fixed record length in bytes.
	RecordSize int
	// Less compares two records. Ignored when Key is set.
	Less func(a, b []byte) bool
	// Key, when non-nil, maps a record to its uint64 sort key.
	Key func(rec []byte) uint64
	// Combine, when non-nil, folds src (the later record in merge order)
	// into dst in place whenever the two compare equal. The fold must be
	// commutative and associative in its effect on the eventual consumer:
	// records may be combined in any grouping across run formation and
	// merge passes.
	Combine func(dst, src []byte)
}

// Merger streams the k-way merge of its sources, one record per Next
// call, folding equal-key neighbors when a Combine hook is configured.
type Merger struct {
	h        *mergeHeap
	recSz    int
	combine  func(dst, src []byte)
	out      []byte
	outKey   uint64
	combined int64
}

// NewMerger primes the sources and builds the merge heap. Empty sources
// are allowed (they contribute nothing). Source order is the stability
// tie-break: on equal keys, records from earlier sources win.
func NewMerger(cfg MergeConfig, srcs []Source) (*Merger, error) {
	if cfg.RecordSize <= 0 {
		return nil, fmt.Errorf("extsort: record size %d must be positive", cfg.RecordSize)
	}
	if cfg.Less == nil && cfg.Key == nil {
		return nil, fmt.Errorf("extsort: a Less or Key function is required")
	}
	h := &mergeHeap{less: cfg.Less, keyFn: cfg.Key}
	for ord, s := range srcs {
		ms := &mergeSource{src: s, cur: make([]byte, cfg.RecordSize), ord: ord}
		if err := s.ReadRecord(ms.cur); err != nil {
			if err == io.EOF {
				continue // empty source
			}
			return nil, fmt.Errorf("extsort: priming merge source %d: %w", ord, err)
		}
		if h.keyFn != nil {
			ms.key = h.keyFn(ms.cur)
		}
		h.src = append(h.src, ms)
	}
	heap.Init(h)
	return &Merger{
		h:       h,
		recSz:   cfg.RecordSize,
		combine: cfg.Combine,
		out:     make([]byte, cfg.RecordSize),
	}, nil
}

// Next returns the next merged record, valid until the following call.
// io.EOF signals a completed merge.
func (m *Merger) Next() ([]byte, error) {
	if m.h.Len() == 0 {
		return nil, io.EOF
	}
	top := m.h.src[0]
	copy(m.out, top.cur)
	m.outKey = top.key
	if err := m.advanceHead(); err != nil {
		return nil, err
	}
	if m.combine != nil {
		for m.h.Len() > 0 && m.headEqualsOut() {
			m.combine(m.out, m.h.src[0].cur)
			m.combined++
			if err := m.advanceHead(); err != nil {
				return nil, err
			}
		}
	}
	return m.out, nil
}

// Combined returns how many records Next has folded away so far.
func (m *Merger) Combined() int64 { return m.combined }

// headEqualsOut reports whether the heap's current head sorts equal to
// the record pending in m.out.
func (m *Merger) headEqualsOut() bool {
	if m.h.keyFn != nil {
		return m.h.src[0].key == m.outKey
	}
	cur := m.h.src[0].cur
	return !m.h.less(m.out, cur) && !m.h.less(cur, m.out)
}

// advanceHead replaces the heap head's record with its source's next one,
// dropping the source at EOF.
func (m *Merger) advanceHead() error {
	top := m.h.src[0]
	err := top.src.ReadRecord(top.cur)
	switch err {
	case nil:
		if m.h.keyFn != nil {
			top.key = m.h.keyFn(top.cur)
		}
		heap.Fix(m.h, 0)
		return nil
	case io.EOF:
		heap.Pop(m.h)
		return nil
	default:
		return fmt.Errorf("extsort: advancing merge source %d: %w", top.ord, err)
	}
}

// SortRecords stably sorts chunk's fixed-size records in place by their
// uint64 keys (ascending). Exported for callers that form sorted runs
// outside Sort's file protocol, like the engine's spill buffers.
func SortRecords(chunk []byte, recSz int, key func([]byte) uint64) {
	sortChunkByKey(chunk, recSz, key)
}

// CombineSorted collapses adjacent equal-key records of a sorted chunk in
// place, folding each later record into its predecessor with combine. It
// returns the shortened chunk and the number of records folded away.
func CombineSorted(chunk []byte, recSz int, key func([]byte) uint64, combine func(dst, src []byte)) ([]byte, int64) {
	n := len(chunk) / recSz
	if n < 2 {
		return chunk, 0
	}
	w := 0 // index of the last kept record
	wk := key(chunk[:recSz])
	var folded int64
	for i := 1; i < n; i++ {
		cur := chunk[i*recSz : (i+1)*recSz]
		k := key(cur)
		if k == wk {
			combine(chunk[w*recSz:(w+1)*recSz], cur)
			folded++
			continue
		}
		w++
		if w != i {
			copy(chunk[w*recSz:(w+1)*recSz], cur)
		}
		wk = k
	}
	return chunk[:(w+1)*recSz], folded
}
