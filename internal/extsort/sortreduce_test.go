package extsort

import (
	"encoding/binary"
	"io"
	"math/rand"
	"strings"
	"testing"

	"graphz/internal/obs"
	"graphz/internal/storage"
)

// Tests for the sort-reduce additions: the streaming Merger, the Combine
// fold through Sort, the Stats report, and removal-error surfacing.

// kcRecord is an 8-byte (key, count) record; kcCombine sums counts so a
// sort over records with count 1 yields per-key multiplicities.
func kcKey(rec []byte) uint64 { return uint64(binary.LittleEndian.Uint32(rec)) }

func kcCombine(dst, src []byte) {
	sum := binary.LittleEndian.Uint32(dst[4:]) + binary.LittleEndian.Uint32(src[4:])
	binary.LittleEndian.PutUint32(dst[4:], sum)
}

func writeKC(t *testing.T, dev *storage.Device, name string, keys []uint32) {
	t.Helper()
	buf := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(buf[8*i:], k)
		binary.LittleEndian.PutUint32(buf[8*i+4:], 1)
	}
	if err := storage.WriteAll(dev, name, buf); err != nil {
		t.Fatal(err)
	}
}

func readKC(t *testing.T, dev *storage.Device, name string) map[uint32]uint32 {
	t.Helper()
	data, err := storage.ReadAllFile(dev, name)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint32]uint32)
	prev := int64(-1)
	for i := 0; i+8 <= len(data); i += 8 {
		k := binary.LittleEndian.Uint32(data[i:])
		if int64(k) < prev {
			t.Fatalf("output not sorted: key %d after %d", k, prev)
		}
		prev = int64(k)
		out[k] += binary.LittleEndian.Uint32(data[i+4:])
	}
	return out
}

// TestSortCombineFolds sorts duplicate-heavy records with the Combine
// hook through run formation AND merge passes (tiny budget, FanIn 2) and
// checks one output record per distinct key with the exact multiplicity,
// plus a balanced Stats report.
func TestSortCombineFolds(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	rng := rand.New(rand.NewSource(61))
	n := 40_000
	keys := make([]uint32, n)
	wantCount := make(map[uint32]uint32)
	for i := range keys {
		keys[i] = rng.Uint32() % 300 // heavy duplication
		wantCount[keys[i]]++
	}
	writeKC(t, dev, "in", keys)
	var st Stats
	err := Sort(Config{
		Dev:          dev,
		RecordSize:   8,
		Key:          kcKey,
		Combine:      kcCombine,
		MemoryBudget: MinMemoryBudget, // 8k records per run -> 5 runs
		FanIn:        2,               // force intermediate passes to fold too
		Stats:        &st,
	}, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	got := readKC(t, dev, "out")
	if len(got) != len(wantCount) {
		t.Fatalf("got %d distinct keys, want %d", len(got), len(wantCount))
	}
	for k, w := range wantCount {
		if got[k] != w {
			t.Fatalf("key %d count = %d, want %d", k, got[k], w)
		}
	}
	if st.RecordsIn != int64(n) {
		t.Errorf("RecordsIn = %d, want %d", st.RecordsIn, n)
	}
	if st.RecordsOut != int64(len(wantCount)) {
		t.Errorf("RecordsOut = %d, want %d distinct keys", st.RecordsOut, len(wantCount))
	}
	if st.RecordsIn != st.RecordsOut+st.Combined {
		t.Errorf("RecordsIn %d != RecordsOut %d + Combined %d", st.RecordsIn, st.RecordsOut, st.Combined)
	}
	if st.Runs < 2 {
		t.Errorf("Runs = %d, want several under a tiny budget", st.Runs)
	}
	if st.MergePasses < 2 {
		t.Errorf("MergePasses = %d, want > 1 with FanIn 2", st.MergePasses)
	}
	if st.RemoveErrors != 0 {
		t.Errorf("RemoveErrors = %d on a healthy device", st.RemoveErrors)
	}
}

// TestSortCombineLessPath exercises the Less-based combine (no Key): same
// fold, comparison-equality grouping.
func TestSortCombineLessPath(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	keys := []uint32{5, 2, 5, 5, 2, 9, 2, 2}
	writeKC(t, dev, "in", keys)
	var st Stats
	err := Sort(Config{
		Dev:          dev,
		RecordSize:   8,
		Less:         u32Less, // compares the key half only
		Combine:      kcCombine,
		MemoryBudget: 1, // one record per run: all folding happens in merges
		FanIn:        2,
		Stats:        &st,
	}, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	got := readKC(t, dev, "out")
	want := map[uint32]uint32{2: 4, 5: 3, 9: 1}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %d count = %d, want %d (all: %v)", k, got[k], w, got)
		}
	}
	if st.Combined != int64(len(keys)-len(want)) {
		t.Errorf("Combined = %d, want %d", st.Combined, len(keys)-len(want))
	}
}

// TestSortStatsNoCombine checks the Stats report on a plain multi-pass
// sort: counts balanced with nothing folded.
func TestSortStatsNoCombine(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	rng := rand.New(rand.NewSource(62))
	vals := make([]uint32, 50_000)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	writeU32s(t, dev, "in", vals)
	var st Stats
	err := Sort(Config{
		Dev:          dev,
		RecordSize:   4,
		Less:         u32Less,
		MemoryBudget: MinMemoryBudget,
		FanIn:        2,
		Stats:        &st,
	}, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if st.RecordsIn != int64(len(vals)) || st.RecordsOut != int64(len(vals)) {
		t.Errorf("RecordsIn/Out = %d/%d, want %d/%d", st.RecordsIn, st.RecordsOut, len(vals), len(vals))
	}
	if st.Combined != 0 {
		t.Errorf("Combined = %d without a Combine hook", st.Combined)
	}
	if st.Runs != 4 {
		t.Errorf("Runs = %d, want 4 (64KiB budget over 200KB)", st.Runs)
	}
	if st.MergePasses != 2 {
		t.Errorf("MergePasses = %d, want 2 (4 runs at fan-in 2)", st.MergePasses)
	}
}

// TestSortSingleRunStats: a one-run sort is a straight copy — no merge
// passes, counts still reported.
func TestSortSingleRunStats(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	writeU32s(t, dev, "in", []uint32{3, 1, 2})
	var st Stats
	err := Sort(Config{Dev: dev, RecordSize: 4, Less: u32Less, Stats: &st}, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || st.MergePasses != 0 {
		t.Errorf("Runs/MergePasses = %d/%d, want 1/0", st.Runs, st.MergePasses)
	}
	if st.RecordsIn != 3 || st.RecordsOut != 3 {
		t.Errorf("RecordsIn/Out = %d/%d, want 3/3", st.RecordsIn, st.RecordsOut)
	}
}

// TestSortSurfacesRemoveErrors is the regression test for the dropped
// Device.Remove errors: with every removal failing, Sort must still
// produce a correct output, but the failures must land in
// Stats.RemoveErrors and graphz_remove_errors_total instead of
// disappearing. RemoveInput makes the input file one of the failures.
func TestSortSurfacesRemoveErrors(t *testing.T) {
	fd := storage.NewFaultDevice(storage.NullDevice, storage.Options{})
	rng := rand.New(rand.NewSource(63))
	vals := make([]uint32, 50_000)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	writeU32s(t, fd.Device, "in", vals)
	fd.Arm(storage.FaultPlan{FailRemoves: true})

	reg := obs.NewRegistry()
	var st Stats
	err := Sort(Config{
		Dev:          fd.Device,
		RecordSize:   4,
		Less:         u32Less,
		MemoryBudget: MinMemoryBudget,
		FanIn:        2,
		RemoveInput:  true,
		Stats:        &st,
		Obs:          reg,
	}, "in", "out")
	if err != nil {
		t.Fatalf("leaked temp files must not fail the sort: %v", err)
	}
	fd.Disarm()

	got := readU32s(t, fd.Device, "out")
	if len(got) != len(vals) {
		t.Fatalf("output has %d records, want %d", len(got), len(vals))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("output unsorted at %d", i)
		}
	}
	// Every removal failed: the input, each formed run, and each
	// intermediate merge file — at least Runs + 1.
	if st.RemoveErrors < int64(st.Runs)+1 {
		t.Errorf("RemoveErrors = %d, want >= %d (runs + input)", st.RemoveErrors, st.Runs+1)
	}
	if v := reg.CounterValue(RemoveErrorsCounter); v != st.RemoveErrors {
		t.Errorf("%s = %d, Stats says %d", RemoveErrorsCounter, v, st.RemoveErrors)
	}
	if !fd.Device.Exists("in") {
		t.Error("input vanished although its removal failed")
	}
}

// TestSortRemoveErrorsNilObs: removal failures with no registry must not
// panic (the obs API is nil-safe) and still count in Stats.
func TestSortRemoveErrorsNilObs(t *testing.T) {
	fd := storage.NewFaultDevice(storage.NullDevice, storage.Options{})
	writeU32s(t, fd.Device, "in", []uint32{2, 1})
	fd.Arm(storage.FaultPlan{FailRemoves: true})
	var st Stats
	err := Sort(Config{
		Dev: fd.Device, RecordSize: 4, Less: u32Less, RemoveInput: true, Stats: &st,
	}, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if st.RemoveErrors == 0 {
		t.Error("RemoveErrors = 0 with every removal failing")
	}
}

// --- Merger unit tests ---

func sliceOfU32(vals ...uint32) Source {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	return NewSliceSource(buf)
}

func u32KeyFn(rec []byte) uint64 { return uint64(binary.LittleEndian.Uint32(rec)) }

func drainMerger(t *testing.T, m *Merger) []uint32 {
	t.Helper()
	var out []uint32
	for {
		rec, err := m.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, binary.LittleEndian.Uint32(rec))
	}
}

func TestMergerBasic(t *testing.T) {
	m, err := NewMerger(MergeConfig{RecordSize: 4, Key: u32KeyFn}, []Source{
		sliceOfU32(1, 4, 7),
		sliceOfU32(2, 5, 8),
		sliceOfU32(), // empty source is legal
		sliceOfU32(3, 6, 9),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := drainMerger(t, m)
	for i, w := range []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		if got[i] != w {
			t.Fatalf("merge order %v", got)
		}
	}
	if m.Combined() != 0 {
		t.Errorf("Combined = %d without a hook", m.Combined())
	}
}

func TestMergerStability(t *testing.T) {
	// Equal keys must come out in source order: records are (key,
	// payload) and only the key participates in comparison.
	mk := func(pairs ...[2]uint32) Source {
		buf := make([]byte, 8*len(pairs))
		for i, p := range pairs {
			binary.LittleEndian.PutUint32(buf[8*i:], p[0])
			binary.LittleEndian.PutUint32(buf[8*i+4:], p[1])
		}
		return NewSliceSource(buf)
	}
	for name, cfg := range map[string]MergeConfig{
		"key":  {RecordSize: 8, Key: u32KeyFn},
		"less": {RecordSize: 8, Less: u32Less},
	} {
		m, err := NewMerger(cfg, []Source{
			mk([2]uint32{1, 10}, [2]uint32{2, 11}),
			mk([2]uint32{1, 20}, [2]uint32{2, 21}),
		})
		if err != nil {
			t.Fatal(err)
		}
		var got [][2]uint32
		for {
			rec, err := m.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, [2]uint32{
				binary.LittleEndian.Uint32(rec),
				binary.LittleEndian.Uint32(rec[4:]),
			})
		}
		want := [][2]uint32{{1, 10}, {1, 20}, {2, 11}, {2, 21}}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: order %v, want %v", name, got, want)
			}
		}
	}
}

func TestMergerCombine(t *testing.T) {
	mk := func(keys ...uint32) Source {
		buf := make([]byte, 8*len(keys))
		for i, k := range keys {
			binary.LittleEndian.PutUint32(buf[8*i:], k)
			binary.LittleEndian.PutUint32(buf[8*i+4:], 1)
		}
		return NewSliceSource(buf)
	}
	m, err := NewMerger(MergeConfig{RecordSize: 8, Key: u32KeyFn, Combine: kcCombine}, []Source{
		mk(1, 2, 2, 5),
		mk(2, 5, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	type kv struct{ k, c uint32 }
	var got []kv
	for {
		rec, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, kv{binary.LittleEndian.Uint32(rec), binary.LittleEndian.Uint32(rec[4:])})
	}
	want := []kv{{1, 1}, {2, 3}, {5, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if m.Combined() != 4 {
		t.Errorf("Combined = %d, want 4", m.Combined())
	}
}

func TestMergerErrors(t *testing.T) {
	if _, err := NewMerger(MergeConfig{RecordSize: 0, Key: u32KeyFn}, nil); err == nil {
		t.Error("zero record size accepted")
	}
	if _, err := NewMerger(MergeConfig{RecordSize: 4}, nil); err == nil {
		t.Error("missing Less and Key accepted")
	}
	// An all-empty merge yields immediate EOF.
	m, err := NewMerger(MergeConfig{RecordSize: 4, Key: u32KeyFn}, []Source{sliceOfU32()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Next(); err != io.EOF {
		t.Errorf("empty merge Next = %v, want io.EOF", err)
	}
	// A torn slice source fails loudly, both at priming and mid-merge.
	if _, err := NewMerger(MergeConfig{RecordSize: 4, Key: u32KeyFn},
		[]Source{NewSliceSource([]byte{1, 2, 3})}); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Errorf("torn source at priming: err = %v", err)
	}
	m, err = NewMerger(MergeConfig{RecordSize: 4, Key: u32KeyFn},
		[]Source{NewSliceSource([]byte{1, 0, 0, 0, 9})})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Next(); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Errorf("torn source mid-merge: err = %v", err)
	}
}

func TestSortRecordsAndCombineSorted(t *testing.T) {
	// SortRecords: stable by key.
	buf := make([]byte, 8*5)
	for i, p := range [][2]uint32{{3, 0}, {1, 1}, {3, 2}, {1, 3}, {2, 4}} {
		binary.LittleEndian.PutUint32(buf[8*i:], p[0])
		binary.LittleEndian.PutUint32(buf[8*i+4:], p[1])
	}
	SortRecords(buf, 8, u32KeyFn)
	want := [][2]uint32{{1, 1}, {1, 3}, {2, 4}, {3, 0}, {3, 2}}
	for i, w := range want {
		k := binary.LittleEndian.Uint32(buf[8*i:])
		p := binary.LittleEndian.Uint32(buf[8*i+4:])
		if k != w[0] || p != w[1] {
			t.Fatalf("SortRecords[%d] = (%d,%d), want %v", i, k, p, w)
		}
	}
	// CombineSorted folds the adjacent equal keys in place.
	for i := range want {
		binary.LittleEndian.PutUint32(buf[8*i+4:], 1)
	}
	out, folded := CombineSorted(buf, 8, u32KeyFn, kcCombine)
	if folded != 2 || len(out) != 8*3 {
		t.Fatalf("folded %d into %d bytes, want 2 into 24", folded, len(out))
	}
	for i, w := range [][2]uint32{{1, 2}, {2, 1}, {3, 2}} {
		k := binary.LittleEndian.Uint32(out[8*i:])
		c := binary.LittleEndian.Uint32(out[8*i+4:])
		if k != w[0] || c != w[1] {
			t.Fatalf("CombineSorted[%d] = (%d,%d), want %v", i, k, c, w)
		}
	}
	// Degenerate inputs pass through untouched.
	if out, folded := CombineSorted(nil, 8, u32KeyFn, kcCombine); folded != 0 || len(out) != 0 {
		t.Error("empty chunk changed")
	}
	one := make([]byte, 8)
	if out, folded := CombineSorted(one, 8, u32KeyFn, kcCombine); folded != 0 || len(out) != 8 {
		t.Error("single-record chunk changed")
	}
}
