package xstream

import (
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

func partitionEdges(t *testing.T, edges []graph.Edge, k int) *Partitioned {
	t.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	pt, err := Partition(PartitionConfig{Dev: dev, NumPartitions: k}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestPartitionStructure(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 51)
	pt := partitionEdges(t, edges, 4)
	if pt.NumPartitions() != 4 {
		t.Fatalf("NumPartitions = %d", pt.NumPartitions())
	}
	if pt.NumEdges != 2000 {
		t.Errorf("NumEdges = %d", pt.NumEdges)
	}
	// All edges land in the partition of their source.
	var total int64
	for k := 0; k < 4; k++ {
		f, err := pt.Device().Open(pt.EdgeFile(k))
		if err != nil {
			t.Fatal(err)
		}
		es, err := graph.ReadEdges(pt.Device(), pt.EdgeFile(k))
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(es))
		lo, hi := pt.PartStart[k], pt.PartStart[k+1]
		for _, e := range es {
			if e.Src < lo || e.Src >= hi {
				t.Fatalf("edge %v in partition %d [%d,%d)", e, k, lo, hi)
			}
		}
		_ = f
	}
	if total != 2000 {
		t.Errorf("partition files hold %d edges", total)
	}
}

func TestPartitionLoadRoundTrip(t *testing.T) {
	pt := partitionEdges(t, gen.RMAT(7, 400, gen.NaturalRMAT, 52), 3)
	pt2, err := LoadPartitioned(pt.Device(), "g")
	if err != nil {
		t.Fatal(err)
	}
	if pt2.NumVertices != pt.NumVertices || pt2.NumEdges != pt.NumEdges ||
		pt2.NumPartitions() != pt.NumPartitions() {
		t.Errorf("round trip mismatch")
	}
}

// sumProg is a BSP relay: every vertex scatters its value along every
// out-edge each iteration; destinations sum what they gather. After one
// iteration vals[v] = sum of in-neighbors' initial IDs — easy to verify.
type sumProg struct{}

func (sumProg) Init(id graph.VertexID, outDeg uint32) uint32 { return uint32(id) }

func (sumProg) Scatter(iter int, src graph.VertexID, v *uint32, dst graph.VertexID) (uint32, bool) {
	return *v, true
}

func (sumProg) Gather(iter int, dst graph.VertexID, v *uint32, u uint32) { *v += u }

func (sumProg) PostGather(iter int, id graph.VertexID, v *uint32) bool { return false }

func TestBSPGatherSum(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 3, Dst: 2}}
	for _, k := range []int{1, 2, 4} {
		pt := partitionEdges(t, edges, k)
		eng, err := New[uint32, uint32](pt, sumProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
			Options{MemoryBudget: 1 << 20, MaxIterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		vals, err := eng.Values()
		if err != nil {
			t.Fatal(err)
		}
		eng.Cleanup()
		// Vertex 2 gathers 0+1+3 = 4 plus its own ID 2 = 6.
		// Vertex 0 gathers 2 plus its own 0 = 2.
		if vals[2] != 6 || vals[0] != 2 || vals[1] != 1 || vals[3] != 3 {
			t.Fatalf("k=%d: vals = %v", k, vals)
		}
		if res.UpdatesEmitted != 4 || res.EdgesStreamed != 4 {
			t.Errorf("k=%d: result = %+v", k, res)
		}
	}
}

// stampProg validates bulk-synchrony: scatter must see the state from the
// *previous* iteration's PostGather, never a same-iteration gather.
type stampProg struct{}

func (stampProg) Init(id graph.VertexID, outDeg uint32) uint32 { return 0 }

func (stampProg) Scatter(iter int, src graph.VertexID, v *uint32, dst graph.VertexID) (uint32, bool) {
	// Emit the current state; under BSP the state during scatter of
	// iteration k is exactly k (PostGather increments once per
	// iteration).
	if *v != uint32(iter) {
		return 999999, true // poison value signals a barrier violation
	}
	return *v, true
}

func (stampProg) Gather(iter int, dst graph.VertexID, v *uint32, u uint32) {
	if u == 999999 {
		*v = 999999
	}
}

func (stampProg) PostGather(iter int, id graph.VertexID, v *uint32) bool {
	if *v != 999999 {
		*v = uint32(iter) + 1
	}
	return true
}

func TestBSPBarrier(t *testing.T) {
	edges := gen.RMAT(7, 600, gen.NaturalRMAT, 53)
	pt := partitionEdges(t, edges, 3)
	eng, err := New[uint32, uint32](pt, stampProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 1 << 20, MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v == 999999 {
			t.Fatalf("vertex %d observed a barrier violation", i)
		}
		if v != 4 {
			t.Fatalf("vertex %d stamp = %d, want 4", i, v)
		}
	}
}

func TestConvergenceStopsEngine(t *testing.T) {
	// sumProg never marks active and emits updates every iteration, so
	// it would run forever on updates alone — but a program that stops
	// emitting and stays inactive must halt the engine.
	pt := partitionEdges(t, []graph.Edge{{Src: 0, Dst: 1}}, 1)
	eng, err := New[uint32, uint32](pt, quietProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (quiet program)", res.Iterations)
	}
}

// quietProg emits nothing and never stays active.
type quietProg struct{}

func (quietProg) Init(id graph.VertexID, outDeg uint32) uint32 { return 0 }

func (quietProg) Scatter(iter int, src graph.VertexID, v *uint32, dst graph.VertexID) (uint32, bool) {
	return 0, false
}

func (quietProg) Gather(iter int, dst graph.VertexID, v *uint32, u uint32) {}

func (quietProg) PostGather(iter int, id graph.VertexID, v *uint32) bool { return false }

func TestRunTwiceFails(t *testing.T) {
	pt := partitionEdges(t, []graph.Edge{{Src: 0, Dst: 1}}, 1)
	eng, err := New[uint32, uint32](pt, quietProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Error("second Run should fail")
	}
	if _, err := New[uint32, uint32](pt, quietProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 0}); err == nil {
		t.Error("zero budget should fail")
	}
}

func TestEmptyGraph(t *testing.T) {
	pt := partitionEdges(t, nil, 2)
	if pt.NumVertices != 0 || pt.NumEdges != 0 {
		t.Fatalf("V=%d E=%d", pt.NumVertices, pt.NumEdges)
	}
	eng, err := New[uint32, uint32](pt, quietProg{}, graph.Uint32Codec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 1 << 20, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesStreamed != 0 {
		t.Errorf("streamed %d edges on empty graph", res.EdgesStreamed)
	}
	vals, err := eng.Values()
	if err != nil || len(vals) != 0 {
		t.Errorf("Values = %v, %v", vals, err)
	}
}
