// Package xstream implements an X-Stream-class baseline: the
// edge-centric, bulk-synchronous, out-of-core model of Roy et al. that
// the paper compares against. Vertices are split into streaming
// partitions; each iteration runs a scatter phase (stream every
// partition's edges, emitting updates binned by destination partition)
// followed by a gather phase (stream every partition's updates, folding
// them into vertex state). There is no vertex index at all — edges are
// only ever streamed — which is the model's selling point and the reason
// it survives the paper's xlarge graph while paying for full edge
// streams and a complete update shuffle every iteration.
package xstream

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// engineName labels this engine's spans and metrics.
const engineName = "xstream"

// engineObs bundles the engine's resolved instruments; all are nil-safe,
// and `on` gates the time.Now calls on the hot path. The edge-centric
// model has no Dispatcher, so its stages map to sio (vertex-state loads),
// worker (the scatter edge stream), and drain (the gather pass).
type engineObs struct {
	on  bool
	reg *obs.Registry
	tr  *obs.Tracer

	stageNS map[string]*obs.Counter
}

func newEngineObs(reg *obs.Registry, tr *obs.Tracer) engineObs {
	eo := engineObs{
		on:      reg != nil || tr != nil,
		reg:     reg,
		tr:      tr,
		stageNS: make(map[string]*obs.Counter, 4),
	}
	for _, st := range []string{obs.StageSio, obs.StageDispatch, obs.StageWorker, obs.StageDrain} {
		eo.stageNS[st] = reg.Counter(engineName + "_stage_" + st + "_ns_total")
	}
	return eo
}

// recordStage closes out one stage of partition p: emits its span, adds
// the stage counters, and returns the current time as the next stage's
// start.
func (e *Engine[V, U]) recordStage(stage string, iter, p int, start time.Time, row *obs.IterStats) time.Time {
	now := time.Now()
	d := now.Sub(start)
	e.eo.tr.Emit(engineName, stage, iter, p, start, d)
	e.eo.stageNS[stage].Add(int64(d))
	e.stages.AddStage(stage, d)
	if row != nil {
		row.Stages.AddStage(stage, d)
	}
	return now
}

// foldDeviceStats mirrors the device's cumulative counters into the
// registry as gauges.
func foldDeviceStats(reg *obs.Registry, st storage.Stats) {
	reg.Gauge("device_read_ops").Set(st.ReadOps)
	reg.Gauge("device_write_ops").Set(st.WriteOps)
	reg.Gauge("device_read_bytes").Set(st.ReadBytes)
	reg.Gauge("device_write_bytes").Set(st.WriteBytes)
	reg.Gauge("device_seeks").Set(st.Seeks)
	reg.Gauge("device_pagecache_hits").Set(st.CacheHits)
}

// Program is an X-Stream-style edge-centric program. V is the vertex
// state, U the update record type. The engine is bulk-synchronous:
// updates emitted by Scatter in iteration k are folded by Gather in
// iteration k, and PostGather advances every vertex's state for
// iteration k+1.
type Program[V, U any] interface {
	// Init produces a vertex's initial state given its out-degree.
	Init(id graph.VertexID, outDeg uint32) V
	// Scatter inspects the source state of one edge and produces an
	// update for the destination, or reports false to emit nothing.
	Scatter(iter int, src graph.VertexID, v *V, dst graph.VertexID) (U, bool)
	// Gather folds one update into the destination's state.
	Gather(iter int, dst graph.VertexID, v *V, u U)
	// PostGather runs once per vertex after the gather phase; it
	// returns true if the vertex remains active.
	PostGather(iter int, id graph.VertexID, v *V) bool
}

// Options configures a run.
type Options struct {
	MemoryBudget  int64
	MaxIterations int // 0 = run until no vertex is active and no updates flow
	Clock         *sim.Clock
	Name          string // runtime file prefix; defaults to "xs"
	// Obs receives per-stage timings and one IterStats row per
	// iteration; nil disables collection — the no-op fast path.
	Obs *obs.Registry
	// Trace receives one JSONL span per (iteration, partition, stage);
	// nil disables tracing.
	Trace *obs.Tracer
}

// Result summarizes a run.
type Result struct {
	Iterations     int
	Partitions     int
	UpdatesEmitted int64
	EdgesStreamed  int64
	// Stages is wall-clock time per pipeline stage, summed over the
	// run; populated only when Options.Obs or Options.Trace is set.
	Stages obs.StageTimes
}

// Partitioned is an edge set split into per-source-partition streams on a
// device, plus the out-degree file scatter needs. This is X-Stream's
// entire preprocessing: a single binning pass, no sorting, no index.
type Partitioned struct {
	dev    *storage.Device
	prefix string

	NumVertices int
	NumEdges    int64
	// PartStart[k] is the first vertex of partition k;
	// PartStart[K] == NumVertices.
	PartStart []graph.VertexID
}

// NumPartitions returns the streaming partition count.
func (p *Partitioned) NumPartitions() int { return len(p.PartStart) - 1 }

// Device returns the backing device.
func (p *Partitioned) Device() *storage.Device { return p.dev }

// EdgeFile names partition k's edge stream.
func (p *Partitioned) EdgeFile(k int) string { return fmt.Sprintf("%s.xs.edges%d", p.prefix, k) }

// DegreeFile names the out-degree stream (u32 per vertex, streamed
// alongside vertex state; never random-accessed).
func (p *Partitioned) DegreeFile() string { return p.prefix + ".xs.deg" }

func (p *Partitioned) metaFile() string { return p.prefix + ".xs.meta" }

// partitionOf returns the partition containing vertex v.
func (p *Partitioned) partitionOf(v graph.VertexID) int {
	k := p.NumPartitions()
	i := int(int64(v) * int64(k) / int64(p.NumVertices))
	for i+1 < k && v >= p.PartStart[i+1] {
		i++
	}
	for i > 0 && v < p.PartStart[i] {
		i--
	}
	return i
}

// PartitionConfig parameterizes preprocessing.
type PartitionConfig struct {
	Dev   *storage.Device
	Clock *sim.Clock
	// MemoryBudget sizes the partition count: one partition's vertex
	// states (assumed 8 B each) must fit in roughly half the budget.
	MemoryBudget int64
	// NumPartitions overrides automatic selection when > 0.
	NumPartitions int
}

// Partition splits a raw edge file into streaming partitions with one
// sequential pass (plus a degree-counting pass).
func Partition(cfg PartitionConfig, edgeFile, prefix string) (*Partitioned, error) {
	dev := cfg.Dev
	p := &Partitioned{dev: dev, prefix: prefix}

	f, err := dev.Open(edgeFile)
	if err != nil {
		return nil, err
	}
	// Pass 1: max ID, edge count, out-degrees.
	r := storage.NewReader(f)
	var maxID graph.VertexID
	var buf [graph.EdgeBytes]byte
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		e := graph.GetEdge(buf[:])
		p.NumEdges++
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	if p.NumEdges > 0 || maxID > 0 {
		p.NumVertices = int(maxID) + 1
	}
	outDeg := make([]uint32, p.NumVertices)
	r = storage.NewReader(f)
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		outDeg[graph.GetEdge(buf[:]).Src]++
	}
	df, err := dev.Create(p.DegreeFile())
	if err != nil {
		return nil, err
	}
	dw := storage.NewWriter(df)
	var rec [4]byte
	for _, d := range outDeg {
		binary.LittleEndian.PutUint32(rec[:], d)
		if _, err := dw.Write(rec[:]); err != nil {
			return nil, err
		}
	}
	if err := dw.Flush(); err != nil {
		return nil, err
	}

	// Choose the partition count.
	k := cfg.NumPartitions
	if k <= 0 {
		per := cfg.MemoryBudget / 2
		if per <= 0 {
			per = 1 << 20
		}
		k = int((int64(p.NumVertices)*8 + per - 1) / per)
		if k < 1 {
			k = 1
		}
	}
	p.PartStart = make([]graph.VertexID, k+1)
	for i := 0; i <= k; i++ {
		p.PartStart[i] = graph.VertexID(int64(i) * int64(p.NumVertices) / int64(k))
	}

	// Pass 2: bin edges by source partition.
	writers := make([]*storage.Writer, k)
	for i := 0; i < k; i++ {
		pf, err := dev.Create(p.EdgeFile(i))
		if err != nil {
			return nil, err
		}
		writers[i] = storage.NewWriter(pf)
	}
	r = storage.NewReader(f)
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		e := graph.GetEdge(buf[:])
		if _, err := writers[p.partitionOf(e.Src)].Write(buf[:]); err != nil {
			return nil, err
		}
	}
	for _, w := range writers {
		if err := w.Flush(); err != nil {
			return nil, err
		}
	}
	if cfg.Clock != nil {
		cfg.Clock.ComputeBytes(3 * p.NumEdges * graph.EdgeBytes)
	}
	if err := p.writeMeta(); err != nil {
		return nil, err
	}
	return p, nil
}

const metaMagic = 0x585334_47534f44

func (p *Partitioned) writeMeta() error {
	k := p.NumPartitions()
	buf := make([]byte, 32+(k+1)*4)
	binary.LittleEndian.PutUint64(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(p.NumVertices))
	binary.LittleEndian.PutUint64(buf[16:], uint64(p.NumEdges))
	binary.LittleEndian.PutUint64(buf[24:], uint64(k))
	for i, st := range p.PartStart {
		binary.LittleEndian.PutUint32(buf[32+4*i:], uint32(st))
	}
	return storage.WriteAll(p.dev, p.metaFile(), buf)
}

// LoadPartitioned opens previously partitioned edges by prefix.
func LoadPartitioned(dev *storage.Device, prefix string) (*Partitioned, error) {
	buf, err := storage.ReadAllFile(dev, prefix+".xs.meta")
	if err != nil {
		return nil, fmt.Errorf("xstream: loading meta: %w", err)
	}
	if len(buf) < 32 || binary.LittleEndian.Uint64(buf) != metaMagic {
		return nil, fmt.Errorf("xstream: %q is not a partition meta file", prefix)
	}
	p := &Partitioned{
		dev:         dev,
		prefix:      prefix,
		NumVertices: int(binary.LittleEndian.Uint64(buf[8:])),
		NumEdges:    int64(binary.LittleEndian.Uint64(buf[16:])),
	}
	k := int(binary.LittleEndian.Uint64(buf[24:]))
	if len(buf) != 32+(k+1)*4 {
		return nil, fmt.Errorf("xstream: meta file truncated")
	}
	p.PartStart = make([]graph.VertexID, k+1)
	for i := range p.PartStart {
		p.PartStart[i] = graph.VertexID(binary.LittleEndian.Uint32(buf[32+4*i:]))
	}
	return p, nil
}

// Engine executes a Program over a Partitioned edge set.
type Engine[V, U any] struct {
	pt     *Partitioned
	prog   Program[V, U]
	vcodec graph.Codec[V]
	ucodec graph.Codec[U]
	opts   Options
	dev    *storage.Device

	verts    []V
	updates  int64
	streamed int64
	finished bool

	eo     engineObs
	stages obs.StageTimes
}

// New prepares a run.
func New[V, U any](pt *Partitioned, prog Program[V, U], vcodec graph.Codec[V], ucodec graph.Codec[U], opts Options) (*Engine[V, U], error) {
	if opts.Name == "" {
		opts.Name = "xs"
	}
	if opts.MemoryBudget <= 0 {
		return nil, fmt.Errorf("xstream: memory budget must be positive")
	}
	return &Engine[V, U]{
		pt: pt, prog: prog, vcodec: vcodec, ucodec: ucodec, opts: opts,
		dev: pt.Device(),
		eo:  newEngineObs(opts.Obs, opts.Trace),
	}, nil
}

func (e *Engine[V, U]) vstateFile() string { return e.opts.Name + ".vstate" }

func (e *Engine[V, U]) updateFile(k int) string {
	return fmt.Sprintf("%s.upd.%d", e.opts.Name, k)
}

func (e *Engine[V, U]) charge(n int64, cost time.Duration) {
	if e.opts.Clock != nil {
		e.opts.Clock.ComputeUnits(n, cost)
	}
}

func (e *Engine[V, U]) chargeBytes(n int64) {
	if e.opts.Clock != nil {
		e.opts.Clock.ComputeBytes(n)
	}
}

// Run executes the program.
func (e *Engine[V, U]) Run() (Result, error) {
	if e.finished {
		return Result{}, fmt.Errorf("xstream: engine already ran")
	}
	if err := e.initPass(); err != nil {
		return Result{}, err
	}
	k := e.pt.NumPartitions()
	for i := 0; i < k; i++ {
		if _, err := e.dev.Create(e.updateFile(i)); err != nil {
			return Result{}, err
		}
	}
	iters := 0
	for {
		if e.opts.Clock != nil {
			e.opts.Clock.BeginPhase(fmt.Sprintf("iter%d", iters))
		}
		var row *obs.IterStats
		var devBefore storage.Stats
		if e.eo.on {
			row = &obs.IterStats{Iteration: iters}
			devBefore = e.dev.Stats()
		}
		emitted, err := e.scatterPhase(iters, row)
		if err != nil {
			return Result{}, err
		}
		active, err := e.gatherPhase(iters, row)
		if err != nil {
			return Result{}, err
		}
		if row != nil {
			devNow := e.dev.Stats()
			row.DeviceReadBytes = devNow.ReadBytes - devBefore.ReadBytes
			row.DeviceWriteBytes = devNow.WriteBytes - devBefore.WriteBytes
			row.DeviceSeeks = devNow.Seeks - devBefore.Seeks
			e.eo.reg.RecordIter(*row)
		}
		iters++
		if e.opts.MaxIterations > 0 && iters >= e.opts.MaxIterations {
			break
		}
		if !active && emitted == 0 {
			break
		}
	}
	e.finished = true
	for i := 0; i < k; i++ {
		e.dev.Remove(e.updateFile(i))
	}
	if e.eo.on {
		foldDeviceStats(e.eo.reg, e.dev.Stats())
	}
	return Result{
		Iterations:     iters,
		Partitions:     k,
		UpdatesEmitted: e.updates,
		EdgesStreamed:  e.streamed,
		Stages:         e.stages,
	}, nil
}

// initPass streams the degree file and writes initial vertex states.
func (e *Engine[V, U]) initPass() error {
	if e.opts.Clock != nil {
		e.opts.Clock.BeginPhase("init")
	}
	df, err := e.dev.Open(e.pt.DegreeFile())
	if err != nil {
		return err
	}
	vf, err := e.dev.Create(e.vstateFile())
	if err != nil {
		return err
	}
	r := storage.NewReader(df)
	w := storage.NewWriter(vf)
	vbuf := make([]byte, e.vcodec.Size())
	var dbuf [4]byte
	for v := 0; v < e.pt.NumVertices; v++ {
		if err := r.ReadFull(dbuf[:]); err != nil {
			return fmt.Errorf("xstream: reading degrees: %w", err)
		}
		deg := binary.LittleEndian.Uint32(dbuf[:])
		e.vcodec.Encode(vbuf, e.prog.Init(graph.VertexID(v), deg))
		if _, err := w.Write(vbuf); err != nil {
			return err
		}
	}
	e.chargeBytes(int64(e.pt.NumVertices) * int64(e.vcodec.Size()+4))
	return w.Flush()
}

// scatterPhase streams every partition's edges against its vertex states,
// appending updates binned by destination partition.
func (e *Engine[V, U]) scatterPhase(iter int, row *obs.IterStats) (int64, error) {
	k := e.pt.NumPartitions()
	// Buffered appenders for the destination bins.
	bins := make([]*storage.Writer, k)
	for i := 0; i < k; i++ {
		f, err := e.dev.Open(e.updateFile(i))
		if err != nil {
			return 0, err
		}
		bins[i] = storage.NewWriter(f)
	}
	var emitted int64
	urec := make([]byte, 4+e.ucodec.Size())
	for p := 0; p < k; p++ {
		lo, hi := e.pt.PartStart[p], e.pt.PartStart[p+1]
		if lo == hi {
			continue
		}
		var t time.Time
		if e.eo.on {
			t = time.Now()
		}
		if err := e.loadVertices(lo, hi); err != nil {
			return 0, err
		}
		if e.eo.on {
			t = e.recordStage(obs.StageSio, iter, p, t, row)
		}
		f, err := e.dev.Open(e.pt.EdgeFile(p))
		if err != nil {
			return 0, err
		}
		r := storage.NewReader(f)
		var ebuf [graph.EdgeBytes]byte
		for {
			err := r.ReadFull(ebuf[:])
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, fmt.Errorf("xstream: streaming edges of partition %d: %w", p, err)
			}
			ed := graph.GetEdge(ebuf[:])
			e.streamed++
			e.charge(1, sim.CostEdgeScan)
			u, ok := e.prog.Scatter(iter, ed.Src, &e.verts[ed.Src-lo], ed.Dst)
			if !ok {
				continue
			}
			emitted++
			e.updates++
			e.charge(1, sim.CostMessageSend)
			binary.LittleEndian.PutUint32(urec, uint32(ed.Dst))
			e.ucodec.Encode(urec[4:], u)
			if _, err := bins[e.pt.partitionOf(ed.Dst)].Write(urec); err != nil {
				return 0, err
			}
		}
		// Scatter may have read-modify-write semantics on the source
		// (e.g. clearing an "active" flag); write states back.
		if err := e.storeVertices(lo, hi); err != nil {
			return 0, err
		}
		if e.eo.on {
			e.recordStage(obs.StageWorker, iter, p, t, row)
		}
	}
	for _, b := range bins {
		if err := b.Flush(); err != nil {
			return 0, err
		}
	}
	return emitted, nil
}

// gatherPhase streams every partition's update bin into its vertex
// states, then runs PostGather.
func (e *Engine[V, U]) gatherPhase(iter int, row *obs.IterStats) (bool, error) {
	k := e.pt.NumPartitions()
	active := false
	urec := make([]byte, 4+e.ucodec.Size())
	for p := 0; p < k; p++ {
		lo, hi := e.pt.PartStart[p], e.pt.PartStart[p+1]
		if lo == hi {
			continue
		}
		var t time.Time
		if e.eo.on {
			t = time.Now()
		}
		if err := e.loadVertices(lo, hi); err != nil {
			return false, err
		}
		f, err := e.dev.Open(e.updateFile(p))
		if err != nil {
			return false, err
		}
		if f.Size()%int64(len(urec)) != 0 {
			return false, fmt.Errorf("xstream: torn update file %q", e.updateFile(p))
		}
		r := storage.NewReader(f)
		for {
			err := r.ReadFull(urec)
			if err == io.EOF {
				break
			}
			if err != nil {
				return false, fmt.Errorf("xstream: streaming updates of partition %d: %w", p, err)
			}
			dst := graph.VertexID(binary.LittleEndian.Uint32(urec))
			e.prog.Gather(iter, dst, &e.verts[dst-lo], e.ucodec.Decode(urec[4:]))
			e.charge(1, sim.CostMessageApply)
		}
		if err := f.Truncate(0); err != nil {
			return false, err
		}
		for i := range e.verts {
			id := lo + graph.VertexID(i)
			if e.prog.PostGather(iter, id, &e.verts[i]) {
				active = true
			}
		}
		e.charge(int64(len(e.verts)), sim.CostVertexUpdate)
		if err := e.storeVertices(lo, hi); err != nil {
			return false, err
		}
		if e.eo.on {
			e.recordStage(obs.StageDrain, iter, p, t, row)
		}
	}
	return active, nil
}

// loadVertices reads [lo, hi) vertex states into e.verts.
func (e *Engine[V, U]) loadVertices(lo, hi graph.VertexID) error {
	count := int(hi - lo)
	if cap(e.verts) < count {
		e.verts = make([]V, count)
	}
	e.verts = e.verts[:count]
	f, err := e.dev.Open(e.vstateFile())
	if err != nil {
		return err
	}
	vs := int64(e.vcodec.Size())
	buf := make([]byte, int64(count)*vs)
	r := storage.NewRangeReader(f, int64(lo)*vs, int64(hi)*vs)
	if err := r.ReadFull(buf); err != nil {
		return fmt.Errorf("xstream: loading vertices [%d,%d): %w", lo, hi, err)
	}
	for i := 0; i < count; i++ {
		e.verts[i] = e.vcodec.Decode(buf[int64(i)*vs:])
	}
	e.chargeBytes(int64(len(buf)))
	return nil
}

// storeVertices writes [lo, hi) vertex states back.
func (e *Engine[V, U]) storeVertices(lo, hi graph.VertexID) error {
	count := int(hi - lo)
	vs := e.vcodec.Size()
	buf := make([]byte, count*vs)
	for i := 0; i < count; i++ {
		e.vcodec.Encode(buf[i*vs:], e.verts[i])
	}
	f, err := e.dev.Open(e.vstateFile())
	if err != nil {
		return err
	}
	w := storage.NewWriterAt(f, int64(lo)*int64(vs))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	e.chargeBytes(int64(len(buf)))
	return w.Flush()
}

// Values reads the final vertex states after Run.
func (e *Engine[V, U]) Values() ([]V, error) {
	if !e.finished {
		return nil, fmt.Errorf("xstream: Values before Run")
	}
	data, err := storage.ReadAllFile(e.dev, e.vstateFile())
	if err != nil {
		return nil, err
	}
	vs := e.vcodec.Size()
	n := e.pt.NumVertices
	if len(data) != n*vs {
		return nil, fmt.Errorf("xstream: vertex state file has %d bytes, want %d", len(data), n*vs)
	}
	out := make([]V, n)
	for i := range out {
		out[i] = e.vcodec.Decode(data[i*vs:])
	}
	return out, nil
}

// Cleanup removes the engine's runtime files.
func (e *Engine[V, U]) Cleanup() {
	e.dev.Remove(e.vstateFile())
	for i := 0; i < e.pt.NumPartitions(); i++ {
		e.dev.Remove(e.updateFile(i))
	}
}
