// Package sim provides the modeled-time accounting shared by every engine
// in the reproduction: a phase-structured clock that accumulates compute
// time (from work-unit counts times calibrated costs) and IO time (charged
// by the simulated storage device), and reports the modeled runtime as the
// sum over phases of max(compute, io).
//
// Granting every framework perfect IO/compute overlap is conservative for
// GraphZ: the paper credits GraphZ's deep pipeline, but under this model
// GraphZ must win on IO volume and iteration count alone, which is the
// paper's core claim (see DESIGN.md).
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Calibrated compute costs, in nanoseconds per unit of work. The absolute
// values approximate a ~4 GHz x86 core running tight Go loops; only their
// ratios matter for the reproduced comparisons because every engine is
// charged from the same table.
const (
	// CostVertexUpdate is charged per update() invocation (loop setup,
	// value read-modify-write).
	CostVertexUpdate = 14 * time.Nanosecond
	// CostEdgeScan is charged per adjacency entry visited.
	CostEdgeScan = 4 * time.Nanosecond
	// CostMessageSend is charged per message constructed and routed.
	CostMessageSend = 5 * time.Nanosecond
	// CostMessageApply is charged per apply_message() invocation.
	CostMessageApply = 6 * time.Nanosecond
	// CostRecordSort is charged per record per merge-sort level in
	// external sorting (comparison + move).
	CostRecordSort = 9 * time.Nanosecond
	// CostActiveScan is charged per vertex examined by the selective
	// block scheduler's planning pass (a bitmap test plus a degree
	// lookup) — the compute price of skipping IO.
	CostActiveScan = 1 * time.Nanosecond
	// CostByteCopy is charged per byte for bulk buffer copies
	// (dispatcher parsing, shuffle binning). Expressed per 4 bytes
	// because time.Duration has nanosecond granularity: 1 ns / 4 B =
	// 250 ps/B, about 4 GB/s of copy throughput.
	CostByteCopy4 = 1 * time.Nanosecond
)

// Phase is one accounted segment of a run (e.g. "preprocess",
// "iteration"). Compute and IO inside a phase are assumed to overlap
// perfectly, so the phase's wall time is max(Compute, IO).
type Phase struct {
	Name    string
	Compute time.Duration
	IO      time.Duration
}

// Wall returns the modeled wall time of the phase.
func (p Phase) Wall() time.Duration {
	if p.Compute > p.IO {
		return p.Compute
	}
	return p.IO
}

// Clock accumulates modeled compute and IO time, split into phases. The
// zero value is not usable; call NewClock. Clock is safe for concurrent
// use: engine pipelines charge compute from workers while the device
// charges IO.
type Clock struct {
	mu      sync.Mutex
	phases  []Phase
	current Phase
	open    bool
}

// NewClock returns a clock with one open phase named "run" so charges
// before the first explicit BeginPhase are still accounted.
func NewClock() *Clock {
	return &Clock{current: Phase{Name: "run"}, open: true}
}

// BeginPhase closes the current phase (if it accumulated any time) and
// opens a new one with the given name.
func (c *Clock) BeginPhase(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.open && (c.current.Compute > 0 || c.current.IO > 0) {
		c.phases = append(c.phases, c.current)
	}
	c.current = Phase{Name: name}
	c.open = true
}

// Compute charges d of compute time to the current phase.
func (c *Clock) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.current.Compute += d
	c.mu.Unlock()
}

// ComputeUnits charges n work units at cost per unit.
func (c *Clock) ComputeUnits(n int64, cost time.Duration) {
	if n <= 0 {
		return
	}
	c.Compute(time.Duration(n) * cost)
}

// ComputeBytes charges bulk byte-copy work for n bytes at CostByteCopy4
// per 4 bytes.
func (c *Clock) ComputeBytes(n int64) {
	c.ComputeUnits(n/4, CostByteCopy4)
}

// IO charges d of IO time to the current phase.
func (c *Clock) IO(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.current.IO += d
	c.mu.Unlock()
}

// Phases returns a copy of all phases, including the current one if it has
// accumulated time.
func (c *Clock) Phases() []Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Phase, len(c.phases), len(c.phases)+1)
	copy(out, c.phases)
	if c.open && (c.current.Compute > 0 || c.current.IO > 0) {
		out = append(out, c.current)
	}
	return out
}

// Total returns the modeled runtime: the sum over phases of
// max(compute, io).
func (c *Clock) Total() time.Duration {
	var t time.Duration
	for _, p := range c.Phases() {
		t += p.Wall()
	}
	return t
}

// TotalCompute returns the summed compute time across phases.
func (c *Clock) TotalCompute() time.Duration {
	var t time.Duration
	for _, p := range c.Phases() {
		t += p.Compute
	}
	return t
}

// TotalIO returns the summed IO time across phases.
func (c *Clock) TotalIO() time.Duration {
	var t time.Duration
	for _, p := range c.Phases() {
		t += p.IO
	}
	return t
}

// String summarizes the clock for logs.
func (c *Clock) String() string {
	return fmt.Sprintf("sim.Clock{total=%v compute=%v io=%v phases=%d}",
		c.Total(), c.TotalCompute(), c.TotalIO(), len(c.Phases()))
}
