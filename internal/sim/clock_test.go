package sim

import (
	"sync"
	"testing"
	"time"
)

func TestClockPhases(t *testing.T) {
	c := NewClock()
	c.Compute(10 * time.Millisecond)
	c.IO(4 * time.Millisecond)
	c.BeginPhase("iterate")
	c.Compute(2 * time.Millisecond)
	c.IO(9 * time.Millisecond)

	phases := c.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	if phases[0].Name != "run" || phases[1].Name != "iterate" {
		t.Errorf("phase names = %q, %q", phases[0].Name, phases[1].Name)
	}
	// Total = max(10,4) + max(2,9) = 19ms.
	if got, want := c.Total(), 19*time.Millisecond; got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if got, want := c.TotalCompute(), 12*time.Millisecond; got != want {
		t.Errorf("TotalCompute = %v, want %v", got, want)
	}
	if got, want := c.TotalIO(), 13*time.Millisecond; got != want {
		t.Errorf("TotalIO = %v, want %v", got, want)
	}
}

func TestClockEmptyPhaseDropped(t *testing.T) {
	c := NewClock()
	c.BeginPhase("a")
	c.BeginPhase("b")
	c.Compute(time.Millisecond)
	if got := len(c.Phases()); got != 1 {
		t.Errorf("got %d phases, want 1 (empty phases dropped)", got)
	}
}

func TestClockComputeUnits(t *testing.T) {
	c := NewClock()
	c.ComputeUnits(1000, CostEdgeScan)
	if got, want := c.TotalCompute(), 1000*CostEdgeScan; got != want {
		t.Errorf("TotalCompute = %v, want %v", got, want)
	}
	c.ComputeUnits(-5, CostEdgeScan) // no-op
	if got, want := c.TotalCompute(), 1000*CostEdgeScan; got != want {
		t.Errorf("TotalCompute after negative charge = %v, want %v", got, want)
	}
}

func TestClockNegativeChargesIgnored(t *testing.T) {
	c := NewClock()
	c.Compute(-time.Second)
	c.IO(-time.Second)
	if c.Total() != 0 {
		t.Errorf("Total = %v, want 0", c.Total())
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Compute(time.Microsecond)
				c.IO(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.TotalCompute(), 8000*time.Microsecond; got != want {
		t.Errorf("TotalCompute = %v, want %v", got, want)
	}
	if got, want := c.TotalIO(), 8000*time.Microsecond; got != want {
		t.Errorf("TotalIO = %v, want %v", got, want)
	}
}

func TestPhaseWall(t *testing.T) {
	p := Phase{Compute: 3 * time.Second, IO: 5 * time.Second}
	if p.Wall() != 5*time.Second {
		t.Errorf("Wall = %v, want 5s", p.Wall())
	}
	p = Phase{Compute: 7 * time.Second, IO: 5 * time.Second}
	if p.Wall() != 7*time.Second {
		t.Errorf("Wall = %v, want 7s", p.Wall())
	}
}
