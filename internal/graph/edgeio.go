package graph

import (
	"fmt"
	"io"

	"graphz/internal/storage"
)

// WriteEdges stores edges as fixed-size records in the named device file,
// the raw edge-list format every preprocessing pipeline starts from.
func WriteEdges(dev *storage.Device, name string, edges []Edge) error {
	f, err := dev.Create(name)
	if err != nil {
		return err
	}
	w := storage.NewWriter(f)
	var buf [EdgeBytes]byte
	for _, e := range edges {
		PutEdge(buf[:], e)
		if _, err := w.Write(buf[:]); err != nil {
			return fmt.Errorf("graph: writing edges to %q: %w", name, err)
		}
	}
	return w.Flush()
}

// ReadEdges loads all edges from the named device file.
func ReadEdges(dev *storage.Device, name string) ([]Edge, error) {
	f, err := dev.Open(name)
	if err != nil {
		return nil, err
	}
	size := f.Size()
	if size%EdgeBytes != 0 {
		return nil, fmt.Errorf("graph: %q size %d is not a multiple of %d", name, size, EdgeBytes)
	}
	edges := make([]Edge, 0, size/EdgeBytes)
	r := storage.NewReader(f)
	var buf [EdgeBytes]byte
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			return edges, nil
		}
		if err != nil {
			return nil, fmt.Errorf("graph: reading edges from %q: %w", name, err)
		}
		edges = append(edges, GetEdge(buf[:]))
	}
}

// EdgeScanner streams edges from a device file without loading them all,
// the access pattern out-of-core preprocessing uses.
type EdgeScanner struct {
	r   *storage.Reader
	cur Edge
	err error
}

// NewEdgeScanner returns a scanner over the whole file.
func NewEdgeScanner(f *storage.File) *EdgeScanner {
	return &EdgeScanner{r: storage.NewReader(f)}
}

// Scan advances to the next edge, returning false at EOF or error.
func (s *EdgeScanner) Scan() bool {
	var buf [EdgeBytes]byte
	err := s.r.ReadFull(buf[:])
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.err = err
		return false
	}
	s.cur = GetEdge(buf[:])
	return true
}

// Edge returns the current edge.
func (s *EdgeScanner) Edge() Edge { return s.cur }

// Err returns the first non-EOF error encountered.
func (s *EdgeScanner) Err() error { return s.err }
