// Package graph defines the basic types shared by every storage format and
// engine in the GraphZ reproduction: vertex identifiers, edges, and the
// fixed-size value codecs engines use to move vertex, message, and edge
// data through out-of-core storage.
package graph

import (
	"encoding/binary"
	"fmt"
	"math"
)

// VertexID identifies a vertex. Input graphs may use sparse IDs (the
// maximum ID can exceed the vertex count, as in real-world dumps); the
// degree-ordered conversion relabels them densely.
type VertexID uint32

// NoVertex is a sentinel for "no vertex" (e.g. an unreachable BFS parent).
const NoVertex = VertexID(math.MaxUint32)

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// EdgeBytes is the on-disk size of one Edge record (two uint32 values).
const EdgeBytes = 8

// PutEdge encodes e into buf, which must be at least EdgeBytes long.
func PutEdge(buf []byte, e Edge) {
	binary.LittleEndian.PutUint32(buf[0:4], uint32(e.Src))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(e.Dst))
}

// GetEdge decodes an Edge from buf, which must be at least EdgeBytes long.
func GetEdge(buf []byte) Edge {
	return Edge{
		Src: VertexID(binary.LittleEndian.Uint32(buf[0:4])),
		Dst: VertexID(binary.LittleEndian.Uint32(buf[4:8])),
	}
}

// Codec serializes values of type T into a fixed number of bytes. Engines
// use codecs to persist vertex states, messages, and edge values without
// reflection. Implementations must be stateless and safe for concurrent
// use.
type Codec[T any] interface {
	// Size returns the fixed encoded size in bytes.
	Size() int
	// Encode writes v into buf[:Size()].
	Encode(buf []byte, v T)
	// Decode reads a value from buf[:Size()].
	Decode(buf []byte) T
}

// Uint32Codec encodes uint32 values in 4 bytes.
type Uint32Codec struct{}

func (Uint32Codec) Size() int { return 4 }

func (Uint32Codec) Encode(buf []byte, v uint32) { binary.LittleEndian.PutUint32(buf, v) }

func (Uint32Codec) Decode(buf []byte) uint32 { return binary.LittleEndian.Uint32(buf) }

// Float32Codec encodes float32 values in 4 bytes.
type Float32Codec struct{}

func (Float32Codec) Size() int { return 4 }

func (Float32Codec) Encode(buf []byte, v float32) {
	binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
}

func (Float32Codec) Decode(buf []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(buf))
}

// Float64Codec encodes float64 values in 8 bytes.
type Float64Codec struct{}

func (Float64Codec) Size() int { return 8 }

func (Float64Codec) Encode(buf []byte, v float64) {
	binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
}

func (Float64Codec) Decode(buf []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf))
}

// VertexIDCodec encodes VertexID values in 4 bytes.
type VertexIDCodec struct{}

func (VertexIDCodec) Size() int { return 4 }

func (VertexIDCodec) Encode(buf []byte, v VertexID) {
	binary.LittleEndian.PutUint32(buf, uint32(v))
}

func (VertexIDCodec) Decode(buf []byte) VertexID {
	return VertexID(binary.LittleEndian.Uint32(buf))
}

// EdgeWeight derives a deterministic pseudo-random weight in (0, 1] for the
// directed edge (u, v). SSSP and Belief Propagation need per-edge data that
// the paper's input files carried; deriving it hashes keeps the stored
// formats identical across engines so IO comparisons stay fair (see
// DESIGN.md, substitutions).
func EdgeWeight(u, v VertexID) float32 {
	h := edgeHash(u, v)
	// Map the top 24 bits onto (0,1]: never zero so SSSP distances
	// strictly increase along a path.
	return float32(h>>40+1) / float32(1<<24)
}

// EdgeCoupling derives a deterministic coupling strength in [0.45, 0.60]
// for Belief Propagation's pairwise potentials. The range is kept weak
// (close to the non-interacting 0.5) so loopy BP stays in its contraction
// regime on power-law graphs, where hub vertices sum hundreds of
// messages; stronger couplings make the MRF multi-modal and the
// different engines' schedules would select different modes.
func EdgeCoupling(u, v VertexID) float64 {
	h := edgeHash(u, v)
	return 0.45 + 0.15*float64(h&0xFFFFFF)/float64(1<<24)
}

// edgeHash mixes an edge into 64 bits (splitmix64 finalizer over the packed
// endpoints).
func edgeHash(u, v VertexID) uint64 {
	x := uint64(u)<<32 | uint64(v)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Degrees computes the out-degree of every vertex in edges, over ID space
// [0, numVertices). It is an in-memory helper for tests, examples, and the
// in-memory baselines; the out-of-core engines compute degrees with
// external sorting instead.
func Degrees(edges []Edge, numVertices int) ([]uint32, error) {
	deg := make([]uint32, numVertices)
	for _, e := range edges {
		if int(e.Src) >= numVertices {
			return nil, fmt.Errorf("graph: edge source %d out of range [0,%d)", e.Src, numVertices)
		}
		if int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph: edge destination %d out of range [0,%d)", e.Dst, numVertices)
		}
		deg[e.Src]++
	}
	return deg, nil
}

// MaxID returns the largest vertex ID mentioned by edges, or 0 if edges is
// empty.
func MaxID(edges []Edge) VertexID {
	var m VertexID
	for _, e := range edges {
		if e.Src > m {
			m = e.Src
		}
		if e.Dst > m {
			m = e.Dst
		}
	}
	return m
}

// UniqueOutDegrees returns the number of distinct out-degrees among the
// numVertices vertices of edges (degree 0 counts if present). This is the
// quantity the paper's Claim 1 bounds by 3*sqrt(|E|).
func UniqueOutDegrees(edges []Edge, numVertices int) (int, error) {
	deg, err := Degrees(edges, numVertices)
	if err != nil {
		return 0, err
	}
	seen := make(map[uint32]struct{})
	for _, d := range deg {
		seen[d] = struct{}{}
	}
	return len(seen), nil
}
