package graph

import (
	"testing"

	"graphz/internal/storage"
)

func TestWriteReadEdges(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	edges := []Edge{{0, 1}, {2, 3}, {4, 0}}
	if err := WriteEdges(dev, "e", edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdges(dev, "e")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("got %d edges", len(got))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Errorf("edge %d: got %v, want %v", i, got[i], edges[i])
		}
	}
}

func TestReadEdgesTorn(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := storage.WriteAll(dev, "bad", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEdges(dev, "bad"); err == nil {
		t.Error("torn edge file should fail")
	}
	if _, err := ReadEdges(dev, "missing"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestEdgeScanner(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	edges := []Edge{{1, 2}, {3, 4}}
	if err := WriteEdges(dev, "e", edges); err != nil {
		t.Fatal(err)
	}
	f, err := dev.Open("e")
	if err != nil {
		t.Fatal(err)
	}
	s := NewEdgeScanner(f)
	var got []Edge
	for s.Scan() {
		got = append(got, s.Edge())
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if len(got) != 2 || got[0] != edges[0] || got[1] != edges[1] {
		t.Errorf("scanned %v", got)
	}
}
