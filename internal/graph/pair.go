package graph

// Pair is a two-field value with a ready-made codec. Most vertex states
// in message-driven algorithms are a (current, pending) pair — a rank
// and its vote accumulator, a level and its best proposal — so the
// framework ships this so user programs do not hand-roll codecs.
type Pair[A, B any] struct {
	A A
	B B
}

// PairCodec combines two codecs into a codec for Pair[A, B].
type PairCodec[A, B any] struct {
	CA Codec[A]
	CB Codec[B]
}

func (c PairCodec[A, B]) Size() int { return c.CA.Size() + c.CB.Size() }

func (c PairCodec[A, B]) Encode(buf []byte, v Pair[A, B]) {
	c.CA.Encode(buf, v.A)
	c.CB.Encode(buf[c.CA.Size():], v.B)
}

func (c PairCodec[A, B]) Decode(buf []byte) Pair[A, B] {
	return Pair[A, B]{
		A: c.CA.Decode(buf),
		B: c.CB.Decode(buf[c.CA.Size():]),
	}
}

// U32Pair and F32Pair are the common instantiations.
type (
	// U32Pair is a pair of uint32 values.
	U32Pair = Pair[uint32, uint32]
	// F32Pair is a pair of float32 values.
	F32Pair = Pair[float32, float32]
)

// U32PairCodec encodes U32Pair in 8 bytes.
var U32PairCodec = PairCodec[uint32, uint32]{CA: Uint32Codec{}, CB: Uint32Codec{}}

// F32PairCodec encodes F32Pair in 8 bytes.
var F32PairCodec = PairCodec[float32, float32]{CA: Float32Codec{}, CB: Float32Codec{}}
