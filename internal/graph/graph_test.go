package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEdgeRoundTrip(t *testing.T) {
	f := func(src, dst uint32) bool {
		var buf [EdgeBytes]byte
		e := Edge{Src: VertexID(src), Dst: VertexID(dst)}
		PutEdge(buf[:], e)
		return GetEdge(buf[:]) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint32CodecRoundTrip(t *testing.T) {
	var c Uint32Codec
	if c.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", c.Size())
	}
	f := func(v uint32) bool {
		buf := make([]byte, c.Size())
		c.Encode(buf, v)
		return c.Decode(buf) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat32CodecRoundTrip(t *testing.T) {
	var c Float32Codec
	f := func(v float32) bool {
		buf := make([]byte, c.Size())
		c.Encode(buf, v)
		got := c.Decode(buf)
		if math.IsNaN(float64(v)) {
			return math.IsNaN(float64(got))
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64CodecRoundTrip(t *testing.T) {
	var c Float64Codec
	f := func(v float64) bool {
		buf := make([]byte, c.Size())
		c.Encode(buf, v)
		got := c.Decode(buf)
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVertexIDCodecRoundTrip(t *testing.T) {
	var c VertexIDCodec
	buf := make([]byte, c.Size())
	for _, v := range []VertexID{0, 1, 42, NoVertex} {
		c.Encode(buf, v)
		if got := c.Decode(buf); got != v {
			t.Errorf("round trip of %d = %d", v, got)
		}
	}
}

func TestEdgeWeightProperties(t *testing.T) {
	f := func(u, v uint32) bool {
		w := EdgeWeight(VertexID(u), VertexID(v))
		return w > 0 && w <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Deterministic.
	if EdgeWeight(3, 7) != EdgeWeight(3, 7) {
		t.Error("EdgeWeight is not deterministic")
	}
	// Direction-sensitive for at least one pair (it is a hash of the
	// ordered pair).
	if EdgeWeight(3, 7) == EdgeWeight(7, 3) && EdgeWeight(1, 2) == EdgeWeight(2, 1) {
		t.Error("EdgeWeight appears to ignore edge direction")
	}
}

func TestEdgeCouplingRange(t *testing.T) {
	f := func(u, v uint32) bool {
		c := EdgeCoupling(VertexID(u), VertexID(v))
		return c >= 0.05 && c <= 0.95
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegrees(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 0}}
	deg, err := Degrees(edges, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{2, 1, 0, 1}
	for i, d := range want {
		if deg[i] != d {
			t.Errorf("deg[%d] = %d, want %d", i, deg[i], d)
		}
	}
}

func TestDegreesOutOfRange(t *testing.T) {
	if _, err := Degrees([]Edge{{5, 0}}, 3); err == nil {
		t.Error("expected error for out-of-range source")
	}
	if _, err := Degrees([]Edge{{0, 5}}, 3); err == nil {
		t.Error("expected error for out-of-range destination")
	}
}

func TestMaxID(t *testing.T) {
	if got := MaxID(nil); got != 0 {
		t.Errorf("MaxID(nil) = %d, want 0", got)
	}
	if got := MaxID([]Edge{{1, 9}, {4, 2}}); got != 9 {
		t.Errorf("MaxID = %d, want 9", got)
	}
}

func TestUniqueOutDegrees(t *testing.T) {
	// Degrees: 2, 1, 0, 1 -> unique {0, 1, 2} = 3.
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 0}}
	n, err := UniqueOutDegrees(edges, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("UniqueOutDegrees = %d, want 3", n)
	}
}

// TestClaim1UniqueDegreeBound checks the paper's Claim 1 on random graphs:
// |UD| <= 3*sqrt(|E|).
func TestClaim1UniqueDegreeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		n := 50 + int(rng.next()%200)
		m := 1 + int(rng.next()%2000)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{
				Src: VertexID(rng.next() % uint64(n)),
				Dst: VertexID(rng.next() % uint64(n)),
			}
		}
		ud, err := UniqueOutDegrees(edges, n)
		if err != nil {
			return false
		}
		return float64(ud) <= 3*math.Sqrt(float64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
