// Package checkpoint persists iteration-boundary snapshots of a GraphZ
// engine run so a crashed run can resume from iteration k+1 instead of
// iteration 0 (docs/DURABILITY.md).
//
// A checkpoint is a directory ckpt-<iteration> holding one file per
// section (vertex states, one spilled-message stream per partition) plus
// a MANIFEST that names every section with its size and CRC32 and binds
// the snapshot to the graph's layout hash, the engine configuration, and
// the format version. Checkpoints are written to the HOST filesystem —
// the simulated storage.Device models the data device whose contents a
// modeled crash may tear, while the checkpoint directory plays the role
// of the separate durable volume a production deployment would use.
//
// Atomicity protocol: sections and manifest are written into a hidden
// .tmp- directory, fsynced file by file, the directory fsynced, and the
// directory then renamed to its final name (followed by an fsync of the
// parent). A crash mid-write leaves only a .tmp- directory, which
// readers ignore and the next Write/Prune clears — a torn checkpoint is
// indistinguishable from no checkpoint, never from a valid one.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// FormatVersion is the newest manifest format this build writes and the
// newest it will read; manifests from a later version fail with
// ErrVersionTooNew rather than being misparsed.
const FormatVersion = 1

// manifestMagic leads every manifest file.
const manifestMagic = "GZCKPT"

// manifestName is the per-checkpoint manifest file; its presence marks
// the checkpoint complete.
const manifestName = "MANIFEST"

// tmpPrefix marks in-progress checkpoint directories.
const tmpPrefix = ".tmp-"

// Typed failure modes. Resume surfaces these; none of them may panic.
var (
	// ErrNoCheckpoint: the directory holds no complete checkpoint.
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")
	// ErrTruncated: a manifest or section is shorter than declared.
	ErrTruncated = errors.New("checkpoint: truncated")
	// ErrBadManifest: the manifest is not a checkpoint manifest at all
	// (wrong magic, undecodable payload, unknown section).
	ErrBadManifest = errors.New("checkpoint: bad manifest")
	// ErrCRCMismatch: stored CRC32 does not match the bytes on disk.
	ErrCRCMismatch = errors.New("checkpoint: CRC mismatch")
	// ErrVersionTooNew: written by a future format version.
	ErrVersionTooNew = errors.New("checkpoint: version too new")
	// ErrLayoutMismatch: the checkpoint was taken against a different
	// graph layout (different DOS conversion, vertex/edge counts, ...).
	ErrLayoutMismatch = errors.New("checkpoint: graph layout mismatch")
	// ErrConfigMismatch: the engine configuration (name, partition
	// count, codec sizes) differs from the checkpointed run's.
	ErrConfigMismatch = errors.New("checkpoint: engine configuration mismatch")
)

// Counters snapshots the engine's cumulative message/update counters so
// a resumed run's final Result matches the uninterrupted run's exactly.
type Counters struct {
	Sent     int64 `json:"sent"`
	Applied  int64 `json:"applied"`
	Inline   int64 `json:"inline"`
	Buffered int64 `json:"buffered"`
	Spilled  int64 `json:"spilled"`
	Updates  int64 `json:"updates"`
	// Selective block-scheduling totals; omitted (and zero on decode)
	// for checkpoints from runs without it, keeping old manifests
	// byte-identical.
	BlocksScanned int64 `json:"blocks_scanned,omitempty"`
	BlocksSkipped int64 `json:"blocks_skipped,omitempty"`
	// Sort-reduce totals (SortedSpill/Combine runs); omitted for
	// checkpoints from runs without it, same compatibility rule.
	Combined    int64 `json:"combined,omitempty"`
	MergePasses int64 `json:"merge_passes,omitempty"`
	SpillSaved  int64 `json:"spill_saved,omitempty"`
}

// Section describes one data file of a checkpoint.
type Section struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"`
}

// Manifest binds a checkpoint's sections to the run that produced it.
type Manifest struct {
	Version    int    `json:"version"`
	Name       string `json:"name"` // engine Options.Name
	LayoutHash uint64 `json:"layout_hash"`
	Iteration  int    `json:"iteration"` // iterations completed (resume continues at this count)
	Converged  bool   `json:"converged"` // the run finished; resume just restores
	Partitions int    `json:"partitions"`
	VSize      int    `json:"vsize"`
	MSize      int    `json:"msize"`
	// Sem marks a checkpoint from a semi-external-memory run: it has no
	// message, tail, or runs sections (nothing is ever pending), and it
	// only resumes into a SEM engine — cross-mode resume is a typed
	// ErrConfigMismatch, since the modes' runtime file sets differ.
	Sem      bool      `json:"sem,omitempty"`
	Counters Counters  `json:"counters"`
	Sections []Section `json:"sections"`
}

// SectionData is one section to be written.
type SectionData struct {
	Name string
	Data []byte
}

// Store manages the checkpoints under one host directory.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a checkpoint directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %q: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func ckptName(iter int) string { return fmt.Sprintf("ckpt-%010d", iter) }

// Write atomically persists one checkpoint, replacing any existing
// checkpoint for the same iteration. It returns the total bytes written
// (sections + manifest).
func (s *Store) Write(m Manifest, secs []SectionData) (int64, error) {
	m.Version = FormatVersion
	m.Sections = m.Sections[:0]
	tmp := filepath.Join(s.dir, tmpPrefix+ckptName(m.Iteration))
	if err := os.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("checkpoint: clearing stale temp: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return 0, fmt.Errorf("checkpoint: creating temp dir: %w", err)
	}
	var total int64
	for _, sec := range secs {
		if err := writeFileSync(filepath.Join(tmp, sec.Name), sec.Data); err != nil {
			return 0, err
		}
		m.Sections = append(m.Sections, Section{
			Name:  sec.Name,
			Size:  int64(len(sec.Data)),
			CRC32: crc32.ChecksumIEEE(sec.Data),
		})
		total += int64(len(sec.Data))
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	buf := make([]byte, len(manifestMagic)+6+len(payload))
	n := copy(buf, manifestMagic)
	binary.LittleEndian.PutUint16(buf[n:], FormatVersion)
	binary.LittleEndian.PutUint32(buf[n+2:], crc32.ChecksumIEEE(payload))
	copy(buf[n+6:], payload)
	if err := writeFileSync(filepath.Join(tmp, manifestName), buf); err != nil {
		return 0, err
	}
	total += int64(len(buf))
	if err := syncDir(tmp); err != nil {
		return 0, err
	}
	final := filepath.Join(s.dir, ckptName(m.Iteration))
	if err := os.RemoveAll(final); err != nil {
		return 0, fmt.Errorf("checkpoint: clearing old checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("checkpoint: publishing: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	return total, nil
}

// Iterations lists the iterations of the complete checkpoints, ascending.
// Temp directories and stray files are ignored.
func (s *Store) Iterations() ([]int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %q: %w", s.dir, err)
	}
	var iters []int
	for _, ent := range ents {
		name := ent.Name()
		if !ent.IsDir() || !strings.HasPrefix(name, "ckpt-") {
			continue
		}
		iter, err := strconv.Atoi(strings.TrimPrefix(name, "ckpt-"))
		if err != nil {
			continue
		}
		// Only a published manifest marks a checkpoint complete.
		if _, err := os.Stat(filepath.Join(s.dir, name, manifestName)); err != nil {
			continue
		}
		iters = append(iters, iter)
	}
	sort.Ints(iters)
	return iters, nil
}

// HasCheckpoint reports whether at least one complete checkpoint exists.
func (s *Store) HasCheckpoint() bool {
	iters, err := s.Iterations()
	return err == nil && len(iters) > 0
}

// Latest loads the newest complete checkpoint. A corrupt manifest is an
// error (one of the typed errors above), NOT a silent fallback to an
// older checkpoint: a manifest that fails validation means the store is
// damaged, and restarting from stale state silently would be worse.
func (s *Store) Latest() (*Checkpoint, error) {
	iters, err := s.Iterations()
	if err != nil {
		return nil, err
	}
	if len(iters) == 0 {
		return nil, fmt.Errorf("%w in %q", ErrNoCheckpoint, s.dir)
	}
	return s.Load(iters[len(iters)-1])
}

// Load opens the checkpoint for one iteration and validates its manifest
// envelope (magic, version, CRC). Section bytes are validated lazily by
// Checkpoint.Section.
func (s *Store) Load(iter int) (*Checkpoint, error) {
	dir := filepath.Join(s.dir, ckptName(iter))
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: iteration %d in %q", ErrNoCheckpoint, iter, s.dir)
		}
		return nil, fmt.Errorf("checkpoint: reading manifest: %w", err)
	}
	m, err := parseManifest(raw)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{dir: dir, Manifest: m}, nil
}

// Prune removes all but the newest keep complete checkpoints, plus any
// leftover temp directories. keep < 1 keeps one.
func (s *Store) Prune(keep int) error {
	if keep < 1 {
		keep = 1
	}
	iters, err := s.Iterations()
	if err != nil {
		return err
	}
	for _, iter := range iters[:max(0, len(iters)-keep)] {
		if err := os.RemoveAll(filepath.Join(s.dir, ckptName(iter))); err != nil {
			return fmt.Errorf("checkpoint: pruning iteration %d: %w", iter, err)
		}
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), tmpPrefix) {
			os.RemoveAll(filepath.Join(s.dir, ent.Name()))
		}
	}
	return nil
}

// parseManifest validates the binary envelope and decodes the payload.
func parseManifest(raw []byte) (Manifest, error) {
	var m Manifest
	header := len(manifestMagic) + 6
	if len(raw) < header {
		return m, fmt.Errorf("%w: manifest is %d bytes, header needs %d", ErrTruncated, len(raw), header)
	}
	if string(raw[:len(manifestMagic)]) != manifestMagic {
		return m, fmt.Errorf("%w: bad magic %q", ErrBadManifest, raw[:len(manifestMagic)])
	}
	ver := int(binary.LittleEndian.Uint16(raw[len(manifestMagic):]))
	if ver > FormatVersion {
		return m, fmt.Errorf("%w: manifest version %d, this build reads <= %d", ErrVersionTooNew, ver, FormatVersion)
	}
	want := binary.LittleEndian.Uint32(raw[len(manifestMagic)+2:])
	payload := raw[header:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return m, fmt.Errorf("%w: manifest payload CRC %08x, stored %08x", ErrCRCMismatch, got, want)
	}
	if err := json.Unmarshal(payload, &m); err != nil {
		return m, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	m.Version = ver
	return m, nil
}

// Checkpoint is one loaded (manifest-validated) checkpoint.
type Checkpoint struct {
	dir      string
	Manifest Manifest
}

// HasSection reports whether the manifest declares a section by name —
// the forward-compatibility probe for sections newer engines write
// optionally (e.g. the selective scheduler's bitmap).
func (c *Checkpoint) HasSection(name string) bool {
	for i := range c.Manifest.Sections {
		if c.Manifest.Sections[i].Name == name {
			return true
		}
	}
	return false
}

// Section reads one section's bytes, verifying size and CRC against the
// manifest.
func (c *Checkpoint) Section(name string) ([]byte, error) {
	var sec *Section
	for i := range c.Manifest.Sections {
		if c.Manifest.Sections[i].Name == name {
			sec = &c.Manifest.Sections[i]
			break
		}
	}
	if sec == nil {
		return nil, fmt.Errorf("%w: no section %q", ErrBadManifest, name)
	}
	data, err := os.ReadFile(filepath.Join(c.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: section %q missing", ErrTruncated, name)
		}
		return nil, fmt.Errorf("checkpoint: reading section %q: %w", name, err)
	}
	if int64(len(data)) != sec.Size {
		return nil, fmt.Errorf("%w: section %q is %d bytes, manifest says %d", ErrTruncated, name, len(data), sec.Size)
	}
	if got := crc32.ChecksumIEEE(data); got != sec.CRC32 {
		return nil, fmt.Errorf("%w: section %q CRC %08x, manifest says %08x", ErrCRCMismatch, name, got, sec.CRC32)
	}
	return data, nil
}

// writeFileSync writes data and fsyncs before closing, so a later rename
// publishes fully durable bytes.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: creating %q: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: writing %q: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: syncing %q: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %q: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so entry creations/renames are durable.
// Platforms that cannot sync directories degrade gracefully.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: opening dir %q: %w", dir, err)
	}
	// Directory fsync is unsupported on some platforms; the rename is
	// still atomic there, so best-effort is the right call.
	_ = f.Sync()
	return f.Close()
}
