package checkpoint

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testManifest(iter int) Manifest {
	return Manifest{
		Name:       "graphz",
		LayoutHash: 0xdeadbeefcafe,
		Iteration:  iter,
		Partitions: 2,
		VSize:      8,
		MSize:      4,
		Counters:   Counters{Sent: 10, Applied: 9, Inline: 5, Buffered: 4, Spilled: 3, Updates: 20},
	}
}

func testSections() []SectionData {
	return []SectionData{
		{Name: "vstate", Data: []byte("vertex-states-bytes")},
		{Name: "msgs.0", Data: []byte("m0")},
		{Name: "msgs.1", Data: nil}, // empty sections must round-trip
	}
}

func mustStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := mustStore(t)
	if s.HasCheckpoint() {
		t.Fatal("fresh store should have no checkpoint")
	}
	if _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on empty store = %v, want ErrNoCheckpoint", err)
	}
	n, err := s.Write(testManifest(3), testSections())
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("Write reported %d bytes", n)
	}
	ck, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	m := ck.Manifest
	if m.Iteration != 3 || m.Name != "graphz" || m.LayoutHash != 0xdeadbeefcafe ||
		m.Partitions != 2 || m.VSize != 8 || m.MSize != 4 || m.Version != FormatVersion {
		t.Fatalf("manifest round-trip = %+v", m)
	}
	if m.Counters != (Counters{Sent: 10, Applied: 9, Inline: 5, Buffered: 4, Spilled: 3, Updates: 20}) {
		t.Fatalf("counters round-trip = %+v", m.Counters)
	}
	for _, want := range testSections() {
		got, err := ck.Section(want.Name)
		if err != nil {
			t.Fatalf("Section(%q): %v", want.Name, err)
		}
		if string(got) != string(want.Data) {
			t.Fatalf("Section(%q) = %q, want %q", want.Name, got, want.Data)
		}
	}
	if _, err := ck.Section("nope"); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("unknown section = %v, want ErrBadManifest", err)
	}
}

func TestLatestPicksNewestAndPruneKeeps(t *testing.T) {
	s := mustStore(t)
	for _, iter := range []int{1, 2, 5, 9} {
		if _, err := s.Write(testManifest(iter), testSections()); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Manifest.Iteration != 9 {
		t.Fatalf("Latest iteration = %d, want 9", ck.Manifest.Iteration)
	}
	if err := s.Prune(2); err != nil {
		t.Fatal(err)
	}
	iters, err := s.Iterations()
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 2 || iters[0] != 5 || iters[1] != 9 {
		t.Fatalf("after Prune(2) iterations = %v, want [5 9]", iters)
	}
}

func TestTornTempDirIgnoredAndPruned(t *testing.T) {
	s := mustStore(t)
	// Simulate a crash mid-Write: a temp dir with sections but no
	// published checkpoint.
	torn := filepath.Join(s.Dir(), tmpPrefix+ckptName(7))
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(torn, "vstate"), []byte("partial"), 0o644)
	if s.HasCheckpoint() {
		t.Fatal("torn temp dir must not count as a checkpoint")
	}
	// A manifest-less published-looking dir must not count either.
	if err := os.MkdirAll(filepath.Join(s.Dir(), ckptName(8)), 0o755); err != nil {
		t.Fatal(err)
	}
	if s.HasCheckpoint() {
		t.Fatal("manifest-less dir must not count as a checkpoint")
	}
	if _, err := s.Write(testManifest(1), testSections()); err != nil {
		t.Fatal(err)
	}
	if err := s.Prune(1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("Prune left torn temp dir: %v", err)
	}
}

func manifestPath(s *Store, iter int) string {
	return filepath.Join(s.Dir(), ckptName(iter), manifestName)
}

func writeOne(t *testing.T) (*Store, string) {
	t.Helper()
	s := mustStore(t)
	if _, err := s.Write(testManifest(4), testSections()); err != nil {
		t.Fatal(err)
	}
	return s, manifestPath(s, 4)
}

func TestTruncatedManifest(t *testing.T) {
	s, path := writeOne(t)
	if err := os.WriteFile(path, []byte("GZC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Latest(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated manifest = %v, want ErrTruncated", err)
	}
}

func TestBadMagic(t *testing.T) {
	s, path := writeOne(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	if _, err := s.Latest(); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("bad magic = %v, want ErrBadManifest", err)
	}
}

func TestManifestCRCMismatch(t *testing.T) {
	s, path := writeOne(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // flip a payload byte; stored CRC no longer matches
	os.WriteFile(path, raw, 0o644)
	if _, err := s.Latest(); !errors.Is(err, ErrCRCMismatch) {
		t.Fatalf("flipped payload = %v, want ErrCRCMismatch", err)
	}
	// Truncating the payload is also a CRC mismatch, not a panic.
	os.WriteFile(path, raw[:len(raw)-4], 0o644)
	if _, err := s.Latest(); !errors.Is(err, ErrCRCMismatch) {
		t.Fatalf("truncated payload = %v, want ErrCRCMismatch", err)
	}
}

func TestVersionFromTheFuture(t *testing.T) {
	s, path := writeOne(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(raw[len(manifestMagic):], FormatVersion+1)
	os.WriteFile(path, raw, 0o644)
	if _, err := s.Latest(); !errors.Is(err, ErrVersionTooNew) {
		t.Fatalf("future version = %v, want ErrVersionTooNew", err)
	}
}

func TestSectionCorruption(t *testing.T) {
	s, _ := writeOne(t)
	ck, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	secPath := filepath.Join(s.Dir(), ckptName(4), "vstate")

	// Flipped byte: CRC mismatch.
	raw, err := os.ReadFile(secPath)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), raw...)
	mut[0] ^= 0xff
	os.WriteFile(secPath, mut, 0o644)
	if _, err := ck.Section("vstate"); !errors.Is(err, ErrCRCMismatch) {
		t.Fatalf("corrupt section = %v, want ErrCRCMismatch", err)
	}

	// Short file: truncated.
	os.WriteFile(secPath, raw[:len(raw)-1], 0o644)
	if _, err := ck.Section("vstate"); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short section = %v, want ErrTruncated", err)
	}

	// Missing file: truncated.
	os.Remove(secPath)
	if _, err := ck.Section("vstate"); !errors.Is(err, ErrTruncated) {
		t.Fatalf("missing section = %v, want ErrTruncated", err)
	}
}

func TestWriteReplacesSameIteration(t *testing.T) {
	s := mustStore(t)
	if _, err := s.Write(testManifest(2), testSections()); err != nil {
		t.Fatal(err)
	}
	secs := testSections()
	secs[0].Data = []byte("second-write")
	if _, err := s.Write(testManifest(2), secs); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ck.Section("vstate")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second-write" {
		t.Fatalf("Section after rewrite = %q", got)
	}
	iters, _ := s.Iterations()
	if len(iters) != 1 {
		t.Fatalf("iterations = %v, want one entry", iters)
	}
}

func TestNewStoreErrors(t *testing.T) {
	if _, err := NewStore(""); err == nil {
		t.Error("NewStore(\"\") succeeded")
	}
	// A file where the directory should go: MkdirAll must fail typed.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(f); err == nil {
		t.Error("NewStore over a regular file succeeded")
	}
}

func TestHasSection(t *testing.T) {
	s := mustStore(t)
	if _, err := s.Write(testManifest(1), testSections()); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if !ck.HasSection("vstate") || !ck.HasSection("msgs.1") {
		t.Error("declared sections not found")
	}
	if ck.HasSection("runs.0") {
		t.Error("undeclared section reported present")
	}
	if _, err := ck.Section("runs.0"); !errors.Is(err, ErrBadManifest) {
		t.Errorf("undeclared Section read = %v, want ErrBadManifest", err)
	}
}

func TestLoadMissingIteration(t *testing.T) {
	s := mustStore(t)
	if _, err := s.Write(testManifest(3), testSections()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(7); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Load(7) = %v, want ErrNoCheckpoint", err)
	}
}

func TestSectionFileMissing(t *testing.T) {
	s := mustStore(t)
	if _, err := s.Write(testManifest(1), testSections()); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(s.Dir(), "ckpt-0000000001", "vstate")); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Section("vstate"); !errors.Is(err, ErrTruncated) {
		t.Errorf("missing section file = %v, want ErrTruncated", err)
	}
}

// The Sem flag must round-trip, and manifests written without it (every
// pre-SEM checkpoint) must decode to Sem=false — the compatibility rule
// that lets old checkpoints resume into partitioned engines unchanged.
func TestSemFlagRoundTripAndCompat(t *testing.T) {
	s := mustStore(t)
	m := testManifest(4)
	m.Sem = true
	// A SEM checkpoint has no message sections.
	if _, err := s.Write(m, []SectionData{{Name: "vstate", Data: []byte("pinned")}}); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Manifest.Sem {
		t.Error("Sem flag lost in round trip")
	}

	s2 := mustStore(t)
	if _, err := s2.Write(testManifest(1), testSections()); err != nil {
		t.Fatal(err)
	}
	ck2, err := s2.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Manifest.Sem {
		t.Error("partitioned manifest decoded with Sem=true")
	}
}
