package gen

import (
	"math"
	"testing"

	"graphz/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(10, 1000, NaturalRMAT, 42)
	b := RMAT(10, 1000, NaturalRMAT, 42)
	if len(a) != 1000 || len(b) != 1000 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RMAT not deterministic")
		}
	}
	c := RMAT(10, 1000, NaturalRMAT, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRMATIDRange(t *testing.T) {
	edges := RMAT(8, 5000, NaturalRMAT, 1)
	for _, e := range edges {
		if e.Src >= 256 || e.Dst >= 256 {
			t.Fatalf("edge %v outside 2^8 ID space", e)
		}
	}
}

func TestRMATPowerLaw(t *testing.T) {
	// The skewed quadrant probabilities must concentrate degree mass:
	// the top 1% of vertices should own far more than 1% of edges.
	edges := RMAT(14, 100_000, NaturalRMAT, 7)
	n := 1 << 14
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.Src]++
	}
	// Count edges owned by the 1% highest-degree vertices.
	sorted := append([]int(nil), deg...)
	// Simple selection: find threshold via sort.
	sortInts(sorted)
	top := n / 100
	thresh := sorted[n-top]
	var owned int
	for _, d := range deg {
		if d >= thresh {
			owned += d
		}
	}
	if frac := float64(owned) / float64(len(edges)); frac < 0.20 {
		t.Errorf("top 1%% of vertices own %.1f%% of edges; want >= 20%% for a power law", frac*100)
	}
}

func sortInts(a []int) {
	// Insertion into a counting structure is overkill; use stdlib.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestZipfShape(t *testing.T) {
	edges := Zipf(2000, 20_000, 0.8, 3)
	if len(edges) != 20_000 {
		t.Fatalf("got %d edges, want 20000", len(edges))
	}
	st := Summarize(edges)
	// Few unique degrees relative to vertices is the property DOS
	// exploits; a Zipf graph must exhibit it.
	if st.UniqueDegrees > st.NumVertices/4 {
		t.Errorf("unique degrees %d vs vertices %d: not power-law-like",
			st.UniqueDegrees, st.NumVertices)
	}
	// Claim 1 bound.
	if float64(st.UniqueDegrees) > 3*math.Sqrt(float64(st.NumEdges)) {
		t.Errorf("unique degrees %d exceed 3*sqrt(E) = %.0f",
			st.UniqueDegrees, 3*math.Sqrt(float64(st.NumEdges)))
	}
}

func TestZipfS1(t *testing.T) {
	edges := Zipf(100, 1000, 1.0, 9)
	if len(edges) != 1000 {
		t.Fatalf("got %d edges", len(edges))
	}
}

func TestErdosRenyi(t *testing.T) {
	edges := ErdosRenyi(50, 500, 11)
	if len(edges) != 500 {
		t.Fatalf("got %d edges", len(edges))
	}
	for _, e := range edges {
		if e.Src >= 50 || e.Dst >= 50 {
			t.Fatalf("edge %v out of range", e)
		}
	}
}

func TestGrid(t *testing.T) {
	edges := Grid(3, 4)
	// 3x4 grid: horizontal (3 rows * 3 gaps) + vertical (2 gaps * 4
	// cols) = 9 + 8 = 17 undirected = 34 directed.
	if len(edges) != 34 {
		t.Fatalf("got %d edges, want 34", len(edges))
	}
	// Spot-check adjacency: vertex 0 connects to 1 and 4.
	var to1, to4 bool
	for _, e := range edges {
		if e.Src == 0 && e.Dst == 1 {
			to1 = true
		}
		if e.Src == 0 && e.Dst == 4 {
			to4 = true
		}
	}
	if !to1 || !to4 {
		t.Error("grid adjacency wrong for vertex 0")
	}
}

func TestSummarize(t *testing.T) {
	if st := Summarize(nil); st != (Stats{}) {
		t.Errorf("empty summarize = %+v", st)
	}
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 5, Dst: 0}}
	st := Summarize(edges)
	if st.MaxID != 5 {
		t.Errorf("MaxID = %d", st.MaxID)
	}
	if st.NumEdges != 3 {
		t.Errorf("NumEdges = %d", st.NumEdges)
	}
	// Touched vertices: 0,1,2,5 = 4 (IDs 3,4 are gaps).
	if st.NumVertices != 4 {
		t.Errorf("NumVertices = %d, want 4", st.NumVertices)
	}
	// Degrees over [0,5]: 2,0,0,0,0,1 -> unique {0,1,2} = 3.
	if st.UniqueDegrees != 3 {
		t.Errorf("UniqueDegrees = %d, want 3", st.UniqueDegrees)
	}
	if st.Bytes != 3*graph.EdgeBytes {
		t.Errorf("Bytes = %d", st.Bytes)
	}
}
