// Package gen produces deterministic synthetic graphs standing in for the
// paper's input datasets (LiveJournal, Friendster, YahooWeb, the Sim
// synthetic graph, and the SNAP graphs of Table VIII), which cannot be
// shipped with this repository. R-MAT and Zipf generators reproduce the
// properties the paper's results depend on — power-law degree
// distributions with few unique degrees and sparse, gappy ID spaces —
// while grid and Erdős–Rényi generators provide the contrasting regular
// workloads used by the examples (see DESIGN.md, substitutions).
package gen

import (
	"fmt"
	"math"

	"graphz/internal/graph"
)

// rng is a splitmix64 generator: tiny, fast, and deterministic across
// platforms, so every experiment is reproducible from its seed.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// RMATParams shapes an R-MAT recursive-matrix graph. The standard
// a/b/c/d quadrant probabilities must sum to 1; a >> d yields the skewed
// power-law structure of natural graphs.
type RMATParams struct {
	A, B, C float64 // D = 1 - A - B - C
}

// NaturalRMAT is the usual "natural graph" parameterization (Graph500
// uses 0.57/0.19/0.19/0.05).
var NaturalRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19}

// RMAT generates numEdges edges over an ID space of 2^scale vertices.
// Duplicate edges and self-loops may occur, as in real crawls. The
// result's ID space is sparse: many IDs in [0, 2^scale) have no edges,
// reproducing the paper's observation that the maximum ID exceeds the
// vertex count in real datasets.
func RMAT(scale int, numEdges int, p RMATParams, seed uint64) []graph.Edge {
	if scale < 1 || scale > 31 {
		panic(fmt.Sprintf("gen: RMAT scale %d out of range [1,31]", scale))
	}
	r := newRNG(seed)
	edges := make([]graph.Edge, numEdges)
	ab := p.A + p.B
	abc := ab + p.C
	for i := range edges {
		var src, dst uint32
		for level := 0; level < scale; level++ {
			x := r.float64()
			src <<= 1
			dst <<= 1
			switch {
			case x < p.A:
				// top-left: no bits set
			case x < ab:
				dst |= 1
			case x < abc:
				src |= 1
			default:
				src |= 1
				dst |= 1
			}
		}
		edges[i] = graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)}
	}
	return edges
}

// Zipf generates a graph whose out-degrees follow a Zipf(s) distribution:
// vertex ranks are assigned degrees proportional to 1/rank^s and
// destinations are chosen by preferential attachment to low ranks. This
// mirrors the degree histograms of the SNAP graphs in the paper's Table
// VIII more directly than R-MAT does.
func Zipf(numVertices, numEdges int, s float64, seed uint64) []graph.Edge {
	if numVertices < 2 {
		panic("gen: Zipf needs at least 2 vertices")
	}
	r := newRNG(seed)
	// Degree weights by rank.
	weights := make([]float64, numVertices)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		total += weights[i]
	}
	// Integer degrees summing to ~numEdges.
	edges := make([]graph.Edge, 0, numEdges)
	// Ranks are shuffled onto IDs so the graph is not pre-sorted by
	// degree (the DOS conversion must do real work).
	perm := permutation(numVertices, r)
	for rank := 0; rank < numVertices && len(edges) < numEdges; rank++ {
		d := int(math.Round(weights[rank] / total * float64(numEdges)))
		src := perm[rank]
		for k := 0; k < d && len(edges) < numEdges; k++ {
			dst := perm[zipfPick(r, numVertices, s)]
			edges = append(edges, graph.Edge{Src: src, Dst: dst})
		}
	}
	// Round-off shortfall: top up from random high-rank sources.
	for len(edges) < numEdges {
		src := perm[zipfPick(r, numVertices, s)]
		dst := perm[zipfPick(r, numVertices, s)]
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	return edges
}

// zipfPick samples a rank in [0, n) with probability ~ 1/(rank+1)^s using
// rejection sampling (good enough for generation workloads).
func zipfPick(r *rng, n int, s float64) int {
	if math.Abs(1-s) < 1e-9 {
		// s = 1: the continuous inverse CDF is n^u.
		for {
			rank := int(math.Pow(float64(n), r.float64())) - 1
			if rank >= 0 && rank < n {
				return rank
			}
		}
	}
	for {
		// Inverse-CDF approximation for Zipf via continuous Pareto.
		u := r.float64()
		x := math.Pow(float64(n), 1-s)*u + (1 - u)
		rank := int(math.Pow(x, 1/(1-s))) - 1
		if rank >= 0 && rank < n {
			return rank
		}
	}
}

// permutation returns a pseudo-random permutation of [0, n) as VertexIDs.
func permutation(n int, r *rng) []graph.VertexID {
	p := make([]graph.VertexID, n)
	for i := range p {
		p[i] = graph.VertexID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ErdosRenyi generates numEdges uniformly random edges over numVertices
// vertices: the regular, non-power-law contrast case.
func ErdosRenyi(numVertices, numEdges int, seed uint64) []graph.Edge {
	r := newRNG(seed)
	edges := make([]graph.Edge, numEdges)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(r.intn(numVertices)),
			Dst: graph.VertexID(r.intn(numVertices)),
		}
	}
	return edges
}

// Grid generates a rows x cols 4-neighbor grid with edges in both
// directions — a road-network-like workload for SSSP examples. Vertex
// (r, c) has ID r*cols+c.
func Grid(rows, cols int) []graph.Edge {
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r, c+1)})
				edges = append(edges, graph.Edge{Src: id(r, c+1), Dst: id(r, c)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r+1, c)})
				edges = append(edges, graph.Edge{Src: id(r+1, c), Dst: id(r, c)})
			}
		}
	}
	return edges
}

// Stats summarizes a generated edge list the way the paper's Table X
// reports graph properties.
type Stats struct {
	MaxID         graph.VertexID
	NumVertices   int // vertices with at least one incident edge
	NumEdges      int
	UniqueDegrees int // distinct out-degrees over [0, MaxID]
	Bytes         int64
}

// Summarize computes Stats for edges.
func Summarize(edges []graph.Edge) Stats {
	if len(edges) == 0 {
		return Stats{}
	}
	maxID := graph.MaxID(edges)
	n := int(maxID) + 1
	deg := make([]uint32, n)
	touched := make([]bool, n)
	for _, e := range edges {
		deg[e.Src]++
		touched[e.Src] = true
		touched[e.Dst] = true
	}
	seen := make(map[uint32]struct{})
	var vertices int
	for i, d := range deg {
		seen[d] = struct{}{}
		if touched[i] {
			vertices++
		}
	}
	return Stats{
		MaxID:         maxID,
		NumVertices:   vertices,
		NumEdges:      len(edges),
		UniqueDegrees: len(seen),
		Bytes:         int64(len(edges)) * graph.EdgeBytes,
	}
}
