package energy

import (
	"math"
	"testing"
	"time"

	"graphz/internal/sim"
	"graphz/internal/storage"
)

func TestMeasureBasics(t *testing.T) {
	c := sim.NewClock()
	c.Compute(2 * time.Second)
	c.IO(10 * time.Second)
	r := Measure(c, storage.HDD)
	if r.Wall != 10*time.Second {
		t.Errorf("Wall = %v, want 10s", r.Wall)
	}
	want := IdleWatts*10 + CPUActiveWatts*2 + HDDActiveWatts*10
	if math.Abs(r.Energy-want) > 1e-6 {
		t.Errorf("Energy = %v, want %v", r.Energy, want)
	}
	if math.Abs(r.AvgPower-want/10) > 1e-6 {
		t.Errorf("AvgPower = %v, want %v", r.AvgPower, want/10)
	}
}

func TestMeasureEmptyClock(t *testing.T) {
	r := Measure(sim.NewClock(), storage.SSD)
	if r != (Report{}) {
		t.Errorf("empty clock report = %+v, want zero", r)
	}
}

func TestHDDCostsMoreThanSSD(t *testing.T) {
	c := sim.NewClock()
	c.Compute(time.Second)
	c.IO(5 * time.Second)
	hdd := Measure(c, storage.HDD)
	ssd := Measure(c, storage.SSD)
	if hdd.Energy <= ssd.Energy {
		t.Errorf("HDD energy %v should exceed SSD energy %v for identical runs",
			hdd.Energy, ssd.Energy)
	}
}

func TestLessIOMeansLessEnergy(t *testing.T) {
	// Two runs with the same compute; the one with less IO must use
	// less energy — this is the mechanism behind the paper's Table
	// XIII.
	heavy := sim.NewClock()
	heavy.Compute(2 * time.Second)
	heavy.IO(20 * time.Second)
	light := sim.NewClock()
	light.Compute(2 * time.Second)
	light.IO(3 * time.Second)
	if Measure(light, storage.SSD).Energy >= Measure(heavy, storage.SSD).Energy {
		t.Error("lighter-IO run should consume less energy")
	}
}

func TestAvgPowerBounded(t *testing.T) {
	// Average power can never exceed idle + cpu + device (all fully
	// busy) nor drop below idle.
	c := sim.NewClock()
	c.Compute(3 * time.Second)
	c.IO(4 * time.Second)
	r := Measure(c, storage.HDD)
	maxP := IdleWatts + CPUActiveWatts + HDDActiveWatts
	if r.AvgPower < IdleWatts || r.AvgPower > maxP {
		t.Errorf("AvgPower = %v outside [%v, %v]", r.AvgPower, IdleWatts, maxP)
	}
}

func TestReportString(t *testing.T) {
	c := sim.NewClock()
	c.Compute(time.Second)
	if s := Measure(c, storage.SSD).String(); s == "" {
		t.Error("empty String()")
	}
}
