// Package energy models whole-system power and energy for a run, standing
// in for the paper's WattsUp wall-power meter (see DESIGN.md,
// substitutions).
//
// The model integrates three terms over the modeled run time produced by a
// sim.Clock:
//
//	E = P_idle*T_wall + P_cpu*T_compute + P_dev*T_io
//
// where T_wall is the clock's phase-overlapped total, T_compute and T_io
// are the raw accumulations, and P_dev depends on the storage device kind
// (an active HDD draws more than an active SSD). Average power is E/T_wall.
// Because the inputs are exactly the quantities the engines differ on —
// runtime, compute volume, and IO volume — the energy comparisons the
// paper reports (GraphZ at a fraction of the baselines' energy) follow
// from the same causes.
package energy

import (
	"fmt"
	"time"

	"graphz/internal/sim"
	"graphz/internal/storage"
)

// Whole-system power model parameters in watts, loosely calibrated to the
// paper's testbed (i7-7700K desktop, measured at the wall).
const (
	// IdleWatts is drawn whenever the machine is on.
	IdleWatts = 42.0
	// CPUActiveWatts is the additional draw of fully busy cores.
	CPUActiveWatts = 46.0
	// HDDActiveWatts is the additional draw of a busy magnetic disk
	// (spindle + actuator).
	HDDActiveWatts = 7.5
	// SSDActiveWatts is the additional draw of a busy SATA SSD.
	SSDActiveWatts = 2.8
)

// Report is the power/energy outcome of one run.
type Report struct {
	Wall     time.Duration // modeled wall time
	Energy   float64       // joules
	AvgPower float64       // watts
}

// String formats the report for tables.
func (r Report) String() string {
	return fmt.Sprintf("%.1f W, %.1f J over %v", r.AvgPower, r.Energy, r.Wall)
}

// deviceWatts returns the active power of a device kind.
func deviceWatts(kind storage.Kind) float64 {
	switch kind {
	case storage.HDD:
		return HDDActiveWatts
	case storage.SSD:
		return SSDActiveWatts
	default:
		return 0
	}
}

// Measure computes the energy report for a finished run described by clock
// on a device of the given kind.
func Measure(clock *sim.Clock, kind storage.Kind) Report {
	wall := clock.Total()
	if wall <= 0 {
		return Report{}
	}
	joules := IdleWatts*wall.Seconds() +
		CPUActiveWatts*clock.TotalCompute().Seconds() +
		deviceWatts(kind)*clock.TotalIO().Seconds()
	return Report{
		Wall:     wall,
		Energy:   joules,
		AvgPower: joules / wall.Seconds(),
	}
}
