// Package csr implements the Compressed Sparse Row layout that
// GraphChi-class systems and the paper's no-DOS ablation use: a vertex
// index with one offset entry per vertex over the natural (unrelabeled,
// possibly gappy) ID space, plus a packed adjacency file.
//
// The index costs 8 bytes per vertex, so for large graphs it dwarfs the
// degree-ordered bucket table — this is the contrast the paper's Table XI
// quantifies, and the reason GraphChi fails on the xlarge graph (the
// resident index exceeds the memory budget).
package csr

import (
	"encoding/binary"
	"fmt"
	"io"

	"graphz/internal/extsort"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// EntryBytes is the size of one adjacency entry (a destination ID).
const EntryBytes = 4

// IndexEntryBytes is the size of one vertex index entry (a u64 offset).
const IndexEntryBytes = 8

// File name suffixes under a graph's prefix.
const (
	suffixEdges = ".csr.edges"
	suffixIndex = ".csr.index"
	suffixMeta  = ".csr.meta"
)

// Graph is a CSR graph resident on a device. Vertex IDs are the original
// input IDs; every ID in [0, NumVertices) has an index entry whether or
// not it touches an edge (that is what makes the index large).
type Graph struct {
	dev    *storage.Device
	prefix string

	NumVertices int // maxID+1: the dense natural ID space
	NumEdges    int64

	offsets []int64 // resident index; nil until LoadIndex
}

// EdgesFile returns the adjacency file name.
func (g *Graph) EdgesFile() string { return g.prefix + suffixEdges }

// IndexFile returns the vertex index file name.
func (g *Graph) IndexFile() string { return g.prefix + suffixIndex }

// Device returns the device the graph lives on.
func (g *Graph) Device() *storage.Device { return g.dev }

// IndexBytes returns the resident size of the vertex index: one offset
// per vertex plus the terminator.
func (g *Graph) IndexBytes() int64 {
	return int64(g.NumVertices+1) * IndexEntryBytes
}

// LoadIndex reads the index file into memory (charging its IO to the
// device). Engines must call it before DegreeOf/OffsetOf and must account
// IndexBytes against their memory budget.
func (g *Graph) LoadIndex() error {
	data, err := storage.ReadAllFile(g.dev, g.IndexFile())
	if err != nil {
		return fmt.Errorf("csr: loading index: %w", err)
	}
	if len(data) != int(g.IndexBytes()) {
		return fmt.Errorf("csr: index file has %d bytes, want %d", len(data), g.IndexBytes())
	}
	g.offsets = make([]int64, g.NumVertices+1)
	for i := range g.offsets {
		g.offsets[i] = int64(binary.LittleEndian.Uint64(data[i*IndexEntryBytes:]))
	}
	return nil
}

// IndexLoaded reports whether LoadIndex has run.
func (g *Graph) IndexLoaded() bool { return g.offsets != nil }

// DegreeOf returns the out-degree of x. The index must be loaded; x must
// be in range.
func (g *Graph) DegreeOf(x graph.VertexID) uint32 {
	return uint32(g.offsets[x+1] - g.offsets[x])
}

// OffsetOf returns the edge-entry offset of x's adjacency. The index must
// be loaded; x must be in range.
func (g *Graph) OffsetOf(x graph.VertexID) int64 { return g.offsets[x] }

// Adjacency reads x's out-neighbors (random access), appending to dst.
func (g *Graph) Adjacency(x graph.VertexID, dst []graph.VertexID) ([]graph.VertexID, error) {
	if !g.IndexLoaded() {
		return nil, fmt.Errorf("csr: index not loaded")
	}
	if int(x) >= g.NumVertices {
		return nil, fmt.Errorf("csr: vertex %d out of range [0,%d)", x, g.NumVertices)
	}
	deg := int(g.DegreeOf(x))
	if deg == 0 {
		return dst, nil
	}
	f, err := g.dev.Open(g.EdgesFile())
	if err != nil {
		return nil, err
	}
	buf := make([]byte, deg*EntryBytes)
	n, err := f.ReadAt(buf, g.OffsetOf(x)*EntryBytes)
	if err != nil {
		return nil, err
	}
	if n != len(buf) {
		return nil, fmt.Errorf("csr: short adjacency read for %d", x)
	}
	for i := 0; i < deg; i++ {
		dst = append(dst, graph.VertexID(binary.LittleEndian.Uint32(buf[i*EntryBytes:])))
	}
	return dst, nil
}

// BuildConfig parameterizes CSR construction.
type BuildConfig struct {
	Dev          *storage.Device
	Clock        *sim.Clock
	MemoryBudget int64
}

// Build converts a raw edge file into CSR: one external sort by source,
// then one streaming pass writing the packed adjacency and the per-vertex
// offset index.
func Build(cfg BuildConfig, edgeFile, prefix string) (*Graph, error) {
	if cfg.MemoryBudget < extsort.MinMemoryBudget {
		cfg.MemoryBudget = extsort.MinMemoryBudget
	}
	dev := cfg.Dev
	bySrc := prefix + ".csr.tmp.bysrc"
	err := extsort.Sort(extsort.Config{
		Dev:          dev,
		Clock:        cfg.Clock,
		RecordSize:   graph.EdgeBytes,
		Key:          func(rec []byte) uint64 { return uint64(binary.LittleEndian.Uint32(rec)) },
		MemoryBudget: cfg.MemoryBudget,
		TempPrefix:   bySrc + ".run",
	}, edgeFile, bySrc)
	if err != nil {
		return nil, fmt.Errorf("csr: sorting: %w", err)
	}
	defer dev.Remove(bySrc)

	g := &Graph{dev: dev, prefix: prefix}

	// We need the max ID (to size the index) before writing it, and the
	// natural ID space includes destinations; a first quick scan finds
	// it. The paper charges GraphChi-style systems this extra pass too
	// (their preprocessing computes vertex counts up front).
	maxID, err := scanMaxID(dev, bySrc)
	if err != nil {
		return nil, err
	}

	inF, err := dev.Open(bySrc)
	if err != nil {
		return nil, err
	}
	eF, err := dev.Create(g.EdgesFile())
	if err != nil {
		return nil, err
	}
	iF, err := dev.Create(g.IndexFile())
	if err != nil {
		return nil, err
	}
	r := storage.NewReader(inF)
	ew := storage.NewWriter(eF)
	iw := storage.NewWriter(iF)

	numVertices := 0
	if inF.Size() > 0 || maxID > 0 {
		numVertices = int(maxID) + 1
	}
	var off int64
	nextIndexed := 0 // next vertex needing an index entry
	writeIndexUpTo := func(v int) error {
		var buf [IndexEntryBytes]byte
		for ; nextIndexed <= v; nextIndexed++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(off))
			if _, err := iw.Write(buf[:]); err != nil {
				return err
			}
		}
		return nil
	}
	var ebuf [graph.EdgeBytes]byte
	for {
		err := r.ReadFull(ebuf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csr: scanning: %w", err)
		}
		e := graph.GetEdge(ebuf[:])
		if err := writeIndexUpTo(int(e.Src)); err != nil {
			return nil, err
		}
		if _, err := ew.Write(ebuf[4:8]); err != nil {
			return nil, err
		}
		off++
	}
	// Trailing vertices with no out-edges plus the terminator entry.
	if err := writeIndexUpTo(numVertices); err != nil {
		return nil, err
	}
	if err := ew.Flush(); err != nil {
		return nil, err
	}
	if err := iw.Flush(); err != nil {
		return nil, err
	}
	g.NumVertices = numVertices
	g.NumEdges = off
	if cfg.Clock != nil {
		cfg.Clock.ComputeBytes(off * graph.EdgeBytes)
	}
	if err := g.writeMeta(); err != nil {
		return nil, err
	}
	return g, nil
}

func scanMaxID(dev *storage.Device, name string) (graph.VertexID, error) {
	f, err := dev.Open(name)
	if err != nil {
		return 0, err
	}
	r := storage.NewReader(f)
	var maxID graph.VertexID
	var buf [graph.EdgeBytes]byte
	for {
		err := r.ReadFull(buf[:])
		if err == io.EOF {
			return maxID, nil
		}
		if err != nil {
			return 0, err
		}
		e := graph.GetEdge(buf[:])
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
}

const metaMagic = 0x525343_47534f44

func (g *Graph) writeMeta() error {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(g.NumVertices))
	binary.LittleEndian.PutUint64(buf[16:], uint64(g.NumEdges))
	return storage.WriteAll(g.dev, g.prefix+suffixMeta, buf)
}

// Load opens a previously built CSR graph by prefix. The index is not
// resident until LoadIndex.
func Load(dev *storage.Device, prefix string) (*Graph, error) {
	buf, err := storage.ReadAllFile(dev, prefix+suffixMeta)
	if err != nil {
		return nil, fmt.Errorf("csr: loading meta: %w", err)
	}
	if len(buf) != 24 || binary.LittleEndian.Uint64(buf) != metaMagic {
		return nil, fmt.Errorf("csr: %q is not a CSR meta file", prefix+suffixMeta)
	}
	return &Graph{
		dev:         dev,
		prefix:      prefix,
		NumVertices: int(binary.LittleEndian.Uint64(buf[8:])),
		NumEdges:    int64(binary.LittleEndian.Uint64(buf[16:])),
	}, nil
}
