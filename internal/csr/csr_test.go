package csr

import (
	"sort"
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

func buildEdges(t *testing.T, dev *storage.Device, edges []graph.Edge, prefix string) *Graph {
	t.Helper()
	if err := graph.WriteEdges(dev, prefix+".raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := Build(BuildConfig{Dev: dev}, prefix+".raw", prefix)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildSmall(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	edges := []graph.Edge{
		{Src: 2, Dst: 0}, {Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 4, Dst: 4},
	}
	g := buildEdges(t, dev, edges, "g")
	if g.NumVertices != 5 {
		t.Errorf("NumVertices = %d, want 5 (maxID+1)", g.NumVertices)
	}
	if g.NumEdges != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges)
	}
	if err := g.LoadIndex(); err != nil {
		t.Fatal(err)
	}
	wantDeg := []uint32{2, 0, 1, 0, 1}
	for v, want := range wantDeg {
		if got := g.DegreeOf(graph.VertexID(v)); got != want {
			t.Errorf("DegreeOf(%d) = %d, want %d", v, got, want)
		}
	}
	adj, err := g.Adjacency(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(adj) != 2 {
		t.Fatalf("adjacency of 0 = %v", adj)
	}
	got := []graph.VertexID{adj[0], adj[1]}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("adjacency of 0 = %v, want {1,2}", got)
	}
}

func TestBuildEmpty(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := buildEdges(t, dev, nil, "g")
	if g.NumVertices != 0 || g.NumEdges != 0 {
		t.Errorf("V=%d E=%d", g.NumVertices, g.NumEdges)
	}
	if err := g.LoadIndex(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexBytesScalesWithVertices(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	// One edge with a huge max ID: CSR pays for the whole ID space.
	g := buildEdges(t, dev, []graph.Edge{{Src: 0, Dst: 9999}}, "g")
	if g.NumVertices != 10000 {
		t.Fatalf("NumVertices = %d", g.NumVertices)
	}
	if g.IndexBytes() != 10001*IndexEntryBytes {
		t.Errorf("IndexBytes = %d", g.IndexBytes())
	}
}

func TestAdjacencyRequiresIndex(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := buildEdges(t, dev, []graph.Edge{{Src: 0, Dst: 1}}, "g")
	if _, err := g.Adjacency(0, nil); err == nil {
		t.Error("Adjacency before LoadIndex should fail")
	}
	g.LoadIndex()
	if _, err := g.Adjacency(99, nil); err == nil {
		t.Error("out-of-range vertex should fail")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := buildEdges(t, dev, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}, "g")
	g2, err := Load(dev, "g")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices != g.NumVertices || g2.NumEdges != g.NumEdges {
		t.Errorf("loaded %+v want %+v", g2, g)
	}
	if g2.IndexLoaded() {
		t.Error("index should not be resident after Load")
	}
	if _, err := Load(dev, "missing"); err == nil {
		t.Error("loading missing graph should fail")
	}
}

// TestMatchesReference cross-checks CSR against in-memory adjacency on a
// random graph.
func TestMatchesReference(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 11)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	g := buildEdges(t, dev, edges, "g")
	if err := g.LoadIndex(); err != nil {
		t.Fatal(err)
	}
	want := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range edges {
		want[e.Src] = append(want[e.Src], e.Dst)
	}
	var buf []graph.VertexID
	var total int64
	for v := 0; v < g.NumVertices; v++ {
		id := graph.VertexID(v)
		deg := g.DegreeOf(id)
		if int(deg) != len(want[id]) {
			t.Fatalf("DegreeOf(%d) = %d, want %d", v, deg, len(want[id]))
		}
		total += int64(deg)
		var err error
		buf, err = g.Adjacency(id, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		got := append([]graph.VertexID(nil), buf...)
		exp := append([]graph.VertexID(nil), want[id]...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(exp, func(i, j int) bool { return exp[i] < exp[j] })
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("vertex %d adjacency mismatch", v)
			}
		}
	}
	if total != g.NumEdges {
		t.Errorf("degree sum %d != NumEdges %d", total, g.NumEdges)
	}
	// Offsets are a prefix sum of degrees.
	var acc int64
	for v := 0; v < g.NumVertices; v++ {
		if g.OffsetOf(graph.VertexID(v)) != acc {
			t.Fatalf("OffsetOf(%d) = %d, want %d", v, g.OffsetOf(graph.VertexID(v)), acc)
		}
		acc += int64(g.DegreeOf(graph.VertexID(v)))
	}
}
