package storage

import (
	"fmt"
	"io"
)

// DefaultBlockSize is the transfer unit of the buffered streams: engines
// issue device operations in blocks of this size so that op and seek
// counts reflect realistic request sizes rather than per-record calls.
const DefaultBlockSize = 256 * 1024

// Reader streams a file (or a sub-range of it) sequentially through a
// block-sized buffer. It implements io.Reader.
type Reader struct {
	f       *File
	off     int64
	end     int64
	buf     []byte
	pos     int
	filled  int
	blockSz int
}

// NewReader returns a Reader over the whole file with the default block
// size.
func NewReader(f *File) *Reader {
	return NewRangeReader(f, 0, f.Size())
}

// NewRangeReader returns a Reader over file bytes [off, end).
func NewRangeReader(f *File, off, end int64) *Reader {
	return &Reader{f: f, off: off, end: end, blockSz: DefaultBlockSize}
}

// SetBlockSize overrides the transfer unit; useful in tests exercising the
// cost model.
func (r *Reader) SetBlockSize(n int) {
	if n > 0 {
		r.blockSz = n
	}
}

// Remaining returns the number of unread bytes, including buffered ones.
func (r *Reader) Remaining() int64 {
	return r.end - r.off + int64(r.filled-r.pos)
}

func (r *Reader) fill() error {
	if r.off >= r.end {
		return io.EOF
	}
	if r.buf == nil {
		r.buf = make([]byte, r.blockSz)
	}
	want := int64(len(r.buf))
	if left := r.end - r.off; left < want {
		want = left
	}
	n, err := r.f.ReadAt(r.buf[:want], r.off)
	if err != nil {
		return err
	}
	if n == 0 {
		return io.EOF
	}
	r.off += int64(n)
	r.pos, r.filled = 0, n
	return nil
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.pos == r.filled {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, r.buf[r.pos:r.filled])
	r.pos += n
	return n, nil
}

// ReadFull reads exactly len(p) bytes or returns an error; io.EOF is
// returned only at a record boundary (nothing read), io.ErrUnexpectedEOF
// otherwise.
func (r *Reader) ReadFull(p []byte) error {
	total := 0
	for total < len(p) {
		n, err := r.Read(p[total:])
		total += n
		if err != nil {
			if err == io.EOF && total == 0 {
				return io.EOF
			}
			if err == io.EOF {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// Writer streams sequential appends to a file through a block-sized
// buffer. It implements io.Writer; Flush or Close must be called to
// persist the tail.
type Writer struct {
	f   *File
	off int64
	buf []byte
}

// NewWriter returns a Writer appending at the end of f with the default
// block size.
func NewWriter(f *File) *Writer {
	return &Writer{f: f, off: f.Size(), buf: make([]byte, 0, DefaultBlockSize)}
}

// NewWriterAt returns a Writer writing sequentially starting at off.
func NewWriterAt(f *File, off int64) *Writer {
	return &Writer{f: f, off: off, buf: make([]byte, 0, DefaultBlockSize)}
}

// Offset returns the file offset the next byte will land at.
func (w *Writer) Offset() int64 { return w.off + int64(len(w.buf)) }

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		space := cap(w.buf) - len(w.buf)
		if space == 0 {
			if err := w.Flush(); err != nil {
				return total, err
			}
			space = cap(w.buf)
		}
		n := len(p)
		if n > space {
			n = space
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
	}
	return total, nil
}

// Flush writes any buffered bytes to the device.
func (w *Writer) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.WriteAt(w.buf, w.off); err != nil {
		return err
	}
	w.off += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the writer. The file needs no separate close.
func (w *Writer) Close() error { return w.Flush() }

// WriteAll creates (or truncates) the named file and writes data to it in
// block-sized operations.
func WriteAll(dev *Device, name string, data []byte) error {
	f, err := dev.Create(name)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("storage: writing %q: %w", name, err)
	}
	return w.Flush()
}

// ReadAllFile reads the full contents of the named file in block-sized
// operations.
func ReadAllFile(dev *Device, name string) ([]byte, error) {
	f, err := dev.Open(name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, f.Size())
	r := NewReader(f)
	if len(out) == 0 {
		return out, nil
	}
	if err := r.ReadFull(out); err != nil {
		return nil, fmt.Errorf("storage: reading %q: %w", name, err)
	}
	return out, nil
}
