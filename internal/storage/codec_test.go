package storage

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, c Codec, entries []uint32) {
	t.Helper()
	enc := c.EncodeBlock(nil, entries)
	dec, err := c.DecodeBlock(nil, enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", c.Name(), err)
	}
	if len(dec) != len(entries) {
		t.Fatalf("%s: decoded %d entries, want %d", c.Name(), len(dec), len(entries))
	}
	for i := range dec {
		if dec[i] != entries[i] {
			t.Fatalf("%s: entry %d = %d, want %d", c.Name(), i, dec[i], entries[i])
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cases := [][]uint32{
		nil,
		{0},
		{math.MaxUint32},
		{0, math.MaxUint32, 0, math.MaxUint32},
		{5, 5, 5, 5},
		{1, 2, 3, 1000, 1001, 7, 8, 9}, // ascending runs with a backward jump
	}
	for _, c := range codecs {
		for _, entries := range cases {
			roundTrip(t, c, entries)
		}
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	for _, c := range codecs {
		c := c
		check := func(entries []uint32) bool {
			enc := c.EncodeBlock(nil, entries)
			dec, err := c.DecodeBlock(nil, enc)
			if err != nil || len(dec) != len(entries) {
				return false
			}
			for i := range dec {
				if dec[i] != entries[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestCodecAppendsToDst(t *testing.T) {
	for _, c := range codecs {
		enc := c.EncodeBlock([]byte{0xab}, []uint32{1, 2, 3})
		if enc[0] != 0xab {
			t.Fatalf("%s: EncodeBlock clobbered the prefix", c.Name())
		}
		dec, err := c.DecodeBlock([]uint32{99}, enc[1:])
		if err != nil {
			t.Fatal(err)
		}
		if dec[0] != 99 || len(dec) != 4 {
			t.Fatalf("%s: DecodeBlock did not append: %v", c.Name(), dec)
		}
	}
}

func TestCodecVarintCompressesAscendingRuns(t *testing.T) {
	// The v2 invariant: ascending destinations within each adjacency.
	entries := make([]uint32, 4096)
	for i := range entries {
		entries[i] = uint32(i / 4) // slowly ascending, many zero deltas
	}
	raw := CodecRaw.EncodeBlock(nil, entries)
	vv := CodecVarint.EncodeBlock(nil, entries)
	if len(vv)*2 > len(raw) {
		t.Fatalf("varint %d bytes vs raw %d: expected at least 2x on ascending data", len(vv), len(raw))
	}
}

func TestCodecDecodeCorrupt(t *testing.T) {
	cases := []struct {
		name  string
		codec Codec
		src   []byte
	}{
		{"raw trailing bytes", CodecRaw, []byte{1, 2, 3}},
		{"varint truncated", CodecVarint, []byte{0x80}},
		{"varint truncated tail", CodecVarint, CodecVarint.EncodeBlock(nil, []uint32{100000})[:1]},
		{"varint 64-bit overflow", CodecVarint, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}},
		{"varint leaves u32 range", CodecVarint, CodecVarint.EncodeBlock(CodecVarint.EncodeBlock(nil, []uint32{math.MaxUint32}), []uint32{math.MaxUint32})},
	}
	for _, tc := range cases {
		_, err := tc.codec.DecodeBlock(nil, tc.src)
		if err == nil {
			t.Errorf("%s: decode accepted corrupt input", tc.name)
			continue
		}
		if !errors.Is(err, ErrCorruptBlock) {
			t.Errorf("%s: error %v does not match ErrCorruptBlock", tc.name, err)
		}
		var ce *CodecError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %T is not a *CodecError", tc.name, err)
		}
	}
}

func TestCodecDecodeArbitraryNeverPanics(t *testing.T) {
	for _, c := range codecs {
		c := c
		check := func(src []byte) bool {
			dec, err := c.DecodeBlock(nil, src)
			// Decoded count is bounded by the input size.
			return err != nil || len(dec) <= len(src)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestCodecRegistry(t *testing.T) {
	for _, c := range codecs {
		byID, err := CodecByID(c.ID())
		if err != nil || byID.Name() != c.Name() {
			t.Errorf("CodecByID(%d) = %v, %v", c.ID(), byID, err)
		}
		byName, err := CodecByName(c.Name())
		if err != nil || byName.ID() != c.ID() {
			t.Errorf("CodecByName(%q) = %v, %v", c.Name(), byName, err)
		}
	}
	if _, err := CodecByID(250); err == nil {
		t.Error("CodecByID(250) succeeded")
	}
	if _, err := CodecByName("nope"); err == nil {
		t.Error(`CodecByName("nope") succeeded`)
	}
}

func TestBlockLayoutArithmetic(t *testing.T) {
	raw := RawBlockLayout(100)
	if !raw.FixedEntries() || raw.NumBlocks() != 1 {
		t.Fatalf("raw layout: fixed=%v blocks=%d", raw.FixedEntries(), raw.NumBlocks())
	}
	lo, hi := raw.BlockRange(0)
	if lo != 0 || hi != 400 {
		t.Fatalf("raw block 0 extent [%d,%d)", lo, hi)
	}

	l := BlockLayout{
		Codec:        CodecVarint,
		BlockEntries: 8,
		NumEntries:   20,
		BlockOffs:    []int64{0, 11, 25, 31},
	}
	if l.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3", l.NumBlocks())
	}
	if got := l.EntriesIn(0); got != 8 {
		t.Fatalf("EntriesIn(0) = %d", got)
	}
	if got := l.EntriesIn(2); got != 4 {
		t.Fatalf("EntriesIn(2) = %d, want the short tail 4", got)
	}
	if lo, hi := l.BlockRange(1); lo != 11 || hi != 25 {
		t.Fatalf("block 1 extent [%d,%d)", lo, hi)
	}
	if l.TableBytes() != 32 {
		t.Fatalf("TableBytes = %d", l.TableBytes())
	}
}

// benchEntries builds a power-law-ish ascending-run workload: the shape
// the varint codec sees on a converted DOS v2 graph.
func benchEntries(n int) []uint32 {
	rng := rand.New(rand.NewSource(42))
	out := make([]uint32, n)
	v := uint32(0)
	for i := range out {
		if rng.Intn(64) == 0 {
			v = uint32(rng.Intn(1 << 10)) // new adjacency list, small head ID
		} else {
			v += uint32(rng.Intn(8))
		}
		out[i] = v
	}
	return out
}

func BenchmarkCodecEncode(b *testing.B) {
	entries := benchEntries(DefaultBlockSize / 4)
	for _, c := range codecs {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			buf := make([]byte, 0, MaxEncodedLen(len(entries)))
			b.SetBytes(int64(4 * len(entries)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = c.EncodeBlock(buf[:0], entries)
			}
		})
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	entries := benchEntries(DefaultBlockSize / 4)
	for _, c := range codecs {
		c := c
		enc := c.EncodeBlock(nil, entries)
		b.Run(c.Name(), func(b *testing.B) {
			dec := make([]uint32, 0, len(entries))
			b.SetBytes(int64(4 * len(entries)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				dec, err = c.DecodeBlock(dec[:0], enc)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
