// Package storage simulates the block storage device backing every
// out-of-core engine in the reproduction.
//
// The paper evaluates on a physical HDD and SSD; this repository does not
// have those, so all data movement runs through a Device: a named-file
// store whose bytes live in memory ("disk" memory, distinct from the
// engines' modeled RAM budget) but whose every read and write is charged
// to a seek-plus-bandwidth cost model and counted in Stats. All three
// engines move their real data through the same device, so the IO-volume
// and seek comparisons that drive the paper's results are preserved (see
// DESIGN.md, substitutions).
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"graphz/internal/sim"
)

// Kind selects a device cost profile.
type Kind int

const (
	// HDD models a 7200 rpm magnetic disk: expensive seeks, moderate
	// sequential bandwidth.
	HDD Kind = iota
	// SSD models a SATA solid-state drive: cheap "seeks" (command
	// overhead), high bandwidth.
	SSD
	// NullDevice charges no time and has unlimited capacity; useful in
	// unit tests that exercise logic rather than cost.
	NullDevice
)

// String returns the device kind name.
func (k Kind) String() string {
	switch k {
	case HDD:
		return "HDD"
	case SSD:
		return "SSD"
	case NullDevice:
		return "null"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Profile holds the cost model parameters for a device kind.
type Profile struct {
	// SeekLatency is charged whenever an access is not sequential with
	// the previous access to the same file.
	SeekLatency time.Duration
	// ReadBandwidth and WriteBandwidth are in bytes per second.
	ReadBandwidth  float64
	WriteBandwidth float64
}

// Profiles for the built-in kinds, loosely calibrated to the paper's
// hardware (internal HDD, Samsung 850 Pro class SSD).
var profiles = map[Kind]Profile{
	HDD:        {SeekLatency: 8 * time.Millisecond, ReadBandwidth: 140e6, WriteBandwidth: 130e6},
	SSD:        {SeekLatency: 60 * time.Microsecond, ReadBandwidth: 520e6, WriteBandwidth: 480e6},
	NullDevice: {SeekLatency: 0, ReadBandwidth: 0, WriteBandwidth: 0},
}

// ProfileFor returns the cost profile of a kind.
func ProfileFor(k Kind) Profile { return profiles[k] }

// Stats counts the physical device traffic of a run. With the page-cache
// model enabled, reads served from cached pages appear only in CacheHits.
type Stats struct {
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
	Seeks      int64
	CacheHits  int64 // pages served from the OS page-cache model
	// RemoveErrors counts Remove calls that failed; callers that ignore
	// Remove's error still leave an audit trail here.
	RemoveErrors int64
}

// Add returns the element-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		ReadOps:      s.ReadOps + o.ReadOps,
		WriteOps:     s.WriteOps + o.WriteOps,
		ReadBytes:    s.ReadBytes + o.ReadBytes,
		WriteBytes:   s.WriteBytes + o.WriteBytes,
		Seeks:        s.Seeks + o.Seeks,
		CacheHits:    s.CacheHits + o.CacheHits,
		RemoveErrors: s.RemoveErrors + o.RemoveErrors,
	}
}

// Sub returns the element-wise difference of s and o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		ReadOps:      s.ReadOps - o.ReadOps,
		WriteOps:     s.WriteOps - o.WriteOps,
		ReadBytes:    s.ReadBytes - o.ReadBytes,
		WriteBytes:   s.WriteBytes - o.WriteBytes,
		Seeks:        s.Seeks - o.Seeks,
		CacheHits:    s.CacheHits - o.CacheHits,
		RemoveErrors: s.RemoveErrors - o.RemoveErrors,
	}
}

// String summarizes the stats for logs.
func (s Stats) String() string {
	out := fmt.Sprintf("reads=%d (%d B) writes=%d (%d B) seeks=%d",
		s.ReadOps, s.ReadBytes, s.WriteOps, s.WriteBytes, s.Seeks)
	if s.CacheHits > 0 {
		out += fmt.Sprintf(" cacheHits=%d", s.CacheHits)
	}
	if s.RemoveErrors > 0 {
		out += fmt.Sprintf(" removeErrors=%d", s.RemoveErrors)
	}
	return out
}

// ErrNoSpace is returned when a write would exceed the device capacity,
// reproducing the paper's "graph exceeds SSD capacity" failure mode.
var ErrNoSpace = errors.New("storage: device out of space")

// ErrNotFound is returned when opening a file that does not exist.
var ErrNotFound = errors.New("storage: file not found")

// Device is a simulated block device holding named files. It is safe for
// concurrent use.
type Device struct {
	kind     Kind
	profile  Profile
	capacity int64 // bytes; 0 means unlimited
	clock    *sim.Clock

	mu    sync.Mutex
	files map[string]*file
	stats Stats
	// fileStats attributes physical traffic per file name. It is keyed
	// separately from files so the attribution survives Remove — engines
	// delete their message files at the end of a run, after which the
	// run report still wants to know what they cost.
	fileStats map[string]*Stats
	used      int64
	cache     *pageCache // nil unless PageCacheBytes > 0
	inj       *injector  // nil unless constructed via NewFaultDevice
}

type file struct {
	name string
	data []byte
	// lastReadEnd / lastWriteEnd track sequentiality per stream
	// direction; an access that does not start where the previous one
	// of the same direction ended is charged a seek.
	lastReadEnd  int64
	lastWriteEnd int64
}

// Options configures a Device.
type Options struct {
	// Capacity in bytes; 0 means unlimited.
	Capacity int64
	// Clock receives IO time charges; nil means charges are dropped
	// (stats are still counted).
	Clock *sim.Clock
	// PageCacheBytes enables the OS page-cache model: reads of cached
	// pages are free, misses charge normally and populate the cache.
	// 0 disables it (every byte charged — the harness default).
	PageCacheBytes int64
}

// NewDevice creates a device of the given kind.
func NewDevice(kind Kind, opts Options) *Device {
	d := &Device{
		kind:     kind,
		profile:  profiles[kind],
		capacity: opts.Capacity,
		clock:    opts.Clock,
		files:    make(map[string]*file),
	}
	if opts.PageCacheBytes > 0 {
		d.cache = newPageCache(opts.PageCacheBytes)
	}
	return d
}

// Kind returns the device kind.
func (d *Device) Kind() Kind { return d.kind }

// Capacity returns the device capacity in bytes (0 = unlimited).
func (d *Device) Capacity() int64 { return d.capacity }

// SetClock redirects subsequent IO time charges to clock (which may be
// nil). Used by harnesses that reuse one device across phases measured by
// different clocks.
func (d *Device) SetClock(clock *sim.Clock) {
	d.mu.Lock()
	d.clock = clock
	d.mu.Unlock()
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters, global and per-file (file
// contents are untouched).
func (d *Device) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.fileStats = nil
	d.mu.Unlock()
}

// FileStats returns a snapshot of the per-file traffic counters, keyed
// by file name. Attribution survives Remove: a deleted file's traffic
// stays visible (run reports account the whole run, including runtime
// files cleaned up at the end).
func (d *Device) FileStats() map[string]Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]Stats, len(d.fileStats))
	for n, s := range d.fileStats {
		out[n] = *s
	}
	return out
}

// fileStat returns the per-file accumulator for name. Caller holds d.mu.
func (d *Device) fileStat(name string) *Stats {
	s, ok := d.fileStats[name]
	if !ok {
		if d.fileStats == nil {
			d.fileStats = make(map[string]*Stats)
		}
		s = &Stats{}
		d.fileStats[name] = s
	}
	return s
}

// Used returns the number of bytes currently stored on the device.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Create creates (or truncates) the named file and returns a handle.
func (d *Device) Create(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j := d.inj; j != nil && j.crashed {
		return nil, ErrCrashed
	}
	if f, ok := d.files[name]; ok {
		d.used -= int64(len(f.data))
		f.data = f.data[:0]
		f.lastReadEnd, f.lastWriteEnd = 0, 0
		if d.cache != nil {
			d.cache.invalidateFile(f)
		}
		return &File{dev: d, f: f}, nil
	}
	f := &file{name: name}
	d.files[name] = f
	return &File{dev: d, f: f}, nil
}

// Open returns a handle to an existing file.
func (d *Device) Open(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j := d.inj; j != nil && j.crashed {
		return nil, ErrCrashed
	}
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &File{dev: d, f: f}, nil
}

// Exists reports whether the named file exists.
func (d *Device) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

// Remove deletes the named file, freeing its capacity. Removing a missing
// file is not an error. Failures (injected faults, a crashed device) are
// returned AND counted in Stats.RemoveErrors, so callers that discard the
// error still leave an audit trail.
func (d *Device) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j := d.inj; j != nil {
		if _, err := j.op(opRemove, 0); err != nil {
			d.stats.RemoveErrors++
			return fmt.Errorf("storage: removing %q: %w", name, err)
		}
	}
	if f, ok := d.files[name]; ok {
		d.used -= int64(len(f.data))
		delete(d.files, name)
		if d.cache != nil {
			d.cache.invalidateFile(f)
		}
	}
	return nil
}

// List returns the names of all files on the device, sorted.
func (d *Device) List() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Size returns the size of the named file in bytes.
func (d *Device) Size(name string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return int64(len(f.data)), nil
}

// chargeRead accounts one read op of n bytes at offset off. Caller holds
// d.mu.
func (d *Device) chargeRead(f *file, off, n int64) {
	fs := d.fileStat(f.name)
	if d.cache != nil {
		pages := (off+n-1)/PageBytes - off/PageBytes + 1
		misses := int64(d.cache.span(f, off, n))
		d.stats.CacheHits += pages - misses
		fs.CacheHits += pages - misses
		if misses == 0 {
			// Served entirely from the page cache: no physical IO.
			return
		}
		n = misses * PageBytes
	}
	d.stats.ReadOps++
	d.stats.ReadBytes += n
	fs.ReadOps++
	fs.ReadBytes += n
	var t time.Duration
	if off != f.lastReadEnd {
		d.stats.Seeks++
		fs.Seeks++
		t += d.profile.SeekLatency
	}
	f.lastReadEnd = off + n
	if d.profile.ReadBandwidth > 0 {
		t += time.Duration(float64(n) / d.profile.ReadBandwidth * float64(time.Second))
	}
	if d.clock != nil {
		d.clock.IO(t)
	}
}

// chargeWrite accounts one write op of n bytes at offset off (writes are
// write-through and populate the page cache). Caller holds d.mu.
func (d *Device) chargeWrite(f *file, off, n int64) {
	if d.cache != nil {
		d.cache.span(f, off, n)
	}
	fs := d.fileStat(f.name)
	d.stats.WriteOps++
	d.stats.WriteBytes += n
	fs.WriteOps++
	fs.WriteBytes += n
	var t time.Duration
	if off != f.lastWriteEnd {
		d.stats.Seeks++
		fs.Seeks++
		t += d.profile.SeekLatency
	}
	f.lastWriteEnd = off + n
	if d.profile.WriteBandwidth > 0 {
		t += time.Duration(float64(n) / d.profile.WriteBandwidth * float64(time.Second))
	}
	if d.clock != nil {
		d.clock.IO(t)
	}
}

// writeRaw persists p at off with no charging or fault checks: the
// torn-prefix path of an injected crash. Growth beyond capacity is
// dropped (the device is full AND crashed). Caller holds d.mu.
func (d *Device) writeRaw(f *file, p []byte, off int64) {
	end := off + int64(len(p))
	if grow := end - int64(len(f.data)); grow > 0 {
		if d.capacity > 0 && d.used+grow > d.capacity {
			return
		}
		f.data = append(f.data, make([]byte, grow)...)
		d.used += grow
	}
	copy(f.data[off:end], p)
	if d.cache != nil {
		d.cache.span(f, off, int64(len(p)))
	}
}

// File is a handle to a device file. Handles are cheap; any number may
// exist for one file and all share the underlying bytes.
type File struct {
	dev *Device
	f   *file
}

// Name returns the file name.
func (h *File) Name() string { return h.f.name }

// Size returns the current file size.
func (h *File) Size() int64 {
	h.dev.mu.Lock()
	defer h.dev.mu.Unlock()
	return int64(len(h.f.data))
}

// ReadAt reads len(p) bytes at offset off. Short reads at EOF return the
// number of bytes read and io.EOF semantics are replaced by an explicit
// count: n < len(p) means EOF was reached.
func (h *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d reading %q", off, h.f.name)
	}
	h.dev.mu.Lock()
	defer h.dev.mu.Unlock()
	if j := h.dev.inj; j != nil {
		if _, err := j.op(opRead, len(p)); err != nil {
			return 0, fmt.Errorf("storage: reading %q: %w", h.f.name, err)
		}
	}
	size := int64(len(h.f.data))
	if off >= size {
		return 0, nil
	}
	n := copy(p, h.f.data[off:])
	h.dev.chargeRead(h.f, off, int64(n))
	return n, nil
}

// WriteAt writes len(p) bytes at offset off, extending the file if needed.
// Writing past the current end zero-fills any gap.
func (h *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d writing %q", off, h.f.name)
	}
	h.dev.mu.Lock()
	defer h.dev.mu.Unlock()
	if j := h.dev.inj; j != nil {
		if torn, err := j.op(opWrite, len(p)); err != nil {
			if torn > 0 {
				// The crash interrupted the transfer mid-write: a
				// seeded prefix reaches the media, the rest is lost —
				// the torn-write case durable formats must detect.
				h.dev.writeRaw(h.f, p[:torn], off)
			}
			return 0, fmt.Errorf("storage: writing %q: %w", h.f.name, err)
		}
	}
	end := off + int64(len(p))
	if grow := end - int64(len(h.f.data)); grow > 0 {
		if h.dev.capacity > 0 && h.dev.used+grow > h.dev.capacity {
			return 0, fmt.Errorf("%w: %q needs %d bytes, %d of %d used",
				ErrNoSpace, h.f.name, grow, h.dev.used, h.dev.capacity)
		}
		h.f.data = append(h.f.data, make([]byte, grow)...)
		h.dev.used += grow
	}
	copy(h.f.data[off:end], p)
	h.dev.chargeWrite(h.f, off, int64(len(p)))
	return len(p), nil
}

// Append writes p at the end of the file and returns the offset at which
// the data landed.
func (h *File) Append(p []byte) (int64, error) {
	h.dev.mu.Lock()
	off := int64(len(h.f.data))
	h.dev.mu.Unlock()
	// A concurrent appender could race between the size read and the
	// write; engines serialize appends per file, and WriteAt itself is
	// safe, so this is acceptable for the simulation.
	if _, err := h.WriteAt(p, off); err != nil {
		return 0, err
	}
	return off, nil
}

// Truncate resizes the file to size bytes.
func (h *File) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: negative truncate size %d for %q", size, h.f.name)
	}
	h.dev.mu.Lock()
	defer h.dev.mu.Unlock()
	if j := h.dev.inj; j != nil {
		if _, err := j.op(opTrunc, 0); err != nil {
			return fmt.Errorf("storage: truncating %q: %w", h.f.name, err)
		}
	}
	cur := int64(len(h.f.data))
	switch {
	case size < cur:
		h.dev.used -= cur - size
		h.f.data = h.f.data[:size]
	case size > cur:
		grow := size - cur
		if h.dev.capacity > 0 && h.dev.used+grow > h.dev.capacity {
			return fmt.Errorf("%w: truncate %q to %d", ErrNoSpace, h.f.name, size)
		}
		h.f.data = append(h.f.data, make([]byte, grow)...)
		h.dev.used += grow
	}
	if h.f.lastReadEnd > size {
		h.f.lastReadEnd = size
	}
	if h.f.lastWriteEnd > size {
		h.f.lastWriteEnd = size
	}
	return nil
}
