package storage

import (
	"errors"
	"fmt"
)

// ErrCrashed is returned by every device operation after an injected
// crash fires: the modeled machine is down, and stays down until the
// fault plan is disarmed (a "reboot"). Contents written before the crash
// — including any torn prefix — remain on the device, exactly like a
// real disk after power loss.
var ErrCrashed = errors.New("storage: device crashed (injected)")

// ErrInjected is returned for transient injected failures (FailAtOps,
// FailRemoves). Unlike ErrCrashed it does not latch: the next operation
// proceeds normally.
var ErrInjected = errors.New("storage: injected fault")

// FaultPlan describes a deterministic fault schedule. Operations are
// counted while the plan is armed, in the order the device serializes
// them; the same plan against the same (deterministic) workload injects
// at the same logical point.
type FaultPlan struct {
	// Seed drives the torn-write prefix length (splitmix64). Plans with
	// the same Seed tear writes identically.
	Seed uint64
	// CrashAtOp crashes the device on the Nth counted operation
	// (1-based): that operation fails with ErrCrashed — a crashing
	// write may first persist a torn prefix when TornWrites is set —
	// and every subsequent operation fails with ErrCrashed until
	// Disarm. 0 disables crashing.
	CrashAtOp int64
	// TornWrites makes the crashing operation, when it is a write,
	// persist a seeded prefix of the payload — the torn-write case an
	// atomic checkpoint protocol must survive.
	TornWrites bool
	// FailAtOps lists operation numbers that fail transiently with
	// ErrInjected (the op itself has no effect; later ops proceed).
	FailAtOps []int64
	// FailRemoves makes every Remove fail with ErrInjected, exercising
	// removal-error surfacing.
	FailRemoves bool
}

// opKind classifies counted device operations for the injector.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opTrunc
	opRemove
)

// injector holds the fault state of a FaultDevice. All methods are
// called with the owning Device's mutex held, so no extra locking.
type injector struct {
	armed   bool
	crashed bool
	plan    FaultPlan
	ops     int64
	rng     uint64
}

// splitmix64 is the same generator internal/gen uses; one step per call.
func (j *injector) rand() uint64 {
	j.rng += 0x9e3779b97f4a7c15
	z := j.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// op counts one device operation and decides its fate. For a crashing
// write with TornWrites it returns the prefix length to persist before
// failing.
func (j *injector) op(k opKind, n int) (torn int, err error) {
	if j.crashed {
		return 0, ErrCrashed
	}
	if !j.armed {
		return 0, nil
	}
	j.ops++
	if k == opRemove && j.plan.FailRemoves {
		return 0, fmt.Errorf("%w: remove at op %d", ErrInjected, j.ops)
	}
	for _, f := range j.plan.FailAtOps {
		if f == j.ops {
			return 0, fmt.Errorf("%w: op %d", ErrInjected, j.ops)
		}
	}
	if j.plan.CrashAtOp > 0 && j.ops >= j.plan.CrashAtOp {
		j.crashed = true
		if k == opWrite && j.plan.TornWrites && n > 0 {
			torn = int(j.rand() % uint64(n+1))
		}
		return torn, ErrCrashed
	}
	return 0, nil
}

// FaultDevice is a Device with a deterministic, seedable fault injector:
// crash-at-op-N (with optional torn writes), transient write errors, and
// failing removals. It exists to prove the checkpoint/restore protocol —
// see docs/DURABILITY.md. The embedded Device is used exactly as a
// normal one; engines never know they are running on a FaultDevice.
type FaultDevice struct {
	*Device
}

// NewFaultDevice creates a device with an (initially disarmed) injector.
// Until Arm is called it behaves exactly like NewDevice.
func NewFaultDevice(kind Kind, opts Options) *FaultDevice {
	d := NewDevice(kind, opts)
	d.inj = &injector{}
	return &FaultDevice{Device: d}
}

// Arm installs a fault plan and resets the operation counter and crash
// latch. Operations performed while disarmed are not counted, so a
// harness can build its graph first and arm just before the run.
func (fd *FaultDevice) Arm(plan FaultPlan) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	j := fd.inj
	j.plan = plan
	j.armed = true
	j.crashed = false
	j.ops = 0
	j.rng = plan.Seed
}

// Disarm clears the plan and the crash latch — the modeled reboot. File
// contents (including torn prefixes) survive, as they would on disk.
func (fd *FaultDevice) Disarm() {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	fd.inj.armed = false
	fd.inj.crashed = false
}

// Ops returns the number of operations counted since the last Arm.
func (fd *FaultDevice) Ops() int64 {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.inj.ops
}

// Crashed reports whether the crash latch has fired.
func (fd *FaultDevice) Crashed() bool {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.inj.crashed
}
