package storage

import (
	"testing"
	"time"

	"graphz/internal/sim"
)

func cachedDevice(cacheBytes int64) (*Device, *sim.Clock) {
	clock := sim.NewClock()
	dev := NewDevice(SSD, Options{Clock: clock, PageCacheBytes: cacheBytes})
	return dev, clock
}

func TestPageCacheHitsAreFree(t *testing.T) {
	dev, clock := cachedDevice(1 << 20)
	f, _ := dev.Create("a")
	data := make([]byte, 64*1024)
	f.WriteAt(data, 0)

	// The write populated the cache; this read is free.
	buf := make([]byte, len(data))
	before := dev.Stats()
	t0 := clock.TotalIO()
	f.ReadAt(buf, 0)
	if got := dev.Stats().ReadBytes - before.ReadBytes; got != 0 {
		t.Errorf("cached read charged %d physical bytes", got)
	}
	if clock.TotalIO() != t0 {
		t.Error("cached read charged IO time")
	}
	if dev.Stats().CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestPageCacheMissChargesAndCaches(t *testing.T) {
	dev, _ := cachedDevice(1 << 20)
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, 256*1024), 0)
	// Evict by filling the cache with another file... simpler: use a
	// fresh device whose cache never saw the data: reopen pattern is
	// not possible, so instead read a range twice and compare charges.
	dev2, _ := cachedDevice(1 << 20)
	f2, _ := dev2.Create("b")
	f2.WriteAt(make([]byte, 8*PageBytes), 0)
	dev2.ResetStats()
	// Invalidate by truncate+rewrite without cache population? Writes
	// populate. Use eviction: write 2x the cache size sequentially.
	big, _ := cachedDevice(4 * PageBytes)
	bf, _ := big.Create("c")
	bf.WriteAt(make([]byte, 16*PageBytes), 0) // populates, then evicts oldest
	big.ResetStats()
	buf := make([]byte, PageBytes)
	bf.ReadAt(buf, 0) // page 0 long evicted -> miss
	if big.Stats().ReadBytes == 0 {
		t.Error("evicted page should charge a physical read")
	}
}

func TestPageCacheTruncateInvalidates(t *testing.T) {
	dev, _ := cachedDevice(1 << 20)
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, 4*PageBytes), 0)
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 4*PageBytes), 0)
	// After truncate the old pages were purged; the rewrite repopulated
	// them, so this read hits.
	dev.ResetStats()
	f.ReadAt(make([]byte, PageBytes), 0)
	if dev.Stats().ReadBytes != 0 {
		t.Error("rewritten page should be cached")
	}

	// Recreating a file purges its pages too.
	dev.Create("a")
	st := dev.Stats()
	f.ReadAt(make([]byte, 1), 0) // empty file: no read at all
	if dev.Stats() != st {
		t.Error("read of empty recreated file should be a no-op")
	}
}

func TestPageCacheDisabledByDefault(t *testing.T) {
	dev := NewDevice(SSD, Options{})
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, PageBytes), 0)
	f.ReadAt(make([]byte, PageBytes), 0)
	f.ReadAt(make([]byte, PageBytes), 0)
	if dev.Stats().CacheHits != 0 {
		t.Error("cache hits without a cache")
	}
	if dev.Stats().ReadOps != 2 {
		t.Errorf("ReadOps = %d, want 2 (no cache)", dev.Stats().ReadOps)
	}
}

func TestPageCacheRepeatScanSpeedup(t *testing.T) {
	// A file smaller than the cache: the second full scan is free, so
	// the modeled time of two scans is about one scan.
	dev, clock := cachedDevice(8 << 20)
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, 4<<20), 0)
	scan := func() time.Duration {
		start := clock.TotalIO()
		r := NewReader(f)
		buf := make([]byte, 64*1024)
		for {
			if err := r.ReadFull(buf); err != nil {
				break
			}
		}
		return clock.TotalIO() - start
	}
	first := scan()
	second := scan()
	if second > first/10 {
		t.Errorf("second scan cost %v, first %v; cache should make it nearly free", second, first)
	}
}
