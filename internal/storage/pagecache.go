package storage

import "container/list"

// Optional OS page-cache model. The paper's testbed had 16 GB of physical
// RAM: beyond each framework's configured budget, the operating system
// cached recently touched file pages, which the GraphChi-class system (4x
// edge-data traffic per iteration) implicitly exploited. A Device built
// with PageCacheBytes > 0 models that: reads served from cached pages
// cost no device time and no physical IO; misses charge normally and
// populate the cache; writes are write-through and populate the cache.
// Stats count *physical* IO (what the paper's iostat-style Figure 9
// measures); CacheHits counts pages served from memory.
//
// The harness's mainline experiments run without the cache (every byte
// charged — conservative and simple); the page-cache ablation bench
// quantifies how much of the GraphChi gap the cache explains.

// PageBytes is the cache granularity.
const PageBytes = 4096

type pageKey struct {
	f    *file
	page int64
}

// pageCache is a fixed-capacity LRU over (file, page) keys. Callers hold
// the device mutex.
type pageCache struct {
	capacity int // pages
	order    *list.List
	index    map[pageKey]*list.Element
}

func newPageCache(bytes int64) *pageCache {
	pages := int(bytes / PageBytes)
	if pages < 1 {
		pages = 1
	}
	return &pageCache{
		capacity: pages,
		order:    list.New(),
		index:    make(map[pageKey]*list.Element),
	}
}

// touch inserts (or refreshes) a page, evicting the LRU page when full.
// It reports whether the page was already cached.
func (c *pageCache) touch(k pageKey) bool {
	if el, ok := c.index[k]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		delete(c.index, back.Value.(pageKey))
		c.order.Remove(back)
	}
	c.index[k] = c.order.PushFront(k)
	return false
}

// invalidateFile purges every page of f (called on truncate/recreate so
// stale contents can never be "hit").
func (c *pageCache) invalidateFile(f *file) {
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if k := el.Value.(pageKey); k.f == f {
			delete(c.index, k)
			c.order.Remove(el)
		}
		el = next
	}
}

// span touches all pages covering [off, off+n) and returns how many were
// misses.
func (c *pageCache) span(f *file, off, n int64) (misses int) {
	if n <= 0 {
		return 0
	}
	first := off / PageBytes
	last := (off + n - 1) / PageBytes
	for p := first; p <= last; p++ {
		if !c.touch(pageKey{f: f, page: p}) {
			misses++
		}
	}
	return misses
}
