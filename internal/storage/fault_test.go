package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultDeviceUnarmedIsTransparent(t *testing.T) {
	fd := NewFaultDevice(NullDevice, Options{})
	f, err := fd.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	if fd.Ops() != 0 {
		t.Fatalf("unarmed device counted %d ops", fd.Ops())
	}
}

func TestCrashAtOpLatches(t *testing.T) {
	fd := NewFaultDevice(NullDevice, Options{})
	f, err := fd.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	fd.Arm(FaultPlan{CrashAtOp: 3})
	if _, err := f.WriteAt([]byte("one"), 0); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := f.WriteAt([]byte("two"), 3); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), 6); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 3 = %v, want ErrCrashed", err)
	}
	if !fd.Crashed() {
		t.Fatal("crash latch should have fired")
	}
	// Every subsequent operation fails, including opening files.
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash = %v, want ErrCrashed", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("truncate after crash = %v, want ErrCrashed", err)
	}
	if _, err := fd.Open("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash = %v, want ErrCrashed", err)
	}
	if _, err := fd.Create("b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("create after crash = %v, want ErrCrashed", err)
	}
	if err := fd.Remove("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("remove after crash = %v, want ErrCrashed", err)
	}
	// Pre-crash contents survived the "power loss".
	fd.Disarm()
	g, err := fd.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "onetwo" {
		t.Fatalf("after reboot file = %q, want %q", buf, "onetwo")
	}
}

func TestTornWriteDeterministicBySeed(t *testing.T) {
	tear := func(seed uint64) []byte {
		fd := NewFaultDevice(NullDevice, Options{})
		f, err := fd.Create("a")
		if err != nil {
			t.Fatal(err)
		}
		fd.Arm(FaultPlan{Seed: seed, CrashAtOp: 1, TornWrites: true})
		payload := bytes.Repeat([]byte("0123456789abcdef"), 16)
		if _, err := f.WriteAt(payload, 0); !errors.Is(err, ErrCrashed) {
			t.Fatalf("torn write = %v, want ErrCrashed", err)
		}
		fd.Disarm()
		data, rerr := ReadAllFile(fd.Device, "a")
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.HasPrefix(payload, data) {
			t.Fatalf("torn content %q is not a prefix of the payload", data)
		}
		return data
	}
	a1, a2 := tear(7), tear(7)
	if !bytes.Equal(a1, a2) {
		t.Fatalf("same seed tore differently: %d vs %d bytes", len(a1), len(a2))
	}
	// Different seeds should (for this pair) tear differently; if a
	// seed pair ever collides, pick another — determinism per seed is
	// the property under test.
	if b := tear(8); bytes.Equal(a1, b) && len(a1) != 0 {
		t.Logf("seeds 7 and 8 tore identically (%d bytes); coincidence, not failure", len(a1))
	}
}

func TestFailAtOpsIsTransient(t *testing.T) {
	fd := NewFaultDevice(NullDevice, Options{})
	f, err := fd.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	fd.Arm(FaultPlan{FailAtOps: []int64{2}})
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := f.WriteAt([]byte("y"), 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 = %v, want ErrInjected", err)
	}
	if fd.Crashed() {
		t.Fatal("transient fault must not latch the crash flag")
	}
	if _, err := f.WriteAt([]byte("z"), 1); err != nil {
		t.Fatalf("op 3 after transient fault: %v", err)
	}
	if fd.Ops() != 3 {
		t.Fatalf("ops = %d, want 3", fd.Ops())
	}
}

func TestFailRemovesRecordedInStats(t *testing.T) {
	fd := NewFaultDevice(NullDevice, Options{})
	if _, err := fd.Create("a"); err != nil {
		t.Fatal(err)
	}
	fd.Arm(FaultPlan{FailRemoves: true})
	if err := fd.Remove("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Remove = %v, want ErrInjected", err)
	}
	if !fd.Exists("a") {
		t.Fatal("failed Remove must not delete the file")
	}
	if got := fd.Stats().RemoveErrors; got != 1 {
		t.Fatalf("Stats.RemoveErrors = %d, want 1", got)
	}
	fd.Disarm()
	if err := fd.Remove("a"); err != nil {
		t.Fatalf("Remove after disarm: %v", err)
	}
	if fd.Exists("a") {
		t.Fatal("file should be gone")
	}
}

func TestRemoveMissingIsNotAnError(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	if err := dev.Remove("never-created"); err != nil {
		t.Fatalf("Remove missing = %v, want nil", err)
	}
	if dev.Stats().RemoveErrors != 0 {
		t.Fatal("missing-file removal must not count as an error")
	}
}
