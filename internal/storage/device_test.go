package storage

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"graphz/internal/sim"
)

func TestCreateWriteRead(t *testing.T) {
	dev := NewDevice(SSD, Options{})
	f, err := dev.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello graph world")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, err := f.ReadAt(got, 0)
	if err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read %q, want %q", got, data)
	}
}

func TestReadAtEOF(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("a")
	f.WriteAt([]byte{1, 2, 3}, 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != 3 {
		t.Errorf("ReadAt = %d, %v, want 3, nil", n, err)
	}
	n, err = f.ReadAt(buf, 99)
	if err != nil || n != 0 {
		t.Errorf("ReadAt past EOF = %d, %v, want 0, nil", n, err)
	}
}

func TestWriteAtGapZeroFills(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("a")
	if _, err := f.WriteAt([]byte{9}, 4); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	f.ReadAt(buf, 0)
	if !bytes.Equal(buf, []byte{0, 0, 0, 0, 9}) {
		t.Errorf("got %v", buf)
	}
}

func TestOpenMissing(t *testing.T) {
	dev := NewDevice(SSD, Options{})
	if _, err := dev.Open("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open missing = %v, want ErrNotFound", err)
	}
	if _, err := dev.Size("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size missing = %v, want ErrNotFound", err)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("a")
	f.WriteAt([]byte{1, 2, 3}, 0)
	f2, _ := dev.Create("a")
	if f2.Size() != 0 {
		t.Errorf("recreated file size = %d, want 0", f2.Size())
	}
	if dev.Used() != 0 {
		t.Errorf("Used = %d, want 0", dev.Used())
	}
}

func TestCapacity(t *testing.T) {
	dev := NewDevice(SSD, Options{Capacity: 10})
	f, _ := dev.Create("a")
	if _, err := f.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 8), 8); !errors.Is(err, ErrNoSpace) {
		t.Errorf("over-capacity write = %v, want ErrNoSpace", err)
	}
	// Overwrites within the file do not consume capacity.
	if _, err := f.WriteAt(make([]byte, 8), 0); err != nil {
		t.Errorf("overwrite = %v, want nil", err)
	}
	// Removing frees capacity.
	dev.Remove("a")
	f2, _ := dev.Create("b")
	if _, err := f2.WriteAt(make([]byte, 10), 0); err != nil {
		t.Errorf("write after remove = %v", err)
	}
}

func TestTruncate(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("a")
	f.WriteAt([]byte{1, 2, 3, 4}, 0)
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 || dev.Used() != 2 {
		t.Errorf("after shrink: size=%d used=%d", f.Size(), dev.Used())
	}
	if err := f.Truncate(6); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	f.ReadAt(buf, 0)
	if !bytes.Equal(buf, []byte{1, 2, 0, 0, 0, 0}) {
		t.Errorf("after grow: %v", buf)
	}
	if err := f.Truncate(-1); err == nil {
		t.Error("negative truncate should fail")
	}
}

func TestStatsCounting(t *testing.T) {
	dev := NewDevice(HDD, Options{})
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, 100), 0)
	f.ReadAt(make([]byte, 50), 0)
	f.ReadAt(make([]byte, 50), 50) // sequential, no seek
	f.ReadAt(make([]byte, 10), 0)  // seek back
	s := dev.Stats()
	if s.WriteOps != 1 || s.WriteBytes != 100 {
		t.Errorf("writes: %+v", s)
	}
	if s.ReadOps != 3 || s.ReadBytes != 110 {
		t.Errorf("reads: %+v", s)
	}
	// Seeks: first write (off 0 == lastWriteEnd 0: sequential, no
	// seek), first read at 0 is sequential (lastReadEnd starts 0),
	// second read sequential, third read seeks.
	if s.Seeks != 1 {
		t.Errorf("seeks = %d, want 1", s.Seeks)
	}
	dev.ResetStats()
	if dev.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestIOChargedToClock(t *testing.T) {
	clock := sim.NewClock()
	dev := NewDevice(HDD, Options{Clock: clock})
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, 1_300_000), 0) // 1.3MB at 130MB/s = 10ms
	got := clock.TotalIO()
	if got < 9*time.Millisecond || got > 11*time.Millisecond {
		t.Errorf("write IO time = %v, want ~10ms", got)
	}
	// A seek on HDD costs 8ms.
	before := clock.TotalIO()
	f.ReadAt(make([]byte, 1), 500) // seek (lastReadEnd=0)
	seekCost := clock.TotalIO() - before
	if seekCost < 8*time.Millisecond {
		t.Errorf("seek cost = %v, want >= 8ms", seekCost)
	}
}

func TestDeviceKindsAndProfiles(t *testing.T) {
	if HDD.String() != "HDD" || SSD.String() != "SSD" || NullDevice.String() != "null" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
	hdd, ssd := ProfileFor(HDD), ProfileFor(SSD)
	if hdd.SeekLatency <= ssd.SeekLatency {
		t.Error("HDD seeks should cost more than SSD")
	}
	if hdd.ReadBandwidth >= ssd.ReadBandwidth {
		t.Error("SSD bandwidth should exceed HDD")
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{ReadOps: 1, WriteOps: 2, ReadBytes: 3, WriteBytes: 4, Seeks: 5, CacheHits: 6, RemoveErrors: 7}
	b := Stats{ReadOps: 10, WriteOps: 20, ReadBytes: 30, WriteBytes: 40, Seeks: 50, CacheHits: 60, RemoveErrors: 70}
	sum := a.Add(b)
	if sum != (Stats{11, 22, 33, 44, 55, 66, 77}) {
		t.Errorf("Add = %+v", sum)
	}
	if diff := sum.Sub(a); diff != b {
		t.Errorf("Sub = %+v", diff)
	}
}

func TestListAndExists(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	dev.Create("b")
	dev.Create("a")
	names := dev.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("List = %v", names)
	}
	if !dev.Exists("a") || dev.Exists("zzz") {
		t.Error("Exists mismatch")
	}
}

// TestReadBackProperty: whatever is written is read back identically, for
// arbitrary offsets and payloads.
func TestReadBackProperty(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("p")
	check := func(data []byte, off uint16) bool {
		if _, err := f.WriteAt(data, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(data))
		n, err := f.ReadAt(got, int64(off))
		return err == nil && n == len(data) && bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStreamReaderWriter(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("s")
	w := NewWriter(f)
	var want []byte
	for i := 0; i < 10000; i++ {
		b := byte(i * 7)
		w.Write([]byte{b, b + 1})
		want = append(want, b, b+1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	r := NewReader(f)
	if err := r.ReadFull(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("stream round trip mismatch")
	}
	if err := r.ReadFull(make([]byte, 1)); err != io.EOF {
		t.Errorf("read past end = %v, want io.EOF", err)
	}
}

func TestStreamRangeReader(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("s")
	f.WriteAt([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	r := NewRangeReader(f, 2, 6)
	if r.Remaining() != 4 {
		t.Errorf("Remaining = %d, want 4", r.Remaining())
	}
	got := make([]byte, 4)
	if err := r.ReadFull(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{2, 3, 4, 5}) {
		t.Errorf("range read = %v", got)
	}
	if err := r.ReadFull(got[:1]); err != io.EOF {
		t.Errorf("past range = %v, want EOF", err)
	}
}

func TestStreamUnexpectedEOF(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("s")
	f.WriteAt([]byte{1, 2, 3}, 0)
	r := NewReader(f)
	err := r.ReadFull(make([]byte, 5))
	if err != io.ErrUnexpectedEOF {
		t.Errorf("short read = %v, want ErrUnexpectedEOF", err)
	}
}

func TestWriterBlockedOps(t *testing.T) {
	// A writer flushing 1MB through 256KB blocks should issue 4-5 ops,
	// not thousands.
	dev := NewDevice(SSD, Options{})
	f, _ := dev.Create("s")
	w := NewWriter(f)
	one := make([]byte, 100)
	for i := 0; i < 10000; i++ { // 1MB total
		w.Write(one)
	}
	w.Close()
	if ops := dev.Stats().WriteOps; ops > 8 {
		t.Errorf("WriteOps = %d, want <= 8 (block-sized transfers)", ops)
	}
}

func TestWriteAllReadAllFile(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	data := []byte("round trip")
	if err := WriteAll(dev, "x", data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllFile(dev, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
	if err := WriteAll(dev, "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAllFile(dev, "empty")
	if err != nil || len(got) != 0 {
		t.Errorf("empty file read = %v, %v", got, err)
	}
}

func TestNewWriterAppends(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("a")
	f.WriteAt([]byte{1, 2}, 0)
	w := NewWriter(f)
	if w.Offset() != 2 {
		t.Errorf("Offset = %d, want 2", w.Offset())
	}
	w.Write([]byte{3})
	w.Close()
	got, _ := ReadAllFile(dev, "a")
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("got %v", got)
	}
}

func TestAppend(t *testing.T) {
	dev := NewDevice(NullDevice, Options{})
	f, _ := dev.Create("a")
	off1, err := f.Append([]byte{1, 2})
	if err != nil || off1 != 0 {
		t.Fatalf("Append = %d, %v", off1, err)
	}
	off2, err := f.Append([]byte{3})
	if err != nil || off2 != 2 {
		t.Fatalf("Append = %d, %v", off2, err)
	}
}

func TestFileStats(t *testing.T) {
	dev := NewDevice(HDD, Options{})
	a, _ := dev.Create("a")
	b, _ := dev.Create("b")
	a.WriteAt(make([]byte, 100), 0)
	a.ReadAt(make([]byte, 40), 0)
	b.WriteAt(make([]byte, 20), 0)
	b.ReadAt(make([]byte, 5), 10) // seek (lastReadEnd 0)

	fs := dev.FileStats()
	if fs["a"].WriteBytes != 100 || fs["a"].ReadBytes != 40 || fs["a"].ReadOps != 1 {
		t.Errorf("file a stats: %+v", fs["a"])
	}
	if fs["b"].WriteBytes != 20 || fs["b"].ReadBytes != 5 || fs["b"].Seeks != 1 {
		t.Errorf("file b stats: %+v", fs["b"])
	}

	// Per-file stats sum to the device totals.
	var sum Stats
	for _, s := range fs {
		sum = sum.Add(s)
	}
	if sum != dev.Stats() {
		t.Errorf("per-file sum %+v != device %+v", sum, dev.Stats())
	}

	// Attribution survives Remove — engines delete message files at run
	// end, after the accounting they produced already happened.
	if err := dev.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if got := dev.FileStats()["b"].WriteBytes; got != 20 {
		t.Errorf("removed file stats lost: %d", got)
	}

	dev.ResetStats()
	if len(dev.FileStats()) != 0 {
		t.Errorf("ResetStats kept per-file stats: %+v", dev.FileStats())
	}
}

func TestFileStatsCacheHits(t *testing.T) {
	dev := NewDevice(HDD, Options{PageCacheBytes: 1 << 20})
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, 4096), 0)
	f.ReadAt(make([]byte, 4096), 0) // miss, fills cache
	f.ReadAt(make([]byte, 4096), 0) // hit
	fs := dev.FileStats()["a"]
	if fs.CacheHits == 0 {
		t.Errorf("no cache hits attributed: %+v", fs)
	}
	if fs.CacheHits != dev.Stats().CacheHits {
		t.Errorf("per-file hits %d != device %d", fs.CacheHits, dev.Stats().CacheHits)
	}
}
