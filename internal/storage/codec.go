package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Adjacency block codecs (DOS v2, docs/FORMAT.md §"Version 2"). An edges
// file is cut into fixed-entry-count blocks and each block is encoded
// independently, so a block can be fetched and decoded without touching
// its neighbors — the unit of Sio prefetch and of selective block
// scheduling. Two codecs exist: raw little-endian u32 (byte-compatible
// with a v1 block's content) and delta+varint, which exploits the v2
// guarantee that destinations within one vertex's adjacency ascend.

// Codec encodes and decodes one adjacency block of destination IDs.
// Implementations must be stateless and safe for concurrent use.
type Codec interface {
	// Name is the codec's stable CLI/config name.
	Name() string
	// ID is the codec's stable on-disk identifier.
	ID() byte
	// EncodeBlock appends the encoding of entries to dst and returns the
	// extended slice.
	EncodeBlock(dst []byte, entries []uint32) []byte
	// DecodeBlock appends the block's decoded entries to dst and returns
	// the extended slice. Corrupt input yields a *CodecError (matching
	// ErrCorruptBlock via errors.Is), never a panic; the number of
	// decoded entries is bounded by len(src).
	DecodeBlock(dst []uint32, src []byte) ([]uint32, error)
}

// Codec IDs as stored in the v2 meta file.
const (
	CodecIDRaw    = byte(0)
	CodecIDVarint = byte(1)
)

// CodecRaw stores each entry as a little-endian u32 — the fallback for
// graphs whose destination distribution defeats delta+varint.
var CodecRaw Codec = rawCodec{}

// CodecVarint stores zigzag(entry - previous entry) as a varint, with the
// previous entry starting at 0 for each block. Within one vertex's
// adjacency the v2 format guarantees ascending destinations, so deltas are
// small and non-negative; the signed zigzag absorbs the backward jump at
// each adjacency-list boundary.
var CodecVarint Codec = varintCodec{}

// ErrCorruptBlock is the sentinel matched (via errors.Is) by every decode
// failure on malformed block bytes.
var ErrCorruptBlock = errors.New("storage: corrupt codec block")

// CodecError reports a block decode failure and where in the block it was
// detected.
type CodecError struct {
	Codec  string // codec name
	Offset int    // byte offset within the encoded block
	Msg    string
}

func (e *CodecError) Error() string {
	return fmt.Sprintf("storage: %s block corrupt at byte %d: %s", e.Codec, e.Offset, e.Msg)
}

func (e *CodecError) Is(target error) bool { return target == ErrCorruptBlock }

// maxVarintBytesU32 bounds the varint encoding of one entry: a zigzagged
// u32 delta spans at most 33 bits, i.e. five varint bytes.
const maxVarintBytesU32 = 5

// MaxEncodedLen returns the worst-case encoded size of a block of n
// entries under any registered codec — a sizing hint for encode buffers.
func MaxEncodedLen(n int) int { return n * maxVarintBytesU32 }

type rawCodec struct{}

func (rawCodec) Name() string { return "raw" }
func (rawCodec) ID() byte     { return CodecIDRaw }

func (rawCodec) EncodeBlock(dst []byte, entries []uint32) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 4*len(entries))...)
	for i, v := range entries {
		binary.LittleEndian.PutUint32(dst[off+4*i:], v)
	}
	return dst
}

func (rawCodec) DecodeBlock(dst []uint32, src []byte) ([]uint32, error) {
	if len(src)%4 != 0 {
		return dst, &CodecError{Codec: "raw", Offset: len(src) - len(src)%4,
			Msg: fmt.Sprintf("%d trailing bytes, entries are 4 bytes", len(src)%4)}
	}
	for i := 0; i+4 <= len(src); i += 4 {
		dst = append(dst, binary.LittleEndian.Uint32(src[i:]))
	}
	return dst, nil
}

type varintCodec struct{}

func (varintCodec) Name() string { return "varint" }
func (varintCodec) ID() byte     { return CodecIDVarint }

func (varintCodec) EncodeBlock(dst []byte, entries []uint32) []byte {
	var buf [maxVarintBytesU32]byte
	prev := int64(0)
	for _, v := range entries {
		d := int64(v) - prev
		zz := uint64(d<<1) ^ uint64(d>>63) // zigzag: signed delta to unsigned
		n := binary.PutUvarint(buf[:], zz)
		dst = append(dst, buf[:n]...)
		prev = int64(v)
	}
	return dst
}

func (varintCodec) DecodeBlock(dst []uint32, src []byte) ([]uint32, error) {
	prev := int64(0)
	for off := 0; off < len(src); {
		zz, n := binary.Uvarint(src[off:])
		if n <= 0 {
			msg := "truncated varint"
			if n < 0 {
				msg = "varint overflows 64 bits"
			}
			return dst, &CodecError{Codec: "varint", Offset: off, Msg: msg}
		}
		d := int64(zz>>1) ^ -int64(zz&1) // un-zigzag
		v := prev + d
		if v < 0 || v > int64(^uint32(0)) {
			return dst, &CodecError{Codec: "varint", Offset: off,
				Msg: fmt.Sprintf("delta %d from %d leaves the u32 range", d, prev)}
		}
		dst = append(dst, uint32(v))
		prev = v
		off += n
	}
	return dst, nil
}

// codecs registers every codec by ID order.
var codecs = []Codec{CodecRaw, CodecVarint}

// CodecByID resolves an on-disk codec identifier.
func CodecByID(id byte) (Codec, error) {
	for _, c := range codecs {
		if c.ID() == id {
			return c, nil
		}
	}
	return nil, fmt.Errorf("storage: unknown codec id %d", id)
}

// CodecByName resolves a CLI/config codec name.
func CodecByName(name string) (Codec, error) {
	for _, c := range codecs {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("storage: unknown codec %q (have %v)", name, CodecNames())
}

// CodecNames lists the registered codec names in ID order.
func CodecNames() []string {
	out := make([]string, len(codecs))
	for i, c := range codecs {
		out[i] = c.Name()
	}
	return out
}

// BlockLayout describes how a file of adjacency entries is addressed on a
// device: the codec, the fixed entries-per-block cut, the total entry
// count, and — for block-encoded files — the byte offset of every block.
// It is the single translation point between the engine's entry-offset
// arithmetic (which compression must not disturb) and byte extents on the
// device.
type BlockLayout struct {
	Codec        Codec
	BlockEntries int64
	NumEntries   int64
	// BlockOffs[b] is the byte offset of block b's first encoded byte;
	// the final element is the file size, so block b occupies
	// [BlockOffs[b], BlockOffs[b+1]). Nil means fixed 4-byte entries
	// addressed arithmetically (the v1 / CSR layout).
	BlockOffs []int64
}

// RawBlockLayout describes a v1-style file of fixed 4-byte entries; the
// block cut is the device block, matching selective scheduling's
// granularity.
func RawBlockLayout(numEntries int64) BlockLayout {
	return BlockLayout{
		Codec:        CodecRaw,
		BlockEntries: int64(DefaultBlockSize / 4),
		NumEntries:   numEntries,
	}
}

// FixedEntries reports whether entry offsets map to byte offsets
// arithmetically (offset*4), i.e. no per-block decode is needed.
func (l BlockLayout) FixedEntries() bool { return l.BlockOffs == nil }

// NumBlocks returns how many encoded blocks the file holds.
func (l BlockLayout) NumBlocks() int64 {
	if l.BlockEntries <= 0 {
		return 0
	}
	return (l.NumEntries + l.BlockEntries - 1) / l.BlockEntries
}

// BlockRange returns the byte extent [lo, hi) of block b.
func (l BlockLayout) BlockRange(b int64) (lo, hi int64) {
	if l.BlockOffs == nil {
		return b * l.BlockEntries * 4, min64((b+1)*l.BlockEntries, l.NumEntries) * 4
	}
	return l.BlockOffs[b], l.BlockOffs[b+1]
}

// EntriesIn returns how many entries block b holds (only the final block
// may be short).
func (l BlockLayout) EntriesIn(b int64) int64 {
	return min64((b+1)*l.BlockEntries, l.NumEntries) - b*l.BlockEntries
}

// TableBytes returns the resident size of the per-block offset table.
func (l BlockLayout) TableBytes() int64 { return int64(len(l.BlockOffs)) * 8 }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
