package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Adjacency block codecs (DOS v2, docs/FORMAT.md §"Version 2"). An edges
// file is cut into fixed-entry-count blocks and each block is encoded
// independently, so a block can be fetched and decoded without touching
// its neighbors — the unit of Sio prefetch and of selective block
// scheduling. Two codecs exist: raw little-endian u32 (byte-compatible
// with a v1 block's content) and delta+varint, which exploits the v2
// guarantee that destinations within one vertex's adjacency ascend.

// Codec encodes and decodes one adjacency block of destination IDs.
// Implementations must be stateless and safe for concurrent use.
type Codec interface {
	// Name is the codec's stable CLI/config name.
	Name() string
	// ID is the codec's stable on-disk identifier.
	ID() byte
	// EncodeBlock appends the encoding of entries to dst and returns the
	// extended slice.
	EncodeBlock(dst []byte, entries []uint32) []byte
	// DecodeBlock appends the block's decoded entries to dst and returns
	// the extended slice. Corrupt input yields a *CodecError (matching
	// ErrCorruptBlock via errors.Is), never a panic; the number of
	// decoded entries is bounded by len(src).
	DecodeBlock(dst []uint32, src []byte) ([]uint32, error)
}

// Codec IDs as stored in the v2 meta file.
const (
	CodecIDRaw         = byte(0)
	CodecIDVarint      = byte(1)
	CodecIDGroupVarint = byte(2)
)

// CodecRaw stores each entry as a little-endian u32 — the fallback for
// graphs whose destination distribution defeats delta+varint.
var CodecRaw Codec = rawCodec{}

// CodecVarint stores zigzag(entry - previous entry) as a varint, with the
// previous entry starting at 0 for each block. Within one vertex's
// adjacency the v2 format guarantees ascending destinations, so deltas are
// small and non-negative; the signed zigzag absorbs the backward jump at
// each adjacency-list boundary.
var CodecVarint Codec = varintCodec{}

// CodecGroupVarint is the stream-vbyte-style fast codec: the same zigzag
// deltas as CodecVarint, but framed in groups of four with one control
// byte holding four 2-bit byte-length codes. Decoding walks a 256-entry
// length table and reconstructs four entries per control byte with masked
// 32-bit loads — no per-entry branching — trading ~0.25 bytes/entry of
// control overhead for a multiple of CodecVarint's decode throughput.
// Deltas are taken modulo 2^32 (wrap-around), so every delta zigzags into
// 32 bits and at most four data bytes; the encoding stays bijective
// because the decoder adds the delta back modulo 2^32.
var CodecGroupVarint Codec = groupVarintCodec{}

// ErrCorruptBlock is the sentinel matched (via errors.Is) by every decode
// failure on malformed block bytes.
var ErrCorruptBlock = errors.New("storage: corrupt codec block")

// CodecError reports a block decode failure and where in the block it was
// detected.
type CodecError struct {
	Codec  string // codec name
	Offset int    // byte offset within the encoded block
	Msg    string
}

func (e *CodecError) Error() string {
	return fmt.Sprintf("storage: %s block corrupt at byte %d: %s", e.Codec, e.Offset, e.Msg)
}

func (e *CodecError) Is(target error) bool { return target == ErrCorruptBlock }

// maxVarintBytesU32 bounds the varint encoding of one entry: a zigzagged
// u32 delta spans at most 33 bits, i.e. five varint bytes.
const maxVarintBytesU32 = 5

// maxBlockHeaderBytes bounds the per-block framing any registered codec
// adds beyond its per-entry bytes: group-varint's uvarint entry-count
// header (at most 5 bytes) plus tail-group slack. Per entry, group-varint
// costs at most 4 data bytes + 1/4 control byte < maxVarintBytesU32.
const maxBlockHeaderBytes = 8

// MaxEncodedLen returns the worst-case encoded size of a block of n
// entries under any registered codec — a sizing hint for encode buffers.
func MaxEncodedLen(n int) int { return n*maxVarintBytesU32 + maxBlockHeaderBytes }

type rawCodec struct{}

func (rawCodec) Name() string { return "raw" }
func (rawCodec) ID() byte     { return CodecIDRaw }

func (rawCodec) EncodeBlock(dst []byte, entries []uint32) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 4*len(entries))...)
	for i, v := range entries {
		binary.LittleEndian.PutUint32(dst[off+4*i:], v)
	}
	return dst
}

func (rawCodec) DecodeBlock(dst []uint32, src []byte) ([]uint32, error) {
	if len(src)%4 != 0 {
		return dst, &CodecError{Codec: "raw", Offset: len(src) - len(src)%4,
			Msg: fmt.Sprintf("%d trailing bytes, entries are 4 bytes", len(src)%4)}
	}
	for i := 0; i+4 <= len(src); i += 4 {
		dst = append(dst, binary.LittleEndian.Uint32(src[i:]))
	}
	return dst, nil
}

type varintCodec struct{}

func (varintCodec) Name() string { return "varint" }
func (varintCodec) ID() byte     { return CodecIDVarint }

func (varintCodec) EncodeBlock(dst []byte, entries []uint32) []byte {
	var buf [maxVarintBytesU32]byte
	prev := int64(0)
	for _, v := range entries {
		d := int64(v) - prev
		zz := uint64(d<<1) ^ uint64(d>>63) // zigzag: signed delta to unsigned
		n := binary.PutUvarint(buf[:], zz)
		dst = append(dst, buf[:n]...)
		prev = int64(v)
	}
	return dst
}

func (varintCodec) DecodeBlock(dst []uint32, src []byte) ([]uint32, error) {
	prev := int64(0)
	for off := 0; off < len(src); {
		zz, n := binary.Uvarint(src[off:])
		if n <= 0 {
			msg := "truncated varint"
			if n < 0 {
				msg = "varint overflows 64 bits"
			}
			return dst, &CodecError{Codec: "varint", Offset: off, Msg: msg}
		}
		d := int64(zz>>1) ^ -int64(zz&1) // un-zigzag
		v := prev + d
		if v < 0 || v > int64(^uint32(0)) {
			return dst, &CodecError{Codec: "varint", Offset: off,
				Msg: fmt.Sprintf("delta %d from %d leaves the u32 range", d, prev)}
		}
		dst = append(dst, uint32(v))
		prev = v
		off += n
	}
	return dst, nil
}

type groupVarintCodec struct{}

func (groupVarintCodec) Name() string { return "groupvarint" }
func (groupVarintCodec) ID() byte     { return CodecIDGroupVarint }

// gvGroup is one row of the decode length table. The fast path reads a
// group's data bytes with two unaligned 64-bit loads — lanes 0 and 1
// always live in the first 8 bytes, lanes 2 and 3 in the 8 bytes
// starting at lane 2's offset — so a row holds the four lane masks
// (keeping the low 1–4 bytes), the in-word bit shifts for lanes 1 and
// 3, lane 2's byte offset, and the group's total data length.
type gvGroup struct {
	mask0, mask1, mask2, mask3 uint32
	sh1                        uint8 // lane 1's bit offset in the first load (8·len0)
	off2                       uint8 // lane 2's byte offset (len0+len1, 2–8)
	sh3                        uint8 // lane 3's bit offset in the second load (8·len2)
	total                      uint8
	_                          [12]uint8 // pad rows to 32 bytes: table indexing is a shift, not a multiply
}

var gvTable = func() (t [256]gvGroup) {
	mask := func(l uint8) uint32 {
		if l == 4 {
			return ^uint32(0)
		}
		return uint32(1)<<(8*uint(l)) - 1
	}
	for c := 0; c < 256; c++ {
		l0 := uint8(c)&3 + 1
		l1 := uint8(c>>2)&3 + 1
		l2 := uint8(c>>4)&3 + 1
		l3 := uint8(c>>6)&3 + 1
		t[c] = gvGroup{
			mask0: mask(l0), mask1: mask(l1), mask2: mask(l2), mask3: mask(l3),
			sh1:   8 * l0,
			off2:  l0 + l1,
			sh3:   8 * l2,
			total: l0 + l1 + l2 + l3,
		}
	}
	return
}()

// gvUnzig reverses the 32-bit zigzag, recovering a wrap-around delta.
func gvUnzig(zz uint32) uint32 {
	return uint32(int32(zz>>1) ^ -int32(zz&1))
}

// EncodeBlock writes a uvarint entry count, then the entries in groups of
// four: one control byte with four 2-bit length codes, followed by each
// entry's 32-bit-zigzagged wrap-around delta in 1–4 little-endian bytes.
// A short final group carries only its real lanes; the unused length
// codes stay zero.
func (groupVarintCodec) EncodeBlock(dst []byte, entries []uint32) []byte {
	var hdr [maxVarintBytesU32]byte
	dst = append(dst, hdr[:binary.PutUvarint(hdr[:], uint64(len(entries)))]...)
	prev := uint32(0)
	for i := 0; i < len(entries); i += 4 {
		ctrlAt := len(dst)
		dst = append(dst, 0)
		var ctrl byte
		end := i + 4
		if end > len(entries) {
			end = len(entries)
		}
		for j := i; j < end; j++ {
			v := entries[j]
			d := v - prev // wrap-around delta
			zz := (d << 1) ^ uint32(int32(d)>>31)
			n := 1
			for zz>>(8*uint(n)) != 0 {
				n++
			}
			for k := 0; k < n; k++ {
				dst = append(dst, byte(zz>>(8*uint(k))))
			}
			ctrl |= byte(n-1) << (2 * uint(j-i))
			prev = v
		}
		dst[ctrlAt] = ctrl
	}
	return dst
}

func (groupVarintCodec) DecodeBlock(dst []uint32, src []byte) ([]uint32, error) {
	cnt, hn := binary.Uvarint(src)
	if hn <= 0 {
		return dst, &CodecError{Codec: "groupvarint", Offset: 0, Msg: "truncated entry count"}
	}
	// Each entry needs at least one data byte, so a valid count never
	// exceeds the input size — this also keeps the decoded entry count
	// bounded by len(src).
	if cnt > uint64(len(src)) {
		return dst, &CodecError{Codec: "groupvarint", Offset: 0,
			Msg: fmt.Sprintf("entry count %d exceeds the %d encoded bytes", cnt, len(src))}
	}
	n := int(cnt)
	start := len(dst)
	if cap(dst)-start < n {
		nd := make([]uint32, start, start+n)
		copy(nd, dst)
		dst = nd
	}
	dst = dst[:start+n]
	out := dst[start : start+n : start+n]
	pos := hn
	prev := uint32(0)
	i := 0
	// Fast path: whole groups with 16 loadable data bytes. One table
	// lookup per control byte and two unaligned 64-bit loads from a
	// constant-length window cover all four lanes with no per-entry
	// branches; over-reads past a short group stay inside src and are
	// masked off.
	for i+4 <= n && pos+17 <= len(src) {
		g := &gvTable[src[pos]]
		data := src[pos+1 : pos+17]
		w0 := binary.LittleEndian.Uint64(data)
		w1 := binary.LittleEndian.Uint64(data[g.off2:])
		// The four lane extractions are independent (instruction-level
		// parallel); only the final prefix adds chain.
		d0 := gvUnzig(uint32(w0) & g.mask0)
		d1 := gvUnzig(uint32(w0>>(g.sh1&63)) & g.mask1)
		d2 := gvUnzig(uint32(w1) & g.mask2)
		d3 := gvUnzig(uint32(w1>>(g.sh3&63)) & g.mask3)
		v0 := prev + d0
		v1 := v0 + d1
		v2 := v1 + d2
		prev = v2 + d3
		out[i] = v0
		out[i+1] = v1
		out[i+2] = v2
		out[i+3] = prev
		pos += 1 + int(g.total)
		i += 4
	}
	// Tail path: the final (possibly short) group and any group too close
	// to the end of src for 4-byte loads, with full bounds checks.
	for i < n {
		if pos >= len(src) {
			return dst[:start], &CodecError{Codec: "groupvarint", Offset: pos, Msg: "truncated control byte"}
		}
		ctrl := src[pos]
		lanes := n - i
		if lanes > 4 {
			lanes = 4
		}
		if lanes < 4 && ctrl>>(2*uint(lanes)) != 0 {
			return dst[:start], &CodecError{Codec: "groupvarint", Offset: pos,
				Msg: fmt.Sprintf("final group has %d entries but its control byte codes unused lanes", lanes)}
		}
		pos++
		for j := 0; j < lanes; j++ {
			l := int(ctrl>>(2*uint(j)))&3 + 1
			if pos+l > len(src) {
				return dst[:start], &CodecError{Codec: "groupvarint", Offset: pos,
					Msg: fmt.Sprintf("lane needs %d bytes, %d remain", l, len(src)-pos)}
			}
			var zz uint32
			for k := 0; k < l; k++ {
				zz |= uint32(src[pos+k]) << (8 * uint(k))
			}
			pos += l
			prev += gvUnzig(zz)
			out[i+j] = prev
		}
		i += lanes
	}
	if pos != len(src) {
		return dst[:start], &CodecError{Codec: "groupvarint", Offset: pos,
			Msg: fmt.Sprintf("%d trailing bytes after %d entries", len(src)-pos, n)}
	}
	return dst, nil
}

// codecs registers every codec by ID order.
var codecs = []Codec{CodecRaw, CodecVarint, CodecGroupVarint}

// CodecByID resolves an on-disk codec identifier.
func CodecByID(id byte) (Codec, error) {
	for _, c := range codecs {
		if c.ID() == id {
			return c, nil
		}
	}
	return nil, fmt.Errorf("storage: unknown codec id %d", id)
}

// CodecByName resolves a CLI/config codec name.
func CodecByName(name string) (Codec, error) {
	for _, c := range codecs {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("storage: unknown codec %q (have %v)", name, CodecNames())
}

// CodecNames lists the registered codec names in ID order.
func CodecNames() []string {
	out := make([]string, len(codecs))
	for i, c := range codecs {
		out[i] = c.Name()
	}
	return out
}

// BlockLayout describes how a file of adjacency entries is addressed on a
// device: the codec, the fixed entries-per-block cut, the total entry
// count, and — for block-encoded files — the byte offset of every block.
// It is the single translation point between the engine's entry-offset
// arithmetic (which compression must not disturb) and byte extents on the
// device.
type BlockLayout struct {
	Codec        Codec
	BlockEntries int64
	NumEntries   int64
	// BlockOffs[b] is the byte offset of block b's first encoded byte;
	// the final element is the file size, so block b occupies
	// [BlockOffs[b], BlockOffs[b+1]). Nil means fixed 4-byte entries
	// addressed arithmetically (the v1 / CSR layout).
	BlockOffs []int64
}

// RawBlockLayout describes a v1-style file of fixed 4-byte entries; the
// block cut is the device block, matching selective scheduling's
// granularity.
func RawBlockLayout(numEntries int64) BlockLayout {
	return BlockLayout{
		Codec:        CodecRaw,
		BlockEntries: int64(DefaultBlockSize / 4),
		NumEntries:   numEntries,
	}
}

// FixedEntries reports whether entry offsets map to byte offsets
// arithmetically (offset*4), i.e. no per-block decode is needed.
func (l BlockLayout) FixedEntries() bool { return l.BlockOffs == nil }

// NumBlocks returns how many encoded blocks the file holds.
func (l BlockLayout) NumBlocks() int64 {
	if l.BlockEntries <= 0 {
		return 0
	}
	return (l.NumEntries + l.BlockEntries - 1) / l.BlockEntries
}

// BlockRange returns the byte extent [lo, hi) of block b.
func (l BlockLayout) BlockRange(b int64) (lo, hi int64) {
	if l.BlockOffs == nil {
		return b * l.BlockEntries * 4, min64((b+1)*l.BlockEntries, l.NumEntries) * 4
	}
	return l.BlockOffs[b], l.BlockOffs[b+1]
}

// EntriesIn returns how many entries block b holds (only the final block
// may be short).
func (l BlockLayout) EntriesIn(b int64) int64 {
	return min64((b+1)*l.BlockEntries, l.NumEntries) - b*l.BlockEntries
}

// TableBytes returns the resident size of the per-block offset table.
func (l BlockLayout) TableBytes() int64 { return int64(len(l.BlockOffs)) * 8 }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
