package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz targets for the group-varint block codec. The contract under
// test mirrors the DOS parser fuzzing: arbitrary block bytes may
// produce a typed *CodecError (matching ErrCorruptBlock), never a
// panic, and the decoded entry count stays bounded by the input size.
// Run the short CI budget with `make fuzz-short`; seed corpora live
// under testdata/fuzz (regenerate with GRAPHZ_WRITE_FUZZ_CORPUS=1
// go test -run TestWriteFuzzCorpus ./internal/storage/).

// gvSeedBlocks are small entry sets whose encodings seed both targets:
// ascending runs (the DOS adjacency shape), boundary values exercising
// every lane width, and the wrap-around delta at a backward jump.
var gvSeedBlocks = [][]uint32{
	{},
	{0},
	{1, 2, 3, 4, 5},
	{10, 20, 3, 7, 0xffffffff, 0, 300, 70000, 1 << 24},
	{5, 5, 5, 5, 4, 3, 2, 1},
}

func FuzzGroupVarintDecode(f *testing.F) {
	for _, entries := range gvSeedBlocks {
		f.Add(CodecGroupVarint.EncodeBlock(nil, entries))
	}
	f.Add([]byte{})
	f.Add([]byte{0x80})             // truncated count varint
	f.Add([]byte{0x04, 0xff})       // count 4, control byte claims 4-byte lanes, no data
	f.Add([]byte{0x02, 0x00, 0x01}) // short final group, one lane short
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := CodecGroupVarint.DecodeBlock(nil, data)
		if err != nil {
			var ce *CodecError
			if !errors.As(err, &ce) || !errors.Is(err, ErrCorruptBlock) {
				t.Fatalf("decode error is not a *CodecError matching ErrCorruptBlock: %v", err)
			}
			if len(dec) != 0 {
				t.Fatalf("failed decode returned %d entries alongside the error", len(dec))
			}
			return
		}
		if len(dec) > len(data) {
			t.Fatalf("decoded %d entries from %d bytes: count not bounded by input size", len(dec), len(data))
		}
		// Accepted input must round-trip: re-encoding the decoded
		// entries (canonical form) and decoding again yields the same
		// entries, even when the input used non-minimal lane widths.
		enc := CodecGroupVarint.EncodeBlock(nil, dec)
		if len(enc) > MaxEncodedLen(len(dec)) {
			t.Fatalf("encoding of %d entries is %d bytes, above MaxEncodedLen=%d", len(dec), len(enc), MaxEncodedLen(len(dec)))
		}
		dec2, err := CodecGroupVarint.DecodeBlock(nil, enc)
		if err != nil {
			t.Fatalf("re-decoding a canonical re-encoding failed: %v", err)
		}
		if len(dec) != len(dec2) {
			t.Fatalf("round trip changed the entry count: %d != %d", len(dec), len(dec2))
		}
		for i := range dec {
			if dec[i] != dec2[i] {
				t.Fatalf("round trip changed entry %d: %d != %d", i, dec[i], dec2[i])
			}
		}
	})
}

// FuzzGroupVarintRoundTrip drives the encoder with arbitrary entries
// (the fuzz bytes chunked as little-endian u32s): encode must stay
// within MaxEncodedLen and decode must reproduce the entries exactly,
// with no error ever.
func FuzzGroupVarintRoundTrip(f *testing.F) {
	for _, entries := range gvSeedBlocks {
		raw := make([]byte, 4*len(entries))
		for i, v := range entries {
			binary.LittleEndian.PutUint32(raw[4*i:], v)
		}
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		entries := make([]uint32, len(raw)/4)
		for i := range entries {
			entries[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		enc := CodecGroupVarint.EncodeBlock(nil, entries)
		if len(enc) > MaxEncodedLen(len(entries)) {
			t.Fatalf("encoding of %d entries is %d bytes, above MaxEncodedLen=%d", len(entries), len(enc), MaxEncodedLen(len(entries)))
		}
		dec, err := CodecGroupVarint.DecodeBlock(nil, enc)
		if err != nil {
			t.Fatalf("decoding our own encoding of %d entries failed: %v", len(entries), err)
		}
		if len(dec) != len(entries) {
			t.Fatalf("round trip changed the entry count: %d != %d", len(dec), len(entries))
		}
		for i := range entries {
			if dec[i] != entries[i] {
				t.Fatalf("round trip changed entry %d: %d != %d", i, dec[i], entries[i])
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpora under
// testdata/fuzz. It is a no-op unless GRAPHZ_WRITE_FUZZ_CORPUS is set.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("GRAPHZ_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set GRAPHZ_WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		b.WriteString("go test fuzz v1\n")
		fmt.Fprintf(&b, "[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, entries := range gvSeedBlocks {
		enc := CodecGroupVarint.EncodeBlock(nil, entries)
		write("FuzzGroupVarintDecode", fmt.Sprintf("gv-valid-%d", i), enc)
		raw := make([]byte, 4*len(entries))
		for j, v := range entries {
			binary.LittleEndian.PutUint32(raw[4*j:], v)
		}
		write("FuzzGroupVarintRoundTrip", fmt.Sprintf("gv-entries-%d", i), raw)
	}
	write("FuzzGroupVarintDecode", "gv-truncated-count", []byte{0x80})
	write("FuzzGroupVarintDecode", "gv-truncated-lanes", []byte{0x04, 0xff})
	write("FuzzGroupVarintDecode", "gv-short-final-group", []byte{0x02, 0x00, 0x01})
}
