package core

import (
	"encoding/binary"
	"runtime"
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
)

// Regression tests for the message-path fixes: the spill-buffer capacity
// clamp in bufferMessage and the bounded streaming parallel drain.

// TestBufferMessageRecordLargerThanBuffer: bufferMessage used to
// allocate the destination buffer with exactly MsgBufferBytes capacity
// and then re-slice it by one record, so a record larger than the
// configured buffer panicked with a slice-bounds violation. New clamps
// MsgBufferBytes high enough that the public API cannot reach that
// state, so this test drops the option below one record after
// construction — what a refactor that loses the distant clamp would do —
// and requires each oversized record to be spilled whole instead.
func TestBufferMessageRecordLargerThanBuffer(t *testing.T) {
	g := buildDOS(t, gen.RMAT(7, 400, gen.NaturalRMAT, 50))
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true, MsgBufferBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Stand in for Run's per-run setup, then shrink the buffer below
	// one 8-byte record.
	eng.msgBufs = make([][]byte, eng.NumPartitions())
	for p := 0; p < eng.NumPartitions(); p++ {
		if _, err := eng.dev.Create(eng.msgFile(p)); err != nil {
			t.Fatal(err)
		}
	}
	eng.opts.MsgBufferBytes = 4

	const n = 5
	for i := 0; i < n; i++ {
		eng.bufferMessage(graph.VertexID(i), uint32(100+i))
	}
	if eng.runErr != nil {
		t.Fatal(eng.runErr)
	}
	// Every record was bigger than the buffer, so each must have been
	// spilled immediately and in order.
	if eng.spilled != n {
		t.Errorf("spilled = %d, want %d", eng.spilled, n)
	}
	p := eng.partitionOf(0)
	sz, err := eng.dev.Size(eng.msgFile(p))
	if err != nil {
		t.Fatal(err)
	}
	rec := int64(4 + eng.msize)
	if sz != n*rec {
		t.Fatalf("message file holds %d bytes, want %d", sz, n*rec)
	}
	data := make([]byte, sz)
	f, err := eng.dev.Open(eng.msgFile(p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(data, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		dst := binary.LittleEndian.Uint32(data[int64(i)*rec:])
		m := binary.LittleEndian.Uint32(data[int64(i)*rec+4:])
		if dst != uint32(i) || m != uint32(100+i) {
			t.Errorf("record %d = (dst %d, m %d), want (%d, %d)", i, dst, m, i, 100+i)
		}
	}
}

// TestParallelDrainBoundedMemory: drainMessagesParallel used to read the
// entire spill file into one allocation. The spill file holds a full
// iteration's cross-partition traffic and is not covered by the memory
// budget, so a file several times the budget blew straight past it. The
// drain must now stream: draining a spill file much larger than the
// chunk ceiling may not allocate anywhere near the file size.
func TestParallelDrainBoundedMemory(t *testing.T) {
	g := buildDOS(t, gen.RMAT(7, 400, gen.NaturalRMAT, 51))
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true, ParallelDrain: true})
	if err != nil {
		t.Fatal(err)
	}
	nv := uint32(g.NumVertices)
	eng.verts = make([]minVal, nv)
	for i := range eng.verts {
		eng.verts[i] = minVal{label: uint32(i), pending: uint32(i)}
	}
	eng.msgBufs = make([][]byte, eng.NumPartitions())
	if _, err := eng.dev.Create(eng.msgFile(0)); err != nil {
		t.Fatal(err)
	}

	// Build a 16 MiB spill file of valid records and track the expected
	// per-vertex minimum.
	const fileBytes = 16 << 20
	rec := 4 + eng.msize
	want := make([]uint32, nv)
	for i := range want {
		want[i] = uint32(i)
	}
	f, err := eng.dev.Open(eng.msgFile(0))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]byte, 0, 256<<10)
	x := uint32(12345)
	for written := 0; written < fileBytes; {
		batch = batch[:0]
		for len(batch) < cap(batch) && written+len(batch) < fileBytes {
			x = x*1664525 + 1013904223
			dst := x % nv
			m := (x >> 8) % nv
			var r [8]byte
			binary.LittleEndian.PutUint32(r[:], dst)
			binary.LittleEndian.PutUint32(r[4:], m)
			batch = append(batch, r[:]...)
			if m < want[dst] {
				want[dst] = m
			}
		}
		if _, err := f.Append(batch); err != nil {
			t.Fatal(err)
		}
		written += len(batch)
	}
	total := int64(fileBytes / rec)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := eng.drainMessagesParallel(0, 0); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	alloc := after.TotalAlloc - before.TotalAlloc
	if alloc > fileBytes/2 {
		t.Errorf("drain allocated %d bytes for a %d-byte spill file; want bounded streaming", alloc, fileBytes)
	}
	if eng.applied != total {
		t.Errorf("applied = %d, want %d", eng.applied, total)
	}
	if sz, _ := eng.dev.Size(eng.msgFile(0)); sz != 0 {
		t.Errorf("spill file not truncated: %d bytes", sz)
	}
	for i, v := range eng.verts {
		if v.pending != want[i] {
			t.Fatalf("vertex %d pending = %d, want %d", i, v.pending, want[i])
		}
	}
}

// TestParallelDrainMemoryTail: the in-memory buffer tail (records that
// never spilled) must still be applied after the streamed file.
func TestParallelDrainMemoryTail(t *testing.T) {
	g := buildDOS(t, gen.RMAT(6, 200, gen.NaturalRMAT, 52))
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true, ParallelDrain: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.verts = make([]minVal, g.NumVertices)
	for i := range eng.verts {
		eng.verts[i] = minVal{label: uint32(i), pending: uint32(i)}
	}
	eng.msgBufs = make([][]byte, eng.NumPartitions())
	if _, err := eng.dev.Create(eng.msgFile(0)); err != nil {
		t.Fatal(err)
	}
	eng.bufferMessage(3, 0)
	eng.bufferMessage(5, 1)
	if err := eng.drainMessagesParallel(0, 0); err != nil {
		t.Fatal(err)
	}
	if eng.verts[3].pending != 0 || eng.verts[5].pending != 1 {
		t.Errorf("memory-tail messages not applied: verts[3]=%+v verts[5]=%+v", eng.verts[3], eng.verts[5])
	}
	if eng.applied != 2 {
		t.Errorf("applied = %d, want 2", eng.applied)
	}
	if len(eng.msgBufs[0]) != 0 {
		t.Errorf("message buffer not cleared: %d bytes", len(eng.msgBufs[0]))
	}
}
