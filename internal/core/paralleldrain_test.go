package core

import (
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
)

// TestParallelDrainSameFixpoint: min-label propagation is commutative, so
// the parallel drain must reach the identical fixpoint as the sequential
// one under the same multi-partition budget.
func TestParallelDrainSameFixpoint(t *testing.T) {
	edges := gen.RMAT(9, 3000, gen.NaturalRMAT, 97)
	g := buildDOS(t, edges)
	budget := budgetForPartitions(g, 8, 4, 64)

	_, seq := runMinLabel(t, g, Options{
		MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64,
	})
	_, par := runMinLabel(t, g, Options{
		MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64,
		ParallelDrain: true,
	})
	for i := range seq {
		if seq[i].label != par[i].label {
			t.Fatalf("vertex %d: sequential %d vs parallel %d", i, seq[i].label, par[i].label)
		}
	}
}

// TestParallelDrainCountsMessages: the applied counter must match the
// sequential drain's.
func TestParallelDrainCountsMessages(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 98)
	g := buildDOS(t, edges)
	budget := budgetForPartitions(g, 8, 3, 64)

	resSeq, _ := runMinLabel(t, g, Options{
		MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64,
	})
	resPar, _ := runMinLabel(t, g, Options{
		MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64,
		ParallelDrain: true,
	})
	// Min-propagation is confluent: apply order cannot change which
	// updates fire, so all counters agree.
	if resSeq.MessagesApplied != resPar.MessagesApplied ||
		resSeq.MessagesSent != resPar.MessagesSent ||
		resSeq.Iterations != resPar.Iterations {
		t.Errorf("sequential %+v vs parallel %+v", resSeq, resPar)
	}
}

// TestParallelDrainStaticMessages exercises the parallel drain under the
// static-message ablation, where every message goes through the store.
func TestParallelDrainStaticMessages(t *testing.T) {
	edges := gen.RMAT(8, 1200, gen.NaturalRMAT, 99)
	g := buildDOS(t, edges)
	budget := budgetForPartitions(g, 8, 3, 64)
	_, statSeq := runMinLabel(t, g, Options{
		MemoryBudget: budget, DynamicMessages: false, MsgBufferBytes: 64,
	})
	_, statPar := runMinLabel(t, g, Options{
		MemoryBudget: budget, DynamicMessages: false, MsgBufferBytes: 64,
		ParallelDrain: true,
	})
	for i := range statSeq {
		if statSeq[i].label != statPar[i].label {
			t.Fatalf("vertex %d differs under static messages", i)
		}
	}
}

// TestParallelDrainEmptyStore: partitions with no pending messages must
// drain cleanly.
func TestParallelDrainEmptyStore(t *testing.T) {
	g := buildDOS(t, []graph.Edge{{Src: 0, Dst: 1}})
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true, ParallelDrain: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
