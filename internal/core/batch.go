package core

import (
	"fmt"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

// Batch adjacency dispatch for the Worker stage. The seed Worker pulled
// adjacency entries one at a time through entrySource.next() — an
// interface call per edge — and re-appended them into a per-vertex
// slice. The batch path instead bulk-copies whatever the source has
// already buffered or decoded into one flat reusable buffer and hands
// each vertex's Update a sub-slice of it: one interface call per block
// (not per edge), bounds checks hoisted into a single copy loop, and
// zero per-vertex allocations in steady state. Entry order and error
// semantics are identical to the next() path, so the engine's ordering
// guarantee (and byte-identity across worker counts, codecs, and
// selective mode) is untouched.

// workerBatchEntries sizes the Worker's flat batch buffer: one Sio
// block's worth of entries, so a single refill captures everything a
// block decode produced.
const workerBatchEntries = storage.DefaultBlockSize / 4

// batchSource is the bulk side of an entrySource: read copies entries
// into dst in stream order and returns how many it delivered (at least
// one, at most len(dst)). Like next(), it may block on the prefetcher;
// a stream with no entries left reports the same error next() would.
type batchSource interface {
	read(dst []graph.VertexID) (int, error)
}

// disableBatchRead forces batchReader onto the per-entry next()
// fallback — the pre-batch dispatch sequence — so tests can prove the
// two paths are byte-identical. Only tests may flip it, and never in
// parallel with an engine run.
var disableBatchRead = false

// batchReader adapts an entrySource to per-vertex adjacency slices
// served from a flat buffer. Not safe for concurrent use; each Worker
// (the engine goroutine, or one speculating chunk) owns its own.
type batchReader struct {
	src  entrySource
	bulk batchSource // nil: fall back to src.next() per entry
	buf  []graph.VertexID
	pos  int // first unserved entry in buf
	fill int // first free slot in buf
}

// newBatchReader wraps src, reusing buf (which may be nil) as the batch
// buffer. src may be nil when the caller proves every degree is zero —
// adj(0) never touches it.
func newBatchReader(src entrySource, buf []graph.VertexID) batchReader {
	r := batchReader{src: src, buf: buf}
	if src != nil && !disableBatchRead {
		r.bulk, _ = src.(batchSource)
	}
	return r
}

// adj returns the vertex's next deg adjacency entries in stream order.
// The slice aliases the reader's buffer and is valid until the next
// adj call. The caller must not retain or mutate it — the same contract
// the seed Worker's reused append slice had.
func (r *batchReader) adj(deg uint32) ([]graph.VertexID, error) {
	n := int(deg)
	if n == 0 {
		return nil, nil
	}
	if r.fill-r.pos < n {
		if err := r.refill(n); err != nil {
			return nil, err
		}
	}
	out := r.buf[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return out, nil
}

// refill compacts the buffer and tops it up until n entries are
// buffered, growing the buffer when one vertex's degree exceeds it.
func (r *batchReader) refill(n int) error {
	r.fill = copy(r.buf, r.buf[r.pos:r.fill])
	r.pos = 0
	if n > len(r.buf) {
		want := 2 * len(r.buf)
		if want < n {
			want = n
		}
		if want < workerBatchEntries {
			want = workerBatchEntries
		}
		nb := make([]graph.VertexID, want)
		r.fill = copy(nb, r.buf[:r.fill])
		r.buf = nb
	}
	for r.fill < n {
		if r.bulk != nil {
			m, err := r.bulk.read(r.buf[r.fill:])
			if err != nil {
				return err
			}
			if m <= 0 {
				return fmt.Errorf("core: adjacency batch read returned %d entries", m)
			}
			r.fill += m
			continue
		}
		if r.src == nil {
			return fmt.Errorf("core: adjacency stream exhausted early")
		}
		v, err := r.src.next()
		if err != nil {
			return err
		}
		r.buf[r.fill] = v
		r.fill++
	}
	return nil
}
