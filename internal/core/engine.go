// Package core implements the GraphZ engine: an out-of-core,
// vertex-centric graph runtime with ordered dynamic messages (the paper's
// second contribution, Sections IV and V).
//
// The runtime divides the vertex space into partitions that fit the
// memory budget and, per iteration, per partition:
//
//  1. MsgManager loads the partition's vertex states and applies any
//     pending messages in their recorded order;
//  2. Sio streams the partition's adjacency blocks off the device on a
//     prefetch goroutine (a bounded queue, as in the paper);
//  3. the Dispatcher parses blocks into per-vertex adjacency lists;
//  4. the Worker calls update() on each vertex in ascending ID order and
//     intercepts every message it sends: a message whose destination is
//     in the resident partition is applied immediately (an ordered
//     dynamic message); all others are buffered per destination
//     partition and spilled to the device.
//
// Execution is asynchronous (updates see the freshest values) yet
// deterministic: updates run in ID order and messages are applied in the
// order they were sent, so every run of a given program and graph
// performs the identical sequence of operations.
package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"graphz/internal/checkpoint"
	"graphz/internal/extsort"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// Program is the user-supplied algorithm in GraphZ's programming model
// (paper Algorithms 1-2): a vertex data type V, a message data type M, an
// update function, and the apply_message function that gives messages
// their dynamic behavior.
type Program[V, M any] interface {
	// Init produces the initial state of a vertex given its out-degree
	// (called once, on the first iteration).
	Init(id graph.VertexID, deg uint32) V
	// Update is called on every vertex every iteration, in ascending
	// ID order, with the vertex's out-neighbors.
	Update(ctx *Context[M], id graph.VertexID, v *V, adj []graph.VertexID)
	// Apply folds a message into the destination vertex — the paper's
	// apply_message. It runs immediately for in-partition destinations
	// and at partition load for spilled ones.
	Apply(v *V, m M)
}

// Combiner is the optional sort-reduce hook behind Options.Combine:
// programs whose Apply is a commutative, associative fold (PageRank's
// sum, label propagation's min) implement Combine to collapse two
// messages for the same destination into one. The contract: applying
// Combine(a, b) must leave the destination in the state that applying a
// then b would — the engine combines in arbitrary groupings across spill
// buffers and merge passes. Programs with order-sensitive applies (the
// Section IV-E GraphChi emulation's append) must not implement it.
type Combiner[M any] interface {
	Combine(a, b M) M
}

// Context is the per-update view of the runtime handed to Program.Update.
type Context[M any] struct {
	iteration int
	send      func(dst graph.VertexID, m M)
	active    *bool
	as        *activeSet     // schedulability bits; nil unless selective scheduling
	cur       graph.VertexID // vertex being updated (for MarkActive's bit)
}

// Iteration returns the current iteration number (0-based).
func (c *Context[M]) Iteration() int { return c.iteration }

// Send sends an ordered dynamic message to dst.
func (c *Context[M]) Send(dst graph.VertexID, m M) { c.send(dst, m) }

// MarkActive signals that the vertex's value changed this iteration;
// the engine keeps iterating while any vertex is active or any message
// flows. Under selective scheduling it also keeps the vertex
// schedulable for the next iteration.
func (c *Context[M]) MarkActive() {
	*c.active = true
	if c.as != nil {
		c.as.set(c.cur)
	}
}

// Options configures an engine run.
type Options struct {
	// MemoryBudget bounds the engine-resident bytes: vertex index,
	// partition vertex states, message buffers, and pipeline blocks.
	MemoryBudget int64
	// Context, when non-nil, makes the run cancellable: the engine
	// checks it at every partition boundary (and before the run starts)
	// and aborts with an error matching both ErrCancelled and the
	// context's own cause. A cancelled run leaves its runtime files on
	// the device; call Cleanup to drop them.
	Context context.Context
	// SharedAdjacency serves the adjacency from a resident decoded-entry
	// cache shared with other engines (created via NewSharedGraph /
	// NewSharedAdjacency, typically by a serving process). It implies
	// CacheAdjacency semantics but is NOT charged against this engine's
	// MemoryBudget — the cache's owner accounts for SharedAdjacency.Bytes
	// once, instead of every job paying (and re-reading) it. New fails
	// with ErrInvalidOptions if the cache does not belong to the
	// layout's edges file.
	SharedAdjacency *SharedAdjacency
	// MaxIterations stops the run after this many iterations; 0 means
	// run until convergence (no activity and no messages).
	MaxIterations int
	// Clock receives compute charges; nil disables accounting.
	Clock *sim.Clock
	// DynamicMessages enables the paper's ordered dynamic messages
	// (apply in-partition messages immediately). When false — the
	// Figure 7 "without DM" ablation — every message is spilled to the
	// message store and applied on the destination partition's next
	// load, like a static-message system.
	DynamicMessages bool
	// MsgBufferBytes is the in-memory buffer per destination partition
	// before spilling; defaults to 64 KiB.
	MsgBufferBytes int
	// ParallelDrain applies a partition's pending messages with a
	// worker pool guarded by a mutex pool (the paper's Section V-C).
	// Requires Program.Apply to be commutative and associative; leave
	// off for order-sensitive applies.
	ParallelDrain bool
	// SortedSpill sorts spilled cross-partition messages by destination
	// vertex: every spilled buffer becomes a destination-sorted run in
	// the partition's message file, and the drain merge-sorts the runs
	// (plus the in-memory tail) instead of replaying arrival order, so
	// applies walk the vertex states sequentially instead of randomly.
	// The sort and merge are stable, preserving per-destination send
	// order — vertex states and message counters stay byte-identical to
	// the unsorted path for every program (DESIGN.md §11). Takes
	// precedence over ParallelDrain for the drain stage.
	SortedSpill bool
	// Combine additionally folds messages to the same destination into
	// one — in the spill buffer before it hits the device, at
	// intermediate merge passes, and during the drain merge — using the
	// program's Combiner hook; New fails if the program lacks it.
	// Implies SortedSpill. Fan-in hot spots then cost one apply per
	// sorted run instead of one per message; Result.MessagesCombined
	// keeps the books balanced (applied + combined equals the unsorted
	// path's applied).
	Combine bool
	// WorkerParallelism runs the Worker stage on this many goroutines.
	// Each resident partition's vertex range is split into contiguous
	// chunks that execute speculatively in parallel and commit in
	// ascending order, replaying their message logs through the
	// sequential inline-apply/buffer/spill routing; chunks invalidated
	// by an earlier chunk's in-partition message are re-executed at
	// commit time, so the observable operation sequence — and every
	// vertex state byte — is identical to the sequential engine
	// (DESIGN.md, "Deterministic parallel Worker stage"). Values <= 1
	// keep the sequential Worker. Unlike ParallelDrain, this mode does
	// NOT require Apply to commute.
	WorkerParallelism int
	// CacheAdjacency keeps adjacency bytes resident after their first
	// read when the whole graph fits the leftover budget, eliminating
	// per-iteration edge IO (the in-memory optimization the paper
	// defers to future work). Auto-disabled when it does not fit.
	CacheAdjacency bool
	// SelectiveScheduling enables GraphMP-style selective block
	// scheduling: the engine keeps one schedulability bit per vertex —
	// set when a message is applied to it or its update marks active,
	// cleared when its update runs — and skips reading adjacency blocks
	// (and whole partitions) with no schedulable vertex and no pending
	// message, falling back to full streaming when the active density
	// reaches SelectiveDensity. Requires a frontier-safe program: Update
	// must be a no-op (no state change, no sends, no MarkActive) for a
	// vertex that received no message since its last update. Programs
	// that mark every vertex active every round run unchanged (nothing
	// is ever skipped). Final vertex states are byte-identical to a
	// full-streaming run for such programs; iteration counts and
	// update/message counters may differ, since a skipped vertex's
	// propagation can shift by an iteration. See DESIGN.md §9.
	SelectiveScheduling bool
	// SelectiveDensity is the active-vertex density (set bits /
	// partition vertices) at or above which a partition streams fully
	// instead of scheduling blocks; 0 means the default 0.25.
	SelectiveDensity float64
	// SemiExternal selects the semi-external-memory fast path (sem.go;
	// DESIGN.md §13): pin the full vertex-state array resident and apply
	// every message inline at dispatch time — no message buffers, no
	// spill files, no drain stage — while adjacency still streams
	// through Sio. SemAuto (the zero value) engages it whenever
	// SemBudgetBytes fits MemoryBudget and DynamicMessages is on; SemOn
	// forces it (New fails typed when it cannot); SemOff keeps the
	// partitioned path unconditionally.
	SemiExternal SemMode
	// ConvergeOnInactivity stops the run as soon as an iteration ends
	// with no vertex marked active, even if messages were sent. Use
	// for programs that re-send unchanged state every round (like the
	// Section IV-E GraphChi emulation) and whose updates are
	// deterministic in (value, in-edges), so an inactive round can
	// only be followed by inactive rounds.
	ConvergeOnInactivity bool
	// Name prefixes the engine's runtime files on the device; defaults
	// to "graphz".
	Name string
	// Checkpoint enables iteration-boundary checkpoint/restore: with a
	// non-empty Dir the engine atomically persists vertex states,
	// pending messages, and counters to the host filesystem after
	// configured iterations, and Resume (or Run with Checkpoint.Resume)
	// continues a crashed run from the last complete checkpoint —
	// byte-identical to an uninterrupted run (docs/DURABILITY.md).
	Checkpoint CheckpointOptions
	// Obs receives the engine's runtime metrics: message-routing
	// counters, per-stage timings, and one IterStats row per iteration.
	// Nil disables collection entirely — the no-op fast path.
	Obs *obs.Registry
	// Trace receives one JSONL span per (iteration, partition, stage)
	// with stage ∈ {sio, dispatch, worker, drain}. Nil disables tracing.
	Trace *obs.Tracer
}

// DefaultOptions returns the standard configuration (dynamic messages on).
func DefaultOptions(budget int64) Options {
	return Options{MemoryBudget: budget, DynamicMessages: true}
}

// ErrMemoryBudget reports that a resident structure cannot fit the memory
// budget — the failure mode that stops index-heavy systems on the xlarge
// graph in the paper's Figure 5.
var ErrMemoryBudget = errors.New("core: memory budget exceeded")

// ErrInvalidOptions reports a configuration New rejects outright — a
// non-positive budget, Options.Combine on a program without a Combiner,
// a shared adjacency that belongs to a different graph. It marks errors
// a caller caused (a serving API maps it to HTTP 400), as opposed to
// runtime failures. Match with errors.Is.
var ErrInvalidOptions = errors.New("core: invalid options")

// ErrCancelled reports a run aborted because Options.Context was
// cancelled. The returned error also matches the context's own error
// (context.Canceled or context.DeadlineExceeded) via errors.Is.
var ErrCancelled = errors.New("core: run cancelled")

// pipelineOverheadBytes approximates the fixed buffers of the
// Sio/Dispatcher pipeline (prefetch blocks and staging).
const pipelineOverheadBytes = (sioQueueDepth + 2) * storage.DefaultBlockSize

// sioQueueDepth is the bounded-queue capacity between Sio and the Worker.
const sioQueueDepth = 4

// maxPartitions caps partitioning; a budget demanding more partitions
// than this is treated as infeasible.
const maxPartitions = 65536

// Result summarizes a finished run. It stays comparable (no slices): the
// per-iteration breakdown lives in the attached obs.Registry.
type Result struct {
	Iterations int
	Partitions int
	// SemiExternal reports the run took the semi-external-memory fast
	// path (sem.go): states pinned resident, every message applied
	// inline — MessagesBuffered and MessagesSpilled are structurally 0.
	SemiExternal     bool
	MessagesSent     int64
	MessagesApplied  int64
	MessagesInline   int64 // applied immediately as ordered dynamic messages
	MessagesBuffered int64 // queued for a non-resident destination
	MessagesSpilled  int64 // messages that crossed the partition boundary to disk
	SpillErrors      int64 // spill failures observed (first one aborts the run)
	UpdatesRun       int64
	// MessagesCombined counts messages the Combine hook folded into
	// another (Options.Combine): on the sorted-spill path,
	// applied + combined equals the unsorted path's applied for runs
	// that drain every message (any converged run). A run stopped by
	// MaxIterations folds its final iteration's never-drained spills
	// too, so there applied + combined may exceed the unsorted applied
	// by the folds among those leftover messages.
	// DrainMergePasses counts the intermediate merge passes sorted
	// drains needed when a partition accumulated more runs than the
	// merge fan-in; SpillBytesSaved is the device bytes never written
	// because records combined before a spill or merge-pass write. All
	// zero unless Options.SortedSpill (or Combine) is set.
	MessagesCombined int64
	DrainMergePasses int64
	SpillBytesSaved  int64
	// BlocksScanned/BlocksSkipped count adjacency blocks the selective
	// scheduler read versus skipped; both zero unless
	// Options.SelectiveScheduling is set.
	BlocksScanned int64
	BlocksSkipped int64
	// Checkpoints counts the snapshots written this run;
	// CheckpointBytes and CheckpointTime are their total size and
	// wall-clock cost. All zero unless Options.Checkpoint is enabled.
	Checkpoints     int64
	CheckpointBytes int64
	CheckpointTime  time.Duration
	// CodecBytesRaw/CodecBytesEncoded compare decoded adjacency bytes
	// produced against encoded bytes read off the device, and DecodeTime
	// is the wall clock spent decoding. All zero on fixed-entry layouts
	// (DOS v1, CSR) and, like Stages, populated only when Options.Obs or
	// Options.Trace is set.
	CodecBytesRaw     int64
	CodecBytesEncoded int64
	DecodeTime        time.Duration
	// Stages is wall-clock time per pipeline stage, summed over the
	// run; populated only when Options.Obs or Options.Trace is set.
	Stages obs.StageTimes
}

// Engine runs one Program over one Layout. Create with New, run with Run,
// read results with Values or ValuesByOldID.
type Engine[V, M any] struct {
	layout Layout
	prog   Program[V, M]
	vcodec graph.Codec[V]
	mcodec graph.Codec[M]
	opts   Options

	dev        *storage.Device
	adj        storage.BlockLayout // how the edges file maps entries to bytes
	partStarts []graph.VertexID    // partition p covers [partStarts[p], partStarts[p+1])
	vsize      int
	msize      int
	sem        bool // semi-external mode: states pinned, every apply inline

	// per-run state
	verts     []V
	adjCache  [][]byte // resident adjacency per partition, when cacheOn
	cacheOn   bool
	msgBufs   [][]byte
	active    bool
	sent      int64
	applied   int64
	inline    int64
	bufferedN int64
	spilled   int64
	updates   int64
	finished  bool
	runErr    error // first deferred error from message spilling
	spillErrs int64 // all spill failures, including ones after runErr

	// sort-reduce state (Options.SortedSpill / Options.Combine)
	combineFn   func(a, b M) M // program's Combine; nil unless Options.Combine
	msgRuns     [][]int64      // per partition: byte length of each sorted run in its message file
	combined    int64
	mergePasses int64
	spillSaved  int64

	// Worker batch-dispatch scratch, reused across partitions by the
	// engine-goroutine Workers (sequential, selective, re-execute);
	// speculating chunks carry their own.
	batchBuf []graph.VertexID

	// selective scheduling state (Options.SelectiveScheduling)
	sel           *activeSet // per-vertex schedulability bits; nil when off
	selDegs       []uint32   // planner scratch: current partition's degrees
	blocksScanned int64
	blocksSkipped int64

	// durability state (Options.Checkpoint)
	ckStore    *checkpoint.Store
	layoutHash uint64
	ckCount    int64
	ckBytes    int64
	ckNS       int64

	// adjacency-codec accounting (block-encoded layouts only)
	codecRawBytes int64
	codecEncBytes int64
	codecDecodeNS int64

	eo          engineObs
	stageTotals obs.StageTimes
}

// New validates the configuration and plans the partitioning. It returns
// ErrMemoryBudget if the vertex index or a single partition cannot fit.
func New[V, M any](layout Layout, prog Program[V, M], vcodec graph.Codec[V], mcodec graph.Codec[M], opts Options) (*Engine[V, M], error) {
	if opts.Name == "" {
		opts.Name = "graphz"
	}
	if opts.MsgBufferBytes <= 0 {
		opts.MsgBufferBytes = 64 * 1024
	}
	// A buffer must hold at least a few records.
	if minBuf := 4 * (4 + mcodec.Size()); opts.MsgBufferBytes < minBuf {
		opts.MsgBufferBytes = minBuf
	}
	if opts.MemoryBudget <= 0 {
		return nil, fmt.Errorf("%w: memory budget must be positive, got %d", ErrInvalidOptions, opts.MemoryBudget)
	}
	if opts.Combine {
		opts.SortedSpill = true
	}
	e := &Engine[V, M]{
		layout: layout,
		prog:   prog,
		vcodec: vcodec,
		mcodec: mcodec,
		opts:   opts,
		dev:    layout.Device(),
		adj:    layout.Adj(),
		vsize:  vcodec.Size(),
		msize:  mcodec.Size(),
		eo:     newEngineObs(opts.Obs, opts.Trace),
	}
	if opts.Combine {
		c, ok := any(prog).(Combiner[M])
		if !ok {
			return nil, fmt.Errorf("%w: Options.Combine requires the program to implement Combine(M, M) M; %T does not", ErrInvalidOptions, prog)
		}
		e.combineFn = c.Combine
	}
	if opts.SharedAdjacency != nil && !opts.SharedAdjacency.matches(layout) {
		return nil, fmt.Errorf("%w: shared adjacency belongs to %q (%d entries), layout reads %q (%d entries)",
			ErrInvalidOptions, opts.SharedAdjacency.file, opts.SharedAdjacency.entries,
			layout.EdgesFile(), layout.NumEdges())
	}
	sem, err := e.planSem()
	if err != nil {
		return nil, err
	}
	if sem {
		// One partition covering the whole vertex space: partitionOf is
		// the identity and every send takes makeSend's inline branch.
		e.sem = true
		e.partStarts = []graph.VertexID{0, graph.VertexID(layout.NumVertices())}
	} else if err := e.plan(); err != nil {
		return nil, err
	}
	e.maybeEnableAdjCache()
	if opts.SelectiveScheduling {
		// One bit per vertex (1/32 of a minimal uint32 state). It is
		// deliberately NOT budget-accounted: charging it would shift
		// partition boundaries between selective and full-streaming
		// runs of the same budget, breaking their comparability.
		e.sel = newActiveSet(layout.NumVertices())
	}
	return e, nil
}

// selDensity resolves the configured full-streaming fallback threshold.
func (e *Engine[V, M]) selDensity() float64 {
	if e.opts.SelectiveDensity > 0 {
		return e.opts.SelectiveDensity
	}
	return defaultSelectiveDensity
}

// plan chooses the partition count: the smallest P such that the index,
// pipeline buffers, P message buffers, and one partition's vertex states
// fit the budget, then splits the vertex space evenly.
func (e *Engine[V, M]) plan() error {
	n := int64(e.layout.NumVertices())
	vertexBytes := n * int64(e.vsize)
	// A block-encoded layout holds its per-block offset table resident
	// (TableBytes is zero for fixed-entry layouts).
	fixed := e.layout.IndexBytes() + e.adj.TableBytes() + pipelineOverheadBytes
	p := int64(1)
	for {
		avail := e.opts.MemoryBudget - fixed - p*int64(e.opts.MsgBufferBytes)
		if avail <= 0 {
			return fmt.Errorf("%w: index (%d B) and buffers exceed budget %d B",
				ErrMemoryBudget, e.layout.IndexBytes(), e.opts.MemoryBudget)
		}
		need := (vertexBytes + avail - 1) / avail
		if need < 1 {
			need = 1
		}
		if need <= p {
			break
		}
		p = need
		if p > maxPartitions {
			return fmt.Errorf("%w: %d vertices of %d B need more than %d partitions",
				ErrMemoryBudget, n, e.vsize, maxPartitions)
		}
	}
	// Even split of the vertex space into p ranges.
	e.partStarts = make([]graph.VertexID, p+1)
	for i := int64(0); i <= p; i++ {
		e.partStarts[i] = graph.VertexID(i * n / p)
	}
	return nil
}

// NumPartitions returns the planned partition count.
func (e *Engine[V, M]) NumPartitions() int { return len(e.partStarts) - 1 }

// partitionOf returns the partition index containing vertex v. Partitions
// are an even split, so this is arithmetic, not search.
func (e *Engine[V, M]) partitionOf(v graph.VertexID) int {
	p := len(e.partStarts) - 1
	n := e.layout.NumVertices()
	i := int(int64(v) * int64(p) / int64(n))
	// The even split rounds; fix up by at most one step either way.
	for i+1 < len(e.partStarts)-1 && v >= e.partStarts[i+1] {
		i++
	}
	for i > 0 && v < e.partStarts[i] {
		i--
	}
	return i
}

func (e *Engine[V, M]) vstateFile() string { return e.opts.Name + ".vstate" }

func (e *Engine[V, M]) msgFile(p int) string {
	return fmt.Sprintf("%s.msgs.%d", e.opts.Name, p)
}

func (e *Engine[V, M]) charge(n int64, cost time.Duration) {
	if e.opts.Clock != nil {
		e.opts.Clock.ComputeUnits(n, cost)
	}
}

func (e *Engine[V, M]) chargeBytes(n int64) {
	if e.opts.Clock != nil {
		e.opts.Clock.ComputeBytes(n)
	}
}

// Run executes the program to convergence or MaxIterations and leaves the
// final vertex states in the engine's vertex-state file. With
// Options.Checkpoint.Resume set and a complete checkpoint present in
// Options.Checkpoint.Dir, Run continues from it instead of starting over
// (see Resume).
func (e *Engine[V, M]) Run() (Result, error) {
	if e.finished {
		return Result{}, fmt.Errorf("core: engine already ran; create a new one")
	}
	if err := e.ctxErr(); err != nil {
		return Result{}, err
	}
	if err := e.layout.LoadIndex(); err != nil {
		return Result{}, err
	}
	if err := e.initCheckpointing(); err != nil {
		return Result{}, err
	}
	if e.opts.Checkpoint.Resume && e.ckStore != nil && e.ckStore.HasCheckpoint() {
		return e.resume()
	}
	nParts := e.NumPartitions()
	if !e.sem {
		// SEM applies every message inline at dispatch: no buffers, no
		// message files, nothing to drain. e.msgBufs stays nil, which
		// also keeps the checkpoint writer's per-partition message
		// sections and the memory sampler's buffer walk empty.
		e.msgBufs = make([][]byte, nParts)
		if e.opts.SortedSpill {
			e.msgRuns = make([][]int64, nParts)
		}
	}
	if _, err := e.dev.Create(e.vstateFile()); err != nil {
		return Result{}, err
	}
	if !e.sem {
		for p := 0; p < nParts; p++ {
			if _, err := e.dev.Create(e.msgFile(p)); err != nil {
				return Result{}, err
			}
		}
	}
	if e.sem {
		e.eo.semRuns.Inc()
	}
	return e.loop(0)
}

// loop runs iterations starting at startIter (iterations already
// completed by a restored checkpoint) until convergence or
// MaxIterations, checkpointing at the configured boundaries.
func (e *Engine[V, M]) loop(startIter int) (Result, error) {
	nParts := e.NumPartitions()
	iters := startIter
	for {
		if e.opts.Clock != nil {
			e.opts.Clock.BeginPhase(fmt.Sprintf("iter%d", iters))
		}
		e.active = false
		sentBefore := e.sent
		var pendingBefore int64
		if !e.sem { // SEM never has pending messages: every apply is inline
			for p := 0; p < nParts; p++ {
				pendingBefore += int64(len(e.msgBufs[p]))
				sz, err := e.dev.Size(e.msgFile(p))
				if err != nil {
					return Result{}, err
				}
				pendingBefore += sz
			}
		}
		var row *obs.IterStats
		var devBefore storage.Stats
		inlineBefore, bufferedBefore, spilledBefore := e.inline, e.bufferedN, e.spilled
		if e.eo.on {
			row = &obs.IterStats{Iteration: iters}
			devBefore = e.dev.Stats()
		}
		for p := 0; p < nParts; p++ {
			// Cancellation is honored at partition boundaries: the
			// per-run state is never left mid-partition, so a cancelled
			// job's budget can be released immediately and its files
			// removed without draining anything.
			if err := e.ctxErr(); err != nil {
				return Result{}, err
			}
			err := e.runPartition(p, iters, row)
			// A deferred spill failure predates whatever the partition
			// tripped over afterwards (often a knock-on effect of the
			// same full device), so it takes precedence.
			if e.runErr != nil {
				return Result{}, e.wrapRunErr()
			}
			if err != nil {
				return Result{}, err
			}
		}
		if e.sel != nil {
			e.eo.activeVerts.Set(e.sel.count)
			if row != nil {
				row.ActiveVertices = e.sel.count
			}
		}
		if row != nil {
			row.MessagesInline = e.inline - inlineBefore
			row.MessagesBuffered = e.bufferedN - bufferedBefore
			row.MessagesSpilled = e.spilled - spilledBefore
			devNow := e.dev.Stats()
			row.DeviceReadBytes = devNow.ReadBytes - devBefore.ReadBytes
			row.DeviceWriteBytes = devNow.WriteBytes - devBefore.WriteBytes
			row.DeviceSeeks = devNow.Seeks - devBefore.Seeks
			e.eo.reg.RecordIter(*row)
			e.sampleMemory(iters)
		}
		iters++
		// Done on MaxIterations, or converged: nothing changed, nothing
		// was sent this iteration, and nothing was pending from before —
		// or, under ConvergeOnInactivity, as soon as nothing changed.
		done := e.opts.MaxIterations > 0 && iters >= e.opts.MaxIterations
		if !done && !e.active && (e.opts.ConvergeOnInactivity ||
			(e.sent == sentBefore && pendingBefore == 0)) {
			done = true
		}
		// Checkpoint at the iteration boundary: on cadence (absolute
		// iteration count, so a resumed run checkpoints at the same
		// boundaries as an uninterrupted one) and always at the end, so
		// a converged run leaves a final restorable snapshot.
		if e.ckStore != nil && (done || iters%e.opts.Checkpoint.every() == 0) {
			if err := e.writeCheckpoint(iters, done); err != nil {
				return Result{}, err
			}
		}
		if done {
			break
		}
	}
	if e.sem {
		// The states stayed pinned all run; one flush makes them durable
		// for Values (and mirrors the partitioned path's final state of
		// the vstate file exactly).
		if err := e.storeVertices(e.partStarts[0], e.partStarts[len(e.partStarts)-1]); err != nil {
			return Result{}, err
		}
	}
	e.finished = true
	e.removeMsgFiles(nParts)
	if e.eo.on {
		foldDeviceStats(e.eo.reg, e.dev.Stats())
	}
	return e.result(iters, nParts), nil
}

// removeMsgFiles deletes the message stores after a finished run; the
// vertex states remain for Values. Removal failures don't fail the run —
// the results are already durable — but they are counted.
func (e *Engine[V, M]) removeMsgFiles(nParts int) {
	if e.sem {
		return // no message or scratch files were ever created
	}
	for p := 0; p < nParts; p++ {
		if err := e.dev.Remove(e.msgFile(p)); err != nil {
			e.eo.removeErrs.Inc()
		}
		e.removeScratchFiles(p)
	}
}

// removeScratchFiles deletes partition p's sorted-drain merge scratch
// files, if any pass ever created them (Size probes the catalog so a
// never-created scratch costs no removal attempt).
func (e *Engine[V, M]) removeScratchFiles(p int) {
	if !e.opts.SortedSpill {
		return
	}
	for side := 0; side < 2; side++ {
		name := e.mergeScratchFile(p, side)
		if _, err := e.dev.Size(name); err != nil {
			continue
		}
		if err := e.dev.Remove(name); err != nil {
			e.eo.removeErrs.Inc()
		}
	}
}

// result assembles the Result from the engine's cumulative counters.
func (e *Engine[V, M]) result(iters, nParts int) Result {
	return Result{
		Iterations:        iters,
		Partitions:        nParts,
		SemiExternal:      e.sem,
		MessagesSent:      e.sent,
		MessagesApplied:   e.applied,
		MessagesInline:    e.inline,
		MessagesBuffered:  e.bufferedN,
		MessagesSpilled:   e.spilled,
		SpillErrors:       e.spillErrs,
		UpdatesRun:        e.updates,
		MessagesCombined:  e.combined,
		DrainMergePasses:  e.mergePasses,
		SpillBytesSaved:   e.spillSaved,
		BlocksScanned:     e.blocksScanned,
		BlocksSkipped:     e.blocksSkipped,
		Checkpoints:       e.ckCount,
		CheckpointBytes:   e.ckBytes,
		CheckpointTime:    time.Duration(e.ckNS),
		CodecBytesRaw:     e.codecRawBytes,
		CodecBytesEncoded: e.codecEncBytes,
		DecodeTime:        time.Duration(e.codecDecodeNS),
		Stages:            e.stageTotals,
	}
}

// ctxErr reports cancellation of the run's context: nil while the run
// may continue, an error matching both ErrCancelled and the context's
// cause once Options.Context is done.
func (e *Engine[V, M]) ctxErr() error {
	ctx := e.opts.Context
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
	default:
		return nil
	}
}

// wrapRunErr returns the first spill error, annotated with how many later
// spill failures were dropped behind it. The first failure is runErr
// itself, so spillErrs-1 were dropped. The %w keeps errors.Is working on
// the original cause.
func (e *Engine[V, M]) wrapRunErr() error {
	dropped := e.spillErrs - 1
	if dropped <= 0 {
		return e.runErr
	}
	noun := "errors"
	if dropped == 1 {
		noun = "error"
	}
	return fmt.Errorf("%w (%d later spill %s dropped)", e.runErr, dropped, noun)
}

// runPartition processes one partition for one iteration. row, when
// non-nil, accumulates this iteration's observability stats.
func (e *Engine[V, M]) runPartition(p, iter int, row *obs.IterStats) error {
	lo, hi := e.partStarts[p], e.partStarts[p+1]
	count := int(hi - lo)
	if count == 0 {
		return nil
	}
	start := e.layout.OffsetOf(lo)
	end := endOffset(e.layout, hi)

	// Selective scheduling: a partition with no schedulable vertex and
	// no pending message cannot change any state this iteration — skip
	// it wholly, without loading states or touching the adjacency.
	// Iteration 0 is the Init pass and never skips (the bitmap starts
	// all-ones anyway).
	if e.sel != nil && iter > 0 {
		pend, err := e.pendingBytes(p)
		if err != nil {
			return err
		}
		if pend == 0 && !e.sel.anyInRange(lo, hi) {
			e.accountSelective(selSchedule{blocksTotal: blocksIn(start, end, e.adj.BlockEntries)}, row)
			// A whole-partition skip schedules no runs: every block of the
			// partition's entry range is a skip cell.
			e.heatSelective(selSchedule{}, start, end)
			e.eo.partsSkipped.Inc()
			return nil
		}
	}

	// --- MsgManager: load vertex states and apply pending messages ---
	if err := e.loadVertices(lo, hi, iter); err != nil {
		return err
	}
	// SEM has no drain stage at all — every message was already applied
	// inline when it was sent. Skipping recordDrain too keeps the stage
	// tables honest: drain time stays 0 and no drain-path counter moves.
	if !e.sem {
		var drainStart time.Time
		if e.eo.on {
			drainStart = time.Now()
		}
		if e.opts.SortedSpill {
			if err := e.drainMessagesSorted(p, lo); err != nil {
				return err
			}
		} else if e.opts.ParallelDrain {
			if err := e.drainMessagesParallel(p, lo); err != nil {
				return err
			}
		} else if err := e.drainMessages(p, lo); err != nil {
			return err
		}
		if e.eo.on {
			e.recordDrain(iter, p, drainStart, row)
		}
	}

	// Plan the block schedule after the drain, so bits set by pending
	// messages are visible; a dense partition streams fully.
	var sched selSchedule
	selSparse := false
	if e.sel != nil {
		sched = e.planPartition(lo, hi, start)
		e.accountSelective(sched, row)
		e.heatSelective(sched, start, end)
		selSparse = !sched.streamAll
	}

	// --- Sio: adjacency entries, prefetched off the device or served
	// from the resident cache ---
	var ps *pipeStats
	var partStart time.Time
	if e.eo.on {
		ps = e.newPipeStats()
		partStart = time.Now()
	}
	parallel := !selSparse && e.workerCount() > 1 && count > 1
	var stream entrySource
	if parallel {
		// The cache first-fill is a Sio-attributed read; do it before
		// the worker clock starts, mirroring the sequential path where
		// the fill happens during stream creation.
		if e.cacheOn {
			if err := e.ensureAdjCached(p, start, end, ps); err != nil {
				return err
			}
		}
	} else if selSparse {
		s, err := e.selectiveEntrySource(p, start, end, sched, ps)
		if err != nil {
			return err
		}
		if s != nil {
			stream = s
			defer stream.stop()
		}
	} else {
		s, err := e.partitionEntrySource(p, start, end, ps)
		if err != nil {
			return err
		}
		stream = s
		defer stream.stop()
	}

	// --- Worker: update vertices in order, intercepting messages ---
	var workerStart time.Time
	if e.eo.on {
		workerStart = time.Now()
	}
	var active bool
	var err error
	if parallel {
		active, err = e.runWorkerParallel(p, iter, lo, hi, start, end, ps, row)
	} else if selSparse {
		active, err = e.runWorkerSelective(stream, iter, lo, hi, sched)
	} else {
		active, err = e.runWorkerSequential(stream, iter, lo, hi)
	}
	if err != nil {
		return err
	}
	if e.eo.on {
		e.recordWorker(iter, p, workerStart, row)
		e.recordPipe(ps, iter, p, partStart, row)
	}
	if active {
		e.active = true
	}

	// Flush this partition's vertex states back to the device — except
	// under SEM, where they stay pinned until one final flush at loop end.
	if e.sem {
		return nil
	}
	return e.storeVertices(lo, hi)
}

// workerCount resolves the configured Worker-stage parallelism.
func (e *Engine[V, M]) workerCount() int {
	if e.opts.WorkerParallelism < 1 {
		return 1
	}
	return e.opts.WorkerParallelism
}

// makeSend builds the sequential Worker's send closure for a resident
// partition [lo, hi): inline apply for in-partition destinations under
// dynamic messages, buffer/spill otherwise. An inline apply keeps the
// destination schedulable under selective scheduling.
func (e *Engine[V, M]) makeSend(lo, hi graph.VertexID) func(dst graph.VertexID, m M) {
	return func(dst graph.VertexID, m M) {
		e.sent++
		e.charge(1, sim.CostMessageSend)
		if e.opts.DynamicMessages && dst >= lo && dst < hi {
			// Ordered dynamic message: the destination is
			// resident — apply immediately.
			e.prog.Apply(&e.verts[dst-lo], m)
			e.applied++
			e.inline++
			e.eo.inline.Inc()
			e.charge(1, sim.CostMessageApply)
			if e.sel != nil {
				e.sel.set(dst)
			}
			return
		}
		e.bufferedN++
		e.eo.buffered.Inc()
		e.bufferMessage(dst, m)
	}
}

// runWorkerSequential is the seed Worker stage: update vertices in
// ascending ID order, intercepting every message the program sends.
func (e *Engine[V, M]) runWorkerSequential(stream entrySource, iter int, lo, hi graph.VertexID) (bool, error) {
	active := false
	ctx := &Context[M]{
		iteration: iter,
		active:    &active,
		as:        e.sel,
	}
	ctx.send = e.makeSend(lo, hi)

	br := newBatchReader(stream, e.batchBuf)
	for v := lo; v < hi; v++ {
		deg := e.layout.DegreeOf(v)
		if e.sel != nil {
			// Iteration 0 is the Init pass: programs conventionally
			// broadcast there and ignore pending messages, so its bits
			// survive into iteration 1 (where the update acts on them).
			if iter > 0 {
				e.sel.clear(v)
			}
			ctx.cur = v
		}
		adj, err := br.adj(deg)
		if err != nil {
			return false, fmt.Errorf("core: adjacency stream for vertex %d: %w", v, err)
		}
		e.prog.Update(ctx, v, &e.verts[v-lo], adj)
		e.updates++
		e.charge(1, sim.CostVertexUpdate)
		e.charge(int64(deg), sim.CostEdgeScan)
	}
	e.batchBuf = br.buf
	return active, nil
}

// runWorkerSelective is the sparse Worker: it updates only the
// schedule's runs, consuming their entry spans from the skip-aware
// stream. Vertices outside every run have a clear bit and no pending
// message, so a frontier-safe program's update would be a no-op there.
// Sparse tails are IO-bound, so this path is always sequential.
func (e *Engine[V, M]) runWorkerSelective(stream entrySource, iter int, lo, hi graph.VertexID, sched selSchedule) (bool, error) {
	active := false
	ctx := &Context[M]{iteration: iter, active: &active, as: e.sel}
	ctx.send = e.makeSend(lo, hi)

	br := newBatchReader(stream, e.batchBuf)
	for _, run := range sched.runs {
		for v := run.lo; v < run.hi; v++ {
			deg := e.selDegs[v-lo]
			if iter > 0 { // Init-pass bits survive; see runWorkerSequential
				e.sel.clear(v)
			}
			ctx.cur = v
			adj, err := br.adj(deg)
			if err != nil {
				return false, fmt.Errorf("core: adjacency stream for vertex %d: %w", v, err)
			}
			e.prog.Update(ctx, v, &e.verts[v-lo], adj)
			e.updates++
			e.charge(1, sim.CostVertexUpdate)
			e.charge(int64(deg), sim.CostEdgeScan)
		}
	}
	e.batchBuf = br.buf
	return active, nil
}

// pendingBytes returns the bytes of messages pending for partition p:
// the spilled file plus the in-memory buffer tail. Size is a catalog
// lookup, not a charged device read.
func (e *Engine[V, M]) pendingBytes(p int) (int64, error) {
	if e.sem {
		return 0, nil // inline apply leaves nothing pending, ever
	}
	sz, err := e.dev.Size(e.msgFile(p))
	if err != nil {
		return 0, err
	}
	return sz + int64(len(e.msgBufs[p])), nil
}

// planPartition computes partition [lo, hi)'s block schedule from the
// bitmap, filling the reusable degree scratch (the selective Worker
// reads degrees from it instead of re-walking the index).
func (e *Engine[V, M]) planPartition(lo, hi graph.VertexID, start int64) selSchedule {
	count := int(hi - lo)
	if cap(e.selDegs) < count {
		e.selDegs = make([]uint32, count)
	}
	e.selDegs = e.selDegs[:count]
	for v := lo; v < hi; v++ {
		e.selDegs[v-lo] = e.layout.DegreeOf(v)
	}
	e.charge(int64(count), sim.CostActiveScan)
	return planSelective(e.sel, lo, hi, start, e.selDegs, e.adj.BlockEntries, e.selDensity())
}

// accountSelective folds one partition's schedule into the run's
// block-scheduling totals, counters, and iteration row.
func (e *Engine[V, M]) accountSelective(sched selSchedule, row *obs.IterStats) {
	skipped := sched.blocksTotal - sched.blocksRead
	e.blocksScanned += sched.blocksRead
	e.blocksSkipped += skipped
	e.eo.blocksScanned.Add(sched.blocksRead)
	e.eo.blocksSkipped.Add(skipped)
	if row != nil {
		row.BlocksScanned += sched.blocksRead
		row.BlocksSkipped += skipped
	}
}

// selectiveEntrySource builds the sparse Worker's adjacency source for
// partition p: cached sub-slices per run when the cache is on, or one
// skip-aware prefetcher over the runs' entry ranges. Returns nil (no
// source needed) when the schedule reads no entries at all.
func (e *Engine[V, M]) selectiveEntrySource(p int, start, end int64, sched selSchedule, ps *pipeStats) (entrySource, error) {
	if len(sched.runs) == 0 {
		return nil, nil
	}
	if e.cacheOn {
		if err := e.ensureAdjCached(p, start, end, ps); err != nil {
			return nil, err
		}
		data := e.adjCache[p]
		segs := make([][]byte, 0, len(sched.runs))
		for _, r := range sched.runs {
			if r.endOff > r.startOff {
				segs = append(segs, data[(r.startOff-start)*4:(r.endOff-start)*4])
			}
		}
		return &memRunsStream{segs: segs}, nil
	}
	ranges := make([]entryRange, 0, len(sched.runs))
	for _, r := range sched.runs {
		if r.endOff > r.startOff {
			ranges = append(ranges, entryRange{start: r.startOff, end: r.endOff})
		}
	}
	if len(ranges) == 0 {
		return nil, nil
	}
	return newAdjStream(e.dev, e.adj, e.layout.EdgesFile(), ranges, ps)
}

// loadVertices brings [lo, hi) into e.verts: decoded from the vertex
// state file, or initialized via Program.Init on the first iteration.
func (e *Engine[V, M]) loadVertices(lo, hi graph.VertexID, iter int) error {
	if e.sem && iter > 0 {
		// SEM: e.verts already holds every state — populated by the Init
		// pass (iteration 0) or by resume, and pinned for the whole run.
		return nil
	}
	count := int(hi - lo)
	if cap(e.verts) < count {
		e.verts = make([]V, count)
	}
	e.verts = e.verts[:count]
	if iter == 0 {
		for i := 0; i < count; i++ {
			v := lo + graph.VertexID(i)
			e.verts[i] = e.prog.Init(v, e.layout.DegreeOf(v))
		}
		e.charge(int64(count), sim.CostVertexUpdate)
		return nil
	}
	f, err := e.dev.Open(e.vstateFile())
	if err != nil {
		return err
	}
	buf := make([]byte, count*e.vsize)
	r := storage.NewRangeReader(f, int64(lo)*int64(e.vsize), int64(hi)*int64(e.vsize))
	if err := r.ReadFull(buf); err != nil {
		return fmt.Errorf("core: loading vertex states [%d,%d): %w", lo, hi, err)
	}
	for i := 0; i < count; i++ {
		e.verts[i] = e.vcodec.Decode(buf[i*e.vsize:])
	}
	e.chargeBytes(int64(len(buf)))
	return nil
}

// storeVertices writes [lo, hi) back to the vertex state file.
func (e *Engine[V, M]) storeVertices(lo, hi graph.VertexID) error {
	count := int(hi - lo)
	buf := make([]byte, count*e.vsize)
	for i := 0; i < count; i++ {
		e.vcodec.Encode(buf[i*e.vsize:], e.verts[i])
	}
	f, err := e.dev.Open(e.vstateFile())
	if err != nil {
		return err
	}
	w := storage.NewWriterAt(f, int64(lo)*int64(e.vsize))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	e.chargeBytes(int64(len(buf)))
	return w.Flush()
}

// bufferMessage queues a message for a non-resident destination (or any
// destination when dynamic messages are disabled), spilling the
// destination partition's buffer when full.
func (e *Engine[V, M]) bufferMessage(dst graph.VertexID, m M) {
	p := e.partitionOf(dst)
	rec := 4 + e.msize
	buf := e.msgBufs[p]
	if buf == nil {
		// The capacity must hold at least one whole record: the
		// re-slice below would otherwise panic with slice bounds out
		// of range whenever a record outgrows the configured buffer.
		// New clamps MsgBufferBytes, but this hot path must not
		// depend on a distant invariant surviving refactors.
		c := e.opts.MsgBufferBytes
		if c < rec {
			c = rec
		}
		buf = make([]byte, 0, c)
	}
	n := len(buf)
	buf = buf[:n+rec]
	binary.LittleEndian.PutUint32(buf[n:], uint32(dst))
	e.mcodec.Encode(buf[n+4:], m)
	e.chargeBytes(int64(rec))
	if len(buf)+rec > cap(buf) {
		e.spillBuffer(p, buf)
		buf = buf[:0]
	}
	e.msgBufs[p] = buf
}

// spillBuffer appends a full message buffer to the partition's message
// file. Spill failures (e.g. device out of space) are recorded in runErr
// and fail the run at the next partition boundary — Send has no error
// return, matching the paper's API.
//
// Under SortedSpill the buffer is stably sorted by destination first, so
// each spill lands as one destination-sorted run (recorded in msgRuns);
// with Combine, same-destination records are folded before they ever hit
// the device. MessagesSpilled stays a logical (pre-combine) count, so it
// remains comparable across spill modes.
func (e *Engine[V, M]) spillBuffer(p int, buf []byte) {
	rec := 4 + e.msize
	logical := int64(len(buf) / rec)
	out := buf
	if e.opts.SortedSpill {
		extsort.SortRecords(buf, rec, msgRecordKey)
		e.charge(logical, sim.CostRecordSort)
		if e.combineFn != nil {
			var folded int64
			out, folded = extsort.CombineSorted(buf, rec, msgRecordKey, e.combineRecord)
			if folded > 0 {
				e.noteCombined(folded)
				saved := folded * int64(rec)
				e.spillSaved += saved
				e.eo.sortedSaved.Add(saved)
			}
		}
	}
	f, err := e.dev.Open(e.msgFile(p))
	if err != nil {
		e.spillErrs++
		e.eo.spillErrs.Inc()
		if e.runErr == nil {
			e.runErr = err
		}
		return
	}
	if _, err := f.Append(out); err != nil {
		e.spillErrs++
		e.eo.spillErrs.Inc()
		if e.runErr == nil {
			e.runErr = fmt.Errorf("core: spilling messages for partition %d: %w", p, err)
		}
		return
	}
	if e.opts.SortedSpill {
		e.msgRuns[p] = append(e.msgRuns[p], int64(len(out)))
		e.eo.sortedRuns.Inc()
	}
	e.spilled += logical
	e.eo.spilled.Add(logical)
}

// drainMessages applies partition p's pending messages — first the
// spilled file, then the in-memory tail — in their original send order,
// then clears both.
func (e *Engine[V, M]) drainMessages(p int, lo graph.VertexID) error {
	rec := 4 + e.msize
	if len(e.msgBufs[p]) == 0 {
		// Nothing in memory; skip even opening the file when the spill
		// store is empty too (Size is an uncharged catalog lookup).
		if sz, err := e.dev.Size(e.msgFile(p)); err != nil {
			return err
		} else if sz == 0 {
			e.eo.drainSkipped.Inc()
			return nil
		}
	}
	f, err := e.dev.Open(e.msgFile(p))
	if err != nil {
		return err
	}
	if f.Size()%int64(rec) != 0 {
		return fmt.Errorf("core: message file %q torn (%d bytes, record %d)", e.msgFile(p), f.Size(), rec)
	}
	// Drain fan-in attribution: accumulate per vstate block locally and
	// fold into the heatmap once per drain, keeping the per-record cost
	// to one map increment.
	var heatAcc map[int64]int64
	if e.eo.heat != nil {
		heatAcc = make(map[int64]int64)
	}
	r := storage.NewReader(f)
	buf := make([]byte, rec)
	for {
		err := r.ReadFull(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("core: draining messages for partition %d: %w", p, err)
		}
		dst := e.applyRecord(buf, lo)
		if heatAcc != nil {
			heatAcc[e.vstateBlock(dst)]++
		}
	}
	if err := f.Truncate(0); err != nil {
		return err
	}
	mem := e.msgBufs[p]
	for off := 0; off+rec <= len(mem); off += rec {
		dst := e.applyRecord(mem[off:off+rec], lo)
		if heatAcc != nil {
			heatAcc[e.vstateBlock(dst)]++
		}
	}
	if mem != nil {
		e.msgBufs[p] = mem[:0]
	}
	if len(heatAcc) > 0 {
		e.flushDrainHeat(heatAcc)
	}
	return nil
}

func (e *Engine[V, M]) applyRecord(rec []byte, lo graph.VertexID) graph.VertexID {
	dst := graph.VertexID(binary.LittleEndian.Uint32(rec))
	m := e.mcodec.Decode(rec[4:])
	e.prog.Apply(&e.verts[dst-lo], m)
	e.applied++
	e.charge(1, sim.CostMessageApply)
	if e.sel != nil {
		// A delivered message makes the destination schedulable.
		e.sel.set(dst)
	}
	return dst
}

// Values reads the final vertex states (by layout ID) after Run.
func (e *Engine[V, M]) Values() ([]V, error) {
	if !e.finished {
		return nil, fmt.Errorf("core: Values before Run")
	}
	data, err := storage.ReadAllFile(e.dev, e.vstateFile())
	if err != nil {
		return nil, err
	}
	n := e.layout.NumVertices()
	if len(data) != n*e.vsize {
		return nil, fmt.Errorf("core: vertex state file has %d bytes, want %d", len(data), n*e.vsize)
	}
	out := make([]V, n)
	for i := range out {
		out[i] = e.vcodec.Decode(data[i*e.vsize:])
	}
	return out, nil
}

// ValuesByOldID returns the final vertex states keyed by original input
// IDs: a map for DOS layouts (whose ID space is relabeled and dense) or a
// direct slice copy for identity layouts.
func (e *Engine[V, M]) ValuesByOldID() (map[graph.VertexID]V, error) {
	vals, err := e.Values()
	if err != nil {
		return nil, err
	}
	n2o, err := e.layout.NewToOld()
	if err != nil {
		return nil, err
	}
	out := make(map[graph.VertexID]V, len(vals))
	for i, v := range vals {
		if n2o == nil {
			out[graph.VertexID(i)] = v
		} else {
			out[n2o[i]] = v
		}
	}
	return out, nil
}

// Cleanup removes the engine's runtime files from the device. Removal
// failures are counted (Stats.RemoveErrors, graphz_remove_errors_total)
// rather than returned: by the time Cleanup runs the results have been
// read, and a leftover file is an audit concern, not a correctness one.
func (e *Engine[V, M]) Cleanup() {
	if err := e.dev.Remove(e.vstateFile()); err != nil {
		e.eo.removeErrs.Inc()
	}
	if e.sem {
		return // the vertex-state file is SEM's only runtime file
	}
	for p := 0; p < e.NumPartitions(); p++ {
		if err := e.dev.Remove(e.msgFile(p)); err != nil {
			e.eo.removeErrs.Inc()
		}
		e.removeScratchFiles(p)
	}
}
