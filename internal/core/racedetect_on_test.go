//go:build race

package core

// raceEnabled gates timing-sensitive tests that are meaningless under
// the race detector's instrumentation overhead.
const raceEnabled = true
