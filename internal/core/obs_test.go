package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"graphz/internal/gen"
	"graphz/internal/obs"
)

type spanEvent struct {
	TS     int64  `json:"ts"`
	Engine string `json:"engine"`
	Stage  string `json:"stage"`
	Iter   int    `json:"iter"`
	Part   int    `json:"part"`
	DurNS  int64  `json:"dur_ns"`
}

func parseSpans(t *testing.T, buf *bytes.Buffer) []spanEvent {
	t.Helper()
	var out []spanEvent
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var e spanEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		out = append(out, e)
	}
	return out
}

// TestEngineObservability runs a multi-partition spilling workload with a
// registry and tracer attached and checks the full contract: a span for
// every (iteration, partition, stage), counters that agree with Result,
// and one IterStats row per iteration.
func TestEngineObservability(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 22)
	g := buildDOS(t, edges)
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf)
	res, _ := runMinLabel(t, g, Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 64),
		DynamicMessages: true,
		MsgBufferBytes:  64,
		Obs:             reg,
		Trace:           tr,
	})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 2 {
		t.Fatalf("partitions = %d, want >= 2", res.Partitions)
	}

	// Every (iteration, partition, stage) combination emitted a span.
	have := make(map[spanEvent]bool)
	for _, e := range parseSpans(t, &traceBuf) {
		if e.Engine != "graphz" {
			t.Fatalf("span engine = %q", e.Engine)
		}
		have[spanEvent{Engine: e.Engine, Stage: e.Stage, Iter: e.Iter, Part: e.Part}] = true
	}
	stages := []string{obs.StageSio, obs.StageDispatch, obs.StageWorker, obs.StageDrain}
	for iter := 0; iter < res.Iterations; iter++ {
		for p := 0; p < res.Partitions; p++ {
			for _, st := range stages {
				key := spanEvent{Engine: "graphz", Stage: st, Iter: iter, Part: p}
				if !have[key] {
					t.Errorf("missing span iter=%d part=%d stage=%s", iter, p, st)
				}
			}
		}
	}

	// Counters agree with the Result the engine returned.
	checks := map[string]int64{
		"graphz_messages_inline_total":   res.MessagesInline,
		"graphz_messages_buffered_total": res.MessagesBuffered,
		"graphz_messages_spilled_total":  res.MessagesSpilled,
		"graphz_drain_serial_total":      int64(res.Iterations * res.Partitions),
	}
	for name, want := range checks {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if res.MessagesInline+res.MessagesBuffered != res.MessagesSent {
		t.Errorf("inline (%d) + buffered (%d) != sent (%d)",
			res.MessagesInline, res.MessagesBuffered, res.MessagesSent)
	}
	if res.MessagesSpilled == 0 {
		t.Error("expected spills under a tight budget")
	}
	if reg.CounterValue("graphz_sio_blocks_total") == 0 {
		t.Error("no Sio blocks counted")
	}
	if res.Stages.Worker <= 0 || res.Stages.Drain <= 0 {
		t.Errorf("stage totals not populated: %+v", res.Stages)
	}

	// One IterStats row per iteration, summing to the run totals.
	rows := reg.Iters()
	if len(rows) != res.Iterations {
		t.Fatalf("iter rows = %d, want %d", len(rows), res.Iterations)
	}
	var inline, buffered, spilled int64
	for i, row := range rows {
		if row.Iteration != i {
			t.Errorf("row %d has Iteration %d", i, row.Iteration)
		}
		inline += row.MessagesInline
		buffered += row.MessagesBuffered
		spilled += row.MessagesSpilled
	}
	if inline != res.MessagesInline || buffered != res.MessagesBuffered || spilled != res.MessagesSpilled {
		t.Errorf("row sums (%d, %d, %d) != result (%d, %d, %d)",
			inline, buffered, spilled, res.MessagesInline, res.MessagesBuffered, res.MessagesSpilled)
	}

	// Device stats were folded into the registry as gauges.
	if reg.GaugeValue("device_read_bytes") == 0 {
		t.Error("device_read_bytes gauge not set")
	}
}

// TestEngineObservabilityParallelDrain checks the drain-path counter
// split and that tracing works without a registry attached.
func TestEngineObservabilityParallelDrain(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 23)
	g := buildDOS(t, edges)
	reg := obs.NewRegistry()
	res, _ := runMinLabel(t, g, Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 64),
		DynamicMessages: true,
		MsgBufferBytes:  64,
		ParallelDrain:   true,
		Obs:             reg,
	})
	if got := reg.CounterValue("graphz_drain_parallel_total"); got != int64(res.Iterations*res.Partitions) {
		t.Errorf("graphz_drain_parallel_total = %d, want %d", got, res.Iterations*res.Partitions)
	}
	if reg.CounterValue("graphz_drain_serial_total") != 0 {
		t.Error("serial drain counted on the parallel path")
	}

	// Tracer alone (no registry) still produces spans.
	g2 := buildDOS(t, edges)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	res2, _ := runMinLabel(t, g2, Options{
		MemoryBudget:    64 << 20,
		DynamicMessages: true,
		SemiExternal:    SemOff, // keep the drain stage: 4 spans per partition
		MaxIterations:   2,
		Trace:           tr,
	})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := int64(res2.Iterations * res2.Partitions * 4); tr.Spans() != want {
		t.Errorf("spans = %d, want %d", tr.Spans(), want)
	}
}

// TestEngineObservabilityAdjCacheHits checks resident-cache hit counting:
// the first iteration fills the cache, every later visit is a hit.
func TestEngineObservabilityAdjCacheHits(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 24)
	g := buildDOS(t, edges)
	reg := obs.NewRegistry()
	res, _ := runMinLabel(t, g, Options{
		MemoryBudget:    64 << 20,
		DynamicMessages: true,
		CacheAdjacency:  true,
		MaxIterations:   3,
		Obs:             reg,
	})
	want := int64((res.Iterations - 1) * res.Partitions)
	if got := reg.CounterValue("graphz_adjcache_hits_total"); got != want {
		t.Errorf("graphz_adjcache_hits_total = %d, want %d", got, want)
	}
}

// TestEngineResultComparableObsOff re-checks determinism with obs off:
// the zero-value Stages keeps Result comparable and identical.
func TestEngineResultComparableObsOff(t *testing.T) {
	edges := gen.RMAT(7, 800, gen.NaturalRMAT, 25)
	g := buildDOS(t, edges)
	res1, _ := runMinLabel(t, g, Options{MemoryBudget: 64 << 20, DynamicMessages: true})
	g2 := buildDOS(t, edges)
	res2, _ := runMinLabel(t, g2, Options{MemoryBudget: 64 << 20, DynamicMessages: true})
	if res1 != res2 {
		t.Errorf("results differ with obs off:\n%+v\n%+v", res1, res2)
	}
}
