package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// Tests for the batch adjacency dispatch path: the batchReader must do
// zero allocations per vertex in steady state (the point of the flat
// buffer), and flipping disableBatchRead must not change a single state
// byte — batching is a dispatch optimization, not a semantics change.

// batchDegrees is a mixed degree schedule: zero-degree vertices, degrees
// straddling refill boundaries, and one degree larger than the initial
// buffer so the grow path runs before the steady state being measured.
var batchDegrees = []uint32{1, 7, 0, 16, 3, 0, 40, 5, 2, 11}

// consumeAll drives br through the degree schedule until all n entries
// are served, checking stream order against the identity val(i) = 3*i.
func consumeAll(t *testing.T, br *batchReader, n int, check bool) {
	t.Helper()
	served := 0
	for i := 0; served < n; i++ {
		deg := batchDegrees[i%len(batchDegrees)]
		if rem := n - served; int(deg) > rem {
			deg = uint32(rem)
		}
		adj, err := br.adj(deg)
		if err != nil {
			t.Fatal(err)
		}
		if len(adj) != int(deg) {
			t.Fatalf("adj(%d) returned %d entries", deg, len(adj))
		}
		if check {
			for j, v := range adj {
				if want := graph.VertexID(3 * (served + j)); v != want {
					t.Fatalf("entry %d = %d, want %d", served+j, v, want)
				}
			}
		}
		served += int(deg)
	}
}

// TestBatchReaderAllocs pins the acceptance criterion directly: after
// the buffer has grown to cover the degree schedule, serving adjacency
// slices allocates nothing — on the bulk read path and on the next()
// fallback alike.
func TestBatchReaderAllocs(t *testing.T) {
	const entries = 4096
	data := make([]byte, entries*4)
	for i := 0; i < entries; i++ {
		binary.LittleEndian.PutUint32(data[i*4:], uint32(3*i))
	}
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"bulk", false},
		{"fallback", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			old := disableBatchRead
			disableBatchRead = tc.disable
			defer func() { disableBatchRead = old }()
			src := &memEntryStream{data: data}
			br := newBatchReader(src, nil)
			if got := br.bulk != nil; got == tc.disable {
				t.Fatalf("bulk path engaged = %v with disableBatchRead = %v", got, tc.disable)
			}
			// Warm-up pass: grows the buffer and checks entry order.
			consumeAll(t, &br, entries, true)
			run := func() {
				src.pos = 0
				br.pos, br.fill = 0, 0
				consumeAll(t, &br, entries, false)
			}
			if avg := testing.AllocsPerRun(20, run); avg != 0 {
				t.Errorf("steady-state batch dispatch allocates %.1f times per pass over %d vertices, want 0", avg, entries)
			}
		})
	}
}

// TestBatchReaderExhaustion: demanding more entries than the stream
// holds must surface the source's exhaustion error, and a nil source
// must serve only zero degrees.
func TestBatchReaderExhaustion(t *testing.T) {
	src := &memEntryStream{data: make([]byte, 8)}
	br := newBatchReader(src, nil)
	if _, err := br.adj(3); err == nil {
		t.Error("adj(3) over a 2-entry stream did not fail")
	}
	nilbr := newBatchReader(nil, nil)
	if adj, err := nilbr.adj(0); err != nil || adj != nil {
		t.Errorf("adj(0) on a nil source = (%v, %v), want (nil, nil)", adj, err)
	}
	if _, err := nilbr.adj(1); err == nil {
		t.Error("adj(1) on a nil source did not fail")
	}
}

// TestBatchDispatchByteIdentity is the batch-vs-pre-batch property test:
// the same run with batching disabled (the seed per-entry next() path)
// and enabled must produce identical Results and state bytes. The
// non-commutative mix program makes any dispatch-order perturbation
// change the fixpoint bytes, and the matrix spans the engine modes that
// dispatch adjacency — sequential, selective, and the parallel Worker —
// over both a fixed-entry v1 graph and a block-encoded v2 graph.
func TestBatchDispatchByteIdentity(t *testing.T) {
	runMix := func(g *dos.Graph, opts Options, disable bool) (Result, []byte) {
		old := disableBatchRead
		disableBatchRead = disable
		defer func() { disableBatchRead = old }()
		return runProg[mixVal, uint32](t, g, mixProg{rounds: 4}, mixCodec{}, graph.Uint32Codec{}, opts)
	}
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 83)
	graphs := []struct {
		name string
		g    *dos.Graph
	}{
		{"v1", buildDOS(t, edges)},
		{"v2-groupvarint", buildDOSCodec(t, edges, storage.CodecGroupVarint, 0)},
	}
	modes := []struct {
		name string
		mod  func(*Options)
	}{
		{"sequential", func(*Options) {}},
		{"selective", func(o *Options) { o.SelectiveScheduling = true }},
		{"workers=4", func(o *Options) { o.WorkerParallelism = 4 }},
	}
	for _, gr := range graphs {
		for _, mode := range modes {
			name := fmt.Sprintf("%s/%s", gr.name, mode.name)
			opts := Options{
				MemoryBudget:   budgetForPartitions(gr.g, 4, 3, 64),
				MsgBufferBytes: 64,
				MaxIterations:  4,
			}
			mode.mod(&opts)
			preRes, preBytes := runMix(gr.g, opts, true)
			batRes, batBytes := runMix(gr.g, opts, false)
			if preRes.Partitions < 2 {
				t.Errorf("%s: only %d partitions; the matrix needs cross-partition dispatch", name, preRes.Partitions)
			}
			if counterFields(preRes) != counterFields(batRes) {
				t.Errorf("%s: counters %v with batching, %v without", name, counterFields(batRes), counterFields(preRes))
			}
			if !bytes.Equal(preBytes, batBytes) {
				for i := 0; i < len(preBytes)/4; i++ {
					a, b := preBytes[i*4:(i+1)*4], batBytes[i*4:(i+1)*4]
					if !bytes.Equal(a, b) {
						t.Fatalf("%s: vertex %d state bytes %x with batching, %x without", name, i, b, a)
					}
				}
			}
		}
	}
}
