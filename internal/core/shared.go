package core

import (
	"fmt"
	"sync"
	"time"

	"graphz/internal/dos"
	"graphz/internal/storage"
)

// Resident multi-engine sharing: the split between a graph's immutable
// state and an engine run's private state.
//
// Everything a run needs from the graph — the bucket index, the v2
// per-block offset table, the adjacency bytes themselves — is immutable
// after dos.Load/Convert, so N concurrent engines can share one resident
// copy. Everything else (vertex states, the active bitmap, message
// buffers, spill files) is owned by exactly one run. SharedGraph holds
// the former; each Engine keeps the latter, reaching the shared side
// through a private Layout view (the view carries the only mutable bit
// of index access, the bucket cursor) and an Options.SharedAdjacency
// handle for the decoded-entry cache.
//
// This is what turns a one-shot CLI cost model into a serving one: the
// open/decode/warm-up work is paid once per graph, not once per job
// (docs/SERVING.md).

// SharedAdjacency is a graph's decoded adjacency, resident once and read
// by any number of concurrent engines. The first engine to touch it pays
// the fill — one pass over the edges file, decoding blocks for a v2
// layout — and every later access (same engine or another) is a zero-copy
// sub-slice of the resident entries.
//
// The cache is deliberately NOT charged against any engine's
// MemoryBudget: it is owned by whoever created it (a serving process
// accounts it against a server-wide budget; see docs/SERVING.md, "Budget
// math"). Bytes reports the resident size for that accounting.
type SharedAdjacency struct {
	dev     *storage.Device
	adj     storage.BlockLayout
	file    string
	entries int64

	mu   sync.Mutex
	data []byte // raw little-endian u32 entries; nil until the first fill
}

// NewSharedAdjacency prepares a shared adjacency cache for the layout's
// edges file. Nothing is read until an engine first needs entries.
func NewSharedAdjacency(l Layout) *SharedAdjacency {
	return &SharedAdjacency{
		dev:     l.Device(),
		adj:     l.Adj(),
		file:    l.EdgesFile(),
		entries: l.NumEdges(),
	}
}

// Bytes returns the resident size of the cache once filled: four bytes
// per adjacency entry, decoded. Use it for owner-side budget accounting.
func (s *SharedAdjacency) Bytes() int64 { return s.entries * 4 }

// Filled reports whether the adjacency is resident yet.
func (s *SharedAdjacency) Filled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data != nil
}

// slice returns the resident entries [start, end) as raw u32 bytes,
// filling the whole cache on first use. filled reports whether this call
// was served without doing the fill (the shared analogue of an adjacency
// cache hit). ps, when non-nil, receives the fill's codec counters and
// read time; it is only consulted by the filling call.
func (s *SharedAdjacency) slice(start, end int64, ps *pipeStats) (data []byte, filled bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		var t0 time.Time
		if ps != nil {
			t0 = time.Now()
		}
		if err := s.fillLocked(ps); err != nil {
			return nil, false, err
		}
		if ps != nil {
			ps.fillNS = int64(time.Since(t0))
		}
		return s.data[start*4 : end*4], false, nil
	}
	return s.data[start*4 : end*4], true, nil
}

// fillLocked reads (and for block-encoded layouts decodes) the entire
// edges file into the resident entry slice. Caller holds s.mu.
func (s *SharedAdjacency) fillLocked(ps *pipeStats) error {
	if s.adj.FixedEntries() {
		f, err := s.dev.Open(s.file)
		if err != nil {
			return err
		}
		data := make([]byte, s.entries*4)
		if len(data) > 0 {
			r := storage.NewRangeReader(f, 0, s.entries*4)
			if err := r.ReadFull(data); err != nil {
				return fmt.Errorf("core: filling shared adjacency from %q: %w", s.file, err)
			}
			ps.heatRead(0, s.entries)
		}
		s.data = data
		return nil
	}
	data, err := decodeEntryRange(s.dev, s.adj, s.file, 0, s.entries, ps)
	if err != nil {
		return fmt.Errorf("core: filling shared adjacency from %q: %w", s.file, err)
	}
	s.data = data
	return nil
}

// matches verifies the cache belongs to the same adjacency the layout
// describes — same device, same edges file, same entry count.
func (s *SharedAdjacency) matches(l Layout) bool {
	return s.dev == l.Device() && s.file == l.EdgesFile() && s.entries == l.NumEdges()
}

// SharedGraph bundles one degree-ordered graph's immutable state for
// concurrent engines: the dos.Graph (bucket index, offset tables, device
// files) plus one SharedAdjacency. Create it once per resident graph;
// hand each run a fresh View and the Adjacency handle:
//
//	sg := core.NewSharedGraph(g)
//	opts.SharedAdjacency = sg.Adjacency()
//	eng, err := core.New(sg.View(), prog, vc, mc, opts)
//
// Each engine must still use a distinct Options.Name so their runtime
// files (vertex states, message spills) do not collide on the device.
type SharedGraph struct {
	g   *dos.Graph
	adj *SharedAdjacency
}

// NewSharedGraph wraps a loaded degree-ordered graph for sharing.
func NewSharedGraph(g *dos.Graph) *SharedGraph {
	return &SharedGraph{g: g, adj: NewSharedAdjacency(DOSLayout(g))}
}

// View returns a fresh Layout over the shared graph. Views are cheap and
// single-engine: each carries its own bucket cursor, the one piece of
// index-access state that is not read-only.
func (s *SharedGraph) View() Layout { return DOSLayout(s.g) }

// Adjacency returns the graph's shared decoded-adjacency cache.
func (s *SharedGraph) Adjacency() *SharedAdjacency { return s.adj }

// Graph returns the underlying degree-ordered graph.
func (s *SharedGraph) Graph() *dos.Graph { return s.g }

// ResidentBytes is the memory the shared side pins: the bucket index,
// the v2 block-offset table, and the adjacency cache (counted whether or
// not it has been filled yet — an admission controller must reserve for
// it up front, not discover it mid-run).
func (s *SharedGraph) ResidentBytes() int64 {
	return s.g.IndexBytes() + s.g.BlockTableBytes() + s.adj.Bytes()
}
