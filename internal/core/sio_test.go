package core

import (
	"encoding/binary"
	"runtime"
	"testing"
	"time"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

func entryFile(t *testing.T, dev *storage.Device, name string, entries []uint32) {
	t.Helper()
	buf := make([]byte, 4*len(entries))
	for i, e := range entries {
		binary.LittleEndian.PutUint32(buf[4*i:], e)
	}
	if err := storage.WriteAll(dev, name, buf); err != nil {
		t.Fatal(err)
	}
}

func TestEntryStreamReadsRange(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	entryFile(t, dev, "e", []uint32{10, 20, 30, 40, 50})
	s, err := newEntryStream(dev, "e", 1, 4, nil) // entries 20, 30, 40
	if err != nil {
		t.Fatal(err)
	}
	defer s.stop()
	for _, want := range []graph.VertexID{20, 30, 40} {
		got, err := s.next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("next = %d, want %d", got, want)
		}
	}
	// Reading past the range errors.
	if _, err := s.next(); err == nil {
		t.Error("read past range should fail")
	}
	// And the error sticks.
	if _, err := s.next(); err == nil {
		t.Error("error should be sticky")
	}
}

func TestEntryStreamStopMidway(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	// Enough data for many prefetch blocks.
	entries := make([]uint32, 1<<19) // 2MB: 8 blocks
	for i := range entries {
		entries[i] = uint32(i)
	}
	entryFile(t, dev, "e", entries)
	s, err := newEntryStream(dev, "e", 0, int64(len(entries)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.next(); err != nil {
		t.Fatal(err)
	}
	// stop() must not deadlock even with the producer mid-flight.
	s.stop()
}

func TestEntryStreamEmptyRange(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	entryFile(t, dev, "e", []uint32{1, 2, 3})
	s, err := newEntryStream(dev, "e", 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.stop()
	if _, err := s.next(); err == nil {
		t.Error("empty range should yield no entries")
	}
}

func TestEntryStreamMissingFile(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if _, err := newEntryStream(dev, "missing", 0, 1, nil); err == nil {
		t.Error("missing file should fail")
	}
}

// TestEntryStreamStopRecyclesInFlightBlock: stopping a stream while the
// producer is blocked handing over a block used to leak that block — the
// stop branch returned without putting the in-hand buffer back, so every
// early partition stop (engine errors, parallel-worker chunk sources)
// bled one pooled block. The pool's get/put accounting must balance
// after every stop.
func TestEntryStreamStopRecyclesInFlightBlock(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	// Many more blocks than the queue holds, so the producer always has
	// an undelivered block in hand when stopped.
	entries := make([]uint32, 1<<21) // 8 MB: 32 blocks
	for i := range entries {
		entries[i] = uint32(i)
	}
	entryFile(t, dev, "e", entries)

	for i := 0; i < 10; i++ {
		before := blockPool.outstanding()
		gets0 := blockPool.gets.Load()
		s, err := newEntryStream(dev, "e", 0, int64(len(entries)), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Wait until the producer has filled the queue and taken the
		// next block in hand (queue depth + 1 gets), the state the
		// leaky path fired from.
		deadline := time.Now().Add(5 * time.Second)
		for blockPool.gets.Load()-gets0 < sioQueueDepth+1 {
			if time.Now().After(deadline) {
				t.Fatal("producer never filled the prefetch queue")
			}
			runtime.Gosched()
		}
		s.stop()
		if got := blockPool.outstanding(); got != before {
			t.Fatalf("iteration %d: %d pooled blocks outstanding after stop, want %d",
				i, got, before)
		}
	}
}

func TestMemEntryStream(t *testing.T) {
	data := make([]byte, 12)
	binary.LittleEndian.PutUint32(data[0:], 7)
	binary.LittleEndian.PutUint32(data[4:], 8)
	binary.LittleEndian.PutUint32(data[8:], 9)
	s := &memEntryStream{data: data}
	for _, want := range []graph.VertexID{7, 8, 9} {
		got, err := s.next()
		if err != nil || got != want {
			t.Fatalf("next = %d, %v; want %d", got, err, want)
		}
	}
	if _, err := s.next(); err == nil {
		t.Error("exhausted memory stream should fail")
	}
	s.stop() // no-op, must not panic
}
