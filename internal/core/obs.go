package core

import (
	"sync/atomic"
	"time"

	"graphz/internal/obs"
	"graphz/internal/storage"
)

// engineName labels the core engine's spans and metrics.
const engineName = "graphz"

// engineObs bundles the engine's resolved observability instruments. All
// instruments are nil-safe, so the struct is populated unconditionally;
// `on` gates the timing code (time.Now calls, per-iteration rows) that
// would otherwise cost even with no sink attached.
type engineObs struct {
	on  bool
	reg *obs.Registry
	tr  *obs.Tracer

	inline    *obs.Counter // messages applied immediately (ordered dynamic)
	buffered  *obs.Counter // messages queued for a non-resident destination
	spilled   *obs.Counter // buffered messages written to the device
	spillErrs *obs.Counter // spill failures (first aborts the run, rest are counted)

	sioBlocks *obs.Counter // adjacency blocks prefetched off the device
	sioStalls *obs.Counter // Worker waits on an empty prefetch queue
	adjHits   *obs.Counter // partitions served from the resident adjacency cache

	// Adjacency-codec instruments (DOS v2; docs/FORMAT.md §Version 2).
	// All zero on fixed-entry layouts — the raw path never decodes.
	codecRawBytes *obs.Counter // decoded adjacency bytes produced (4 per entry)
	codecEncBytes *obs.Counter // encoded adjacency bytes read off the device
	codecDecodeNS *obs.Counter // time spent in Codec.DecodeBlock

	sioNS      *obs.Counter // cumulative stage time, nanoseconds
	dispatchNS *obs.Counter
	workerNS   *obs.Counter
	drainNS    *obs.Counter

	drainSerial   *obs.Counter // drain invocations by path
	drainParallel *obs.Counter

	// Worker sub-stage instruments for the chunked parallel Worker
	// (Options.WorkerParallelism > 1); all zero on the sequential path.
	workerChunks   *obs.Counter // chunks executed speculatively
	workerReexecs  *obs.Counter // chunks invalidated and re-executed at commit
	workerSpecNS   *obs.Counter // summed speculative-execution time across workers
	workerCommitNS *obs.Counter // ordered commit (validate/replay/re-execute) time

	workerHist *obs.Histogram // per-partition worker duration
	drainHist  *obs.Histogram // per-partition drain duration

	// Selective-scheduling instruments (Options.SelectiveScheduling;
	// DESIGN.md §9).
	blocksScanned *obs.Counter // adjacency blocks the block scheduler read
	blocksSkipped *obs.Counter // adjacency blocks it proved inactive and skipped
	partsSkipped  *obs.Counter // whole partitions skipped (no bits, no messages)
	drainSkipped  *obs.Counter // drains skipped for partitions with nothing pending
	activeVerts   *obs.Gauge   // schedulable vertices at the last iteration boundary

	// Durability instruments (Options.Checkpoint; docs/DURABILITY.md).
	ckpts      *obs.Counter   // checkpoints written
	ckptBytes  *obs.Counter   // bytes persisted across all checkpoints
	ckptNS     *obs.Counter   // wall time spent writing checkpoints
	restores   *obs.Counter   // successful Resume restorations
	restoreNS  *obs.Counter   // wall time spent restoring
	removeErrs *obs.Counter   // failed runtime-file removals
	ckptHist   *obs.Histogram // per-checkpoint write duration
}

func newEngineObs(reg *obs.Registry, tr *obs.Tracer) engineObs {
	return engineObs{
		on:  reg != nil || tr != nil,
		reg: reg,
		tr:  tr,

		inline:    reg.Counter("graphz_messages_inline_total"),
		buffered:  reg.Counter("graphz_messages_buffered_total"),
		spilled:   reg.Counter("graphz_messages_spilled_total"),
		spillErrs: reg.Counter("messages_spill_errors"),

		sioBlocks: reg.Counter("graphz_sio_blocks_total"),
		sioStalls: reg.Counter("graphz_sio_stalls_total"),
		adjHits:   reg.Counter("graphz_adjcache_hits_total"),

		codecRawBytes: reg.Counter("graphz_codec_bytes_raw_total"),
		codecEncBytes: reg.Counter("graphz_codec_bytes_encoded_total"),
		codecDecodeNS: reg.Counter("graphz_codec_decode_ns_total"),

		sioNS:      reg.Counter("graphz_stage_sio_ns_total"),
		dispatchNS: reg.Counter("graphz_stage_dispatch_ns_total"),
		workerNS:   reg.Counter("graphz_stage_worker_ns_total"),
		drainNS:    reg.Counter("graphz_stage_drain_ns_total"),

		drainSerial:   reg.Counter("graphz_drain_serial_total"),
		drainParallel: reg.Counter("graphz_drain_parallel_total"),

		workerChunks:   reg.Counter("graphz_worker_chunks_total"),
		workerReexecs:  reg.Counter("graphz_worker_chunk_reexecs_total"),
		workerSpecNS:   reg.Counter("graphz_stage_worker_spec_ns_total"),
		workerCommitNS: reg.Counter("graphz_stage_worker_commit_ns_total"),

		workerHist: reg.Histogram("graphz_worker_partition_ns"),
		drainHist:  reg.Histogram("graphz_drain_partition_ns"),

		blocksScanned: reg.Counter("graphz_blocks_scanned_total"),
		blocksSkipped: reg.Counter("graphz_blocks_skipped_total"),
		partsSkipped:  reg.Counter("graphz_partitions_skipped_total"),
		drainSkipped:  reg.Counter("graphz_drain_skipped_total"),
		activeVerts:   reg.Gauge("graphz_active_vertices"),

		ckpts:      reg.Counter("graphz_checkpoint_total"),
		ckptBytes:  reg.Counter("graphz_checkpoint_bytes_total"),
		ckptNS:     reg.Counter("graphz_checkpoint_ns_total"),
		restores:   reg.Counter("graphz_restore_total"),
		restoreNS:  reg.Counter("graphz_restore_ns_total"),
		removeErrs: reg.Counter("graphz_remove_errors_total"),
		ckptHist:   reg.Histogram("graphz_checkpoint_write_ns"),
	}
}

// pipeStats accumulates one partition's Sio/Dispatcher pipeline activity.
// With the parallel Worker, one pipeStats is shared by several concurrent
// entry streams: producers (prefetch goroutines) write readNS/blocks and
// consumers (worker goroutines) write stalls/stallNS/dispatchNS, so all
// five are atomic. fillNS and cacheHit stay plain — they are written and
// read only on the engine goroutine.
type pipeStats struct {
	readNS atomic.Int64 // producers: device read time
	blocks atomic.Int64 // producers: blocks handed to the queue

	stalls     atomic.Int64 // consumers: recv found the queue empty
	stallNS    atomic.Int64 // consumers: time blocked on an empty queue
	dispatchNS atomic.Int64 // consumers: block parse (Dispatcher) time

	decodeNS  atomic.Int64 // consumers: block codec decode time (⊆ dispatchNS)
	codecRawB atomic.Int64 // consumers: decoded bytes produced
	codecEncB atomic.Int64 // consumers: encoded bytes consumed

	fillNS   int64 // engine goroutine: adjacency-cache first-fill read time
	cacheHit bool  // partition served from the resident cache
}

// recordPipe folds a finished partition's pipeline stats into spans,
// counters, and the iteration row. partStart anchors the accumulated-
// duration spans.
func (e *Engine[V, M]) recordPipe(ps *pipeStats, iter, p int, partStart time.Time, row *obs.IterStats) {
	sio := time.Duration(ps.readNS.Load() + ps.fillNS)
	dispatch := time.Duration(ps.dispatchNS.Load())
	stalls := ps.stalls.Load()
	e.eo.tr.Emit(engineName, obs.StageSio, iter, p, partStart, sio)
	e.eo.tr.Emit(engineName, obs.StageDispatch, iter, p, partStart, dispatch)
	e.eo.sioBlocks.Add(ps.blocks.Load())
	e.eo.sioStalls.Add(stalls)
	e.eo.sioNS.Add(int64(sio))
	e.eo.dispatchNS.Add(int64(dispatch))
	if ps.cacheHit {
		e.eo.adjHits.Inc()
	}
	if raw := ps.codecRawB.Load(); raw > 0 {
		e.eo.codecRawBytes.Add(raw)
		e.eo.codecEncBytes.Add(ps.codecEncB.Load())
		e.eo.codecDecodeNS.Add(ps.decodeNS.Load())
		e.codecRawBytes += raw
		e.codecEncBytes += ps.codecEncB.Load()
		e.codecDecodeNS += ps.decodeNS.Load()
	}
	e.stageTotals.Sio += sio
	e.stageTotals.Dispatch += dispatch
	if row != nil {
		row.Stages.Sio += sio
		row.Stages.Dispatch += dispatch
		row.PrefetchStalls += stalls
		if ps.cacheHit {
			row.AdjCacheHits++
		}
	}
}

// recordParallelWorker accounts the chunked Worker's sub-stages: how many
// chunks ran, how many were invalidated and re-executed, the summed
// speculative compute across workers, and the ordered-commit time.
func (e *Engine[V, M]) recordParallelWorker(chunks, reexecs, specNS, commitNS int64, row *obs.IterStats) {
	e.eo.workerChunks.Add(chunks)
	e.eo.workerReexecs.Add(reexecs)
	e.eo.workerSpecNS.Add(specNS)
	e.eo.workerCommitNS.Add(commitNS)
	if row != nil {
		row.WorkerChunks += chunks
		row.WorkerReexecs += reexecs
	}
}

// recordWorker accounts the Worker update loop of one partition.
func (e *Engine[V, M]) recordWorker(iter, p int, start time.Time, row *obs.IterStats) {
	d := time.Since(start)
	e.eo.tr.Emit(engineName, obs.StageWorker, iter, p, start, d)
	e.eo.workerNS.Add(int64(d))
	e.eo.workerHist.Observe(d)
	e.stageTotals.Worker += d
	if row != nil {
		row.Stages.Worker += d
	}
}

// recordDrain accounts the MsgManager drain of one partition.
func (e *Engine[V, M]) recordDrain(iter, p int, start time.Time, row *obs.IterStats) {
	d := time.Since(start)
	e.eo.tr.Emit(engineName, obs.StageDrain, iter, p, start, d)
	e.eo.drainNS.Add(int64(d))
	e.eo.drainHist.Observe(d)
	if e.opts.ParallelDrain {
		e.eo.drainParallel.Inc()
	} else {
		e.eo.drainSerial.Inc()
	}
	e.stageTotals.Drain += d
	if row != nil {
		row.Stages.Drain += d
	}
}

// foldDeviceStats mirrors the device's cumulative counters into the
// registry as gauges, so /metrics tracks IO alongside the pipeline.
func foldDeviceStats(reg *obs.Registry, st storage.Stats) {
	reg.Gauge("device_read_ops").Set(st.ReadOps)
	reg.Gauge("device_write_ops").Set(st.WriteOps)
	reg.Gauge("device_read_bytes").Set(st.ReadBytes)
	reg.Gauge("device_write_bytes").Set(st.WriteBytes)
	reg.Gauge("device_seeks").Set(st.Seeks)
	reg.Gauge("device_pagecache_hits").Set(st.CacheHits)
	reg.Gauge("device_remove_errors").Set(st.RemoveErrors)
}
