package core

import (
	"sync/atomic"
	"time"

	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// engineName labels the core engine's spans and metrics.
const engineName = "graphz"

// engineObs bundles the engine's resolved observability instruments. All
// instruments are nil-safe, so the struct is populated unconditionally;
// `on` gates the timing code (time.Now calls, per-iteration rows) that
// would otherwise cost even with no sink attached.
type engineObs struct {
	on   bool
	reg  *obs.Registry
	tr   *obs.Tracer
	heat *obs.BlockHeatmap // block-level IO attribution (nil-safe)

	inline    *obs.Counter // messages applied immediately (ordered dynamic)
	buffered  *obs.Counter // messages queued for a non-resident destination
	spilled   *obs.Counter // buffered messages written to the device
	spillErrs *obs.Counter // spill failures (first aborts the run, rest are counted)

	sioBlocks *obs.Counter // adjacency blocks prefetched off the device
	sioStalls *obs.Counter // Worker waits on an empty prefetch queue
	adjHits   *obs.Counter // partitions served from the resident adjacency cache

	// Adjacency-codec instruments (DOS v2; docs/FORMAT.md §Version 2).
	// All zero on fixed-entry layouts — the raw path never decodes.
	codecRawBytes *obs.Counter // decoded adjacency bytes produced (4 per entry)
	codecEncBytes *obs.Counter // encoded adjacency bytes read off the device
	codecDecodeNS *obs.Counter // time spent in Codec.DecodeBlock

	sioNS      *obs.Counter // cumulative stage time, nanoseconds
	dispatchNS *obs.Counter
	workerNS   *obs.Counter
	drainNS    *obs.Counter

	drainSerial   *obs.Counter // drain invocations by path
	drainParallel *obs.Counter
	drainSorted   *obs.Counter

	// semRuns counts runs on the semi-external fast path (sem.go). A SEM
	// run's drain instruments all stay 0 — the stage genuinely never ran.
	semRuns *obs.Counter

	// Sort-reduce instruments (Options.SortedSpill / Options.Combine;
	// DESIGN.md §11).
	combinedMsgs *obs.Counter // messages folded away by the Combine hook
	drainMerges  *obs.Counter // intermediate merge passes in sorted drains
	sortedSaved  *obs.Counter // spill bytes never written thanks to combining
	sortedRuns   *obs.Counter // destination-sorted runs spilled to the device

	// Worker sub-stage instruments for the chunked parallel Worker
	// (Options.WorkerParallelism > 1); all zero on the sequential path.
	workerChunks   *obs.Counter // chunks executed speculatively
	workerReexecs  *obs.Counter // chunks invalidated and re-executed at commit
	workerSpecNS   *obs.Counter // summed speculative-execution time across workers
	workerCommitNS *obs.Counter // ordered commit (validate/replay/re-execute) time

	workerHist *obs.Histogram // per-partition worker duration
	drainHist  *obs.Histogram // per-partition drain duration

	// Selective-scheduling instruments (Options.SelectiveScheduling;
	// DESIGN.md §9).
	blocksScanned *obs.Counter // adjacency blocks the block scheduler read
	blocksSkipped *obs.Counter // adjacency blocks it proved inactive and skipped
	partsSkipped  *obs.Counter // whole partitions skipped (no bits, no messages)
	drainSkipped  *obs.Counter // drains skipped for partitions with nothing pending
	activeVerts   *obs.Gauge   // schedulable vertices at the last iteration boundary

	// Durability instruments (Options.Checkpoint; docs/DURABILITY.md).
	ckpts      *obs.Counter   // checkpoints written
	ckptBytes  *obs.Counter   // bytes persisted across all checkpoints
	ckptNS     *obs.Counter   // wall time spent writing checkpoints
	restores   *obs.Counter   // successful Resume restorations
	restoreNS  *obs.Counter   // wall time spent restoring
	removeErrs *obs.Counter   // failed runtime-file removals
	ckptHist   *obs.Histogram // per-checkpoint write duration
}

func newEngineObs(reg *obs.Registry, tr *obs.Tracer) engineObs {
	return engineObs{
		on:   reg != nil || tr != nil,
		reg:  reg,
		tr:   tr,
		heat: reg.Heatmap(),

		inline:    reg.Counter("graphz_messages_inline_total"),
		buffered:  reg.Counter("graphz_messages_buffered_total"),
		spilled:   reg.Counter("graphz_messages_spilled_total"),
		spillErrs: reg.Counter("messages_spill_errors"),

		sioBlocks: reg.Counter("graphz_sio_blocks_total"),
		sioStalls: reg.Counter("graphz_sio_stalls_total"),
		adjHits:   reg.Counter("graphz_adjcache_hits_total"),

		codecRawBytes: reg.Counter("graphz_codec_bytes_raw_total"),
		codecEncBytes: reg.Counter("graphz_codec_bytes_encoded_total"),
		codecDecodeNS: reg.Counter("graphz_codec_decode_ns_total"),

		sioNS:      reg.Counter("graphz_stage_sio_ns_total"),
		dispatchNS: reg.Counter("graphz_stage_dispatch_ns_total"),
		workerNS:   reg.Counter("graphz_stage_worker_ns_total"),
		drainNS:    reg.Counter("graphz_stage_drain_ns_total"),

		drainSerial:   reg.Counter("graphz_drain_serial_total"),
		drainParallel: reg.Counter("graphz_drain_parallel_total"),
		drainSorted:   reg.Counter("graphz_drain_sorted_total"),

		semRuns: reg.Counter("graphz_sem_runs_total"),

		combinedMsgs: reg.Counter("graphz_messages_combined_total"),
		drainMerges:  reg.Counter("graphz_drain_merge_passes_total"),
		sortedSaved:  reg.Counter("graphz_sorted_spill_bytes_saved_total"),
		sortedRuns:   reg.Counter("graphz_sorted_runs_total"),

		workerChunks:   reg.Counter("graphz_worker_chunks_total"),
		workerReexecs:  reg.Counter("graphz_worker_chunk_reexecs_total"),
		workerSpecNS:   reg.Counter("graphz_stage_worker_spec_ns_total"),
		workerCommitNS: reg.Counter("graphz_stage_worker_commit_ns_total"),

		workerHist: reg.Histogram("graphz_worker_partition_ns"),
		drainHist:  reg.Histogram("graphz_drain_partition_ns"),

		blocksScanned: reg.Counter("graphz_blocks_scanned_total"),
		blocksSkipped: reg.Counter("graphz_blocks_skipped_total"),
		partsSkipped:  reg.Counter("graphz_partitions_skipped_total"),
		drainSkipped:  reg.Counter("graphz_drain_skipped_total"),
		activeVerts:   reg.Gauge("graphz_active_vertices"),

		ckpts:      reg.Counter("graphz_checkpoint_total"),
		ckptBytes:  reg.Counter("graphz_checkpoint_bytes_total"),
		ckptNS:     reg.Counter("graphz_checkpoint_ns_total"),
		restores:   reg.Counter("graphz_restore_total"),
		restoreNS:  reg.Counter("graphz_restore_ns_total"),
		removeErrs: reg.Counter("graphz_remove_errors_total"),
		ckptHist:   reg.Histogram("graphz_checkpoint_write_ns"),
	}
}

// pipeStats accumulates one partition's Sio/Dispatcher pipeline activity.
// With the parallel Worker, one pipeStats is shared by several concurrent
// entry streams: producers (prefetch goroutines) write readNS/blocks and
// consumers (worker goroutines) write stalls/stallNS/dispatchNS, so all
// five are atomic. fillNS and cacheHit stay plain — they are written and
// read only on the engine goroutine.
type pipeStats struct {
	readNS atomic.Int64 // producers: device read time
	blocks atomic.Int64 // producers: blocks handed to the queue

	stalls     atomic.Int64 // consumers: recv found the queue empty
	stallNS    atomic.Int64 // consumers: time blocked on an empty queue
	dispatchNS atomic.Int64 // consumers: block parse (Dispatcher) time

	decodeNS  atomic.Int64 // consumers: block codec decode time (⊆ dispatchNS)
	codecRawB atomic.Int64 // consumers: decoded bytes produced
	codecEncB atomic.Int64 // consumers: encoded bytes consumed

	fillNS   int64 // engine goroutine: adjacency-cache first-fill read time
	cacheHit bool  // partition served from the resident cache

	// Block-heat attribution, set once at construction and read by the
	// producer goroutines (the heatmap itself is mutex-guarded). heatBE
	// is the edges file's entries-per-block; nil heat disables it all.
	heat     *obs.BlockHeatmap
	heatFile string
	heatBE   int64
}

// heatRead attributes one prefetcher read of adjacency entries
// [off, off+n) to the absolute entry blocks it overlaps, splitting the
// byte count by overlap. Safe on a nil receiver or nil heatmap.
func (ps *pipeStats) heatRead(off, n int64) {
	if ps == nil || ps.heat == nil || n <= 0 || ps.heatBE <= 0 {
		return
	}
	for b := off / ps.heatBE; b <= (off+n-1)/ps.heatBE; b++ {
		lo, hi := b*ps.heatBE, (b+1)*ps.heatBE
		if off > lo {
			lo = off
		}
		if off+n < hi {
			hi = off + n
		}
		ps.heat.AddRead(ps.heatFile, b, (hi-lo)*4)
	}
}

// heatReadBlock attributes one encoded-block read of `bytes` bytes to
// entry block b (the codec prefetcher knows its block index directly).
func (ps *pipeStats) heatReadBlock(b, bytes int64) {
	if ps == nil || ps.heat == nil {
		return
	}
	ps.heat.AddRead(ps.heatFile, b, bytes)
}

// heatDecode attributes ns nanoseconds of codec decode time to entry
// block b.
func (ps *pipeStats) heatDecode(b, ns int64) {
	if ps == nil || ps.heat == nil {
		return
	}
	ps.heat.AddDecode(ps.heatFile, b, ns)
}

// recordPipe folds a finished partition's pipeline stats into spans,
// counters, and the iteration row. partStart anchors the accumulated-
// duration spans.
func (e *Engine[V, M]) recordPipe(ps *pipeStats, iter, p int, partStart time.Time, row *obs.IterStats) {
	sio := time.Duration(ps.readNS.Load() + ps.fillNS)
	dispatch := time.Duration(ps.dispatchNS.Load())
	stalls := ps.stalls.Load()
	e.eo.tr.Emit(engineName, obs.StageSio, iter, p, partStart, sio)
	e.eo.tr.Emit(engineName, obs.StageDispatch, iter, p, partStart, dispatch)
	e.eo.sioBlocks.Add(ps.blocks.Load())
	e.eo.sioStalls.Add(stalls)
	e.eo.sioNS.Add(int64(sio))
	e.eo.dispatchNS.Add(int64(dispatch))
	if ps.cacheHit {
		e.eo.adjHits.Inc()
	}
	if raw := ps.codecRawB.Load(); raw > 0 {
		dec := ps.decodeNS.Load()
		e.eo.codecRawBytes.Add(raw)
		e.eo.codecEncBytes.Add(ps.codecEncB.Load())
		e.eo.codecDecodeNS.Add(dec)
		e.codecRawBytes += raw
		e.codecEncBytes += ps.codecEncB.Load()
		e.codecDecodeNS += dec
		if dec > 0 {
			// The decode sub-span mirrors the counter exactly, so report
			// stage totals reconcile with graphz_codec_decode_ns_total.
			e.eo.tr.Emit(engineName, obs.StageDecode, iter, p, partStart, time.Duration(dec))
		}
	}
	e.stageTotals.Sio += sio
	e.stageTotals.Dispatch += dispatch
	if row != nil {
		row.Stages.Sio += sio
		row.Stages.Dispatch += dispatch
		row.PrefetchStalls += stalls
		if ps.cacheHit {
			row.AdjCacheHits++
		}
	}
}

// recordParallelWorker accounts the chunked Worker's sub-stages: how many
// chunks ran, how many were invalidated and re-executed, the summed
// speculative compute across workers, and the ordered-commit time.
func (e *Engine[V, M]) recordParallelWorker(chunks, reexecs, specNS, commitNS int64, row *obs.IterStats) {
	e.eo.workerChunks.Add(chunks)
	e.eo.workerReexecs.Add(reexecs)
	e.eo.workerSpecNS.Add(specNS)
	e.eo.workerCommitNS.Add(commitNS)
	if row != nil {
		row.WorkerChunks += chunks
		row.WorkerReexecs += reexecs
	}
}

// recordWorker accounts the Worker update loop of one partition.
func (e *Engine[V, M]) recordWorker(iter, p int, start time.Time, row *obs.IterStats) {
	d := time.Since(start)
	e.eo.tr.Emit(engineName, obs.StageWorker, iter, p, start, d)
	e.eo.workerNS.Add(int64(d))
	e.eo.workerHist.Observe(d)
	e.stageTotals.Worker += d
	if row != nil {
		row.Stages.Worker += d
	}
}

// recordDrain accounts the MsgManager drain of one partition.
func (e *Engine[V, M]) recordDrain(iter, p int, start time.Time, row *obs.IterStats) {
	d := time.Since(start)
	e.eo.tr.Emit(engineName, obs.StageDrain, iter, p, start, d)
	e.eo.drainNS.Add(int64(d))
	e.eo.drainHist.Observe(d)
	switch {
	case e.opts.SortedSpill:
		e.eo.drainSorted.Inc()
	case e.opts.ParallelDrain:
		e.eo.drainParallel.Inc()
	default:
		e.eo.drainSerial.Inc()
	}
	e.stageTotals.Drain += d
	if row != nil {
		row.Stages.Drain += d
	}
}

// newPipeStats builds one partition's pipeline accumulator with the
// heat-attribution fields resolved.
func (e *Engine[V, M]) newPipeStats() *pipeStats {
	return &pipeStats{heat: e.eo.heat, heatFile: e.layout.EdgesFile(), heatBE: e.adj.BlockEntries}
}

// heatSelective attributes a partition's skipped adjacency blocks — the
// blocks of entry range [start, end) no scheduled run touches — to the
// heatmap, in absolute entry-block units (matching read attribution).
func (e *Engine[V, M]) heatSelective(sched selSchedule, start, end int64) {
	h := e.eo.heat
	if h == nil || sched.streamAll || end <= start {
		return
	}
	be := e.adj.BlockEntries
	file := e.layout.EdgesFile()
	covered := make(map[int64]bool, len(sched.runs))
	for _, r := range sched.runs {
		if r.endOff <= r.startOff {
			continue
		}
		for b := r.startOff / be; b <= (r.endOff-1)/be; b++ {
			covered[b] = true
		}
	}
	for b := start / be; b <= (end-1)/be; b++ {
		if !covered[b] {
			h.AddSkip(file, b)
		}
	}
}

// vstateBlock maps a vertex to its DefaultBlockSize byte block of the
// vertex-state file — the unit drain fan-in is attributed at.
func (e *Engine[V, M]) vstateBlock(dst graph.VertexID) int64 {
	return int64(dst) * int64(e.vsize) / storage.DefaultBlockSize
}

// flushDrainHeat folds one drain's per-block fan-in accumulator into the
// heatmap.
func (e *Engine[V, M]) flushDrainHeat(acc map[int64]int64) {
	file := e.vstateFile()
	for b, n := range acc {
		e.eo.heat.AddDrain(file, b, n)
	}
}

// sampleMemory records one memory-budget accounting sample at an
// iteration boundary: what is resident right now, per accounted class,
// against the configured budget (docs/OBSERVABILITY.md, "Run reports").
func (e *Engine[V, M]) sampleMemory(iter int) {
	if e.eo.reg == nil {
		return
	}
	s := obs.MemSample{
		Iteration:        iter,
		BudgetBytes:      e.opts.MemoryBudget,
		IndexBytes:       e.layout.IndexBytes(),
		TableBytes:       e.adj.TableBytes(),
		PipelineBytes:    pipelineOverheadBytes,
		VertexStateBytes: int64(cap(e.verts)) * int64(e.vsize), // high-water partition
	}
	for _, data := range e.adjCache {
		s.AdjCacheBytes += int64(len(data))
	}
	for p, buf := range e.msgBufs {
		s.MsgBufferBytes += int64(cap(buf))
		// Size is an uncharged catalog lookup; a missing file reads as
		// zero spill (it only happens mid-teardown).
		if sz, err := e.dev.Size(e.msgFile(p)); err == nil {
			s.SpillBytes += sz
		}
	}
	if e.sel != nil {
		s.BitmapBytes = int64(len(e.sel.words)) * 8
	}
	e.eo.reg.RecordMem(s)
}

// DeviceFileIO snapshots a device's per-file traffic in the report's
// storage-free FileIO form. The helper lives here (not in obs) so the
// obs schema stays free of storage imports.
func DeviceFileIO(dev *storage.Device) map[string]obs.FileIO {
	if dev == nil {
		return nil
	}
	stats := dev.FileStats()
	out := make(map[string]obs.FileIO, len(stats))
	for name, st := range stats {
		out[name] = obs.FileIO{
			ReadOps:    st.ReadOps,
			ReadBytes:  st.ReadBytes,
			WriteOps:   st.WriteOps,
			WriteBytes: st.WriteBytes,
			Seeks:      st.Seeks,
			CacheHits:  st.CacheHits,
		}
	}
	return out
}

// foldDeviceStats mirrors the device's cumulative counters into the
// registry as gauges, so /metrics tracks IO alongside the pipeline.
func foldDeviceStats(reg *obs.Registry, st storage.Stats) {
	reg.Gauge("device_read_ops").Set(st.ReadOps)
	reg.Gauge("device_write_ops").Set(st.WriteOps)
	reg.Gauge("device_read_bytes").Set(st.ReadBytes)
	reg.Gauge("device_write_bytes").Set(st.WriteBytes)
	reg.Gauge("device_seeks").Set(st.Seeks)
	reg.Gauge("device_pagecache_hits").Set(st.CacheHits)
	reg.Gauge("device_remove_errors").Set(st.RemoveErrors)
}
