package core

import "fmt"

// Semi-external-memory fast path (DESIGN.md §13).
//
// GraphMP's observation (PAPERS.md): when the vertex states fit in
// memory and only the edges stream from disk, a single machine rivals a
// small cluster. The partitioned engine routes every cross-partition
// message through MsgManager buffers and the spill/drain machinery even
// when the whole vertex-state array would comfortably fit the memory
// budget — paying per-iteration vertex-state round-trips, per-partition
// message files, and a drain stage that a resident-state run never
// needs.
//
// In SEM mode the engine pins the full vertex-state array resident for
// the whole run and applies every message inline at dispatch time, the
// moment Update sends it: there is exactly one partition covering the
// entire vertex space, so the ordered-dynamic-message fast path of
// makeSend covers every destination. No message buffers are allocated,
// no spill files are created, and the drain stage never runs — the
// adjacency still streams through Sio (v1 fixed-entry and v2
// block-encoded codecs alike) with selective scheduling and the
// parallel Worker intact.
//
// Equivalence comes in two strengths. Against a single-partition
// partitioned run the message routing is identical — every send was
// already inline — so the SEM result is identical in every observable:
// byte-identical states, same counters, same iteration count; the fast
// path only removes the per-iteration vertex-state round trip and the
// empty drain. Against a multi-partition run the converged states still
// match exactly (the fixpoint does not depend on partitioning), but SEM
// may converge in fewer iterations: a cross-partition message there
// waits for the next iteration's drain, while SEM folds it the moment
// it is sent, so information propagates at least as fast — the same
// reason the partitioned engine itself converges faster with fewer
// partitions. Options.Combine is a no-op here: the hook folds messages
// on the spill path, and SEM never spills.

// SemMode selects the semi-external-memory fast path.
type SemMode int

const (
	// SemAuto (the default) takes the fast path whenever the detection
	// holds: SemBudgetBytes(layout, vsize) fits MemoryBudget and
	// dynamic messages are on. Otherwise the engine partitions.
	SemAuto SemMode = iota
	// SemOn forces the fast path; New fails with ErrMemoryBudget when
	// the states cannot be pinned, or ErrInvalidOptions without
	// dynamic messages (SEM is inline apply; a static-message run has
	// nothing to apply inline).
	SemOn
	// SemOff never takes the fast path, even when everything fits —
	// the partitioned baseline the differential tests compare against.
	SemOff
)

func (m SemMode) String() string {
	switch m {
	case SemOn:
		return "on"
	case SemOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseSemMode resolves a mode name ("auto", "on", "off"; "" means
// auto) — the spelling the -sem flag and the serving API accept.
func ParseSemMode(s string) (SemMode, error) {
	switch s {
	case "", "auto":
		return SemAuto, nil
	case "on", "true":
		return SemOn, nil
	case "off", "false":
		return SemOff, nil
	}
	return SemAuto, fmt.Errorf("%w: unknown sem mode %q (want auto, on, or off)", ErrInvalidOptions, s)
}

// semBitmapBytes is the resident cost of the per-vertex schedulability
// bitmap. It is charged in the SEM fit decision whether or not
// selective scheduling is on, so the decision — and with it the
// partitioning — never shifts between selective and full-streaming runs
// of the same budget (the comparability rule of New's bitmap comment).
func semBitmapBytes(n int) int64 {
	return int64((n + 63) / 64 * 8)
}

// SemBudgetBytes returns the smallest MemoryBudget at which an engine
// over layout with vsize-byte vertex states takes the semi-external-
// memory fast path: the full vertex-state array, the per-vertex active
// bitmap, the adjacency offset table, the resident index, and the
// Sio/Dispatcher pipeline buffers, all pinned at once. Callers sizing a
// SEM run (the serving admission control reserving a job's residency)
// use it as the floor a job budget must clear.
func SemBudgetBytes(l Layout, vsize int) int64 {
	n := l.NumVertices()
	return int64(n)*int64(vsize) + semBitmapBytes(n) +
		l.Adj().TableBytes() + l.IndexBytes() + pipelineOverheadBytes
}

// SemiExternal reports whether the engine took the semi-external-memory
// fast path (resolved at New).
func (e *Engine[V, M]) SemiExternal() bool { return e.sem }

// planSem resolves Options.SemiExternal against the budget. On the fast
// path the whole vertex space is one partition — partitionOf is the
// identity, makeSend's inline branch covers every destination — and the
// planner's message-buffer arithmetic is skipped entirely: SEM
// allocates no buffers.
func (e *Engine[V, M]) planSem() (bool, error) {
	need := SemBudgetBytes(e.layout, e.vsize)
	switch e.opts.SemiExternal {
	case SemOff:
		return false, nil
	case SemOn:
		if !e.opts.DynamicMessages {
			return false, fmt.Errorf("%w: SemiExternal needs DynamicMessages (SEM applies every message inline)", ErrInvalidOptions)
		}
		if need > e.opts.MemoryBudget {
			return false, fmt.Errorf("%w: semi-external mode needs %d B resident (states+bitmap+table+index+pipeline), budget is %d B",
				ErrMemoryBudget, need, e.opts.MemoryBudget)
		}
		return true, nil
	default: // SemAuto
		return e.opts.DynamicMessages && need <= e.opts.MemoryBudget, nil
	}
}
