package core

import (
	"encoding/binary"
	"sort"

	"graphz/internal/graph"
	"graphz/internal/graphchi"
)

// This file implements the paper's Section IV-E expressiveness
// construction (Algorithms 5 and 6): any GraphChi-style program — even
// one whose gather is neither commutative nor associative — runs
// unchanged on the GraphZ engine. Each message carries an Edge (the
// neighbor plus an edge value); apply_message only appends it to the
// destination's in-edge list, and update() sees the accumulated in-edges
// exactly as GraphChi's update would. The construction deliberately
// forgoes dynamic messages' space savings; it exists to prove no
// expressiveness is lost.

// EmulatedVertex is the construction's VertexDataType (Algorithm 5): the
// real vertex value, the in-edge list accumulated by apply_message, and
// the persistent out-edge values (GraphChi stores those on disk edges;
// here they are part of the vertex, as Algorithm 5's "edges are part of
// the vertex" describes).
type EmulatedVertex[V, E any] struct {
	Value   V
	Edges   []graphchi.EdgeRef[E] // in-edges; Val points into vals
	vals    []E
	outVals []E // out-edge values, persisted across iterations
	outInit bool
}

// emulatedMsg is the construction's MessageDataType: one edge.
type emulatedMsg[E any] struct {
	Neighbor graph.VertexID
	Val      E
}

// emulatedProgram adapts a graphchi.Program to the GraphZ model.
type emulatedProgram[V, E any] struct {
	inner graphchi.Program[V, E]
	inDeg []uint32 // needed by the inner Init; gathered up front
}

func (p *emulatedProgram[V, E]) Init(id graph.VertexID, deg uint32) EmulatedVertex[V, E] {
	var inDeg uint32
	if int(id) < len(p.inDeg) {
		inDeg = p.inDeg[id]
	}
	return EmulatedVertex[V, E]{Value: p.inner.Init(id, inDeg, deg)}
}

func (p *emulatedProgram[V, E]) Update(ctx *Context[emulatedMsg[E]], id graph.VertexID, v *EmulatedVertex[V, E], adj []graph.VertexID) {
	// The inner update consumes the gathered in-edges and may rewrite
	// the persistent out-edge values.
	if !v.outInit {
		v.outVals = make([]E, len(adj))
		for i, a := range adj {
			v.outVals[i] = p.inner.InitEdge(id, a)
		}
		v.outInit = true
	}
	out := make([]graphchi.EdgeRef[E], len(adj))
	for i, a := range adj {
		out[i] = graphchi.EdgeRef[E]{Neighbor: a, Val: &v.outVals[i]}
	}
	active := false
	inner := graphchi.NewContext(ctx.Iteration(), &active)
	p.inner.Update(inner, id, &v.Value, v.Edges, out)
	if active {
		ctx.MarkActive()
	}
	// Clear the consumed in-edges BEFORE sending: a self-loop's
	// message applies to this very vertex during the send loop and
	// must survive until the next update. Then ship the out-edge
	// values (each destination clears its gathered copy every update,
	// so every round re-sends), exactly as Algorithm 6 does.
	v.Edges = v.Edges[:0]
	v.vals = v.vals[:0]
	for i, a := range adj {
		ctx.Send(a, emulatedMsg[E]{Neighbor: id, Val: v.outVals[i]})
	}
}

// Apply is deliberately the program's ONLY message hook: the append is
// neither commutative nor idempotent (each message contributes one edge
// slot, and the slot order is the arrival order), so emulatedProgram
// must never implement Combiner — folding two messages would lose an
// edge. SortedSpill without Combine remains safe: the stable
// destination sort preserves per-destination arrival order.
func (p *emulatedProgram[V, E]) Apply(v *EmulatedVertex[V, E], m emulatedMsg[E]) {
	// Algorithm 6's apply_message: append the edge. The value slice is
	// stable per apply round because Edges is rebuilt alongside it.
	v.vals = append(v.vals, m.Val)
	v.Edges = append(v.Edges, graphchi.EdgeRef[E]{Neighbor: m.Neighbor})
	for i := range v.Edges {
		v.Edges[i].Val = &v.vals[i]
	}
}

// emulatedCodec persists EmulatedVertex values. The edge list is
// variable-length in principle; this codec bounds it by the vertex's
// in-degree, encoding count + entries into a fixed frame sized for the
// graph's maximum in-degree. That makes the construction storage-hungry
// — which is the paper's point: dynamic messages exist to avoid exactly
// this intermediate state.
type emulatedCodec[V, E any] struct {
	vcodec    graph.Codec[V]
	ecodec    graph.Codec[E]
	maxInDeg  int
	maxOutDeg int
}

func (c emulatedCodec[V, E]) entryBytes() int { return 4 + c.ecodec.Size() }

func (c emulatedCodec[V, E]) Size() int {
	return c.vcodec.Size() + 4 + c.maxInDeg*c.entryBytes() +
		8 + c.maxOutDeg*c.ecodec.Size()
}

func (c emulatedCodec[V, E]) Encode(buf []byte, v EmulatedVertex[V, E]) {
	for i := range buf[:c.Size()] {
		buf[i] = 0
	}
	c.vcodec.Encode(buf, v.Value)
	o := c.vcodec.Size()
	binary.LittleEndian.PutUint32(buf[o:], uint32(len(v.Edges)))
	o += 4
	for i, e := range v.Edges {
		binary.LittleEndian.PutUint32(buf[o:], uint32(e.Neighbor))
		c.ecodec.Encode(buf[o+4:], v.vals[i])
		o += c.entryBytes()
	}
	o = c.vcodec.Size() + 4 + c.maxInDeg*c.entryBytes()
	binary.LittleEndian.PutUint32(buf[o:], uint32(len(v.outVals)))
	var flag uint32
	if v.outInit {
		flag = 1
	}
	binary.LittleEndian.PutUint32(buf[o+4:], flag)
	o += 8
	for _, ov := range v.outVals {
		c.ecodec.Encode(buf[o:], ov)
		o += c.ecodec.Size()
	}
}

func (c emulatedCodec[V, E]) Decode(buf []byte) EmulatedVertex[V, E] {
	var v EmulatedVertex[V, E]
	v.Value = c.vcodec.Decode(buf)
	o := c.vcodec.Size()
	n := int(binary.LittleEndian.Uint32(buf[o:]))
	o += 4
	v.vals = make([]E, n)
	v.Edges = make([]graphchi.EdgeRef[E], n)
	for i := 0; i < n; i++ {
		v.Edges[i].Neighbor = graph.VertexID(binary.LittleEndian.Uint32(buf[o:]))
		v.vals[i] = c.ecodec.Decode(buf[o+4:])
		o += c.entryBytes()
	}
	for i := range v.Edges {
		v.Edges[i].Val = &v.vals[i]
	}
	o = c.vcodec.Size() + 4 + c.maxInDeg*c.entryBytes()
	nOut := int(binary.LittleEndian.Uint32(buf[o:]))
	v.outInit = binary.LittleEndian.Uint32(buf[o+4:]) == 1
	o += 8
	v.outVals = make([]E, nOut)
	for i := 0; i < nOut; i++ {
		v.outVals[i] = c.ecodec.Decode(buf[o:])
		o += c.ecodec.Size()
	}
	return v
}

// emulatedMsgCodec persists one emulated message.
type emulatedMsgCodec[E any] struct {
	ecodec graph.Codec[E]
}

func (c emulatedMsgCodec[E]) Size() int { return 4 + c.ecodec.Size() }

func (c emulatedMsgCodec[E]) Encode(buf []byte, m emulatedMsg[E]) {
	binary.LittleEndian.PutUint32(buf, uint32(m.Neighbor))
	c.ecodec.Encode(buf[4:], m.Val)
}

func (c emulatedMsgCodec[E]) Decode(buf []byte) emulatedMsg[E] {
	return emulatedMsg[E]{
		Neighbor: graph.VertexID(binary.LittleEndian.Uint32(buf)),
		Val:      c.ecodec.Decode(buf[4:]),
	}
}

// EmulateGraphChi runs a GraphChi-style program on the GraphZ engine via
// the Section IV-E construction and returns the engine result plus the
// final vertex values (by layout ID). inDegrees must give each vertex's
// in-degree in the layout's ID space (GraphChi's Init receives it).
func EmulateGraphChi[V, E any](layout Layout, prog graphchi.Program[V, E],
	vcodec graph.Codec[V], ecodec graph.Codec[E], inDegrees []uint32, opts Options) (Result, []V, error) {

	maxIn := 0
	for _, d := range inDegrees {
		if int(d) > maxIn {
			maxIn = int(d)
		}
	}
	if err := layout.LoadIndex(); err != nil {
		return Result{}, nil, err
	}
	maxOut := 0
	for v := 0; v < layout.NumVertices(); v++ {
		if d := int(layout.DegreeOf(graph.VertexID(v))); d > maxOut {
			maxOut = d
		}
	}
	p := &emulatedProgram[V, E]{inner: prog, inDeg: inDegrees}
	codec := emulatedCodec[V, E]{vcodec: vcodec, ecodec: ecodec, maxInDeg: maxIn, maxOutDeg: maxOut}
	opts.ConvergeOnInactivity = true
	// The emulation construction is not frontier-safe: every vertex
	// re-sends its value along every out-edge each round whether or not
	// it received anything, so a vertex with no in-neighbors would go
	// unscheduled under selective scheduling and starve its neighbors'
	// gathered in-edge lists. Force full streaming.
	opts.SelectiveScheduling = false
	eng, err := New[EmulatedVertex[V, E], emulatedMsg[E]](layout, p, codec,
		emulatedMsgCodec[E]{ecodec: ecodec}, opts)
	if err != nil {
		return Result{}, nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return Result{}, nil, err
	}
	wrapped, err := eng.Values()
	if err != nil {
		return Result{}, nil, err
	}
	eng.Cleanup()
	vals := make([]V, len(wrapped))
	for i, w := range wrapped {
		vals[i] = w.Value
	}
	return res, vals, nil
}

// InDegrees computes per-vertex in-degrees for a layout by streaming its
// adjacency file once — the setup pass the emulation needs.
func InDegrees(l Layout) ([]uint32, error) {
	n := l.NumVertices()
	in := make([]uint32, n)
	if n == 0 {
		return in, nil
	}
	if err := l.LoadIndex(); err != nil {
		return nil, err
	}
	stream, err := newAdjStream(l.Device(), l.Adj(), l.EdgesFile(), []entryRange{{start: 0, end: l.NumEdges()}}, nil)
	if err != nil {
		return nil, err
	}
	defer stream.stop()
	for i := int64(0); i < l.NumEdges(); i++ {
		dst, err := stream.next()
		if err != nil {
			return nil, err
		}
		in[dst]++
	}
	return in, nil
}

// sortEdgeRefs orders an edge-ref list by neighbor; useful for tests that
// compare gathered in-edge sets.
func sortEdgeRefs[E any](refs []graphchi.EdgeRef[E]) {
	sort.Slice(refs, func(i, j int) bool { return refs[i].Neighbor < refs[j].Neighbor })
}
