package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/sim"
)

// Deterministic parallel Worker stage (Options.WorkerParallelism).
//
// The paper's ordering guarantee (Section V) demands that every run
// perform the identical sequence of operations: updates in ascending ID
// order, each ordered dynamic message applied the moment it is sent. A
// naive parallel Worker breaks that, because a vertex's update must see
// the applies of every earlier in-partition sender. This file keeps the
// guarantee with optimistic concurrency:
//
//  1. The resident partition's vertex range is split into contiguous
//     chunks. Each chunk's adjacency sub-range is computable up front
//     (DOS makes offsets arithmetic), so chunks read the device — or
//     the resident adjacency cache — independently.
//  2. Chunks execute speculatively on a pool: each worker decodes a
//     private copy of its chunk's post-drain vertex states from a
//     codec snapshot, runs Update in ID order, applies intra-chunk
//     dynamic messages to its private states immediately (exactly as
//     the sequential Worker would), and logs every extra-chunk message
//     in send order.
//  3. A single committer consumes chunks in ascending order. A clean
//     chunk commits by installing its speculated states and replaying
//     its log through the sequential inline-apply/buffer/spill routing.
//     Any in-partition apply that lands in a not-yet-committed chunk
//     marks that chunk dirty: its speculation read stale inputs, so at
//     its turn it is re-executed sequentially on the live states — the
//     exact operation sequence the sequential Worker performs.
//
// Because commits happen in chunk order and a chunk's speculation is
// only kept when nothing mutated its inputs, the observable sequence of
// updates, applies, buffered records, and spills — and therefore every
// vertex-state byte — is identical to the sequential engine. Programs
// whose dynamic messages rarely land in later chunks of the same
// partition (cross-partition traffic, sparse activations, or static
// messages, which never invalidate anything) get near-linear Worker
// speedup; dense in-partition forward traffic (PageRank's votes)
// degrades gracefully to sequential re-execution, never to a wrong
// answer. See DESIGN.md, "Deterministic parallel Worker stage".
//
// Requirements: Program.Update/Apply must not touch shared mutable
// state beyond the vertex passed in (true of every program in this
// repository), and the vertex codec must round-trip exactly (the engine
// already assumes this — states are round-tripped at every partition
// switch).

// chunksPerWorker over-partitions the vertex range so commit-order
// head-of-line blocking and load imbalance stay small.
const chunksPerWorker = 4

// inFlightWindowFactor bounds speculated-but-uncommitted chunks (their
// private states and message logs) to workers*factor.
const inFlightWindowFactor = 2

// workerChunk is one contiguous vertex sub-range of a partition and
// everything its speculative execution produced.
type workerChunk[V any] struct {
	part             int
	lo, hi           graph.VertexID // vertex sub-range [lo, hi)
	partStartOff     int64          // partition's first entry offset
	startOff, endOff int64          // chunk's entry offsets [startOff, endOff)
	degs             []uint32       // out-degrees for [lo, hi), precomputed

	states []V        // speculated vertex states (private deep copies)
	acts   *activeSet // speculated schedulability bits (selective scheduling)
	log    []byte     // extra-chunk messages, send order: 4 B dst + msize
	sent   int64      // all messages sent by the chunk
	inline int64      // intra-chunk dynamic messages applied privately
	edges  int64      // adjacency entries consumed
	active bool
	durNS  int64 // speculation wall time (metrics only)
	err    error
	done   chan struct{}
}

// runWorkerParallel executes the Worker stage of partition p (vertex
// range [lo, hi), entry range [start, end)) on the configured worker
// pool. It returns the partition's activity flag, exactly as
// runWorkerSequential does.
func (e *Engine[V, M]) runWorkerParallel(p, iter int, lo, hi graph.VertexID, start, end int64, ps *pipeStats, row *obs.IterStats) (bool, error) {
	count := int(hi - lo)
	workers := e.workerCount()
	numChunks := workers * chunksPerWorker
	if numChunks > count {
		numChunks = count
	}
	chunkSize := (count + numChunks - 1) / numChunks
	numChunks = (count + chunkSize - 1) / chunkSize

	// Degrees and chunk offsets are precomputed on the engine
	// goroutine: the DOS layout's cursor is not safe for concurrent
	// lookups, and the ascending scan is what it is optimized for.
	degs := make([]uint32, count)
	chunkOff := make([]int64, numChunks+1)
	off := start
	for i := 0; i < count; i++ {
		if i%chunkSize == 0 {
			chunkOff[i/chunkSize] = off
		}
		d := e.layout.DegreeOf(lo + graph.VertexID(i))
		degs[i] = d
		off += int64(d)
	}
	chunkOff[numChunks] = off
	if off != end {
		return false, fmt.Errorf("core: partition %d adjacency range [%d,%d) disagrees with degree sum %d", p, start, end, off-start)
	}

	// Deep snapshot of the post-drain vertex states through the codec:
	// speculating workers decode their chunk from these bytes, so they
	// never share mutable state (slices inside V included) with
	// e.verts, which only the committer touches.
	snap := make([]byte, count*e.vsize)
	for i := 0; i < count; i++ {
		e.vcodec.Encode(snap[i*e.vsize:], e.verts[i])
	}

	chunks := make([]*workerChunk[V], numChunks)
	for i := range chunks {
		clo := lo + graph.VertexID(i*chunkSize)
		chi := clo + graph.VertexID(chunkSize)
		if chi > hi {
			chi = hi
		}
		chunks[i] = &workerChunk[V]{
			part: p, lo: clo, hi: chi,
			partStartOff: start,
			startOff:     chunkOff[i], endOff: chunkOff[i+1],
			degs: degs[clo-lo : chi-lo],
			done: make(chan struct{}),
		}
	}

	// Per-chunk start gates keep speculated-but-uncommitted chunks
	// within the window: gate i opens when chunk i-window commits.
	// Gating by chunk index (instead of a counting semaphore) makes the
	// scheme deadlock-free by construction — the chunk the committer is
	// waiting for always has an open gate.
	window := workers * inFlightWindowFactor
	gates := make([]chan struct{}, numChunks)
	for i := range gates {
		gates[i] = make(chan struct{})
		if i < window {
			close(gates[i])
		}
	}
	abort := make(chan struct{})
	var wg sync.WaitGroup
	defer func() {
		close(abort)
		wg.Wait()
	}()

	for i, c := range chunks {
		gate := gates[i]
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-gate:
			case <-abort:
				close(c.done)
				return
			}
			e.speculateChunk(c, snap, lo, iter, ps)
			close(c.done)
		}()
	}

	dirty := make([]bool, numChunks)
	var reexecs, specNS, commitNS int64
	active := false
	for i, c := range chunks {
		<-c.done
		if c.err != nil {
			return false, c.err
		}
		specNS += c.durNS
		var t0 time.Time
		if e.eo.on {
			t0 = time.Now()
		}
		if dirty[i] {
			// An earlier chunk's dynamic message landed here after
			// the snapshot: the speculation read stale inputs.
			// Discard it and run the chunk sequentially on the live
			// states — the exact sequential operation sequence.
			if err := e.reexecuteChunk(c, iter, lo, hi, chunkSize, dirty, &active, ps); err != nil {
				return false, err
			}
			reexecs++
		} else {
			e.commitChunk(c, lo, hi, chunkSize, dirty, &active)
		}
		if e.eo.on {
			commitNS += int64(time.Since(t0))
		}
		c.states, c.log, c.degs = nil, nil, nil
		if next := i + window; next < numChunks {
			close(gates[next])
		}
	}
	if e.eo.on {
		e.recordParallelWorker(int64(numChunks), reexecs, specNS, commitNS, row)
	}
	return active, nil
}

// speculateChunk runs one chunk's updates against a private copy of its
// vertex states. It mutates nothing shared: messages leaving the chunk
// are logged, counters are accumulated locally, and the committer folds
// everything in later.
func (e *Engine[V, M]) speculateChunk(c *workerChunk[V], snap []byte, partLo graph.VertexID, iter int, ps *pipeStats) {
	var t0 time.Time
	if e.eo.on {
		t0 = time.Now()
	}
	src, err := e.rangeEntrySource(c.part, c.partStartOff, c.startOff, c.endOff, ps)
	if err != nil {
		c.err = err
		return
	}
	defer src.stop()

	n := int(c.hi - c.lo)
	c.states = make([]V, n)
	base := int(c.lo-partLo) * e.vsize
	for i := 0; i < n; i++ {
		c.states[i] = e.vcodec.Decode(snap[base+i*e.vsize:])
	}

	act := false
	ctx := &Context[M]{iteration: iter, active: &act}
	if e.sel != nil {
		// Private bit overlay for [c.lo, c.hi): the sequential Worker
		// would leave a chunk vertex's bit set only if an apply (or
		// MarkActive) landed after its update within this chunk — the
		// overlay records exactly those, and the committer installs it
		// over the global set when the speculation is kept. At
		// iteration 0 the Init pass leaves every bit set (see
		// runWorkerSequential), so the overlay starts full.
		c.acts = newEmptyActiveSet(c.lo, n)
		if iter == 0 {
			c.acts.fillAll()
		}
		ctx.as = c.acts
	}
	rec := 4 + e.msize
	ctx.send = func(dst graph.VertexID, m M) {
		c.sent++
		if e.opts.DynamicMessages && dst >= c.lo && dst < c.hi {
			// Intra-chunk ordered dynamic message: the chunk runs
			// sequentially, so applying to the private state is
			// exactly what the sequential Worker does.
			e.prog.Apply(&c.states[dst-c.lo], m)
			c.inline++
			if c.acts != nil {
				c.acts.set(dst)
			}
			return
		}
		off := len(c.log)
		c.log = growRecord(c.log, rec)
		binary.LittleEndian.PutUint32(c.log[off:], uint32(dst))
		e.mcodec.Encode(c.log[off+4:], m)
	}

	br := newBatchReader(src, nil)
	for v := c.lo; v < c.hi; v++ {
		deg := c.degs[v-c.lo]
		if c.acts != nil {
			if iter > 0 {
				c.acts.clear(v)
			}
			ctx.cur = v
		}
		adj, err := br.adj(deg)
		if err != nil {
			c.err = fmt.Errorf("core: adjacency stream for vertex %d: %w", v, err)
			return
		}
		e.prog.Update(ctx, v, &c.states[v-c.lo], adj)
		c.edges += int64(deg)
	}
	c.active = act
	if e.eo.on {
		c.durNS = int64(time.Since(t0))
	}
}

// commitChunk installs a clean chunk's speculated states, folds its
// locally accumulated counters and compute charges, and replays its
// extra-chunk message log — in send order — through the sequential
// routing. In-partition applies that land in a later, uncommitted chunk
// mark it dirty.
func (e *Engine[V, M]) commitChunk(c *workerChunk[V], lo, hi graph.VertexID, chunkSize int, dirty []bool, active *bool) {
	copy(e.verts[c.lo-lo:c.hi-lo], c.states)
	if c.acts != nil {
		// A clean commit means no earlier chunk's apply landed here, so
		// the overlay is exactly the bit state the sequential
		// clear-on-update/set-on-apply sequence would have left.
		e.sel.copyFrom(c.acts, c.lo, c.hi)
		c.acts = nil
	}
	n := int64(len(c.states))
	e.updates += n
	e.charge(n, sim.CostVertexUpdate)
	e.charge(c.edges, sim.CostEdgeScan)
	e.sent += c.sent
	e.charge(c.sent, sim.CostMessageSend)
	e.inline += c.inline
	e.applied += c.inline
	e.eo.inline.Add(c.inline)
	e.charge(c.inline, sim.CostMessageApply)
	if c.active {
		*active = true
	}
	rec := 4 + e.msize
	for off := 0; off+rec <= len(c.log); off += rec {
		dst := graph.VertexID(binary.LittleEndian.Uint32(c.log[off:]))
		m := e.mcodec.Decode(c.log[off+4:])
		// Already counted in c.sent; route exactly as the sequential
		// send does.
		if e.opts.DynamicMessages && dst >= lo && dst < hi {
			e.prog.Apply(&e.verts[dst-lo], m)
			e.applied++
			e.inline++
			e.eo.inline.Inc()
			e.charge(1, sim.CostMessageApply)
			if e.sel != nil {
				e.sel.set(dst)
			}
			dirty[int(dst-lo)/chunkSize] = true
			continue
		}
		e.bufferedN++
		e.eo.buffered.Inc()
		e.bufferMessage(dst, m)
	}
}

// reexecuteChunk runs an invalidated chunk's updates sequentially on the
// live vertex states with the full sequential send path — the fallback
// that preserves the ordering guarantee when speculation lost its bet.
func (e *Engine[V, M]) reexecuteChunk(c *workerChunk[V], iter int, lo, hi graph.VertexID, chunkSize int, dirty []bool, active *bool, ps *pipeStats) error {
	src, err := e.rangeEntrySource(c.part, c.partStartOff, c.startOff, c.endOff, ps)
	if err != nil {
		return err
	}
	defer src.stop()

	act := false
	ctx := &Context[M]{iteration: iter, active: &act, as: e.sel}
	ctx.send = func(dst graph.VertexID, m M) {
		e.sent++
		e.charge(1, sim.CostMessageSend)
		if e.opts.DynamicMessages && dst >= lo && dst < hi {
			e.prog.Apply(&e.verts[dst-lo], m)
			e.applied++
			e.inline++
			e.eo.inline.Inc()
			e.charge(1, sim.CostMessageApply)
			if e.sel != nil {
				e.sel.set(dst)
			}
			dirty[int(dst-lo)/chunkSize] = true
			return
		}
		e.bufferedN++
		e.eo.buffered.Inc()
		e.bufferMessage(dst, m)
	}

	br := newBatchReader(src, e.batchBuf)
	for v := c.lo; v < c.hi; v++ {
		deg := c.degs[v-c.lo]
		if e.sel != nil {
			if iter > 0 {
				e.sel.clear(v)
			}
			ctx.cur = v
		}
		adj, err := br.adj(deg)
		if err != nil {
			return fmt.Errorf("core: adjacency stream for vertex %d: %w", v, err)
		}
		e.prog.Update(ctx, v, &e.verts[v-lo], adj)
		e.updates++
		e.charge(1, sim.CostVertexUpdate)
		e.charge(int64(deg), sim.CostEdgeScan)
	}
	e.batchBuf = br.buf
	if act {
		*active = true
	}
	return nil
}

// growRecord extends b by rec bytes, reallocating geometrically.
func growRecord(b []byte, rec int) []byte {
	n := len(b)
	if n+rec <= cap(b) {
		return b[:n+rec]
	}
	newCap := 2 * (n + rec)
	if newCap < 1024 {
		newCap = 1024
	}
	nb := make([]byte, n+rec, newCap)
	copy(nb, b)
	return nb
}
