package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"graphz/internal/checkpoint"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// stripDurability zeroes the fields that legitimately differ between an
// uninterrupted run and a resumed one (how many checkpoints each wrote
// and what they cost); everything else must match exactly.
func stripDurability(r Result) Result {
	r.Checkpoints = 0
	r.CheckpointBytes = 0
	r.CheckpointTime = 0
	r.Stages = obs.StageTimes{}
	return r
}

func ckptDirName(iter int) string { return fmt.Sprintf("ckpt-%010d", iter) }

// latestManifestPath returns the newest checkpoint's MANIFEST file.
func latestManifestPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*", "MANIFEST"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no manifest under %q (err=%v)", dir, err)
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

func newMinLabelEngine(t *testing.T, g *dos.Graph, opts Options) *Engine[minVal, uint32] {
	t.Helper()
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func ckptBaseOpts(g *dos.Graph) Options {
	return Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 64),
		DynamicMessages: true,
		MsgBufferBytes:  64,
	}
}

// A checkpointed run must behave identically to a plain one (checkpoints
// only read engine state) and report what it wrote.
func TestCheckpointedRunMatchesPlain(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 41)
	g := buildDOS(t, edges)
	plainRes, plainVals := runMinLabel(t, g, ckptBaseOpts(g))

	g2 := buildDOS(t, edges)
	opts := ckptBaseOpts(g2)
	opts.Checkpoint = CheckpointOptions{Dir: t.TempDir(), Every: 1}
	ckRes, ckVals := runMinLabel(t, g2, opts)

	if stripDurability(ckRes) != stripDurability(plainRes) {
		t.Errorf("checkpointed result %+v differs from plain %+v", ckRes, plainRes)
	}
	if ckRes.Checkpoints != int64(ckRes.Iterations) {
		t.Errorf("Checkpoints = %d, want one per iteration (%d)", ckRes.Checkpoints, ckRes.Iterations)
	}
	if ckRes.CheckpointBytes <= 0 {
		t.Errorf("CheckpointBytes = %d, want > 0", ckRes.CheckpointBytes)
	}
	for i := range plainVals {
		if plainVals[i] != ckVals[i] {
			t.Fatalf("vertex %d: checkpointed %+v, plain %+v", i, ckVals[i], plainVals[i])
		}
	}
}

// Resuming from every possible mid-run checkpoint must reproduce the
// uninterrupted run exactly: same vertex states, same counters.
func TestResumeMidRunMatchesUninterrupted(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 42)
	gRef := buildDOS(t, edges)
	refRes, refVals := runMinLabel(t, gRef, ckptBaseOpts(gRef))
	if refRes.Iterations < 3 {
		t.Fatalf("graph converged in %d iterations; too few to test mid-run resume", refRes.Iterations)
	}

	for k := 1; k < refRes.Iterations; k++ {
		dir := t.TempDir()
		g1 := buildDOS(t, edges)
		opts := ckptBaseOpts(g1)
		opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Keep: 1 << 20}
		runMinLabel(t, g1, opts)
		// Keep only checkpoints up to iteration k: the state of a run
		// that crashed during iteration k+1.
		st, err := checkpoint.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		iters, err := st.Iterations()
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range iters {
			if it > k {
				os.RemoveAll(filepath.Join(dir, ckptDirName(it)))
			}
		}

		g2 := buildDOS(t, edges)
		ropts := ckptBaseOpts(g2)
		ropts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Resume: true}
		eng := newMinLabelEngine(t, g2, ropts)
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("resume from iteration %d: %v", k, err)
		}
		vals, err := eng.Values()
		if err != nil {
			t.Fatal(err)
		}
		if stripDurability(res) != stripDurability(refRes) {
			t.Errorf("resume from %d: result %+v, uninterrupted %+v", k, res, refRes)
		}
		for i := range refVals {
			if vals[i] != refVals[i] {
				t.Fatalf("resume from %d: vertex %d = %+v, uninterrupted %+v", k, i, vals[i], refVals[i])
			}
		}
	}
}

// Resuming a converged checkpoint restores the final state without
// iterating.
func TestResumeConvergedCheckpoint(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 43)
	dir := t.TempDir()
	g := buildDOS(t, edges)
	opts := ckptBaseOpts(g)
	opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1}
	refRes, refVals := runMinLabel(t, g, opts)

	g2 := buildDOS(t, edges)
	ropts := ckptBaseOpts(g2)
	ropts.Checkpoint = CheckpointOptions{Dir: dir, Resume: true}
	eng := newMinLabelEngine(t, g2, ropts)
	res, err := eng.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdatesRun != refRes.UpdatesRun || res.Iterations != refRes.Iterations {
		t.Errorf("converged resume ran work: %+v vs %+v", res, refRes)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i := range refVals {
		if vals[i] != refVals[i] {
			t.Fatalf("vertex %d: resumed %+v, original %+v", i, vals[i], refVals[i])
		}
	}
}

// Run with Resume set and an empty checkpoint directory starts fresh.
func TestRunResumeEmptyDirStartsFresh(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 44)
	gRef := buildDOS(t, edges)
	refRes, refVals := runMinLabel(t, gRef, ckptBaseOpts(gRef))

	g := buildDOS(t, edges)
	opts := ckptBaseOpts(g)
	opts.Checkpoint = CheckpointOptions{Dir: t.TempDir(), Every: 1, Resume: true}
	res, vals := runMinLabel(t, g, opts)
	if stripDurability(res) != stripDurability(refRes) {
		t.Errorf("fresh-dir resume result %+v, want %+v", res, refRes)
	}
	for i := range refVals {
		if vals[i] != refVals[i] {
			t.Fatalf("vertex %d differs", i)
		}
	}
}

// convergedCheckpointDir runs a checkpointed min-label run to completion
// and returns the edges and checkpoint dir for corruption tests.
func convergedCheckpointDir(t *testing.T, seed uint64) ([]graph.Edge, string) {
	t.Helper()
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, seed)
	dir := t.TempDir()
	g := buildDOS(t, edges)
	opts := ckptBaseOpts(g)
	opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1}
	runMinLabel(t, g, opts)
	return edges, dir
}

// resumeWith builds a fresh engine over edges and calls Resume against
// dir, returning the error (typed, never a panic).
func resumeWith(t *testing.T, edges []graph.Edge, dir, name string) error {
	t.Helper()
	g := buildDOS(t, edges)
	opts := ckptBaseOpts(g)
	opts.Name = name
	opts.Checkpoint = CheckpointOptions{Dir: dir, Resume: true}
	eng := newMinLabelEngine(t, g, opts)
	_, err := eng.Resume()
	return err
}

func TestResumeNoCheckpoint(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 45)
	if err := resumeWith(t, edges, t.TempDir(), ""); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("Resume on empty dir = %v, want ErrNoCheckpoint", err)
	}
}

func TestResumeTruncatedManifest(t *testing.T) {
	edges, dir := convergedCheckpointDir(t, 46)
	path := latestManifestPath(t, dir)
	if err := os.WriteFile(path, []byte("GZ"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := resumeWith(t, edges, dir, ""); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Fatalf("Resume with truncated manifest = %v, want ErrTruncated", err)
	}
}

func TestResumeManifestCRCMismatch(t *testing.T) {
	edges, dir := convergedCheckpointDir(t, 47)
	path := latestManifestPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	if err := resumeWith(t, edges, dir, ""); !errors.Is(err, checkpoint.ErrCRCMismatch) {
		t.Fatalf("Resume with corrupt manifest = %v, want ErrCRCMismatch", err)
	}
}

func TestResumeVersionFromTheFuture(t *testing.T) {
	edges, dir := convergedCheckpointDir(t, 48)
	path := latestManifestPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(raw[6:], checkpoint.FormatVersion+1)
	os.WriteFile(path, raw, 0o644)
	if err := resumeWith(t, edges, dir, ""); !errors.Is(err, checkpoint.ErrVersionTooNew) {
		t.Fatalf("Resume with future version = %v, want ErrVersionTooNew", err)
	}
}

func TestResumeLayoutMismatch(t *testing.T) {
	_, dir := convergedCheckpointDir(t, 49)
	// A different graph: same generator family, different seed and size.
	other := gen.RMAT(8, 1700, gen.NaturalRMAT, 50)
	if err := resumeWith(t, other, dir, ""); !errors.Is(err, checkpoint.ErrLayoutMismatch) {
		t.Fatalf("Resume against different graph = %v, want ErrLayoutMismatch", err)
	}
}

func TestResumeConfigMismatch(t *testing.T) {
	edges, dir := convergedCheckpointDir(t, 51)
	if err := resumeWith(t, edges, dir, "other-engine"); !errors.Is(err, checkpoint.ErrConfigMismatch) {
		t.Fatalf("Resume with different engine name = %v, want ErrConfigMismatch", err)
	}
}

// Corrupting a section (not the manifest) must also fail with a typed
// error at restore time.
func TestResumeSectionCorruption(t *testing.T) {
	edges, dir := convergedCheckpointDir(t, 52)
	path := filepath.Dir(latestManifestPath(t, dir))
	vstate := filepath.Join(path, "vstate")
	raw, err := os.ReadFile(vstate)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	os.WriteFile(vstate, raw, 0o644)
	if err := resumeWith(t, edges, dir, ""); !errors.Is(err, checkpoint.ErrCRCMismatch) {
		t.Fatalf("Resume with corrupt vstate = %v, want ErrCRCMismatch", err)
	}
}

// Checkpoint observability: counters must reflect the run.
func TestCheckpointObsCounters(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 53)
	dir := t.TempDir()
	g := buildDOS(t, edges)
	reg := obs.NewRegistry()
	opts := ckptBaseOpts(g)
	opts.Obs = reg
	opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1}
	res, _ := runMinLabel(t, g, opts)
	if got := reg.CounterValue("graphz_checkpoint_total"); got != res.Checkpoints {
		t.Errorf("graphz_checkpoint_total = %d, result says %d", got, res.Checkpoints)
	}
	if got := reg.CounterValue("graphz_checkpoint_bytes_total"); got != res.CheckpointBytes {
		t.Errorf("graphz_checkpoint_bytes_total = %d, result says %d", got, res.CheckpointBytes)
	}

	g2 := buildDOS(t, edges)
	reg2 := obs.NewRegistry()
	ropts := ckptBaseOpts(g2)
	ropts.Obs = reg2
	ropts.Checkpoint = CheckpointOptions{Dir: dir, Resume: true}
	eng := newMinLabelEngine(t, g2, ropts)
	if _, err := eng.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := reg2.CounterValue("graphz_restore_total"); got != 1 {
		t.Errorf("graphz_restore_total = %d, want 1", got)
	}
}

// The engine keeps Keep checkpoints on disk, not one per iteration.
func TestCheckpointPruningDuringRun(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 54)
	dir := t.TempDir()
	g := buildDOS(t, edges)
	opts := ckptBaseOpts(g)
	opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Keep: 2}
	res, _ := runMinLabel(t, g, opts)
	if res.Iterations <= 2 {
		t.Skipf("run converged in %d iterations; pruning not exercised", res.Iterations)
	}
	st, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	iters, err := st.Iterations()
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 2 {
		t.Fatalf("kept %v, want the newest 2", iters)
	}
	if iters[1] != res.Iterations {
		t.Fatalf("newest checkpoint at iteration %d, run finished at %d", iters[1], res.Iterations)
	}
}

// Checkpoint IO must charge the modeled clock on costed devices, so the
// bench overhead column reflects modeled time, not just wall time.
func TestCheckpointChargesModeledClock(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 55)
	run := func(ckpt bool) int64 {
		dev := storage.NewDevice(storage.HDD, storage.Options{})
		if err := graph.WriteEdges(dev, "raw", edges); err != nil {
			t.Fatal(err)
		}
		g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
		if err != nil {
			t.Fatal(err)
		}
		clock := sim.NewClock()
		dev.SetClock(clock)
		opts := ckptBaseOpts(g)
		opts.Clock = clock
		if ckpt {
			opts.Checkpoint = CheckpointOptions{Dir: t.TempDir(), Every: 1}
		}
		runMinLabel(t, g, opts)
		return int64(clock.Total())
	}
	plain, ck := run(false), run(true)
	if ck <= plain {
		t.Fatalf("modeled time with checkpoints (%d ns) not above plain (%d ns)", ck, plain)
	}
}
