package core

import (
	"fmt"
	"math/bits"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

// Selective block scheduling (Options.SelectiveScheduling), the GraphMP
// observation applied to GraphZ: converging algorithms spend their tail
// iterations touching a handful of vertices, yet a streaming engine
// re-reads every adjacency block anyway. The engine keeps one bit per
// vertex — set when a message is applied to the vertex or its update
// calls MarkActive, cleared the moment its update runs (except during
// iteration 0: the Init pass conventionally broadcasts and ignores
// pending messages, so its bits survive into iteration 1, where the
// first real update acts on them) — and, per partition per iteration,
// derives per-block activity from the bitmap.
// Degree-Ordered Storage makes that derivation arithmetic: a partition's
// adjacency is a contiguous entry range, so "does block b contain an
// active vertex's edges" is a bitmap range test over a contiguous new-ID
// range. Blocks with no active vertex are never read; when the active
// density reaches a threshold the partition falls back to full streaming
// (dense iterations are faster streamed, as GraphMP observes). See
// DESIGN.md §9.

// entriesPerBlock is the scheduling granularity in adjacency entries:
// one device block.
const entriesPerBlock = int64(storage.DefaultBlockSize / 4)

// defaultSelectiveDensity is the active-vertex density at or above which
// a partition streams fully instead of scheduling blocks.
const defaultSelectiveDensity = 0.25

// activeSet is a dense bitmap over vertex IDs [base, base+n) with a
// maintained population count. The engine's global set uses base 0; the
// parallel Worker's speculative chunks use private overlays based at
// their chunk start.
type activeSet struct {
	base  graph.VertexID
	n     int
	words []uint64
	count int64
}

// newActiveSet returns an all-ones set over [0, n): every vertex is
// schedulable until its first update runs (iteration 0 is the Init
// pass, which must visit everyone).
func newActiveSet(n int) *activeSet {
	s := newEmptyActiveSet(0, n)
	s.fillAll()
	return s
}

// fillAll sets every bit in [base, base+n).
func (s *activeSet) fillAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if tail := uint(s.n % 64); tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (uint64(1) << tail) - 1
	}
	s.count = int64(s.n)
}

// newEmptyActiveSet returns an all-zeros set over [base, base+n).
func newEmptyActiveSet(base graph.VertexID, n int) *activeSet {
	return &activeSet{base: base, n: n, words: make([]uint64, (n+63)/64)}
}

func (s *activeSet) set(v graph.VertexID) {
	i := int(v - s.base)
	w, b := i/64, uint(i%64)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

func (s *activeSet) clear(v graph.VertexID) {
	i := int(v - s.base)
	w, b := i/64, uint(i%64)
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.count--
	}
}

func (s *activeSet) get(v graph.VertexID) bool {
	i := int(v - s.base)
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

// countRange returns the number of set bits in [lo, hi).
func (s *activeSet) countRange(lo, hi graph.VertexID) int64 {
	var total int64
	s.eachWord(lo, hi, func(w uint64) bool {
		total += int64(bits.OnesCount64(w))
		return true
	})
	return total
}

// anyInRange reports whether any bit in [lo, hi) is set.
func (s *activeSet) anyInRange(lo, hi graph.VertexID) bool {
	any := false
	s.eachWord(lo, hi, func(w uint64) bool {
		if w != 0 {
			any = true
			return false
		}
		return true
	})
	return any
}

// eachWord visits the set's words masked to [lo, hi), stopping early
// when fn returns false.
func (s *activeSet) eachWord(lo, hi graph.VertexID, fn func(w uint64) bool) {
	i, j := int(lo-s.base), int(hi-s.base)
	if i >= j {
		return
	}
	first, last := i/64, (j-1)/64
	for w := first; w <= last; w++ {
		word := s.words[w]
		if w == first {
			word &= ^uint64(0) << uint(i%64)
		}
		if w == last {
			if tail := uint(j % 64); tail != 0 {
				word &= (uint64(1) << tail) - 1
			}
		}
		if !fn(word) {
			return
		}
	}
}

// copyFrom overwrites dst bits [lo, hi) with src's — the commit step
// that installs a speculative chunk's private overlay into the global
// set, exactly as the sequential clear-on-update/set-on-apply sequence
// would have left them.
func (s *activeSet) copyFrom(src *activeSet, lo, hi graph.VertexID) {
	for v := lo; v < hi; v++ {
		if src.get(v) {
			s.set(v)
		} else {
			s.clear(v)
		}
	}
}

// marshal serializes the bitmap words little-endian for checkpointing.
func (s *activeSet) marshal() []byte {
	out := make([]byte, len(s.words)*8)
	for i, w := range s.words {
		for b := 0; b < 8; b++ {
			out[i*8+b] = byte(w >> (8 * uint(b)))
		}
	}
	return out
}

// unmarshalActiveSet restores a checkpointed bitmap over [0, n),
// recomputing the population count.
func unmarshalActiveSet(data []byte, n int) (*activeSet, error) {
	s := newEmptyActiveSet(0, n)
	if len(data) != len(s.words)*8 {
		return nil, fmt.Errorf("core: active-set section is %d bytes, %d vertices need %d", len(data), n, len(s.words)*8)
	}
	for i := range s.words {
		var w uint64
		for b := 0; b < 8; b++ {
			w |= uint64(data[i*8+b]) << (8 * uint(b))
		}
		s.words[i] = w
		s.count += int64(bits.OnesCount64(w))
	}
	return s, nil
}

// selRun is a maximal scheduled range of consecutive vertices and the
// adjacency entry span their updates consume.
type selRun struct {
	lo, hi           graph.VertexID // vertex range [lo, hi)
	startOff, endOff int64          // entry offsets [startOff, endOff)
}

// selSchedule is one partition's worker plan for one iteration.
type selSchedule struct {
	runs []selRun
	// streamAll marks a dense partition that reads its whole entry
	// range as a single run (the GraphMP fallback).
	streamAll bool
	// blocksTotal is the partition's adjacency block count; blocksRead
	// is how many the schedule touches. Their difference is the saved IO.
	blocksTotal int64
	blocksRead  int64
	activeCount int64
}

// planSelective computes the block schedule for partition [lo, hi),
// whose adjacency occupies entries starting at offset start with the
// given per-vertex degrees. epb is the block size in entries; a
// partition whose active density (set bits / vertices) is at or above
// threshold streams fully.
//
// Scheduling is block-granular: a block holding any active vertex's
// edges is read whole, and every vertex whose entries the schedule
// reads is updated — the extra updates are no-ops for frontier-safe
// programs (see Options.SelectiveScheduling). Active zero-degree
// vertices are scheduled too (their updates consume no entries).
func planSelective(as *activeSet, lo, hi graph.VertexID, start int64, degs []uint32, epb int64, threshold float64) selSchedule {
	count := int64(hi - lo)
	var entries int64
	for _, d := range degs {
		entries += int64(d)
	}
	sched := selSchedule{
		blocksTotal: (entries + epb - 1) / epb,
		activeCount: as.countRange(lo, hi),
	}
	if sched.activeCount == 0 {
		return sched
	}
	if float64(sched.activeCount) >= threshold*float64(count) {
		sched.streamAll = true
		sched.runs = []selRun{{lo: lo, hi: hi, startOff: start, endOff: start + entries}}
		sched.blocksRead = sched.blocksTotal
		return sched
	}

	// Pass 1: mark the blocks an active vertex's entry span touches.
	activeBlk := make([]bool, sched.blocksTotal)
	off := start
	for i := int64(0); i < count; i++ {
		d := int64(degs[i])
		if d > 0 && as.get(lo+graph.VertexID(i)) {
			first := (off - start) / epb
			last := (off + d - 1 - start) / epb
			for b := first; b <= last; b++ {
				activeBlk[b] = true
			}
		}
		off += d
	}

	// Pass 2: a vertex is scheduled iff it is active itself or shares a
	// marked block; consecutive scheduled vertices merge into runs.
	off = start
	for i := int64(0); i < count; i++ {
		v := lo + graph.VertexID(i)
		d := int64(degs[i])
		inc := as.get(v)
		if !inc && d > 0 {
			for b := (off - start) / epb; b <= (off+d-1-start)/epb && !inc; b++ {
				inc = activeBlk[b]
			}
		}
		if inc {
			if n := len(sched.runs); n > 0 && sched.runs[n-1].hi == v {
				sched.runs[n-1].hi = v + 1
				sched.runs[n-1].endOff = off + d
			} else {
				sched.runs = append(sched.runs, selRun{lo: v, hi: v + 1, startOff: off, endOff: off + d})
			}
		}
		off += d
	}

	// Blocks read: distinct blocks under the runs' entry spans. Runs may
	// begin or end mid-block (a scheduled vertex straddling an unmarked
	// block is read whole), so count from the spans, not the marks.
	last := int64(-1)
	for _, r := range sched.runs {
		if r.endOff == r.startOff {
			continue
		}
		first, end := (r.startOff-start)/epb, (r.endOff-1-start)/epb
		if first <= last {
			first = last + 1
		}
		if end >= first {
			sched.blocksRead += end - first + 1
			last = end
		}
	}
	return sched
}

// blocksIn returns the block count of entry range [start, end) at epb
// entries per block.
func blocksIn(start, end, epb int64) int64 {
	return (end - start + epb - 1) / epb
}

// memRunsStream serves adjacency entries for a schedule's runs from
// resident cache sub-slices, in run order.
type memRunsStream struct {
	segs [][]byte
	cur  memEntryStream
}

func (s *memRunsStream) next() (graph.VertexID, error) {
	for s.cur.pos >= len(s.cur.data) {
		if len(s.segs) == 0 {
			return 0, fmt.Errorf("core: cached adjacency exhausted early")
		}
		s.cur = memEntryStream{data: s.segs[0]}
		s.segs = s.segs[1:]
	}
	return s.cur.next()
}

// read bulk-parses entries from the current run segment (batchSource).
func (s *memRunsStream) read(dst []graph.VertexID) (int, error) {
	for s.cur.pos >= len(s.cur.data) {
		if len(s.segs) == 0 {
			return 0, fmt.Errorf("core: cached adjacency exhausted early")
		}
		s.cur = memEntryStream{data: s.segs[0]}
		s.segs = s.segs[1:]
	}
	return s.cur.read(dst)
}

func (s *memRunsStream) stop() {}
