package core

import (
	"fmt"
	"io"
	"testing"

	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// benchGraph builds one multi-partition DOS graph shared by the engine
// benchmarks.
func benchGraph(b *testing.B) *dos.Graph {
	b.Helper()
	edges := gen.RMAT(12, 40000, gen.NaturalRMAT, 7)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		b.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchRun(b *testing.B, g *dos.Graph, reg *obs.Registry, tr *obs.Tracer) {
	b.Helper()
	opts := Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 4096),
		DynamicMessages: true,
		MsgBufferBytes:  4096,
		MaxIterations:   3,
		Obs:             reg,
		Trace:           tr,
	}
	for i := 0; i < b.N; i++ {
		eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		eng.Cleanup()
	}
}

// BenchmarkEngine is the baseline for the observability layer's disabled
// overhead: no registry, no tracer — the engine must take the no-op fast
// path everywhere.
func BenchmarkEngine(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	benchRun(b, g, nil, nil)
}

// BenchmarkEngineObserved is the same run with a registry and a tracer
// writing to io.Discard — the cost of full instrumentation.
func BenchmarkEngineObserved(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	benchRun(b, g, obs.NewRegistry(), obs.NewTracer(io.Discard))
}

// BenchmarkEngineSelective runs min-label to convergence with selective
// block scheduling off and on: the sparse tail iterations are where the
// bitmap's bookkeeping must pay for itself in skipped block reads.
func BenchmarkEngineSelective(b *testing.B) {
	g := benchGraph(b)
	for _, sel := range []bool{false, true} {
		b.Run(fmt.Sprintf("selective=%v", sel), func(b *testing.B) {
			opts := Options{
				MemoryBudget:        budgetForPartitions(g, 8, 4, 4096),
				DynamicMessages:     true,
				MsgBufferBytes:      4096,
				SelectiveScheduling: sel,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				eng.Cleanup()
			}
		})
	}
}

// combinableRank is prProg with the sum Combine hook: a PageRank-style
// program that spills every iteration, so the sorted drain and the
// Combine fold have steady work (min-label converges and starves them).
type combinableRank struct{ prProg }

func (combinableRank) Combine(a, b float64) float64 { return a + b }

// BenchmarkEngineSortedSpill measures the spill drain on a high-fan-in
// Zipf graph — the sort-reduce target case — across the arrival-order
// path, the sorted merge, and the sorted merge with the Combine fold.
func BenchmarkEngineSortedSpill(b *testing.B) {
	edges := gen.Zipf(16000, 160_000, 1.05, 7)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		b.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		mod  func(*Options)
	}{
		{"unsorted", func(*Options) {}},
		{"sorted", func(o *Options) { o.SortedSpill = true }},
		{"combine", func(o *Options) { o.Combine = true }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := Options{
				MemoryBudget:    budgetForPartitions(g, 16, 4, 4096),
				DynamicMessages: true,
				MsgBufferBytes:  4096,
				MaxIterations:   3,
			}
			mode.mod(&opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := New[prVal, float64](DOSLayout(g), combinableRank{}, prCodec{}, f64Codec{}, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				eng.Cleanup()
			}
		})
	}
}

// BenchmarkEngineBatchWorker pins the batch adjacency dispatch: the
// same run as BenchmarkEngine but with the parallel Worker speculating
// over chunks, so both the engine-goroutine batch reader (re-execution)
// and the per-chunk readers are on the measured path. The CI baseline
// holds this and its alloc count — a regression here means a dispatch
// path fell back to per-entry next() or re-grew its buffer per vertex.
func BenchmarkEngineBatchWorker(b *testing.B) {
	g := benchGraph(b)
	opts := Options{
		MemoryBudget:      budgetForPartitions(g, 8, 4, 4096),
		DynamicMessages:   true,
		MsgBufferBytes:    4096,
		MaxIterations:     3,
		WorkerParallelism: 4,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		eng.Cleanup()
	}
}

// BenchmarkWorkerParallel measures the chunked Worker on the
// compute-heavy, message-free program where speculation never loses its
// bet — the intended speedup case for Options.WorkerParallelism.
func BenchmarkWorkerParallel(b *testing.B) {
	g := benchGraph(b)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := Options{
				MemoryBudget:      64 << 20,
				DynamicMessages:   true,
				MaxIterations:     3,
				WorkerParallelism: w,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := New[mixVal, uint32](DOSLayout(g), heavyProg{rounds: 64}, mixCodec{}, graph.Uint32Codec{}, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				eng.Cleanup()
			}
		})
	}
}

// BenchmarkWorkerParallelPageRank is the degradation case: dense forward
// dynamic messages invalidate most chunks, so the parallel Worker should
// track (not catastrophically trail) the sequential engine.
func BenchmarkWorkerParallelPageRank(b *testing.B) {
	g := benchGraph(b)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := Options{
				MemoryBudget:      budgetForPartitions(g, 16, 4, 4096),
				DynamicMessages:   true,
				MsgBufferBytes:    4096,
				MaxIterations:     3,
				WorkerParallelism: w,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := New[prVal, float64](DOSLayout(g), prProg{}, prCodec{}, f64Codec{}, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				eng.Cleanup()
			}
		})
	}
}
