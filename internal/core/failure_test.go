package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// TestEngineSurfacesDeviceFull injects a capacity failure: the device
// fills up mid-run while the engine spills messages, and the run must
// fail with ErrNoSpace instead of silently dropping messages.
func TestEngineSurfacesDeviceFull(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 91)
	// Convert on an unlimited staging device, then copy onto a small
	// one so conversion temp files do not interfere with the test.
	staging := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(staging, "raw", edges); err != nil {
		t.Fatal(err)
	}
	if _, err := dos.Convert(dos.ConvertConfig{Dev: staging, RemoveInput: true}, "raw", "g"); err != nil {
		t.Fatal(err)
	}
	used := staging.Used()

	// A capacity just above the converted graph: message spills hit the
	// wall during the first partition's worker loop, before the vertex
	// state is ever flushed.
	tight := storage.NewDevice(storage.SSD, storage.Options{Capacity: used + 512})
	for _, name := range staging.List() {
		data, err := storage.ReadAllFile(staging, name)
		if err != nil {
			t.Fatal(err)
		}
		if err := storage.WriteAll(tight, name, data); err != nil {
			t.Fatal(err)
		}
	}
	g2, err := dos.Load(tight, "g")
	if err != nil {
		t.Fatal(err)
	}

	budget := int64(pipelineOverheadBytes) + g2.IndexBytes() + int64(g2.NumVertices)*8/4 + 8*64
	reg := obs.NewRegistry()
	eng, err := New[minVal, uint32](DOSLayout(g2), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumPartitions() < 2 {
		t.Skip("budget did not force partitioning; nothing spills")
	}
	_, err = eng.Run()
	if err == nil {
		t.Fatal("run on a full device should fail")
	}
	if !errors.Is(err, storage.ErrNoSpace) {
		t.Errorf("error = %v, want ErrNoSpace in chain", err)
	}
	// Every spill failure lands in the counter, not just the first one
	// that aborts the run.
	errCount := reg.CounterValue("messages_spill_errors")
	if errCount < 1 {
		t.Error("messages_spill_errors counter not incremented")
	}
	if errCount != eng.spillErrs {
		t.Errorf("counter = %d, engine saw %d", errCount, eng.spillErrs)
	}
	// When later failures were dropped behind the first, the error text
	// says exactly how many (grammatical number included): the first
	// failure is the error itself, so errCount-1 were dropped.
	if errCount > 1 {
		noun := "errors"
		if errCount == 2 {
			noun = "error"
		}
		want := fmt.Sprintf("(%d later spill %s dropped)", errCount-1, noun)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}
}

// TestWrapRunErrMessage pins wrapRunErr's exact annotation: no suffix for
// a single failure, singular for one dropped, plural beyond — and never
// the historical off-by-grammar "(1 later spill errors dropped)".
func TestWrapRunErrMessage(t *testing.T) {
	base := errors.New("boom")
	for _, tc := range []struct {
		spillErrs int64
		want      string
	}{
		{1, "boom"},
		{2, "boom (1 later spill error dropped)"},
		{3, "boom (2 later spill errors dropped)"},
		{5, "boom (4 later spill errors dropped)"},
	} {
		e := &Engine[minVal, uint32]{runErr: base, spillErrs: tc.spillErrs}
		err := e.wrapRunErr()
		if got := err.Error(); got != tc.want {
			t.Errorf("spillErrs=%d: message = %q, want %q", tc.spillErrs, got, tc.want)
		}
		if !errors.Is(err, base) {
			t.Errorf("spillErrs=%d: wrapped error lost its cause", tc.spillErrs)
		}
	}
}

// TestEngineZeroVertexGraph runs the engine over an empty graph.
func TestEngineZeroVertexGraph(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", nil); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdatesRun != 0 {
		t.Errorf("updates on empty graph = %d", res.UpdatesRun)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 {
		t.Errorf("values on empty graph = %v", vals)
	}
}

// TestEngineSingleVertexSelfLoop exercises the smallest dynamic-message
// cycle: one vertex messaging itself.
func TestEngineSingleVertexSelfLoop(t *testing.T) {
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", []graph.Edge{{Src: 7, Dst: 7}}); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	res, vals := runMinLabel(t, g, Options{MemoryBudget: 64 << 20, DynamicMessages: true})
	if len(vals) != 1 || vals[0].label != 0 {
		t.Errorf("self-loop result = %+v", vals)
	}
	if res.MessagesApplied == 0 {
		t.Error("self-loop should apply at least one dynamic message")
	}
}
