package core

import (
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/graphchi"
)

// chiMinProgram is a GraphChi-style min-label propagation program (the
// same fixpoint as the minLabel test program) used to validate the
// Section IV-E emulation against a known answer.
type chiMinProgram struct{}

func (chiMinProgram) Init(id graph.VertexID, inDeg, outDeg uint32) uint32 { return uint32(id) }

func (chiMinProgram) InitEdge(src, dst graph.VertexID) uint32 { return 0xFFFFFFFF }

func (chiMinProgram) Update(ctx *graphchi.Context, id graph.VertexID, v *uint32, in, out []graphchi.EdgeRef[uint32]) {
	newLabel := *v
	for _, e := range in {
		if *e.Val < newLabel {
			newLabel = *e.Val
		}
	}
	changed := newLabel < *v
	*v = newLabel
	if changed || ctx.Iteration() == 0 {
		if changed {
			ctx.MarkActive()
		}
		for _, e := range out {
			*e.Val = *v
		}
	}
}

func TestEmulateGraphChiMinLabels(t *testing.T) {
	edges := gen.RMAT(8, 1200, gen.NaturalRMAT, 95)
	g := buildDOS(t, edges)
	layout := DOSLayout(g)
	inDeg, err := InDegrees(layout)
	if err != nil {
		t.Fatal(err)
	}
	res, vals, err := EmulateGraphChi[uint32, uint32](layout, chiMinProgram{},
		graph.Uint32Codec{}, graph.Uint32Codec{}, inDeg,
		Options{MemoryBudget: 256 << 20, DynamicMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	want := referenceMinLabels(g.NumVertices, relabeledEdges(t, g, edges))
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vertex %d = %d, want %d", i, vals[i], want[i])
		}
	}
}

// chiInsetProgram is deliberately NON-commutative and NON-associative: at
// every iteration past the warm-up it records a hash that depends on the
// *order-sensitive* fold of its in-edges sorted by neighbor ID. It checks
// that an update sees exactly one in-edge per true in-neighbor.
type chiInsetProgram struct {
	inNeighbors map[graph.VertexID][]graph.VertexID
	t           *testing.T
}

func (p *chiInsetProgram) Init(id graph.VertexID, inDeg, outDeg uint32) uint32 { return uint32(id) }

func (p *chiInsetProgram) InitEdge(src, dst graph.VertexID) uint32 { return uint32(src) }

func (p *chiInsetProgram) Update(ctx *graphchi.Context, id graph.VertexID, v *uint32, in, out []graphchi.EdgeRef[uint32]) {
	if ctx.Iteration() >= 1 {
		// After warm-up every in-neighbor has shipped exactly one
		// edge: check the multiset.
		want := p.inNeighbors[id]
		if len(in) != len(want) {
			p.t.Errorf("vertex %d at iter %d sees %d in-edges, want %d",
				id, ctx.Iteration(), len(in), len(want))
		}
		sortEdgeRefs(in)
		for i := range want {
			if i < len(in) && in[i].Neighbor != want[i] {
				p.t.Errorf("vertex %d in-edge %d from %d, want %d",
					id, i, in[i].Neighbor, want[i])
			}
		}
		// Order-sensitive fold (rotate-and-xor is not commutative).
		h := uint32(2166136261)
		for _, e := range in {
			h = (h<<5 | h>>27) ^ *e.Val
		}
		*v = h
	}
	for _, e := range out {
		*e.Val = uint32(id)
	}
	if ctx.Iteration() < 3 {
		ctx.MarkActive()
	}
}

func TestEmulateNonCommutativeGather(t *testing.T) {
	edges := gen.ErdosRenyi(80, 400, 96)
	g := buildDOS(t, edges)
	layout := DOSLayout(g)
	inDeg, err := InDegrees(layout)
	if err != nil {
		t.Fatal(err)
	}
	// True in-neighbor lists in the relabeled space (sorted, with
	// duplicates for parallel edges).
	rel := relabeledEdges(t, g, edges)
	inN := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range rel {
		inN[e.Dst] = append(inN[e.Dst], e.Src)
	}
	for _, l := range inN {
		sortIDs(l)
	}
	prog := &chiInsetProgram{inNeighbors: inN, t: t}
	_, vals, err := EmulateGraphChi[uint32, uint32](layout, prog,
		graph.Uint32Codec{}, graph.Uint32Codec{}, inDeg,
		Options{MemoryBudget: 256 << 20, DynamicMessages: true, MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic across runs.
	prog2 := &chiInsetProgram{inNeighbors: inN, t: t}
	_, vals2, err := EmulateGraphChi[uint32, uint32](layout, prog2,
		graph.Uint32Codec{}, graph.Uint32Codec{}, inDeg,
		Options{MemoryBudget: 256 << 20, DynamicMessages: true, MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if vals[i] != vals2[i] {
			t.Fatal("emulated non-commutative program not deterministic")
		}
	}
}

func sortIDs(a []graph.VertexID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestInDegrees(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 1, Dst: 0}}
	g := buildDOS(t, edges)
	layout := DOSLayout(g)
	inDeg, err := InDegrees(layout)
	if err != nil {
		t.Fatal(err)
	}
	o2n, err := g.OldToNew()
	if err != nil {
		t.Fatal(err)
	}
	if inDeg[o2n[1]] != 2 || inDeg[o2n[0]] != 1 || inDeg[o2n[2]] != 0 {
		t.Errorf("in-degrees = %v", inDeg)
	}
}

// TestEmulatedCodecRoundTrip checks the variable-length frame encoding.
func TestEmulatedCodecRoundTrip(t *testing.T) {
	c := emulatedCodec[uint32, uint32]{
		vcodec: graph.Uint32Codec{}, ecodec: graph.Uint32Codec{}, maxInDeg: 3,
	}
	v := EmulatedVertex[uint32, uint32]{Value: 42}
	p := &emulatedProgram[uint32, uint32]{}
	_ = p
	// Append two edges through Apply to populate the internal slices.
	var prog emulatedProgram[uint32, uint32]
	prog.Apply(&v, emulatedMsg[uint32]{Neighbor: 7, Val: 100})
	prog.Apply(&v, emulatedMsg[uint32]{Neighbor: 9, Val: 200})

	buf := make([]byte, c.Size())
	c.Encode(buf, v)
	got := c.Decode(buf)
	if got.Value != 42 || len(got.Edges) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Edges[0].Neighbor != 7 || *got.Edges[0].Val != 100 ||
		got.Edges[1].Neighbor != 9 || *got.Edges[1].Val != 200 {
		t.Errorf("edges corrupted: %+v", got.Edges)
	}
}
