package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"graphz/internal/checkpoint"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// CheckpointOptions enables iteration-boundary checkpointing (see
// docs/DURABILITY.md). Checkpoints go to a host-filesystem directory —
// the durable volume of the deployment — while the graph and runtime
// files stay on the simulated device.
type CheckpointOptions struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every checkpoints after every Nth completed iteration (and always
	// after the final one); <= 0 means every iteration.
	Every int
	// Keep bounds how many checkpoints are retained; <= 0 keeps 2, so
	// one damaged-at-rest checkpoint never strands the run.
	Keep int
	// Resume makes Run continue from the newest complete checkpoint in
	// Dir when one exists (and start fresh when the directory is empty
	// or absent). A corrupt checkpoint is an error, never a silent
	// restart. Engine.Resume is the explicit form.
	Resume bool
}

func (c CheckpointOptions) enabled() bool { return c.Dir != "" }

func (c CheckpointOptions) every() int {
	if c.Every <= 0 {
		return 1
	}
	return c.Every
}

func (c CheckpointOptions) keep() int {
	if c.Keep <= 0 {
		return 2
	}
	return c.Keep
}

// initCheckpointing opens the checkpoint store and fingerprints the
// layout. Requires the layout index to be resident (DegreeOf).
func (e *Engine[V, M]) initCheckpointing() error {
	if !e.opts.Checkpoint.enabled() {
		return nil
	}
	st, err := checkpoint.NewStore(e.opts.Checkpoint.Dir)
	if err != nil {
		return err
	}
	e.ckStore = st
	e.layoutHash = e.computeLayoutHash()
	return nil
}

// computeLayoutHash fingerprints the graph layout a checkpoint is bound
// to: global shape plus sampled degrees. DOS conversion is deterministic,
// so rebuilding the same input graph after a crash reproduces the hash;
// a different graph (or a different layout of the same graph) does not.
func (e *Engine[V, M]) computeLayoutHash() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(b[:], x)
		h.Write(b[:])
	}
	put(uint64(e.layout.NumVertices()))
	put(uint64(e.layout.NumEdges()))
	put(uint64(e.layout.IndexBytes()))
	put(uint64(e.vsize))
	put(uint64(e.msize))
	// The adjacency order differs between fixed-entry files (v1 edge
	// order) and block-encoded ones (v2's ascending sort), so a v1
	// checkpoint must not resume over a v2 graph or vice versa. The two
	// v2 codecs share an order — and a hash.
	if e.adj.FixedEntries() {
		put(1)
	} else {
		put(2)
	}
	if n := e.layout.NumVertices(); n > 0 {
		stride := n/64 + 1
		for v := 0; v < n; v += stride {
			put(uint64(v)<<32 | uint64(e.layout.DegreeOf(graph.VertexID(v))))
		}
	}
	return h.Sum64()
}

// checkpointCounters snapshots the cumulative counters for the manifest.
func (e *Engine[V, M]) checkpointCounters() checkpoint.Counters {
	return checkpoint.Counters{
		Sent:          e.sent,
		Applied:       e.applied,
		Inline:        e.inline,
		Buffered:      e.bufferedN,
		Spilled:       e.spilled,
		Updates:       e.updates,
		BlocksScanned: e.blocksScanned,
		BlocksSkipped: e.blocksSkipped,
		Combined:      e.combined,
		MergePasses:   e.mergePasses,
		SpillSaved:    e.spillSaved,
	}
}

// activeSectionName is the checkpoint section holding the selective
// scheduler's bitmap; written only when selective scheduling is on.
const activeSectionName = "activeset"

// msgSectionName names the checkpoint section holding partition p's
// spilled-message file; tailSectionName holds its in-memory buffer.
// They are kept separate so a resumed run reproduces not just the
// message stream (file ++ tail, in send order) but the exact buffer
// occupancy — and with it every future spill boundary, keeping the
// resumed run's counters identical to the uninterrupted run's.
func msgSectionName(p int) string  { return fmt.Sprintf("msgs.%d", p) }
func tailSectionName(p int) string { return fmt.Sprintf("tail.%d", p) }

// runsSectionName holds partition p's sorted-run lengths (8-byte LE
// each); written only under Options.SortedSpill, so a resumed sorted run
// merge-drains the restored message file along the same run boundaries —
// keeping the resumed operation sequence byte-identical. A checkpoint
// without it (from an unsorted run) makes the sorted drain replay that
// backlog in arrival order once, which is equally safe.
func runsSectionName(p int) string { return fmt.Sprintf("runs.%d", p) }

// marshalRuns encodes run byte-lengths as 8-byte little-endian values.
func marshalRuns(runs []int64) []byte {
	out := make([]byte, 8*len(runs))
	for i, n := range runs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(n))
	}
	return out
}

// unmarshalRuns decodes a runs section.
func unmarshalRuns(data []byte) ([]int64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("runs section is %d bytes, want a multiple of 8", len(data))
	}
	runs := make([]int64, len(data)/8)
	for i := range runs {
		n := int64(binary.LittleEndian.Uint64(data[8*i:]))
		if n <= 0 {
			return nil, fmt.Errorf("run %d has non-positive length %d", i, n)
		}
		runs[i] = n
	}
	return runs, nil
}

// writeCheckpoint persists the engine state after iteration `iters`
// completed: vertex states, each partition's spilled-message file, and
// each partition's in-memory buffer tail.
func (e *Engine[V, M]) writeCheckpoint(iters int, done bool) error {
	start := time.Now()
	var vstate []byte
	if e.sem {
		// SEM keeps the states pinned in memory and only flushes the
		// vstate file at the end of the run — encode the checkpoint's
		// copy from the resident array, not the (stale) device file.
		vstate = make([]byte, len(e.verts)*e.vsize)
		for i := range e.verts {
			e.vcodec.Encode(vstate[i*e.vsize:], e.verts[i])
		}
	} else {
		var err error
		vstate, err = storage.ReadAllFile(e.dev, e.vstateFile())
		if err != nil {
			return fmt.Errorf("core: checkpoint at iteration %d: reading vertex states: %w", iters, err)
		}
	}
	secs := make([]checkpoint.SectionData, 0, 2+2*len(e.msgBufs))
	secs = append(secs, checkpoint.SectionData{Name: "vstate", Data: vstate})
	if e.sel != nil {
		// The bitmap makes the resumed run's block schedule — and so its
		// operation sequence — identical to the uninterrupted run's.
		secs = append(secs, checkpoint.SectionData{Name: activeSectionName, Data: e.sel.marshal()})
	}
	for p := range e.msgBufs {
		data, err := storage.ReadAllFile(e.dev, e.msgFile(p))
		if err != nil {
			return fmt.Errorf("core: checkpoint at iteration %d: reading messages of partition %d: %w", iters, p, err)
		}
		secs = append(secs,
			checkpoint.SectionData{Name: msgSectionName(p), Data: data},
			checkpoint.SectionData{Name: tailSectionName(p), Data: e.msgBufs[p]})
		if e.opts.SortedSpill {
			secs = append(secs, checkpoint.SectionData{Name: runsSectionName(p), Data: marshalRuns(e.msgRuns[p])})
		}
	}
	m := checkpoint.Manifest{
		Name:       e.opts.Name,
		LayoutHash: e.layoutHash,
		Iteration:  iters,
		Converged:  done,
		Partitions: e.NumPartitions(),
		VSize:      e.vsize,
		MSize:      e.msize,
		Sem:        e.sem,
		Counters:   e.checkpointCounters(),
	}
	n, err := e.ckStore.Write(m, secs)
	if err != nil {
		return fmt.Errorf("core: writing checkpoint at iteration %d: %w", iters, err)
	}
	if err := e.ckStore.Prune(e.opts.Checkpoint.keep()); err != nil {
		return err
	}
	e.chargeCheckpointIO(n, false)
	d := time.Since(start)
	e.ckCount++
	e.ckBytes += n
	e.ckNS += int64(d)
	e.eo.ckpts.Inc()
	e.eo.ckptBytes.Add(n)
	e.eo.ckptNS.Add(int64(d))
	e.eo.ckptHist.Observe(d)
	// The span carries the same duration the graphz_checkpoint_ns_total
	// counter accumulated, so report stage totals reconcile exactly.
	// Checkpoints cover the whole iteration boundary: part is -1.
	e.eo.tr.Emit(engineName, obs.StageCheckpoint, iters, -1, start, d)
	return nil
}

// chargeCheckpointIO charges the modeled clock for moving n checkpoint
// bytes, using the data device's cost profile as a stand-in for the
// durable volume — this is what makes checkpoint overhead visible in the
// bench tables' modeled Runtime.
func (e *Engine[V, M]) chargeCheckpointIO(n int64, read bool) {
	if e.opts.Clock == nil {
		return
	}
	prof := storage.ProfileFor(e.dev.Kind())
	t := prof.SeekLatency
	bw := prof.WriteBandwidth
	if read {
		bw = prof.ReadBandwidth
	}
	if bw > 0 {
		t += time.Duration(float64(n) / bw * float64(time.Second))
	}
	e.opts.Clock.IO(t)
}

// Resume validates the newest checkpoint in Options.Checkpoint.Dir and
// continues the run from it: a converged checkpoint just restores the
// final vertex states; an in-flight one re-enters the iteration loop at
// iteration k. Validation failures return the typed errors of package
// checkpoint (ErrNoCheckpoint, ErrTruncated, ErrCRCMismatch,
// ErrVersionTooNew, ErrLayoutMismatch, ErrConfigMismatch) — never a
// panic, and never a silent restart from iteration 0.
func (e *Engine[V, M]) Resume() (Result, error) {
	if e.finished {
		return Result{}, fmt.Errorf("core: engine already ran; create a new one")
	}
	if !e.opts.Checkpoint.enabled() {
		return Result{}, fmt.Errorf("core: Resume without Options.Checkpoint.Dir")
	}
	if err := e.layout.LoadIndex(); err != nil {
		return Result{}, err
	}
	if err := e.initCheckpointing(); err != nil {
		return Result{}, err
	}
	return e.resume()
}

// resume does the restore work once index and store are ready.
func (e *Engine[V, M]) resume() (Result, error) {
	start := time.Now()
	ck, err := e.ckStore.Latest()
	if err != nil {
		return Result{}, err
	}
	m := ck.Manifest
	if m.Name != e.opts.Name {
		return Result{}, fmt.Errorf("%w: checkpoint is for engine %q, this engine is %q",
			checkpoint.ErrConfigMismatch, m.Name, e.opts.Name)
	}
	if m.LayoutHash != e.layoutHash {
		return Result{}, fmt.Errorf("%w: checkpoint hash %016x, graph hash %016x",
			checkpoint.ErrLayoutMismatch, m.LayoutHash, e.layoutHash)
	}
	nParts := e.NumPartitions()
	if m.Partitions != nParts || m.VSize != e.vsize || m.MSize != e.msize {
		return Result{}, fmt.Errorf("%w: checkpoint (partitions=%d vsize=%d msize=%d), engine (partitions=%d vsize=%d msize=%d)",
			checkpoint.ErrConfigMismatch, m.Partitions, m.VSize, m.MSize, nParts, e.vsize, e.msize)
	}
	if m.Sem != e.sem {
		// The two modes have different runtime file sets (a SEM
		// checkpoint has no message sections; a partitioned one expects
		// them restored), so resume never crosses modes.
		mode := func(sem bool) string {
			if sem {
				return "semi-external"
			}
			return "partitioned"
		}
		return Result{}, fmt.Errorf("%w: checkpoint is from a %s run, this engine is %s",
			checkpoint.ErrConfigMismatch, mode(m.Sem), mode(e.sem))
	}
	vstate, err := ck.Section("vstate")
	if err != nil {
		return Result{}, err
	}
	if want := e.layout.NumVertices() * e.vsize; len(vstate) != want {
		return Result{}, fmt.Errorf("%w: vstate section is %d bytes, layout needs %d",
			checkpoint.ErrTruncated, len(vstate), want)
	}
	if err := storage.WriteAll(e.dev, e.vstateFile(), vstate); err != nil {
		return Result{}, fmt.Errorf("core: restoring vertex states: %w", err)
	}
	restored := int64(len(vstate))
	if e.sem {
		// SEM re-pins the states: decode the restored bytes into the
		// resident array (loadVertices is a no-op past iteration 0), and
		// skip the message machinery — a SEM checkpoint has none.
		e.verts = make([]V, e.layout.NumVertices())
		for i := range e.verts {
			e.verts[i] = e.vcodec.Decode(vstate[i*e.vsize:])
		}
	}
	// Spilled files go back to the device; buffer tails go back into
	// memory at the exact occupancy — and capacity — they had, so both
	// the drain order (file then tail) and every future spill boundary
	// replay identically.
	msgParts := nParts
	if e.sem {
		msgParts = 0
	} else {
		e.msgBufs = make([][]byte, nParts)
		if e.opts.SortedSpill {
			e.msgRuns = make([][]int64, nParts)
		}
	}
	rec := int64(4 + e.msize)
	for p := 0; p < msgParts; p++ {
		data, err := ck.Section(msgSectionName(p))
		if err != nil {
			return Result{}, err
		}
		tail, err := ck.Section(tailSectionName(p))
		if err != nil {
			return Result{}, err
		}
		if int64(len(data))%rec != 0 || int64(len(tail))%rec != 0 {
			return Result{}, fmt.Errorf("%w: message sections of partition %d are %d+%d bytes, record size %d",
				checkpoint.ErrTruncated, p, len(data), len(tail), rec)
		}
		if err := storage.WriteAll(e.dev, e.msgFile(p), data); err != nil {
			return Result{}, fmt.Errorf("core: restoring messages of partition %d: %w", p, err)
		}
		if len(tail) > 0 {
			// Same capacity rule as bufferMessage, so the refilled
			// buffer spills at the same boundary it would have.
			c := e.opts.MsgBufferBytes
			if c < int(rec) {
				c = int(rec)
			}
			e.msgBufs[p] = append(make([]byte, 0, c), tail...)
		}
		if e.opts.SortedSpill && ck.HasSection(runsSectionName(p)) {
			rd, err := ck.Section(runsSectionName(p))
			if err != nil {
				return Result{}, err
			}
			runs, err := unmarshalRuns(rd)
			if err != nil {
				return Result{}, fmt.Errorf("%w: partition %d: %v", checkpoint.ErrTruncated, p, err)
			}
			var sum int64
			for _, n := range runs {
				sum += n
			}
			if sum != int64(len(data)) {
				return Result{}, fmt.Errorf("%w: run lengths of partition %d sum to %d, message section is %d bytes",
					checkpoint.ErrTruncated, p, sum, len(data))
			}
			e.msgRuns[p] = runs
			restored += int64(len(rd))
		}
		restored += int64(len(data) + len(tail))
	}
	if e.sel != nil {
		if ck.HasSection(activeSectionName) {
			data, err := ck.Section(activeSectionName)
			if err != nil {
				return Result{}, err
			}
			as, err := unmarshalActiveSet(data, e.layout.NumVertices())
			if err != nil {
				return Result{}, fmt.Errorf("%w: %v", checkpoint.ErrTruncated, err)
			}
			e.sel = as
		}
		// A checkpoint from a non-selective run has no bitmap; the
		// all-ones set New built stands — a conservative full rescan,
		// never a wrongly skipped vertex.
	}
	e.sent = m.Counters.Sent
	e.applied = m.Counters.Applied
	e.inline = m.Counters.Inline
	e.bufferedN = m.Counters.Buffered
	e.spilled = m.Counters.Spilled
	e.updates = m.Counters.Updates
	e.blocksScanned = m.Counters.BlocksScanned
	e.blocksSkipped = m.Counters.BlocksSkipped
	e.combined = m.Counters.Combined
	e.mergePasses = m.Counters.MergePasses
	e.spillSaved = m.Counters.SpillSaved
	e.chargeCheckpointIO(restored, true)
	if e.sem {
		e.eo.semRuns.Inc()
	}
	d := time.Since(start)
	e.eo.restores.Inc()
	e.eo.restoreNS.Add(int64(d))
	e.eo.tr.Emit(engineName, obs.StageRestore, m.Iteration, -1, start, d)
	if m.Converged {
		// The checkpointed run already finished; nothing to iterate.
		e.finished = true
		e.removeMsgFiles(nParts)
		if e.eo.on {
			foldDeviceStats(e.eo.reg, e.dev.Stats())
		}
		return e.result(m.Iteration, nParts), nil
	}
	return e.loop(m.Iteration)
}
