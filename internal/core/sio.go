package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

// blockPool recycles Sio prefetch buffers; the repro environment's note
// about Go GC pressure on edge buffers is real — per-block allocations
// across every partition of every iteration would churn hundreds of MB.
var blockPool = sync.Pool{
	New: func() any { return make([]byte, storage.DefaultBlockSize) },
}

// entryStream is the Sio + Dispatcher pair of the paper's runtime
// (Section V-A): a prefetch goroutine reads adjacency blocks sequentially
// off the device and hands them to the consumer through a bounded queue,
// so IO overlaps the Worker's computation; the consumer side parses the
// blocks into adjacency entries (the Dispatcher's job) on demand.
type entryStream struct {
	blocks chan sioBlock
	stopc  chan struct{}
	cur    []byte
	pos    int
	err    error
}

type sioBlock struct {
	data []byte
	err  error
}

// newEntryStream starts a prefetcher over edge-entry range [start, end)
// (in entries) of the named adjacency file.
func newEntryStream(dev *storage.Device, file string, start, end int64) (*entryStream, error) {
	f, err := dev.Open(file)
	if err != nil {
		return nil, err
	}
	s := &entryStream{
		blocks: make(chan sioBlock, sioQueueDepth),
		stopc:  make(chan struct{}),
	}
	r := storage.NewRangeReader(f, start*4, end*4)
	go func() {
		defer close(s.blocks)
		for {
			buf := blockPool.Get().([]byte)
			n, err := readChunk(r, buf)
			if n > 0 {
				select {
				case s.blocks <- sioBlock{data: buf[:n]}:
				case <-s.stopc:
					return
				}
			} else {
				blockPool.Put(buf) //nolint:staticcheck // slice header reuse is intended
			}
			if err == io.EOF {
				return
			}
			if err != nil {
				select {
				case s.blocks <- sioBlock{err: err}:
				case <-s.stopc:
				}
				return
			}
		}
	}()
	return s, nil
}

// readChunk fills buf with as many whole bytes as available, returning
// io.EOF when the range is exhausted.
func readChunk(r *storage.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// next returns the next adjacency entry.
func (s *entryStream) next() (graph.VertexID, error) {
	if s.err != nil {
		return 0, s.err
	}
	for s.pos+4 > len(s.cur) {
		// Entries never straddle blocks: block size is a multiple
		// of the entry size and ranges are entry-aligned.
		if s.cur != nil {
			blockPool.Put(s.cur[:cap(s.cur)]) //nolint:staticcheck
			s.cur = nil
		}
		blk, ok := <-s.blocks
		if !ok {
			s.err = fmt.Errorf("core: adjacency stream exhausted early")
			return 0, s.err
		}
		if blk.err != nil {
			s.err = blk.err
			return 0, s.err
		}
		s.cur = blk.data
		s.pos = 0
	}
	v := graph.VertexID(binary.LittleEndian.Uint32(s.cur[s.pos:]))
	s.pos += 4
	return v, nil
}

// stop shuts the prefetcher down, releasing queued buffers back to the
// pool.
func (s *entryStream) stop() {
	close(s.stopc)
	for blk := range s.blocks {
		if blk.data != nil {
			blockPool.Put(blk.data[:cap(blk.data)]) //nolint:staticcheck
		}
	}
	if s.cur != nil {
		blockPool.Put(s.cur[:cap(s.cur)]) //nolint:staticcheck
		s.cur = nil
	}
}
