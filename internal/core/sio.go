package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

// blockPool recycles Sio prefetch buffers; the repro environment's note
// about Go GC pressure on edge buffers is real — per-block allocations
// across every partition of every iteration would churn hundreds of MB.
// The pool counts gets and puts so tests can assert that no code path
// loses a buffer (one atomic add per 256 KiB block is noise).
var blockPool = &countedPool{
	pool: sync.Pool{New: func() any { return make([]byte, storage.DefaultBlockSize) }},
}

// countedPool wraps sync.Pool with get/put accounting.
type countedPool struct {
	pool       sync.Pool
	gets, puts atomic.Int64
}

func (p *countedPool) Get() []byte {
	p.gets.Add(1)
	return p.pool.Get().([]byte)
}

func (p *countedPool) Put(buf []byte) {
	p.puts.Add(1)
	p.pool.Put(buf[:cap(buf)]) //nolint:staticcheck // slice header reuse is intended
}

// outstanding returns how many buffers are currently checked out; once
// every stream is stopped it must be back to its starting value.
func (p *countedPool) outstanding() int64 { return p.gets.Load() - p.puts.Load() }

// entryStream is the Sio + Dispatcher pair of the paper's runtime
// (Section V-A): a prefetch goroutine reads adjacency blocks sequentially
// off the device and hands them to the consumer through a bounded queue,
// so IO overlaps the Worker's computation; the consumer side parses the
// blocks into adjacency entries (the Dispatcher's job) on demand.
type entryStream struct {
	blocks chan sioBlock
	stopc  chan struct{}
	cur    []byte
	pos    int
	err    error

	// met, when non-nil, switches the consumer to the measured path:
	// blocks are batch-parsed (a timed Dispatcher step) into entries and
	// queue-empty stalls are counted. Nil keeps the seed per-entry decode
	// untouched — the no-op fast path.
	met     *pipeStats
	entries []graph.VertexID
	epos    int
}

type sioBlock struct {
	data []byte
	idx  int64 // block index, set only by the codec prefetcher
	err  error
}

// entryRange is one contiguous edge-entry range [start, end) of the
// adjacency file, in entries.
type entryRange struct {
	start, end int64
}

// newEntryStream starts a prefetcher over edge-entry range [start, end)
// (in entries) of the named adjacency file. met, when non-nil, receives
// the pipeline's timing and stall counters.
func newEntryStream(dev *storage.Device, file string, start, end int64, met *pipeStats) (*entryStream, error) {
	return newMultiEntryStream(dev, file, []entryRange{{start: start, end: end}}, met)
}

// newMultiEntryStream is the skip-aware Sio prefetcher: it reads the
// given entry ranges in order through one bounded queue, never touching
// the bytes between them — the device-level half of selective block
// scheduling (a seek between ranges replaces the skipped blocks' reads).
// Each range is entry-aligned and each starts a fresh block, so entries
// still never straddle a block boundary. A single full range is exactly
// the seed prefetcher.
func newMultiEntryStream(dev *storage.Device, file string, ranges []entryRange, met *pipeStats) (*entryStream, error) {
	f, err := dev.Open(file)
	if err != nil {
		return nil, err
	}
	s := &entryStream{
		blocks: make(chan sioBlock, sioQueueDepth),
		stopc:  make(chan struct{}),
		met:    met,
	}
	go func() {
		defer close(s.blocks)
		for _, rng := range ranges {
			r := storage.NewRangeReader(f, rng.start*4, rng.end*4)
			off := rng.start // entry offset of the next chunk, for heat attribution
			for {
				buf := blockPool.Get()
				var t0 time.Time
				if met != nil {
					t0 = time.Now()
				}
				n, err := readChunk(r, buf)
				if met != nil {
					met.readNS.Add(int64(time.Since(t0)))
					if n > 0 {
						met.blocks.Add(1)
						met.heatRead(off, int64(n)/4)
						off += int64(n) / 4
					}
				}
				if n > 0 {
					select {
					case s.blocks <- sioBlock{data: buf[:n]}:
					case <-s.stopc:
						// Early stop with the block still in hand:
						// ownership never transferred, so recycle it
						// here or it is lost to the GC.
						blockPool.Put(buf)
						return
					}
				} else {
					blockPool.Put(buf)
				}
				if err == io.EOF {
					break // next range
				}
				if err != nil {
					select {
					case s.blocks <- sioBlock{err: err}:
					case <-s.stopc:
					}
					return
				}
			}
		}
	}()
	return s, nil
}

// readChunk fills buf with as many whole bytes as available, returning
// io.EOF when the range is exhausted.
func readChunk(r *storage.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// next returns the next adjacency entry.
func (s *entryStream) next() (graph.VertexID, error) {
	if s.met != nil {
		if err := s.fillParsed(); err != nil {
			return 0, err
		}
		v := s.entries[s.epos]
		s.epos++
		return v, nil
	}
	if err := s.fillRaw(); err != nil {
		return 0, err
	}
	v := graph.VertexID(binary.LittleEndian.Uint32(s.cur[s.pos:]))
	s.pos += 4
	return v, nil
}

// read bulk-parses entries from the current block into dst
// (batchSource), refilling from the prefetcher when the block is spent.
func (s *entryStream) read(dst []graph.VertexID) (int, error) {
	if s.met != nil {
		if err := s.fillParsed(); err != nil {
			return 0, err
		}
		n := copy(dst, s.entries[s.epos:])
		s.epos += n
		return n, nil
	}
	if err := s.fillRaw(); err != nil {
		return 0, err
	}
	n := (len(s.cur) - s.pos) / 4
	if n > len(dst) {
		n = len(dst)
	}
	data := s.cur[s.pos:]
	for i := 0; i < n; i++ {
		dst[i] = graph.VertexID(binary.LittleEndian.Uint32(data[i*4:]))
	}
	s.pos += n * 4
	return n, nil
}

// fillRaw makes at least one entry available in the current block on
// the unmeasured path. Entries never straddle blocks: block size is a
// multiple of the entry size and ranges are entry-aligned.
func (s *entryStream) fillRaw() error {
	if s.err != nil {
		return s.err
	}
	for s.pos+4 > len(s.cur) {
		if s.cur != nil {
			blockPool.Put(s.cur)
			s.cur = nil
		}
		blk, ok := <-s.blocks
		if !ok {
			s.err = fmt.Errorf("core: adjacency stream exhausted early")
			return s.err
		}
		if blk.err != nil {
			s.err = blk.err
			return s.err
		}
		s.cur = blk.data
		s.pos = 0
	}
	return nil
}

// fillParsed is fillRaw on the measured path: each block is batch-parsed
// into the entries slice — the same total decode work as the seed path,
// but grouped so the Dispatcher's parse time is attributable — and the
// block buffer is recycled immediately.
func (s *entryStream) fillParsed() error {
	if s.err != nil {
		return s.err
	}
	for s.epos >= len(s.entries) {
		blk, ok := s.recvBlock()
		if !ok {
			s.err = fmt.Errorf("core: adjacency stream exhausted early")
			return s.err
		}
		if blk.err != nil {
			s.err = blk.err
			return s.err
		}
		t0 := time.Now()
		n := len(blk.data) / 4
		if cap(s.entries) < n {
			s.entries = make([]graph.VertexID, n)
		}
		s.entries = s.entries[:n]
		for i := 0; i < n; i++ {
			s.entries[i] = graph.VertexID(binary.LittleEndian.Uint32(blk.data[i*4:]))
		}
		s.epos = 0
		s.met.dispatchNS.Add(int64(time.Since(t0)))
		blockPool.Put(blk.data)
	}
	return nil
}

// recvBlock receives the next prefetched block, counting a stall (and its
// duration) whenever the Worker finds the queue empty and has to wait for
// the Sio producer.
func (s *entryStream) recvBlock() (sioBlock, bool) {
	select {
	case blk, ok := <-s.blocks:
		return blk, ok
	default:
	}
	t0 := time.Now()
	blk, ok := <-s.blocks
	if ok {
		s.met.stalls.Add(1)
		s.met.stallNS.Add(int64(time.Since(t0)))
	}
	return blk, ok
}

// stop shuts the prefetcher down, releasing queued buffers back to the
// pool.
func (s *entryStream) stop() {
	close(s.stopc)
	for blk := range s.blocks {
		if blk.data != nil {
			blockPool.Put(blk.data)
		}
	}
	if s.cur != nil {
		blockPool.Put(s.cur)
		s.cur = nil
	}
}
