package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"runtime"
	"testing"
	"time"

	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
)

// The parallel Worker's contract is exact equivalence: for any program,
// any graph, and any partitioning, WorkerParallelism > 1 must produce
// byte-identical vertex states and identical counters to the sequential
// engine. The tests below check that property across three programs with
// different message behavior — min-label propagation (sparse dynamic
// messages), PageRank (dense forward dynamic messages, float order
// sensitivity), and a hash-mixing program with static messages whose
// non-commutative Apply detects any drain-order perturbation.

// runProg runs prog over g and returns the result plus the encoded
// vertex states, so comparisons are on the exact state bytes.
func runProg[V, M any](t *testing.T, g *dos.Graph, prog Program[V, M], vc graph.Codec[V], mc graph.Codec[M], opts Options) (Result, []byte) {
	t.Helper()
	eng, err := New[V, M](DOSLayout(g), prog, vc, mc, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	eng.Cleanup()
	enc := make([]byte, len(vals)*vc.Size())
	for i, v := range vals {
		vc.Encode(enc[i*vc.Size():], v)
	}
	return res, enc
}

// checkParallelMatches runs prog sequentially and at several parallelism
// levels and requires identical Results and state bytes.
func checkParallelMatches[V, M any](t *testing.T, g *dos.Graph, prog Program[V, M], vc graph.Codec[V], mc graph.Codec[M], opts Options) {
	t.Helper()
	seqRes, seqBytes := runProg[V, M](t, g, prog, vc, mc, opts)
	for _, w := range []int{2, 4} {
		po := opts
		po.WorkerParallelism = w
		pRes, pBytes := runProg[V, M](t, g, prog, vc, mc, po)
		if seqRes != pRes {
			t.Errorf("workers=%d: result %+v differs from sequential %+v", w, pRes, seqRes)
		}
		if !bytes.Equal(seqBytes, pBytes) {
			for i := 0; i < len(seqBytes)/vc.Size(); i++ {
				a := seqBytes[i*vc.Size() : (i+1)*vc.Size()]
				b := pBytes[i*vc.Size() : (i+1)*vc.Size()]
				if !bytes.Equal(a, b) {
					t.Fatalf("workers=%d: vertex %d state bytes %x, sequential %x", w, i, b, a)
				}
			}
		}
	}
}

func TestParallelWorkerMinLabelMultiPartition(t *testing.T) {
	for _, dm := range []bool{true, false} {
		edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 31)
		g := buildDOS(t, edges)
		// Tight budget: several partitions, tiny message buffers so
		// cross-partition traffic spills mid-iteration.
		opts := Options{
			MemoryBudget:    budgetForPartitions(g, 8, 4, 64),
			DynamicMessages: dm,
			MsgBufferBytes:  64,
		}
		checkParallelMatches[minVal, uint32](t, g, minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
		// The parallel runs must also still be correct, not just
		// self-consistent.
		po := opts
		po.WorkerParallelism = 4
		_, vals := runMinLabel(t, g, po)
		want := referenceMinLabels(g.NumVertices, relabeledEdges(t, g, edges))
		for i := range want {
			if vals[i].label != want[i] {
				t.Fatalf("dm=%v: vertex %d label = %d, want %d", dm, i, vals[i].label, want[i])
			}
		}
	}
}

// prVal / prProg is PageRank with ordered dynamic messages: every vertex
// pushes rank shares every iteration, so nearly every chunk receives a
// forward in-partition message and the parallel Worker is forced through
// its re-execution fallback. Floating-point addition is order-sensitive,
// so byte equality proves the apply order matched exactly.
type prVal struct{ rank, acc float64 }

type prCodec struct{}

func (prCodec) Size() int { return 16 }

func (prCodec) Encode(b []byte, v prVal) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(v.rank))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(v.acc))
}

func (prCodec) Decode(b []byte) prVal {
	return prVal{
		rank: math.Float64frombits(binary.LittleEndian.Uint64(b)),
		acc:  math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
	}
}

type f64Codec struct{}

func (f64Codec) Size() int { return 8 }

func (f64Codec) Encode(b []byte, m float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(m))
}

func (f64Codec) Decode(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

type prProg struct{}

func (prProg) Init(id graph.VertexID, deg uint32) prVal { return prVal{rank: 1} }

func (prProg) Update(ctx *Context[float64], id graph.VertexID, v *prVal, adj []graph.VertexID) {
	if ctx.Iteration() > 0 {
		v.rank = 0.15 + 0.85*v.acc
		v.acc = 0
	}
	if len(adj) > 0 {
		share := v.rank / float64(len(adj))
		for _, a := range adj {
			ctx.Send(a, share)
		}
	}
	ctx.MarkActive()
}

func (prProg) Apply(v *prVal, m float64) { v.acc += m }

func TestParallelWorkerPageRank(t *testing.T) {
	edges := gen.RMAT(9, 5000, gen.NaturalRMAT, 32)
	g := buildDOS(t, edges)
	opts := Options{
		MemoryBudget:    budgetForPartitions(g, 16, 4, 128),
		DynamicMessages: true,
		MsgBufferBytes:  128,
		MaxIterations:   5,
	}
	checkParallelMatches[prVal, float64](t, g, prProg{}, prCodec{}, f64Codec{}, opts)
}

// mixVal / mixProg scatters hash-mixed values with static messages
// (DynamicMessages off): every message goes through the buffer/spill
// store and is drained next iteration. Apply is deliberately
// non-commutative, so any reordering of the spill stream — the replay
// path the parallel Worker routes all messages through — changes the
// fixpoint bytes.
type mixVal struct{ h uint32 }

type mixCodec struct{}

func (mixCodec) Size() int                 { return 4 }
func (mixCodec) Encode(b []byte, v mixVal) { binary.LittleEndian.PutUint32(b, v.h) }
func (mixCodec) Decode(b []byte) mixVal    { return mixVal{binary.LittleEndian.Uint32(b)} }

type mixProg struct{ rounds int }

func (mixProg) Init(id graph.VertexID, deg uint32) mixVal {
	return mixVal{h: uint32(id)*2654435761 + deg}
}

func (p mixProg) Update(ctx *Context[uint32], id graph.VertexID, v *mixVal, adj []graph.VertexID) {
	acc := v.h
	for _, a := range adj {
		x := acc ^ uint32(a)*2654435761
		for r := 0; r < p.rounds; r++ {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
		}
		ctx.Send(a, x)
		acc = acc*31 + x
	}
	v.h = acc
	ctx.MarkActive()
}

func (mixProg) Apply(v *mixVal, m uint32) { v.h = v.h*1664525 + m }

func TestParallelWorkerStaticMessages(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 33)
	g := buildDOS(t, edges)
	opts := Options{
		MemoryBudget:   budgetForPartitions(g, 4, 3, 64),
		MsgBufferBytes: 64,
		MaxIterations:  4,
	}
	checkParallelMatches[mixVal, uint32](t, g, mixProg{rounds: 4}, mixCodec{}, graph.Uint32Codec{}, opts)
}

func TestParallelWorkerCachedAdjacency(t *testing.T) {
	edges := gen.RMAT(8, 2500, gen.NaturalRMAT, 34)
	g := buildDOS(t, edges)
	opts := Options{
		MemoryBudget:    64 << 20,
		DynamicMessages: true,
		CacheAdjacency:  true,
	}
	checkParallelMatches[minVal, uint32](t, g, minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
	po := opts
	po.WorkerParallelism = 4
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, po)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !eng.AdjacencyCached() {
		t.Error("cache did not engage under a large budget")
	}
	eng.Cleanup()
}

// TestParallelWorkerRandomizedGraphs fuzzes the equivalence property over
// graph shapes, seeds, and partition counts.
func TestParallelWorkerRandomizedGraphs(t *testing.T) {
	for seed := uint64(40); seed < 46; seed++ {
		scale := 7 + int(seed%3)
		nedges := 500 * (1 + int(seed%4))
		edges := gen.RMAT(scale, nedges, gen.NaturalRMAT, seed)
		g := buildDOS(t, edges)
		wantP := 2 + int64(seed%3)
		opts := Options{
			MemoryBudget:    budgetForPartitions(g, 8, wantP, 64),
			DynamicMessages: seed%2 == 0,
			MsgBufferBytes:  64,
		}
		checkParallelMatches[minVal, uint32](t, g, minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
	}
}

// heavyProg is the compute-heavy, message-free program used for Worker
// speedup measurements: many hash rounds per edge, no sends, so chunks
// are never invalidated and speculation gets full parallelism.
type heavyProg struct{ rounds int }

func (heavyProg) Init(id graph.VertexID, deg uint32) mixVal {
	return mixVal{h: uint32(id)*2654435761 + deg}
}

func (p heavyProg) Update(ctx *Context[uint32], id graph.VertexID, v *mixVal, adj []graph.VertexID) {
	x := v.h
	for _, a := range adj {
		y := x ^ uint32(a)*2654435761
		for r := 0; r < p.rounds; r++ {
			y ^= y << 13
			y ^= y >> 17
			y ^= y << 5
		}
		x = x*31 + y
	}
	v.h = x
	ctx.MarkActive()
}

func (heavyProg) Apply(v *mixVal, m uint32) {}

// TestParallelWorkerSpeedup measures the headline property: on a
// compute-heavy program the chunked Worker at 4 goroutines must beat the
// sequential Worker by a healthy margin while staying byte-identical
// (the equivalence is asserted by the tests above; this one only times).
// Skipped where timing is meaningless: -short, race builds, small hosts.
func TestParallelWorkerSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing test; race instrumentation distorts it")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs at least 4 CPUs")
	}
	edges := gen.RMAT(12, 150000, gen.NaturalRMAT, 60)
	g := buildDOS(t, edges)
	opts := Options{MemoryBudget: 256 << 20, DynamicMessages: true, MaxIterations: 3}
	run := func(w int) time.Duration {
		best := time.Duration(1 << 62)
		for try := 0; try < 3; try++ {
			o := opts
			o.WorkerParallelism = w
			eng, err := New[mixVal, uint32](DOSLayout(g), heavyProg{rounds: 64}, mixCodec{}, graph.Uint32Codec{}, o)
			if err != nil {
				t.Fatal(err)
			}
			t0 := time.Now()
			if _, err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
			eng.Cleanup()
		}
		return best
	}
	seq := run(1)
	par := run(4)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, 4 workers %v: %.2fx", seq, par, speedup)
	if speedup < 1.3 {
		t.Errorf("worker speedup %.2fx at 4 workers, want >= 1.3x", speedup)
	}
}

// TestParallelWorkerObserved exercises the measured path (registry +
// tracer, shared pipeStats, concurrent entry streams) with the parallel
// Worker — this is the configuration `go test -race ./internal/core`
// must prove race-free — and checks the worker sub-stage counters.
func TestParallelWorkerObserved(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 35)
	g := buildDOS(t, edges)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(io.Discard)
	opts := Options{
		MemoryBudget:      budgetForPartitions(g, 8, 4, 64),
		DynamicMessages:   true,
		MsgBufferBytes:    64,
		WorkerParallelism: 4,
		Obs:               reg,
		Trace:             tr,
	}
	res, pBytes := runProg[minVal, uint32](t, g, minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
	seqOpts := opts
	seqOpts.WorkerParallelism = 0
	seqOpts.Obs = nil
	seqOpts.Trace = nil
	seqRes, seqBytes := runProg[minVal, uint32](t, g, minLabel{}, minValCodec{}, graph.Uint32Codec{}, seqOpts)
	if !bytes.Equal(seqBytes, pBytes) {
		t.Error("observed parallel run diverged from sequential state bytes")
	}
	// Stage wall times differ run to run; every counter must not.
	res.Stages, seqRes.Stages = obs.StageTimes{}, obs.StageTimes{}
	if res != seqRes {
		t.Errorf("observed parallel result %+v differs from sequential %+v", res, seqRes)
	}

	snap := reg.Snapshot()
	if snap["graphz_worker_chunks_total"] == 0 {
		t.Error("graphz_worker_chunks_total not incremented by the parallel Worker")
	}
	// minLabel's iteration-0 flood sends forward in-partition messages,
	// so some chunks must have been invalidated and re-executed.
	if snap["graphz_worker_chunk_reexecs_total"] == 0 {
		t.Error("graphz_worker_chunk_reexecs_total = 0; expected invalidations under dynamic messages")
	}
	if got, want := snap["graphz_worker_chunk_reexecs_total"], snap["graphz_worker_chunks_total"]; got > want {
		t.Errorf("reexecs %d > chunks %d", got, want)
	}
}
