package core

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// Parallel message application, the paper's Section V-C: when a new
// partition starts, the MsgManager applies its pending messages with a
// worker pool, using a mutex pool to serialize concurrent applies to the
// same vertex ("our experiments show using mutexes has minimal influence
// on elapsed time as contention is low during this period").
//
// Enabling it (Options.ParallelDrain) requires the program's Apply to be
// commutative and associative — the property the paper observes most
// graph analytics have — because the pool reorders applies between
// different sources. Min/Max/Sum-style folds qualify; the emulation
// construction's append does not.

// mutexPoolSize is the number of locks striped over destination vertices.
const mutexPoolSize = 64

// drainChunkRecords is the batch size each worker claims at once.
const drainChunkRecords = 1024

// drainMessagesParallel is the concurrent counterpart of drainMessages.
func (e *Engine[V, M]) drainMessagesParallel(p int, lo graph.VertexID) error {
	rec := 4 + e.msize
	f, err := e.dev.Open(e.msgFile(p))
	if err != nil {
		return err
	}
	if f.Size()%int64(rec) != 0 {
		return fmt.Errorf("core: message file %q torn (%d bytes, record %d)", e.msgFile(p), f.Size(), rec)
	}
	// Read the spilled records (block-sized device reads), then fan the
	// applies out across the pool.
	data := make([]byte, f.Size())
	if len(data) > 0 {
		r := storage.NewReader(f)
		if err := r.ReadFull(data); err != nil {
			return fmt.Errorf("core: draining messages for partition %d: %w", p, err)
		}
	}
	mem := e.msgBufs[p]
	total := len(data)/rec + len(mem)/rec

	if total > 0 {
		var locks [mutexPoolSize]sync.Mutex
		workers := runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
		var next int64
		var wg sync.WaitGroup
		var mu sync.Mutex
		apply := func(recBytes []byte) {
			dst := graph.VertexID(binary.LittleEndian.Uint32(recBytes))
			m := e.mcodec.Decode(recBytes[4:])
			l := &locks[dst%mutexPoolSize]
			l.Lock()
			e.prog.Apply(&e.verts[dst-lo], m)
			l.Unlock()
		}
		recAt := func(i int) []byte {
			if off := i * rec; off < len(data) {
				return data[off : off+rec]
			}
			off := i*rec - len(data)
			return mem[off : off+rec]
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					start := next
					next += drainChunkRecords
					mu.Unlock()
					if start >= int64(total) {
						return
					}
					end := start + drainChunkRecords
					if end > int64(total) {
						end = int64(total)
					}
					for i := start; i < end; i++ {
						apply(recAt(int(i)))
					}
				}
			}()
		}
		wg.Wait()
		e.applied += int64(total)
		e.charge(int64(total), sim.CostMessageApply)
	}

	if err := f.Truncate(0); err != nil {
		return err
	}
	if mem != nil {
		e.msgBufs[p] = mem[:0]
	}
	return nil
}
