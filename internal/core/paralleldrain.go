package core

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// Parallel message application, the paper's Section V-C: when a new
// partition starts, the MsgManager applies its pending messages with a
// worker pool, using a mutex pool to serialize concurrent applies to the
// same vertex ("our experiments show using mutexes has minimal influence
// on elapsed time as contention is low during this period").
//
// Enabling it (Options.ParallelDrain) requires the program's Apply to be
// commutative and associative — the property the paper observes most
// graph analytics have — because the pool reorders applies between
// different sources. Min/Max/Sum-style folds qualify; the emulation
// construction's append does not.

// mutexPoolSize is the number of locks striped over destination vertices.
const mutexPoolSize = 64

// drainChunkRecords is the batch size each worker claims at once.
const drainChunkRecords = 1024

// maxDrainChunkBytes caps the streaming drain's read chunk regardless of
// budget; past a few MB larger reads stop helping sequential bandwidth.
const maxDrainChunkBytes = 4 << 20

// drainChunkBytes sizes the streaming drain's file-read chunk: a slice
// of the memory budget (the spill file itself is unbounded — it holds a
// whole iteration's cross-partition traffic and regularly exceeds the
// budget), record-aligned, and at least one pool batch per worker so
// small chunks do not serialize the pool.
func (e *Engine[V, M]) drainChunkBytes() int {
	rec := 4 + e.msize
	c := int(e.opts.MemoryBudget / 8)
	if lo := drainChunkRecords * rec; c < lo {
		c = lo
	}
	if c > maxDrainChunkBytes {
		c = maxDrainChunkBytes
	}
	return c / rec * rec
}

// drainMessagesParallel is the concurrent counterpart of drainMessages.
// The spilled records are streamed in bounded record-aligned chunks —
// never materializing the whole file, whose size is not covered by the
// memory budget — and each chunk is fanned out across the worker pool.
func (e *Engine[V, M]) drainMessagesParallel(p int, lo graph.VertexID) error {
	rec := 4 + e.msize
	if len(e.msgBufs[p]) == 0 {
		// Nothing pending in memory or on the device: skip even opening
		// the file (Size is an uncharged catalog lookup).
		if sz, err := e.dev.Size(e.msgFile(p)); err != nil {
			return err
		} else if sz == 0 {
			e.eo.drainSkipped.Inc()
			return nil
		}
	}
	f, err := e.dev.Open(e.msgFile(p))
	if err != nil {
		return err
	}
	if f.Size()%int64(rec) != 0 {
		return fmt.Errorf("core: message file %q torn (%d bytes, record %d)", e.msgFile(p), f.Size(), rec)
	}

	var locks [mutexPoolSize]sync.Mutex
	var applied int64
	remaining := f.Size()
	if remaining > 0 {
		r := storage.NewReader(f)
		chunk := make([]byte, e.drainChunkBytes())
		for remaining > 0 {
			n := int64(len(chunk))
			if n > remaining {
				n = remaining
			}
			if err := r.ReadFull(chunk[:n]); err != nil {
				return fmt.Errorf("core: draining messages for partition %d: %w", p, err)
			}
			e.applyChunkParallel(chunk[:n], lo, &locks)
			applied += n / int64(rec)
			remaining -= n
		}
	}
	mem := e.msgBufs[p]
	if len(mem) > 0 {
		e.applyChunkParallel(mem, lo, &locks)
		applied += int64(len(mem) / rec)
	}
	if applied > 0 {
		e.applied += applied
		e.charge(applied, sim.CostMessageApply)
	}

	if err := f.Truncate(0); err != nil {
		return err
	}
	if mem != nil {
		e.msgBufs[p] = mem[:0]
	}
	return nil
}

// applyChunkParallel applies one record-aligned batch of pending
// messages across the pool, striping vertex locks to serialize
// same-destination applies.
func (e *Engine[V, M]) applyChunkParallel(data []byte, lo graph.VertexID, locks *[mutexPoolSize]sync.Mutex) {
	rec := 4 + e.msize
	total := len(data) / rec
	if total == 0 {
		return
	}
	if e.sel != nil {
		// Schedulability bits for the delivered messages, marked in a
		// single pass before the fan-out: the activeSet is not
		// concurrency-safe, and bit order is irrelevant (set is
		// idempotent), so this keeps the pool race-free without locks.
		for i := 0; i < total; i++ {
			e.sel.set(graph.VertexID(binary.LittleEndian.Uint32(data[i*rec:])))
		}
	}
	if e.eo.heat != nil {
		// Drain fan-in attribution in the same pre-pass style: count per
		// vstate block single-threaded, so the pool stays heat-free.
		acc := make(map[int64]int64)
		for i := 0; i < total; i++ {
			dst := graph.VertexID(binary.LittleEndian.Uint32(data[i*rec:]))
			acc[e.vstateBlock(dst)]++
		}
		e.flushDrainHeat(acc)
	}
	apply := func(recBytes []byte) {
		dst := graph.VertexID(binary.LittleEndian.Uint32(recBytes))
		m := e.mcodec.Decode(recBytes[4:])
		l := &locks[dst%mutexPoolSize]
		l.Lock()
		e.prog.Apply(&e.verts[dst-lo], m)
		l.Unlock()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	if workers < 2 || total <= drainChunkRecords {
		for i := 0; i < total; i++ {
			apply(data[i*rec : (i+1)*rec])
		}
		return
	}
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				start := next
				next += drainChunkRecords
				mu.Unlock()
				if start >= int64(total) {
					return
				}
				end := start + drainChunkRecords
				if end > int64(total) {
					end = int64(total)
				}
				for i := start; i < end; i++ {
					apply(data[int(i)*rec : int(i+1)*rec])
				}
			}
		}()
	}
	wg.Wait()
}
