package core

import (
	"graphz/internal/dos"
	"graphz/internal/storage"
)

// convertOn converts the "raw" edge file already on dev into a DOS graph.
func convertOn(dev *storage.Device) (*dos.Graph, error) {
	return dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
}
