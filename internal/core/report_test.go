package core

import (
	"testing"

	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// Run-report reconciliation: the report's span-aggregated stage totals
// must equal the live graphz_stage_*_ns_total counters exactly — both
// sides are fed the same measured durations, so this is equality, not
// approximation (ISSUE 6 acceptance property).

// reconcileStages asserts every span-aggregated stage total matches its
// counter.
func reconcileStages(t *testing.T, rep *obs.RunReport, reg *obs.Registry, stages map[string]string) {
	t.Helper()
	tot := rep.StageTotals()
	for stage, counter := range stages {
		if got, want := tot[stage], reg.CounterValue(counter); got != want {
			t.Errorf("stage %s total = %d ns, counter %s = %d ns", stage, got, counter, want)
		}
	}
}

func TestRunReportReconciliation(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 61)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewCollectingTracer(nil)
	opts := Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 64),
		DynamicMessages: true,
		MsgBufferBytes:  64,
		Obs:             reg,
		Trace:           tr,
		Checkpoint:      CheckpointOptions{Dir: t.TempDir(), Every: 1},
	}
	res, _ := runMinLabel(t, g, opts)
	if res.Partitions < 2 || res.MessagesSpilled == 0 {
		t.Fatalf("want a multi-partition spilling run, got partitions=%d spilled=%d",
			res.Partitions, res.MessagesSpilled)
	}

	rep := obs.BuildReport(obs.ReportInfo{Engine: engineName, Algo: "minlabel"},
		reg, tr, DeviceFileIO(dev))

	reconcileStages(t, rep, reg, map[string]string{
		obs.StageSio:        "graphz_stage_sio_ns_total",
		obs.StageDispatch:   "graphz_stage_dispatch_ns_total",
		obs.StageWorker:     "graphz_stage_worker_ns_total",
		obs.StageDrain:      "graphz_stage_drain_ns_total",
		obs.StageCheckpoint: "graphz_checkpoint_ns_total",
	})

	// One memory sample per iteration, with the planner's fixed classes.
	if len(rep.Memory) != res.Iterations {
		t.Fatalf("memory samples = %d, want %d", len(rep.Memory), res.Iterations)
	}
	for i, m := range rep.Memory {
		if m.Iteration != i {
			t.Errorf("memory sample %d has Iteration %d", i, m.Iteration)
		}
		if m.BudgetBytes != opts.MemoryBudget {
			t.Errorf("sample %d budget = %d, want %d", i, m.BudgetBytes, opts.MemoryBudget)
		}
		if m.IndexBytes != g.IndexBytes() {
			t.Errorf("sample %d index = %d, want %d", i, m.IndexBytes, g.IndexBytes())
		}
		if m.VertexStateBytes <= 0 || m.PipelineBytes != pipelineOverheadBytes {
			t.Errorf("sample %d = %+v", i, m)
		}
	}

	// Block heat: every prefetcher byte is attributed, so the edges-file
	// read bytes sum to one full adjacency scan per iteration; drain
	// fan-in covers every buffered message exactly once.
	edgesFile := DOSLayout(g).EdgesFile()
	var readBytes, drainMsgs, skips int64
	for _, c := range rep.Blocks {
		switch c.File {
		case edgesFile:
			readBytes += c.ReadBytes
			skips += c.Skips
		case "graphz.vstate":
			drainMsgs += c.DrainMsgs
		}
	}
	if want := int64(res.Iterations) * g.NumEdges * 4; readBytes != want {
		t.Errorf("heat read bytes = %d, want %d (%d iterations of %d entries)",
			readBytes, want, res.Iterations, g.NumEdges)
	}
	if drainMsgs != res.MessagesBuffered {
		t.Errorf("heat drain msgs = %d, want %d buffered", drainMsgs, res.MessagesBuffered)
	}
	if skips != 0 {
		t.Errorf("non-selective run attributed %d skips", skips)
	}

	// Per-file device IO: the edges file's physical reads match the heat
	// attribution (no cache, no codec: bytes read == bytes attributed).
	if got := rep.Files[edgesFile].ReadBytes; got != readBytes {
		t.Errorf("file IO read bytes = %d, heat says %d", got, readBytes)
	}

	// Iteration snapshots are cumulative; the last one holds the final
	// message counters.
	if len(rep.Iterations) != res.Iterations {
		t.Fatalf("iteration rows = %d, want %d", len(rep.Iterations), res.Iterations)
	}
	last := rep.Iterations[len(rep.Iterations)-1].Snapshot
	if got := last["graphz_messages_inline_total"]; got != res.MessagesInline {
		t.Errorf("final snapshot inline = %d, result says %d", got, res.MessagesInline)
	}
}

func TestRunReportParallelDrainHeat(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 62)
	g := buildDOS(t, edges)
	reg := obs.NewRegistry()
	res, _ := runMinLabel(t, g, Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 64),
		DynamicMessages: true,
		MsgBufferBytes:  64,
		ParallelDrain:   true,
		Obs:             reg,
	})
	if res.MessagesBuffered == 0 {
		t.Fatal("want buffered messages")
	}
	var drainMsgs int64
	for _, c := range reg.Heatmap().Cells() {
		if c.File == "graphz.vstate" {
			drainMsgs += c.DrainMsgs
		}
	}
	if drainMsgs != res.MessagesBuffered {
		t.Errorf("parallel drain heat msgs = %d, want %d buffered", drainMsgs, res.MessagesBuffered)
	}
}

func TestRunReportCodecDecodeReconciliation(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 63)
	g := buildDOSCodec(t, edges, storage.CodecVarint, 0)
	reg := obs.NewRegistry()
	tr := obs.NewCollectingTracer(nil)
	res, _ := runMinLabel(t, g, Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 64),
		DynamicMessages: true,
		MsgBufferBytes:  64,
		Obs:             reg,
		Trace:           tr,
	})
	if res.CodecBytesEncoded == 0 {
		t.Fatal("want a codec run")
	}
	rep := obs.BuildReport(obs.ReportInfo{Engine: engineName}, reg, tr, nil)
	reconcileStages(t, rep, reg, map[string]string{
		obs.StageDecode: "graphz_codec_decode_ns_total",
		obs.StageSio:    "graphz_stage_sio_ns_total",
		obs.StageDrain:  "graphz_stage_drain_ns_total",
	})
	// Per-block decode attribution sums to the same counter.
	var decodeNS, encBytes int64
	for _, c := range rep.Blocks {
		decodeNS += c.DecodeNS
		encBytes += c.ReadBytes
	}
	if want := reg.CounterValue("graphz_codec_decode_ns_total"); decodeNS != want {
		t.Errorf("heat decode ns = %d, counter says %d", decodeNS, want)
	}
	if want := reg.CounterValue("graphz_codec_bytes_encoded_total"); encBytes != want {
		t.Errorf("heat read bytes = %d, encoded counter says %d", encBytes, want)
	}
}

func TestRunReportSelectiveSkips(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 64)
	g := buildDOS(t, edges)
	reg := obs.NewRegistry()
	res, _ := runMinLabel(t, g, Options{
		MemoryBudget:        budgetForPartitions(g, 8, 4, 64),
		DynamicMessages:     true,
		MsgBufferBytes:      64,
		SelectiveScheduling: true,
		Obs:                 reg,
	})
	if res.BlocksSkipped == 0 {
		t.Fatal("want a run that skips blocks")
	}
	var skips int64
	for _, c := range reg.Heatmap().Cells() {
		skips += c.Skips
	}
	if skips == 0 {
		t.Errorf("scheduler skipped %d blocks but attributed none", res.BlocksSkipped)
	}
	if len(reg.MemSamples()) != res.Iterations {
		t.Errorf("memory samples = %d, want %d", len(reg.MemSamples()), res.Iterations)
	}
	// The bitmap is accounted once selective scheduling is on.
	if reg.MemSamples()[0].BitmapBytes == 0 {
		t.Error("bitmap bytes not accounted")
	}
}

func TestRunReportRestoreReconciliation(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 65)
	dir := t.TempDir()
	g := buildDOS(t, edges)
	opts := ckptBaseOpts(g)
	opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1}
	runMinLabel(t, g, opts)

	g2 := buildDOS(t, edges)
	reg := obs.NewRegistry()
	tr := obs.NewCollectingTracer(nil)
	ropts := ckptBaseOpts(g2)
	ropts.Obs = reg
	ropts.Trace = tr
	ropts.Checkpoint = CheckpointOptions{Dir: dir, Resume: true}
	eng := newMinLabelEngine(t, g2, ropts)
	if _, err := eng.Resume(); err != nil {
		t.Fatal(err)
	}
	eng.Cleanup()
	rep := obs.BuildReport(obs.ReportInfo{Engine: engineName}, reg, tr, nil)
	reconcileStages(t, rep, reg, map[string]string{
		obs.StageRestore: "graphz_restore_ns_total",
	})
	if rep.StageTotals()[obs.StageRestore] == 0 {
		t.Error("restore stage total is zero")
	}
}
