package core

import (
	"fmt"
	"sync"
	"time"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

// Codec-aware Sio/Dispatcher pipeline for DOS v2 graphs (docs/FORMAT.md
// §Version 2): the edges file is cut into fixed-entry-count blocks that
// are individually encoded, so the prefetcher fetches whole encoded
// blocks by byte extent (from the per-block offset table) and the
// Dispatcher decodes each block once into a reusable entry buffer. The
// engine's entry-offset arithmetic — partition ranges, selective
// scheduling's runs, the adjacency cache — is untouched; this file is
// where entry offsets meet compressed bytes.

// codecBlockPool recycles encoded-block buffers. It is deliberately
// separate from blockPool: the raw Sio path assumes full-size
// DefaultBlockSize buffers, while encoded blocks are variable-length and
// may even exceed DefaultBlockSize under the varint worst case.
var codecBlockPool = &countedPool{
	pool: sync.Pool{New: func() any { return make([]byte, storage.DefaultBlockSize) }},
}

// codecGetBlock checks a buffer of exactly n bytes out of the pool,
// growing past the pooled capacity when an encoded block demands it (the
// grown buffer re-enters the pool on Put).
func codecGetBlock(n int) []byte {
	buf := codecBlockPool.Get()
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	return buf[:n]
}

// newAdjStream is the entry-source chooser for device-backed adjacency:
// fixed-entry layouts (DOS v1, CSR) keep the seed raw prefetcher, block-
// encoded layouts get the codec pipeline. ranges are ascending, disjoint,
// entry-aligned spans of the edges file; met (nilable) receives the
// pipeline's counters.
func newAdjStream(dev *storage.Device, adj storage.BlockLayout, file string, ranges []entryRange, met *pipeStats) (entrySource, error) {
	if adj.FixedEntries() {
		return newMultiEntryStream(dev, file, ranges, met)
	}
	return newCodecEntryStream(dev, adj, file, ranges, met)
}

// codecEntryStream is the block-codec twin of entryStream: the Sio
// goroutine reads each needed encoded block (skipping blocks no range
// touches — selective scheduling's skip math lands here as byte extents)
// and the consumer decodes blocks on demand, serving entries by absolute
// entry offset.
type codecEntryStream struct {
	blocks chan sioBlock
	stopc  chan struct{}
	adj    storage.BlockLayout
	ranges []entryRange
	met    *pipeStats

	// consumer state
	dec    []uint32 // decoded entries of block decBlk
	decBlk int64    // decoded block index; -1 before the first
	ri     int      // current range index
	cur    int64    // absolute entry offset the next call serves
	err    error
}

func newCodecEntryStream(dev *storage.Device, adj storage.BlockLayout, file string, ranges []entryRange, met *pipeStats) (*codecEntryStream, error) {
	f, err := dev.Open(file)
	if err != nil {
		return nil, err
	}
	s := &codecEntryStream{
		blocks: make(chan sioBlock, sioQueueDepth),
		stopc:  make(chan struct{}),
		adj:    adj,
		ranges: ranges,
		met:    met,
		decBlk: -1,
	}
	if len(ranges) > 0 {
		s.cur = ranges[0].start
	}
	go func() {
		defer close(s.blocks)
		last := int64(-1)
		for _, rng := range ranges {
			if rng.end <= rng.start {
				continue
			}
			for b := rng.start / adj.BlockEntries; b <= (rng.end-1)/adj.BlockEntries; b++ {
				if b <= last {
					continue // consecutive ranges may share a boundary block
				}
				last = b
				lo, hi := adj.BlockRange(b)
				buf := codecGetBlock(int(hi - lo))
				var t0 time.Time
				if met != nil {
					t0 = time.Now()
				}
				err := storage.NewRangeReader(f, lo, hi).ReadFull(buf)
				if met != nil {
					met.readNS.Add(int64(time.Since(t0)))
				}
				if err != nil {
					codecBlockPool.Put(buf)
					select {
					case s.blocks <- sioBlock{err: fmt.Errorf("core: reading encoded block %d at byte %d: %w", b, lo, err)}:
					case <-s.stopc:
					}
					return
				}
				if met != nil {
					met.blocks.Add(1)
					met.heatReadBlock(b, hi-lo)
				}
				select {
				case s.blocks <- sioBlock{data: buf, idx: b}:
				case <-s.stopc:
					// Ownership never transferred; recycle here.
					codecBlockPool.Put(buf)
					return
				}
			}
		}
	}()
	return s, nil
}

// next returns the next adjacency entry across the stream's ranges.
func (s *codecEntryStream) next() (graph.VertexID, error) {
	if s.err != nil {
		return 0, s.err
	}
	for s.ri < len(s.ranges) && s.cur >= s.ranges[s.ri].end {
		s.ri++
		if s.ri < len(s.ranges) {
			s.cur = s.ranges[s.ri].start
		}
	}
	if s.ri >= len(s.ranges) {
		s.err = fmt.Errorf("core: adjacency stream exhausted early")
		return 0, s.err
	}
	b := s.cur / s.adj.BlockEntries
	if b != s.decBlk {
		if err := s.recvDecode(b); err != nil {
			s.err = err
			return 0, err
		}
	}
	v := s.dec[s.cur-b*s.adj.BlockEntries]
	s.cur++
	return graph.VertexID(v), nil
}

// read bulk-copies decoded entries into dst (batchSource): everything
// the current decoded block still holds of the current range, decoding
// the next needed block when it is spent.
func (s *codecEntryStream) read(dst []graph.VertexID) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	for s.ri < len(s.ranges) && s.cur >= s.ranges[s.ri].end {
		s.ri++
		if s.ri < len(s.ranges) {
			s.cur = s.ranges[s.ri].start
		}
	}
	if s.ri >= len(s.ranges) {
		s.err = fmt.Errorf("core: adjacency stream exhausted early")
		return 0, s.err
	}
	b := s.cur / s.adj.BlockEntries
	if b != s.decBlk {
		if err := s.recvDecode(b); err != nil {
			s.err = err
			return 0, err
		}
	}
	base := b * s.adj.BlockEntries
	end := base + int64(len(s.dec))
	if re := s.ranges[s.ri].end; re < end {
		end = re
	}
	n := int(end - s.cur)
	if n > len(dst) {
		n = len(dst)
	}
	off := int(s.cur - base)
	dec := s.dec[off : off+n]
	for i, v := range dec {
		dst[i] = graph.VertexID(v)
	}
	s.cur += int64(n)
	return n, nil
}

// recvDecode receives block b from the prefetcher and decodes it — the
// Dispatcher step of the codec pipeline. The producer emits exactly the
// blocks the ranges need, in ascending order, so the next block received
// must be b.
func (s *codecEntryStream) recvDecode(b int64) error {
	blk, ok := s.recv()
	if !ok {
		return fmt.Errorf("core: adjacency stream exhausted early")
	}
	if blk.err != nil {
		return blk.err
	}
	if blk.idx != b {
		codecBlockPool.Put(blk.data)
		return fmt.Errorf("core: codec stream out of order: got block %d, want %d", blk.idx, b)
	}
	t0 := time.Now()
	dec, err := s.adj.Codec.DecodeBlock(s.dec[:0], blk.data)
	if s.met != nil {
		ns := int64(time.Since(t0))
		s.met.decodeNS.Add(ns)
		s.met.dispatchNS.Add(ns)
		s.met.codecEncB.Add(int64(len(blk.data)))
		s.met.codecRawB.Add(int64(len(dec)) * 4)
		s.met.heatDecode(b, ns)
	}
	codecBlockPool.Put(blk.data)
	if err != nil {
		return fmt.Errorf("core: decoding block %d: %w", b, err)
	}
	if int64(len(dec)) != s.adj.EntriesIn(b) {
		return fmt.Errorf("core: block %d decodes to %d entries, want %d", b, len(dec), s.adj.EntriesIn(b))
	}
	s.dec, s.decBlk = dec, b
	return nil
}

// recv receives the next prefetched block, counting a stall when the
// queue is empty (mirroring entryStream.recvBlock, but nil-met safe).
func (s *codecEntryStream) recv() (sioBlock, bool) {
	select {
	case blk, ok := <-s.blocks:
		return blk, ok
	default:
	}
	t0 := time.Now()
	blk, ok := <-s.blocks
	if ok && s.met != nil {
		s.met.stalls.Add(1)
		s.met.stallNS.Add(int64(time.Since(t0)))
	}
	return blk, ok
}

// stop shuts the prefetcher down, releasing queued buffers to the pool.
func (s *codecEntryStream) stop() {
	close(s.stopc)
	for blk := range s.blocks {
		if blk.data != nil {
			codecBlockPool.Put(blk.data)
		}
	}
}

// decodeEntryRange decodes entries [start, end) of a block-encoded edges
// file into raw little-endian u32 bytes — the adjacency cache's fill
// path, which keeps the cache format (and every cache consumer)
// codec-independent. ps, when non-nil, receives the codec counters.
func decodeEntryRange(dev *storage.Device, adj storage.BlockLayout, file string, start, end int64, ps *pipeStats) ([]byte, error) {
	out := make([]byte, (end-start)*4)
	if end <= start {
		return out, nil
	}
	f, err := dev.Open(file)
	if err != nil {
		return nil, err
	}
	var dec []uint32
	for b := start / adj.BlockEntries; b <= (end-1)/adj.BlockEntries; b++ {
		lo, hi := adj.BlockRange(b)
		buf := codecGetBlock(int(hi - lo))
		if err := storage.NewRangeReader(f, lo, hi).ReadFull(buf); err != nil {
			codecBlockPool.Put(buf)
			return nil, fmt.Errorf("core: reading encoded block %d at byte %d: %w", b, lo, err)
		}
		ps.heatReadBlock(b, hi-lo)
		t0 := time.Now()
		dec, err = adj.Codec.DecodeBlock(dec[:0], buf)
		if ps != nil {
			ns := int64(time.Since(t0))
			ps.decodeNS.Add(ns)
			ps.codecEncB.Add(int64(len(buf)))
			ps.codecRawB.Add(int64(len(dec)) * 4)
			ps.heatDecode(b, ns)
		}
		codecBlockPool.Put(buf)
		if err != nil {
			return nil, fmt.Errorf("core: decoding block %d: %w", b, err)
		}
		if int64(len(dec)) != adj.EntriesIn(b) {
			return nil, fmt.Errorf("core: block %d decodes to %d entries, want %d", b, len(dec), adj.EntriesIn(b))
		}
		// Copy the overlap of the block's entry span with [start, end).
		blkStart := b * adj.BlockEntries
		from, to := start, end
		if blkStart > from {
			from = blkStart
		}
		if e := blkStart + int64(len(dec)); e < to {
			to = e
		}
		for i := from; i < to; i++ {
			v := dec[i-blkStart]
			o := (i - start) * 4
			out[o] = byte(v)
			out[o+1] = byte(v >> 8)
			out[o+2] = byte(v >> 16)
			out[o+3] = byte(v >> 24)
		}
	}
	return out, nil
}
