package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphz/internal/checkpoint"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
)

// Tests for the sort-reduce spill path: sorted spills (with and without
// the Combine fold) must leave vertex states byte-identical to the
// arrival-order path, and the counters must reconcile exactly.

// stripSortCounters zeroes the fields that legitimately differ between a
// sorted and an unsorted run (the sorted path's own bookkeeping);
// everything else — including every message counter — must match.
func stripSortCounters(r Result) Result {
	r.MessagesCombined = 0
	r.DrainMergePasses = 0
	r.SpillBytesSaved = 0
	return r
}

// TestSortedSpillByteIdentical runs minLabel through every scheduling
// path with and without SortedSpill and demands byte-identical vertex
// states and identical counters: the stable destination sort preserves
// per-destination arrival order, so nothing observable may change.
func TestSortedSpillByteIdentical(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 71)
	g := buildDOS(t, edges)
	base := func() Options {
		return Options{
			MemoryBudget:    budgetForPartitions(g, 8, 4, 128),
			DynamicMessages: true,
			MsgBufferBytes:  128,
		}
	}
	paths := []struct {
		name string
		mod  func(*Options)
	}{
		{"sequential", func(*Options) {}},
		{"workers4", func(o *Options) { o.WorkerParallelism = 4 }},
		{"selective", func(o *Options) { o.SelectiveScheduling = true }},
	}
	for _, path := range paths {
		t.Run(path.name, func(t *testing.T) {
			plain := base()
			path.mod(&plain)
			plainRes, plainVals := runMinLabel(t, g, plain)
			if plainRes.MessagesSpilled == 0 {
				t.Fatal("no spills; test needs cross-partition traffic")
			}

			sorted := base()
			path.mod(&sorted)
			sorted.SortedSpill = true
			sortedRes, sortedVals := runMinLabel(t, g, sorted)

			if sortedRes.MessagesCombined != 0 {
				t.Errorf("combined %d messages without a Combine option", sortedRes.MessagesCombined)
			}
			if stripSortCounters(sortedRes) != stripSortCounters(plainRes) {
				t.Errorf("sorted result %+v differs from unsorted %+v", sortedRes, plainRes)
			}
			for i := range plainVals {
				if sortedVals[i] != plainVals[i] {
					t.Fatalf("vertex %d: sorted %+v, unsorted %+v", i, sortedVals[i], plainVals[i])
				}
			}
		})
	}
}

// TestCombineInvariants checks the Combine fold's bookkeeping: states
// stay byte-identical (min is an exact fold), the send-side counters are
// untouched, and applied + combined balances against the unsorted run's
// applied count.
func TestCombineInvariants(t *testing.T) {
	// A high-fan-in Zipf graph so many messages share a destination.
	edges := gen.Zipf(400, 8000, 1.2, 72)
	g := buildDOS(t, edges)
	opts := Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 128),
		DynamicMessages: true,
		MsgBufferBytes:  128,
	}
	plainRes, plainVals := runMinLabel(t, g, opts)
	if plainRes.MessagesSpilled == 0 {
		t.Fatal("no spills; test needs cross-partition traffic")
	}

	copts := opts
	copts.Combine = true
	reg := obs.NewRegistry()
	copts.Obs = reg
	combRes, combVals := runMinLabel(t, g, copts)

	for i := range plainVals {
		if combVals[i] != plainVals[i] {
			t.Fatalf("vertex %d: combined %+v, plain %+v", i, combVals[i], plainVals[i])
		}
	}
	// Send-side counters are pre-combine and must not move.
	if combRes.MessagesSent != plainRes.MessagesSent ||
		combRes.MessagesInline != plainRes.MessagesInline ||
		combRes.MessagesBuffered != plainRes.MessagesBuffered ||
		combRes.MessagesSpilled != plainRes.MessagesSpilled {
		t.Errorf("send-side counters moved: combined %+v, plain %+v", combRes, plainRes)
	}
	if combRes.MessagesCombined == 0 {
		t.Error("high-fan-in run combined nothing")
	}
	if got := combRes.MessagesApplied + combRes.MessagesCombined; got != plainRes.MessagesApplied {
		t.Errorf("applied %d + combined %d = %d, want unsorted applied %d",
			combRes.MessagesApplied, combRes.MessagesCombined, got, plainRes.MessagesApplied)
	}
	if combRes.SpillBytesSaved <= 0 {
		t.Errorf("SpillBytesSaved = %d, want > 0 on a fan-in hot spot", combRes.SpillBytesSaved)
	}
	if v := reg.CounterValue("graphz_messages_combined_total"); v != combRes.MessagesCombined {
		t.Errorf("graphz_messages_combined_total = %d, result says %d", v, combRes.MessagesCombined)
	}
	if v := reg.CounterValue("graphz_sorted_spill_bytes_saved_total"); v != combRes.SpillBytesSaved {
		t.Errorf("graphz_sorted_spill_bytes_saved_total = %d, result says %d", v, combRes.SpillBytesSaved)
	}
	if reg.CounterValue("graphz_sorted_runs_total") == 0 {
		t.Error("graphz_sorted_runs_total not incremented")
	}
	if reg.CounterValue("graphz_drain_sorted_total") == 0 {
		t.Error("graphz_drain_sorted_total not incremented")
	}
}

// TestSortedSpillMultiPass forces more runs per partition than the drain
// fan-in (tiny spill buffers, many messages) so the drain needs
// intermediate merge passes — and must still be byte-identical.
func TestSortedSpillMultiPass(t *testing.T) {
	edges := gen.RMAT(9, 6000, gen.NaturalRMAT, 73)
	g := buildDOS(t, edges)
	// An 8-byte buffer holds one record per spill: every cross-partition
	// message becomes its own run, far exceeding drainFanIn.
	opts := Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 8),
		DynamicMessages: true,
		MsgBufferBytes:  8,
	}
	plainRes, plainVals := runMinLabel(t, g, opts)
	if plainRes.MessagesSpilled <= int64(drainFanIn) {
		t.Fatalf("only %d spills; cannot exceed fan-in %d", plainRes.MessagesSpilled, drainFanIn)
	}

	sopts := opts
	sopts.SortedSpill = true
	sortedRes, sortedVals := runMinLabel(t, g, sopts)
	if sortedRes.DrainMergePasses == 0 {
		t.Error("expected intermediate merge passes with one-record runs")
	}
	if stripSortCounters(sortedRes) != stripSortCounters(plainRes) {
		t.Errorf("multi-pass sorted result %+v differs from unsorted %+v", sortedRes, plainRes)
	}
	for i := range plainVals {
		if sortedVals[i] != plainVals[i] {
			t.Fatalf("vertex %d: sorted %+v, unsorted %+v", i, sortedVals[i], plainVals[i])
		}
	}

	// With Combine the same run must still fold correctly across passes.
	copts := opts
	copts.Combine = true
	combRes, combVals := runMinLabel(t, g, copts)
	for i := range plainVals {
		if combVals[i] != plainVals[i] {
			t.Fatalf("vertex %d: combined %+v, plain %+v", i, combVals[i], plainVals[i])
		}
	}
	if got := combRes.MessagesApplied + combRes.MessagesCombined; got != plainRes.MessagesApplied {
		t.Errorf("multi-pass applied %d + combined %d != unsorted applied %d",
			combRes.MessagesApplied, combRes.MessagesCombined, plainRes.MessagesApplied)
	}
}

// TestSortedCheckpointResume resumes a sorted+combined run from every
// mid-run checkpoint: the runs.<p> sections must restore the sorted run
// boundaries so the resumed drain merges exactly as the uninterrupted
// one did.
func TestSortedCheckpointResume(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 74)
	for _, mode := range []struct {
		name string
		mod  func(*Options)
	}{
		{"sorted", func(o *Options) { o.SortedSpill = true }},
		{"combine", func(o *Options) { o.Combine = true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			gRef := buildDOS(t, edges)
			refOpts := ckptBaseOpts(gRef)
			mode.mod(&refOpts)
			refRes, refVals := runMinLabel(t, gRef, refOpts)
			if refRes.Iterations < 3 {
				t.Fatalf("converged in %d iterations; too few for mid-run resume", refRes.Iterations)
			}

			for k := 1; k < refRes.Iterations; k++ {
				dir := t.TempDir()
				g1 := buildDOS(t, edges)
				opts := ckptBaseOpts(g1)
				mode.mod(&opts)
				opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Keep: 1 << 20}
				runMinLabel(t, g1, opts)
				st, err := checkpoint.NewStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				iters, err := st.Iterations()
				if err != nil {
					t.Fatal(err)
				}
				for _, it := range iters {
					if it > k {
						os.RemoveAll(filepath.Join(dir, ckptDirName(it)))
					}
				}

				g2 := buildDOS(t, edges)
				ropts := ckptBaseOpts(g2)
				mode.mod(&ropts)
				ropts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Resume: true}
				eng := newMinLabelEngine(t, g2, ropts)
				res, err := eng.Run()
				if err != nil {
					t.Fatalf("resume from iteration %d: %v", k, err)
				}
				vals, err := eng.Values()
				if err != nil {
					t.Fatal(err)
				}
				if stripDurability(res) != stripDurability(refRes) {
					t.Errorf("resume from %d: result %+v, uninterrupted %+v", k, res, refRes)
				}
				for i := range refVals {
					if vals[i] != refVals[i] {
						t.Fatalf("resume from %d: vertex %d = %+v, uninterrupted %+v", k, i, vals[i], refVals[i])
					}
				}
			}
		})
	}
}

// TestSortedResumeFromUnsortedCheckpoint resumes a SortedSpill engine
// from a checkpoint written WITHOUT SortedSpill: the msgs sections carry
// arrival-order bytes and no runs.<p> section, so the first drain must
// fall back to arrival-order replay — feeding an unsorted file into the
// merge heap would scramble per-destination order.
func TestSortedResumeFromUnsortedCheckpoint(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 75)
	gRef := buildDOS(t, edges)
	refRes, refVals := runMinLabel(t, gRef, ckptBaseOpts(gRef))
	if refRes.Iterations < 3 {
		t.Fatalf("converged in %d iterations; too few for mid-run resume", refRes.Iterations)
	}

	k := refRes.Iterations / 2
	dir := t.TempDir()
	g1 := buildDOS(t, edges)
	opts := ckptBaseOpts(g1)
	opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Keep: 1 << 20}
	runMinLabel(t, g1, opts)
	st, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	iters, err := st.Iterations()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range iters {
		if it > k {
			os.RemoveAll(filepath.Join(dir, ckptDirName(it)))
		}
	}

	g2 := buildDOS(t, edges)
	ropts := ckptBaseOpts(g2)
	ropts.SortedSpill = true
	ropts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Resume: true}
	eng := newMinLabelEngine(t, g2, ropts)
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("sorted resume from unsorted checkpoint: %v", err)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	// The resumed run sorts from the next iteration on, so only the
	// vertex states (and the counters the drain path cannot change) are
	// comparable to the all-unsorted reference.
	if stripSortCounters(stripDurability(res)) != stripSortCounters(stripDurability(refRes)) {
		t.Errorf("resumed result %+v, uninterrupted unsorted %+v", res, refRes)
	}
	for i := range refVals {
		if vals[i] != refVals[i] {
			t.Fatalf("vertex %d = %+v, uninterrupted %+v", i, vals[i], refVals[i])
		}
	}
}

// noCombineProgram delegates to minLabel explicitly (NOT by embedding,
// which would promote Combine) so it satisfies Program but not Combiner.
type noCombineProgram struct{ inner minLabel }

func (p noCombineProgram) Init(id graph.VertexID, deg uint32) minVal { return p.inner.Init(id, deg) }
func (p noCombineProgram) Update(ctx *Context[uint32], id graph.VertexID, v *minVal, adj []graph.VertexID) {
	p.inner.Update(ctx, id, v, adj)
}
func (p noCombineProgram) Apply(v *minVal, m uint32) { p.inner.Apply(v, m) }

// TestCombineRequiresCombiner pins New's error when Options.Combine is
// set for a program without the Combiner hook.
func TestCombineRequiresCombiner(t *testing.T) {
	edges := gen.RMAT(6, 200, gen.NaturalRMAT, 76)
	g := buildDOS(t, edges)
	_, err := New[minVal, uint32](DOSLayout(g), noCombineProgram{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true, Combine: true})
	if err == nil {
		t.Fatal("New accepted Options.Combine for a program without Combine(M, M) M")
	}
	if !strings.Contains(err.Error(), "Combine") {
		t.Errorf("error %q does not mention Combine", err)
	}
	// The same program runs fine under plain SortedSpill.
	eng, err := New[minVal, uint32](DOSLayout(g), noCombineProgram{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true, SortedSpill: true})
	if err != nil {
		t.Fatalf("SortedSpill without Combine rejected: %v", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	eng.Cleanup()
}
