package core

import (
	"encoding/binary"
	"errors"
	"testing"

	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// minLabel is a connected-components-style test program: every vertex
// starts with its own ID as label and the minimum label propagates along
// out-edges until fixpoint. It exercises init, update, dynamic apply,
// cross-partition spill, MarkActive, and convergence.
type minVal struct {
	label, pending uint32
}

type minValCodec struct{}

func (minValCodec) Size() int { return 8 }

func (minValCodec) Encode(b []byte, v minVal) {
	binary.LittleEndian.PutUint32(b, v.label)
	binary.LittleEndian.PutUint32(b[4:], v.pending)
}

func (minValCodec) Decode(b []byte) minVal {
	return minVal{binary.LittleEndian.Uint32(b), binary.LittleEndian.Uint32(b[4:])}
}

type minLabel struct{}

func (minLabel) Init(id graph.VertexID, deg uint32) minVal {
	return minVal{label: uint32(id), pending: uint32(id)}
}

func (minLabel) Update(ctx *Context[uint32], id graph.VertexID, v *minVal, adj []graph.VertexID) {
	if ctx.Iteration() == 0 {
		for _, a := range adj {
			ctx.Send(a, v.label)
		}
		return
	}
	if v.pending < v.label {
		v.label = v.pending
		ctx.MarkActive()
		for _, a := range adj {
			ctx.Send(a, v.label)
		}
	}
}

func (minLabel) Apply(v *minVal, m uint32) {
	if m < v.pending {
		v.pending = m
	}
}

// Combine folds same-destination labels into their minimum, making
// minLabel eligible for Options.Combine. Min is exact, so combined runs
// must stay byte-identical to uncombined ones.
func (minLabel) Combine(a, b uint32) uint32 {
	if b < a {
		return b
	}
	return a
}

// referenceMinLabels computes the fixpoint in memory over the layout's ID
// space.
func referenceMinLabels(n int, edges []graph.Edge) []uint32 {
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if labels[e.Src] < labels[e.Dst] {
				labels[e.Dst] = labels[e.Src]
				changed = true
			}
		}
	}
	return labels
}

// buildDOS converts edges on a fresh null device.
func buildDOS(t *testing.T, edges []graph.Edge) *dos.Graph {
	t.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// relabeledEdges maps edges into the DOS graph's new ID space.
func relabeledEdges(t *testing.T, g *dos.Graph, edges []graph.Edge) []graph.Edge {
	t.Helper()
	o2n, err := g.OldToNew()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{Src: o2n[e.Src], Dst: o2n[e.Dst]}
	}
	return out
}

func runMinLabel(t *testing.T, g *dos.Graph, opts Options) (Result, []minVal) {
	t.Helper()
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	eng.Cleanup()
	return res, vals
}

func TestEngineMinLabelSinglePartition(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 21)
	g := buildDOS(t, edges)
	res, vals := runMinLabel(t, g, Options{MemoryBudget: 64 << 20, DynamicMessages: true})
	if res.Partitions != 1 {
		t.Fatalf("partitions = %d, want 1 with a large budget", res.Partitions)
	}
	if res.MessagesSpilled != 0 {
		t.Errorf("spilled %d messages with one partition and DM on", res.MessagesSpilled)
	}
	want := referenceMinLabels(g.NumVertices, relabeledEdges(t, g, edges))
	for i := range want {
		if vals[i].label != want[i] {
			t.Fatalf("vertex %d label = %d, want %d", i, vals[i].label, want[i])
		}
	}
	if res.UpdatesRun != int64(res.Iterations)*int64(g.NumVertices) {
		t.Errorf("updates = %d over %d iterations of %d vertices",
			res.UpdatesRun, res.Iterations, g.NumVertices)
	}
}

// budgetForPartitions builds a memory budget that should yield roughly
// wantP partitions for a graph with the given vertex state size.
func budgetForPartitions(g *dos.Graph, vsize, wantP, msgBuf int64) int64 {
	vertexBytes := int64(g.NumVertices) * vsize
	avail := (vertexBytes + wantP - 1) / wantP
	return pipelineOverheadBytes + g.IndexBytes() + g.BlockTableBytes() + avail + wantP*msgBuf
}

func TestEngineMinLabelManyPartitions(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 22)
	g := buildDOS(t, edges)
	// Budget sized for roughly four partitions.
	budget := budgetForPartitions(g, 8, 4, 64)
	res, vals := runMinLabel(t, g, Options{
		MemoryBudget:    budget,
		DynamicMessages: true,
		MsgBufferBytes:  64,
	})
	if res.Partitions < 2 {
		t.Fatalf("partitions = %d, want >= 2 under tight budget", res.Partitions)
	}
	if res.MessagesSpilled == 0 {
		t.Error("expected cross-partition message spills")
	}
	want := referenceMinLabels(g.NumVertices, relabeledEdges(t, g, edges))
	for i := range want {
		if vals[i].label != want[i] {
			t.Fatalf("vertex %d label = %d, want %d", i, vals[i].label, want[i])
		}
	}
}

func TestEngineStaticMessagesSameFixpoint(t *testing.T) {
	edges := gen.RMAT(8, 1200, gen.NaturalRMAT, 23)
	g := buildDOS(t, edges)
	budget := budgetForPartitions(g, 8, 3, 64)
	dynRes, dynVals := runMinLabel(t, g, Options{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64})
	statRes, statVals := runMinLabel(t, g, Options{MemoryBudget: budget, DynamicMessages: false, MsgBufferBytes: 64})
	for i := range dynVals {
		if dynVals[i].label != statVals[i].label {
			t.Fatalf("vertex %d: dynamic %d vs static %d", i, dynVals[i].label, statVals[i].label)
		}
	}
	// Static messages must spill strictly more (every message goes to
	// the store, even in-partition ones).
	if statRes.MessagesSpilled <= dynRes.MessagesSpilled {
		t.Errorf("static spilled %d <= dynamic spilled %d",
			statRes.MessagesSpilled, dynRes.MessagesSpilled)
	}
	// Dynamic messages should converge at least as fast.
	if statRes.Iterations < dynRes.Iterations {
		t.Errorf("static converged in %d iterations, dynamic took %d",
			statRes.Iterations, dynRes.Iterations)
	}
}

func TestEngineDeterminism(t *testing.T) {
	edges := gen.RMAT(8, 1000, gen.NaturalRMAT, 24)
	g := buildDOS(t, edges)
	budget := budgetForPartitions(g, 8, 3, 64)
	res1, vals1 := runMinLabel(t, g, Options{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64})
	res2, vals2 := runMinLabel(t, g, Options{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64})
	if res1 != res2 {
		t.Errorf("results differ across runs: %+v vs %+v", res1, res2)
	}
	for i := range vals1 {
		if vals1[i] != vals2[i] {
			t.Fatalf("vertex %d state differs across runs", i)
		}
	}
}

func TestEngineMaxIterations(t *testing.T) {
	edges := gen.RMAT(7, 500, gen.NaturalRMAT, 25)
	g := buildDOS(t, edges)
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", res.Iterations)
	}
}

func TestEngineRejectsTinyBudget(t *testing.T) {
	edges := gen.RMAT(7, 500, gen.NaturalRMAT, 26)
	g := buildDOS(t, edges)
	_, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 100, DynamicMessages: true})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("tiny budget error = %v, want ErrMemoryBudget", err)
	}
	_, err = New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 0})
	if err == nil {
		t.Error("zero budget should fail")
	}
}

func TestEngineRunTwiceFails(t *testing.T) {
	g := buildDOS(t, gen.RMAT(6, 200, gen.NaturalRMAT, 27))
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestEngineValuesBeforeRun(t *testing.T) {
	g := buildDOS(t, gen.RMAT(6, 200, gen.NaturalRMAT, 28))
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Values(); err == nil {
		t.Error("Values before Run should fail")
	}
}

func TestEngineValuesByOldID(t *testing.T) {
	edges := []graph.Edge{{Src: 10, Dst: 20}, {Src: 20, Dst: 10}, {Src: 10, Dst: 30}}
	g := buildDOS(t, edges)
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, DynamicMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	byOld, err := eng.ValuesByOldID()
	if err != nil {
		t.Fatal(err)
	}
	if len(byOld) != 3 {
		t.Fatalf("got %d old IDs: %v", len(byOld), byOld)
	}
	// The graph {10<->20, 10->30} propagates min over ancestors. In
	// new-ID space: old 10 has degree 2 (new 0), old 20 degree 1 (new
	// 1), old 30 degree 0 (new 2). Fixpoint: all labels 0.
	for old, v := range byOld {
		if v.label != 0 {
			t.Errorf("old vertex %d label = %d, want 0", old, v.label)
		}
	}
}

func TestPartitionOfConsistent(t *testing.T) {
	g := buildDOS(t, gen.RMAT(9, 3000, gen.NaturalRMAT, 29))
	budget := budgetForPartitions(g, 8, 6, 64)
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumPartitions() < 2 {
		t.Fatalf("want multiple partitions, got %d", eng.NumPartitions())
	}
	for v := 0; v < g.NumVertices; v++ {
		p := eng.partitionOf(graph.VertexID(v))
		lo, hi := eng.partStarts[p], eng.partStarts[p+1]
		if graph.VertexID(v) < lo || graph.VertexID(v) >= hi {
			t.Fatalf("partitionOf(%d) = %d covering [%d,%d)", v, p, lo, hi)
		}
	}
}

func TestEngineConvergesWithoutMaxIters(t *testing.T) {
	// A path graph 0->1->2->...->9 takes several iterations; the
	// engine must stop by itself shortly after quiescence.
	var edges []graph.Edge
	for i := 0; i < 10; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	g := buildDOS(t, edges)
	res, vals := runMinLabel(t, g, Options{MemoryBudget: 64 << 20, DynamicMessages: true})
	if res.Iterations == 0 || res.Iterations > 15 {
		t.Errorf("iterations = %d, want a small positive count", res.Iterations)
	}
	// All vertices on the path end up labeled with the head's new ID's
	// minimum ancestor label.
	want := referenceMinLabels(g.NumVertices, relabeledEdges(t, g, edges))
	for i := range want {
		if vals[i].label != want[i] {
			t.Fatalf("vertex %d label = %d, want %d", i, vals[i].label, want[i])
		}
	}
}
