package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphz/internal/checkpoint"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// semOpts forces the fast path under a budget that can pin the states.
func semOpts() Options {
	return Options{
		MemoryBudget:    64 << 20,
		DynamicMessages: true,
		SemiExternal:    SemOn,
	}
}

// partitionedOpts is the spilling multi-partition baseline every SEM
// differential compares against.
func partitionedOpts(g *dos.Graph) Options {
	return Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 64),
		DynamicMessages: true,
		MsgBufferBytes:  64,
		SemiExternal:    SemOff,
	}
}

// assertSemShape checks the structural invariants of a SEM result: one
// partition, everything inline, nothing buffered or spilled.
func assertSemShape(t *testing.T, res Result) {
	t.Helper()
	if !res.SemiExternal {
		t.Fatal("run did not take the semi-external path")
	}
	if res.Partitions != 1 {
		t.Errorf("partitions = %d, want 1 under SEM", res.Partitions)
	}
	if res.MessagesBuffered != 0 || res.MessagesSpilled != 0 {
		t.Errorf("buffered %d spilled %d, want 0/0 under SEM",
			res.MessagesBuffered, res.MessagesSpilled)
	}
	if res.MessagesInline != res.MessagesSent {
		t.Errorf("inline %d != sent %d: SEM must apply every message inline",
			res.MessagesInline, res.MessagesSent)
	}
}

// TestSemMatchesPartitioned is the core differential, in two strengths.
// Against the single-partition partitioned run — same message routing,
// every send inline — the SEM result must be IDENTICAL: same states,
// same counters, same iteration count; the fast path only removes the
// per-iteration vertex-state round trip and the empty drain. Against
// the spilling multi-partition baseline the converged states must still
// match exactly, but SEM may take fewer iterations: a cross-partition
// message there waits for the next iteration's drain, while SEM applies
// it inline, so information propagates at least as fast. Both checks run
// across sequential and parallel workers, selective scheduling, and the
// sorted-spill + Combine baseline (spill-path hooks SEM must accept and
// ignore).
func TestSemMatchesPartitioned(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 71)
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"sequential", func(*Options) {}},
		{"workers4", func(o *Options) { o.WorkerParallelism = 4 }},
		{"selective", func(o *Options) { o.SelectiveScheduling = true }},
		{"sorted-combine", func(o *Options) { o.SortedSpill = true; o.Combine = true }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			gSem := buildDOS(t, edges)
			so := semOpts()
			v.mod(&so)
			semRes, semVals := runMinLabel(t, gSem, so)
			assertSemShape(t, semRes)

			// Exact identity vs the single-partition partitioned run.
			gOne := buildDOS(t, edges)
			oneOpts := Options{MemoryBudget: 64 << 20, DynamicMessages: true, SemiExternal: SemOff}
			v.mod(&oneOpts)
			oneRes, oneVals := runMinLabel(t, gOne, oneOpts)
			if oneRes.Partitions != 1 {
				t.Fatalf("partitioned control split into %d partitions", oneRes.Partitions)
			}
			normalized := stripDurability(oneRes)
			normalized.SemiExternal = true // the only field allowed to differ
			if normalized != stripDurability(semRes) {
				t.Errorf("sem result %+v differs from single-partition control %+v", semRes, oneRes)
			}
			for i := range oneVals {
				if semVals[i] != oneVals[i] {
					t.Fatalf("vertex %d: sem %+v, single-partition %+v", i, semVals[i], oneVals[i])
				}
			}

			// Converged-state identity vs the spilling multi-partition run.
			gBase := buildDOS(t, edges)
			baseOpts := partitionedOpts(gBase)
			v.mod(&baseOpts)
			baseRes, baseVals := runMinLabel(t, gBase, baseOpts)
			if baseRes.Partitions < 2 {
				t.Fatalf("baseline partitions = %d, want >= 2", baseRes.Partitions)
			}
			if baseRes.MessagesSpilled == 0 {
				t.Fatal("baseline did not spill — differential would prove nothing")
			}
			if semRes.Iterations > baseRes.Iterations {
				t.Errorf("sem took %d iterations, multi-partition %d — inline apply cannot be slower",
					semRes.Iterations, baseRes.Iterations)
			}
			for i := range baseVals {
				if semVals[i] != baseVals[i] {
					t.Fatalf("vertex %d: sem %+v, partitioned %+v", i, semVals[i], baseVals[i])
				}
			}
		})
	}
}

// TestSemAutoDetection pins the auto boundary: exactly at SemBudgetBytes
// the engine goes semi-external, one byte below it partitions, and
// without dynamic messages it never does regardless of budget.
func TestSemAutoDetection(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 72)
	g := buildDOS(t, edges)
	need := SemBudgetBytes(DOSLayout(g), 8)

	run := func(budget int64) Result {
		t.Helper()
		res, _ := runMinLabel(t, buildDOS(t, edges), Options{
			MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 64,
		})
		return res
	}

	if res := run(need); !res.SemiExternal {
		t.Errorf("budget == SemBudgetBytes (%d): partitioned, want semi-external", need)
	}
	if res := run(need - 1); res.SemiExternal {
		t.Errorf("budget one below SemBudgetBytes: semi-external, want partitioned")
	}

	// Without DynamicMessages auto must not trigger even with slack.
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, Options{
		MemoryBudget: 64 << 20, MaxIterations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.SemiExternal() {
		t.Error("static-message engine took the SEM path")
	}
	eng.Cleanup()
}

// TestSemForcedErrors: SemOn fails typed at New — ErrMemoryBudget when
// the states cannot be pinned, ErrInvalidOptions without dynamic
// messages.
func TestSemForcedErrors(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 73)
	g := buildDOS(t, edges)

	_, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, Options{
		MemoryBudget: SemBudgetBytes(DOSLayout(g), 8) - 1, DynamicMessages: true, SemiExternal: SemOn,
	})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("unpinnable SemOn: %v, want ErrMemoryBudget", err)
	}

	_, err = New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, Options{
		MemoryBudget: 64 << 20, SemiExternal: SemOn,
	})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("SemOn without DynamicMessages: %v, want ErrInvalidOptions", err)
	}
}

func TestSemParseMode(t *testing.T) {
	for in, want := range map[string]SemMode{
		"": SemAuto, "auto": SemAuto, "on": SemOn, "true": SemOn, "off": SemOff, "false": SemOff,
	} {
		got, err := ParseSemMode(in)
		if err != nil || got != want {
			t.Errorf("ParseSemMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSemMode("fast"); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("ParseSemMode(fast) = %v, want ErrInvalidOptions", err)
	}
	for m, s := range map[SemMode]string{SemAuto: "auto", SemOn: "on", SemOff: "off"} {
		if m.String() != s {
			t.Errorf("SemMode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

// TestSemNoMessageFiles: a SEM run never creates message or spill files,
// and Cleanup leaves the shared device empty of runtime files.
func TestSemNoMessageFiles(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 74)
	g := buildDOS(t, edges)
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, semOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, f := range g.Device().List() {
		if strings.Contains(f, ".msgs") || strings.Contains(f, ".runs") {
			t.Errorf("SEM run created message/spill file %q", f)
		}
	}
	eng.Cleanup()
	for _, f := range g.Device().List() {
		if strings.Contains(f, ".vstate") {
			t.Errorf("Cleanup left %q behind", f)
		}
	}
}

// TestSemObservability: the fast path is honest about itself — a
// graphz_sem_runs_total tick, zero buffered/spilled counters, and
// exactly three spans per iteration (sio, dispatch, worker; the drain
// stage genuinely never runs, so it emits nothing).
func TestSemObservability(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 75)
	g := buildDOS(t, edges)
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf)
	opts := semOpts()
	opts.Obs = reg
	opts.Trace = tr
	res, _ := runMinLabel(t, g, opts)
	assertSemShape(t, res)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	if got := reg.CounterValue("graphz_sem_runs_total"); got != 1 {
		t.Errorf("graphz_sem_runs_total = %d, want 1", got)
	}
	if got := reg.CounterValue("graphz_messages_spilled_total"); got != 0 {
		t.Errorf("graphz_messages_spilled_total = %d, want 0", got)
	}
	if got := reg.CounterValue("graphz_messages_inline_total"); got != res.MessagesSent {
		t.Errorf("graphz_messages_inline_total = %d, want %d", got, res.MessagesSent)
	}

	spans := parseSpans(t, &traceBuf)
	byStage := map[string]int{}
	for _, e := range spans {
		byStage[e.Stage]++
	}
	if byStage[obs.StageDrain] != 0 {
		t.Errorf("SEM run emitted %d drain spans, want 0", byStage[obs.StageDrain])
	}
	for _, st := range []string{obs.StageSio, obs.StageDispatch, obs.StageWorker} {
		if byStage[st] != res.Iterations {
			t.Errorf("%s spans = %d, want one per iteration (%d)", st, byStage[st], res.Iterations)
		}
	}
	if res.Stages.Drain != 0 {
		t.Errorf("Result.Stages.Drain = %v, want 0 — the stage never ran", res.Stages.Drain)
	}
}

// TestSemCheckpointResume: resuming a SEM run from every mid-run
// checkpoint reproduces the uninterrupted SEM run exactly.
func TestSemCheckpointResume(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 76)
	gRef := buildDOS(t, edges)
	refOpts := semOpts()
	refRes, refVals := runMinLabel(t, gRef, refOpts)
	assertSemShape(t, refRes)
	if refRes.Iterations < 3 {
		t.Fatalf("converged in %d iterations; too few for mid-run resume", refRes.Iterations)
	}

	for k := 1; k < refRes.Iterations; k++ {
		dir := t.TempDir()
		g1 := buildDOS(t, edges)
		opts := semOpts()
		opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Keep: 1 << 20}
		runMinLabel(t, g1, opts)
		st, err := checkpoint.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		iters, err := st.Iterations()
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range iters {
			if it > k {
				os.RemoveAll(filepath.Join(dir, ckptDirName(it)))
			}
		}

		g2 := buildDOS(t, edges)
		ropts := semOpts()
		ropts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Resume: true}
		eng := newMinLabelEngine(t, g2, ropts)
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("resume from iteration %d: %v", k, err)
		}
		vals, err := eng.Values()
		if err != nil {
			t.Fatal(err)
		}
		assertSemShape(t, res)
		if stripDurability(res) != stripDurability(refRes) {
			t.Errorf("resume from %d: result %+v, uninterrupted %+v", k, res, refRes)
		}
		for i := range refVals {
			if vals[i] != refVals[i] {
				t.Fatalf("resume from %d: vertex %d = %+v, uninterrupted %+v", k, i, vals[i], refVals[i])
			}
		}
		eng.Cleanup()
	}
}

// TestSemCheckpointCrossMode: a checkpoint written by one mode cannot be
// resumed by the other — the iteration cursor and message sections mean
// different things, so the mismatch must fail typed, not corrupt.
func TestSemCheckpointCrossMode(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 77)

	// SEM checkpoint, partitioned resume.
	semDir := t.TempDir()
	g1 := buildDOS(t, edges)
	so := semOpts()
	so.Checkpoint = CheckpointOptions{Dir: semDir, Every: 1}
	runMinLabel(t, g1, so)

	g2 := buildDOS(t, edges)
	po := partitionedOpts(g2)
	po.Checkpoint = CheckpointOptions{Dir: semDir, Resume: true}
	eng := newMinLabelEngine(t, g2, po)
	if _, err := eng.Resume(); !errors.Is(err, checkpoint.ErrConfigMismatch) {
		t.Errorf("partitioned resume of SEM checkpoint = %v, want ErrConfigMismatch", err)
	}

	// Partitioned checkpoint, SEM resume. The partitioned baseline here
	// must be single-partition so only the mode differs, not the
	// partition count (which already fails the config check).
	partDir := t.TempDir()
	g3 := buildDOS(t, edges)
	po2 := Options{MemoryBudget: 64 << 20, DynamicMessages: true, SemiExternal: SemOff,
		Checkpoint: CheckpointOptions{Dir: partDir, Every: 1}}
	runMinLabel(t, g3, po2)

	g4 := buildDOS(t, edges)
	so2 := semOpts()
	so2.Checkpoint = CheckpointOptions{Dir: partDir, Resume: true}
	eng2 := newMinLabelEngine(t, g4, so2)
	if _, err := eng2.Resume(); !errors.Is(err, checkpoint.ErrConfigMismatch) {
		t.Errorf("SEM resume of partitioned checkpoint = %v, want ErrConfigMismatch", err)
	}
}

// TestSemConvergedResume: Values() after resuming a converged SEM
// checkpoint reads the restored states without iterating.
func TestSemConvergedResume(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 78)
	dir := t.TempDir()
	g := buildDOS(t, edges)
	opts := semOpts()
	opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1}
	refRes, refVals := runMinLabel(t, g, opts)

	g2 := buildDOS(t, edges)
	ropts := semOpts()
	ropts.Checkpoint = CheckpointOptions{Dir: dir, Resume: true}
	eng := newMinLabelEngine(t, g2, ropts)
	res, err := eng.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdatesRun != refRes.UpdatesRun || res.Iterations != refRes.Iterations {
		t.Errorf("converged SEM resume ran work: %+v vs %+v", res, refRes)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i := range refVals {
		if vals[i] != refVals[i] {
			t.Fatalf("vertex %d: resumed %+v, original %+v", i, vals[i], refVals[i])
		}
	}
	eng.Cleanup()
}

// semZipfGraph is the medium high-fan-in graph the SEM crossover is
// measured on: the partitioned baseline buffers and spills heavily, SEM
// pins 16000 states in a few hundred KiB.
func semZipfGraph(tb testing.TB) *dos.Graph {
	tb.Helper()
	edges := gen.Zipf(16000, 160_000, 1.05, 7)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		tb.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// semBenchOpts pairs the buffered multi-partition baseline against the
// forced fast path on the same graph and program.
func semBenchOpts(g *dos.Graph, sem bool) Options {
	if sem {
		return Options{MemoryBudget: 64 << 20, DynamicMessages: true,
			SemiExternal: SemOn, MaxIterations: 3}
	}
	return Options{MemoryBudget: budgetForPartitions(g, 16, 4, 4096),
		DynamicMessages: true, MsgBufferBytes: 4096,
		SemiExternal: SemOff, MaxIterations: 3}
}

func runSemBench(tb testing.TB, g *dos.Graph, sem bool) Result {
	tb.Helper()
	eng, err := New[prVal, float64](DOSLayout(g), prProg{}, prCodec{}, f64Codec{}, semBenchOpts(g, sem))
	if err != nil {
		tb.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		tb.Fatal(err)
	}
	eng.Cleanup()
	return res
}

// BenchmarkEngineSEM is the crossover benchmark recorded in
// ci/bench-baseline.json: the same PageRank-style run on the Zipf graph,
// partitioned-and-buffered versus semi-external.
func BenchmarkEngineSEM(b *testing.B) {
	g := semZipfGraph(b)
	for _, mode := range []struct {
		name string
		sem  bool
	}{{"partitioned", false}, {"sem", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSemBench(b, g, mode.sem)
			}
		})
	}
}

// TestSEMSpeedup asserts the paper-level claim the mode exists for: on
// the medium Zipf graph, the zero-spill resident-state run beats the
// buffered partitioned run by at least 1.5x. Timing-sensitive; skipped
// under -short and race builds.
func TestSEMSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing test; race instrumentation distorts it")
	}
	g := semZipfGraph(t)

	// The differential guard first: same graph, same program, the SEM
	// run must be zero-spill while the baseline actually buffers.
	base := runSemBench(t, g, false)
	if base.MessagesSpilled == 0 {
		t.Fatal("partitioned baseline did not spill — speedup would be meaningless")
	}
	semRes := runSemBench(t, g, true)
	if !semRes.SemiExternal || semRes.MessagesSpilled != 0 || semRes.MessagesBuffered != 0 {
		t.Fatalf("sem run shape wrong: %+v", semRes)
	}

	run := func(sem bool) time.Duration {
		best := time.Duration(1 << 62)
		for try := 0; try < 3; try++ {
			t0 := time.Now()
			runSemBench(t, g, sem)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	buffered := run(false)
	semD := run(true)
	speedup := float64(buffered) / float64(semD)
	t.Logf("partitioned %v, sem %v: %.2fx", buffered, semD, speedup)
	if speedup < 1.5 {
		t.Errorf("SEM speedup %.2fx, want >= 1.5x", speedup)
	}
}
