package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// Tests for the resident-sharing split (SharedGraph / SharedAdjacency)
// and run cancellation — the core side of the graphz-serve subsystem.

// runShared runs minLabel over a SharedGraph view with the shared
// adjacency attached, under its own runtime-file prefix.
func runShared(t *testing.T, sg *SharedGraph, name string, opts Options) (Result, []minVal) {
	t.Helper()
	opts.Name = name
	opts.SharedAdjacency = sg.Adjacency()
	eng, err := New[minVal, uint32](sg.View(), minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	eng.Cleanup()
	return res, vals
}

// TestSharedGraphConcurrentEngines is the -race sharing test: six
// engines run simultaneously over one shared immutable graph and one
// shared adjacency cache, each with its own runtime-file prefix, and
// every one must produce vertex states byte-identical to a solo run of
// the same configuration.
func TestSharedGraphConcurrentEngines(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 81)
	g := buildDOS(t, edges)
	sg := NewSharedGraph(g)

	// Mixed configurations: different budgets (hence partition counts)
	// and scheduling paths, so the engines hit the shared cache with
	// different slice boundaries at the same time.
	configs := []Options{
		{MemoryBudget: 256 << 20, DynamicMessages: true},
		{MemoryBudget: budgetForPartitions(g, 8, 3, 256), DynamicMessages: true, MsgBufferBytes: 256},
		{MemoryBudget: budgetForPartitions(g, 8, 5, 256), DynamicMessages: true, MsgBufferBytes: 256},
		{MemoryBudget: 256 << 20, DynamicMessages: false},
		{MemoryBudget: budgetForPartitions(g, 8, 4, 256), DynamicMessages: true, MsgBufferBytes: 256, SortedSpill: true},
		{MemoryBudget: 256 << 20, DynamicMessages: true, WorkerParallelism: 2},
	}

	// Solo references, one per configuration, on private engines.
	type soloOut struct {
		res  Result
		vals []minVal
	}
	solos := make([]soloOut, len(configs))
	for i, o := range configs {
		res, vals := runMinLabel(t, g, o)
		solos[i] = soloOut{res, vals}
	}

	var wg sync.WaitGroup
	outVals := make([][]minVal, len(configs))
	outRes := make([]Result, len(configs))
	errs := make([]error, len(configs))
	for i, o := range configs {
		wg.Add(1)
		go func(i int, o Options) {
			defer wg.Done()
			o.Name = "job-" + string(rune('a'+i))
			o.SharedAdjacency = sg.Adjacency()
			eng, err := New[minVal, uint32](sg.View(), minLabel{}, minValCodec{}, graph.Uint32Codec{}, o)
			if err != nil {
				errs[i] = err
				return
			}
			defer eng.Cleanup()
			res, err := eng.Run()
			if err != nil {
				errs[i] = err
				return
			}
			vals, err := eng.Values()
			if err != nil {
				errs[i] = err
				return
			}
			outRes[i], outVals[i] = res, vals
		}(i, o)
	}
	wg.Wait()

	for i := range configs {
		if errs[i] != nil {
			t.Fatalf("engine %d: %v", i, errs[i])
		}
		if got, want := counterFields(outRes[i]), counterFields(solos[i].res); got != want {
			t.Errorf("engine %d counters %v, solo %v", i, got, want)
		}
		for v := range solos[i].vals {
			if outVals[i][v] != solos[i].vals[v] {
				t.Fatalf("engine %d vertex %d state %+v, solo %+v", i, v, outVals[i][v], solos[i].vals[v])
			}
		}
	}
	if !sg.Adjacency().Filled() {
		t.Error("shared adjacency not filled after concurrent runs")
	}
}

// TestSharedAdjacencyFillOncePerGraph proves the serving win at the core
// layer: the second engine over a shared v2 graph performs zero edges-file
// reads and zero codec decode work — the whole open/decode cost was paid
// by the first run.
func TestSharedAdjacencyFillOncePerGraph(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 82)
	g := buildDOSCodec(t, edges, storage.CodecVarint, 0)
	sg := NewSharedGraph(g)
	dev := g.Device()
	edgesFile := DOSLayout(g).EdgesFile()

	run := func(name string) (Result, []minVal, storage.Stats) {
		before := dev.FileStats()[edgesFile]
		res, vals := runShared(t, sg, name, Options{
			MemoryBudget: 256 << 20, DynamicMessages: true, Obs: obs.NewRegistry(),
		})
		return res, vals, dev.FileStats()[edgesFile].Sub(before)
	}

	res1, vals1, io1 := run("job-1")
	if io1.ReadBytes == 0 {
		t.Fatal("first run read no edge bytes")
	}
	if res1.CodecBytesEncoded == 0 || res1.DecodeTime == 0 {
		t.Fatalf("first run decoded nothing: %+v", res1)
	}

	res2, vals2, io2 := run("job-2")
	if io2.ReadBytes != 0 || io2.ReadOps != 0 {
		t.Errorf("second run touched the edges file: %+v", io2)
	}
	if res2.CodecBytesEncoded != 0 || res2.CodecBytesRaw != 0 {
		t.Errorf("second run decoded blocks: encoded=%d raw=%d",
			res2.CodecBytesEncoded, res2.CodecBytesRaw)
	}
	for i := range vals1 {
		if vals1[i] != vals2[i] {
			t.Fatalf("vertex %d differs between shared runs", i)
		}
	}

	if got := sg.ResidentBytes(); got < sg.Adjacency().Bytes() {
		t.Errorf("ResidentBytes %d < adjacency %d", got, sg.Adjacency().Bytes())
	}
}

// TestSharedAdjacencyTightBudget: the shared cache is not charged to the
// engine's budget, so even a budget forcing several partitions must run
// cached — partitions become sub-slices of the resident entries.
func TestSharedAdjacencyTightBudget(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 83)
	g := buildDOS(t, edges)
	sg := NewSharedGraph(g)
	want := referenceMinLabels(g.NumVertices, relabeledEdges(t, g, edges))

	opts := Options{MemoryBudget: budgetForPartitions(g, 8, 4, 64), DynamicMessages: true, MsgBufferBytes: 64}
	opts.Name = "tight"
	opts.SharedAdjacency = sg.Adjacency()
	eng, err := New[minVal, uint32](sg.View(), minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumPartitions() < 2 {
		t.Fatalf("partitions = %d, want >= 2", eng.NumPartitions())
	}
	if !eng.AdjacencyCached() {
		t.Fatal("shared adjacency did not enable the cached path")
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	vals, err := eng.Values()
	if err != nil {
		t.Fatal(err)
	}
	eng.Cleanup()
	for i := range want {
		if vals[i].label != want[i] {
			t.Fatalf("vertex %d label = %d, want %d", i, vals[i].label, want[i])
		}
	}
}

// cancelAfterIter cancels its context the first time iteration `at` runs
// an update; the engine must notice at the next partition boundary.
type cancelAfterIter struct {
	minLabel
	at     int
	cancel context.CancelFunc
}

func (p *cancelAfterIter) Update(ctx *Context[uint32], id graph.VertexID, v *minVal, adj []graph.VertexID) {
	if ctx.Iteration() == p.at {
		p.cancel()
	}
	p.minLabel.Update(ctx, id, v, adj)
}

func TestEngineCancellation(t *testing.T) {
	g := buildDOS(t, gen.RMAT(8, 1500, gen.NaturalRMAT, 84))

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
			Options{MemoryBudget: 64 << 20, DynamicMessages: true, Context: ctx})
		if err != nil {
			t.Fatal(err)
		}
		_, err = eng.Run()
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want to match context.Canceled too", err)
		}
	})

	t.Run("mid-run", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		prog := &cancelAfterIter{at: 1, cancel: cancel}
		eng, err := New[minVal, uint32](DOSLayout(g), prog, minValCodec{}, graph.Uint32Codec{},
			Options{MemoryBudget: 64 << 20, DynamicMessages: true, Context: ctx, Name: "cancelme"})
		if err != nil {
			t.Fatal(err)
		}
		_, err = eng.Run()
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
		// A cancelled run leaves runtime files; Cleanup drops them.
		eng.Cleanup()
		for _, f := range g.Device().List() {
			if strings.HasPrefix(f, "cancelme.") {
				t.Errorf("runtime file %q survived Cleanup", f)
			}
		}
	})

	t.Run("cause-deadline", func(t *testing.T) {
		ctx, cancel := context.WithCancelCause(context.Background())
		cancel(context.DeadlineExceeded)
		eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
			Options{MemoryBudget: 64 << 20, DynamicMessages: true, Context: ctx})
		if err != nil {
			t.Fatal(err)
		}
		_, err = eng.Run()
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want ErrCancelled and DeadlineExceeded", err)
		}
	})
}

// noCombine is minLabel without the Combiner hook.
type noCombine struct{}

func (noCombine) Init(id graph.VertexID, deg uint32) minVal { return minLabel{}.Init(id, deg) }
func (noCombine) Update(ctx *Context[uint32], id graph.VertexID, v *minVal, adj []graph.VertexID) {
	minLabel{}.Update(ctx, id, v, adj)
}
func (noCombine) Apply(v *minVal, m uint32) { minLabel{}.Apply(v, m) }

// TestInvalidOptionsSentinel: every configuration error out of New must
// match ErrInvalidOptions, so a serving API can map it to HTTP 400.
func TestInvalidOptionsSentinel(t *testing.T) {
	g := buildDOS(t, gen.RMAT(6, 200, gen.NaturalRMAT, 85))

	_, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 0})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("zero budget: err = %v, want ErrInvalidOptions", err)
	}

	_, err = New[minVal, uint32](DOSLayout(g), noCombine{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, Combine: true})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Combine without Combiner: err = %v, want ErrInvalidOptions", err)
	}

	// A shared adjacency from a different graph must be rejected.
	other := buildDOS(t, gen.RMAT(6, 300, gen.NaturalRMAT, 86))
	_, err = New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 64 << 20, SharedAdjacency: NewSharedGraph(other).Adjacency()})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("mismatched shared adjacency: err = %v, want ErrInvalidOptions", err)
	}

	// ErrMemoryBudget (infeasible plan) is NOT an options error.
	_, err = New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: 100})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("tiny budget: err = %v, want ErrMemoryBudget", err)
	}
	if errors.Is(err, ErrInvalidOptions) {
		t.Errorf("tiny budget matched ErrInvalidOptions: %v", err)
	}
}
