package core

import (
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

func TestAdjCacheSameResults(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 101)
	g := buildDOS(t, edges)
	_, plain := runMinLabel(t, g, Options{MemoryBudget: 64 << 20, DynamicMessages: true})
	_, cached := runMinLabel(t, g, Options{MemoryBudget: 64 << 20, DynamicMessages: true, CacheAdjacency: true})
	for i := range plain {
		if plain[i] != cached[i] {
			t.Fatalf("vertex %d differs with adjacency cache", i)
		}
	}
}

func TestAdjCacheCutsIO(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 102)

	run := func(cache bool) int64 {
		dev := storage.NewDevice(storage.SSD, storage.Options{})
		if err := graph.WriteEdges(dev, "raw", edges); err != nil {
			t.Fatal(err)
		}
		g, err := convertOn(dev)
		if err != nil {
			t.Fatal(err)
		}
		dev.ResetStats()
		eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
			Options{MemoryBudget: 64 << 20, DynamicMessages: true, CacheAdjacency: cache, MaxIterations: 6})
		if err != nil {
			t.Fatal(err)
		}
		if cache && !eng.AdjacencyCached() {
			t.Fatal("cache should enable under a roomy budget")
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return dev.Stats().ReadBytes
	}
	without := run(false)
	with := run(true)
	// Six iterations re-read the adjacency five extra times without the
	// cache.
	if with >= without/2 {
		t.Errorf("cache read %d bytes vs %d without; expected a large cut", with, without)
	}
}

func TestAdjCacheAutoDisablesWhenTooBig(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 103)
	g := buildDOS(t, edges)
	// Budget below adjacency size: the cache must auto-disable and the
	// run still work.
	budget := budgetForPartitions(g, 8, 2, 64)
	eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{},
		Options{MemoryBudget: budget, DynamicMessages: true, CacheAdjacency: true, MsgBufferBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if eng.AdjacencyCached() {
		t.Fatal("cache should not enable when adjacency exceeds the leftover budget")
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
