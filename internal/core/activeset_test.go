package core

import (
	"bytes"
	"testing"

	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
)

// Tests for selective block scheduling: the activeSet bitmap primitives,
// the planSelective block-granular scheduler, the end-to-end property
// that selective runs reproduce full-streaming state bytes exactly, and
// the BFS-tail IO-reduction claim the feature exists for.

func TestActiveSetPrimitives(t *testing.T) {
	s := newEmptyActiveSet(0, 200)
	if s.count != 0 || s.anyInRange(0, 200) {
		t.Fatal("empty set reports activity")
	}
	// Set bits straddling word boundaries; set is idempotent.
	for _, v := range []graph.VertexID{0, 63, 64, 127, 128, 199, 63} {
		s.set(v)
	}
	if s.count != 6 {
		t.Errorf("count = %d, want 6", s.count)
	}
	if !s.get(63) || !s.get(64) || s.get(65) {
		t.Error("get misreads word-boundary bits")
	}
	if got := s.countRange(63, 65); got != 2 {
		t.Errorf("countRange(63, 65) = %d, want 2", got)
	}
	if got := s.countRange(0, 200); got != 6 {
		t.Errorf("countRange(0, 200) = %d, want 6", got)
	}
	if s.anyInRange(65, 127) {
		t.Error("anyInRange true over an all-zero interior range")
	}
	if !s.anyInRange(199, 200) || !s.anyInRange(0, 1) {
		t.Error("anyInRange misses single-bit edges")
	}
	if s.countRange(10, 10) != 0 || s.anyInRange(10, 10) {
		t.Error("empty range should count zero")
	}
	// clear is idempotent too and maintains the count.
	s.clear(63)
	s.clear(63)
	if s.count != 5 || s.get(63) {
		t.Errorf("after clear: count = %d, get(63) = %v", s.count, s.get(63))
	}

	// newActiveSet starts all-ones, including a partial tail word.
	full := newActiveSet(70)
	if full.count != 70 || full.countRange(0, 70) != 70 {
		t.Errorf("all-ones set count = %d / range %d, want 70", full.count, full.countRange(0, 70))
	}

	// An overlay based off zero behaves like the parallel Worker's
	// chunk-private sets.
	ov := newEmptyActiveSet(100, 20)
	ov.set(105)
	ov.set(119)
	if ov.count != 2 || !ov.get(105) || ov.get(100) {
		t.Error("based overlay misaddresses bits")
	}
	dst := newActiveSet(200)
	dst.copyFrom(ov, 100, 120)
	if dst.countRange(100, 120) != 2 || !dst.get(119) || dst.get(110) {
		t.Error("copyFrom did not install the overlay bits")
	}
	if dst.countRange(0, 100) != 100 || dst.countRange(120, 200) != 80 {
		t.Error("copyFrom touched bits outside [lo, hi)")
	}
}

func TestActiveSetMarshalRoundTrip(t *testing.T) {
	s := newEmptyActiveSet(0, 130)
	for _, v := range []graph.VertexID{0, 1, 64, 100, 129} {
		s.set(v)
	}
	data := s.marshal()
	got, err := unmarshalActiveSet(data, 130)
	if err != nil {
		t.Fatal(err)
	}
	if got.count != s.count || !bytes.Equal(got.marshal(), data) {
		t.Errorf("round trip lost bits: count %d vs %d", got.count, s.count)
	}
	for _, v := range []graph.VertexID{0, 1, 64, 100, 129, 2, 63, 128} {
		if got.get(v) != s.get(v) {
			t.Errorf("bit %d = %v after round trip, want %v", v, got.get(v), s.get(v))
		}
	}
	if _, err := unmarshalActiveSet(data[:8], 130); err == nil {
		t.Error("short section should fail to unmarshal")
	}
	if _, err := unmarshalActiveSet(data, 7000); err == nil {
		t.Error("vertex-count mismatch should fail to unmarshal")
	}
}

func TestPlanSelectiveTable(t *testing.T) {
	cases := []struct {
		name      string
		lo        graph.VertexID
		start     int64
		degs      []uint32
		active    []graph.VertexID
		epb       int64
		threshold float64

		streamAll   bool
		blocksTotal int64
		blocksRead  int64
		runs        []selRun
	}{
		{
			// No set bits: every block is skipped, nothing is scheduled.
			name: "empty bitmap", degs: []uint32{3, 2, 3}, epb: 4, threshold: 0.25,
			blocksTotal: 2, blocksRead: 0, runs: nil,
		},
		{
			// Density at/above the threshold falls back to full streaming.
			name: "dense partition streams fully", degs: []uint32{2, 2, 2, 2},
			active: []graph.VertexID{0, 2}, epb: 4, threshold: 0.25,
			streamAll: true, blocksTotal: 2, blocksRead: 2,
			runs: []selRun{{lo: 0, hi: 4, startOff: 0, endOff: 8}},
		},
		{
			// One active vertex whose entries fill exactly one block: only
			// that block is read.
			name: "single active vertex below threshold", degs: []uint32{4, 4, 4, 4},
			active: []graph.VertexID{2}, epb: 4, threshold: 0.5,
			blocksTotal: 4, blocksRead: 1,
			runs: []selRun{{lo: 2, hi: 3, startOff: 8, endOff: 12}},
		},
		{
			// The active vertex's entry span straddles a block boundary:
			// both blocks are read, and the vertices sharing them are
			// scheduled (their updates are no-ops for frontier-safe
			// programs).
			name: "active span straddles block boundary", degs: []uint32{2, 4, 2},
			active: []graph.VertexID{1}, epb: 4, threshold: 0.5,
			blocksTotal: 2, blocksRead: 2,
			runs: []selRun{{lo: 0, hi: 3, startOff: 0, endOff: 8}},
		},
		{
			// A bit set only by message delivery (pending-message block):
			// the block holding the destination's entries is scheduled,
			// nothing else.
			name: "pending-message-only block", degs: []uint32{1, 1, 1, 1, 1, 1, 1, 1},
			active: []graph.VertexID{5}, epb: 2, threshold: 0.25,
			blocksTotal: 4, blocksRead: 1,
			runs: []selRun{{lo: 4, hi: 6, startOff: 4, endOff: 6}},
		},
		{
			// An active zero-degree vertex is still scheduled (its update
			// may send), but reads no blocks.
			name: "zero-degree active vertex", degs: []uint32{2, 0, 2},
			active: []graph.VertexID{1}, epb: 4, threshold: 0.5,
			blocksTotal: 1, blocksRead: 0,
			runs: []selRun{{lo: 1, hi: 2, startOff: 2, endOff: 2}},
		},
		{
			// Two separated frontiers yield two runs and two block reads.
			name: "two separated frontiers", degs: []uint32{4, 4, 4, 4, 4, 4},
			active: []graph.VertexID{0, 5}, epb: 4, threshold: 0.5,
			blocksTotal: 6, blocksRead: 2,
			runs: []selRun{
				{lo: 0, hi: 1, startOff: 0, endOff: 4},
				{lo: 5, hi: 6, startOff: 20, endOff: 24},
			},
		},
		{
			// Non-zero partition base and entry offset: runs carry absolute
			// vertex IDs and absolute entry offsets.
			name: "nonzero base and start", lo: 100, start: 1000, degs: []uint32{4, 4},
			active: []graph.VertexID{101}, epb: 4, threshold: 0.6,
			blocksTotal: 2, blocksRead: 1,
			runs: []selRun{{lo: 101, hi: 102, startOff: 1004, endOff: 1008}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			as := newEmptyActiveSet(0, int(tc.lo)+len(tc.degs))
			for _, v := range tc.active {
				as.set(v)
			}
			hi := tc.lo + graph.VertexID(len(tc.degs))
			sched := planSelective(as, tc.lo, hi, tc.start, tc.degs, tc.epb, tc.threshold)
			if sched.streamAll != tc.streamAll {
				t.Errorf("streamAll = %v, want %v", sched.streamAll, tc.streamAll)
			}
			if sched.blocksTotal != tc.blocksTotal {
				t.Errorf("blocksTotal = %d, want %d", sched.blocksTotal, tc.blocksTotal)
			}
			if sched.blocksRead != tc.blocksRead {
				t.Errorf("blocksRead = %d, want %d", sched.blocksRead, tc.blocksRead)
			}
			if sched.activeCount != int64(len(tc.active)) {
				t.Errorf("activeCount = %d, want %d", sched.activeCount, len(tc.active))
			}
			if len(sched.runs) != len(tc.runs) {
				t.Fatalf("runs = %+v, want %+v", sched.runs, tc.runs)
			}
			for i, r := range sched.runs {
				if r != tc.runs[i] {
					t.Errorf("run %d = %+v, want %+v", i, r, tc.runs[i])
				}
			}
		})
	}
}

// selectiveVariants are option mutations that must each reproduce the
// full-streaming run's final state bytes. Results are deliberately NOT
// compared: a post-plan in-partition send can defer a vertex's update by
// one iteration under selective scheduling, so iteration and update
// counts may legally differ — the fixpoint may not.
var selectiveVariants = []struct {
	name string
	mut  func(*Options)
}{
	{"sequential", func(o *Options) {}},
	{"workers4", func(o *Options) { o.WorkerParallelism = 4 }},
	// A threshold above 1.0 can never be reached: every partition takes
	// the sparse run-scheduled path instead of the streamAll fallback.
	{"forcedSparse", func(o *Options) { o.SelectiveDensity = 2 }},
}

func TestSelectiveMatchesFullStreamingMinLabel(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 41)
	g := buildDOS(t, edges)
	base := Options{
		MemoryBudget:    budgetForPartitions(g, 8, 4, 64),
		DynamicMessages: true,
		MsgBufferBytes:  64,
	}
	fullRes, want := runProg[minVal, uint32](t, g, minLabel{}, minValCodec{}, graph.Uint32Codec{}, base)
	if fullRes.BlocksScanned != 0 || fullRes.BlocksSkipped != 0 {
		t.Fatalf("full-streaming run reported block scheduling: %+v", fullRes)
	}
	variants := append(selectiveVariants[:len(selectiveVariants):len(selectiveVariants)],
		struct {
			name string
			mut  func(*Options)
		}{"parallelDrain", func(o *Options) { o.ParallelDrain = true }})
	for _, v := range variants {
		opts := base
		opts.SelectiveScheduling = true
		v.mut(&opts)
		res, got := runProg[minVal, uint32](t, g, minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: selective fixpoint bytes differ from full streaming", v.name)
		}
		if res.BlocksScanned == 0 {
			t.Errorf("%s: selective run scanned no blocks: %+v", v.name, res)
		}
	}
}

func TestSelectiveMatchesFullStreamingPageRank(t *testing.T) {
	// prProg marks every vertex active every iteration, so selective
	// scheduling must degenerate to the exact full-streaming execution;
	// float accumulation order makes byte equality a strict order check.
	edges := gen.RMAT(9, 5000, gen.NaturalRMAT, 42)
	g := buildDOS(t, edges)
	base := Options{
		MemoryBudget:    budgetForPartitions(g, 16, 4, 128),
		DynamicMessages: true,
		MsgBufferBytes:  128,
		MaxIterations:   5,
	}
	_, want := runProg[prVal, float64](t, g, prProg{}, prCodec{}, f64Codec{}, base)
	for _, v := range selectiveVariants {
		opts := base
		opts.SelectiveScheduling = true
		v.mut(&opts)
		_, got := runProg[prVal, float64](t, g, prProg{}, prCodec{}, f64Codec{}, opts)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: selective PageRank bytes differ from full streaming", v.name)
		}
	}
}

func TestSelectiveMatchesFullStreamingStaticMessages(t *testing.T) {
	// mixProg's non-commutative Apply over buffered static messages
	// detects any drain-order perturbation the bitmap bookkeeping might
	// introduce.
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 43)
	g := buildDOS(t, edges)
	base := Options{
		MemoryBudget:   budgetForPartitions(g, 4, 3, 64),
		MsgBufferBytes: 64,
		MaxIterations:  4,
	}
	_, want := runProg[mixVal, uint32](t, g, mixProg{rounds: 4}, mixCodec{}, graph.Uint32Codec{}, base)
	for _, v := range selectiveVariants {
		opts := base
		opts.SelectiveScheduling = true
		v.mut(&opts)
		_, got := runProg[mixVal, uint32](t, g, mixProg{rounds: 4}, mixCodec{}, graph.Uint32Codec{}, opts)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: selective static-message bytes differ from full streaming", v.name)
		}
	}
}

// slowChainEdges builds a graph whose min-label run has a long sparse
// tail. Old IDs: source S=0, chain C_1..C_k = 1..k, sink T=k+1. S points
// at C_1 and each C_i at C_{i+1} (C_k at T); dummy edges to T give S
// degree k+2 and C_i degree i+1, so DOS (degree-descending) relabels
// S->0, C_k->1, ..., C_1->k, T->k+1 and every chain edge points one ID
// backward. A backward message never takes effect in the iteration it is
// sent, so the frontier advances exactly one vertex per iteration: ~k
// tail iterations each touching one chain vertex plus the sink.
func slowChainEdges(k int) []graph.Edge {
	sink := graph.VertexID(k + 1)
	var edges []graph.Edge
	edges = append(edges, graph.Edge{Src: 0, Dst: 1})
	for j := 0; j < k+1; j++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: sink})
	}
	for i := 1; i <= k; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
		for j := 0; j < i; j++ {
			edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: sink})
		}
	}
	return edges
}

func TestSelectiveBFSTailBlockReduction(t *testing.T) {
	const k = 300
	edges := slowChainEdges(k)
	g := buildDOS(t, edges)
	base := Options{
		MemoryBudget:    budgetForPartitions(g, 8, 6, 64),
		DynamicMessages: true,
		MsgBufferBytes:  64,
	}

	fullReg := obs.NewRegistry()
	fullOpts := base
	fullOpts.Obs = fullReg
	fullRes, fullVals := runMinLabel(t, g, fullOpts)

	selReg := obs.NewRegistry()
	selOpts := base
	selOpts.Obs = selReg
	selOpts.SelectiveScheduling = true
	selRes, selVals := runMinLabel(t, g, selOpts)

	// Both runs reach the same (correct) fixpoint.
	want := referenceMinLabels(g.NumVertices, relabeledEdges(t, g, edges))
	for i := range want {
		if fullVals[i].label != want[i] || selVals[i].label != want[i] {
			t.Fatalf("vertex %d: full %d, selective %d, want %d",
				i, fullVals[i].label, selVals[i].label, want[i])
		}
	}

	// The run must actually have the intended shape: several partitions
	// and a one-hop-per-iteration tail, or the comparison is vacuous.
	if fullRes.Partitions < 5 {
		t.Fatalf("partitions = %d; budget did not split the chain", fullRes.Partitions)
	}
	if fullRes.Iterations <= k {
		t.Fatalf("iterations = %d; chain did not produce a long tail", fullRes.Iterations)
	}

	fullBlocks := fullReg.CounterValue("graphz_sio_blocks_total")
	selBlocks := selReg.CounterValue("graphz_sio_blocks_total")
	t.Logf("partitions=%d iters full=%d sel=%d; blocks full=%d sel=%d skipped=%d",
		fullRes.Partitions, fullRes.Iterations, selRes.Iterations,
		fullBlocks, selBlocks, selRes.BlocksSkipped)
	if fullBlocks == 0 {
		t.Fatal("full run prefetched no blocks")
	}
	if selBlocks*2 > fullBlocks {
		t.Errorf("selective read %d blocks vs %d full: less than the 2x reduction the tail guarantees",
			selBlocks, fullBlocks)
	}
	if skipped := selReg.CounterValue("graphz_blocks_skipped_total"); skipped == 0 {
		t.Error("graphz_blocks_skipped_total = 0 on a sparse-tail run")
	}
	if selReg.CounterValue("graphz_partitions_skipped_total") == 0 {
		t.Error("no whole-partition skips on a sparse-tail run")
	}
	if selRes.BlocksSkipped == 0 || selRes.BlocksSkipped != selReg.CounterValue("graphz_blocks_skipped_total") {
		t.Errorf("Result.BlocksSkipped = %d, registry %d",
			selRes.BlocksSkipped, selReg.CounterValue("graphz_blocks_skipped_total"))
	}
	if fullReg.CounterValue("graphz_blocks_scanned_total") != 0 {
		t.Error("full-streaming run incremented selective counters")
	}
}

func TestEmulationForcesSelectiveOff(t *testing.T) {
	// The Section IV-E emulation re-sends every edge every round whether
	// or not the source received anything; under selective scheduling a
	// vertex with no in-edges would never be rescheduled and its
	// neighbors' gathered in-edge lists would starve. EmulateGraphChi
	// must therefore ignore the option.
	edges := gen.RMAT(7, 600, gen.NaturalRMAT, 44)
	g := buildDOS(t, edges)
	inDeg, err := InDegrees(DOSLayout(g))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := EmulateGraphChi[uint32, uint32](DOSLayout(g), chiMinProgram{},
		graph.Uint32Codec{}, graph.Uint32Codec{}, inDeg, Options{
			MemoryBudget:        256 << 20,
			DynamicMessages:     true,
			SelectiveScheduling: true,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksScanned != 0 || res.BlocksSkipped != 0 {
		t.Errorf("emulation ran with selective scheduling enabled: %+v", res)
	}
}
