package core

// Sorted spill path (Options.SortedSpill / Options.Combine; DESIGN.md
// §11). The DOS layout concentrates high-in-degree vertices at the head
// of the ID space, so converging algorithms hammer a few destinations
// with thousands of spilled messages. The unsorted drain replays them in
// arrival order — a random walk over the partition's vertex states. Here
// every spilled buffer is stably sorted by destination before it hits
// the device (one sorted run per spill, lengths tracked in msgRuns), and
// the drain merge-sorts the runs plus the in-memory tail, so applies
// stream through the vertex states sequentially — the BigSparse
// observation that sorting update logs turns random applies into merges.
//
// Ordering argument: the stable sort keeps each run's per-destination
// records in send order, runs enter the file in spill order, and the
// merge breaks ties by source order with the in-memory tail last — so
// for every destination the merged stream replays its messages in the
// exact order the unsorted drain would. Apply only touches its
// destination vertex, hence vertex states and counters are byte-identical
// to the unsorted path for every program, order-sensitive ones included.
//
// With Options.Combine, same-destination records are additionally folded
// into one at every stage — spill-buffer sort, intermediate merge
// passes, and the final drain merge — which is only sound for programs
// whose Apply is a commutative, associative fold (the Combiner hook).

import (
	"fmt"
	"io"

	"encoding/binary"

	"graphz/internal/extsort"
	"graphz/internal/graph"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

// drainFanIn bounds how many sorted runs one drain merge reads
// concurrently; partitions that accumulated more runs are first reduced
// with intermediate merge passes (counted in DrainMergePasses).
const drainFanIn = extsort.DefaultFanIn

// msgRecordKey sorts message records by their 4-byte little-endian
// destination vertex ID prefix.
func msgRecordKey(rec []byte) uint64 {
	return uint64(binary.LittleEndian.Uint32(rec))
}

// mergeScratchFile names partition p's intermediate-merge scratch file;
// passes alternate between the two sides.
func (e *Engine[V, M]) mergeScratchFile(p, side int) string {
	return fmt.Sprintf("%s.merge%d.%d", e.opts.Name, side, p)
}

// combineRecord folds the later record src into dst; both address the
// same destination vertex. The fold is charged like the apply it
// replaces, so modeled compute stays honest — the win is in IO and in
// the drain's apply count.
func (e *Engine[V, M]) combineRecord(dst, src []byte) {
	m := e.combineFn(e.mcodec.Decode(dst[4:]), e.mcodec.Decode(src[4:]))
	e.mcodec.Encode(dst[4:], m)
	e.charge(1, sim.CostMessageApply)
}

// noteCombined accounts n records folded away by the Combine hook.
func (e *Engine[V, M]) noteCombined(n int64) {
	e.combined += n
	e.eo.combinedMsgs.Add(n)
}

// mergeConfig is the drain merge's record configuration: key-ordered by
// destination, combining when the program supports it.
func (e *Engine[V, M]) mergeConfig(rec int) extsort.MergeConfig {
	mc := extsort.MergeConfig{RecordSize: rec, Key: msgRecordKey}
	if e.combineFn != nil {
		mc.Combine = e.combineRecord
	}
	return mc
}

// mergeBlockSize sizes each merge input's read buffer so a full
// fan-in-wide merge stays within the drain's share of the memory budget.
func (e *Engine[V, M]) mergeBlockSize() int {
	bs := e.drainChunkBytes() / drainFanIn
	if bs < 4096 {
		bs = 4096
	}
	return bs
}

// drainMessagesSorted is the sorted-spill counterpart of drainMessages:
// it merge-sorts the partition's on-device runs and in-memory tail by
// destination and applies the merged stream, then clears both.
func (e *Engine[V, M]) drainMessagesSorted(p int, lo graph.VertexID) error {
	rec := 4 + e.msize
	if len(e.msgBufs[p]) == 0 {
		// Nothing in memory; skip even opening the file when the spill
		// store is empty too (Size is an uncharged catalog lookup).
		if sz, err := e.dev.Size(e.msgFile(p)); err != nil {
			return err
		} else if sz == 0 {
			e.eo.drainSkipped.Inc()
			return nil
		}
	}
	f, err := e.dev.Open(e.msgFile(p))
	if err != nil {
		return err
	}
	if f.Size()%int64(rec) != 0 {
		return fmt.Errorf("core: message file %q torn (%d bytes, record %d)", e.msgFile(p), f.Size(), rec)
	}
	runs := e.msgRuns[p]
	var covered int64
	for _, n := range runs {
		covered += n
	}
	if covered != f.Size() {
		// The file holds bytes the run metadata does not cover — a resume
		// from a checkpoint written without sorted spill. Arrival order is
		// always safe to replay; the file is empty afterwards, and every
		// spill from here on is a sorted run again.
		e.msgRuns[p] = runs[:0]
		return e.drainMessages(p, lo)
	}

	// Reduce the run count to the merge fan-in with intermediate passes,
	// alternating between the two scratch files so each pass streams
	// sequentially from one file into the other.
	srcFile, side := f, 0
	for len(runs) > drainFanIn {
		dstFile, newRuns, err := e.mergeRunsPass(p, srcFile, runs, e.mergeScratchFile(p, side))
		if err != nil {
			return err
		}
		if err := srcFile.Truncate(0); err != nil {
			return err
		}
		srcFile, runs = dstFile, newRuns
		side = 1 - side
	}

	// Final merge: the surviving runs plus the destination-sorted copy of
	// the in-memory tail. The tail is the youngest source (last ord), so
	// per-destination send order is preserved across the spill boundary.
	bs := e.mergeBlockSize()
	srcs := make([]extsort.Source, 0, len(runs)+1)
	var off int64
	for _, n := range runs {
		r := storage.NewRangeReader(srcFile, off, off+n)
		r.SetBlockSize(bs)
		srcs = append(srcs, extsort.NewReaderSource(r))
		off += n
	}
	mem := e.msgBufs[p]
	if len(mem) > 0 {
		tail := append([]byte(nil), mem...)
		extsort.SortRecords(tail, rec, msgRecordKey)
		e.charge(int64(len(tail)/rec), sim.CostRecordSort)
		srcs = append(srcs, extsort.NewSliceSource(tail))
	}
	m, err := extsort.NewMerger(e.mergeConfig(rec), srcs)
	if err != nil {
		return err
	}
	var heatAcc map[int64]int64
	if e.eo.heat != nil {
		heatAcc = make(map[int64]int64)
	}
	for {
		recBytes, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("core: draining messages for partition %d: %w", p, err)
		}
		dst := e.applyRecord(recBytes, lo)
		if heatAcc != nil {
			heatAcc[e.vstateBlock(dst)]++
		}
	}
	if folded := m.Combined(); folded > 0 {
		e.noteCombined(folded)
	}
	if err := srcFile.Truncate(0); err != nil {
		return err
	}
	e.msgRuns[p] = e.msgRuns[p][:0]
	if mem != nil {
		e.msgBufs[p] = mem[:0]
	}
	if len(heatAcc) > 0 {
		e.flushDrainHeat(heatAcc)
	}
	return nil
}

// mergeRunsPass merges groups of drainFanIn consecutive runs from src
// into the named scratch file, returning its handle and the new (fewer)
// run lengths. Records folded by Combine here never reach the scratch
// file, so they count toward SpillBytesSaved like pre-spill folds.
func (e *Engine[V, M]) mergeRunsPass(p int, src *storage.File, runs []int64, dstName string) (*storage.File, []int64, error) {
	rec := 4 + e.msize
	dst, err := e.dev.Create(dstName)
	if err != nil {
		return nil, nil, err
	}
	w := storage.NewWriter(dst)
	bs := e.mergeBlockSize()
	newRuns := make([]int64, 0, (len(runs)+drainFanIn-1)/drainFanIn)
	var off, records int64
	for lo := 0; lo < len(runs); lo += drainFanIn {
		hi := lo + drainFanIn
		if hi > len(runs) {
			hi = len(runs)
		}
		srcs := make([]extsort.Source, 0, hi-lo)
		for i := lo; i < hi; i++ {
			r := storage.NewRangeReader(src, off, off+runs[i])
			r.SetBlockSize(bs)
			srcs = append(srcs, extsort.NewReaderSource(r))
			off += runs[i]
		}
		m, err := extsort.NewMerger(e.mergeConfig(rec), srcs)
		if err != nil {
			return nil, nil, err
		}
		var written int64
		for {
			recBytes, err := m.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, nil, fmt.Errorf("core: merge pass for partition %d: %w", p, err)
			}
			if _, err := w.Write(recBytes); err != nil {
				return nil, nil, fmt.Errorf("core: merge pass for partition %d: %w", p, err)
			}
			written += int64(len(recBytes))
			records++
		}
		if folded := m.Combined(); folded > 0 {
			e.noteCombined(folded)
			saved := folded * int64(rec)
			e.spillSaved += saved
			e.eo.sortedSaved.Add(saved)
		}
		newRuns = append(newRuns, written)
	}
	if err := w.Flush(); err != nil {
		return nil, nil, err
	}
	e.charge(records, sim.CostRecordSort)
	e.mergePasses++
	e.eo.drainMerges.Inc()
	return dst, newRuns, nil
}
