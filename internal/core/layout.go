package core

import (
	"sort"

	"graphz/internal/csr"
	"graphz/internal/dos"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// Layout abstracts where a graph's adjacency lives and how its vertex
// index is represented. The engine runs over either degree-ordered
// storage (the paper's design) or CSR (the no-DOS ablation and the
// GraphChi-style index model), so Figure 7's breakdown is a one-line
// configuration change.
type Layout interface {
	// NumVertices returns the dense vertex count of the layout's ID
	// space.
	NumVertices() int
	// NumEdges returns the number of adjacency entries.
	NumEdges() int64
	// IndexBytes returns the memory the resident vertex index
	// occupies; the engine charges it against its budget.
	IndexBytes() int64
	// LoadIndex makes the index resident, charging its IO to the
	// device. It must be called once before DegreeOf/OffsetOf.
	LoadIndex() error
	// DegreeOf returns the out-degree of x (index must be resident,
	// x in range).
	DegreeOf(x graph.VertexID) uint32
	// OffsetOf returns the edge-entry offset of x's adjacency.
	OffsetOf(x graph.VertexID) int64
	// EdgesFile names the packed adjacency file on the device.
	EdgesFile() string
	// Device returns the device everything lives on.
	Device() *storage.Device
	// NewToOld maps layout IDs back to input IDs; nil means identity.
	NewToOld() ([]graph.VertexID, error)
	// Adj describes how the edges file maps entry offsets to bytes: a
	// fixed-entry layout (4 bytes per entry) or DOS v2's block-encoded
	// form with a per-block offset table and codec.
	Adj() storage.BlockLayout
}

// dosLayout adapts dos.Graph. Degree lookups use a cursor over the bucket
// table: the engine walks vertices in ascending order, so the cursor
// almost always hits, and the occasional random lookup falls back to
// binary search.
type dosLayout struct {
	g      *dos.Graph
	cursor int
}

// DOSLayout wraps a degree-ordered graph for the engine.
func DOSLayout(g *dos.Graph) Layout { return &dosLayout{g: g} }

func (l *dosLayout) NumVertices() int { return l.g.NumVertices }

func (l *dosLayout) NumEdges() int64 { return l.g.NumEdges }

func (l *dosLayout) IndexBytes() int64 { return l.g.IndexBytes() }

func (l *dosLayout) LoadIndex() error {
	// The bucket table arrived with the meta file at load/convert
	// time; there is nothing else to read — that is the point of DOS.
	return nil
}

// bucketOf locates x's bucket, preferring the sequential cursor.
func (l *dosLayout) bucketOf(x graph.VertexID) int {
	b := l.g.Buckets
	if l.cursor < len(b) && b[l.cursor].FirstID <= x &&
		(l.cursor+1 == len(b) || x < b[l.cursor+1].FirstID) {
		return l.cursor
	}
	i := sort.Search(len(b), func(i int) bool { return b[i].FirstID > x }) - 1
	l.cursor = i
	return i
}

func (l *dosLayout) DegreeOf(x graph.VertexID) uint32 {
	return l.g.Buckets[l.bucketOf(x)].Degree
}

func (l *dosLayout) OffsetOf(x graph.VertexID) int64 {
	bk := l.g.Buckets[l.bucketOf(x)]
	return bk.FirstOff + int64(x-bk.FirstID)*int64(bk.Degree)
}

func (l *dosLayout) EdgesFile() string { return l.g.EdgesFile() }

func (l *dosLayout) Device() *storage.Device { return l.g.Device() }

func (l *dosLayout) NewToOld() ([]graph.VertexID, error) { return l.g.NewToOld() }

func (l *dosLayout) Adj() storage.BlockLayout { return l.g.BlockLayout() }

// csrLayout adapts csr.Graph: the ablation case with a full per-vertex
// index that must be loaded from disk and held resident.
type csrLayout struct {
	g *csr.Graph
}

// CSRLayout wraps a CSR graph for the engine (the "GraphZ without DOS"
// configuration of the paper's Figure 7).
func CSRLayout(g *csr.Graph) Layout { return &csrLayout{g: g} }

func (l *csrLayout) NumVertices() int { return l.g.NumVertices }

func (l *csrLayout) NumEdges() int64 { return l.g.NumEdges }

func (l *csrLayout) IndexBytes() int64 { return l.g.IndexBytes() }

func (l *csrLayout) LoadIndex() error { return l.g.LoadIndex() }

func (l *csrLayout) DegreeOf(x graph.VertexID) uint32 { return l.g.DegreeOf(x) }

func (l *csrLayout) OffsetOf(x graph.VertexID) int64 { return l.g.OffsetOf(x) }

func (l *csrLayout) EdgesFile() string { return l.g.EdgesFile() }

func (l *csrLayout) Device() *storage.Device { return l.g.Device() }

func (l *csrLayout) NewToOld() ([]graph.VertexID, error) { return nil, nil }

func (l *csrLayout) Adj() storage.BlockLayout { return storage.RawBlockLayout(l.g.NumEdges) }

// endOffset returns the edge-entry offset one past vertex hi-1, i.e. the
// end of the adjacency range for vertices [lo, hi).
func endOffset(l Layout, hi graph.VertexID) int64 {
	if int(hi) >= l.NumVertices() {
		return l.NumEdges()
	}
	return l.OffsetOf(hi)
}
