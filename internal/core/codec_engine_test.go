package core

import (
	"testing"

	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// Tests for the engine over DOS v2 block-encoded graphs: every scheduling
// path must produce byte-identical vertex states and identical message
// counters whichever codec stores the adjacency, and the codec byte
// accounting must reconcile with what the device actually served.

// buildDOSCodec converts edges to a v2 graph with the given codec on a
// fresh null device. blockEntries 0 keeps the convert default.
func buildDOSCodec(t *testing.T, edges []graph.Edge, codec storage.Codec, blockEntries int64) *dos.Graph {
	t.Helper()
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev, Codec: codec, BlockEntries: blockEntries}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// counterFields extracts the deterministic (non-timing) Result counters.
func counterFields(r Result) [10]int64 {
	return [10]int64{
		int64(r.Iterations), int64(r.Partitions),
		r.MessagesSent, r.MessagesApplied, r.MessagesInline,
		r.MessagesBuffered, r.MessagesSpilled, r.UpdatesRun,
		r.BlocksScanned, r.BlocksSkipped,
	}
}

// TestEngineV2MatchesV1AcrossPaths runs minLabel over the same edge set
// stored as DOS v1, v2-raw, and v2-varint, through every scheduling path,
// and demands identical final states everywhere — with identical counters
// between the two v2 codecs, which share the adjacency order exactly.
func TestEngineV2MatchesV1AcrossPaths(t *testing.T) {
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, 31)
	g1 := buildDOS(t, edges)
	want := referenceMinLabels(g1.NumVertices, relabeledEdges(t, g1, edges))
	// Budgets depend on the graph (the v2 offset table is resident).
	paths := []struct {
		name string
		opts func(g *dos.Graph) Options
	}{
		{"sequential", func(g *dos.Graph) Options {
			return Options{MemoryBudget: budgetForPartitions(g, 8, 4, 256), DynamicMessages: true, MsgBufferBytes: 256}
		}},
		{"cached", func(g *dos.Graph) Options {
			return Options{MemoryBudget: 256 << 20, DynamicMessages: true, CacheAdjacency: true}
		}},
		{"selective", func(g *dos.Graph) Options {
			return Options{MemoryBudget: budgetForPartitions(g, 8, 4, 256), DynamicMessages: true, MsgBufferBytes: 256, SelectiveScheduling: true}
		}},
		{"parallel", func(g *dos.Graph) Options {
			return Options{MemoryBudget: budgetForPartitions(g, 8, 4, 256), DynamicMessages: true, MsgBufferBytes: 256, WorkerParallelism: 4}
		}},
	}
	for _, path := range paths {
		t.Run(path.name, func(t *testing.T) {
			_, v1Vals := runMinLabel(t, g1, path.opts(g1))
			var prevRes Result
			var prevVals []minVal
			for i, codec := range []storage.Codec{storage.CodecRaw, storage.CodecVarint} {
				g2 := buildDOSCodec(t, edges, codec, 0)
				res, vals := runMinLabel(t, g2, path.opts(g2))
				for v := range want {
					if vals[v].label != want[v] {
						t.Fatalf("%s: vertex %d label = %d, want %d", codec.Name(), v, vals[v].label, want[v])
					}
					if vals[v].label != v1Vals[v].label {
						t.Fatalf("%s: vertex %d label = %d, v1 got %d", codec.Name(), v, vals[v].label, v1Vals[v].label)
					}
				}
				if i == 1 {
					if counterFields(res) != counterFields(prevRes) {
						t.Errorf("raw counters %v != varint counters %v", counterFields(prevRes), counterFields(res))
					}
					for v := range vals {
						if vals[v] != prevVals[v] {
							t.Fatalf("vertex %d state %+v (varint) != %+v (raw)", v, vals[v], prevVals[v])
						}
					}
				}
				prevRes, prevVals = res, vals
			}
			if got := codecBlockPool.outstanding(); got != 0 {
				t.Errorf("codec block pool leaks %d buffers", got)
			}
		})
	}
}

// TestEngineV2TinyBlocks forces a many-block layout (2 entries per block)
// so block boundaries land inside adjacency lists on every path.
func TestEngineV2TinyBlocks(t *testing.T) {
	edges := gen.RMAT(7, 700, gen.NaturalRMAT, 32)
	g1 := buildDOS(t, edges)
	want := referenceMinLabels(g1.NumVertices, relabeledEdges(t, g1, edges))
	g2 := buildDOSCodec(t, edges, storage.CodecVarint, 2)
	budget := budgetForPartitions(g2, 8, 3, 128)
	for _, opts := range []Options{
		{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 128},
		{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 128, SelectiveScheduling: true},
		{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 128, WorkerParallelism: 3},
	} {
		_, vals := runMinLabel(t, g2, opts)
		for v := range want {
			if vals[v].label != want[v] {
				t.Fatalf("vertex %d label = %d, want %d", v, vals[v].label, want[v])
			}
		}
	}
	if got := codecBlockPool.outstanding(); got != 0 {
		t.Errorf("codec block pool leaks %d buffers", got)
	}
}

// TestEngineV2CodecCounters reconciles the graphz_codec_* counters: the
// varint engine must report decoded bytes equal to 4 bytes per streamed
// entry, encoded bytes no larger, and a v1 run reports nothing.
func TestEngineV2CodecCounters(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 33)
	g := buildDOSCodec(t, edges, storage.CodecVarint, 0)
	reg := obs.NewRegistry()
	res, _ := runMinLabel(t, g, Options{
		MemoryBudget: 64 << 20, DynamicMessages: true, Obs: reg,
	})
	if res.CodecBytesRaw == 0 || res.CodecBytesEncoded == 0 {
		t.Fatalf("codec counters empty: raw %d, encoded %d", res.CodecBytesRaw, res.CodecBytesEncoded)
	}
	// One full stream per iteration: 4 bytes per adjacency entry.
	wantRaw := int64(res.Iterations) * g.NumEdges * 4
	if res.CodecBytesRaw != wantRaw {
		t.Errorf("CodecBytesRaw = %d, want %d (%d iterations of %d entries)",
			res.CodecBytesRaw, wantRaw, res.Iterations, g.NumEdges)
	}
	if res.CodecBytesEncoded >= res.CodecBytesRaw {
		t.Errorf("varint encoded bytes %d not smaller than raw %d", res.CodecBytesEncoded, res.CodecBytesRaw)
	}
	if got := reg.CounterValue("graphz_codec_bytes_raw_total"); got != res.CodecBytesRaw {
		t.Errorf("registry raw bytes %d != result %d", got, res.CodecBytesRaw)
	}
	if got := reg.CounterValue("graphz_codec_bytes_encoded_total"); got != res.CodecBytesEncoded {
		t.Errorf("registry encoded bytes %d != result %d", got, res.CodecBytesEncoded)
	}
	if reg.CounterValue("graphz_codec_decode_ns_total") <= 0 {
		t.Error("decode time counter did not advance")
	}

	g1 := buildDOS(t, edges)
	res1, _ := runMinLabel(t, g1, Options{
		MemoryBudget: 64 << 20, DynamicMessages: true, Obs: obs.NewRegistry(),
	})
	if res1.CodecBytesRaw != 0 || res1.CodecBytesEncoded != 0 || res1.DecodeTime != 0 {
		t.Errorf("v1 run reports codec activity: %+v", res1)
	}
}

// TestEngineV2LayoutHash binds checkpoints to the adjacency order: v1 and
// v2 layouts of the same graph hash differently (their edge orders
// differ), while the two v2 codecs — whose adjacency is identical — share
// a hash.
func TestEngineV2LayoutHash(t *testing.T) {
	edges := gen.RMAT(7, 600, gen.NaturalRMAT, 34)
	opts := Options{MemoryBudget: 64 << 20, DynamicMessages: true}
	hash := func(g *dos.Graph) uint64 {
		eng, err := New[minVal, uint32](DOSLayout(g), minLabel{}, minValCodec{}, graph.Uint32Codec{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return eng.computeLayoutHash()
	}
	h1 := hash(buildDOS(t, edges))
	hRaw := hash(buildDOSCodec(t, edges, storage.CodecRaw, 0))
	hVarint := hash(buildDOSCodec(t, edges, storage.CodecVarint, 0))
	if h1 == hRaw {
		t.Error("v1 and v2 layouts share a checkpoint hash")
	}
	if hRaw != hVarint {
		t.Error("v2-raw and v2-varint layouts hash differently")
	}
}

// TestInDegreesV2 keeps the GraphChi/X-Stream emulation setup pass
// working over block-encoded graphs.
func TestInDegreesV2(t *testing.T) {
	edges := gen.RMAT(7, 600, gen.NaturalRMAT, 35)
	in1, err := InDegrees(DOSLayout(buildDOS(t, edges)))
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []storage.Codec{storage.CodecRaw, storage.CodecVarint} {
		in2, err := InDegrees(DOSLayout(buildDOSCodec(t, edges, codec, 3)))
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if len(in1) != len(in2) {
			t.Fatalf("%s: %d in-degrees, want %d", codec.Name(), len(in2), len(in1))
		}
		for v := range in1 {
			if in1[v] != in2[v] {
				t.Fatalf("%s: vertex %d in-degree %d, want %d", codec.Name(), v, in2[v], in1[v])
			}
		}
	}
}
